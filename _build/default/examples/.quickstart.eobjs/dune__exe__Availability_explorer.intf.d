examples/availability_explorer.mli:
