examples/bank_simulation.mli:
