examples/flagset_hybrid.ml: Atomrep_core Atomrep_spec Flag_set Format Hybrid_dep List Paper Printf Relation
