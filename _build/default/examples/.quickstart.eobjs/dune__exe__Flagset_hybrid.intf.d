examples/flagset_hybrid.mli:
