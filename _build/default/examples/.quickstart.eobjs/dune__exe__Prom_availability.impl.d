examples/prom_availability.ml: Assignment Atomrep_core Atomrep_quorum Atomrep_spec Atomrep_stats Format List Op_constraint Paper Printf Prom Relation Serial_spec Static_dep Table
