examples/prom_availability.mli:
