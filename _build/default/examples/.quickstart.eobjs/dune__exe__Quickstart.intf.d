examples/quickstart.mli:
