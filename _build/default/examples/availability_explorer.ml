(* Availability explorer: how replication degree, site reliability and the
   choice of local atomicity property interact, for one data type.

     dune exec examples/availability_explorer.exe [type]

   For each replication degree n and site-up probability p, the best valid
   threshold assignment (uniform operation mix) is chosen under the static
   and under the dynamic minimal dependency relations, and its workload
   availability printed side by side — a miniature of the design space a
   system architect would explore before fixing quorums. *)

open Atomrep_history
open Atomrep_spec
open Atomrep_core
open Atomrep_quorum
open Atomrep_stats

let () =
  let type_name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "queue" in
  let spec =
    match Type_registry.find type_name with
    | Some s -> s
    | None ->
      Printf.eprintf "unknown type %s; one of: %s\n" type_name
        (String.concat ", " Type_registry.names);
      exit 1
  in
  let ops =
    List.sort_uniq String.compare
      (List.map (fun (inv : Event.Invocation.t) -> inv.op) spec.Serial_spec.invocations)
  in
  let mix = List.map (fun op -> (op, 1.0)) ops in
  Printf.printf "type %s, operations: %s\n\n" spec.Serial_spec.name
    (String.concat ", " ops);
  let static_cs = Op_constraint.of_relation (Static_dep.minimal spec ~max_len:4) in
  let dynamic_cs = Op_constraint.of_relation (Dynamic_dep.minimal spec ~max_len:4) in
  List.iter
    (fun (label, constraints) ->
      Printf.printf "constraints (%s):\n" label;
      List.iter (fun c -> Format.printf "  %a@." Op_constraint.pp c) constraints;
      print_newline ())
    [ ("static", static_cs); ("dynamic", dynamic_cs) ];
  let table =
    Table.create ~title:"best workload availability (uniform mix)"
      ~columns:[ "n"; "p"; "static"; "dynamic"; "single site" ]
  in
  List.iter
    (fun n ->
      let static_assignments = Assignment.enumerate ~n_sites:n ~ops static_cs in
      let dynamic_assignments = Assignment.enumerate ~n_sites:n ~ops dynamic_cs in
      List.iter
        (fun p ->
          let best assignments =
            match Assignment.best_for_mix ~p ~mix assignments with
            | None -> "-"
            | Some a -> Table.cell_float (Assignment.workload_availability a ~p ~mix)
          in
          Table.add_row table
            [
              Table.cell_int n;
              Printf.sprintf "%.2f" p;
              best static_assignments;
              best dynamic_assignments;
              Table.cell_float p;
            ])
        [ 0.80; 0.90; 0.99 ])
    [ 1; 3; 5 ];
  Table.print table;
  print_endline
    "The \"single site\" column is the unreplicated baseline: replication\n\
     beats it exactly when the type's constraints leave room for quorums\n\
     smaller than all-sites. Compare types: `counter` profits most, the\n\
     `boundedbuffer` least (every operation pair conflicts)."
