(* FlagSet: a data type with two distinct minimal hybrid dependency
   relations (section 4's closing example).

     dune exec examples/flagset_hybrid.exe

   Quorum assignments under hybrid atomicity have an extra degree of
   freedom: a quorum choice is valid iff it satisfies SOME hybrid
   dependency relation. The FlagSet's Shift(1) events can reach a
   Shift(3)'s view either directly or transitively through Shift(2) — two
   incomparable constraint sets. *)

open Atomrep_spec
open Atomrep_core

let () =
  let checker =
    Hybrid_dep.make_checker Flag_set.spec ~universe:Paper.flagset_core_universe
      ~max_events:5 ~max_actions:3
  in
  Printf.printf
    "bounded hybrid checker: %d configurations of Hybrid(FlagSet), %d violation templates\n\n"
    (Hybrid_dep.config_count checker)
    (Hybrid_dep.template_count checker);
  let report name rel =
    match Hybrid_dep.verify checker rel with
    | Ok () -> Printf.printf "%-30s VERIFIED as a hybrid dependency relation\n" name
    | Error ce ->
      Format.printf "%-30s REJECTED:@.  %a@.@." name Hybrid_dep.pp_counterexample ce
  in
  report "base relation" Paper.flagset_base_relation;
  report "base + Shift(3)>=Shift(1)" Paper.flagset_alternative_31;
  report "base + Shift(2)>=Shift(1)" Paper.flagset_alternative_21;
  print_newline ();
  (* Minimality: a pair is removable only if BOTH checkers accept the
     removal — the deep (5-event) checker on the normal events covers the
     Shift-chain arguments, a full-universe 3-event checker covers the
     Disabled-response arguments the focused universe omits. *)
  let shallow_full = Hybrid_dep.make_checker Flag_set.spec ~max_events:3 ~max_actions:3 in
  List.iter
    (fun (name, rel) ->
      let removable =
        List.filter
          (fun pair ->
            let without = Relation.remove pair rel in
            Hybrid_dep.is_hybrid_dependency checker without
            && Hybrid_dep.is_hybrid_dependency shallow_full without)
          (Relation.elements rel)
      in
      Printf.printf "%s: removable pairs at these bounds:\n" name;
      if removable = [] then print_endline "  (none — minimal)"
      else
        List.iter (fun p -> Format.printf "  %a@." Relation.pp_pair p) removable)
    [
      ("alternative Shift(3)>=Shift(1)", Paper.flagset_alternative_31);
      ("alternative Shift(2)>=Shift(1)", Paper.flagset_alternative_21);
    ];
  print_endline
    "\nNote: the bounded analysis finds Close() >= Open();Ok() implied by\n\
     the remaining pairs (any self-consistent view already containing the\n\
     Shift events that Close depends on must contain the Open they depend\n\
     on). The paper lists it among the required dependencies; no violation\n\
     witness exists within 4-5 events, so the mechanized minimal relations\n\
     are one pair smaller than the paper's.";
  print_endline
    "\nTwo distinct minimal hybrid dependency relations: the weakest\n\
     constraints sufficient for hybrid atomicity are not unique, unlike\n\
     the static (Theorem 6) and dynamic (Theorem 10) cases."
