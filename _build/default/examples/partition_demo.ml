(* Partitions: quorum consensus vs the available-copies method (§2).

     dune exec examples/partition_demo.exe

   Available copies reads any available copy and writes all available
   copies; with no quorum-intersection discipline, a partition lets both
   halves proceed independently, and the merged execution is not
   serializable. Quorum consensus blocks the minority side instead. *)

open Atomrep_history
open Atomrep_replica

let () =
  print_endline "four sites; partition {0,1} | {2,3} between t=100 and t=200";
  print_endline "read-modify-write transactions run before, during, after\n";
  let ac =
    Available_copies.run ~seed:3 ~n_sites:4 ~txns_per_side:2 ~partition_at:100.0
      ~heal_at:200.0 ()
  in
  print_endline "--- available copies ---";
  Printf.printf "committed: %d\n" ac.Available_copies.committed;
  print_endline "history:";
  print_endline (Behavioral.to_string ac.Available_copies.history);
  Printf.printf "\nserializable in any order: %b\n\n" ac.Available_copies.serializable;
  if not ac.Available_copies.serializable then
    print_endline
      "both halves read the same initial value and wrote conflicting ones:\n\
       no serial order can explain the committed reads.\n";
  print_endline "--- quorum consensus (hybrid atomicity, majority quorums) ---";
  let committed, aborted, serializable =
    Available_copies.quorum_reference ~seed:3 ~n_sites:4 ~txns_per_side:2
      ~partition_at:100.0 ~heal_at:200.0 ()
  in
  Printf.printf "committed: %d  aborted: %d  serializable: %b\n" committed aborted
    serializable;
  print_endline
    "\nthe minority side cannot assemble quorums and aborts; serializability\n\
     survives the partition (paper, section 2)."
