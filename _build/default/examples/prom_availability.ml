(* The PROM example of section 4: how the choice of local atomicity
   property constrains quorum assignment, and what that costs in
   availability.

     dune exec examples/prom_availability.exe *)

open Atomrep_spec
open Atomrep_core
open Atomrep_quorum
open Atomrep_stats

let () =
  let n = 5 in
  let static_rel = Static_dep.minimal Prom.spec ~max_len:4 in
  let universe = Serial_spec.event_universe Prom.spec ~max_len:4 in
  let pp_rel =
    Relation.pp_schematic ~universe ~invocations:Prom.spec.Serial_spec.invocations
  in
  Format.printf "PROM hybrid dependency relation:@.%a@.@." pp_rel
    Paper.prom_hybrid_relation;
  Format.printf "PROM static adds:@.%a@.@." pp_rel
    (Relation.diff static_rel Paper.prom_hybrid_relation);

  let mk quorums =
    Assignment.make ~n_sites:n
      (List.map (fun (op, (i, f)) -> (op, { Assignment.initial = i; final = f })) quorums)
  in
  let hybrid = mk (Paper.prom_hybrid_quorums ~n) in
  let static = mk (Paper.prom_static_quorums ~n) in
  Printf.printf
    "maximizing Read availability on %d sites (paper, end of section 4):\n" n;
  Format.printf "  hybrid atomicity permits: %a@." Assignment.pp hybrid;
  Format.printf "  static atomicity forces:  %a@.@." Assignment.pp static;

  let table =
    Table.create ~title:"Write availability vs per-site up probability"
      ~columns:[ "p"; "hybrid (1 site)"; "static (all 5)"; "ratio" ]
  in
  List.iter
    (fun p ->
      let h = Assignment.availability hybrid ~p "Write" in
      let s = Assignment.availability static ~p "Write" in
      Table.add_row table
        [
          Printf.sprintf "%.2f" p;
          Table.cell_float h;
          Table.cell_float s;
          Printf.sprintf "%.1fx" (h /. s);
        ])
    [ 0.5; 0.6; 0.7; 0.8; 0.9; 0.95; 0.99 ];
  Table.print table;

  (* The trade-off is real in both directions: enumerate everything the two
     properties allow and compare the Pareto frontiers. *)
  let ops = [ "Read"; "Seal"; "Write" ] in
  let count rel =
    Assignment.count ~n_sites:3 ~ops (Op_constraint.of_relation rel)
  in
  Printf.printf "valid assignments on 3 sites: hybrid %d, static %d\n"
    (count Paper.prom_hybrid_relation) (count static_rel);
  print_endline
    "every static-valid assignment is hybrid-valid (Theorem 4), never the\n\
     other way around (Theorem 5): hybrid atomicity strictly widens the\n\
     available quorum trade-offs for the PROM."
