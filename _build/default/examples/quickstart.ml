(* Quickstart: the analysis pipeline on one data type, end to end.

     dune exec examples/quickstart.exe

   1. Define (or pick) a serial specification.
   2. Check behavioral histories against the three local atomicity
      properties.
   3. Compute the minimal dependency relations (Theorems 6 and 10).
   4. Turn a relation into quorum constraints and pick an assignment. *)

open Atomrep_history
open Atomrep_spec
open Atomrep_atomicity
open Atomrep_core
open Atomrep_quorum

let () =
  (* 1. The paper's FIFO queue over items x, y. *)
  let spec = Queue_type.spec in
  Printf.printf "type: %s\n\n" spec.Serial_spec.name;

  (* A serial history is legal iff the state machine accepts it. *)
  let serial = [ Queue_type.enq "x"; Queue_type.enq "y"; Queue_type.deq_ok "x" ] in
  Printf.printf "serial [Enq x; Enq y; Deq->x] legal: %b\n"
    (Serial_spec.legal spec serial);

  (* 2. A behavioral history interleaves actions; atomicity properties ask
     whether committed actions serialize in the right order. *)
  let history =
    Behavioral.of_script
      [
        ("A", `Begin);
        ("A", `Exec (Queue_type.enq "x"));
        ("B", `Begin);
        ("B", `Exec (Queue_type.enq "y"));
        ("B", `Commit);
        ("A", `Commit);
        ("C", `Begin);
        ("C", `Exec (Queue_type.deq_ok "y"));
        ("C", `Commit);
      ]
  in
  Printf.printf "\nhistory: B's enqueue commits before A's; C dequeues y\n";
  Printf.printf "  hybrid atomic (commit order):  %b\n"
    (Atomicity.is_hybrid_atomic spec history);
  Printf.printf "  static atomic (begin order):   %b\n"
    (Atomicity.is_static_atomic spec history);
  Printf.printf "  strong dynamic atomic:         %b\n"
    (Atomicity.is_dynamic_atomic spec history);

  (* 3. Minimal dependency relations, computed from the specification. *)
  let static_rel = Static_dep.minimal spec ~max_len:4 in
  let dynamic_rel = Dynamic_dep.minimal spec ~max_len:4 in
  let universe = Serial_spec.event_universe spec ~max_len:4 in
  Format.printf "@.minimal static dependency relation (Theorem 6):@.%a@."
    (Relation.pp_schematic ~universe ~invocations:spec.Serial_spec.invocations)
    static_rel;
  Format.printf "@.minimal dynamic dependency relation (Theorem 10):@.%a@."
    (Relation.pp_schematic ~universe ~invocations:spec.Serial_spec.invocations)
    dynamic_rel;

  (* 4. Relations become quorum-intersection constraints; enumerate the
     valid threshold assignments on five sites and pick the best one for a
     dequeue-heavy workload. *)
  let constraints = Op_constraint.of_relation static_rel in
  let assignments = Assignment.enumerate ~n_sites:5 ~ops:[ "Enq"; "Deq" ] constraints in
  Printf.printf "\nvalid assignments on 5 sites under static atomicity: %d\n"
    (List.length assignments);
  match
    Assignment.best_for_mix ~p:0.9 ~mix:[ ("Enq", 1.0); ("Deq", 3.0) ] assignments
  with
  | None -> print_endline "none"
  | Some best ->
    Format.printf "best for a dequeue-heavy mix: %a@." Assignment.pp best;
    List.iter
      (fun op ->
        Printf.printf "  availability(%s) at p=0.9: %.4f\n" op
          (Assignment.availability best ~p:0.9 op))
      [ "Enq"; "Deq" ]
