lib/atomicity/atomicity.ml: Action Atomrep_history Atomrep_spec Behavioral Event Format List Map Result Serial_spec String
