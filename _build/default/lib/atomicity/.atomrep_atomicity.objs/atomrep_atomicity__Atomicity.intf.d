lib/atomicity/atomicity.mli: Action Atomrep_history Atomrep_spec Behavioral Event Format Serial_spec
