(** The three local atomicity properties (paper, §4–§5).

    - {b Static atomicity} (Definition 3): committed actions are serializable
      in the order of their Begin events — the property ensured by
      timestamp-ordering mechanisms (Reed; Swallow).
    - {b Hybrid atomicity} (Definition 3): committed actions are serializable
      in the order of their Commit events — the property ensured by hybrid
      locking/timestamp mechanisms.
    - {b Strong dynamic atomicity} (Definition 7): serializable in {e every}
      order consistent with the partial precedes order, with all such
      serializations equivalent — the property ensured by two-phase locking.

    All checkers implement the {e on-line} versions: a history satisfies the
    property only if it still does after committing any subset of its active
    actions (in any eligible order). Aborted actions are stripped first
    (recoverability). Checkers are exhaustive and intended for the small
    histories used in analysis and testing; the simulator's verification pass
    applies them to every per-object history it generates. *)

open Atomrep_history
open Atomrep_spec

type property = Static | Hybrid | Dynamic

val property_name : property -> string
val all_properties : property list

val static_orders : Behavioral.t -> Action.t list list
(** Serialization orders demanded by on-line static atomicity: for every
    subset of active actions, the committed actions plus that subset in
    Begin-event order. *)

val hybrid_orders : Behavioral.t -> Action.t list list
(** Orders demanded by on-line hybrid atomicity: committed actions in
    Commit-event order, followed by every permutation of every subset of
    active actions (their hypothetical Commit events would follow all
    existing ones, in any relative order). *)

val dynamic_orders : Behavioral.t -> Action.t list list
(** Orders demanded by on-line strong dynamic atomicity: for every subset of
    active actions, every linear extension of the precedes order over the
    committed actions plus that subset. *)

type failure = {
  order : Action.t list; (** serialization order that failed *)
  serial : Event.t list; (** the illegal (or inequivalent) serialization *)
  reason : string;
}

val pp_failure : Format.formatter -> failure -> unit

val check : Serial_spec.t -> property -> Behavioral.t -> (unit, failure) result
(** Full check with a counterexample on failure. For [Dynamic] this includes
    the equivalence requirement between all serializations, decided with
    observational equivalence at depth [history length + 2]. *)

val satisfies : Serial_spec.t -> property -> Behavioral.t -> bool

val is_static_atomic : Serial_spec.t -> Behavioral.t -> bool
val is_hybrid_atomic : Serial_spec.t -> Behavioral.t -> bool
val is_dynamic_atomic : Serial_spec.t -> Behavioral.t -> bool
