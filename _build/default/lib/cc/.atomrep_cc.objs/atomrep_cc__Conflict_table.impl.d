lib/cc/conflict_table.ml: Atomrep_core Atomrep_history Event Format List Relation Set String
