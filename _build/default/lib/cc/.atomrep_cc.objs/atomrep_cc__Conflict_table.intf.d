lib/cc/conflict_table.mli: Atomrep_core Atomrep_history Event Format Relation
