lib/cc/scheduler.ml: Action Atomrep_clock Atomrep_core Atomrep_history Atomrep_spec Behavioral Conflict_table Dynamic_dep Event Format Lamport List Serial_spec Static_dep
