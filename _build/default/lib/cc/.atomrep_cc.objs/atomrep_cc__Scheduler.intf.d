lib/cc/scheduler.mli: Action Atomrep_clock Atomrep_history Atomrep_spec Behavioral Event Format Lamport Serial_spec
