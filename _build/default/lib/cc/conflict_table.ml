open Atomrep_history
open Atomrep_core

module Pair_set = Set.Make (struct
  type t = string * string

  let compare (a1, b1) (a2, b2) =
    let c = String.compare a1 a2 in
    if c <> 0 then c else String.compare b1 b2
end)

type t = Pair_set.t

let of_relation relation =
  List.fold_left
    (fun acc ((inv : Event.Invocation.t), (e : Event.t)) ->
      Pair_set.add (inv.op, e.inv.op) acc)
    Pair_set.empty (Relation.elements relation)

let of_pairs l = Pair_set.of_list l

let depends t (inv : Event.Invocation.t) (e : Event.t) =
  Pair_set.mem (inv.op, e.inv.op) t

let related t (inv : Event.Invocation.t) (e : Event.t) =
  Pair_set.mem (inv.op, e.inv.op) t || Pair_set.mem (e.inv.op, inv.op) t

let related_ops t op1 op2 = Pair_set.mem (op1, op2) t || Pair_set.mem (op2, op1) t

let pairs t = Pair_set.elements t

let pp ppf t =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline
    (fun ppf (a, b) -> Format.fprintf ppf "%s -> %s" a b)
    ppf (pairs t)
