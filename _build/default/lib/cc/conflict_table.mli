(** Operation-level conflict tables derived from dependency relations.

    Runtime concurrency control cannot consult the event-level relation
    directly: live histories mention argument values outside the bounded
    analysis universe. Projecting the relation to operation names is the
    classical type-specific conflict-table construction (Schwarz–Spector
    [26]); it is conservative (it may conflict two instances the event-level
    relation would allow) and safe (it never misses a related pair whose
    schema appears in the relation). *)

open Atomrep_history
open Atomrep_core

type t

val of_relation : Relation.t -> t
(** Conflicts are the operation-name projections of the relation's pairs:
    the pair (invoking op, supplying op) is conflicting when any instance
    relates them. *)

val of_pairs : (string * string) list -> t
(** Explicit construction: (dependent op, supplier op) pairs. *)

val depends : t -> Event.Invocation.t -> Event.t -> bool
(** [depends table inv e]: does the relation's projection put [inv]'s
    operation in dependency on [e]'s operation? *)

val related : t -> Event.Invocation.t -> Event.t -> bool
(** Either direction: [inv] depends on [e], or [e]'s own invocation would
    depend on an event of [inv]'s operation — the symmetric closure used
    for lock conflicts. *)

val related_ops : t -> string -> string -> bool
(** [related] at the level of bare operation names. *)

val pairs : t -> (string * string) list
val pp : Format.formatter -> t -> unit
