open Atomrep_history
open Atomrep_spec
open Atomrep_core
open Atomrep_clock

type outcome =
  | Executed of Event.Response.t
  | Blocked of Action.t
  | Rejected of string

let pp_outcome ppf = function
  | Executed res -> Format.fprintf ppf "Executed %a" Event.Response.pp res
  | Blocked a -> Format.fprintf ppf "Blocked on %a" Action.pp a
  | Rejected why -> Format.fprintf ppf "Rejected (%s)" why

module type S = sig
  type t

  val scheme_name : string
  val create : Serial_spec.t -> t
  val begin_action : t -> Action.t -> ts:Lamport.Timestamp.t -> unit
  val try_operation : t -> Action.t -> Event.Invocation.t -> outcome
  val commit : t -> Action.t -> ts:Lamport.Timestamp.t -> unit
  val abort : t -> Action.t -> unit
  val history : t -> Behavioral.t
end

type status = Active | Committed of Lamport.Timestamp.t | Aborted

type action_state = {
  begin_ts : Lamport.Timestamp.t;
  mutable events : Event.t list; (* execution order *)
  mutable status : status;
}

type base = {
  spec : Serial_spec.t;
  table : Conflict_table.t;
  actions : action_state Action.Map.t ref;
  mutable order : Action.t list; (* begin order *)
  mutable committed_serial : Event.t list; (* commit-timestamp order *)
  mutable entries : Behavioral.entry list; (* reversed *)
}

let analysis_len = 4

let make_base spec table =
  { spec; table; actions = ref Action.Map.empty; order = []; committed_serial = [];
    entries = [] }

let state_of base a =
  match Action.Map.find_opt a !(base.actions) with
  | Some s -> s
  | None -> invalid_arg ("Scheduler: unknown action " ^ Action.to_string a)

let base_begin base a ~ts =
  if Action.Map.mem a !(base.actions) then
    invalid_arg ("Scheduler: duplicate Begin for " ^ Action.to_string a);
  base.actions := Action.Map.add a { begin_ts = ts; events = []; status = Active } !(base.actions);
  base.order <- base.order @ [ a ];
  base.entries <- Behavioral.Begin a :: base.entries

let require_active base a =
  let st = state_of base a in
  match st.status with
  | Active -> st
  | Committed _ | Aborted ->
    invalid_arg ("Scheduler: action not active: " ^ Action.to_string a)

let base_commit base a ~ts =
  let st = require_active base a in
  st.status <- Committed ts;
  base.committed_serial <- base.committed_serial @ st.events;
  base.entries <- Behavioral.Commit a :: base.entries

let base_abort base a =
  let st = require_active base a in
  st.status <- Aborted;
  base.entries <- Behavioral.Abort a :: base.entries

let base_history base = List.rev base.entries

let record base st a ev =
  st.events <- st.events @ [ ev ];
  base.entries <- Behavioral.Exec (ev, a) :: base.entries

(* First other active action holding an event that the predicate flags. *)
let find_conflict base a flagged =
  List.find_opt
    (fun b ->
      (not (Action.equal a b))
      &&
      let st = state_of base b in
      (match st.status with Active -> true | Committed _ | Aborted -> false)
      && List.exists flagged st.events)
    base.order

let run_state spec events =
  List.fold_left
    (fun state ev ->
      match state with
      | None -> None
      | Some s -> Serial_spec.apply_event spec s ev)
    (Some spec.Serial_spec.initial) events

(* Shared shape of the two lock-based schemes: a conflict predicate guards
   the operation, and the response is chosen against the committed prefix
   (in commit-timestamp order) extended with the action's own events. *)
let lock_based_try base a inv ~related =
  let st = require_active base a in
  match find_conflict base a (fun e -> related inv e) with
  | Some b -> Blocked b
  | None ->
    (match run_state base.spec (base.committed_serial @ st.events) with
     | None ->
       (* The committed prefix is maintained legal; own events extend it
          legally by construction. *)
       assert false
     | Some state ->
       (match Serial_spec.responses base.spec state inv with
        | [] -> Rejected "no legal response"
        | (res, _) :: _ ->
          let ev = Event.make inv res in
          record base st a ev;
          Executed res))

module Locking = struct
  type t = base

  let scheme_name = "locking"

  let create spec =
    let relation = Dynamic_dep.minimal spec ~max_len:analysis_len in
    make_base spec (Conflict_table.of_relation relation)

  let begin_action = base_begin

  let try_operation t a inv =
    (* Conflict = non-commutativity: the dynamic relation is symmetric, so
       [depends] suffices, but the symmetric closure is used for clarity. *)
    lock_based_try t a inv ~related:(Conflict_table.related t.table)

  let commit t a ~ts = base_commit t a ~ts
  let abort = base_abort
  let history = base_history
end

module Hybrid_ts = struct
  type t = base

  let scheme_name = "hybrid"

  let create spec =
    (* The minimal static relation is a hybrid dependency relation
       (Theorem 4) and is computable in closed form; types whose minimal
       hybrid relations are strictly smaller (e.g. PROM) get the benefit
       through the projection: pairs like Write/Write are absent. *)
    let relation = Static_dep.minimal spec ~max_len:analysis_len in
    make_base spec (Conflict_table.of_relation relation)

  let begin_action = base_begin

  let try_operation t a inv =
    lock_based_try t a inv ~related:(Conflict_table.related t.table)

  let commit t a ~ts = base_commit t a ~ts
  let abort = base_abort
  let history = base_history
end

module Static_ts = struct
  type t = base

  let scheme_name = "static"

  let create spec =
    let relation = Static_dep.minimal spec ~max_len:analysis_len in
    make_base spec (Conflict_table.of_relation relation)

  let begin_action = base_begin

  (* Actions ordered by Begin timestamp; [a]'s new event is inserted at
     [a]'s position and the whole timeline must stay legal. *)
  let timeline t ~before_of ~including =
    let ordered =
      List.filter
        (fun b ->
          let st = state_of t b in
          (match st.status with Aborted -> false | Active | Committed _ -> true)
          && including b st)
        t.order
      |> List.sort (fun b c ->
             Lamport.Timestamp.compare (state_of t b).begin_ts (state_of t c).begin_ts)
    in
    List.concat_map (fun b -> before_of b (state_of t b)) ordered

  let try_operation t a inv =
    let st = require_active t a in
    let my_ts = st.begin_ts in
    (* Block on related tentative events of earlier-timestamped actions:
       the operation's outcome depends on whether they commit. *)
    let earlier_related e_owner =
      Lamport.Timestamp.compare (state_of t e_owner).begin_ts my_ts < 0
    in
    let blocking =
      List.find_opt
        (fun b ->
          (not (Action.equal a b))
          &&
          let stb = state_of t b in
          (match stb.status with Active -> true | Committed _ | Aborted -> false)
          && earlier_related b
          && List.exists (fun e -> Conflict_table.related t.table inv e) stb.events)
        t.order
    in
    match blocking with
    | Some b -> Blocked b
    | None ->
      (* Response from the committed prefix strictly before [a] plus [a]'s
         own events. *)
      let prefix =
        timeline t
          ~including:(fun b stb ->
            Action.equal a b
            || (match stb.status with
                | Committed _ -> Lamport.Timestamp.compare stb.begin_ts my_ts < 0
                | Active | Aborted -> false))
          ~before_of:(fun _ stb -> stb.events)
      in
      (match run_state t.spec prefix with
       | None -> Rejected "inconsistent timeline"
       | Some state ->
         let candidates = Serial_spec.responses t.spec state inv in
         (* Validate each candidate against the full non-aborted timeline
            with the event in place; reject the operation (forcing an
            abort) if none survives — the timestamp arrived "too late". *)
         let full_with ev =
           timeline t
             ~including:(fun _ _ -> true)
             ~before_of:(fun b stb ->
               if Action.equal a b then stb.events @ [ ev ] else stb.events)
         in
         let viable =
           List.find_opt
             (fun (res, _) ->
               let ev = Event.make inv res in
               match run_state t.spec (full_with ev) with
               | Some _ -> true
               | None -> false)
             candidates
         in
         (match viable with
          | None -> Rejected "timestamp order violation"
          | Some (res, _) ->
            let ev = Event.make inv res in
            record t st a ev;
            Executed res))

  let commit t a ~ts = base_commit t a ~ts
  let abort = base_abort
  let history = base_history
end

let all : (string * (module S)) list =
  [
    (Locking.scheme_name, (module Locking));
    (Static_ts.scheme_name, (module Static_ts));
    (Hybrid_ts.scheme_name, (module Hybrid_ts));
  ]
