(** Local concurrency-control schedulers.

    Each scheduler mediates the operations of concurrent actions on one
    object and guarantees one of the paper's local atomicity properties for
    the behavioral history it generates:

    - {!module:Locking} — generalized type-specific two-phase locking
      (Schwarz–Spector [26]; Argus, TABS): conflicts are non-commuting
      operation pairs; guarantees {e strong dynamic} atomicity.
    - {!module:Static_ts} — multiversion timestamp ordering on Begin
      timestamps (Reed [25]; Swallow): guarantees {e static} atomicity.
    - {!module:Hybrid_ts} — locking while active plus commit-time
      timestamps (Weihl [28], Avalon-style): guarantees {e hybrid}
      atomicity.

    The same decision logic is reused by the replicated front-ends
    ({!Atomrep_replica}); these local schedulers are the single-site
    reference implementations, and the test suite checks every history they
    generate with {!Atomrep_atomicity.Atomicity.check}. *)

open Atomrep_history
open Atomrep_spec
open Atomrep_clock

type outcome =
  | Executed of Event.Response.t
  | Blocked of Action.t (** must wait for the named action to finish *)
  | Rejected of string (** must abort: timestamp or validation failure *)

val pp_outcome : Format.formatter -> outcome -> unit

module type S = sig
  type t

  val scheme_name : string

  val create : Serial_spec.t -> t
  (** A fresh object with the scheduler's default conflict information,
      derived from the specification by bounded analysis. *)

  val begin_action : t -> Action.t -> ts:Lamport.Timestamp.t -> unit
  (** Register an action; [ts] is its Begin timestamp. *)

  val try_operation : t -> Action.t -> Event.Invocation.t -> outcome
  (** Attempt one operation. [Executed res] records the event; the other
      outcomes record nothing. *)

  val commit : t -> Action.t -> ts:Lamport.Timestamp.t -> unit
  (** Commit with the given Commit timestamp (commit timestamps must be
      issued in increasing order across actions of one object). *)

  val abort : t -> Action.t -> unit

  val history : t -> Behavioral.t
  (** The behavioral history generated so far, for atomicity checking. *)
end

module Locking : S
module Static_ts : S
module Hybrid_ts : S

val all : (string * (module S)) list
