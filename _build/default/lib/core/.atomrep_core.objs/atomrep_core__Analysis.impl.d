lib/core/analysis.ml: Atomrep_history Atomrep_spec Dynamic_dep Event Format Hybrid_dep List Relation Serial_spec Static_dep
