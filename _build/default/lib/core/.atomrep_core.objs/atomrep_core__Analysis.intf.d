lib/core/analysis.mli: Atomrep_history Atomrep_spec Event Format Relation Serial_spec
