lib/core/closed_subhistory.ml: Action Array Atomrep_history Behavioral Event Fun List Relation
