lib/core/closed_subhistory.mli: Atomrep_history Behavioral Relation
