lib/core/dynamic_dep.mli: Atomrep_history Atomrep_spec Event Relation Serial_spec Value
