lib/core/hybrid_dep.ml: Action Array Atomrep_history Atomrep_spec Buffer Event Format Fun Hashtbl Lazy List Relation Result Serial_spec String Value
