lib/core/paper.ml: Atomrep_history Atomrep_spec Behavioral Double_buffer Flag_set List Prom Queue_type Relation String
