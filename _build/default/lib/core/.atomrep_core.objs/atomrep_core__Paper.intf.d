lib/core/paper.mli: Atomrep_history Atomrep_spec Behavioral Event Relation Serial_spec
