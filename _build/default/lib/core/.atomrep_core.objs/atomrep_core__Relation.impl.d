lib/core/relation.ml: Array Atomrep_history Event Format Hashtbl List Option Set String Value
