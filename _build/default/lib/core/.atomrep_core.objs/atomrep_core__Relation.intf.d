lib/core/relation.mli: Atomrep_history Event Format Value
