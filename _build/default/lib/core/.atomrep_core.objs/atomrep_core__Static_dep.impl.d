lib/core/static_dep.ml: Array Atomrep_history Atomrep_spec Event List Relation Serial_spec Value
