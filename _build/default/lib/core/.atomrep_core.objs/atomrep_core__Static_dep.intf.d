lib/core/static_dep.mli: Atomrep_history Atomrep_spec Event Relation Serial_spec
