open Atomrep_history
open Atomrep_spec

type hybrid_request =
  | Skip
  | Search of { max_events : int; max_actions : int; universe : Event.t list option }

type t = {
  spec : Serial_spec.t;
  max_len : int;
  universe : Event.t list;
  static_relation : Relation.t;
  dynamic_relation : Relation.t;
  hybrid_minimal : Relation.t list;
}

let analyze ?(max_len = 4) ?(hybrid = Skip) spec =
  let universe = Serial_spec.event_universe spec ~max_len in
  let static_relation = Static_dep.minimal spec ~max_len in
  let dynamic_relation = Dynamic_dep.minimal spec ~max_len in
  let hybrid_minimal =
    match hybrid with
    | Skip -> []
    | Search { max_events; max_actions; universe } ->
      let checker =
        Hybrid_dep.make_checker ?universe spec ~max_events ~max_actions
      in
      Hybrid_dep.minimal_hybrids checker ~base:static_relation
  in
  { spec; max_len; universe; static_relation; dynamic_relation; hybrid_minimal }

let is_static_dependency t rel = Relation.subset t.static_relation rel
let is_dynamic_dependency t rel = Relation.subset t.dynamic_relation rel

let pp_report ppf t =
  let invocations = t.spec.Serial_spec.invocations in
  let pp_rel = Relation.pp_schematic ~universe:t.universe ~invocations in
  Format.fprintf ppf "type %s (bounded at %d events)@." t.spec.Serial_spec.name t.max_len;
  Format.fprintf ppf "@.minimal static dependency relation (%d pairs):@.%a@."
    (Relation.cardinal t.static_relation) pp_rel t.static_relation;
  Format.fprintf ppf "@.minimal dynamic dependency relation (%d pairs):@.%a@."
    (Relation.cardinal t.dynamic_relation) pp_rel t.dynamic_relation;
  match t.hybrid_minimal with
  | [] -> Format.fprintf ppf "@.(hybrid search skipped)@."
  | rels ->
    List.iteri
      (fun i rel ->
        Format.fprintf ppf "@.minimal hybrid dependency relation #%d (%d pairs):@.%a@."
          (i + 1) (Relation.cardinal rel) pp_rel rel)
      rels
