(** One-stop analysis of a data type: dependency relations per atomicity
    property and their quorum consequences. *)

open Atomrep_history
open Atomrep_spec

type hybrid_request =
  | Skip (** don't run the (expensive) hybrid search *)
  | Search of { max_events : int; max_actions : int; universe : Event.t list option }

type t = {
  spec : Serial_spec.t;
  max_len : int;
  universe : Event.t list;
  static_relation : Relation.t; (** ≽s — unique minimal (Theorem 6) *)
  dynamic_relation : Relation.t; (** ≽d — unique minimal (Theorem 10) *)
  hybrid_minimal : Relation.t list;
      (** all minimal hybrid dependency relations found by the bounded
          search (empty when skipped) *)
}

val analyze : ?max_len:int -> ?hybrid:hybrid_request -> Serial_spec.t -> t
(** [analyze spec] computes the relations at [max_len] (default 4). The
    hybrid search defaults to [Skip]; pass [Search] bounds to enumerate
    minimal hybrid relations from the static relation (Theorem 4 makes it a
    sound starting point). *)

val is_static_dependency : t -> Relation.t -> bool
(** By Theorem 6 the minimal static relation is unique, so a relation is a
    static dependency relation iff it contains it. *)

val is_dynamic_dependency : t -> Relation.t -> bool
(** Likewise via Theorem 10. *)

val pp_report : Format.formatter -> t -> unit
(** Human-readable report: the relations in schematic form plus the
    operation-level constraint counts. *)
