open Atomrep_history

let executions h =
  (* (event, action, aborted?) in order *)
  let aborted = List.of_seq (Behavioral.aborted h) in
  List.filter_map
    (function
      | Behavioral.Exec (e, a) ->
        Some (e, a, List.exists (Action.equal a) aborted)
      | Behavioral.Begin _ | Behavioral.Commit _ | Behavioral.Abort _ -> None)
    h

let is_closed rel h ~keep =
  let execs = Array.of_list (executions h) in
  let n = Array.length execs in
  let ok j =
    let e_j, _, aborted_j = execs.(j) in
    (not (keep j)) || aborted_j
    ||
    let rec earlier j' =
      j' >= j
      ||
      let e', _, aborted' = execs.(j') in
      (keep j' || aborted'
       || not (Relation.mem (e_j.Event.inv, e') rel))
      && earlier (j' + 1)
    in
    earlier 0
  in
  let rec go j = j >= n || (ok j && go (j + 1)) in
  go 0

let closure rel h selected =
  let execs = Array.of_list (executions h) in
  let n = Array.length execs in
  let keep = Array.make n false in
  List.iter (fun i -> if i >= 0 && i < n then keep.(i) <- true) selected;
  let changed = ref true in
  while !changed do
    changed := false;
    for j = n - 1 downto 0 do
      if keep.(j) then begin
        let e_j, _, aborted_j = execs.(j) in
        if not aborted_j then
          for j' = 0 to j - 1 do
            let e', _, aborted' = execs.(j') in
            if (not keep.(j')) && (not aborted')
               && Relation.mem (e_j.Event.inv, e') rel
            then begin
              keep.(j') <- true;
              changed := true
            end
          done
      end
    done
  done;
  List.filter (fun j -> keep.(j)) (List.init n Fun.id)

let closed_selections rel h =
  let n = List.length (executions h) in
  let rec masks i =
    if i = n then [ [] ]
    else
      let rest = masks (i + 1) in
      List.map (fun s -> i :: s) rest @ rest
  in
  List.filter
    (fun selection ->
      let member j = List.mem j selection in
      is_closed rel h ~keep:member)
    (masks 0)

let subhistory h ~keep =
  let idx = ref (-1) in
  let kept_actions = ref Action.Set.empty in
  let selected =
    List.filter
      (function
        | Behavioral.Exec (_, a) ->
          incr idx;
          if keep !idx then begin
            kept_actions := Action.Set.add a !kept_actions;
            true
          end
          else false
        | Behavioral.Begin _ | Behavioral.Commit _ | Behavioral.Abort _ -> true)
      h
  in
  List.filter
    (function
      | Behavioral.Exec (_, _) -> true
      | Behavioral.Begin a | Behavioral.Commit a | Behavioral.Abort a ->
        Action.Set.mem a !kept_actions)
    selected
