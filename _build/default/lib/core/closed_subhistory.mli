(** Closed subhistories (paper, Definition 1).

    A subhistory [G] of [H] (an order-preserving selection of [H]'s
    operation executions) is {e closed} under a relation [≽] when, whenever
    it contains an event [\[e A\]], it also contains every earlier event
    [\[e' A'\]] with [e.inv ≽ e'], provided neither action has aborted.

    Closed subhistories are the formal model of the views a front-end can
    assemble: quorum intersection guarantees that a view contains every
    event the invocation depends on, and the closure condition captures
    transitive visibility through intermediate events (the FlagSet
    example's indirect Shift(1)→Shift(2)→Shift(3) path). *)

open Atomrep_history

val is_closed : Relation.t -> Behavioral.t -> keep:(int -> bool) -> bool
(** [is_closed rel h ~keep] — is the selection (by execution index, 0-based
    over [h]'s executions in order) closed under [rel]? Events of aborted
    actions are exempt, per Definition 1. *)

val closure : Relation.t -> Behavioral.t -> int list -> int list
(** [closure rel h selected] is the least superset of [selected] that is
    closed under [rel] — the events a front-end must pull into a view
    seeded with [selected]. Sorted ascending. *)

val closed_selections : Relation.t -> Behavioral.t -> int list list
(** Every closed selection of [h]'s executions (exponential; intended for
    the small histories of the analyses). Each selection is sorted. *)

val subhistory : Behavioral.t -> keep:(int -> bool) -> Behavioral.t
(** The behavioral history [G]: drops rejected executions and the
    Begin/Commit/Abort entries of actions left without any execution. *)
