open Atomrep_history
open Atomrep_spec

let breaks_commutativity spec ~depth state e e' =
  match Serial_spec.apply_event spec state e, Serial_spec.apply_event spec state e' with
  | Some se, Some se' ->
    (match Serial_spec.apply_event spec se e', Serial_spec.apply_event spec se' e with
     | Some s1, Some s2 -> not (Serial_spec.state_equiv spec ~depth s1 s2)
     | None, _ | _, None -> true)
  | None, _ | _, None -> false

let commute ?histories spec ~max_len e e' =
  let histories =
    match histories with
    | Some hs -> hs
    | None -> Serial_spec.enumerate spec ~max_len
  in
  let depth = max_len + 2 in
  not (List.exists (fun (_, state) -> breaks_commutativity spec ~depth state e e') histories)

let non_commuting_witness spec ~max_len e e' =
  let histories = Serial_spec.enumerate spec ~max_len in
  let depth = max_len + 2 in
  List.find_map
    (fun (hist, state) ->
      if breaks_commutativity spec ~depth state e e' then Some hist else None)
    histories

let minimal ?events spec ~max_len =
  let universe =
    match events with
    | Some evs -> evs
    | None -> Serial_spec.event_universe spec ~max_len
  in
  let histories = Serial_spec.enumerate spec ~max_len in
  let states = List.map snd histories in
  let depth = max_len + 2 in
  (* Commutativity of a pair only depends on the pair, so compute it once
     per unordered pair and add both oriented dependency pairs. *)
  let universe_arr = Array.of_list universe in
  let n = Array.length universe_arr in
  let relation = ref Relation.empty in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      let e = universe_arr.(i) and e' = universe_arr.(j) in
      let conflicting =
        List.exists (fun state -> breaks_commutativity spec ~depth state e e') states
      in
      if conflicting then begin
        relation := Relation.add (e.Event.inv, e') !relation;
        relation := Relation.add (e'.Event.inv, e) !relation
      end
    done
  done;
  !relation
