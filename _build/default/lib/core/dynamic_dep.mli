(** The unique minimal dynamic dependency relation (paper, Theorem 10).

    Two events commute (Definition 8) when, for every serial history [h] with
    [h·e] and [h·e'] both legal, [h·e·e'] and [h·e'·e] are equivalent legal
    histories. [inv ≽d e] holds when some response [res] makes [[inv;res]]
    and [e] fail to commute.

    Commutativity is decided exhaustively over the legal histories of the
    specification up to [max_len] events, with history equivalence decided by
    observational equivalence at depth [max_len + 2]
    ({!Atomrep_spec.Serial_spec.state_equiv}). *)

open Atomrep_history
open Atomrep_spec

val commute :
  ?histories:(Event.t list * Value.t) list ->
  Serial_spec.t -> max_len:int -> Event.t -> Event.t -> bool
(** [commute spec ~max_len e e'] decides Definition 8 within the bound.
    [histories] lets callers reuse one enumeration across many queries. *)

val non_commuting_witness :
  Serial_spec.t -> max_len:int -> Event.t -> Event.t -> Event.t list option
(** A serial history [h] with [h·e] and [h·e'] legal but [h·e·e'] and
    [h·e'·e] not equivalent legal histories, if one exists within bound. *)

val minimal :
  ?events:Event.t list -> Serial_spec.t -> max_len:int -> Relation.t
(** [minimal spec ~max_len] computes [≽d] over the bounded event universe. *)
