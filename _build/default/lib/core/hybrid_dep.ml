open Atomrep_history
open Atomrep_spec

type config = {
  entries : (Event.t * int) list;
  commit_order : int list;
  nactions : int;
}

type step = Exec of Event.t * int | Commit of int

let empty_config = { entries = []; commit_order = []; nactions = 0 }

let actives config =
  List.filter
    (fun a -> not (List.mem a config.commit_order))
    (List.init config.nactions Fun.id)

let rec perms = function
  | [] -> [ [] ]
  | l ->
    List.concat
      (List.mapi
         (fun i x ->
           let rest = List.filteri (fun j _ -> j <> i) l in
           List.map (fun p -> x :: p) (perms rest))
         l)

let subsets l =
  List.fold_right (fun x acc -> List.concat_map (fun s -> [ s; x :: s ]) acc) l [ [] ]

(* ------------------------------------------------------------------ *)
(* Reference (uncached) implementations, used by the public API and as
   the oracle for the fast engine below.                               *)
(* ------------------------------------------------------------------ *)

let events_of_action config a =
  List.filter_map
    (fun (e, a') -> if a = a' then Some e else None)
    config.entries

let serialization config order =
  List.concat_map (events_of_action config) order

let hybrid_ok spec config =
  let act = actives config in
  List.for_all
    (fun s ->
      List.for_all
        (fun p -> Serial_spec.legal spec (serialization config (config.commit_order @ p)))
        (perms s))
    (subsets act)

let steps_of config =
  let entries = Array.of_list config.entries in
  let n = Array.length entries in
  let last_exec a =
    let idx = ref (-1) in
    Array.iteri (fun i (_, a') -> if a = a' then idx := i) entries;
    !idx
  in
  (* Earliest position of each Commit: after its action's last execution and
     after the previous Commit. [bunches.(i)] lists action ids whose Commit
     follows execution [i]. *)
  let bunches = Array.make (max n 1) [] in
  let pos = ref (-1) in
  List.iter
    (fun c ->
      pos := max (last_exec c) !pos;
      if !pos >= 0 then bunches.(!pos) <- bunches.(!pos) @ [ c ])
    config.commit_order;
  List.concat
    (List.init n (fun i ->
         let e, a = entries.(i) in
         Exec (e, a) :: List.map (fun c -> Commit c) bunches.(i)))

let config_of_steps steps =
  List.fold_left
    (fun config step ->
      match step with
      | Exec (e, a) ->
        {
          config with
          entries = config.entries @ [ (e, a) ];
          nactions = max config.nactions (a + 1);
        }
      | Commit a -> { config with commit_order = config.commit_order @ [ a ] })
    empty_config steps

let steps_hybrid spec steps =
  let rec go config = function
    | [] -> true
    | Exec (e, a) :: rest ->
      let config =
        {
          config with
          entries = config.entries @ [ (e, a) ];
          nactions = max config.nactions (a + 1);
        }
      in
      hybrid_ok spec config && go config rest
    | Commit a :: rest ->
      go { config with commit_order = config.commit_order @ [ a ] } rest
  in
  go empty_config steps

let project steps ~keep =
  let kept_actions = Hashtbl.create 8 in
  let idx = ref (-1) in
  let selected =
    List.filter_map
      (fun step ->
        match step with
        | Exec (_, a) ->
          incr idx;
          if keep !idx then begin
            Hashtbl.replace kept_actions a ();
            Some step
          end
          else None
        | Commit _ -> Some step)
      steps
  in
  List.filter
    (function
      | Exec _ -> true
      | Commit a -> Hashtbl.mem kept_actions a)
    selected

type counterexample = {
  history : step list;
  g_positions : int list;
  appended : Event.t;
  appended_action : int;
}

let pp_counterexample ppf ce =
  let pp_step ppf = function
    | Exec (e, a) -> Format.fprintf ppf "%a %a" Event.pp e Action.pp (Action.of_int a)
    | Commit a -> Format.fprintf ppf "Commit %a" Action.pp (Action.of_int a)
  in
  Format.fprintf ppf "H = [@[%a@]],@ G keeps positions {%a},@ appended %a %a"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ") pp_step)
    ce.history
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_int)
    ce.g_positions Event.pp ce.appended
    (fun ppf a -> Action.pp ppf (Action.of_int a))
    ce.appended_action

(* ------------------------------------------------------------------ *)
(* Fast engine: events are interned to integer ids and serial-history
   legality is answered by a trie whose nodes memoize reached states.  *)
(* ------------------------------------------------------------------ *)

module Engine = struct
  type node = { state : Value.t option; children : (int, node) Hashtbl.t }

  type t = {
    spec : Serial_spec.t;
    universe : Event.t array;
    root : node;
    gcache : (int list, bool) Hashtbl.t;
  }

  (* Internal configurations mirror [config] with interned events. *)
  type iconfig = { ient : (int * int) list; icommits : int list; inact : int }

  let iempty = { ient = []; icommits = []; inact = 0 }

  let create spec universe =
    {
      spec;
      universe = Array.of_list universe;
      root = { state = Some spec.Serial_spec.initial; children = Hashtbl.create 16 };
      gcache = Hashtbl.create 4096;
    }

  let child t node eid =
    match Hashtbl.find_opt node.children eid with
    | Some n -> n
    | None ->
      let state =
        match node.state with
        | None -> None
        | Some s -> Serial_spec.apply_event t.spec s t.universe.(eid)
      in
      let n = { state; children = Hashtbl.create 4 } in
      Hashtbl.add node.children eid n;
      n

  let legal_ids t ids =
    let rec go node = function
      | [] -> true
      | id :: rest ->
        let n = child t node id in
        (match n.state with None -> false | Some _ -> go n rest)
    in
    go t.root ids

  let iactives c =
    List.filter (fun a -> not (List.mem a c.icommits)) (List.init c.inact Fun.id)

  let ievents_of_action c a =
    List.filter_map (fun (e, a') -> if a = a' then Some e else None) c.ient

  let iserialization c order = List.concat_map (ievents_of_action c) order

  (* [c] ends with an execution by [a], and [c] without that execution is
     known to pass: only serializations including [a] need checking. *)
  let iextension_ok t c a =
    let others = List.filter (fun b -> b <> a) (iactives c) in
    List.for_all
      (fun s ->
        List.for_all
          (fun p -> legal_ids t (iserialization c (c.icommits @ p)))
          (perms (a :: s)))
      (subsets others)

  let iexec c eid a =
    { c with ient = c.ient @ [ (eid, a) ]; inact = max c.inact (a + 1) }

  (* Steps are encoded as ints: an execution (eid, a) as [eid * span + a],
     a Commit a as [-(a + 1)], where [span] bounds action ids. *)
  let span = 64

  let encode_steps isteps =
    List.map
      (function
        | `Exec (eid, a) -> (eid * span) + a
        | `Commit a -> -(a + 1))
      isteps

  let isteps_hybrid t isteps =
    let key = encode_steps isteps in
    match Hashtbl.find_opt t.gcache key with
    | Some b -> b
    | None ->
      let rec go c = function
        | [] -> true
        | `Exec (eid, a) :: rest ->
          let c = iexec c eid a in
          iextension_ok t c a && go c rest
        | `Commit a :: rest -> go { c with icommits = c.icommits @ [ a ] } rest
      in
      let b = go iempty isteps in
      Hashtbl.add t.gcache key b;
      b
end

(* ------------------------------------------------------------------ *)
(* Checker: enumerate Hybrid(T) configurations once and store
   relation-independent violation templates.                           *)
(* ------------------------------------------------------------------ *)

type template = {
  t_events : Event.t array;
  t_inv : Event.Invocation.t;
  t_gmask : int;
  t_steps : step list;
  t_appended : Event.t;
  t_action : int;
}

type checker = {
  spec : Serial_spec.t;
  universe : Event.t list;
  templates : template list;
  n_configs : int;
}

let iconfig_key (c : Engine.iconfig) =
  let buf = Buffer.create 32 in
  List.iter
    (fun (e, a) ->
      Buffer.add_string buf (string_of_int e);
      Buffer.add_char buf '@';
      Buffer.add_string buf (string_of_int a);
      Buffer.add_char buf '|')
    c.ient;
  Buffer.add_char buf '#';
  List.iter
    (fun a ->
      Buffer.add_string buf (string_of_int a);
      Buffer.add_char buf ',')
    c.icommits;
  Buffer.contents buf

(* Canonical earliest-commit steps of an internal configuration, as the
   polymorphic-variant encoding used by the engine. *)
let isteps_of (c : Engine.iconfig) =
  let entries = Array.of_list c.ient in
  let n = Array.length entries in
  let last_exec a =
    let idx = ref (-1) in
    Array.iteri (fun i (_, a') -> if a = a' then idx := i) entries;
    !idx
  in
  let bunches = Array.make (max n 1) [] in
  let pos = ref (-1) in
  List.iter
    (fun cmt ->
      pos := max (last_exec cmt) !pos;
      if !pos >= 0 then bunches.(!pos) <- bunches.(!pos) @ [ cmt ])
    c.icommits;
  List.concat
    (List.init n (fun i ->
         let e, a = entries.(i) in
         `Exec (e, a) :: List.map (fun cmt -> `Commit cmt) bunches.(i)))

let iproject isteps ~keep =
  let kept_actions = Hashtbl.create 8 in
  let idx = ref (-1) in
  let selected =
    List.filter_map
      (fun s ->
        match s with
        | `Exec (_, a) ->
          incr idx;
          if keep !idx then begin
            Hashtbl.replace kept_actions a ();
            Some s
          end
          else None
        | `Commit _ -> Some s)
      isteps
  in
  List.filter
    (function `Exec _ -> true | `Commit a -> Hashtbl.mem kept_actions a)
    selected

let enumerate_configs engine ~n_events ~max_events ~max_actions =
  let visited = Hashtbl.create 4096 in
  let out = ref [] in
  let rec visit (c : Engine.iconfig) =
    let key = iconfig_key c in
    if not (Hashtbl.mem visited key) then begin
      Hashtbl.add visited key ();
      out := c :: !out;
      if List.length c.ient < max_events then begin
        let act = Engine.iactives c in
        let action_choices =
          if c.inact < max_actions then act @ [ c.inact ] else act
        in
        for eid = 0 to n_events - 1 do
          List.iter
            (fun a ->
              let ch = Engine.iexec c eid a in
              if Engine.iextension_ok engine ch a then begin
                visit ch;
                (* Commit bunches led by the executing action (earliest
                   placement); committing never breaks membership. *)
                let others = List.filter (fun b -> b <> a) (Engine.iactives ch) in
                List.iter
                  (fun s ->
                    List.iter
                      (fun p ->
                        visit { ch with icommits = ch.icommits @ (a :: p) })
                      (perms s))
                  (subsets others)
              end)
            action_choices
        done
      end
    end
  in
  visit Engine.iempty;
  List.rev !out

let public_steps universe isteps =
  List.map
    (function
      | `Exec (eid, a) -> Exec (universe.(eid), a)
      | `Commit a -> Commit a)
    isteps

let templates_of_config engine universe ~n_events ~max_templates ~seen count emit
    (c : Engine.iconfig) =
  let entries = Array.of_list c.ient in
  let n = Array.length entries in
  let events = lazy (Array.map (fun (eid, _) -> universe.(eid)) entries) in
  let isteps = isteps_of c in
  let steps = lazy (public_steps universe isteps) in
  (* Key for eager deduplication: distinct configurations frequently induce
     identical violation conditions, and the relation check only reads
     (events, invocation, gmask). *)
  let entries_key =
    String.concat ";"
      (List.map (fun (eid, _) -> string_of_int eid) c.ient)
  in
  let act = Engine.iactives c in
  for eid = 0 to n_events - 1 do
    let ev = universe.(eid) in
    List.iter
      (fun a ->
        (* The appended action: any active, or one fresh action (always
           permitted — the paper's examples append via a fresh action). *)
        let extended = Engine.iexec c eid a in
        if not (Engine.iextension_ok engine extended a) then
          (* H·[ev a] is outside Hybrid(T): any closed G that still accepts
             the event witnesses a violation. Record every subhistory
             selection whose extension stays hybrid. *)
          for gmask = 0 to (1 lsl n) - 2 do
            let key = entries_key ^ "!" ^ string_of_int eid ^ "!" ^ string_of_int gmask in
            if not (Hashtbl.mem seen key) then begin
              let keep i = gmask land (1 lsl i) <> 0 in
              let gsteps = iproject isteps ~keep @ [ `Exec (eid, a) ] in
              if Engine.isteps_hybrid engine gsteps then begin
                Hashtbl.add seen key ();
                incr count;
                if !count > max_templates then
                  failwith
                    "Hybrid_dep.make_checker: template budget exceeded; lower \
                     max_events/max_actions";
                emit
                  {
                    t_events = Lazy.force events;
                    t_inv = ev.Event.inv;
                    t_gmask = gmask;
                    t_steps = Lazy.force steps;
                    t_appended = ev;
                    t_action = a;
                  }
              end
            end
          done)
      (act @ [ c.inact ])
  done

let make_checker ?universe ?(max_templates = 2_000_000) spec ~max_events ~max_actions =
  let universe =
    match universe with
    | Some u -> u
    | None -> Serial_spec.event_universe spec ~max_len:max_events
  in
  let universe_arr = Array.of_list universe in
  let n_events = Array.length universe_arr in
  if max_actions + 1 >= Engine.span then invalid_arg "Hybrid_dep: max_actions too large";
  let engine = Engine.create spec universe in
  let configs = enumerate_configs engine ~n_events ~max_events ~max_actions in
  let count = ref 0 in
  let seen = Hashtbl.create 4096 in
  let templates = ref [] in
  List.iter
    (templates_of_config engine universe_arr ~n_events ~max_templates ~seen count
       (fun t -> templates := t :: !templates))
    configs;
  { spec; universe; templates = List.rev !templates; n_configs = List.length configs }

let config_count checker = checker.n_configs
let template_count checker = List.length checker.templates

let violates relation t =
  let n = Array.length t.t_events in
  let selected i = t.t_gmask land (1 lsl i) <> 0 in
  (* G must contain every event the appended invocation depends on. *)
  let deps_ok =
    let required i =
      selected i || not (Relation.mem (t.t_inv, t.t_events.(i)) relation)
    in
    let rec go i = i >= n || (required i && go (i + 1)) in
    go 0
  in
  (* G must be closed: a selected event pulls in every earlier event it
     depends on (Definition 1). *)
  let closed =
    let pulls_in j j' =
      Relation.mem (t.t_events.(j).Event.inv, t.t_events.(j')) relation
    in
    let ok_at j =
      (not (selected j))
      || (let rec inner j' =
            j' >= j || ((selected j' || not (pulls_in j j')) && inner (j' + 1))
          in
          inner 0)
    in
    let rec go j = j >= n || (ok_at j && go (j + 1)) in
    go 0
  in
  deps_ok && closed

let verify checker relation =
  match List.find_opt (violates relation) checker.templates with
  | None -> Ok ()
  | Some t ->
    let n = Array.length t.t_events in
    let g_positions =
      List.filter (fun i -> t.t_gmask land (1 lsl i) <> 0) (List.init n Fun.id)
    in
    Error
      {
        history = t.t_steps;
        g_positions;
        appended = t.t_appended;
        appended_action = t.t_action;
      }

let is_hybrid_dependency checker relation = Result.is_ok (verify checker relation)

let minimal_hybrids checker ~base =
  if not (is_hybrid_dependency checker base) then []
  else begin
    let cache = Hashtbl.create 256 in
    let key rel =
      String.concat "|"
        (List.map
           (fun (inv, e) -> Event.Invocation.to_string inv ^ ">=" ^ Event.to_string e)
           (Relation.elements rel))
    in
    let valid rel =
      let k = key rel in
      match Hashtbl.find_opt cache k with
      | Some b -> b
      | None ->
        let b = is_hybrid_dependency checker rel in
        Hashtbl.add cache k b;
        b
    in
    let visited = Hashtbl.create 256 in
    let results = ref [] in
    let rec go rel =
      let k = key rel in
      if not (Hashtbl.mem visited k) then begin
        Hashtbl.add visited k ();
        let shrinkable =
          List.filter (fun p -> valid (Relation.remove p rel)) (Relation.elements rel)
        in
        match shrinkable with
        | [] ->
          if not (List.exists (Relation.equal rel) !results) then
            results := rel :: !results
        | _ -> List.iter (fun p -> go (Relation.remove p rel)) shrinkable
      end
    in
    go base;
    List.rev !results
  end
