(** Bounded verification of hybrid dependency relations (paper, Definition 2
    applied to Hybrid(T)).

    Unlike the static and dynamic cases, a data type's minimal hybrid
    dependency relation need not be unique (paper, §4), and no closed-form
    characterization is available. This module decides, by bounded
    exhaustive search, whether a candidate relation [≽] is a hybrid
    dependency relation: it enumerates behavioral histories [H] in
    Hybrid(T), closed subhistories [G] of [H] containing every event [e]
    with [inv ≽ e], and appended events [\[inv;res A\]], looking for a
    violation — [G·\[inv;res A\]] in Hybrid(T) but [H·\[inv;res A\]] not.

    {b Canonical histories.} Hybrid atomicity is insensitive to where Begin
    events fall and, for fixed commit {e order}, committing an action only
    ever shrinks the set of serializations that must be legal. Hence the
    earliest-commit placement (each Commit immediately after its action's
    last execution, subject to commit order) is the most permissive
    interleaving: if any interleaving of a given (executions, commit order)
    configuration yields a violation of Definition 2, the earliest-commit
    interleaving of that configuration does. The search therefore enumerates
    configurations only, which keeps it exact while pruning interleaving
    duplicates.

    {b Templates.} All quantification except the relation itself is
    relation-independent, so the expensive enumeration runs once per
    (specification, bounds) as {!make_checker}; each candidate violation is
    stored as a template, and {!verify} reduces to testing, per template,
    whether the selected subhistory is closed under the candidate relation
    and contains its required dependencies. This makes the minimal-relation
    search ({!minimal_hybrids}) practical. *)

open Atomrep_history
open Atomrep_spec

type config = {
  entries : (Event.t * int) list;
      (** operation executions in history order; [int] is the action id *)
  commit_order : int list; (** committed action ids, in Commit-event order *)
  nactions : int;
}

type step = Exec of Event.t * int | Commit of int

val hybrid_ok : Serial_spec.t -> config -> bool
(** Does the configuration pass the on-line hybrid atomicity check — every
    serialization (committed actions in commit order, followed by any
    permutation of any subset of active actions) legal? *)

val steps_of : config -> step list
(** The canonical earliest-commit interleaving of a configuration. *)

val config_of_steps : step list -> config

val steps_hybrid : Serial_spec.t -> step list -> bool
(** Is the history (as an interleaving) a member of Hybrid(T) — i.e. does
    every execution prefix pass {!hybrid_ok}? *)

val project : step list -> keep:(int -> bool) -> step list
(** [project steps ~keep] deletes executions at positions (0-based, counting
    executions only) rejected by [keep], along with Commit entries of
    actions left without executions — the subhistory [G] with its inherited
    interleaving. *)

type counterexample = {
  history : step list;
  g_positions : int list;
  appended : Event.t;
  appended_action : int;
}

val pp_counterexample : Format.formatter -> counterexample -> unit

type checker

val make_checker :
  ?universe:Event.t list ->
  ?max_templates:int ->
  Serial_spec.t -> max_events:int -> max_actions:int -> checker
(** Enumerate Hybrid(T) configurations with at most [max_events] executions
    and [max_actions] actions (an appended event may always use one extra
    fresh action) and precompute violation templates. [universe] defaults to
    {!Serial_spec.event_universe} at [max_events].

    @raise Failure if the template store exceeds [max_templates]
    (default 2_000_000) — a signal to lower the bounds. *)

val config_count : checker -> int
val template_count : checker -> int

val verify : checker -> Relation.t -> (unit, counterexample) result
(** No counterexample within bounds — the relation is a hybrid dependency
    relation for the bounded fragment (and the bounds are chosen so the
    paper's witnesses lie inside it). A returned counterexample is exact:
    it identifies concrete histories violating Definition 2. *)

val is_hybrid_dependency : checker -> Relation.t -> bool

val minimal_hybrids : checker -> base:Relation.t -> Relation.t list
(** All minimal sub-relations of [base] that remain hybrid dependency
    relations at the checker's bounds. Requires [base] itself to verify;
    returns [[]] otherwise. Because validity is monotone under superset, a
    relation is minimal exactly when no single-pair removal verifies. *)
