open Atomrep_history
open Atomrep_spec

let items = [ "x"; "y" ]

(* --- PROM --- *)

let prom_hybrid_relation =
  Relation.of_list
    (List.map (fun i -> (Prom.seal_inv, Prom.write i)) items
    @ [ (Prom.seal_inv, Prom.read_disabled); (Prom.read_inv, Prom.seal) ]
    @ List.map (fun i -> (Prom.write_inv i, Prom.seal)) items)

let prom_static_extras =
  List.map (fun i -> (Prom.read_inv, Prom.write i)) items
  @ List.concat_map
      (fun i ->
        List.filter_map
          (fun j ->
            if String.equal i j then None else Some (Prom.write_inv i, Prom.read_ok j))
          ("d" :: items))
      items

let theorem5_history =
  Behavioral.of_script
    [
      ("A", `Begin);
      ("B", `Begin);
      ("C", `Begin);
      ("D", `Begin);
      ("A", `Exec (Prom.write "x"));
      ("A", `Commit);
      ("C", `Exec Prom.seal);
      ("C", `Commit);
      ("D", `Exec (Prom.read_ok "x"));
    ]

let theorem5_appended = Prom.write "y"

(* --- Queue --- *)

let queue_static_relation =
  Relation.of_list
    (List.concat_map
       (fun i ->
         List.filter_map
           (fun j -> if String.equal i j then None else Some (Queue_type.enq_inv i, Queue_type.deq_ok j))
           items)
       items
    @ List.map (fun i -> (Queue_type.enq_inv i, Queue_type.deq_empty)) items
    @ List.map (fun i -> (Queue_type.deq_inv, Queue_type.enq i)) items
    @ List.map (fun i -> (Queue_type.deq_inv, Queue_type.deq_ok i)) items)

let queue_dynamic_extra =
  List.concat_map
    (fun i ->
      List.filter_map
        (fun j ->
          if String.equal i j then None else Some (Queue_type.enq_inv i, Queue_type.enq j))
        items)
    items

(* --- FlagSet --- *)

let flagset_base_relation =
  Relation.of_list
    ([
       (Flag_set.open_inv, Flag_set.open_ok);
       (Flag_set.close_inv, Flag_set.open_ok);
       (Flag_set.shift_inv 3, Flag_set.shift_ok 2);
     ]
    @ List.concat_map
        (fun n ->
          [
            (Flag_set.open_inv, Flag_set.shift_disabled n);
            (Flag_set.close_inv, Flag_set.shift_ok n);
            (Flag_set.shift_inv n, Flag_set.open_ok);
            (Flag_set.shift_inv n, Flag_set.close false);
            (Flag_set.shift_inv n, Flag_set.close true);
          ])
        [ 1; 2; 3 ])

let flagset_alternative_31 =
  Relation.add (Flag_set.shift_inv 3, Flag_set.shift_ok 1) flagset_base_relation

let flagset_alternative_21 =
  Relation.add (Flag_set.shift_inv 2, Flag_set.shift_ok 1) flagset_base_relation

let flagset_core_universe =
  [
    Flag_set.open_ok;
    Flag_set.shift_ok 1;
    Flag_set.shift_ok 2;
    Flag_set.shift_ok 3;
    Flag_set.close false;
    Flag_set.close true;
  ]

(* --- DoubleBuffer --- *)

let doublebuffer_dynamic_relation =
  Relation.of_list
    (List.concat_map
       (fun i ->
         List.filter_map
           (fun j ->
             if String.equal i j then None
             else Some (Double_buffer.produce_inv i, Double_buffer.produce j))
           items)
       items
    @ List.map (fun i -> (Double_buffer.produce_inv i, Double_buffer.transfer)) items
    @ List.map (fun i -> (Double_buffer.transfer_inv, Double_buffer.produce i)) items
    @ [ (Double_buffer.consume_inv, Double_buffer.transfer) ]
    @ List.map
        (fun i -> (Double_buffer.transfer_inv, Double_buffer.consume i))
        ("d" :: items))

let theorem12_history =
  Behavioral.of_script
    [
      ("A", `Begin);
      ("B", `Begin);
      ("C", `Begin);
      ("A", `Exec (Double_buffer.produce "x"));
      ("A", `Exec Double_buffer.transfer);
      ("A", `Commit);
      ("C", `Exec Double_buffer.transfer);
      ("B", `Exec (Double_buffer.produce "y"));
    ]

let theorem12_appended = Double_buffer.consume "x"

(* --- Quorums --- *)

let prom_hybrid_quorums ~n =
  [ ("Read", (1, 1)); ("Seal", (n, n)); ("Write", (1, 1)) ]

let prom_static_quorums ~n =
  (* Write ≽s Read();Ok(y) forces Write's initial quorum to intersect
     Read's final quorums; keeping Read at one site therefore pushes
     Write's initial quorum to n as well — the "(1, n, n)" of §4. *)
  [ ("Read", (1, 1)); ("Seal", (n, n)); ("Write", (n, n)) ]

let spec_of_example = function
  | `Prom -> Prom.spec
  | `Queue -> Queue_type.spec
  | `FlagSet -> Flag_set.spec
  | `DoubleBuffer -> Double_buffer.spec
