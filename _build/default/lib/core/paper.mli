(** The paper's own relations and witness histories, as constants.

    Everything here appears verbatim in Herlihy 1985; the test suite and
    the experiment harness machine-check each one against the analysis
    modules. *)

open Atomrep_history
open Atomrep_spec

(** {1 PROM (§4)} *)

val prom_hybrid_relation : Relation.t
(** ≽h for PROM: Seal ≽ Write(x);Ok, Seal ≽ Read();Disabled,
    Read ≽ Seal;Ok, Write(x) ≽ Seal;Ok — over the item universe of
    {!Atomrep_spec.Prom.spec}. *)

val prom_static_extras : Relation.pair list
(** The two constraint schemas static atomicity adds for PROM
    (instantiated): Read ≽ Write(x);Ok and Write(x) ≽ Read();Ok(y). *)

val theorem5_history : Behavioral.t
(** The history H from Theorem 5's proof: A writes x and commits, C seals
    and commits, D reads x; appending Write(y) by B is static-atomic-fatal
    but hybrid-fine. *)

val theorem5_appended : Event.t
(** The appended event [Write(y);Ok()]. *)

(** {1 Queue (§3, Theorem 11)} *)

val queue_static_relation : Relation.t
(** The paper's four schemas for Queue, instantiated over items x, y:
    Enq(x) ≽ Deq();Ok(y) (distinct items), Enq(x) ≽ Deq();Empty(),
    Deq() ≽ Enq(x);Ok(), Deq() ≽ Deq();Ok(x). *)

val queue_dynamic_extra : Relation.pair list
(** Theorem 11's additional dynamic constraint: Enq(x) ≽ Enq(y);Ok(),
    distinct items. *)

(** {1 FlagSet (§4)} *)

val flagset_base_relation : Relation.t
(** The dependencies the paper proves must be in any hybrid dependency
    relation for FlagSet. *)

val flagset_alternative_31 : Relation.t
(** Base plus Shift(3) ≽ Shift(1);Ok(). *)

val flagset_alternative_21 : Relation.t
(** Base plus Shift(2) ≽ Shift(1);Ok(). *)

val flagset_core_universe : Event.t list
(** The six normal events driving the alternative-dependency argument —
    the sub-universe the bounded hybrid checker runs on. *)

(** {1 DoubleBuffer (§5, Theorem 12)} *)

val doublebuffer_dynamic_relation : Relation.t
(** ≽d for DoubleBuffer: Produce(x) ≽ Produce(y);Ok (distinct),
    Produce ≽ Transfer;Ok, Transfer ≽ Produce;Ok, Consume ≽ Transfer;Ok,
    Transfer ≽ Consume;Ok. *)

val theorem12_history : Behavioral.t
(** The history from Theorem 12's proof: A produces x, transfers, commits;
    C transfers; B produces y; appending Consume();Ok(x) by D breaks hybrid
    atomicity if B, C, D commit in that order. *)

val theorem12_appended : Event.t
(** [Consume();Ok(x)]. *)

(** {1 Quorum examples (§4)} *)

val prom_hybrid_quorums : n:int -> (string * (int * int)) list
(** The paper's hybrid PROM assignment on [n] identical sites:
    Read (1, 1), Seal (n, n), Write (1, 1) as (initial, final) sizes. *)

val prom_static_quorums : n:int -> (string * (int * int)) list
(** The static version: Write's final quorum grows to [n]. *)

val spec_of_example : [ `Prom | `Queue | `FlagSet | `DoubleBuffer ] -> Serial_spec.t
