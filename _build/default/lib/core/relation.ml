open Atomrep_history

type pair = Event.Invocation.t * Event.t

module Pair_ord = struct
  type t = pair

  let compare (i1, e1) (i2, e2) =
    let c = Event.Invocation.compare i1 i2 in
    if c <> 0 then c else Event.compare e1 e2
end

module S = Set.Make (Pair_ord)

type t = S.t

let empty = S.empty
let add = S.add
let remove = S.remove
let mem = S.mem
let of_list = S.of_list
let elements = S.elements
let cardinal = S.cardinal
let union = S.union
let inter = S.inter
let diff = S.diff
let subset = S.subset
let equal = S.equal
let compare = S.compare
let is_empty = S.is_empty

let dependencies_of t inv =
  S.elements t
  |> List.filter_map (fun (i, e) ->
       if Event.Invocation.equal i inv then Some e else None)

let pp_pair ppf ((inv, e) : pair) =
  Format.fprintf ppf "%a >= %a" Event.Invocation.pp inv Event.pp e

let pp ppf t =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_pair ppf (S.elements t)

type schema = {
  inv_op : string;
  inv_args : Value.t option list;
  ev_op : string;
  ev_args : Value.t option list;
  ev_label : string;
  ev_rets : Value.t option list;
}

let fold_arg = function
  | Value.Str _ -> None
  | v -> Some v

let schema_of ((inv, e) : pair) =
  {
    inv_op = inv.op;
    inv_args = List.map fold_arg inv.args;
    ev_op = e.inv.op;
    ev_args = List.map fold_arg e.inv.args;
    ev_label = e.res.label;
    ev_rets = List.map fold_arg e.res.rets;
  }

let args_match pattern args =
  List.length pattern = List.length args
  && List.for_all2
       (fun p a ->
         match p with
         | None -> (match a with Value.Str _ -> true | _ -> false)
         | Some v -> Value.equal v a)
       pattern args

let inv_matches schema (inv : Event.Invocation.t) =
  String.equal schema.inv_op inv.op && args_match schema.inv_args inv.args

let event_matches schema (e : Event.t) =
  String.equal schema.ev_op e.inv.op
  && args_match schema.ev_args e.inv.args
  && String.equal schema.ev_label e.res.label
  && args_match schema.ev_rets e.res.rets

let instances schema ~universe ~invocations =
  let invs = List.filter (inv_matches schema) invocations in
  let evs = List.filter (event_matches schema) universe in
  List.concat_map (fun i -> List.map (fun e -> (i, e)) evs) invs

let schematize ~universe ~invocations t =
  let by_schema = Hashtbl.create 16 in
  S.iter
    (fun pair ->
      let key = schema_of pair in
      let existing = Option.value (Hashtbl.find_opt by_schema key) ~default:[] in
      Hashtbl.replace by_schema key (pair :: existing))
    t;
  let schemas = Hashtbl.fold (fun key _ acc -> key :: acc) by_schema [] in
  let complete, partial =
    List.partition
      (fun schema ->
        let required = instances schema ~universe ~invocations in
        required <> [] && List.for_all (fun p -> S.mem p t) required)
      schemas
  in
  let leftover =
    List.concat_map (fun schema -> List.rev (Hashtbl.find by_schema schema)) partial
    |> List.sort Pair_ord.compare
  in
  let ordered =
    List.sort
      (fun a b ->
        let c = String.compare a.inv_op b.inv_op in
        if c <> 0 then c else String.compare b.ev_op a.ev_op)
      complete
  in
  (ordered, leftover)

let pp_schema ppf schema =
  (* Item variables are named x, y, z, … in order of appearance. *)
  let counter = ref 0 in
  let letters = [| "x"; "y"; "z"; "u"; "v"; "w" |] in
  let fresh () =
    let name = letters.(!counter mod Array.length letters) in
    incr counter;
    name
  in
  let cell = function
    | None -> fresh ()
    | Some v -> Value.to_string v
  in
  let cells args = String.concat ", " (List.map cell args) in
  let inv_args = cells schema.inv_args in
  let ev_args = cells schema.ev_args in
  let ev_rets = cells schema.ev_rets in
  Format.fprintf ppf "%s(%s) >= %s(%s);%s(%s)" schema.inv_op inv_args schema.ev_op
    ev_args schema.ev_label ev_rets

let pp_schematic ~universe ~invocations ppf t =
  let schemas, leftover = schematize ~universe ~invocations t in
  let pp_sep ppf () = Format.pp_print_newline ppf () in
  Format.pp_print_list ~pp_sep pp_schema ppf schemas;
  if schemas <> [] && leftover <> [] then pp_sep ppf ();
  Format.pp_print_list ~pp_sep pp_pair ppf leftover
