(** Dependency relations between invocations and events (paper, §3.2).

    A relation [≽] is a set of pairs (invocation, event), read
    "inv depends on e": a front-end executing [inv] must observe every
    earlier [e] event in its view. Constraints on quorum assignment are
    expressed as requirements that certain initial and final quorums
    intersect; a quorum choice is correct exactly when its intersection
    relation is an atomic dependency relation for the object's behavioral
    specification.

    Relations are finite sets over the bounded invocation/event universes of
    a specification. For display, instances that differ only in string-typed
    (item) arguments are folded into schemas — the paper's
    [Enq(x) ≽ Deq();Ok(y)] notation — whenever every instance of the schema
    is present; integer arguments stay concrete, matching the paper's
    [Shift(3) ≽ Shift(2);Ok()]. *)

open Atomrep_history

type pair = Event.Invocation.t * Event.t

type t

val empty : t
val add : pair -> t -> t
val remove : pair -> t -> t
val mem : pair -> t -> bool
val of_list : pair list -> t
val elements : t -> pair list
val cardinal : t -> int
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val subset : t -> t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val is_empty : t -> bool

val dependencies_of : t -> Event.Invocation.t -> Event.t list
(** All events the invocation depends on. *)

val pp_pair : Format.formatter -> pair -> unit
(** One pair in the paper's style: [Enq(x) >= Deq();Ok(y)]. *)

val pp : Format.formatter -> t -> unit
(** All pairs, one per line. *)

type schema = {
  inv_op : string;
  inv_args : Value.t option list; (** [None] marks a folded item variable *)
  ev_op : string;
  ev_args : Value.t option list;
  ev_label : string;
  ev_rets : Value.t option list;
}

val schematize : universe:Event.t list -> invocations:Event.Invocation.t list -> t -> schema list * pair list
(** [(schemas, leftover)]: schemas whose every instance over the given
    universes belongs to the relation, folding string arguments; concrete
    pairs not covered by any complete schema are returned in [leftover]. *)

val pp_schema : Format.formatter -> schema -> unit

val pp_schematic :
  universe:Event.t list -> invocations:Event.Invocation.t list ->
  Format.formatter -> t -> unit
(** Paper-style display: complete schemas first, then leftover concrete
    pairs. *)
