open Atomrep_history
open Atomrep_spec

(* Split each enumerated legal history H into h1·h2·h3 and test Theorem 6's
   two conditions for every candidate pair of events, reusing the states
   reached along H to avoid re-running prefixes. *)

let prefix_states spec events =
  (* States s.(i) after the first i events; events are known legal. *)
  let n = List.length events in
  let states = Array.make (n + 1) spec.Serial_spec.initial in
  List.iteri
    (fun i e ->
      match Serial_spec.apply_event spec states.(i) e with
      | Some s -> states.(i + 1) <- s
      | None -> invalid_arg "Static_dep: history not legal")
    events;
  states

type split = {
  s1 : Value.t; (* state after h1 *)
  h2 : Event.t list;
  s2 : Value.t; (* state after h1·h2 *)
  h3 : Event.t list;
}

let splits_of spec events =
  let states = prefix_states spec events in
  let arr = Array.of_list events in
  let n = Array.length arr in
  let sub i j = Array.to_list (Array.sub arr i (j - i)) in
  let acc = ref [] in
  for i = 0 to n do
    for j = i to n do
      acc := { s1 = states.(i); h2 = sub i j; s2 = states.(j); h3 = sub j n } :: !acc
    done
  done;
  !acc

(* Condition 1 with [ev] inserted after h1 and [e] after h2; condition 2 is
   the same test with the roles of [ev] and [e] exchanged, so one primitive
   serves both. [first] is inserted after h1, [second] after h2. *)
let condition spec split ~first ~second =
  match Serial_spec.apply_event spec split.s1 first with
  | None -> false
  | Some s1' ->
    let rec run s = function
      | [] -> Some s
      | e :: rest ->
        (match Serial_spec.apply_event spec s e with
         | None -> None
         | Some s' -> run s' rest)
    in
    (match run s1' split.h2 with
     | None -> false
     | Some t2 ->
       (* h1·first·h2·h3 legal? *)
       Serial_spec.legal_from spec t2 split.h3
       && (match Serial_spec.apply_event spec split.s2 second with
           | None -> false
           | Some s2' ->
             (* h1·h2·second·h3 legal? *)
             Serial_spec.legal_from spec s2' split.h3
             (* h1·first·h2·second·h3 illegal? *)
             && not
                  (match Serial_spec.apply_event spec t2 second with
                   | None -> false
                   | Some u -> Serial_spec.legal_from spec u split.h3)))

let pair_in_split spec split ev e =
  condition spec split ~first:ev ~second:e
  || condition spec split ~first:e ~second:ev

let default_events spec ~max_len events =
  match events with
  | Some evs -> evs
  | None -> Serial_spec.event_universe spec ~max_len

let minimal ?events spec ~max_len =
  let universe = default_events spec ~max_len events in
  let histories = Serial_spec.enumerate spec ~max_len in
  let relation = ref Relation.empty in
  let consider split =
    List.iter
      (fun ev ->
        List.iter
          (fun e ->
            if not (Relation.mem (ev.Event.inv, e) !relation)
               && pair_in_split spec split ev e
            then relation := Relation.add (ev.Event.inv, e) !relation)
          universe)
      universe
  in
  List.iter
    (fun (hist, _) -> List.iter consider (splits_of spec hist))
    histories;
  !relation

let witness ?events spec ~max_len inv e =
  let universe = default_events spec ~max_len events in
  let candidates =
    List.filter (fun (ev : Event.t) -> Event.Invocation.equal ev.inv inv) universe
  in
  let histories = Serial_spec.enumerate spec ~max_len in
  let check_history (hist, _) =
    let states = prefix_states spec hist in
    let arr = Array.of_list hist in
    let n = Array.length arr in
    let sub i j = Array.to_list (Array.sub arr i (j - i)) in
    let check_split i j =
      let split = { s1 = states.(i); h2 = sub i j; s2 = states.(j); h3 = sub j n } in
      List.find_map
        (fun ev ->
          if pair_in_split spec split ev e then
            Some (sub 0 i, ev, split.h2, split.h3)
          else None)
        candidates
    in
    let rec over_splits i j =
      if i > n then None
      else if j > n then over_splits (i + 1) (i + 1)
      else
        match check_split i j with
        | Some w -> Some w
        | None -> over_splits i (j + 1)
    in
    over_splits 0 0
  in
  List.find_map check_history histories
