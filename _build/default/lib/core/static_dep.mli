(** The unique minimal static dependency relation (paper, Theorem 6).

    [inv ≽s e] holds when there exist a response [res] and serial histories
    [h1], [h2], [h3] with [h1·h2·h3] legal such that either

    + [h1·[inv;res]·h2·h3] and [h1·h2·e·h3] are legal but
      [h1·[inv;res]·h2·e·h3] is illegal, or
    + [h1·e·h2·h3] and [h1·h2·[inv;res]·h3] are legal but
      [h1·e·h2·[inv;res]·h3] is illegal.

    The computation is exhaustive over all legal serial histories of the
    specification up to [max_len] events (the combined length of
    [h1·h2·h3]) and over the bounded event universe, so the result is the
    minimal static dependency relation of the specification restricted to
    that bound. For the paper's data types the relation is saturated at
    small bounds (the theorem's witnesses use three-event histories). *)

open Atomrep_history
open Atomrep_spec

val minimal :
  ?events:Event.t list -> Serial_spec.t -> max_len:int -> Relation.t
(** [minimal spec ~max_len] computes [≽s]. [events] overrides the candidate
    event universe (default: {!Serial_spec.event_universe} at [max_len]). *)

val witness :
  ?events:Event.t list ->
  Serial_spec.t ->
  max_len:int ->
  Event.Invocation.t ->
  Event.t ->
  (Event.t list * Event.t * Event.t list * Event.t list) option
(** [witness spec ~max_len inv e] returns [(h1, ev, h2, h3)] realizing the
    first or second condition for the pair, if the pair is in the bounded
    relation — the paper-style evidence printed by the experiment
    harness. [ev] is the [inv;res] event chosen. *)
