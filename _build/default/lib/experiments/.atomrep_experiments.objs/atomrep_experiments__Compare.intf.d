lib/experiments/compare.mli: Atomrep_core Atomrep_history Atomrep_spec Behavioral Format Relation Serial_spec
