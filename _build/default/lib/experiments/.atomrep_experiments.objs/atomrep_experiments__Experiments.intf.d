lib/experiments/experiments.mli:
