open Atomrep_history
open Atomrep_core
open Atomrep_spec
open Atomrep_atomicity

type verdict =
  | Equal
  | Left_strictly_contains
  | Right_strictly_contains
  | Incomparable

let pp_verdict ppf v =
  Format.pp_print_string ppf
    (match v with
     | Equal -> "equal (no separating witness found)"
     | Left_strictly_contains -> "left strictly contains right"
     | Right_strictly_contains -> "right strictly contains left"
     | Incomparable -> "incomparable")

let verdict_of ~left_only ~right_only =
  match left_only, right_only with
  | false, false -> Equal
  | true, false -> Left_strictly_contains
  | false, true -> Right_strictly_contains
  | true, true -> Incomparable

type concurrency_report = {
  samples : int;
  static_vs_hybrid : verdict;
  hybrid_vs_dynamic : verdict;
  static_vs_dynamic : verdict;
  witness_hybrid_not_static : Behavioral.t option;
  witness_static_not_hybrid : Behavioral.t option;
  witness_hybrid_not_dynamic : Behavioral.t option;
}

let concurrency ?(seed = 1985) ?(samples = 2000) ?(max_actions = 3) ?(max_events = 4)
    spec =
  let rng = Atomrep_stats.Rng.create seed in
  let sta_not_hyb = ref None and hyb_not_sta = ref None in
  let hyb_not_dyn = ref None and dyn_not_hyb = ref None in
  let sta_not_dyn = ref false and dyn_not_sta = ref false in
  for _ = 1 to samples do
    let h = Atomrep_workload.Histories.random rng spec ~max_actions ~max_events in
    let s = Atomicity.is_static_atomic spec h in
    let y = Atomicity.is_hybrid_atomic spec h in
    let d = Atomicity.is_dynamic_atomic spec h in
    if s && not y && Option.is_none !sta_not_hyb then sta_not_hyb := Some h;
    if y && not s && Option.is_none !hyb_not_sta then hyb_not_sta := Some h;
    if y && not d && Option.is_none !hyb_not_dyn then hyb_not_dyn := Some h;
    if d && not y && Option.is_none !dyn_not_hyb then dyn_not_hyb := Some h;
    if s && not d then sta_not_dyn := true;
    if d && not s then dyn_not_sta := true
  done;
  {
    samples;
    static_vs_hybrid =
      verdict_of
        ~left_only:(Option.is_some !sta_not_hyb)
        ~right_only:(Option.is_some !hyb_not_sta);
    hybrid_vs_dynamic =
      verdict_of
        ~left_only:(Option.is_some !hyb_not_dyn)
        ~right_only:(Option.is_some !dyn_not_hyb);
    static_vs_dynamic = verdict_of ~left_only:!sta_not_dyn ~right_only:!dyn_not_sta;
    witness_hybrid_not_static = !hyb_not_sta;
    witness_static_not_hybrid = !sta_not_hyb;
    witness_hybrid_not_dynamic = !hyb_not_dyn;
  }

type availability_report = {
  n_sites : int;
  static_count : int;
  hybrid_count : int;
  dynamic_count : int;
  static_vs_hybrid : verdict;
  hybrid_vs_dynamic : verdict;
}

let availability ?(max_len = 4) ~hybrid_relations ~n_sites spec =
  let open Atomrep_quorum in
  let ops =
    List.sort_uniq String.compare
      (List.map
         (fun (inv : Event.Invocation.t) -> inv.op)
         spec.Serial_spec.invocations)
  in
  let static_cs = Op_constraint.of_relation (Static_dep.minimal spec ~max_len) in
  let dynamic_cs = Op_constraint.of_relation (Dynamic_dep.minimal spec ~max_len) in
  let hybrid_css = List.map Op_constraint.of_relation hybrid_relations in
  let everything = Assignment.enumerate ~n_sites ~ops [] in
  let static_valid = List.filter (fun a -> Assignment.satisfies a static_cs) everything in
  let hybrid_valid =
    List.filter (fun a -> List.exists (Assignment.satisfies a) hybrid_css) everything
  in
  let dynamic_valid =
    List.filter (fun a -> Assignment.satisfies a dynamic_cs) everything
  in
  let only xs ys = List.exists (fun x -> not (List.mem x ys)) xs in
  {
    n_sites;
    static_count = List.length static_valid;
    hybrid_count = List.length hybrid_valid;
    dynamic_count = List.length dynamic_valid;
    static_vs_hybrid =
      verdict_of
        ~left_only:(only static_valid hybrid_valid)
        ~right_only:(only hybrid_valid static_valid);
    hybrid_vs_dynamic =
      verdict_of
        ~left_only:(only hybrid_valid dynamic_valid)
        ~right_only:(only dynamic_valid hybrid_valid);
  }
