(** Programmatic verdicts for the paper's two comparison figures.

    Figure 1-1 orders the three local atomicity properties by the
    concurrency (sets of histories) they permit; Figure 1-2 by the quorum
    assignments (availability trade-offs) their minimal dependency
    relations admit. This module computes both comparisons for a concrete
    data type, with witnesses. *)

open Atomrep_history
open Atomrep_core
open Atomrep_spec

type verdict =
  | Equal
  | Left_strictly_contains (** left permits everything right does, + more *)
  | Right_strictly_contains
  | Incomparable

val pp_verdict : Format.formatter -> verdict -> unit

type concurrency_report = {
  samples : int;
  static_vs_hybrid : verdict;
  hybrid_vs_dynamic : verdict;
  static_vs_dynamic : verdict;
  witness_hybrid_not_static : Behavioral.t option;
  witness_static_not_hybrid : Behavioral.t option;
  witness_hybrid_not_dynamic : Behavioral.t option;
}

val concurrency :
  ?seed:int -> ?samples:int -> ?max_actions:int -> ?max_events:int ->
  Serial_spec.t -> concurrency_report
(** Sample random histories and compare which properties accept them. A
    [Left_strictly_contains] verdict means every sampled history accepted
    by the right property was accepted by the left and some history
    separated them; [Equal] means no sampled history separated them
    (bounded evidence, not proof). Expected per the paper: hybrid strictly
    contains dynamic; static incomparable with both (on types rich enough
    to separate them). *)

type availability_report = {
  n_sites : int;
  static_count : int;
  hybrid_count : int;
  dynamic_count : int;
  static_vs_hybrid : verdict; (** hybrid-valid vs static-valid assignment sets *)
  hybrid_vs_dynamic : verdict;
}

val availability :
  ?max_len:int -> hybrid_relations:Relation.t list -> n_sites:int ->
  Serial_spec.t -> availability_report
(** Exhaustive threshold-assignment comparison at the operation level.
    [hybrid_relations] are the minimal hybrid relations to accept against
    (e.g. from {!Hybrid_dep.minimal_hybrids}); an assignment is
    hybrid-valid when it satisfies any of them. Expected per the paper:
    hybrid ⊇ static always (Theorem 4), strictly for types like PROM;
    dynamic incomparable for types like DoubleBuffer. *)
