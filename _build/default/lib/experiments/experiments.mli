(** The experiment harness: one entry per figure / worked example of the
    paper (see DESIGN.md's experiment index). Each experiment prints the
    reproduced rows through {!Atomrep_stats.Table} and returns nothing;
    failures to reproduce the paper's claims are printed as such (and the
    test suite asserts the claims independently). *)

val e1_concurrency : unit -> unit
(** Figure 1-1: classify random behavioral histories by the three local
    atomicity properties per data type; report acceptance counts and the
    containment/incomparability witnesses. *)

val e2_availability : unit -> unit
(** Figure 1-2: valid threshold-assignment counts per property and
    replication degree; checks Static ⊆ Hybrid strictly and Dynamic
    incomparable to both. *)

val e3_prom : unit -> unit
(** §4's PROM example: the paper's hybrid (1,n,1) vs static (1,n,n)
    assignments and their per-operation availability as the site-up
    probability varies. *)

val e4_static_vs_hybrid : unit -> unit
(** Theorems 4/5/6 on PROM: minimal static relation, the hybrid relation's
    verification, and the Theorem 5 witness run through the checkers. *)

val e5_flagset : unit -> unit
(** §4's FlagSet example: the base relation fails, both extensions verify,
    each is minimal — minimal hybrid relations are not unique. *)

val e6_queue : unit -> unit
(** Theorem 11 on Queue: static vs dynamic relations and their cheapest
    quorum assignments. *)

val e7_doublebuffer : unit -> unit
(** Theorem 12 on DoubleBuffer: the dynamic relation is not a hybrid
    dependency relation; counterexample printed. *)

val e8_simulation : unit -> unit
(** §3.2 end-to-end: replicated-queue availability under crash faults per
    scheme, and the §2 partition comparison against available copies. *)

val e9_concurrency_sim : unit -> unit
(** Throughput/abort comparison of the three schemes under contention, on
    workloads chosen so each mechanism's strength shows. *)

val e10_read_write_ablation : unit -> unit
(** Type-specific constraints vs Gifford read/write classification:
    assignment counts and best achievable workload availability. *)

val e11_weighted_voting : unit -> unit
(** Extension (Gifford [11]): weighted voting on heterogeneously reliable
    sites vs the best uniform threshold assignment — votes migrate to the
    reliable site. *)

val e12_partition_availability : unit -> unit
(** Extension (§3's fault model): Monte-Carlo operation availability under
    crashes plus partitions for the paper's PROM assignments — hybrid's
    one-site Write quorum survives partitions that kill static's
    all-sites Write quorum. *)

val e13_anti_entropy : unit -> unit
(** Extension: status-gossip ablation under crash faults — safety is
    unchanged (the quorums' job); blocking and conflict aborts shrink as
    stale tentative entries resolve sooner. *)

val all : (string * string * (unit -> unit)) list
(** (id, description, run) for every experiment, in order. *)

val run_by_id : string -> bool
(** Run one experiment by id (e.g. "e3"); false if the id is unknown. *)
