lib/history/action.ml: Char Format Map Set String
