lib/history/action.mli: Format Map Set
