lib/history/behavioral.ml: Action Event Format List Seq
