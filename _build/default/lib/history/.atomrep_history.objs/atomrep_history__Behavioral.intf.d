lib/history/behavioral.mli: Action Event Format Seq
