lib/history/event.ml: Format List Map Set String Value
