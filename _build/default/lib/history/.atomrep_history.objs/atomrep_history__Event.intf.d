lib/history/event.mli: Format Map Set Value
