lib/history/value.ml: Bool Format Int String
