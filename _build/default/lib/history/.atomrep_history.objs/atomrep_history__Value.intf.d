lib/history/value.mli: Format
