type t = string

let of_string s = s

let of_int n =
  (* Small indices map onto the paper's A, B, C … naming. *)
  if n >= 0 && n < 26 then String.make 1 (Char.chr (Char.code 'A' + n))
  else "T" ^ string_of_int n

let to_string t = t
let compare = String.compare
let equal = String.equal
let pp ppf t = Format.pp_print_string ppf t

module Set = Set.Make (String)
module Map = Map.Make (String)
