(** Action (transaction) identifiers.

    The basic units of computation in the paper are sequential processes
    called actions. An action identifier names one action within a behavioral
    history; identifiers carry no other structure. *)

type t

val of_string : string -> t
val of_int : int -> t
val to_string : t -> string
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
