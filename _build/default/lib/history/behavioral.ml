type entry =
  | Begin of Action.t
  | Exec of Event.t * Action.t
  | Commit of Action.t
  | Abort of Action.t

type t = entry list

let pp_entry ppf = function
  | Begin a -> Format.fprintf ppf "Begin %a" Action.pp a
  | Exec (e, a) -> Format.fprintf ppf "%a %a" Event.pp e Action.pp a
  | Commit a -> Format.fprintf ppf "Commit %a" Action.pp a
  | Abort a -> Format.fprintf ppf "Abort %a" Action.pp a

let pp ppf t =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_entry ppf t

let to_string t = Format.asprintf "%a" pp t

let action_of = function
  | Begin a | Exec (_, a) | Commit a | Abort a -> a

let well_formed t =
  let module M = Action.Map in
  (* status: 0 = unseen, 1 = begun, 2 = finished *)
  let rec go status = function
    | [] -> true
    | Begin a :: rest ->
      if M.mem a status then false else go (M.add a 1 status) rest
    | Exec (_, a) :: rest ->
      (match M.find_opt a status with
       | Some 1 -> go status rest
       | Some _ | None -> false)
    | (Commit a | Abort a) :: rest ->
      (match M.find_opt a status with
       | Some 1 -> go (M.add a 2 status) rest
       | Some _ | None -> false)
  in
  go M.empty t

let actions t =
  List.filter_map (function Begin a -> Some a | Exec _ | Commit _ | Abort _ -> None) t

let committed t =
  List.filter_map (function Commit a -> Some a | Begin _ | Exec _ | Abort _ -> None) t

let aborted t =
  List.to_seq t
  |> Seq.filter_map (function Abort a -> Some a | Begin _ | Exec _ | Commit _ -> None)

let is_aborted t a = Seq.exists (Action.equal a) (aborted t)

let active t =
  let finished =
    List.filter_map
      (function Commit a | Abort a -> Some a | Begin _ | Exec _ -> None)
      t
  in
  List.filter (fun a -> not (List.exists (Action.equal a) finished)) (actions t)

let begin_order t =
  List.filter (fun a -> not (is_aborted t a)) (actions t)

let events_of t a =
  List.filter_map
    (function
      | Exec (e, a') when Action.equal a a' -> Some e
      | Begin _ | Exec _ | Commit _ | Abort _ -> None)
    t

let all_events t =
  List.filter_map
    (function Exec (e, a) -> Some (e, a) | Begin _ | Commit _ | Abort _ -> None)
    t

let live_events t =
  List.filter (fun (_, a) -> not (is_aborted t a)) (all_events t)

let serialize t order = List.concat_map (events_of t) order

let precedes_pairs t =
  (* A precedes B when B executes an operation after A commits. *)
  let rec go committed_so_far acc = function
    | [] -> acc
    | Commit a :: rest -> go (a :: committed_so_far) acc rest
    | Exec (_, b) :: rest ->
      let acc =
        List.fold_left
          (fun acc a -> if Action.equal a b then acc else (a, b) :: acc)
          acc committed_so_far
      in
      go committed_so_far acc rest
    | (Begin _ | Abort _) :: rest -> go committed_so_far acc rest
  in
  let executes_something a = events_of t a <> [] in
  let pairs = go [] [] t in
  let pairs =
    List.filter
      (fun (a, b) ->
        (not (is_aborted t a)) && (not (is_aborted t b))
        && executes_something a && executes_something b)
      pairs
  in
  List.sort_uniq
    (fun (a1, b1) (a2, b2) ->
      let c = Action.compare a1 a2 in
      if c <> 0 then c else Action.compare b1 b2)
    pairs

let linear_extensions pairs items =
  let relevant (a, b) =
    List.exists (Action.equal a) items && List.exists (Action.equal b) items
  in
  let pairs = List.filter relevant pairs in
  let rec extend remaining =
    match remaining with
    | [] -> [ [] ]
    | _ ->
      let minimal x =
        not (List.exists (fun (a, b) -> Action.equal b x && List.exists (Action.equal a) remaining) pairs)
      in
      let candidates = List.filter minimal remaining in
      List.concat_map
        (fun c ->
          let rest = List.filter (fun x -> not (Action.equal x c)) remaining in
          List.map (fun tail -> c :: tail) (extend rest))
        candidates
  in
  extend items

let subsets l =
  List.fold_right
    (fun x acc -> List.concat_map (fun s -> [ s; x :: s ]) acc)
    l [ [] ]

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    let with_head i x =
      let rest = List.filteri (fun j _ -> j <> i) l in
      List.map (fun p -> x :: p) (permutations rest)
    in
    List.concat (List.mapi with_head l)

let append t entry = t @ [ entry ]

let strip_aborted t =
  let dead = List.of_seq (aborted t) in
  List.filter (fun entry -> not (List.exists (Action.equal (action_of entry)) dead)) t

let of_script script =
  List.map
    (fun (name, step) ->
      let a = Action.of_string name in
      match step with
      | `Begin -> Begin a
      | `Commit -> Commit a
      | `Abort -> Abort a
      | `Exec e -> Exec (e, a))
    script
