(** Behavioral histories (paper, §3.1).

    In the presence of failure and concurrency, an object's state is given by
    a behavioral history: a sequence of Begin events, operation executions,
    Commit events and Abort events, each associated with an action. The
    ordering of operation executions reflects the order in which the object
    returned responses. *)

type entry =
  | Begin of Action.t
  | Exec of Event.t * Action.t
  | Commit of Action.t
  | Abort of Action.t

type t = entry list
(** In execution order (head first). *)

val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val well_formed : t -> bool
(** Checks: at most one Begin / Commit / Abort per action; every execution,
    Commit and Abort follows that action's Begin; no executions after the
    action commits or aborts; no action both commits and aborts. *)

val actions : t -> Action.t list
(** All actions with a Begin entry, in Begin order. *)

val committed : t -> Action.t list
(** Committed actions, in Commit-event order. *)

val aborted : t -> Action.t Seq.t

val is_aborted : t -> Action.t -> bool

val active : t -> Action.t list
(** Actions begun but neither committed nor aborted, in Begin order. *)

val begin_order : t -> Action.t list
(** Non-aborted actions in the order of their Begin events. *)

val events_of : t -> Action.t -> Event.t list
(** The subsequence of events executed by one action, in execution order. *)

val all_events : t -> (Event.t * Action.t) list
(** All executions in history order, including those of aborted actions. *)

val live_events : t -> (Event.t * Action.t) list
(** All executions by non-aborted actions, in history order. *)

val serialize : t -> Action.t list -> Event.t list
(** [serialize h order] is the serial history obtained by concatenating each
    listed action's event subsequence, in the given order (paper's
    "serialization of H in the order >>"). Actions absent from [order] are
    excluded. *)

val precedes_pairs : t -> (Action.t * Action.t) list
(** The partial precedes order (§5): [A] precedes [B] when [B] executes an
    operation after [A] commits. Only pairs between non-aborted actions that
    executed at least one event are reported. *)

val linear_extensions : (Action.t * Action.t) list -> Action.t list -> Action.t list list
(** [linear_extensions pairs actions] enumerates all total orders over
    [actions] consistent with the given precedence pairs. *)

val subsets : 'a list -> 'a list list
(** All sublists, preserving relative order. Used to enumerate the sets of
    active actions hypothetically committed by on-line atomicity checks. *)

val permutations : 'a list -> 'a list list

val append : t -> entry -> t

val strip_aborted : t -> t
(** Remove aborted actions' entries entirely (recoverability: an aborted
    action has no effect). *)

val of_script : (string * [ `Begin | `Commit | `Abort | `Exec of Event.t ]) list -> t
(** Convenience constructor for tests: action names with steps. *)
