module Invocation = struct
  type t = { op : string; args : Value.t list }

  let make op args = { op; args }

  let compare a b =
    let c = String.compare a.op b.op in
    if c <> 0 then c else List.compare Value.compare a.args b.args

  let equal a b = compare a b = 0

  let pp ppf { op; args } =
    Format.fprintf ppf "%s(%a)" op
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") Value.pp)
      args

  let to_string t = Format.asprintf "%a" pp t
end

module Response = struct
  type t = { label : string; rets : Value.t list }

  let make label rets = { label; rets }
  let ok rets = { label = "Ok"; rets }
  let exn label = { label; rets = [] }
  let is_ok t = String.equal t.label "Ok"

  let compare a b =
    let c = String.compare a.label b.label in
    if c <> 0 then c else List.compare Value.compare a.rets b.rets

  let equal a b = compare a b = 0

  let pp ppf { label; rets } =
    Format.fprintf ppf "%s(%a)" label
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") Value.pp)
      rets
end

type t = { inv : Invocation.t; res : Response.t }

let make inv res = { inv; res }
let simple op args res = { inv = Invocation.make op args; res }
let is_normal t = Response.is_ok t.res

let compare a b =
  let c = Invocation.compare a.inv b.inv in
  if c <> 0 then c else Response.compare a.res b.res

let equal a b = compare a b = 0

let pp ppf { inv; res } = Format.fprintf ppf "%a;%a" Invocation.pp inv Response.pp res
let to_string t = Format.asprintf "%a" pp t

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
