(** Invocations, responses and events.

    An event is a pair consisting of an operation invocation and a response
    (paper, §3.1). An invocation names an operation and supplies arguments; a
    response carries a termination label — ["Ok"] for normal termination, or
    an exception name such as ["Empty"] or ["Disabled"] — and result values. *)

module Invocation : sig
  type t = { op : string; args : Value.t list }

  val make : string -> Value.t list -> t
  val compare : t -> t -> int
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end

module Response : sig
  type t = { label : string; rets : Value.t list }

  val ok : Value.t list -> t
  (** Normal termination. *)

  val exn : string -> t
  (** Exceptional termination with no results. *)

  val make : string -> Value.t list -> t
  val is_ok : t -> bool
  val compare : t -> t -> int
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

type t = { inv : Invocation.t; res : Response.t }

val make : Invocation.t -> Response.t -> t

val simple : string -> Value.t list -> Response.t -> t
(** [simple op args res] builds the event [op(args); res]. *)

val is_normal : t -> bool
(** A normal event is one that terminates with Ok (paper, §4). *)

val compare : t -> t -> int
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Prints in the paper's style, e.g. [Enq(x);Ok()] or [Deq();Empty()]. *)

val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
