type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | List of t list
  | Pair of t * t

let rec compare a b =
  match a, b with
  | Unit, Unit -> 0
  | Unit, _ -> -1
  | _, Unit -> 1
  | Bool x, Bool y -> Bool.compare x y
  | Bool _, _ -> -1
  | _, Bool _ -> 1
  | Int x, Int y -> Int.compare x y
  | Int _, _ -> -1
  | _, Int _ -> 1
  | Str x, Str y -> String.compare x y
  | Str _, _ -> -1
  | _, Str _ -> 1
  | List x, List y -> compare_lists x y
  | List _, _ -> -1
  | _, List _ -> 1
  | Pair (x1, x2), Pair (y1, y2) ->
    let c = compare x1 y1 in
    if c <> 0 then c else compare x2 y2

and compare_lists x y =
  match x, y with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | a :: x', b :: y' ->
    let c = compare a b in
    if c <> 0 then c else compare_lists x' y'

let equal a b = compare a b = 0

let rec pp ppf = function
  | Unit -> Format.pp_print_string ppf "()"
  | Bool b -> Format.pp_print_bool ppf b
  | Int n -> Format.pp_print_int ppf n
  | Str s -> Format.pp_print_string ppf s
  | List l ->
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ") pp)
      l
  | Pair (a, b) -> Format.fprintf ppf "(%a, %a)" pp a pp b

let to_string v = Format.asprintf "%a" pp v

let unit = Unit
let bool b = Bool b
let int n = Int n
let str s = Str s
let list l = List l
let pair a b = Pair (a, b)

let get_bool = function
  | Bool b -> b
  | v -> invalid_arg ("Value.get_bool: " ^ to_string v)

let get_int = function
  | Int n -> n
  | v -> invalid_arg ("Value.get_int: " ^ to_string v)

let get_list = function
  | List l -> l
  | v -> invalid_arg ("Value.get_list: " ^ to_string v)
