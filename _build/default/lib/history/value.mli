(** Universal first-order values.

    Serial specifications in this repository are state machines whose states,
    operation arguments and results are all drawn from one comparable value
    type, so that histories, specifications and analysis results can be
    manipulated, compared and printed generically. This mirrors the paper's
    treatment of "items" as opaque values. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | List of t list
  | Pair of t * t

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val unit : t
val bool : bool -> t
val int : int -> t
val str : string -> t
val list : t list -> t
val pair : t -> t -> t

val get_bool : t -> bool
(** @raise Invalid_argument if the value is not a [Bool]. *)

val get_int : t -> int
(** @raise Invalid_argument if the value is not an [Int]. *)

val get_list : t -> t list
(** @raise Invalid_argument if the value is not a [List]. *)
