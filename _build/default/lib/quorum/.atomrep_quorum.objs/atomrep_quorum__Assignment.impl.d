lib/quorum/assignment.ml: Array Atomrep_stats Binomial Format List Op_constraint String
