lib/quorum/assignment.mli: Format Op_constraint
