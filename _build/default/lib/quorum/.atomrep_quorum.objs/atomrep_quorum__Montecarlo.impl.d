lib/quorum/montecarlo.ml: Array Assignment Atomrep_stats Fun List Quorum Rng Weighted
