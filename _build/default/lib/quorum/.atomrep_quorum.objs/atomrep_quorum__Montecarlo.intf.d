lib/quorum/montecarlo.mli: Assignment Atomrep_stats Rng Weighted
