lib/quorum/op_constraint.ml: Atomrep_core Atomrep_history Event Format Hashtbl List Option Relation String
