lib/quorum/op_constraint.mli: Atomrep_core Format Relation
