lib/quorum/quorum.ml: Format List
