lib/quorum/weighted.ml: Array Fun List Op_constraint Quorum String
