lib/quorum/weighted.mli: Op_constraint Quorum
