open Atomrep_stats

type sizes = { initial : int; final : int }

type t = {
  n_sites : int;
  ops : (string * sizes) list;
}

let make ~n_sites ops =
  { n_sites; ops = List.sort (fun (a, _) (b, _) -> String.compare a b) ops }

let sizes_of t op =
  match List.assoc_opt op t.ops with
  | Some s -> s
  | None -> invalid_arg ("Assignment.sizes_of: unknown operation " ^ op)

let pp ppf t =
  Format.fprintf ppf "n=%d" t.n_sites;
  List.iter
    (fun (op, { initial; final }) ->
      Format.fprintf ppf " %s:(i=%d,f=%d)" op initial final)
    t.ops

let satisfies t constraints =
  List.for_all
    (fun (c : Op_constraint.t) ->
      let i = (sizes_of t c.dependent).initial in
      let f = (sizes_of t c.supplier).final in
      i + f > t.n_sites)
    constraints

let enumerate ~n_sites ~ops constraints =
  (* Depth-first assignment of (initial, final) per operation with early
     pruning: a constraint can be checked as soon as both its endpoints are
     fixed. *)
  let ops = List.sort String.compare ops in
  let arr = Array.of_list ops in
  let k = Array.length arr in
  let index op =
    let rec find i = if i >= k then None else if String.equal arr.(i) op then Some i else find (i + 1) in
    find 0
  in
  let constraints =
    List.filter_map
      (fun (c : Op_constraint.t) ->
        match index c.dependent, index c.supplier with
        | Some d, Some s -> Some (d, s)
        | None, _ | _, None -> None)
      constraints
  in
  let chosen = Array.make k { initial = 0; final = 0 } in
  let results = ref [] in
  let check_up_to m =
    List.for_all
      (fun (d, s) ->
        d > m || s > m || chosen.(d).initial + chosen.(s).final > n_sites)
      constraints
  in
  let rec assign i =
    if i = k then
      results := { n_sites; ops = Array.to_list (Array.mapi (fun j s -> (arr.(j), s)) chosen) } :: !results
    else
      for ki = 0 to n_sites do
        for kf = 0 to n_sites do
          chosen.(i) <- { initial = ki; final = kf };
          if check_up_to i then assign (i + 1)
        done
      done
  in
  assign 0;
  List.rev !results

let count ~n_sites ~ops constraints =
  List.length (enumerate ~n_sites ~ops constraints)

let availability t ~p op =
  let { initial; final } = sizes_of t op in
  Binomial.at_least ~n:t.n_sites ~p (max initial final)

let workload_availability t ~p ~mix =
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 mix in
  if total <= 0.0 then 0.0
  else
    List.fold_left
      (fun acc (op, w) -> acc +. (w /. total *. availability t ~p op))
      0.0 mix

let total_size t =
  List.fold_left (fun acc (_, s) -> acc + s.initial + s.final) 0 t.ops

let best_for_mix ~p ~mix assignments =
  let better a b =
    let av_a = workload_availability a ~p ~mix
    and av_b = workload_availability b ~p ~mix in
    if av_a > av_b then true
    else if av_a < av_b then false
    else total_size a < total_size b
  in
  List.fold_left
    (fun best a ->
      match best with
      | None -> Some a
      | Some b -> if better a b then Some a else best)
    None assignments

let pareto_optimal ~p ~ops assignments =
  let vector a = List.map (fun op -> availability a ~p op) ops in
  let dominated va vb =
    (* vb dominates va *)
    List.for_all2 (fun x y -> y >= x) va vb && List.exists2 (fun x y -> y > x) va vb
  in
  let with_vectors = List.map (fun a -> (a, vector a)) assignments in
  List.filter_map
    (fun (a, va) ->
      if List.exists (fun (_, vb) -> dominated va vb) with_vectors then None
      else Some a)
    with_vectors
