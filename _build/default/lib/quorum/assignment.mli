(** Threshold quorum assignments and their exhaustive enumeration.

    A threshold assignment gives each operation an initial quorum size and a
    final quorum size over [n] identical sites: any [k]-subset of sites is a
    quorum. The intersection requirement [initial(a) ∩ final(b) ≠ ∅] becomes
    [ki(a) + kf(b) > n]. Because the paper's availability comparisons (§4)
    are stated for identical sites, threshold assignments realize exactly
    the assignment space those comparisons range over; weighted voting is a
    refinement handled in {!Weighted}. *)

type sizes = { initial : int; final : int }

type t = {
  n_sites : int;
  ops : (string * sizes) list; (** every operation of the type, sorted *)
}

val make : n_sites:int -> (string * sizes) list -> t
val sizes_of : t -> string -> sizes
val pp : Format.formatter -> t -> unit

val satisfies : t -> Op_constraint.t list -> bool
(** Do all constraint pairs intersect — [ki(dependent) + kf(supplier) >
    n]? *)

val enumerate : n_sites:int -> ops:string list -> Op_constraint.t list -> t list
(** All valid threshold assignments. Initial sizes range over [0..n] (an
    operation with no dependencies needs no initial quorum), final sizes
    over [0..n] (an event no operation depends on need not be logged).
    Exhaustive: [(n+1)^(2k)] candidates pruned by constraint checking. *)

val count : n_sites:int -> ops:string list -> Op_constraint.t list -> int
(** [List.length (enumerate ...)] without materializing the list. *)

val availability : t -> p:float -> string -> float
(** Probability that the operation can execute when each site is up
    independently with probability [p]: a live initial quorum and a live
    final quorum must exist, i.e. at least [max ki kf] of [n] sites up. *)

val workload_availability : t -> p:float -> mix:(string * float) list -> float
(** Expected availability under an operation mix (weights need not be
    normalized). *)

val best_for_mix :
  p:float -> mix:(string * float) list -> t list -> t option
(** The assignment maximizing workload availability; ties broken toward
    smaller total quorum sizes (cheaper operations). *)

val pareto_optimal : p:float -> ops:string list -> t list -> t list
(** Assignments whose per-operation availability vector is not dominated
    (componentwise [>=], somewhere [>]) by another's. *)
