(** Availability under correlated failures — crashes plus partitions.

    The exact binomial analysis in {!Assignment} assumes independent site
    failures and full connectivity. The paper's fault model (§3) also
    admits communication failures that partition the network; this module
    estimates operation availability by Monte Carlo over a configurable
    fault model: heterogeneous per-site up probabilities and a partition
    that occurs with some probability, seen from a client co-located with
    a given site (front-ends sit at client sites, §3.2). *)

open Atomrep_stats

type fault_model = {
  p_up : float array; (** per-site up probability (length = n sites) *)
  partition_probability : float;
      (** probability that the network is split into [groups] *)
  groups : int list list; (** the partition, when it happens *)
}

val uniform : n:int -> p:float -> fault_model
(** Independent crashes only. *)

val estimate :
  Rng.t -> trials:int -> fault_model -> client_site:int -> Assignment.t ->
  op:string -> float
(** Fraction of trials in which the client's site is up and the set of up
    sites reachable from it contains both an initial and a final quorum
    for [op]. *)

val estimate_weighted :
  Rng.t -> trials:int -> fault_model -> client_site:int -> Weighted.t ->
  op:string -> float
(** The same under a weighted-voting assignment. *)
