open Atomrep_history
open Atomrep_core

type t = {
  dependent : string;
  supplier : string;
  labels : string list;
}

let of_relation relation =
  let table = Hashtbl.create 16 in
  List.iter
    (fun ((inv : Event.Invocation.t), (e : Event.t)) ->
      let key = (inv.op, e.inv.op) in
      let labels = Option.value (Hashtbl.find_opt table key) ~default:[] in
      if not (List.mem e.res.label labels) then
        Hashtbl.replace table key (e.res.label :: labels))
    (Relation.elements relation);
  Hashtbl.fold
    (fun (dependent, supplier) labels acc ->
      { dependent; supplier; labels = List.sort String.compare labels } :: acc)
    table []
  |> List.sort (fun a b ->
         let c = String.compare a.dependent b.dependent in
         if c <> 0 then c else String.compare a.supplier b.supplier)

let read_write ~ops =
  let writers =
    List.filter_map
      (fun (name, klass) ->
        match klass with `Write | `Update -> Some name | `Read -> None)
      ops
  in
  List.concat_map
    (fun (dependent, _) ->
      List.map (fun supplier -> { dependent; supplier; labels = [ "Ok" ] }) writers)
    ops
  |> List.sort (fun a b ->
         let c = String.compare a.dependent b.dependent in
         if c <> 0 then c else String.compare a.supplier b.supplier)

let pp ppf { dependent; supplier; labels } =
  Format.fprintf ppf "initial(%s) x final(%s) [%s]" dependent supplier
    (String.concat "," labels)
