(** Operation-level quorum intersection constraints.

    A dependency pair [inv ≽ e] requires every initial quorum of [inv]'s
    operation to intersect every final quorum of [e]'s event (paper, §3.2).
    Quorums are assigned per operation, so a dependency relation projects to
    a set of operation pairs; the response label of the supplying event is
    retained for display ([Seal ≽ Read();Disabled()] constrains Seal's
    initial quorums against the final quorums Read uses for its Disabled
    events — under per-operation assignment, Read's final quorums). *)

open Atomrep_core

type t = {
  dependent : string; (** operation whose {e initial} quorums are constrained *)
  supplier : string; (** operation whose {e final} quorums must be seen *)
  labels : string list; (** response labels of the supplying events *)
}

val of_relation : Relation.t -> t list
(** Project a dependency relation to operation-level constraints, merging
    pairs that differ only in arguments or labels. Sorted by operation
    names. *)

val read_write : ops:(string * [ `Read | `Write | `Update ]) list -> t list
(** The classical read/write (Gifford) constraint set over the same
    operations: every operation's initial quorum must intersect every final
    quorum of every state-modifying operation ([`Write] blind write,
    [`Update] read-modify-write; [`Read] never modifies). This encodes
    [r + w > n] and [w + w > n] in the same constraint language, for the
    paper's claim that a read/write classification restricts availability
    relative to type-specific analysis. *)

val pp : Format.formatter -> t -> unit
