type t = int

let empty = 0
let of_sites l = List.fold_left (fun acc s -> acc lor (1 lsl s)) 0 l

let sites t =
  let rec go i acc = if 1 lsl i > t then List.rev acc
    else go (i + 1) (if t land (1 lsl i) <> 0 then i :: acc else acc)
  in
  go 0 []

let cardinal t =
  let rec go t acc = if t = 0 then acc else go (t lsr 1) (acc + (t land 1)) in
  go t 0

let intersects a b = a land b <> 0
let subset a b = a land b = a
let union a b = a lor b
let inter a b = a land b
let is_empty t = t = 0
let mem s t = t land (1 lsl s) <> 0
let equal (a : t) b = a = b
let full n = (1 lsl n) - 1

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (sites t)

let all_of_size ~n k =
  let rec go from remaining acc =
    if remaining = 0 then [ acc ]
    else if from >= n then []
    else go (from + 1) (remaining - 1) (acc lor (1 lsl from)) @ go (from + 1) remaining acc
  in
  if k < 0 || k > n then [] else go 0 k 0

let contains_quorum_of_size ~live k = cardinal live >= k
