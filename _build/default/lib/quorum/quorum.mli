(** Quorums as site sets (paper, §1, §3.2).

    A quorum for an operation is any set of sites whose cooperation suffices
    to execute that operation. Sites are numbered [0 .. n-1]; a quorum is a
    bitset over them. *)

type t
(** A set of sites. *)

val of_sites : int list -> t
val sites : t -> int list
val cardinal : t -> int
val intersects : t -> t -> bool
val subset : t -> t -> bool
val union : t -> t -> t
val inter : t -> t -> t
val is_empty : t -> bool
val mem : int -> t -> bool
val equal : t -> t -> bool
val empty : t
val full : int -> t
(** [full n] contains sites [0 .. n-1]. *)

val pp : Format.formatter -> t -> unit

val all_of_size : n:int -> int -> t list
(** [all_of_size ~n k] enumerates every k-subset of [0 .. n-1] — the
    threshold quorum family of size [k]. *)

val contains_quorum_of_size : live:t -> int -> bool
(** Does the live set contain some quorum of the given threshold size —
    i.e. is its cardinality at least the threshold? *)
