type t = {
  weights : int array;
  ops : (string * (int * int)) list;
}

let make ~weights ops = { weights; ops }

let total_votes t = Array.fold_left ( + ) 0 t.weights

let votes_of t op =
  match List.assoc_opt op t.ops with
  | Some v -> v
  | None -> invalid_arg ("Weighted.votes_of: unknown operation " ^ op)

let live_votes t live =
  let acc = ref 0 in
  Array.iteri (fun i w -> if Quorum.mem i live then acc := !acc + w) t.weights;
  !acc

let quorum_live t ~live ~votes = live_votes t live >= votes

let op_available t ~live op =
  let vi, vf = votes_of t op in
  let v = live_votes t live in
  v >= vi && v >= vf

let satisfies t constraints =
  let total = total_votes t in
  List.for_all
    (fun (c : Op_constraint.t) ->
      let vi, _ = votes_of t c.dependent in
      let _, vf = votes_of t c.supplier in
      vi + vf > total)
    constraints

let availability_hetero t ~p_up op =
  let n = Array.length t.weights in
  let acc = ref 0.0 in
  for mask = 0 to (1 lsl n) - 1 do
    let live = Quorum.of_sites (List.filter (fun i -> mask land (1 lsl i) <> 0) (List.init n Fun.id)) in
    if op_available t ~live op then begin
      let prob = ref 1.0 in
      for i = 0 to n - 1 do
        prob := !prob *. (if mask land (1 lsl i) <> 0 then p_up.(i) else 1.0 -. p_up.(i))
      done;
      acc := !acc +. !prob
    end
  done;
  !acc

let availability t ~p op =
  availability_hetero t ~p_up:(Array.make (Array.length t.weights) p) op

let enumerate ~weights ~ops constraints =
  let total = Array.fold_left ( + ) 0 weights in
  let k = List.length ops in
  let arr = Array.of_list ops in
  let index op =
    let rec find i =
      if i >= k then None else if String.equal arr.(i) op then Some i else find (i + 1)
    in
    find 0
  in
  let constraints =
    List.filter_map
      (fun (c : Op_constraint.t) ->
        match index c.dependent, index c.supplier with
        | Some d, Some s -> Some (d, s)
        | None, _ | _, None -> None)
      constraints
  in
  let chosen = Array.make k (0, 0) in
  let results = ref [] in
  let check_up_to m =
    List.for_all
      (fun (d, s) ->
        d > m || s > m || fst chosen.(d) + snd chosen.(s) > total)
      constraints
  in
  let rec assign i =
    if i = k then
      results :=
        { weights; ops = Array.to_list (Array.mapi (fun j v -> (arr.(j), v)) chosen) }
        :: !results
    else
      for vi = 0 to total do
        for vf = 0 to total do
          chosen.(i) <- (vi, vf);
          if check_up_to i then assign (i + 1)
        done
      done
  in
  assign 0;
  List.rev !results

let best_for_mix ~p_up ~mix assignments =
  let score a =
    let total_weight = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 mix in
    List.fold_left
      (fun acc (op, w) -> acc +. (w /. total_weight *. availability_hetero a ~p_up op))
      0.0 mix
  in
  let cost a = List.fold_left (fun acc (_, (vi, vf)) -> acc + vi + vf) 0 a.ops in
  List.fold_left
    (fun best a ->
      match best with
      | None -> Some a
      | Some b ->
        let sa = score a and sb = score b in
        if sa > sb || (sa = sb && cost a < cost b) then Some a else best)
    None assignments
