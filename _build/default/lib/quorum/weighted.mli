(** Weighted voting (Gifford [11]) generalization of threshold quorums.

    Each site carries a vote weight; a quorum for an operation is any site
    set whose weights total at least the operation's vote threshold.
    Threshold assignments are the special case of unit weights. Weighted
    assignments can shift availability toward specific operations on
    heterogeneous sites — the refinement the paper's §2 credits to Gifford
    and that {!Assignment} flattens away for identical sites. *)

type t = {
  weights : int array; (** votes per site *)
  ops : (string * (int * int)) list;
      (** per operation: (initial votes, final votes) required *)
}

val make : weights:int array -> (string * (int * int)) list -> t

val total_votes : t -> int

val quorum_live : t -> live:Quorum.t -> votes:int -> bool
(** Do the live sites muster the required votes? *)

val op_available : t -> live:Quorum.t -> string -> bool

val satisfies : t -> Op_constraint.t list -> bool
(** Every initial quorum of a dependent operation intersects every final
    quorum of its supplier: with weights totalling [W], votes [vi + vf > W]
    guarantee intersection (and this is tight for weighted families). *)

val availability : t -> p:float -> string -> float
(** Exact availability by enumeration over the [2^n] up-sets; sites fail
    independently with probability [1 - p]. Intended for the small
    replication degrees used in the experiments. *)

val availability_hetero : t -> p_up:float array -> string -> float
(** Exact availability with per-site up probabilities. *)

val enumerate :
  weights:int array -> ops:string list -> Op_constraint.t list -> t list
(** Every vote assignment (initial and final votes per operation, each in
    [0 .. total votes]) satisfying the constraints [vi + vf > total].
    Exhaustive; sized for small vote totals. *)

val best_for_mix :
  p_up:float array -> mix:(string * float) list -> t list -> t option
(** The assignment maximizing the mix-weighted availability under
    heterogeneous site reliabilities. *)
