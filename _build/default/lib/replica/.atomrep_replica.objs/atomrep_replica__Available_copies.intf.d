lib/replica/available_copies.mli: Atomrep_history Behavioral
