lib/replica/gifford.ml: Array Atomrep_sim Fun List Network Rpc
