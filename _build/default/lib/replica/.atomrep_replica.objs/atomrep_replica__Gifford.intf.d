lib/replica/gifford.mli: Atomrep_sim Network
