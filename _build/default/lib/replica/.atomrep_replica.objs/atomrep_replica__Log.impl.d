lib/replica/log.ml: Action Atomrep_clock Atomrep_history Event Format Int Lamport List Set
