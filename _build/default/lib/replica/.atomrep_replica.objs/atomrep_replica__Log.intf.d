lib/replica/log.mli: Action Atomrep_clock Atomrep_history Event Format Lamport
