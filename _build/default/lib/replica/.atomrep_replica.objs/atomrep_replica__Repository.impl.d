lib/replica/repository.ml: Action Atomrep_clock Atomrep_history Lamport List Log
