lib/replica/repository.mli: Action Atomrep_clock Atomrep_history Lamport Log
