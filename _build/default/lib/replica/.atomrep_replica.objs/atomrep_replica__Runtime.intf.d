lib/replica/runtime.mli: Assignment Atomrep_core Atomrep_history Atomrep_quorum Atomrep_sim Atomrep_spec Atomrep_stats Behavioral Event Network Relation Replicated Rng Serial_spec Summary
