lib/replica/view.ml: Action Atomrep_clock Atomrep_history Int Lamport List Log
