lib/replica/view.mli: Action Atomrep_clock Atomrep_history Event Lamport Log
