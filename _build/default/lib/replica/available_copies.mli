(** The available-copies replication method (paper §2; Goodman et al. [12];
    SDD-1, ISIS), as a baseline.

    Failed sites are configured out and recovered sites configured back in;
    clients read from any available copy and write to all available copies.
    Unlike quorum consensus, the method performs no intersection check, so
    a communication partition lets both sides read and write their own
    copies independently — it does {e not} preserve serializability under
    partition, which this module demonstrates mechanically.

    The object is a register (read/write file), the setting of the
    classical treatments. *)

open Atomrep_history

type outcome = {
  history : Behavioral.t; (** global behavioral history of committed actions *)
  committed : int;
  serializable : bool;
      (** is the committed history serializable in {e any} action order —
          decided exhaustively (runs are small) *)
}

val run :
  seed:int ->
  n_sites:int ->
  txns_per_side:int ->
  partition_at:float ->
  heal_at:float ->
  unit ->
  outcome
(** Run read-modify-write transactions against an available-copies
    register: before [partition_at] all sites cooperate; between
    [partition_at] and [heal_at] the network splits in two halves, and
    transactions keep executing on both sides (each side sees "the
    available copies"); after healing, more transactions run. With writes
    on both sides of the partition, the committed history is typically not
    serializable. *)

val quorum_reference :
  seed:int ->
  n_sites:int ->
  txns_per_side:int ->
  partition_at:float ->
  heal_at:float ->
  unit ->
  int * int * bool
(** The same scenario through the quorum-consensus runtime (majority
    quorums, hybrid scheme): returns (committed, aborted, serializable).
    Minority-side transactions abort for lack of quorums, and the history
    stays serializable — the §2 comparison. *)
