(** Gifford's weighted voting for replicated files ([11]; paper §2), as a
    concrete runnable baseline.

    Each representative (repository) stores a (version, value) pair and
    carries votes. A read collects a read quorum of [r] votes and returns
    the value with the highest version; a write collects version numbers
    from a write quorum of [w] votes, increments the highest, and installs
    the new version at that quorum. Correctness needs [r + w > total] (a
    read quorum intersects every write quorum) and [2w > total] (two write
    quorums intersect, so version numbers grow monotonically).

    This is exactly the special case of the paper's typed quorum consensus
    for the Register type with its read/write classification — the general
    machinery subsumes it; the module exists so the baseline in the
    comparison experiments is the real protocol rather than a constraint
    encoding. Operations are individual (no multi-operation transactions),
    matching Gifford's file-suite granularity. *)

open Atomrep_sim

type t

val create :
  net:Network.t -> weights:int array -> read_votes:int -> write_votes:int ->
  initial:string -> t
(** @raise Invalid_argument if the vote thresholds violate
    [r + w > total] or [2w > total]. *)

val read : t -> from:int -> k:(string option -> unit) -> unit
(** [None] when no read quorum of live sites is reachable. *)

val write : t -> from:int -> string -> k:(bool -> unit) -> unit
(** [false] when no write quorum is reachable (nothing installed at a full
    quorum — a failed write may leave versions at a minority, which later
    writes supersede). *)

val current : t -> site:int -> int * string
(** Test access: the (version, value) stored at one representative. *)
