open Atomrep_history
open Atomrep_clock

type t = {
  committed : (Lamport.Timestamp.t * Log.entry) list;
  tentative : Log.entry list;
}

let classify log =
  let entries = Log.entries log in
  let committed, tentative =
    List.fold_left
      (fun (committed, tentative) (e : Log.entry) ->
        if Log.is_aborted log e.action then (committed, tentative)
        else
          match Log.commit_ts log e.action with
          | Some cts -> ((cts, e) :: committed, tentative)
          | None -> (committed, e :: tentative))
      ([], []) entries
  in
  let committed =
    List.sort
      (fun (t1, e1) (t2, e2) ->
        let c = Lamport.Timestamp.compare t1 t2 in
        if c <> 0 then c else Lamport.Timestamp.compare e1.Log.ets e2.Log.ets)
      committed
  in
  let tentative =
    List.sort (fun e1 e2 -> Lamport.Timestamp.compare e1.Log.ets e2.Log.ets) tentative
  in
  { committed; tentative }

let committed_events t = List.map (fun (_, e) -> e.Log.event) t.committed

let events_of_action t action =
  let mine =
    List.filter_map
      (fun (_, e) -> if Action.equal e.Log.action action then Some e else None)
      t.committed
    @ List.filter (fun e -> Action.equal e.Log.action action) t.tentative
  in
  List.sort (fun e1 e2 -> Int.compare e1.Log.seq e2.Log.seq) mine
  |> List.map (fun e -> e.Log.event)

let static_timeline t ~insert ~include_tentative =
  let base =
    List.map (fun (_, e) -> e) t.committed
    @ (if include_tentative then t.tentative else [])
  in
  let keyed =
    List.map (fun (e : Log.entry) -> ((e.begin_ts, e.seq), e.event)) base
  in
  let keyed =
    match insert with
    | None -> keyed
    | Some (bts, seq, event) -> ((bts, seq), event) :: keyed
  in
  List.sort
    (fun ((b1, s1), _) ((b2, s2), _) ->
      let c = Lamport.Timestamp.compare b1 b2 in
      if c <> 0 then c else Int.compare s1 s2)
    keyed
  |> List.map snd

let tentative_conflicting t ~me flagged =
  List.find_opt
    (fun (e : Log.entry) -> (not (Action.equal e.action me)) && flagged e)
    t.tentative
