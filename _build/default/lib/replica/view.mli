(** Views: merged initial-quorum logs classified for scheme decisions
    (paper, §3.2: "The front-end merges the logs from an initial quorum for
    the invocation to construct a view"). *)

open Atomrep_history
open Atomrep_clock

type t = {
  committed : (Lamport.Timestamp.t * Log.entry) list;
      (** entries of committed actions with their commit timestamps, sorted
          by (commit timestamp, entry timestamp) — hybrid serialization
          order *)
  tentative : Log.entry list;
      (** entries of actions with no commit or abort record in the view,
          sorted by entry timestamp *)
}

val classify : Log.t -> t

val committed_events : t -> Event.t list
(** Committed events in commit-timestamp order. *)

val events_of_action : t -> Action.t -> Event.t list
(** All non-aborted entries of one action, committed or tentative, in
    per-action sequence order. *)

val static_timeline : t -> insert:(Lamport.Timestamp.t * int * Event.t) option ->
  include_tentative:bool -> Event.t list
(** Events ordered by (action Begin timestamp, per-action sequence) — the
    static serialization order. [insert] adds a hypothetical event for an
    action with the given Begin timestamp and sequence number.
    [include_tentative] controls whether uncommitted actions' entries
    participate (they do for validation, not for response computation). *)

val tentative_conflicting :
  t -> me:Action.t -> (Log.entry -> bool) -> Log.entry option
(** First tentative entry of another action flagged by the predicate. *)
