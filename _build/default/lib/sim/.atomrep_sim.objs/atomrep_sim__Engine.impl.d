lib/sim/engine.ml: Array Atomrep_stats
