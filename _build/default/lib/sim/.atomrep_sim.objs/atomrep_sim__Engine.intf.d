lib/sim/engine.mli: Atomrep_stats
