lib/sim/fault.ml: Atomrep_stats Engine Network Rng
