lib/sim/fault.mli: Network
