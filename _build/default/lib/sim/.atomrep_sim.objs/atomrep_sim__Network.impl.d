lib/sim/network.ml: Array Atomrep_stats Engine Fun List Rng
