lib/sim/rpc.ml: Engine List Network
