(** Discrete-event simulation engine.

    Time is a float of abstract milliseconds. Events are closures ordered by
    (time, insertion sequence); ties execute in insertion order, which —
    together with the deterministic {!Atomrep_stats.Rng} — makes every run
    reproducible from its seed. *)

type t

val create : seed:int -> t
val now : t -> float
val rng : t -> Atomrep_stats.Rng.t

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Run the closure [delay] time units from now. Negative delays are
    clamped to zero. *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit

val run : ?until:float -> t -> unit
(** Execute events in order until the queue empties or simulated time would
    exceed [until]. *)

val pending : t -> int
