open Atomrep_stats

let crash_recover net ~site ~mtbf ~mttr =
  let engine = Network.engine net in
  let rng = Engine.rng engine in
  let rec up_phase () =
    Engine.schedule engine ~delay:(Rng.exponential rng mtbf) (fun () ->
        Network.crash net site;
        down_phase ())
  and down_phase () =
    Engine.schedule engine ~delay:(Rng.exponential rng mttr) (fun () ->
        Network.recover net site;
        up_phase ())
  in
  up_phase ()

let crash_recover_all net ~mtbf ~mttr =
  for site = 0 to Network.n_sites net - 1 do
    crash_recover net ~site ~mtbf ~mttr
  done

let periodic_partition net ~groups ~every ~duration =
  let engine = Network.engine net in
  let rec cycle () =
    Engine.schedule engine ~delay:every (fun () ->
        Network.partition net groups;
        Engine.schedule engine ~delay:duration (fun () ->
            Network.heal net;
            cycle ()))
  in
  cycle ()
