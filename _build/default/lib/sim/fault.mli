(** Fault injection schedules for simulation experiments. *)

val crash_recover :
  Network.t ->
  site:int ->
  mtbf:float ->
  mttr:float ->
  unit
(** Start a crash/recover process for one site: exponentially distributed
    time-between-failures with mean [mtbf], repair time with mean [mttr]. *)

val crash_recover_all : Network.t -> mtbf:float -> mttr:float -> unit

val periodic_partition :
  Network.t ->
  groups:int list list ->
  every:float ->
  duration:float ->
  unit
(** Periodically install the given partition for [duration] time units,
    healing in between; first partition after [every]. *)
