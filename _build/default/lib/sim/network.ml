open Atomrep_stats

type t = {
  engine : Engine.t;
  n_sites : int;
  latency_mean : float;
  drop_probability : float;
  up : bool array;
  mutable groups : int array; (* partition group per site *)
}

let create engine ~n_sites ?(latency_mean = 5.0) ?(drop_probability = 0.0) () =
  {
    engine;
    n_sites;
    latency_mean;
    drop_probability;
    up = Array.make n_sites true;
    groups = Array.make n_sites 0;
  }

let engine t = t.engine
let n_sites t = t.n_sites
let site_up t s = t.up.(s)
let crash t s = t.up.(s) <- false
let recover t s = t.up.(s) <- true

let partition t groups =
  let assignment = Array.make t.n_sites (-1) in
  List.iteri
    (fun g sites -> List.iter (fun s -> assignment.(s) <- g) sites)
    groups;
  let next = List.length groups in
  Array.iteri (fun s g -> if g = -1 then assignment.(s) <- next) assignment;
  t.groups <- assignment

let heal t = t.groups <- Array.make t.n_sites 0

let reachable t a b = t.up.(a) && t.up.(b) && t.groups.(a) = t.groups.(b)

let send t ~src ~dst thunk =
  let rng = Engine.rng t.engine in
  let latency = Rng.exponential rng t.latency_mean in
  let same_site = src = dst in
  let dropped =
    (not same_site)
    && (t.groups.(src) <> t.groups.(dst) || Rng.bernoulli rng t.drop_probability)
  in
  if not dropped then
    Engine.schedule t.engine ~delay:latency (fun () -> if t.up.(dst) then thunk ())

let up_sites t =
  List.filter (fun s -> t.up.(s)) (List.init t.n_sites Fun.id)
