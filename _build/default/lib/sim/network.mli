(** Simulated network of sites with crashes, partitions and message loss
    (paper, §3: sites crash; links lose messages; long-lived failures cause
    partitions in which functioning sites cannot communicate).

    Messages are closures delivered at the destination after an
    exponentially distributed latency, unless the destination is down at
    delivery time, the message is dropped (link failure), or source and
    destination lie in different partition groups at send time. A site that
    crashes loses nothing it already handed to the application — stable
    storage is the application's concern ({!Atomrep_replica.Repository}
    keeps its log across crashes, as repositories own stable storage). *)

type t

val create :
  Engine.t -> n_sites:int -> ?latency_mean:float -> ?drop_probability:float -> unit -> t

val engine : t -> Engine.t
val n_sites : t -> int

val site_up : t -> int -> bool
val crash : t -> int -> unit
val recover : t -> int -> unit

val partition : t -> int list list -> unit
(** Install a partition: each list is a group; messages between different
    groups are lost. Sites not listed form an implicit final group. *)

val heal : t -> unit
(** Remove any partition. *)

val reachable : t -> int -> int -> bool
(** Both sites up and in the same partition group. *)

val send : t -> src:int -> dst:int -> (unit -> unit) -> unit
(** Deliver the closure at [dst] (it runs only if [dst] is up at delivery
    time). Loss, latency and partitions apply; sending to self delivers
    with latency but never drops. *)

val up_sites : t -> int list
