(** Request/response on top of {!Network} with timeouts.

    The absence of a response may mean the request was lost, the reply was
    lost, the recipient crashed, or the recipient is slow (paper, §3); the
    caller sees only a timeout. *)

val call :
  Network.t ->
  src:int ->
  dst:int ->
  timeout:float ->
  handler:(unit -> 'resp) ->
  reply:('resp option -> unit) ->
  unit
(** Run [handler] at [dst]; deliver [Some response] back at [src], or [None]
    at [src] once [timeout] elapses without a response. [reply] runs exactly
    once. *)

val multicast :
  Network.t ->
  src:int ->
  dsts:int list ->
  timeout:float ->
  handler:(int -> 'resp) ->
  gather:((int * 'resp) list -> unit) ->
  unit
(** Call every destination in parallel; when all have replied or timed out,
    pass the successful (site, response) pairs to [gather]. *)
