lib/spec/append_log.ml: Atomrep_history Event List Serial_spec Value
