lib/spec/append_log.mli: Atomrep_history Event Serial_spec
