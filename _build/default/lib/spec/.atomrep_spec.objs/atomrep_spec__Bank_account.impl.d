lib/spec/bank_account.ml: Atomrep_history Event List Serial_spec Value
