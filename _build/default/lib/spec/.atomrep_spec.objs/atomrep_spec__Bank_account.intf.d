lib/spec/bank_account.mli: Atomrep_history Event Serial_spec
