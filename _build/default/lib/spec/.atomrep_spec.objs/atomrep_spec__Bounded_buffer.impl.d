lib/spec/bounded_buffer.ml: Atomrep_history Event List Serial_spec Value
