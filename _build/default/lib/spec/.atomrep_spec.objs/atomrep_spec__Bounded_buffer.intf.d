lib/spec/bounded_buffer.mli: Atomrep_history Event Serial_spec
