lib/spec/counter.ml: Atomrep_history Event Serial_spec Value
