lib/spec/counter.mli: Atomrep_history Event Serial_spec
