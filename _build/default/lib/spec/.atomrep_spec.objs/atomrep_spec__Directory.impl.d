lib/spec/directory.ml: Atomrep_history Event List Serial_spec Value
