lib/spec/directory.mli: Atomrep_history Event Serial_spec
