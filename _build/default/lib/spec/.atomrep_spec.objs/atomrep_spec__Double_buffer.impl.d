lib/spec/double_buffer.ml: Atomrep_history Event List Serial_spec Value
