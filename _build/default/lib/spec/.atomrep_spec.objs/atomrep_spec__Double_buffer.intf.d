lib/spec/double_buffer.mli: Atomrep_history Event Serial_spec
