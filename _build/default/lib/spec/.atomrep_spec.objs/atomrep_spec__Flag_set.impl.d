lib/spec/flag_set.ml: Atomrep_history Event List Serial_spec Value
