lib/spec/flag_set.mli: Atomrep_history Event Serial_spec
