lib/spec/prom.ml: Atomrep_history Event List Serial_spec Value
