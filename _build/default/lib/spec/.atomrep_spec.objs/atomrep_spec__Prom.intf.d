lib/spec/prom.mli: Atomrep_history Event Serial_spec
