lib/spec/queue_type.ml: Atomrep_history Event List Serial_spec Value
