lib/spec/queue_type.mli: Atomrep_history Event Serial_spec
