lib/spec/register.ml: Atomrep_history Event List Serial_spec Value
