lib/spec/register.mli: Atomrep_history Event Serial_spec
