lib/spec/rset.ml: Atomrep_history Event List Serial_spec Value
