lib/spec/rset.mli: Atomrep_history Event Serial_spec
