lib/spec/semiqueue.ml: Atomrep_history Event List Serial_spec Value
