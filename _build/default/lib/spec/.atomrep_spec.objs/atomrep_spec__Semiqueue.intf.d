lib/spec/semiqueue.mli: Atomrep_history Event Serial_spec
