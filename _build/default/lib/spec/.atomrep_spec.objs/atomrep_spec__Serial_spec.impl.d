lib/spec/serial_spec.ml: Atomrep_history Event List Option Value
