lib/spec/serial_spec.mli: Atomrep_history Event Value
