lib/spec/stack_type.mli: Atomrep_history Event Serial_spec
