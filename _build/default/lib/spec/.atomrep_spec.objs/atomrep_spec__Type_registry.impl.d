lib/spec/type_registry.ml: Append_log Bank_account Bounded_buffer Counter Directory Double_buffer Flag_set List Prom Queue_type Register Rset Semiqueue Stack_type String Wset
