lib/spec/type_registry.mli: Serial_spec
