lib/spec/wset.ml: Atomrep_history Event List Serial_spec Value
