lib/spec/wset.mli: Atomrep_history Event Serial_spec
