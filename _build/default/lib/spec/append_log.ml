open Atomrep_history

let append_inv item = Event.Invocation.make "Append" [ Value.str item ]
let size_inv = Event.Invocation.make "Size" []

let append item = Event.make (append_inv item) (Event.Response.ok [])
let size n = Event.make size_inv (Event.Response.ok [ Value.int n ])

let step state (inv : Event.Invocation.t) =
  let items = Value.get_list state in
  match inv.op, inv.args with
  | "Append", [ v ] -> [ (Event.Response.ok [], Value.list (items @ [ v ])) ]
  | "Size", [] ->
    [ (Event.Response.ok [ Value.int (List.length items) ], state) ]
  | _, _ -> []

let spec_with_items items =
  {
    Serial_spec.name = "AppendLog";
    initial = Value.list [];
    step;
    invocations = List.map append_inv items @ [ size_inv ];
  }

let spec = spec_with_items [ "x"; "y" ]
