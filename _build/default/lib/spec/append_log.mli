(** An append-only log.

    [Append] adds a record; [Size] reports how many records have been
    appended. Appends to a log conflict only through reads of the size, a
    structure close to the paper's replicated log representation itself. *)

open Atomrep_history

val spec : Serial_spec.t
(** Log over items [x, y]. *)

val spec_with_items : string list -> Serial_spec.t

val append : string -> Event.t
val size : int -> Event.t
(** [size n] is [Size();Ok(n)]. *)

val append_inv : string -> Event.Invocation.t
val size_inv : Event.Invocation.t
