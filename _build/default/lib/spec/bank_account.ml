open Atomrep_history

let deposit_inv k = Event.Invocation.make "Deposit" [ Value.int k ]
let withdraw_inv k = Event.Invocation.make "Withdraw" [ Value.int k ]
let balance_inv = Event.Invocation.make "Balance" []

let deposit k = Event.make (deposit_inv k) (Event.Response.ok [])
let withdraw_ok k = Event.make (withdraw_inv k) (Event.Response.ok [])
let withdraw_overdraft k = Event.make (withdraw_inv k) (Event.Response.exn "Overdraft")
let balance n = Event.make balance_inv (Event.Response.ok [ Value.int n ])

let step state (inv : Event.Invocation.t) =
  let bal = Value.get_int state in
  match inv.op, inv.args with
  | "Deposit", [ Value.Int k ] -> [ (Event.Response.ok [], Value.int (bal + k)) ]
  | "Withdraw", [ Value.Int k ] ->
    if bal >= k then [ (Event.Response.ok [], Value.int (bal - k)) ]
    else [ (Event.Response.exn "Overdraft", state) ]
  | "Balance", [] -> [ (Event.Response.ok [ state ], state) ]
  | _, _ -> []

let spec_with_amounts ~initial amounts =
  {
    Serial_spec.name = "BankAccount";
    initial = Value.int initial;
    step;
    invocations =
      List.map deposit_inv amounts @ List.map withdraw_inv amounts @ [ balance_inv ];
  }

let spec = spec_with_amounts ~initial:0 [ 1; 2 ]
