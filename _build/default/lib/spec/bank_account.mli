(** A bank account with balance-checked withdrawals.

    [Deposit k] always succeeds; [Withdraw k] succeeds only when the balance
    covers it, signalling [Overdraft] otherwise; [Balance] reads the current
    balance. Withdrawals do not commute with each other even though deposits
    do — the classical motivating example for type-specific concurrency
    control. *)

open Atomrep_history

val spec : Serial_spec.t
(** Amount universe {1, 2}; initial balance 0. *)

val spec_with_amounts : initial:int -> int list -> Serial_spec.t

val deposit : int -> Event.t
val withdraw_ok : int -> Event.t
val withdraw_overdraft : int -> Event.t
val balance : int -> Event.t
(** [balance n] is [Balance();Ok(n)]. *)

val deposit_inv : int -> Event.Invocation.t
val withdraw_inv : int -> Event.Invocation.t
val balance_inv : Event.Invocation.t
