open Atomrep_history

let enq_inv item = Event.Invocation.make "Enq" [ Value.str item ]
let deq_inv = Event.Invocation.make "Deq" []

let enq item = Event.make (enq_inv item) (Event.Response.ok [])
let enq_full item = Event.make (enq_inv item) (Event.Response.exn "Full")
let deq_ok item = Event.make deq_inv (Event.Response.ok [ Value.str item ])
let deq_empty = Event.make deq_inv (Event.Response.exn "Empty")

(* State: Pair (capacity, items). *)
let step state (inv : Event.Invocation.t) =
  match state with
  | Value.Pair (Value.Int capacity, Value.List items) ->
    (match inv.op, inv.args with
     | "Enq", [ v ] ->
       if List.length items >= capacity then [ (Event.Response.exn "Full", state) ]
       else
         [ (Event.Response.ok [],
            Value.pair (Value.int capacity) (Value.list (items @ [ v ]))) ]
     | "Deq", [] ->
       (match items with
        | [] -> [ (Event.Response.exn "Empty", state) ]
        | first :: rest ->
          [ (Event.Response.ok [ first ],
             Value.pair (Value.int capacity) (Value.list rest)) ])
     | _, _ -> [])
  | _ -> []

let spec_with ~capacity items =
  {
    Serial_spec.name = "BoundedBuffer";
    initial = Value.pair (Value.int capacity) (Value.list []);
    step;
    invocations = List.map enq_inv items @ [ deq_inv ];
  }

let spec = spec_with ~capacity:2 [ "x"; "y" ]
