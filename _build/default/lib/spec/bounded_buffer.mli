(** A bounded FIFO buffer.

    Like the Queue but with finite capacity: [Enq] signals [Full] when the
    buffer holds [capacity] items. Capacity couples enqueuers to dequeuers
    in both directions — [Enq ≽ Deq;Ok] becomes necessary even under
    strong dynamic atomicity (a Deq creates the space an Enq's success
    depends on), giving a dependency structure strictly richer than the
    unbounded queue's. *)

open Atomrep_history

val spec : Serial_spec.t
(** Capacity 2 over items [x, y]. *)

val spec_with : capacity:int -> string list -> Serial_spec.t

val enq : string -> Event.t
val enq_full : string -> Event.t
val deq_ok : string -> Event.t
val deq_empty : Event.t

val enq_inv : string -> Event.Invocation.t
val deq_inv : Event.Invocation.t
