open Atomrep_history

let inc_inv = Event.Invocation.make "Inc" []
let dec_inv = Event.Invocation.make "Dec" []
let read_inv = Event.Invocation.make "Read" []

let inc = Event.make inc_inv (Event.Response.ok [])
let dec = Event.make dec_inv (Event.Response.ok [])
let read n = Event.make read_inv (Event.Response.ok [ Value.int n ])

let step state (inv : Event.Invocation.t) =
  let n = Value.get_int state in
  match inv.op, inv.args with
  | "Inc", [] -> [ (Event.Response.ok [], Value.int (n + 1)) ]
  | "Dec", [] -> [ (Event.Response.ok [], Value.int (n - 1)) ]
  | "Read", [] -> [ (Event.Response.ok [ state ], state) ]
  | _, _ -> []

let spec =
  {
    Serial_spec.name = "Counter";
    initial = Value.int 0;
    step;
    invocations = [ inc_inv; dec_inv; read_inv ];
  }
