(** A counter with commuting increments.

    [Inc] and [Dec] adjust the count and commute with each other; [Read]
    returns the current count. Counters illustrate how type-specific
    analysis rewards commutativity: increments impose no mutual quorum
    constraints under any of the three properties, unlike blind writes to a
    register. *)

open Atomrep_history

val spec : Serial_spec.t

val inc : Event.t
val dec : Event.t
val read : int -> Event.t
(** [read n] is [Read();Ok(n)]. *)

val inc_inv : Event.Invocation.t
val dec_inv : Event.Invocation.t
val read_inv : Event.Invocation.t
