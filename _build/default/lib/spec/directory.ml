open Atomrep_history

let insert_inv k v = Event.Invocation.make "Insert" [ Value.str k; Value.str v ]
let update_inv k v = Event.Invocation.make "Update" [ Value.str k; Value.str v ]
let delete_inv k = Event.Invocation.make "Delete" [ Value.str k ]
let lookup_inv k = Event.Invocation.make "Lookup" [ Value.str k ]

let insert_ok k v = Event.make (insert_inv k v) (Event.Response.ok [])
let insert_exists k v = Event.make (insert_inv k v) (Event.Response.exn "AlreadyExists")
let update_ok k v = Event.make (update_inv k v) (Event.Response.ok [])
let update_missing k v = Event.make (update_inv k v) (Event.Response.exn "NotFound")
let delete_ok k = Event.make (delete_inv k) (Event.Response.ok [])
let delete_missing k = Event.make (delete_inv k) (Event.Response.exn "NotFound")
let lookup_ok k v = Event.make (lookup_inv k) (Event.Response.ok [ Value.str v ])
let lookup_missing k = Event.make (lookup_inv k) (Event.Response.exn "NotFound")

(* State: sorted association list of Pair (key, value). *)
let bindings state = List.map (function
  | Value.Pair (k, v) -> (k, v)
  | _ -> invalid_arg "Directory: malformed state")
  (Value.get_list state)

let of_bindings bs =
  Value.list
    (List.map (fun (k, v) -> Value.pair k v)
       (List.sort (fun (k1, _) (k2, _) -> Value.compare k1 k2) bs))

let step state (inv : Event.Invocation.t) =
  let bs = bindings state in
  let find k = List.find_opt (fun (k', _) -> Value.equal k k') bs in
  let without k = List.filter (fun (k', _) -> not (Value.equal k k')) bs in
  match inv.op, inv.args with
  | "Insert", [ k; v ] ->
    (match find k with
     | Some _ -> [ (Event.Response.exn "AlreadyExists", state) ]
     | None -> [ (Event.Response.ok [], of_bindings ((k, v) :: bs)) ])
  | "Update", [ k; v ] ->
    (match find k with
     | Some _ -> [ (Event.Response.ok [], of_bindings ((k, v) :: without k)) ]
     | None -> [ (Event.Response.exn "NotFound", state) ])
  | "Delete", [ k ] ->
    (match find k with
     | Some _ -> [ (Event.Response.ok [], of_bindings (without k)) ]
     | None -> [ (Event.Response.exn "NotFound", state) ])
  | "Lookup", [ k ] ->
    (match find k with
     | Some (_, v) -> [ (Event.Response.ok [ v ], state) ]
     | None -> [ (Event.Response.exn "NotFound", state) ])
  | _, _ -> []

let spec_with ~keys ~values =
  {
    Serial_spec.name = "Directory";
    initial = Value.list [];
    step;
    invocations =
      List.concat_map (fun k -> List.map (insert_inv k) values) keys
      @ List.concat_map (fun k -> List.map (update_inv k) values) keys
      @ List.map delete_inv keys
      @ List.map lookup_inv keys;
  }

let spec = spec_with ~keys:[ "k" ] ~values:[ "x"; "y" ]
