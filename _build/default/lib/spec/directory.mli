(** A directory mapping keys to values, after Bloch, Daniels and Spector's
    quorum-consensus replicated directory [6].

    [Insert] fails on present keys, [Update] and [Delete] fail on absent
    keys, and [Lookup] reads. Distinct keys are independent, which the
    type-specific analysis exposes as the absence of cross-key quorum
    constraints. *)

open Atomrep_history

val spec : Serial_spec.t
(** One key [k] and values [x, y] — the smallest universe exhibiting all
    constraint classes. *)

val spec_with : keys:string list -> values:string list -> Serial_spec.t

val insert_ok : string -> string -> Event.t
val insert_exists : string -> string -> Event.t
val update_ok : string -> string -> Event.t
val update_missing : string -> string -> Event.t
val delete_ok : string -> Event.t
val delete_missing : string -> Event.t
val lookup_ok : string -> string -> Event.t
val lookup_missing : string -> Event.t

val insert_inv : string -> string -> Event.Invocation.t
val update_inv : string -> string -> Event.Invocation.t
val delete_inv : string -> Event.Invocation.t
val lookup_inv : string -> Event.Invocation.t
