open Atomrep_history

let produce_inv item = Event.Invocation.make "Produce" [ Value.str item ]
let transfer_inv = Event.Invocation.make "Transfer" []
let consume_inv = Event.Invocation.make "Consume" []

let produce item = Event.make (produce_inv item) (Event.Response.ok [])
let transfer = Event.make transfer_inv (Event.Response.ok [])
let consume item = Event.make consume_inv (Event.Response.ok [ Value.str item ])

(* State: Pair (producer buffer, consumer buffer). *)
let step state (inv : Event.Invocation.t) =
  match state with
  | Value.Pair (prod, cons) ->
    (match inv.op, inv.args with
     | "Produce", [ v ] -> [ (Event.Response.ok [], Value.pair v cons) ]
     | "Transfer", [] -> [ (Event.Response.ok [], Value.pair prod prod) ]
     | "Consume", [] -> [ (Event.Response.ok [ cons ], state) ]
     | _, _ -> [])
  | _ -> []

let spec_with_items ~default items =
  {
    Serial_spec.name = "DoubleBuffer";
    initial = Value.pair (Value.str default) (Value.str default);
    step;
    invocations = List.map produce_inv items @ [ transfer_inv; consume_inv ];
  }

let spec = spec_with_items ~default:"d" [ "x"; "y" ]
