(** The paper's DoubleBuffer data type (§5).

    A producer buffer and a consumer buffer, each holding one item and each
    initialized with a default item. [Produce] copies an item into the
    producer buffer, [Transfer] copies the producer buffer to the consumer
    buffer, and [Consume] returns a copy of the consumer buffer. The paper
    uses DoubleBuffer to show a dynamic dependency relation that is not a
    hybrid dependency relation (Theorem 12). *)

open Atomrep_history

val spec : Serial_spec.t
(** DoubleBuffer over items [x, y] with default item [d]. *)

val spec_with_items : default:string -> string list -> Serial_spec.t

val produce : string -> Event.t
val transfer : Event.t
val consume : string -> Event.t
(** [consume "x"] is [Consume();Ok(x)]. *)

val produce_inv : string -> Event.Invocation.t
val transfer_inv : Event.Invocation.t
val consume_inv : Event.Invocation.t
