open Atomrep_history

let open_inv = Event.Invocation.make "Open" []
let shift_inv n = Event.Invocation.make "Shift" [ Value.int n ]
let close_inv = Event.Invocation.make "Close" []

let open_ok = Event.make open_inv (Event.Response.ok [])
let open_disabled = Event.make open_inv (Event.Response.exn "Disabled")
let shift_ok n = Event.make (shift_inv n) (Event.Response.ok [])
let shift_disabled n = Event.make (shift_inv n) (Event.Response.exn "Disabled")
let close b = Event.make close_inv (Event.Response.ok [ Value.bool b ])

(* State: Pair (Pair (opened, closed), flags as a list of four booleans,
   indexed 1..4 at positions 0..3). *)
let flags_of state =
  match state with
  | Value.Pair (Value.Pair (Value.Bool opened, Value.Bool closed), Value.List flags) ->
    (opened, closed, List.map Value.get_bool flags)
  | _ -> invalid_arg "Flag_set: malformed state"

let make_state opened closed flags =
  Value.pair
    (Value.pair (Value.bool opened) (Value.bool closed))
    (Value.list (List.map Value.bool flags))

let step state (inv : Event.Invocation.t) =
  let opened, closed, flags = flags_of state in
  match inv.op, inv.args with
  | "Open", [] ->
    if opened then [ (Event.Response.exn "Disabled", state) ]
    else begin
      let flags' =
        match flags with
        | _ :: rest -> true :: rest
        | [] -> assert false
      in
      [ (Event.Response.ok [], make_state true closed flags') ]
    end
  | "Shift", [ Value.Int n ] when n >= 1 && n <= 3 ->
    if opened && not closed then begin
      let flags' =
        List.mapi
          (fun i f -> if i = n then List.nth flags (n - 1) else f)
          flags
      in
      [ (Event.Response.ok [], make_state opened closed flags') ]
    end
    else [ (Event.Response.exn "Disabled", state) ]
  | "Close", [] ->
    let result = List.nth flags 3 in
    [ (Event.Response.ok [ Value.bool result ], make_state opened opened flags) ]
  | _, _ -> []

let spec =
  {
    Serial_spec.name = "FlagSet";
    initial = make_state false false [ false; false; false; false ];
    step;
    invocations = [ open_inv; shift_inv 1; shift_inv 2; shift_inv 3; close_inv ];
  }
