(** The paper's FlagSet data type (§4).

    State: [opened] and [closed] booleans and a four-element boolean array
    [flags], all initially false.

    - [Open]: if not already opened, sets [opened] and [flags.(1)], enabling
      [Shift]; otherwise signals [disabled].
    - [Shift n] (for 0 < n < 4): if opened and not closed, assigns
      [flags.(n)] to [flags.(n+1)]; otherwise signals [disabled].
    - [Close]: returns [flags.(4)]; if opened, disables [Shift].

    The paper uses FlagSet to exhibit a data type with two distinct minimal
    hybrid dependency relations. *)

open Atomrep_history

val spec : Serial_spec.t

val open_ok : Event.t
val open_disabled : Event.t
val shift_ok : int -> Event.t
val shift_disabled : int -> Event.t
val close : bool -> Event.t
(** [close b] is [Close();Ok(b)]. *)

val open_inv : Event.Invocation.t
val shift_inv : int -> Event.Invocation.t
val close_inv : Event.Invocation.t
