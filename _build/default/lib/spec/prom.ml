open Atomrep_history

let write_inv item = Event.Invocation.make "Write" [ Value.str item ]
let read_inv = Event.Invocation.make "Read" []
let seal_inv = Event.Invocation.make "Seal" []

let write item = Event.make (write_inv item) (Event.Response.ok [])
let write_disabled item = Event.make (write_inv item) (Event.Response.exn "Disabled")
let seal = Event.make seal_inv (Event.Response.ok [])
let read_ok item = Event.make read_inv (Event.Response.ok [ Value.str item ])
let read_disabled = Event.make read_inv (Event.Response.exn "Disabled")

(* State: Pair (contents, sealed flag). *)
let step state (inv : Event.Invocation.t) =
  match state with
  | Value.Pair (contents, Value.Bool sealed) ->
    (match inv.op, inv.args with
     | "Write", [ v ] ->
       if sealed then [ (Event.Response.exn "Disabled", state) ]
       else [ (Event.Response.ok [], Value.pair v (Value.bool false)) ]
     | "Read", [] ->
       if sealed then [ (Event.Response.ok [ contents ], state) ]
       else [ (Event.Response.exn "Disabled", state) ]
     | "Seal", [] -> [ (Event.Response.ok [], Value.pair contents (Value.bool true)) ]
     | _, _ -> [])
  | _ -> []

let spec_with_items ~default items =
  {
    Serial_spec.name = "PROM";
    initial = Value.pair (Value.str default) (Value.bool false);
    step;
    invocations = List.map write_inv items @ [ read_inv; seal_inv ];
  }

let spec = spec_with_items ~default:"d" [ "x"; "y" ]
