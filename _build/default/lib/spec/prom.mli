(** The paper's PROM data type (§4).

    A PROM is a container for an item, initialized with a default value. Its
    contents can be overwritten, but not read, until it is sealed; once
    sealed, its contents can be read but not written. [Seal] has no effect if
    the PROM has already been sealed. *)

open Atomrep_history

val spec : Serial_spec.t
(** PROM over items [x, y], initialized with the distinct default item
    [d]. *)

val spec_with_items : default:string -> string list -> Serial_spec.t

val write : string -> Event.t
(** [Write(x);Ok()]. *)

val write_disabled : string -> Event.t
(** [Write(x);Disabled()]. *)

val seal : Event.t
(** [Seal();Ok()]. *)

val read_ok : string -> Event.t
(** [Read();Ok(x)]. *)

val read_disabled : Event.t
(** [Read();Disabled()]. *)

val write_inv : string -> Event.Invocation.t
val read_inv : Event.Invocation.t
val seal_inv : Event.Invocation.t
