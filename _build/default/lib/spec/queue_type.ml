open Atomrep_history

let enq_inv item = Event.Invocation.make "Enq" [ Value.str item ]
let deq_inv = Event.Invocation.make "Deq" []

let enq item = Event.make (enq_inv item) (Event.Response.ok [])
let deq_ok item = Event.make deq_inv (Event.Response.ok [ Value.str item ])
let deq_empty = Event.make deq_inv (Event.Response.exn "Empty")

let step state (inv : Event.Invocation.t) =
  let items = Value.get_list state in
  match inv.op, inv.args with
  | "Enq", [ v ] -> [ (Event.Response.ok [], Value.list (items @ [ v ])) ]
  | "Deq", [] ->
    (match items with
     | [] -> [ (Event.Response.exn "Empty", state) ]
     | first :: rest -> [ (Event.Response.ok [ first ], Value.list rest) ])
  | _, _ -> []

let spec_with_items items =
  {
    Serial_spec.name = "Queue";
    initial = Value.list [];
    step;
    invocations = List.map enq_inv items @ [ deq_inv ];
  }

let spec = spec_with_items [ "x"; "y" ]
