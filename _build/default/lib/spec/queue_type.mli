(** The paper's Queue data type (§3).

    [Enq] places an item in the queue; [Deq] removes the least recently
    enqueued item, signalling [Empty] if the queue is empty. The serial
    specification admits exactly the FIFO histories. *)

open Atomrep_history

val spec : Serial_spec.t
(** Queue over the two-item universe [x, y] used throughout the paper's
    examples. *)

val spec_with_items : string list -> Serial_spec.t

val enq : string -> Event.t
(** [enq "x"] is the event [Enq(x);Ok()]. *)

val deq_ok : string -> Event.t
(** [deq_ok "x"] is [Deq();Ok(x)]. *)

val deq_empty : Event.t
(** [Deq();Empty()]. *)

val enq_inv : string -> Event.Invocation.t
val deq_inv : Event.Invocation.t
