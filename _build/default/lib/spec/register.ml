open Atomrep_history

let write_inv item = Event.Invocation.make "Write" [ Value.str item ]
let read_inv = Event.Invocation.make "Read" []

let write item = Event.make (write_inv item) (Event.Response.ok [])
let read item = Event.make read_inv (Event.Response.ok [ Value.str item ])

let step state (inv : Event.Invocation.t) =
  match inv.op, inv.args with
  | "Write", [ v ] -> [ (Event.Response.ok [], v) ]
  | "Read", [] -> [ (Event.Response.ok [ state ], state) ]
  | _, _ -> []

let spec_with_items ~default items =
  {
    Serial_spec.name = "Register";
    initial = Value.str default;
    step;
    invocations = List.map write_inv items @ [ read_inv ];
  }

let spec = spec_with_items ~default:"d" [ "x"; "y" ]
