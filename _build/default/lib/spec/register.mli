(** A read/write register — the "file" data type of classical replication
    methods (Gifford's weighted voting [11]).

    Operations are exactly [Read] and [Write]; this is the baseline whose
    read/write operation classification the paper's type-specific method
    generalizes. *)

open Atomrep_history

val spec : Serial_spec.t
(** Register over items [x, y] with initial value [d]. *)

val spec_with_items : default:string -> string list -> Serial_spec.t

val write : string -> Event.t
val read : string -> Event.t
(** [read "x"] is [Read();Ok(x)]. *)

val write_inv : string -> Event.Invocation.t
val read_inv : Event.Invocation.t
