(** A set with insertion and removal.

    Unlike {!Wset}'s grow-only set, [Remove] makes same-item Insert/Remove
    pairs conflict under every property (order matters), while cross-item
    operations stay independent — a per-item partitioned dependency
    structure, like the Directory's per-key one but with idempotent
    writes. *)

open Atomrep_history

val spec : Serial_spec.t
(** Item universe [x, y]. *)

val spec_with_items : string list -> Serial_spec.t

val insert : string -> Event.t
val remove : string -> Event.t
val member : string -> bool -> Event.t

val insert_inv : string -> Event.Invocation.t
val remove_inv : string -> Event.Invocation.t
val member_inv : string -> Event.Invocation.t
