open Atomrep_history

let enq_inv item = Event.Invocation.make "Enq" [ Value.str item ]
let deq_inv = Event.Invocation.make "Deq" []

let enq item = Event.make (enq_inv item) (Event.Response.ok [])
let deq_ok item = Event.make deq_inv (Event.Response.ok [ Value.str item ])
let deq_empty = Event.make deq_inv (Event.Response.exn "Empty")

(* State: multiset of items as a sorted list. *)
let remove_one v items =
  let rec go = function
    | [] -> []
    | x :: rest -> if Value.equal x v then rest else x :: go rest
  in
  go items

let step state (inv : Event.Invocation.t) =
  let items = Value.get_list state in
  match inv.op, inv.args with
  | "Enq", [ v ] ->
    [ (Event.Response.ok [], Value.list (List.sort Value.compare (v :: items))) ]
  | "Deq", [] ->
    (match items with
     | [] -> [ (Event.Response.exn "Empty", state) ]
     | _ ->
       let distinct = List.sort_uniq Value.compare items in
       List.map
         (fun v -> (Event.Response.ok [ v ], Value.list (remove_one v items)))
         distinct)
  | _, _ -> []

let spec_with_items items =
  {
    Serial_spec.name = "Semiqueue";
    initial = Value.list [];
    step;
    invocations = List.map enq_inv items @ [ deq_inv ];
  }

let spec = spec_with_items [ "x"; "y" ]
