(** A semiqueue: a weak queue whose [Deq] may return any enqueued item.

    Herlihy's thesis [14] uses the semiqueue to show how weakening a serial
    specification (here, dropping FIFO order) weakens dependency relations
    and thus widens quorum choice. The specification is nondeterministic:
    from a state holding several items, [Deq] has several legal responses.
    This module exercises the nondeterministic branch of
    {!Serial_spec.t.step}. *)

open Atomrep_history

val spec : Serial_spec.t
(** Semiqueue over items [x, y]. *)

val spec_with_items : string list -> Serial_spec.t

val enq : string -> Event.t
val deq_ok : string -> Event.t
val deq_empty : Event.t

val enq_inv : string -> Event.Invocation.t
val deq_inv : Event.Invocation.t
