open Atomrep_history

type t = {
  name : string;
  initial : Value.t;
  step : Value.t -> Event.Invocation.t -> (Event.Response.t * Value.t) list;
  invocations : Event.Invocation.t list;
}

let responses spec s inv = spec.step s inv

let apply_event spec s (e : Event.t) =
  let candidates = spec.step s e.inv in
  let matching = List.filter (fun (res, _) -> Event.Response.equal res e.res) candidates in
  match matching with
  | [] -> None
  | (_, s') :: _ -> Some s'

let run spec events =
  let rec go s = function
    | [] -> Some s
    | e :: rest ->
      (match apply_event spec s e with
       | None -> None
       | Some s' -> go s' rest)
  in
  go spec.initial events

let legal spec events = Option.is_some (run spec events)

let legal_from spec s events =
  let rec go s = function
    | [] -> true
    | e :: rest ->
      (match apply_event spec s e with
       | None -> false
       | Some s' -> go s' rest)
  in
  go s events

let enumerate spec ~max_len =
  (* Breadth-first expansion of the legal-history tree over the invocation
     universe. Histories are stored reversed during expansion. *)
  let expand (rev_hist, s) =
    List.concat_map
      (fun inv ->
        List.map
          (fun (res, s') -> (Event.make inv res :: rev_hist, s'))
          (spec.step s inv))
      spec.invocations
  in
  let rec levels frontier depth acc =
    if depth = 0 then acc
    else begin
      let next = List.concat_map expand frontier in
      match next with
      | [] -> acc
      | _ -> levels next (depth - 1) (List.rev_append next acc)
    end
  in
  let all = levels [ ([], spec.initial) ] max_len [ ([], spec.initial) ] in
  List.rev_map (fun (rev_hist, s) -> (List.rev rev_hist, s)) all

let event_universe spec ~max_len =
  let seen = ref Event.Set.empty in
  List.iter
    (fun (hist, _) -> List.iter (fun e -> seen := Event.Set.add e !seen) hist)
    (enumerate spec ~max_len);
  Event.Set.elements !seen

let rec state_equiv spec ~depth s1 s2 =
  Value.equal s1 s2
  || depth = 0 (* no remaining experiment can distinguish the states *)
  || (depth > 0
      && List.for_all
           (fun inv ->
             let r1 = spec.step s1 inv and r2 = spec.step s2 inv in
             let sort =
               List.sort (fun (a, _) (b, _) -> Event.Response.compare a b)
             in
             let r1 = sort r1 and r2 = sort r2 in
             List.length r1 = List.length r2
             && List.for_all2
                  (fun (res1, s1') (res2, s2') ->
                    Event.Response.equal res1 res2
                    && state_equiv spec ~depth:(depth - 1) s1' s2')
                  r1 r2)
           spec.invocations)

let equivalent spec ~depth h1 h2 =
  match run spec h1, run spec h2 with
  | Some s1, Some s2 -> state_equiv spec ~depth s1 s2
  | None, _ | _, None -> false
