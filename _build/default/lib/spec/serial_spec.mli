(** Serial specifications (paper, §3.1) as state machines.

    A serial specification is the set of legal serial histories of a data
    type. We represent it operationally: a (possibly nondeterministic) state
    machine over {!Atomrep_history.Value} whose transitions give, for each
    state and invocation, every legal (response, next-state) pair. A serial
    history is legal when it can be stepped from the initial state; this
    representation makes serial specifications prefix-closed by construction,
    as the paper assumes.

    Analyses over a specification are bounded: they quantify over the
    declared invocation universe and over histories up to a caller-chosen
    length. The paper's data types all have event universes of size 5–10, so
    exhaustive bounded analysis reproduces its results exactly. *)

open Atomrep_history

type t = {
  name : string;
  initial : Value.t;
  step : Value.t -> Event.Invocation.t -> (Event.Response.t * Value.t) list;
  (** All legal (response, next state) pairs; [[]] when no response to this
      invocation is legal in this state — which cannot happen for total
      types, where every invocation has at least an exceptional response. *)
  invocations : Event.Invocation.t list;
  (** The bounded invocation universe used by exhaustive analyses. *)
}

val apply_event : t -> Value.t -> Event.t -> Value.t option
(** [apply_event spec s e] is the state after event [e] from state [s], or
    [None] if [e]'s response is not legal in [s]. Nondeterministic specs may
    admit several next states for one response; the first is returned, and
    specs are required to make (state, event) -> next state deterministic. *)

val run : t -> Event.t list -> Value.t option
(** Fold [apply_event] from the initial state; [None] on the first illegal
    event. *)

val legal : t -> Event.t list -> bool
(** Is the serial history legal (included in the specification)? *)

val legal_from : t -> Value.t -> Event.t list -> bool

val responses : t -> Value.t -> Event.Invocation.t -> (Event.Response.t * Value.t) list
(** Legal continuations of one invocation from a state. *)

val enumerate :
  t -> max_len:int -> (Event.t list * Value.t) list
(** All legal serial histories over the invocation universe with length at
    most [max_len], paired with their final states. Includes the empty
    history. The result is in breadth-first order. *)

val event_universe : t -> max_len:int -> Event.t list
(** Every event occurring in some legal history of length at most
    [max_len] — the bounded event universe used when computing dependency
    relations. Sorted and deduplicated. *)

val state_equiv : t -> depth:int -> Value.t -> Value.t -> bool
(** Observational equivalence of two states up to experiments of the given
    depth over the invocation universe: both states admit the same response
    multisets and their successors are equivalent at [depth - 1]. For the
    bounded analyses in this repository, [depth] is chosen at least as large
    as the history bound, which makes the approximation exact within the
    analyzed fragment. *)

val equivalent : t -> depth:int -> Event.t list -> Event.t list -> bool
(** Equivalence of two serial histories (paper, §5): they cannot be
    distinguished by any future computation — here, up to [depth]-bounded
    experiments. Both histories must be legal. *)
