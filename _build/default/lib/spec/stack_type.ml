open Atomrep_history

let push_inv item = Event.Invocation.make "Push" [ Value.str item ]
let pop_inv = Event.Invocation.make "Pop" []

let push item = Event.make (push_inv item) (Event.Response.ok [])
let pop_ok item = Event.make pop_inv (Event.Response.ok [ Value.str item ])
let pop_empty = Event.make pop_inv (Event.Response.exn "Empty")

let step state (inv : Event.Invocation.t) =
  let items = Value.get_list state in
  match inv.op, inv.args with
  | "Push", [ v ] -> [ (Event.Response.ok [], Value.list (v :: items)) ]
  | "Pop", [] ->
    (match items with
     | [] -> [ (Event.Response.exn "Empty", state) ]
     | top :: rest -> [ (Event.Response.ok [ top ], Value.list rest) ])
  | _, _ -> []

let spec_with_items items =
  {
    Serial_spec.name = "Stack";
    initial = Value.list [];
    step;
    invocations = List.map push_inv items @ [ pop_inv ];
  }

let spec = spec_with_items [ "x"; "y" ]
