(** A LIFO stack.

    [Push] and [Pop] with an [Empty] exception. The stack's last-in-first-out
    discipline produces a different dependency structure from the queue's
    FIFO — in particular Push/Push pairs conflict even for the static
    property — making it a useful contrast case in the benchmarks. *)

open Atomrep_history

val spec : Serial_spec.t
(** Stack over items [x, y]. *)

val spec_with_items : string list -> Serial_spec.t

val push : string -> Event.t
val pop_ok : string -> Event.t
val pop_empty : Event.t

val push_inv : string -> Event.Invocation.t
val pop_inv : Event.Invocation.t
