let all =
  [
    ("queue", Queue_type.spec);
    ("prom", Prom.spec);
    ("flagset", Flag_set.spec);
    ("doublebuffer", Double_buffer.spec);
    ("register", Register.spec);
    ("counter", Counter.spec);
    ("bank", Bank_account.spec);
    ("wset", Wset.spec);
    ("directory", Directory.spec);
    ("semiqueue", Semiqueue.spec);
    ("stack", Stack_type.spec);
    ("log", Append_log.spec);
    ("boundedbuffer", Bounded_buffer.spec);
    ("rset", Rset.spec);
  ]

let find name =
  let name = String.lowercase_ascii name in
  List.assoc_opt name all

let names = List.map fst all
