(** Registry of the built-in data types, for the CLI and the benchmark
    harness. *)

val all : (string * Serial_spec.t) list
(** Name/specification pairs, paper types first. Names are lowercase and
    match the CLI's [--type] argument. *)

val find : string -> Serial_spec.t option
(** Case-insensitive lookup by registry name. *)

val names : string list
