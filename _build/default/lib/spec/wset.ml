open Atomrep_history

let insert_inv item = Event.Invocation.make "Insert" [ Value.str item ]
let member_inv item = Event.Invocation.make "Member" [ Value.str item ]

let insert item = Event.make (insert_inv item) (Event.Response.ok [])
let member item present =
  Event.make (member_inv item) (Event.Response.ok [ Value.bool present ])

let step state (inv : Event.Invocation.t) =
  let items = Value.get_list state in
  match inv.op, inv.args with
  | "Insert", [ v ] ->
    let items' =
      if List.exists (Value.equal v) items then items
      else List.sort Value.compare (v :: items)
    in
    [ (Event.Response.ok [], Value.list items') ]
  | "Member", [ v ] ->
    let present = List.exists (Value.equal v) items in
    [ (Event.Response.ok [ Value.bool present ], state) ]
  | _, _ -> []

let spec_with_items items =
  {
    Serial_spec.name = "WSet";
    initial = Value.list [];
    step;
    invocations = List.map insert_inv items @ List.map member_inv items;
  }

let spec = spec_with_items [ "x"; "y" ]
