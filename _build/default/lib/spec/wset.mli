(** An insert-only set with membership tests.

    [Insert] is idempotent and inserts commute; [Member] tests membership.
    Like the counter, WSet shows the availability payoff of commutativity
    under type-specific quorum analysis. *)

open Atomrep_history

val spec : Serial_spec.t
(** Item universe [x, y]. *)

val spec_with_items : string list -> Serial_spec.t

val insert : string -> Event.t
val member : string -> bool -> Event.t
(** [member "x" true] is [Member(x);Ok(true)]. *)

val insert_inv : string -> Event.Invocation.t
val member_inv : string -> Event.Invocation.t
