lib/stats/binomial.ml:
