lib/stats/binomial.mli:
