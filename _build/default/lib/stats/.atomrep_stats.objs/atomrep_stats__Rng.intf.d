lib/stats/rng.mli:
