lib/stats/summary.mli:
