lib/stats/table.mli:
