let choose n k =
  if k < 0 || k > n then 0.0
  else begin
    let k = min k (n - k) in
    let acc = ref 1.0 in
    for i = 1 to k do
      acc := !acc *. float_of_int (n - k + i) /. float_of_int i
    done;
    !acc
  end

let pmf ~n ~p k =
  if k < 0 || k > n then 0.0
  else choose n k *. (p ** float_of_int k) *. ((1.0 -. p) ** float_of_int (n - k))

let at_least ~n ~p k =
  if k <= 0 then 1.0
  else begin
    let acc = ref 0.0 in
    for i = k to n do
      acc := !acc +. pmf ~n ~p i
    done;
    !acc
  end

let at_most ~n ~p k =
  let acc = ref 0.0 in
  for i = 0 to min k n do
    acc := !acc +. pmf ~n ~p i
  done;
  !acc
