(** Exact binomial computations used by the availability analyzer.

    Quorum availability questions reduce to tail probabilities of a binomial
    distribution: with [n] replica sites each independently up with
    probability [p], an operation with threshold quorum size [k] is available
    exactly when at least [k] sites are up. *)

val choose : int -> int -> float
(** [choose n k] is the binomial coefficient C(n, k) as a float (exact for the
    small [n] used here). Returns [0.] outside [0 <= k <= n]. *)

val pmf : n:int -> p:float -> int -> float
(** [pmf ~n ~p k] is P(X = k) for X ~ Bin(n, p). *)

val at_least : n:int -> p:float -> int -> float
(** [at_least ~n ~p k] is P(X >= k). [at_least ~n ~p 0 = 1.]. *)

val at_most : n:int -> p:float -> int -> float
(** [at_most ~n ~p k] is P(X <= k). *)
