type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }
let copy t = { state = t.state }

let int t bound =
  assert (bound > 0);
  (* Keep 62 bits so the conversion to OCaml's 63-bit int stays positive. *)
  let raw = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  raw mod bound

let float t bound =
  let raw = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  raw /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L
let bernoulli t p = float t 1.0 < p

let exponential t mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then epsilon_float else u in
  -.mean *. log u

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let pick_list t l =
  let n = List.length l in
  assert (n > 0);
  List.nth l (int t n)

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
