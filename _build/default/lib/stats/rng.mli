(** Deterministic splittable pseudo-random number generator.

    All randomness in the repository flows through this module so that every
    test, simulation run and benchmark is reproducible from a single seed.
    The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014), which is
    fast, has a 64-bit state, and supports cheap splitting for independent
    streams (one per simulated site, for example). *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator deterministically derived from
    [seed]. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of [t]'s subsequent output. *)

val copy : t -> t
(** [copy t] duplicates the current state; both copies then evolve
    independently but identically if used identically. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t mean] samples an exponential distribution with the given
    mean. Used for message latencies and inter-arrival times. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform choice from a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
