(** Streaming summary statistics for simulation measurements. *)

type t
(** Accumulator over float observations. *)

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val total : t -> float
val mean : t -> float
(** Mean of the observations; [0.] when empty. *)

val stddev : t -> float
(** Sample standard deviation; [0.] with fewer than two observations. *)

val min_value : t -> float
val max_value : t -> float

val percentile : t -> float -> float
(** [percentile t q] with [q] in [\[0,1\]] by nearest-rank on the sorted
    sample. Retains all observations; intended for simulation-scale data. *)

val confidence95 : t -> float
(** Half-width of the normal-approximation 95% confidence interval for the
    mean. *)
