type t = {
  title : string;
  columns : string list;
  mutable rows : string list list;
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- row :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  let record_row row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter record_row all;
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  let render_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  render_row t.columns;
  let rule_width = Array.fold_left ( + ) (2 * (ncols - 1)) widths in
  Buffer.add_string buf (String.make rule_width '-');
  Buffer.add_char buf '\n';
  List.iter render_row rows;
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let cell_float x = Printf.sprintf "%.4f" x
let cell_int n = string_of_int n
