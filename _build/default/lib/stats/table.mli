(** Aligned ASCII tables for the benchmark harness output.

    Every experiment in [bench/main.ml] reports its rows through this module
    so the reproduced paper artifacts share one rendering. *)

type t

val create : title:string -> columns:string list -> t
(** A table with a caption and column headers. *)

val add_row : t -> string list -> unit
(** Append a row; must have as many cells as there are columns. *)

val render : t -> string
(** Render with a title line, a header, a rule, and aligned cells. *)

val print : t -> unit
(** [render] to stdout followed by a blank line. *)

val cell_float : float -> string
(** Standard 4-decimal cell formatting for probabilities and rates. *)

val cell_int : int -> string
