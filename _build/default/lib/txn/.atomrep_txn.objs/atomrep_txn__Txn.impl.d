lib/txn/txn.ml: Action Atomrep_clock Atomrep_history Format Lamport List
