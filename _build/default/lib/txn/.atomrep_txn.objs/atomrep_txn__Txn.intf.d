lib/txn/txn.mli: Action Atomrep_clock Atomrep_history Format Lamport
