lib/workload/histories.ml: Action Array Atomrep_history Atomrep_spec Atomrep_stats Behavioral Event Fun List Rng Serial_spec
