lib/workload/histories.mli: Atomrep_history Atomrep_spec Atomrep_stats Behavioral Event Rng Serial_spec
