lib/workload/mixes.ml: Atomrep_replica Atomrep_spec Atomrep_stats Bank_account Counter List Prom Queue_type Rng Runtime
