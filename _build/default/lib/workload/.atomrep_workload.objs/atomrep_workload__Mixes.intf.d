lib/workload/mixes.mli: Atomrep_replica Atomrep_stats Rng Runtime
