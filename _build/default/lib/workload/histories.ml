open Atomrep_history
open Atomrep_spec
open Atomrep_stats

let universe_for spec ~max_events =
  Serial_spec.event_universe spec ~max_len:max_events

let random rng spec ~max_actions ~max_events =
  let universe = Array.of_list (universe_for spec ~max_events) in
  let n_actions = 1 + Rng.int rng max_actions in
  let actions = Array.init n_actions Action.of_int in
  let begun = Array.make n_actions false in
  let finished = Array.make n_actions false in
  let history = ref [] in
  let events_left = ref (Rng.int rng (max_events + 1)) in
  let steps = ref (4 * (max_events + n_actions)) in
  let all_done () =
    Array.for_all Fun.id finished
    || (!events_left = 0 && Array.for_all2 (fun b f -> (not b) || f) begun finished)
  in
  while (not (all_done ())) && !steps > 0 do
    decr steps;
    let i = Rng.int rng n_actions in
    if not begun.(i) then begin
      begun.(i) <- true;
      history := Behavioral.Begin actions.(i) :: !history
    end
    else if not finished.(i) then begin
      match Rng.int rng 5 with
      | 0 ->
        finished.(i) <- true;
        history := Behavioral.Commit actions.(i) :: !history
      | 1 ->
        finished.(i) <- true;
        history := Behavioral.Abort actions.(i) :: !history
      | _ ->
        if !events_left > 0 && Array.length universe > 0 then begin
          decr events_left;
          let e = Rng.pick rng universe in
          history := Behavioral.Exec (e, actions.(i)) :: !history
        end
    end
  done;
  List.rev !history

let random_serial rng spec ~len =
  let rec go state acc remaining =
    if remaining = 0 then List.rev acc
    else begin
      let choices =
        List.concat_map
          (fun inv ->
            List.map (fun (res, s') -> (Event.make inv res, s')) (spec.Serial_spec.step state inv))
          spec.Serial_spec.invocations
      in
      match choices with
      | [] -> List.rev acc
      | _ ->
        let e, s' = Rng.pick_list rng choices in
        go s' (e :: acc) (remaining - 1)
    end
  in
  go spec.Serial_spec.initial [] len

let random_atomic rng spec ~max_actions ~max_events =
  let n_actions = 1 + Rng.int rng max_actions in
  let history = ref [] in
  let state = ref spec.Serial_spec.initial in
  let events_left = ref max_events in
  for i = 0 to n_actions - 1 do
    let a = Action.of_int i in
    history := Behavioral.Begin a :: !history;
    let n_ops = Rng.int rng 3 in
    for _ = 1 to min n_ops !events_left do
      let choices =
        List.concat_map
          (fun inv ->
            List.map (fun (res, s') -> (Event.make inv res, s')) (spec.Serial_spec.step !state inv))
          spec.Serial_spec.invocations
      in
      match choices with
      | [] -> ()
      | _ ->
        decr events_left;
        let e, s' = Rng.pick_list rng choices in
        state := s';
        history := Behavioral.Exec (e, a) :: !history
    done;
    history := Behavioral.Commit a :: !history
  done;
  List.rev !history
