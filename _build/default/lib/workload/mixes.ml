open Atomrep_spec
open Atomrep_stats
open Atomrep_replica

let items = [ "x"; "y" ]

let queue_mix ?(enq_ratio = 0.5) ?(ops_per_txn = 1) ~target () rng _index =
  List.init ops_per_txn (fun _ ->
      if Rng.bernoulli rng enq_ratio then
        { Runtime.target; invocation = Queue_type.enq_inv (Rng.pick_list rng items) }
      else { Runtime.target; invocation = Queue_type.deq_inv })

let prom_mix ?(seal_every = 10) ~target () rng index =
  if index > 0 && index mod seal_every = 0 then
    [ { Runtime.target; invocation = Prom.seal_inv } ]
  else if Rng.bernoulli rng 0.3 then
    [ { Runtime.target; invocation = Prom.read_inv } ]
  else
    [ { Runtime.target; invocation = Prom.write_inv (Rng.pick_list rng items) } ]

let bank_mix ?(ops_per_txn = 2) ~targets () rng _index =
  List.init ops_per_txn (fun _ ->
      let target = Rng.pick_list rng targets in
      match Rng.int rng 3 with
      | 0 -> { Runtime.target; invocation = Bank_account.deposit_inv (1 + Rng.int rng 2) }
      | 1 -> { Runtime.target; invocation = Bank_account.withdraw_inv (1 + Rng.int rng 2) }
      | _ -> { Runtime.target; invocation = Bank_account.balance_inv })

let counter_mix ?(read_ratio = 0.3) ~target () rng _index =
  if Rng.bernoulli rng read_ratio then
    [ { Runtime.target; invocation = Counter.read_inv } ]
  else if Rng.bool rng then [ { Runtime.target; invocation = Counter.inc_inv } ]
  else [ { Runtime.target; invocation = Counter.dec_inv } ]
