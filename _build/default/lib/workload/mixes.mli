(** Transaction scripts for the simulation experiments. *)

open Atomrep_stats
open Atomrep_replica

val queue_mix :
  ?enq_ratio:float -> ?ops_per_txn:int -> target:string -> unit ->
  Rng.t -> int -> Runtime.op_request list
(** Enq/Deq transactions over the two-item universe. *)

val prom_mix :
  ?seal_every:int -> target:string -> unit ->
  Rng.t -> int -> Runtime.op_request list
(** PROM workload from the paper's §4 scenario: mostly writes, occasional
    reads, a seal somewhere in the middle of the run (transaction index
    divisible by [seal_every] seals). Reads before the seal raise Disabled
    — that is the type's behaviour, not an error. *)

val bank_mix :
  ?ops_per_txn:int -> targets:string list -> unit ->
  Rng.t -> int -> Runtime.op_request list
(** Deposits, withdrawals, balance checks spread over several accounts. *)

val counter_mix :
  ?read_ratio:float -> target:string -> unit ->
  Rng.t -> int -> Runtime.op_request list
