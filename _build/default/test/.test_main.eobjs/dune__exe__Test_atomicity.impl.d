test/test_atomicity.ml: Alcotest Atomicity Atomrep_atomicity Atomrep_core Atomrep_history Atomrep_spec Behavioral Counter List Queue_type
