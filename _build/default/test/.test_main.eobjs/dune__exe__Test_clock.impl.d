test/test_clock.ml: Alcotest Atomrep_clock Lamport
