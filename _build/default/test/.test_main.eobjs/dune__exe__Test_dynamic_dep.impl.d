test/test_dynamic_dep.ml: Alcotest Atomrep_core Atomrep_history Atomrep_spec Counter Double_buffer Dynamic_dep List Option Paper Prom Queue_type Relation Semiqueue Serial_spec Static_dep
