test/test_gifford.ml: Alcotest Array Atomrep_quorum Atomrep_replica Atomrep_sim Atomrep_stats Engine Gifford Network Printf
