test/test_history.ml: Action Alcotest Atomrep_history Atomrep_spec Behavioral Event List Queue_type
