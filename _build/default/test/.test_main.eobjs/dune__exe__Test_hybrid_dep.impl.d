test/test_hybrid_dep.ml: Alcotest Atomrep_core Atomrep_spec Double_buffer Flag_set Hybrid_dep Lazy List Paper Prom Queue_type Register Relation Static_dep
