test/test_quorum.ml: Alcotest Assignment Atomrep_core Atomrep_quorum Atomrep_spec Atomrep_stats Binomial List Op_constraint Paper Printf Prom Queue_type Quorum Static_dep Weighted
