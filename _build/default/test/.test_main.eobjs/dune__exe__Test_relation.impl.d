test/test_relation.ml: Alcotest Atomrep_core Atomrep_spec Flag_set Format List Queue_type Relation Serial_spec
