test/test_sim.ml: Alcotest Atomrep_sim Engine Fault List Network Rpc
