test/test_static_dep.ml: Alcotest Atomrep_core Atomrep_history Atomrep_spec Counter Directory List Option Paper Prom Queue_type Register Relation Serial_spec Static_dep Wset
