test/test_stats.ml: Alcotest Array Atomrep_stats Fun List Rng String Summary Table
