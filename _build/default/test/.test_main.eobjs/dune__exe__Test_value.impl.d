test/test_value.ml: Alcotest Atomrep_history List Value
