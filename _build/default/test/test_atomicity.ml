open Atomrep_history
open Atomrep_spec
open Atomrep_atomicity

let check_bool = Alcotest.(check bool)

let enq = Queue_type.enq
let deq_ok = Queue_type.deq_ok

let script = Behavioral.of_script

(* The §3.1 behavioral history: A enqueues x, B enqueues y, A commits, B
   dequeues x and commits. Commit order A,B gives Enq(x) Enq(y) Deq;Ok(x):
   legal. Begin order is also A,B — static atomic too. *)
let paper_history =
  script
    [
      ("A", `Begin);
      ("A", `Exec (enq "x"));
      ("B", `Begin);
      ("B", `Exec (enq "y"));
      ("A", `Commit);
      ("B", `Exec (deq_ok "x"));
      ("B", `Commit);
    ]

let test_paper_history_hybrid () =
  check_bool "hybrid" true (Atomicity.is_hybrid_atomic Queue_type.spec paper_history)

let test_paper_history_static () =
  check_bool "static" true (Atomicity.is_static_atomic Queue_type.spec paper_history)

(* B dequeues y — only legal if B serializes before A, but B commits after
   A: not hybrid atomic. *)
let inverted =
  script
    [
      ("A", `Begin);
      ("A", `Exec (enq "x"));
      ("B", `Begin);
      ("B", `Exec (enq "y"));
      ("A", `Commit);
      ("B", `Exec (deq_ok "y"));
      ("B", `Commit);
    ]

let test_inverted_not_hybrid () =
  check_bool "not hybrid" false (Atomicity.is_hybrid_atomic Queue_type.spec inverted)

let test_inverted_not_static () =
  check_bool "not static" false (Atomicity.is_static_atomic Queue_type.spec inverted)

(* Static vs hybrid divergence: begin order A,B but commit order B,A.
   A enqueues x; B enqueues y; B commits first; a later reader C dequeues
   y — consistent with commit order (hybrid) but not with begin order
   (static). *)
let commit_vs_begin =
  script
    [
      ("A", `Begin);
      ("B", `Begin);
      ("A", `Exec (enq "x"));
      ("B", `Exec (enq "y"));
      ("B", `Commit);
      ("A", `Commit);
      ("C", `Begin);
      ("C", `Exec (deq_ok "y"));
      ("C", `Commit);
    ]

let test_commit_order_wins_hybrid () =
  check_bool "hybrid accepts" true (Atomicity.is_hybrid_atomic Queue_type.spec commit_vs_begin)

let test_begin_order_rejects_static () =
  check_bool "static rejects" false (Atomicity.is_static_atomic Queue_type.spec commit_vs_begin)

(* And the mirror image: dequeue follows begin order, violating commit
   order. *)
let begin_vs_commit =
  script
    [
      ("A", `Begin);
      ("B", `Begin);
      ("A", `Exec (enq "x"));
      ("B", `Exec (enq "y"));
      ("B", `Commit);
      ("A", `Commit);
      ("C", `Begin);
      ("C", `Exec (deq_ok "x"));
      ("C", `Commit);
    ]

let test_begin_vs_commit_static () =
  check_bool "static accepts" true (Atomicity.is_static_atomic Queue_type.spec begin_vs_commit)

let test_begin_vs_commit_hybrid () =
  check_bool "hybrid rejects" false (Atomicity.is_hybrid_atomic Queue_type.spec begin_vs_commit)

(* Dynamic ⊆ Hybrid (the paper: strong dynamic atomicity is a special case
   of hybrid atomicity). The commit_vs_begin history is hybrid; is it
   dynamic? A and B ran concurrently, so both serialization orders must be
   equivalent — enqueues of different items do not commute, so no. *)
let test_concurrent_enqs_not_dynamic () =
  check_bool "not dynamic" false (Atomicity.is_dynamic_atomic Queue_type.spec commit_vs_begin)

(* With commuting operations (same item), concurrency is dynamic-atomic. *)
let test_commuting_enqs_dynamic () =
  let h =
    script
      [
        ("A", `Begin);
        ("B", `Begin);
        ("A", `Exec (enq "x"));
        ("B", `Exec (enq "x"));
        ("B", `Commit);
        ("A", `Commit);
      ]
  in
  check_bool "dynamic" true (Atomicity.is_dynamic_atomic Queue_type.spec h)

(* The precedes order matters: once A commits before B executes, only the
   A-then-B serialization is demanded. *)
let test_precedes_limits_orders () =
  let h =
    script
      [
        ("A", `Begin);
        ("A", `Exec (enq "x"));
        ("A", `Commit);
        ("B", `Begin);
        ("B", `Exec (enq "y"));
        ("B", `Commit);
      ]
  in
  check_bool "sequential non-commuting ops are dynamic" true
    (Atomicity.is_dynamic_atomic Queue_type.spec h)

(* On-line requirement: an active action's events must stay serializable
   if it commits now. *)
let test_online_active_rejected () =
  let h =
    script
      [
        ("A", `Begin);
        ("A", `Exec (deq_ok "x"));
        (* queue is empty: no serialization justifies this *)
      ]
  in
  check_bool "hybrid rejects" false (Atomicity.is_hybrid_atomic Queue_type.spec h);
  check_bool "static rejects" false (Atomicity.is_static_atomic Queue_type.spec h);
  check_bool "dynamic rejects" false (Atomicity.is_dynamic_atomic Queue_type.spec h)

(* Aborted actions are invisible (recoverability). *)
let test_aborted_invisible () =
  let h =
    script
      [
        ("A", `Begin);
        ("A", `Exec (enq "x"));
        ("A", `Abort);
        ("B", `Begin);
        ("B", `Exec (deq_ok "x"));
        ("B", `Commit);
      ]
  in
  check_bool "deq of aborted enq is not atomic" false
    (Atomicity.is_hybrid_atomic Queue_type.spec h);
  let h' =
    script
      [
        ("A", `Begin);
        ("A", `Exec (enq "x"));
        ("A", `Abort);
        ("B", `Begin);
        ("B", `Exec Queue_type.deq_empty);
        ("B", `Commit);
      ]
  in
  check_bool "empty after aborted enq is atomic" true
    (Atomicity.is_hybrid_atomic Queue_type.spec h')

(* Empty and trivial histories. *)
let test_trivial_histories () =
  List.iter
    (fun property ->
      check_bool "empty history" true (Atomicity.satisfies Queue_type.spec property []);
      check_bool "begin only" true
        (Atomicity.satisfies Queue_type.spec property (script [ ("A", `Begin) ])))
    Atomicity.all_properties

(* PROM: the dirty-read pattern static atomicity is built to prevent. *)
let test_prom_static_example () =
  (* Same shape as Theorem 5's history — static atomic as it stands. *)
  check_bool "thm5 base history static" true
    (Atomicity.is_static_atomic Atomrep_spec.Prom.spec Atomrep_core.Paper.theorem5_history)

let test_failure_reporting () =
  match Atomicity.check Queue_type.spec Atomicity.Hybrid inverted with
  | Ok () -> Alcotest.fail "expected a counterexample"
  | Error f ->
    check_bool "order nonempty" true (f.Atomicity.order <> []);
    check_bool "serial nonempty" true (f.Atomicity.serial <> [])

(* Dynamic equivalence requirement: all precedes-compatible serializations
   must be EQUIVALENT, not merely legal. Two concurrent counter actions:
   Inc and Read — both orders legal from 0 (Read returns 0 in one order
   only... Read;Ok(0) illegal after Inc) — use Inc vs Inc: equivalent; use
   Read;Ok(0) vs Inc: order matters, not dynamic. *)
let test_dynamic_equivalence_requirement () =
  let open Atomrep_spec in
  let h =
    script
      [
        ("A", `Begin);
        ("B", `Begin);
        ("A", `Exec Counter.inc);
        ("B", `Exec (Counter.read 0));
        ("A", `Commit);
        ("B", `Commit);
      ]
  in
  (* Read;Ok(0) is only legal before the Inc: serialization B,A is legal,
     A,B is not — not all orders legal, hence not dynamic. *)
  check_bool "not dynamic" false (Atomicity.is_dynamic_atomic Counter.spec h);
  (* But it is hybrid atomic when commit order matches (B read before A's
     effect in commit order? commit order A,B puts Inc first — illegal;
     so this history is not hybrid either). *)
  check_bool "not hybrid (commit order A,B)" false
    (Atomicity.is_hybrid_atomic Counter.spec h)

let suites =
  [
    ( "atomicity properties",
      [
        Alcotest.test_case "paper history is hybrid" `Quick test_paper_history_hybrid;
        Alcotest.test_case "paper history is static" `Quick test_paper_history_static;
        Alcotest.test_case "inverted deq not hybrid" `Quick test_inverted_not_hybrid;
        Alcotest.test_case "inverted deq not static" `Quick test_inverted_not_static;
        Alcotest.test_case "commit order satisfies hybrid" `Quick test_commit_order_wins_hybrid;
        Alcotest.test_case "commit order violates static" `Quick test_begin_order_rejects_static;
        Alcotest.test_case "begin order satisfies static" `Quick test_begin_vs_commit_static;
        Alcotest.test_case "begin order violates hybrid" `Quick test_begin_vs_commit_hybrid;
        Alcotest.test_case "concurrent enqueues not dynamic" `Quick test_concurrent_enqs_not_dynamic;
        Alcotest.test_case "commuting enqueues dynamic" `Quick test_commuting_enqs_dynamic;
        Alcotest.test_case "precedes limits demanded orders" `Quick test_precedes_limits_orders;
        Alcotest.test_case "on-line check rejects bad active" `Quick test_online_active_rejected;
        Alcotest.test_case "aborted actions invisible" `Quick test_aborted_invisible;
        Alcotest.test_case "trivial histories" `Quick test_trivial_histories;
        Alcotest.test_case "theorem 5 base history static" `Quick test_prom_static_example;
        Alcotest.test_case "failures carry counterexamples" `Quick test_failure_reporting;
        Alcotest.test_case "dynamic requires equivalence" `Quick test_dynamic_equivalence_requirement;
      ] );
  ]
