open Atomrep_history
open Atomrep_spec
open Atomrep_clock
open Atomrep_cc

let check_bool = Alcotest.(check bool)

let ts n = { Lamport.Timestamp.counter = n; site = 0 }
let a = Action.of_string "A"
let b = Action.of_string "B"

(* --- Conflict tables --- *)

let test_conflict_table_projection () =
  let table = Conflict_table.of_relation Atomrep_core.Paper.prom_hybrid_relation in
  check_bool "Seal depends on Write" true
    (Conflict_table.depends table Prom.seal_inv (Prom.write "x"));
  check_bool "Write does not depend on Write" false
    (Conflict_table.depends table (Prom.write_inv "x") (Prom.write "y"));
  check_bool "Write related to Seal" true
    (Conflict_table.related table (Prom.write_inv "x") Prom.seal);
  check_bool "ops query" true (Conflict_table.related_ops table "Read" "Seal");
  check_bool "write/write unrelated" false (Conflict_table.related_ops table "Write" "Write")

(* --- Generic scheduler exercises, instantiated per scheme --- *)

module type SCHED = Scheduler.S

let exec (type a) (module S : SCHED with type t = a) (t : a) action inv =
  match S.try_operation t action inv with
  | Scheduler.Executed res -> res
  | Scheduler.Blocked blocker ->
    Alcotest.failf "unexpected block on %s" (Action.to_string blocker)
  | Scheduler.Rejected why -> Alcotest.failf "unexpected rejection: %s" why

let test_serial_execution (module S : SCHED) () =
  let t = S.create Queue_type.spec in
  S.begin_action t a ~ts:(ts 1);
  let r1 = exec (module S) t a (Queue_type.enq_inv "x") in
  check_bool "enq ok" true (Event.Response.is_ok r1);
  S.commit t a ~ts:(ts 2);
  S.begin_action t b ~ts:(ts 3);
  let r2 = exec (module S) t b Queue_type.deq_inv in
  check_bool "deq sees x" true
    (Event.Response.equal r2 (Event.Response.ok [ Value.str "x" ]));
  S.commit t b ~ts:(ts 4);
  check_bool "well-formed history" true (Behavioral.well_formed (S.history t))

let test_abort_invisible (module S : SCHED) () =
  let t = S.create Queue_type.spec in
  S.begin_action t a ~ts:(ts 1);
  ignore (exec (module S) t a (Queue_type.enq_inv "x"));
  S.abort t a;
  S.begin_action t b ~ts:(ts 2);
  let r = exec (module S) t b Queue_type.deq_inv in
  check_bool "deq finds empty queue" true
    (Event.Response.equal r (Event.Response.exn "Empty"))

let property_of (module S : SCHED) =
  let open Atomrep_atomicity.Atomicity in
  match S.scheme_name with
  | "locking" -> Dynamic
  | "static" -> Static
  | "hybrid" -> Hybrid
  | other -> Alcotest.failf "unknown scheme %s" other

let test_history_satisfies_property (module S : SCHED) () =
  let t = S.create Queue_type.spec in
  S.begin_action t a ~ts:(ts 1);
  S.begin_action t b ~ts:(ts 2);
  ignore (exec (module S) t a (Queue_type.enq_inv "x"));
  (match S.try_operation t b Queue_type.deq_inv with
   | Scheduler.Executed _ | Scheduler.Blocked _ | Scheduler.Rejected _ -> ());
  S.commit t a ~ts:(ts 3);
  (match S.try_operation t b Queue_type.deq_inv with
   | Scheduler.Executed _ | Scheduler.Blocked _ | Scheduler.Rejected _ -> ());
  S.commit t b ~ts:(ts 4);
  check_bool "history satisfies scheme property" true
    (Atomrep_atomicity.Atomicity.satisfies Queue_type.spec (property_of (module S))
       (S.history t))

(* --- Scheme-specific behaviour --- *)

let test_locking_blocks_nonconmuting () =
  let module S = Scheduler.Locking in
  let t = S.create Queue_type.spec in
  S.begin_action t a ~ts:(ts 1);
  S.begin_action t b ~ts:(ts 2);
  ignore (exec (module S) t a (Queue_type.enq_inv "x"));
  (* Enq(y) does not commute with Enq(x): blocked under locking. *)
  (match S.try_operation t b (Queue_type.enq_inv "y") with
   | Scheduler.Blocked blocker -> check_bool "blocked on A" true (Action.equal blocker a)
   | Scheduler.Executed _ -> Alcotest.fail "locking must block non-commuting enq"
   | Scheduler.Rejected why -> Alcotest.failf "unexpected rejection: %s" why);
  S.commit t a ~ts:(ts 3);
  (* After commit the lock is gone. *)
  ignore (exec (module S) t b (Queue_type.enq_inv "y"))

let test_hybrid_allows_concurrent_enqs () =
  let module S = Scheduler.Hybrid_ts in
  let t = S.create Queue_type.spec in
  S.begin_action t a ~ts:(ts 1);
  S.begin_action t b ~ts:(ts 2);
  ignore (exec (module S) t a (Queue_type.enq_inv "x"));
  (* Under hybrid atomicity Enq/Enq is not a dependency: no block. *)
  ignore (exec (module S) t b (Queue_type.enq_inv "y"));
  S.commit t b ~ts:(ts 3);
  S.commit t a ~ts:(ts 4);
  (* Commit order B, A: a reader must now see y first. *)
  S.begin_action t (Action.of_string "C") ~ts:(ts 5);
  let r = exec (module S) t (Action.of_string "C") Queue_type.deq_inv in
  check_bool "deq sees y (commit order)" true
    (Event.Response.equal r (Event.Response.ok [ Value.str "y" ]));
  check_bool "hybrid atomic" true
    (Atomrep_atomicity.Atomicity.is_hybrid_atomic Queue_type.spec (S.history t))

let test_hybrid_blocks_deq_on_enq () =
  let module S = Scheduler.Hybrid_ts in
  let t = S.create Queue_type.spec in
  S.begin_action t a ~ts:(ts 1);
  S.begin_action t b ~ts:(ts 2);
  ignore (exec (module S) t a (Queue_type.enq_inv "x"));
  match S.try_operation t b Queue_type.deq_inv with
  | Scheduler.Blocked _ -> ()
  | Scheduler.Executed _ -> Alcotest.fail "deq must block on uncommitted enq"
  | Scheduler.Rejected why -> Alcotest.failf "unexpected rejection: %s" why

let test_hybrid_prom_concurrent_writes () =
  (* The paper's PROM payoff: concurrent writers never block each other
     under hybrid atomicity. *)
  let module S = Scheduler.Hybrid_ts in
  let t = S.create Prom.spec in
  S.begin_action t a ~ts:(ts 1);
  S.begin_action t b ~ts:(ts 2);
  ignore (exec (module S) t a (Prom.write_inv "x"));
  ignore (exec (module S) t b (Prom.write_inv "y"));
  S.commit t a ~ts:(ts 3);
  S.commit t b ~ts:(ts 4);
  check_bool "hybrid atomic" true
    (Atomrep_atomicity.Atomicity.is_hybrid_atomic Prom.spec (S.history t))

let test_locking_prom_writes_block () =
  let module S = Scheduler.Locking in
  let t = S.create Prom.spec in
  S.begin_action t a ~ts:(ts 1);
  S.begin_action t b ~ts:(ts 2);
  ignore (exec (module S) t a (Prom.write_inv "x"));
  match S.try_operation t b (Prom.write_inv "y") with
  | Scheduler.Blocked _ -> ()
  | Scheduler.Executed _ -> Alcotest.fail "locking must block concurrent writes"
  | Scheduler.Rejected why -> Alcotest.failf "unexpected rejection: %s" why

let test_static_late_writer_rejected () =
  let module S = Scheduler.Static_ts in
  let t = S.create Register.spec in
  (* B (later timestamp) reads first; A (earlier) then tries to write:
     the write would invalidate B's read. *)
  S.begin_action t a ~ts:(ts 1);
  S.begin_action t b ~ts:(ts 5);
  ignore (exec (module S) t b Register.read_inv);
  S.commit t b ~ts:(ts 6);
  match S.try_operation t a (Register.write_inv "x") with
  | Scheduler.Rejected _ -> ()
  | Scheduler.Executed _ -> Alcotest.fail "late write must be rejected"
  | Scheduler.Blocked _ -> Alcotest.fail "static schemes do not block here"

let test_static_commuting_late_op_accepted () =
  let module S = Scheduler.Static_ts in
  let t = S.create Counter.spec in
  S.begin_action t a ~ts:(ts 1);
  S.begin_action t b ~ts:(ts 5);
  ignore (exec (module S) t b Counter.inc_inv);
  S.commit t b ~ts:(ts 6);
  (* An earlier-timestamped Inc slots in without invalidating B's Inc. *)
  ignore (exec (module S) t a Counter.inc_inv);
  S.commit t a ~ts:(ts 7);
  check_bool "static atomic" true
    (Atomrep_atomicity.Atomicity.is_static_atomic Counter.spec (S.history t))

let test_static_read_positions () =
  let module S = Scheduler.Static_ts in
  let t = S.create Register.spec in
  S.begin_action t a ~ts:(ts 1);
  ignore (exec (module S) t a (Register.write_inv "x"));
  S.commit t a ~ts:(ts 2);
  (* A later reader sees x. *)
  S.begin_action t b ~ts:(ts 3);
  let r = exec (module S) t b Register.read_inv in
  check_bool "read sees committed write" true
    (Event.Response.equal r (Event.Response.ok [ Value.str "x" ]))

let test_scheduler_rejects_unknown_action () =
  let module S = Scheduler.Locking in
  let t = S.create Queue_type.spec in
  Alcotest.check_raises "unknown action"
    (Invalid_argument "Scheduler: unknown action Z") (fun () ->
      ignore (S.try_operation t (Action.of_string "Z") Queue_type.deq_inv))

let test_scheduler_rejects_duplicate_begin () =
  let module S = Scheduler.Locking in
  let t = S.create Queue_type.spec in
  S.begin_action t a ~ts:(ts 1);
  Alcotest.check_raises "duplicate begin"
    (Invalid_argument "Scheduler: duplicate Begin for A") (fun () ->
      S.begin_action t a ~ts:(ts 2))

let per_scheme name (module S : SCHED) =
  [
    Alcotest.test_case (name ^ ": serial execution") `Quick (test_serial_execution (module S));
    Alcotest.test_case (name ^ ": aborts invisible") `Quick (test_abort_invisible (module S));
    Alcotest.test_case
      (name ^ ": history satisfies property")
      `Quick
      (test_history_satisfies_property (module S));
  ]

let suites =
  [
    ( "concurrency control",
      [
        Alcotest.test_case "conflict table projection" `Quick test_conflict_table_projection;
      ]
      @ per_scheme "locking" (module Scheduler.Locking)
      @ per_scheme "static" (module Scheduler.Static_ts)
      @ per_scheme "hybrid" (module Scheduler.Hybrid_ts)
      @ [
          Alcotest.test_case "locking blocks non-commuting" `Quick test_locking_blocks_nonconmuting;
          Alcotest.test_case "hybrid allows concurrent enqs" `Quick test_hybrid_allows_concurrent_enqs;
          Alcotest.test_case "hybrid blocks deq on enq" `Quick test_hybrid_blocks_deq_on_enq;
          Alcotest.test_case "hybrid PROM concurrent writes" `Quick test_hybrid_prom_concurrent_writes;
          Alcotest.test_case "locking PROM writes block" `Quick test_locking_prom_writes_block;
          Alcotest.test_case "static rejects late writer" `Quick test_static_late_writer_rejected;
          Alcotest.test_case "static accepts commuting late op" `Quick test_static_commuting_late_op_accepted;
          Alcotest.test_case "static reads see commits" `Quick test_static_read_positions;
          Alcotest.test_case "unknown action" `Quick test_scheduler_rejects_unknown_action;
          Alcotest.test_case "duplicate begin" `Quick test_scheduler_rejects_duplicate_begin;
        ] );
  ]
