open Atomrep_clock

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_tick_increases () =
  let c = Lamport.create ~site:0 in
  let t1 = Lamport.tick c in
  let t2 = Lamport.tick c in
  check_bool "strictly increasing" true (Lamport.Timestamp.compare t1 t2 < 0)

let test_witness_advances () =
  let c = Lamport.create ~site:0 in
  Lamport.witness c { Lamport.Timestamp.counter = 10; site = 3 };
  let t = Lamport.tick c in
  check_int "counter exceeds witnessed" 11 t.Lamport.Timestamp.counter

let test_witness_no_regress () =
  let c = Lamport.create ~site:0 in
  ignore (Lamport.tick c);
  ignore (Lamport.tick c);
  Lamport.witness c { Lamport.Timestamp.counter = 1; site = 9 };
  let t = Lamport.tick c in
  check_int "old timestamps ignored" 3 t.Lamport.Timestamp.counter

let test_total_order_breaks_ties_by_site () =
  let a = { Lamport.Timestamp.counter = 5; site = 0 } in
  let b = { Lamport.Timestamp.counter = 5; site = 1 } in
  check_bool "site breaks ties" true (Lamport.Timestamp.compare a b < 0);
  check_bool "antisymmetric" true (Lamport.Timestamp.compare b a > 0)

let test_happens_before_respected () =
  (* Message from site 0 to site 1: the receiver's next timestamp exceeds
     the sender's send timestamp. *)
  let c0 = Lamport.create ~site:0 and c1 = Lamport.create ~site:1 in
  let send_ts = Lamport.tick c0 in
  Lamport.witness c1 send_ts;
  let recv_ts = Lamport.tick c1 in
  check_bool "send < receive" true (Lamport.Timestamp.compare send_ts recv_ts < 0)

let test_peek_does_not_advance () =
  let c = Lamport.create ~site:2 in
  ignore (Lamport.tick c);
  let p1 = Lamport.peek c in
  let p2 = Lamport.peek c in
  check_bool "peek stable" true (Lamport.Timestamp.equal p1 p2)

let suites =
  [
    ( "lamport clock",
      [
        Alcotest.test_case "tick increases" `Quick test_tick_increases;
        Alcotest.test_case "witness advances" `Quick test_witness_advances;
        Alcotest.test_case "witness never regresses" `Quick test_witness_no_regress;
        Alcotest.test_case "ties broken by site" `Quick test_total_order_breaks_ties_by_site;
        Alcotest.test_case "happens-before respected" `Quick test_happens_before_respected;
        Alcotest.test_case "peek is pure" `Quick test_peek_does_not_advance;
      ] );
  ]
