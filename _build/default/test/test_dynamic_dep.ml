open Atomrep_spec
open Atomrep_core

let check_bool = Alcotest.(check bool)

(* Definition 8 commutativity. *)
let commute spec e e' = Dynamic_dep.commute spec ~max_len:4 e e'

let test_queue_commutativity () =
  check_bool "Enq(x)/Deq commute" true
    (commute Queue_type.spec (Queue_type.enq "x") (Queue_type.deq_ok "y"));
  check_bool "Enq(x)/Enq(y) conflict" false
    (commute Queue_type.spec (Queue_type.enq "x") (Queue_type.enq "y"));
  check_bool "Enq(x)/Enq(x) commute" true
    (commute Queue_type.spec (Queue_type.enq "x") (Queue_type.enq "x"));
  check_bool "Enq/Deq;Empty conflict" false
    (commute Queue_type.spec (Queue_type.enq "x") Queue_type.deq_empty);
  check_bool "Deq;Ok(x) conflicts with itself" false
    (commute Queue_type.spec (Queue_type.deq_ok "x") (Queue_type.deq_ok "x"));
  (* Deq;Ok(x) and Deq;Ok(y) are never both enabled in one state, so they
     commute vacuously; the Deq ≽ Deq;Ok dependency comes from the
     same-response pair above. *)
  check_bool "Deq;Ok(x)/Deq;Ok(y) commute vacuously" true
    (commute Queue_type.spec (Queue_type.deq_ok "x") (Queue_type.deq_ok "y"))

let test_counter_commutativity () =
  check_bool "Inc/Dec commute" true (commute Counter.spec Counter.inc Counter.dec);
  check_bool "Inc/Inc commute" true (commute Counter.spec Counter.inc Counter.inc);
  check_bool "Inc/Read conflict" false (commute Counter.spec Counter.inc (Counter.read 0))

let test_prom_commutativity () =
  check_bool "Write(x)/Write(y) conflict" false
    (commute Prom.spec (Prom.write "x") (Prom.write "y"));
  check_bool "Write/Seal conflict" false (commute Prom.spec (Prom.write "x") Prom.seal);
  check_bool "Read;Ok/Seal commute" true (commute Prom.spec (Prom.read_ok "x") Prom.seal);
  check_bool "Seal/Seal commute" true (commute Prom.spec Prom.seal Prom.seal)

(* Theorem 11's extra constraint. *)
let test_queue_dynamic_adds_enq_enq () =
  let rd = Dynamic_dep.minimal Queue_type.spec ~max_len:4 in
  List.iter
    (fun p -> check_bool "Enq >= Enq present" true (Relation.mem p rd))
    Paper.queue_dynamic_extra

(* ... and drops the Enq ≽ Deq;Ok constraint static requires — the two
   relations are incomparable (end of §5). *)
let test_queue_dynamic_drops_enq_deq () =
  let rd = Dynamic_dep.minimal Queue_type.spec ~max_len:4 in
  check_bool "Enq >= Deq;Ok absent" false
    (Relation.mem (Queue_type.enq_inv "x", Queue_type.deq_ok "y") rd)

let test_queue_incomparable () =
  let rs = Static_dep.minimal Queue_type.spec ~max_len:4 in
  let rd = Dynamic_dep.minimal Queue_type.spec ~max_len:4 in
  check_bool "static not subset of dynamic" false (Relation.subset rs rd);
  check_bool "dynamic not subset of static" false (Relation.subset rd rs)

(* Theorem 12: the minimal dynamic relation for DoubleBuffer equals the
   paper's five schemas. *)
let test_doublebuffer_matches_paper () =
  let rd = Dynamic_dep.minimal Double_buffer.spec ~max_len:4 in
  check_bool "equals paper relation" true
    (Relation.equal rd Paper.doublebuffer_dynamic_relation)

(* The dynamic relation is symmetric at the operation level: if [inv ≽ e]
   by non-commutation, the reverse orientation is present too. *)
let test_symmetry () =
  List.iter
    (fun spec ->
      let rd = Dynamic_dep.minimal spec ~max_len:3 in
      let universe = Serial_spec.event_universe spec ~max_len:3 in
      List.iter
        (fun ((inv, e) : Relation.pair) ->
          (* find an event of the invoking operation to check the reverse *)
          let evs_of_inv =
            List.filter
              (fun (ev : Atomrep_history.Event.t) ->
                Atomrep_history.Event.Invocation.equal ev.inv inv)
              universe
          in
          check_bool "reverse orientation present" true
            (List.exists
               (fun ev -> Relation.mem (e.Atomrep_history.Event.inv, ev) rd)
               evs_of_inv))
        (Relation.elements rd))
    [ Queue_type.spec; Prom.spec; Counter.spec ]

let test_non_commuting_witness () =
  match
    Dynamic_dep.non_commuting_witness Queue_type.spec ~max_len:4 (Queue_type.enq "x")
      Queue_type.deq_empty
  with
  | None -> Alcotest.fail "expected witness"
  | Some h ->
    (* From the witness state, enq then deq-empty must diverge. *)
    check_bool "witness is a legal history" true (Serial_spec.legal Queue_type.spec h)

let test_commute_witness_absent () =
  check_bool "no witness for commuting pair" true
    (Option.is_none
       (Dynamic_dep.non_commuting_witness Counter.spec ~max_len:4 Counter.inc Counter.dec))

(* Semiqueue: weakening FIFO shrinks the dynamic relation — Deq conflicts
   with Deq in a queue, but in a semiqueue two Deqs of different items
   commute. *)
let test_semiqueue_weaker_than_queue () =
  let rd_q = Dynamic_dep.minimal Queue_type.spec ~max_len:4 in
  let rd_sq = Dynamic_dep.minimal Semiqueue.spec ~max_len:4 in
  check_bool "queue: Deq conflicts Deq" true
    (Relation.mem (Queue_type.deq_inv, Queue_type.deq_ok "x") rd_q);
  check_bool "semiqueue: Enq/Enq commute" false
    (Relation.mem (Semiqueue.enq_inv "x", Semiqueue.enq "y") rd_sq)

let suites =
  [
    ( "dynamic dependency (Theorem 10)",
      [
        Alcotest.test_case "queue commutativity" `Quick test_queue_commutativity;
        Alcotest.test_case "counter commutativity" `Quick test_counter_commutativity;
        Alcotest.test_case "prom commutativity" `Quick test_prom_commutativity;
        Alcotest.test_case "theorem 11 extra pair" `Quick test_queue_dynamic_adds_enq_enq;
        Alcotest.test_case "dynamic drops Enq>=Deq" `Quick test_queue_dynamic_drops_enq_deq;
        Alcotest.test_case "static/dynamic incomparable" `Quick test_queue_incomparable;
        Alcotest.test_case "doublebuffer equals paper" `Quick test_doublebuffer_matches_paper;
        Alcotest.test_case "operation-level symmetry" `Quick test_symmetry;
        Alcotest.test_case "non-commuting witness" `Quick test_non_commuting_witness;
        Alcotest.test_case "commuting pairs lack witness" `Quick test_commute_witness_absent;
        Alcotest.test_case "semiqueue weaker than queue" `Quick test_semiqueue_weaker_than_queue;
      ] );
  ]
