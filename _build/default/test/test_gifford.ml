open Atomrep_sim
open Atomrep_replica

let check_bool = Alcotest.(check bool)

let setup ?(weights = [| 1; 1; 1 |]) ?(r = 2) ?(w = 2) () =
  let engine = Engine.create ~seed:11 in
  let net = Network.create engine ~n_sites:(Array.length weights) () in
  let file = Gifford.create ~net ~weights ~read_votes:r ~write_votes:w ~initial:"d" in
  (engine, net, file)

let test_thresholds_enforced () =
  let engine = Engine.create ~seed:1 in
  let net = Network.create engine ~n_sites:3 () in
  Alcotest.check_raises "r+w too small"
    (Invalid_argument "Gifford.create: r + w must exceed the vote total") (fun () ->
      ignore (Gifford.create ~net ~weights:[| 1; 1; 1 |] ~read_votes:1 ~write_votes:2 ~initial:"d"));
  Alcotest.check_raises "2w too small"
    (Invalid_argument "Gifford.create: 2w must exceed the vote total") (fun () ->
      ignore (Gifford.create ~net ~weights:[| 1; 1; 1 |] ~read_votes:3 ~write_votes:1 ~initial:"d"))

let test_read_initial () =
  let engine, _, file = setup () in
  let result = ref None in
  Gifford.read file ~from:0 ~k:(fun r -> result := r);
  Engine.run engine;
  Alcotest.(check (option string)) "initial" (Some "d") !result

let test_write_then_read () =
  let engine, _, file = setup () in
  let read_back = ref None in
  Gifford.write file ~from:0 "v1" ~k:(fun ok ->
      check_bool "write succeeded" true ok;
      Gifford.read file ~from:2 ~k:(fun r -> read_back := r));
  Engine.run engine;
  Alcotest.(check (option string)) "read back" (Some "v1") !read_back

let test_versions_monotone () =
  let engine, _, file = setup () in
  Gifford.write file ~from:0 "v1" ~k:(fun _ ->
      Gifford.write file ~from:1 "v2" ~k:(fun _ -> ()));
  Engine.run engine;
  (* A majority holds version 2; reads return v2. *)
  let result = ref None in
  Gifford.read file ~from:2 ~k:(fun r -> result := r);
  Engine.run engine;
  Alcotest.(check (option string)) "latest wins" (Some "v2") !result

let test_minority_crash_tolerated () =
  let engine, net, file = setup () in
  Network.crash net 2;
  let wrote = ref false and read_back = ref None in
  Gifford.write file ~from:0 "v1" ~k:(fun ok ->
      wrote := ok;
      Gifford.read file ~from:1 ~k:(fun r -> read_back := r));
  Engine.run engine;
  check_bool "write with minority down" true !wrote;
  Alcotest.(check (option string)) "read with minority down" (Some "v1") !read_back

let test_majority_crash_blocks () =
  let engine, net, file = setup () in
  Network.crash net 1;
  Network.crash net 2;
  let wrote = ref true and read_result = ref (Some "?") in
  Gifford.write file ~from:0 "v1" ~k:(fun ok -> wrote := ok);
  Gifford.read file ~from:0 ~k:(fun r -> read_result := r);
  Engine.run engine;
  check_bool "write refused" false !wrote;
  Alcotest.(check (option string)) "read refused" None !read_result

let test_recovered_replica_catches_up_via_reads () =
  let engine, net, file = setup () in
  Network.crash net 2;
  Gifford.write file ~from:0 "v1" ~k:(fun _ -> ());
  Engine.run engine;
  Network.recover net 2;
  (* Site 2 is stale, but any read quorum (2 of 3 votes) intersects the
     write quorum, so the stale copy can never outvote the current one. *)
  let result = ref None in
  Gifford.read file ~from:2 ~k:(fun r -> result := r);
  Engine.run engine;
  Alcotest.(check (option string)) "stale copy outvoted" (Some "v1") !result

let test_weighted_heavy_site_alone () =
  (* Site 0 carries 3 of 5 votes: r = w = 3 makes it a one-site quorum. *)
  let engine, net, file = setup ~weights:[| 3; 1; 1 |] ~r:3 ~w:3 () in
  Network.crash net 1;
  Network.crash net 2;
  let wrote = ref false and read_back = ref None in
  Gifford.write file ~from:0 "solo" ~k:(fun ok ->
      wrote := ok;
      Gifford.read file ~from:0 ~k:(fun r -> read_back := r));
  Engine.run engine;
  check_bool "heavy site writes alone" true !wrote;
  Alcotest.(check (option string)) "and reads alone" (Some "solo") !read_back

let test_agrees_with_general_machinery () =
  (* The protocol's availability must match the analytical prediction from
     the same constraints expressed through the Weighted module. *)
  let weights = [| 1; 1; 1; 1; 1 |] in
  let w = Atomrep_quorum.Weighted.make ~weights [ ("Read", (2, 0)); ("Write", (4, 4)) ] in
  let analytical = Atomrep_quorum.Weighted.availability w ~p:0.8 "Write" in
  (* Simulate: 400 trials of independent crashes at p=0.8, one write each. *)
  let rng = Atomrep_stats.Rng.create 17 in
  let successes = ref 0 in
  let trials = 400 in
  for _ = 1 to trials do
    let engine = Engine.create ~seed:(Atomrep_stats.Rng.int rng 1_000_000) in
    let net = Network.create engine ~n_sites:5 () in
    let file =
      Gifford.create ~net ~weights ~read_votes:2 ~write_votes:4 ~initial:"d"
    in
    (* The client runs at site 0 and needs it up. *)
    let client_up = Atomrep_stats.Rng.bernoulli rng 0.8 in
    if client_up then begin
      for s = 1 to 4 do
        if not (Atomrep_stats.Rng.bernoulli rng 0.8) then Network.crash net s
      done;
      Gifford.write file ~from:0 "v" ~k:(fun ok -> if ok then incr successes);
      Engine.run engine
    end
  done;
  let measured = float_of_int !successes /. float_of_int trials in
  (* The analytical figure does not condition on the client site; writing
     from site 0 requires site 0 up, which the trial loop models. Both
     count 4-of-5 quorums including site 0: P = p * P(>=3 of 4 up). *)
  let expected =
    0.8 *. Atomrep_stats.Binomial.at_least ~n:4 ~p:0.8 3
  in
  check_bool
    (Printf.sprintf "measured %.3f near expected %.3f (analytical %.3f)" measured
       expected analytical)
    true
    (abs_float (measured -. expected) < 0.08)

let suites =
  [
    ( "gifford weighted voting",
      [
        Alcotest.test_case "thresholds enforced" `Quick test_thresholds_enforced;
        Alcotest.test_case "read initial" `Quick test_read_initial;
        Alcotest.test_case "write then read" `Quick test_write_then_read;
        Alcotest.test_case "versions monotone" `Quick test_versions_monotone;
        Alcotest.test_case "minority crash tolerated" `Quick test_minority_crash_tolerated;
        Alcotest.test_case "majority crash blocks" `Quick test_majority_crash_blocks;
        Alcotest.test_case "stale replica outvoted" `Quick test_recovered_replica_catches_up_via_reads;
        Alcotest.test_case "weighted heavy site" `Quick test_weighted_heavy_site_alone;
        Alcotest.test_case "protocol matches analysis" `Slow test_agrees_with_general_machinery;
      ] );
  ]
