(* Golden dependency-relation facts across the type zoo.

   Each assertion is a reasoned consequence of the type's serial
   specification, not a snapshot: the comment states why the pair must (or
   must not) be in the relation. Together they chart how data-type
   structure shapes the availability constraints — the paper's central
   point. *)

open Atomrep_spec
open Atomrep_core

let check_bool = Alcotest.(check bool)

let static spec = Static_dep.minimal spec ~max_len:4
let dynamic spec = Dynamic_dep.minimal spec ~max_len:4

let mem = Relation.mem

(* --- Semiqueue: weakening FIFO weakens the constraints --- *)

let test_semiqueue_weaker_constraints () =
  let s = static Semiqueue.spec and d = dynamic Semiqueue.spec in
  (* An extra Enq(x) can never invalidate a Deq();Ok(y): the weak spec lets
     any present item out, so y stays dequeuable. The FIFO queue needs this
     pair; the semiqueue does not. *)
  check_bool "no Enq >= Deq;Ok under static" false
    (mem (Semiqueue.enq_inv "x", Semiqueue.deq_ok "y") s);
  (* Enqueues produce the same multiset in either order: they commute. *)
  check_bool "no Enq >= Enq under dynamic" false
    (mem (Semiqueue.enq_inv "x", Semiqueue.enq "y") d);
  (* Deq must still see prior Enqs (to return an item at all) and prior
     Deqs (an item can come out once). *)
  check_bool "Deq >= Enq" true (mem (Semiqueue.deq_inv, Semiqueue.enq "x") s);
  check_bool "Deq >= Deq;Ok" true (mem (Semiqueue.deq_inv, Semiqueue.deq_ok "x") s);
  (* Enq must see Deq;Empty events: inserting the Enq earlier would have
     made the Empty answer wrong. *)
  check_bool "Enq >= Deq;Empty" true (mem (Semiqueue.enq_inv "x", Semiqueue.deq_empty) s);
  (* Here the static and dynamic relations coincide — the weak spec erases
     the order-sensitivity that separates them on the FIFO queue. *)
  check_bool "static = dynamic for semiqueue" true (Relation.equal s d)

(* --- Stack: LIFO mirrors FIFO, with the same static/dynamic split --- *)

let test_stack_relations () =
  let s = static Stack_type.spec and d = dynamic Stack_type.spec in
  (* A Push(x) inserted before a Pop();Ok(y) steals the top: needed in
     static. *)
  check_bool "Push >= Pop;Ok(other)" true
    (mem (Stack_type.push_inv "x", Stack_type.pop_ok "y") s);
  (* Two Pushes commute for no observer? No: Pop order distinguishes them —
     dynamic needs Push-Push, static does not (like the queue's Enq-Enq,
     Theorem 11's shape). *)
  check_bool "static lacks Push-Push" false
    (mem (Stack_type.push_inv "x", Stack_type.push "y") s);
  check_bool "dynamic has Push-Push" true
    (mem (Stack_type.push_inv "x", Stack_type.push "y") d);
  check_bool "Pop >= Push" true (mem (Stack_type.pop_inv, Stack_type.push "x") s)

(* --- Append-only log: appends are observationally independent --- *)

let test_log_appends_commute () =
  let s = static Append_log.spec and d = dynamic Append_log.spec in
  (* Size is the only observer and cannot distinguish append order, so
     appends commute *observationally* even though the states differ
     structurally — the depth-bounded bisimulation in Serial_spec makes
     this visible. *)
  check_bool "no Append-Append under dynamic" false
    (mem (Append_log.append_inv "x", Append_log.append "y") d);
  check_bool "no Append-Append under static" false
    (mem (Append_log.append_inv "x", Append_log.append "y") s);
  (* But both directions of Append/Size interference are real. *)
  check_bool "Size >= Append" true (mem (Append_log.size_inv, Append_log.append "x") s);
  check_bool "Append >= Size;Ok" true
    (mem (Append_log.append_inv "x", Append_log.size 1) s)

(* --- Bank account: Overdraft couples deposits at a distance --- *)

let test_bank_deposit_coupling () =
  let s = static Bank_account.spec and d = dynamic Bank_account.spec in
  (* Statically, an inserted Deposit(1) can invalidate a later
     Withdraw(2);Overdraft (the balance now covers it) — so a *deposit*
     must see prior deposits' effects through the Overdraft channel:
     Deposit >= Deposit;Ok appears. *)
  check_bool "static Deposit >= Deposit;Ok" true
    (mem (Bank_account.deposit_inv 1, Bank_account.deposit 1) s);
  (* Deposits commute (addition is commutative): dynamic drops the pair. *)
  check_bool "dynamic lacks Deposit-Deposit" false
    (mem (Bank_account.deposit_inv 1, Bank_account.deposit 1) d);
  (* Withdrawals do not commute with each other (either order can exhaust
     the balance first). *)
  check_bool "dynamic Withdraw-Withdraw" true
    (mem (Bank_account.withdraw_inv 1, Bank_account.withdraw_ok 1) d);
  check_bool "Deposit >= Overdraft" true
    (mem (Bank_account.deposit_inv 1, Bank_account.withdraw_overdraft 2) s)

(* --- Directory: per-key isolation; Update order only matters dynamically --- *)

let test_directory_updates () =
  let spec = Directory.spec in
  let s = static spec and d = dynamic spec in
  (* Two updates of the same key: last-writer-wins — statically the Begin
     order fixes the winner and no update invalidates another (Lookup
     carries the dependency instead), but dynamically they conflict. *)
  check_bool "static lacks Update-Update" false
    (mem (Directory.update_inv "k" "x", Directory.update_ok "k" "y") s);
  check_bool "dynamic has Update-Update" true
    (mem (Directory.update_inv "k" "x", Directory.update_ok "k" "y") d);
  check_bool "Lookup >= Update" true
    (mem (Directory.lookup_inv "k", Directory.update_ok "k" "x") s);
  check_bool "Insert >= Delete;NotFound" true
    (mem (Directory.insert_inv "k" "x", Directory.delete_missing "k") s)

(* --- Bounded buffer: capacity erases the queue's static/dynamic gap --- *)

let test_bounded_buffer_couples_everything () =
  let s = static Bounded_buffer.spec and d = dynamic Bounded_buffer.spec in
  (* Capacity couples enqueuers both ways: an extra Enq can turn a later
     Enq;Ok into Full (static), and Enq/Deq;Ok no longer commute (the Deq
     makes room). Both pairs are absent for the unbounded queue. *)
  check_bool "static Enq >= Enq;Ok" true
    (mem (Bounded_buffer.enq_inv "x", Bounded_buffer.enq "y") s);
  check_bool "static Enq >= Deq;Ok" true
    (mem (Bounded_buffer.enq_inv "x", Bounded_buffer.deq_ok "y") s);
  check_bool "static Deq >= Enq;Full" true
    (mem (Bounded_buffer.deq_inv, Bounded_buffer.enq_full "x") s);
  (* With every pair coupled, the two relations coincide: boundedness costs
     the queue its type-specific concurrency advantage. *)
  check_bool "static = dynamic for bounded buffer" true (Relation.equal s d)

(* --- Cross-type: quorum-constraint consequences --- *)

let test_constraint_counts_reflect_structure () =
  let open Atomrep_quorum in
  let count spec rel =
    ignore spec;
    List.length (Op_constraint.of_relation rel)
  in
  (* The semiqueue needs fewer op-level constraints than the queue... in
     fact their projections coincide (both couple Enq/Deq and Deq/Deq);
     the real gap shows at bounded buffer, which adds Enq/Enq. *)
  let queue = count Queue_type.spec (static Queue_type.spec) in
  let bounded = count Bounded_buffer.spec (static Bounded_buffer.spec) in
  check_bool "bounded buffer more constrained than queue" true (bounded > queue);
  (* And the register (2 ops) has fewer constraints than the directory
     (4 ops on a shared key). *)
  let register = count Register.spec (static Register.spec) in
  let directory = count Directory.spec (static Directory.spec) in
  check_bool "directory more constrained than register" true (directory > register)

let test_valid_assignment_ordering () =
  let open Atomrep_quorum in
  (* More constraints -> fewer valid assignments: bounded buffer vs queue
     on the same operations and sites. *)
  let ops = [ "Enq"; "Deq" ] in
  let count spec =
    Assignment.count ~n_sites:3 ~ops
      (Op_constraint.of_relation (static spec))
  in
  check_bool "bounded buffer admits fewer assignments" true
    (count Bounded_buffer.spec < count Queue_type.spec)

let suites =
  [
    ( "golden relations",
      [
        Alcotest.test_case "semiqueue weaker than queue" `Quick test_semiqueue_weaker_constraints;
        Alcotest.test_case "stack mirrors queue" `Quick test_stack_relations;
        Alcotest.test_case "log appends commute" `Quick test_log_appends_commute;
        Alcotest.test_case "bank overdraft coupling" `Quick test_bank_deposit_coupling;
        Alcotest.test_case "directory updates" `Quick test_directory_updates;
        Alcotest.test_case "bounded buffer coupling" `Quick test_bounded_buffer_couples_everything;
        Alcotest.test_case "constraint counts" `Quick test_constraint_counts_reflect_structure;
        Alcotest.test_case "assignment ordering" `Quick test_valid_assignment_ordering;
      ] );
  ]
