open Atomrep_history
open Atomrep_spec

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let enq = Queue_type.enq
let deq_ok = Queue_type.deq_ok

let sample =
  (* The paper's §3.1 behavioral history for a Queue. *)
  Behavioral.of_script
    [
      ("A", `Begin);
      ("A", `Exec (enq "x"));
      ("B", `Begin);
      ("B", `Exec (enq "y"));
      ("A", `Commit);
      ("B", `Exec (deq_ok "x"));
      ("B", `Commit);
    ]

let test_well_formed_sample () = check_bool "sample ok" true (Behavioral.well_formed sample)

let test_well_formed_rejects_exec_before_begin () =
  let h = Behavioral.of_script [ ("A", `Exec (enq "x")); ("A", `Begin) ] in
  check_bool "exec before begin" false (Behavioral.well_formed h)

let test_well_formed_rejects_double_begin () =
  let h = Behavioral.of_script [ ("A", `Begin); ("A", `Begin) ] in
  check_bool "double begin" false (Behavioral.well_formed h)

let test_well_formed_rejects_exec_after_commit () =
  let h =
    Behavioral.of_script [ ("A", `Begin); ("A", `Commit); ("A", `Exec (enq "x")) ]
  in
  check_bool "exec after commit" false (Behavioral.well_formed h)

let test_well_formed_rejects_commit_and_abort () =
  let h = Behavioral.of_script [ ("A", `Begin); ("A", `Commit); ("A", `Abort) ] in
  check_bool "commit then abort" false (Behavioral.well_formed h)

let test_committed_order () =
  Alcotest.(check (list string))
    "commit order" [ "A"; "B" ]
    (List.map Action.to_string (Behavioral.committed sample))

let test_active () =
  let h = Behavioral.of_script [ ("A", `Begin); ("B", `Begin); ("A", `Commit) ] in
  Alcotest.(check (list string))
    "active" [ "B" ]
    (List.map Action.to_string (Behavioral.active h))

let test_events_of () =
  check_int "B executed 2 events" 2
    (List.length (Behavioral.events_of sample (Action.of_string "B")))

let test_serialize_order () =
  let serial =
    Behavioral.serialize sample [ Action.of_string "A"; Action.of_string "B" ]
  in
  Alcotest.(check (list string))
    "A then B"
    [ "Enq(x);Ok()"; "Enq(y);Ok()"; "Deq();Ok(x)" ]
    (List.map Event.to_string serial)

let test_serialize_excludes_unlisted () =
  let serial = Behavioral.serialize sample [ Action.of_string "B" ] in
  check_int "only B's events" 2 (List.length serial)

let test_precedes () =
  (* A commits before B's Deq, so A precedes B. *)
  let pairs = Behavioral.precedes_pairs sample in
  check_bool "A precedes B" true
    (List.exists
       (fun (a, b) -> Action.to_string a = "A" && Action.to_string b = "B")
       pairs);
  check_bool "B does not precede A" false
    (List.exists
       (fun (a, b) -> Action.to_string a = "B" && Action.to_string b = "A")
       pairs)

let test_precedes_empty_when_concurrent () =
  let h =
    Behavioral.of_script
      [
        ("A", `Begin);
        ("B", `Begin);
        ("A", `Exec (enq "x"));
        ("B", `Exec (enq "y"));
        ("A", `Commit);
        ("B", `Commit);
      ]
  in
  check_int "no precedes" 0 (List.length (Behavioral.precedes_pairs h))

let test_linear_extensions_total () =
  let a = Action.of_string "A" and b = Action.of_string "B" and c = Action.of_string "C" in
  let exts = Behavioral.linear_extensions [ (a, b); (b, c) ] [ a; b; c ] in
  check_int "chain has one extension" 1 (List.length exts)

let test_linear_extensions_free () =
  let a = Action.of_string "A" and b = Action.of_string "B" and c = Action.of_string "C" in
  let exts = Behavioral.linear_extensions [] [ a; b; c ] in
  check_int "3! extensions" 6 (List.length exts)

let test_linear_extensions_partial () =
  let a = Action.of_string "A" and b = Action.of_string "B" and c = Action.of_string "C" in
  let exts = Behavioral.linear_extensions [ (a, c) ] [ a; b; c ] in
  (* a before c: 3 of the 6 permutations. *)
  check_int "constrained extensions" 3 (List.length exts)

let test_subsets_count () =
  check_int "2^3 subsets" 8 (List.length (Behavioral.subsets [ 1; 2; 3 ]))

let test_permutations_count () =
  check_int "4! permutations" 24 (List.length (Behavioral.permutations [ 1; 2; 3; 4 ]))

let test_strip_aborted () =
  let h =
    Behavioral.of_script
      [
        ("A", `Begin);
        ("A", `Exec (enq "x"));
        ("B", `Begin);
        ("B", `Exec (enq "y"));
        ("B", `Abort);
        ("A", `Commit);
      ]
  in
  let stripped = Behavioral.strip_aborted h in
  check_int "B fully removed" 3 (List.length stripped);
  check_bool "no B events" true
    (List.for_all
       (fun (_, a) -> Action.to_string a <> "B")
       (Behavioral.all_events stripped))

let test_live_events_excludes_aborted () =
  let h =
    Behavioral.of_script
      [ ("A", `Begin); ("A", `Exec (enq "x")); ("A", `Abort) ]
  in
  check_int "live excludes aborted" 0 (List.length (Behavioral.live_events h));
  check_int "all includes aborted" 1 (List.length (Behavioral.all_events h))

let test_begin_order_excludes_aborted () =
  let h =
    Behavioral.of_script
      [ ("A", `Begin); ("B", `Begin); ("A", `Abort) ]
  in
  Alcotest.(check (list string))
    "begin order" [ "B" ]
    (List.map Action.to_string (Behavioral.begin_order h))

let suites =
  [
    ( "behavioral history",
      [
        Alcotest.test_case "paper sample is well-formed" `Quick test_well_formed_sample;
        Alcotest.test_case "rejects exec before begin" `Quick test_well_formed_rejects_exec_before_begin;
        Alcotest.test_case "rejects double begin" `Quick test_well_formed_rejects_double_begin;
        Alcotest.test_case "rejects exec after commit" `Quick test_well_formed_rejects_exec_after_commit;
        Alcotest.test_case "rejects commit and abort" `Quick test_well_formed_rejects_commit_and_abort;
        Alcotest.test_case "commit order" `Quick test_committed_order;
        Alcotest.test_case "active actions" `Quick test_active;
        Alcotest.test_case "per-action events" `Quick test_events_of;
        Alcotest.test_case "serialization order" `Quick test_serialize_order;
        Alcotest.test_case "serialization excludes unlisted" `Quick test_serialize_excludes_unlisted;
        Alcotest.test_case "precedes order" `Quick test_precedes;
        Alcotest.test_case "precedes empty for concurrent" `Quick test_precedes_empty_when_concurrent;
        Alcotest.test_case "linear extensions of a chain" `Quick test_linear_extensions_total;
        Alcotest.test_case "linear extensions unconstrained" `Quick test_linear_extensions_free;
        Alcotest.test_case "linear extensions partial" `Quick test_linear_extensions_partial;
        Alcotest.test_case "subsets count" `Quick test_subsets_count;
        Alcotest.test_case "permutations count" `Quick test_permutations_count;
        Alcotest.test_case "strip aborted" `Quick test_strip_aborted;
        Alcotest.test_case "live events" `Quick test_live_events_excludes_aborted;
        Alcotest.test_case "begin order excludes aborted" `Quick test_begin_order_excludes_aborted;
      ] );
  ]
