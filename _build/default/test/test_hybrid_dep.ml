open Atomrep_spec
open Atomrep_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Checkers are expensive to build; construct one per type lazily and share
   across test cases. *)
let prom_checker =
  lazy (Hybrid_dep.make_checker Prom.spec ~max_events:4 ~max_actions:3)

let db_checker =
  lazy (Hybrid_dep.make_checker Double_buffer.spec ~max_events:4 ~max_actions:3)

let flagset_checker =
  lazy
    (Hybrid_dep.make_checker Flag_set.spec ~universe:Paper.flagset_core_universe
       ~max_events:5 ~max_actions:3)

let register_checker =
  lazy (Hybrid_dep.make_checker Register.spec ~max_events:4 ~max_actions:3)

(* --- configuration-level helpers --- *)

let test_hybrid_ok_accepts_commit_order () =
  let config =
    {
      Hybrid_dep.entries =
        [ (Queue_type.enq "x", 0); (Queue_type.enq "y", 1); (Queue_type.deq_ok "x", 1) ];
      commit_order = [ 0; 1 ];
      nactions = 2;
    }
  in
  check_bool "accepted" true (Hybrid_dep.hybrid_ok Queue_type.spec config)

let test_hybrid_ok_rejects_wrong_order () =
  let config =
    {
      Hybrid_dep.entries = [ (Queue_type.enq "x", 0); (Queue_type.deq_ok "y", 1) ];
      commit_order = [ 0; 1 ];
      nactions = 2;
    }
  in
  check_bool "rejected" false (Hybrid_dep.hybrid_ok Queue_type.spec config)

let test_hybrid_ok_active_permutations () =
  (* Two active actions with non-commuting events: both commit orders must
     be legal — Enq(x) and Deq;Ok(x) fail when Deq commits first. *)
  let config =
    {
      Hybrid_dep.entries = [ (Queue_type.enq "x", 0); (Queue_type.deq_ok "x", 1) ];
      commit_order = [];
      nactions = 2;
    }
  in
  check_bool "rejected while both active" false (Hybrid_dep.hybrid_ok Queue_type.spec config);
  let committed = { config with Hybrid_dep.commit_order = [ 0 ] } in
  check_bool "accepted once enqueuer committed" true
    (Hybrid_dep.hybrid_ok Queue_type.spec committed)

let test_steps_roundtrip () =
  let config =
    {
      Hybrid_dep.entries =
        [ (Prom.write "x", 0); (Prom.seal, 1); (Prom.read_ok "x", 2) ];
      commit_order = [ 0; 1 ];
      nactions = 3;
    }
  in
  let steps = Hybrid_dep.steps_of config in
  let config' = Hybrid_dep.config_of_steps steps in
  check_bool "roundtrip entries" true (config.Hybrid_dep.entries = config'.Hybrid_dep.entries);
  check_bool "roundtrip commits" true
    (config.Hybrid_dep.commit_order = config'.Hybrid_dep.commit_order)

let test_steps_earliest_placement () =
  (* Action 0's only event is first; its commit must immediately follow. *)
  let config =
    {
      Hybrid_dep.entries = [ (Prom.write "x", 0); (Prom.seal, 1) ];
      commit_order = [ 0 ];
      nactions = 2;
    }
  in
  match Hybrid_dep.steps_of config with
  | [ Hybrid_dep.Exec (_, 0); Hybrid_dep.Commit 0; Hybrid_dep.Exec (_, 1) ] -> ()
  | other ->
    Alcotest.failf "unexpected placement (%d steps)" (List.length other)

let test_steps_hybrid_prefixwise () =
  (* The Theorem 5 shape: commits interleaved make the history a member
     even though the commits-last variant is not. *)
  let interleaved =
    [
      Hybrid_dep.Exec (Prom.write "x", 0);
      Hybrid_dep.Commit 0;
      Hybrid_dep.Exec (Prom.seal, 1);
      Hybrid_dep.Commit 1;
      Hybrid_dep.Exec (Prom.read_ok "x", 2);
    ]
  in
  check_bool "interleaved member" true (Hybrid_dep.steps_hybrid Prom.spec interleaved);
  let commits_last =
    [
      Hybrid_dep.Exec (Prom.write "x", 0);
      Hybrid_dep.Exec (Prom.seal, 1);
      Hybrid_dep.Exec (Prom.read_ok "x", 2);
      Hybrid_dep.Commit 0;
      Hybrid_dep.Commit 1;
    ]
  in
  check_bool "commits-last not member" false (Hybrid_dep.steps_hybrid Prom.spec commits_last)

let test_project () =
  let steps =
    [
      Hybrid_dep.Exec (Prom.write "x", 0);
      Hybrid_dep.Commit 0;
      Hybrid_dep.Exec (Prom.seal, 1);
      Hybrid_dep.Exec (Prom.read_ok "x", 2);
    ]
  in
  let projected = Hybrid_dep.project steps ~keep:(fun i -> i <> 0) in
  (* Dropping action 0's only exec also drops its commit. *)
  check_int "two steps left" 2 (List.length projected)

(* --- verification against the paper --- *)

let test_prom_paper_relation_verifies () =
  check_bool "verified" true
    (Hybrid_dep.is_hybrid_dependency (Lazy.force prom_checker) Paper.prom_hybrid_relation)

let test_prom_static_relation_verifies () =
  (* Theorem 4: any static dependency relation is a hybrid one. *)
  let static = Static_dep.minimal Prom.spec ~max_len:4 in
  check_bool "verified" true
    (Hybrid_dep.is_hybrid_dependency (Lazy.force prom_checker) static)

let test_prom_undersized_rejected () =
  let missing_read_seal =
    Relation.remove (Prom.read_inv, Prom.seal) Paper.prom_hybrid_relation
  in
  check_bool "rejected" false
    (Hybrid_dep.is_hybrid_dependency (Lazy.force prom_checker) missing_read_seal);
  let missing_seal_write =
    Relation.remove (Prom.seal_inv, Prom.write "x") Paper.prom_hybrid_relation
  in
  check_bool "rejected" false
    (Hybrid_dep.is_hybrid_dependency (Lazy.force prom_checker) missing_seal_write)

let test_prom_empty_rejected () =
  check_bool "empty relation rejected" false
    (Hybrid_dep.is_hybrid_dependency (Lazy.force prom_checker) Relation.empty)

let test_prom_counterexample_is_concrete () =
  match Hybrid_dep.verify (Lazy.force prom_checker) Relation.empty with
  | Ok () -> Alcotest.fail "expected counterexample"
  | Error ce ->
    (* The counterexample must be checkable: H is a member, H+e is not. *)
    check_bool "H in Hybrid(T)" true (Hybrid_dep.steps_hybrid Prom.spec ce.Hybrid_dep.history);
    let extended =
      ce.Hybrid_dep.history
      @ [ Hybrid_dep.Exec (ce.Hybrid_dep.appended, ce.Hybrid_dep.appended_action) ]
    in
    check_bool "H+e not in Hybrid(T)" false (Hybrid_dep.steps_hybrid Prom.spec extended)

let test_prom_unique_minimal () =
  let static = Static_dep.minimal Prom.spec ~max_len:4 in
  let minimal = Hybrid_dep.minimal_hybrids (Lazy.force prom_checker) ~base:static in
  check_int "exactly one minimal" 1 (List.length minimal);
  check_bool "it is the paper's relation" true
    (Relation.equal (List.hd minimal) Paper.prom_hybrid_relation)

let test_doublebuffer_dynamic_not_hybrid () =
  (* Theorem 12. *)
  check_bool "rejected" false
    (Hybrid_dep.is_hybrid_dependency (Lazy.force db_checker)
       Paper.doublebuffer_dynamic_relation)

let test_doublebuffer_static_verifies () =
  let static = Static_dep.minimal Double_buffer.spec ~max_len:4 in
  check_bool "verified" true
    (Hybrid_dep.is_hybrid_dependency (Lazy.force db_checker) static)

let test_flagset_base_insufficient () =
  check_bool "base rejected" false
    (Hybrid_dep.is_hybrid_dependency (Lazy.force flagset_checker) Paper.flagset_base_relation)

let test_flagset_alternatives_verify () =
  let checker = Lazy.force flagset_checker in
  check_bool "base + Shift(3)>=Shift(1)" true
    (Hybrid_dep.is_hybrid_dependency checker Paper.flagset_alternative_31);
  check_bool "base + Shift(2)>=Shift(1)" true
    (Hybrid_dep.is_hybrid_dependency checker Paper.flagset_alternative_21)

let test_flagset_alternatives_minimal () =
  (* Removing the distinguishing pair from either alternative breaks it
     (that is the base-relation case); minimality over the added pair. *)
  let checker = Lazy.force flagset_checker in
  check_bool "31 minus added pair fails" false
    (Hybrid_dep.is_hybrid_dependency checker
       (Relation.remove (Flag_set.shift_inv 3, Flag_set.shift_ok 1)
          Paper.flagset_alternative_31));
  check_bool "21 minus added pair fails" false
    (Hybrid_dep.is_hybrid_dependency checker
       (Relation.remove (Flag_set.shift_inv 2, Flag_set.shift_ok 1)
          Paper.flagset_alternative_21))

let test_flagset_two_distinct_minimals () =
  check_bool "alternatives differ" false
    (Relation.equal Paper.flagset_alternative_31 Paper.flagset_alternative_21)

let test_monotonicity () =
  (* Superset of a verified relation verifies (validity is monotone). *)
  let checker = Lazy.force prom_checker in
  let bigger =
    Relation.add (Prom.seal_inv, Prom.seal) Paper.prom_hybrid_relation
  in
  check_bool "superset verified" true (Hybrid_dep.is_hybrid_dependency checker bigger)

let test_register_minimal_hybrid () =
  let checker = Lazy.force register_checker in
  let static = Static_dep.minimal Register.spec ~max_len:4 in
  let minimal = Hybrid_dep.minimal_hybrids checker ~base:static in
  check_bool "at least one minimal" true (List.length minimal >= 1);
  (* Every minimal hybrid relation is contained in the static one
     (corollary of Theorem 4: the static relation encompasses the union of
     minimal hybrids). *)
  List.iter
    (fun r -> check_bool "within static" true (Relation.subset r static))
    minimal

let test_checker_counts () =
  let checker = Lazy.force prom_checker in
  check_bool "nonzero configs" true (Hybrid_dep.config_count checker > 0);
  check_bool "nonzero templates" true (Hybrid_dep.template_count checker > 0)

let suites =
  [
    ( "hybrid dependency (Definition 2)",
      [
        Alcotest.test_case "hybrid_ok accepts commit order" `Quick test_hybrid_ok_accepts_commit_order;
        Alcotest.test_case "hybrid_ok rejects wrong order" `Quick test_hybrid_ok_rejects_wrong_order;
        Alcotest.test_case "hybrid_ok active permutations" `Quick test_hybrid_ok_active_permutations;
        Alcotest.test_case "steps roundtrip" `Quick test_steps_roundtrip;
        Alcotest.test_case "earliest commit placement" `Quick test_steps_earliest_placement;
        Alcotest.test_case "membership is prefix-wise" `Quick test_steps_hybrid_prefixwise;
        Alcotest.test_case "projection" `Quick test_project;
        Alcotest.test_case "PROM paper relation verifies" `Quick test_prom_paper_relation_verifies;
        Alcotest.test_case "PROM static relation verifies (Thm 4)" `Quick test_prom_static_relation_verifies;
        Alcotest.test_case "PROM undersized rejected" `Quick test_prom_undersized_rejected;
        Alcotest.test_case "PROM empty rejected" `Quick test_prom_empty_rejected;
        Alcotest.test_case "counterexamples are concrete" `Quick test_prom_counterexample_is_concrete;
        Alcotest.test_case "PROM unique minimal hybrid" `Quick test_prom_unique_minimal;
        Alcotest.test_case "DoubleBuffer dynamic not hybrid (Thm 12)" `Quick test_doublebuffer_dynamic_not_hybrid;
        Alcotest.test_case "DoubleBuffer static verifies" `Quick test_doublebuffer_static_verifies;
        Alcotest.test_case "FlagSet base insufficient" `Quick test_flagset_base_insufficient;
        Alcotest.test_case "FlagSet alternatives verify" `Quick test_flagset_alternatives_verify;
        Alcotest.test_case "FlagSet alternatives minimal" `Quick test_flagset_alternatives_minimal;
        Alcotest.test_case "FlagSet minimals distinct" `Quick test_flagset_two_distinct_minimals;
        Alcotest.test_case "validity is monotone" `Quick test_monotonicity;
        Alcotest.test_case "register minimal hybrids" `Quick test_register_minimal_hybrid;
        Alcotest.test_case "checker statistics" `Quick test_checker_counts;
      ] );
  ]
