(* End-to-end reproduction of each theorem's statement, using the paper's
   own witness histories. *)

open Atomrep_history
open Atomrep_spec
open Atomrep_atomicity
open Atomrep_core

let check_bool = Alcotest.(check bool)

(* Theorem 5's construction: H, G = H minus the last event, and the
   appended event Write(y);Ok() by B. H, G and G+e are static atomic, but
   H+e is not — so the hybrid relation (which does not force Write to see
   Reads) is not a static dependency relation. *)

let thm5_h = Paper.theorem5_history
let thm5_g =
  (* all events except D's read *)
  List.filter
    (function
      | Behavioral.Exec (e, _) -> not (Event.equal e (Prom.read_ok "x"))
      | Behavioral.Begin _ | Behavioral.Commit _ | Behavioral.Abort _ -> true)
    thm5_h

let append_exec h e name = h @ [ Behavioral.Exec (e, Action.of_string name) ]

let test_thm5_h_static () =
  check_bool "H static" true (Atomicity.is_static_atomic Prom.spec thm5_h)

let test_thm5_g_plus_e_static () =
  check_bool "G+Write(y) static" true
    (Atomicity.is_static_atomic Prom.spec (append_exec thm5_g Paper.theorem5_appended "B"))

let test_thm5_h_plus_e_not_static () =
  check_bool "H+Write(y) not static" false
    (Atomicity.is_static_atomic Prom.spec (append_exec thm5_h Paper.theorem5_appended "B"))

let test_thm5_hybrid_premise_fails () =
  (* Why hybrid atomicity does not need Write ≽ Read: in the hybrid world
     even the subhistory G rejects the Write(y);Ok — a hybrid front-end
     whose view is G would answer Disabled (the Seal is visible), so the
     dependency premise of Definition 2 never triggers. Static atomicity
     accepts G+e (B's Begin precedes the Seal's), which is what forces the
     extra constraint. *)
  check_bool "G+Write(y) not hybrid" false
    (Atomicity.is_hybrid_atomic Prom.spec (append_exec thm5_g Paper.theorem5_appended "B"));
  check_bool "H+Write(y) not hybrid" false
    (Atomicity.is_hybrid_atomic Prom.spec (append_exec thm5_h Paper.theorem5_appended "B"))

(* Theorem 12's history: appending Consume();Ok(x) by D is not hybrid
   atomic (B, C, D can commit in an order that transfers y before the
   consume). *)

let test_thm12_base_hybrid () =
  check_bool "H hybrid" true (Atomicity.is_hybrid_atomic Double_buffer.spec Paper.theorem12_history)

let test_thm12_extension_not_hybrid () =
  (* D must be begun for well-formedness. *)
  let extended =
    Behavioral.Begin (Action.of_string "D")
    :: append_exec Paper.theorem12_history Paper.theorem12_appended "D"
  in
  check_bool "H+Consume not hybrid" false
    (Atomicity.is_hybrid_atomic Double_buffer.spec extended)

let test_thm12_g_plus_e_hybrid () =
  (* G drops B's Produce(y); then the Consume is safe. *)
  let g =
    List.filter
      (function
        | Behavioral.Exec (e, _) -> not (Event.equal e (Double_buffer.produce "y"))
        | Behavioral.Begin _ | Behavioral.Commit _ | Behavioral.Abort _ -> true)
      Paper.theorem12_history
  in
  let extended =
    (Behavioral.Begin (Action.of_string "D") :: g)
    @ [ Behavioral.Exec (Paper.theorem12_appended, Action.of_string "D") ]
  in
  check_bool "G+Consume hybrid" true (Atomicity.is_hybrid_atomic Double_buffer.spec extended)

(* Theorem 4 at the relation level, for several types: the minimal static
   relation verifies as a hybrid dependency relation. *)
let test_thm4_for_types () =
  List.iter
    (fun (spec, max_events) ->
      let static = Static_dep.minimal spec ~max_len:max_events in
      let checker = Hybrid_dep.make_checker spec ~max_events:3 ~max_actions:2 in
      check_bool (spec.Serial_spec.name ^ " static verifies as hybrid") true
        (Hybrid_dep.is_hybrid_dependency checker static))
    [ (Queue_type.spec, 3); (Register.spec, 3); (Counter.spec, 3) ]

(* Figure 1-1, mechanized: containments between the properties on random
   histories. Strong dynamic ⊆ hybrid always; the other pairs are
   incomparable, witnessed by specific histories in test_atomicity. *)
let test_dynamic_implies_hybrid_random () =
  let rng = Atomrep_stats.Rng.create 2024 in
  let specs = [ Queue_type.spec; Prom.spec; Counter.spec; Register.spec ] in
  let tried = ref 0 in
  while !tried < 400 do
    incr tried;
    let spec = Atomrep_stats.Rng.pick_list rng specs in
    let h = Atomrep_workload.Histories.random rng spec ~max_actions:3 ~max_events:4 in
    if Atomicity.is_dynamic_atomic spec h then
      check_bool
        (Printf.sprintf "dynamic implies hybrid (%s)" spec.Serial_spec.name)
        true
        (Atomicity.is_hybrid_atomic spec h)
  done

(* The serial-execution control: always atomic under all three. *)
let test_serial_histories_all_atomic () =
  let rng = Atomrep_stats.Rng.create 7 in
  for _ = 1 to 100 do
    let h = Atomrep_workload.Histories.random_atomic rng Queue_type.spec ~max_actions:3 ~max_events:5 in
    List.iter
      (fun p ->
        check_bool (Atomicity.property_name p) true (Atomicity.satisfies Queue_type.spec p h))
      Atomicity.all_properties
  done

(* §4's PROM quorum example: hybrid admits (1, n, n->1) style assignments
   that static rejects. Checked through the constraint machinery. *)
let test_prom_quorum_example () =
  let open Atomrep_quorum in
  let n = 5 in
  let to_assignment quorums =
    Assignment.make ~n_sites:n
      (List.map (fun (op, (i, f)) -> (op, { Assignment.initial = i; final = f })) quorums)
  in
  let hybrid_constraints = Op_constraint.of_relation Paper.prom_hybrid_relation in
  let static_constraints =
    Op_constraint.of_relation (Static_dep.minimal Prom.spec ~max_len:4)
  in
  let hybrid_assignment = to_assignment (Paper.prom_hybrid_quorums ~n) in
  let static_assignment = to_assignment (Paper.prom_static_quorums ~n) in
  check_bool "paper hybrid quorums satisfy hybrid constraints" true
    (Assignment.satisfies hybrid_assignment hybrid_constraints);
  check_bool "paper hybrid quorums violate static constraints" false
    (Assignment.satisfies hybrid_assignment static_constraints);
  check_bool "paper static quorums satisfy static constraints" true
    (Assignment.satisfies static_assignment static_constraints)

let suites =
  [
    ( "paper theorems",
      [
        Alcotest.test_case "Thm5: H is static atomic" `Quick test_thm5_h_static;
        Alcotest.test_case "Thm5: G+e is static atomic" `Quick test_thm5_g_plus_e_static;
        Alcotest.test_case "Thm5: H+e is not static atomic" `Quick test_thm5_h_plus_e_not_static;
        Alcotest.test_case "Thm5: hybrid premise fails" `Quick test_thm5_hybrid_premise_fails;
        Alcotest.test_case "Thm12: base history hybrid" `Quick test_thm12_base_hybrid;
        Alcotest.test_case "Thm12: extension not hybrid" `Quick test_thm12_extension_not_hybrid;
        Alcotest.test_case "Thm12: subhistory extension hybrid" `Quick test_thm12_g_plus_e_hybrid;
        Alcotest.test_case "Thm4 across types" `Quick test_thm4_for_types;
        Alcotest.test_case "Fig 1-1: dynamic implies hybrid" `Quick test_dynamic_implies_hybrid_random;
        Alcotest.test_case "serial histories all atomic" `Quick test_serial_histories_all_atomic;
        Alcotest.test_case "PROM quorum example (§4)" `Quick test_prom_quorum_example;
      ] );
  ]
