open Atomrep_spec
open Atomrep_core
open Atomrep_quorum

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* --- Quorum bitsets --- *)

let test_quorum_basics () =
  let q = Quorum.of_sites [ 0; 2; 4 ] in
  check_int "cardinal" 3 (Quorum.cardinal q);
  check_bool "mem 2" true (Quorum.mem 2 q);
  check_bool "mem 1" false (Quorum.mem 1 q);
  Alcotest.(check (list int)) "sites" [ 0; 2; 4 ] (Quorum.sites q)

let test_quorum_intersection () =
  let a = Quorum.of_sites [ 0; 1 ] and b = Quorum.of_sites [ 1; 2 ] in
  let c = Quorum.of_sites [ 2; 3 ] in
  check_bool "a∩b" true (Quorum.intersects a b);
  check_bool "a∩c" false (Quorum.intersects a c);
  check_int "a∩b card" 1 (Quorum.cardinal (Quorum.inter a b));
  check_int "a∪b card" 3 (Quorum.cardinal (Quorum.union a b))

let test_all_of_size () =
  check_int "C(5,2)" 10 (List.length (Quorum.all_of_size ~n:5 2));
  check_int "C(4,4)" 1 (List.length (Quorum.all_of_size ~n:4 4));
  check_int "C(4,0)" 1 (List.length (Quorum.all_of_size ~n:4 0));
  check_int "C(4,5)" 0 (List.length (Quorum.all_of_size ~n:4 5))

let test_threshold_intersection_law () =
  (* Two threshold families of sizes k1, k2 over n sites pairwise intersect
     iff k1 + k2 > n — the law the assignment checker relies on. *)
  let n = 5 in
  List.iter
    (fun k1 ->
      List.iter
        (fun k2 ->
          let families_intersect =
            List.for_all
              (fun q1 ->
                List.for_all (fun q2 -> Quorum.intersects q1 q2) (Quorum.all_of_size ~n k2))
              (Quorum.all_of_size ~n k1)
          in
          check_bool
            (Printf.sprintf "k1=%d k2=%d" k1 k2)
            (k1 + k2 > n)
            families_intersect)
        [ 1; 2; 3; 4; 5 ])
    [ 1; 2; 3; 4; 5 ]

(* --- Op constraints --- *)

let test_constraints_from_relation () =
  let constraints = Op_constraint.of_relation Paper.prom_hybrid_relation in
  check_int "four op-level constraints" 4 (List.length constraints);
  check_bool "Seal needs Write finals" true
    (List.exists
       (fun (c : Op_constraint.t) -> c.dependent = "Seal" && c.supplier = "Write")
       constraints);
  check_bool "Seal needs Read finals (Disabled)" true
    (List.exists
       (fun (c : Op_constraint.t) ->
         c.dependent = "Seal" && c.supplier = "Read" && List.mem "Disabled" c.labels)
       constraints)

let test_read_write_constraints () =
  let ops = [ ("Read", `Read); ("Write", `Update) ] in
  let constraints = Op_constraint.read_write ~ops in
  (* every op vs every writer: 2 ops x 1 writer *)
  check_int "two constraints" 2 (List.length constraints)

(* --- Assignments --- *)

let prom_static_constraints =
  Op_constraint.of_relation (Static_dep.minimal Prom.spec ~max_len:4)

let prom_hybrid_constraints = Op_constraint.of_relation Paper.prom_hybrid_relation

let test_satisfies () =
  let n = 3 in
  let a =
    Assignment.make ~n_sites:n
      [
        ("Read", { Assignment.initial = 1; final = 1 });
        ("Seal", { Assignment.initial = 3; final = 3 });
        ("Write", { Assignment.initial = 1; final = 1 });
      ]
  in
  check_bool "hybrid ok" true (Assignment.satisfies a prom_hybrid_constraints);
  check_bool "static needs more" false (Assignment.satisfies a prom_static_constraints)

let test_enumerate_counts_monotone () =
  (* More constraints, fewer valid assignments (Figure 1-2's availability
     comparison, mechanized). *)
  let ops = [ "Read"; "Seal"; "Write" ] in
  let hybrid_count = Assignment.count ~n_sites:3 ~ops prom_hybrid_constraints in
  let static_count = Assignment.count ~n_sites:3 ~ops prom_static_constraints in
  check_bool "hybrid admits strictly more" true (hybrid_count > static_count);
  check_bool "both nonzero" true (static_count > 0)

let test_static_valid_implies_hybrid_valid () =
  (* Theorem 4's quorum corollary: every assignment valid for the static
     relation is valid for the hybrid relation. *)
  let ops = [ "Read"; "Seal"; "Write" ] in
  let static_assignments = Assignment.enumerate ~n_sites:3 ~ops prom_static_constraints in
  List.iter
    (fun a ->
      check_bool "static-valid is hybrid-valid" true
        (Assignment.satisfies a prom_hybrid_constraints))
    static_assignments

let test_enumerate_respects_constraints () =
  let ops = [ "Enq"; "Deq" ] in
  let constraints =
    Op_constraint.of_relation (Static_dep.minimal Queue_type.spec ~max_len:4)
  in
  let assignments = Assignment.enumerate ~n_sites:3 ~ops constraints in
  check_bool "nonempty" true (assignments <> []);
  List.iter
    (fun a -> check_bool "each satisfies" true (Assignment.satisfies a constraints))
    assignments

let test_availability_math () =
  let a =
    Assignment.make ~n_sites:3
      [
        ("Read", { Assignment.initial = 1; final = 1 });
        ("Write", { Assignment.initial = 3; final = 3 });
      ]
  in
  let p = 0.9 in
  (* Read: at least 1 of 3 up. Write: all 3 up. *)
  check_float "read availability" (1.0 -. (0.1 ** 3.0)) (Assignment.availability a ~p "Read");
  check_float "write availability" (0.9 ** 3.0) (Assignment.availability a ~p "Write");
  let mix = [ ("Read", 1.0); ("Write", 1.0) ] in
  check_float "workload availability"
    (((1.0 -. (0.1 ** 3.0)) +. (0.9 ** 3.0)) /. 2.0)
    (Assignment.workload_availability a ~p ~mix)

let test_availability_monotone_in_p () =
  let a =
    Assignment.make ~n_sites:5 [ ("Op", { Assignment.initial = 3; final = 3 }) ]
  in
  let avs = List.map (fun p -> Assignment.availability a ~p "Op") [ 0.1; 0.5; 0.9 ] in
  match avs with
  | [ low; mid; high ] ->
    check_bool "monotone" true (low <= mid && mid <= high)
  | _ -> assert false

let test_best_for_mix () =
  let ops = [ "Read"; "Seal"; "Write" ] in
  let assignments = Assignment.enumerate ~n_sites:3 ~ops prom_hybrid_constraints in
  match
    Assignment.best_for_mix ~p:0.9 ~mix:[ ("Read", 8.0); ("Write", 2.0); ("Seal", 0.1) ]
      assignments
  with
  | None -> Alcotest.fail "expected a best assignment"
  | Some best ->
    (* A read-heavy mix should keep Read cheap. *)
    let sizes = Assignment.sizes_of best "Read" in
    check_int "read initial small" 1 (max sizes.Assignment.initial sizes.Assignment.final)

let test_pareto_nonempty_and_sound () =
  let ops = [ "Enq"; "Deq" ] in
  let constraints =
    Op_constraint.of_relation (Static_dep.minimal Queue_type.spec ~max_len:4)
  in
  let assignments = Assignment.enumerate ~n_sites:3 ~ops constraints in
  let pareto = Assignment.pareto_optimal ~p:0.9 ~ops assignments in
  check_bool "nonempty" true (pareto <> []);
  check_bool "subset" true (List.length pareto <= List.length assignments)

(* --- Weighted voting --- *)

let test_weighted_matches_threshold_when_uniform () =
  let w =
    Weighted.make ~weights:[| 1; 1; 1 |] [ ("Read", (1, 1)); ("Write", (3, 3)) ]
  in
  check_float "read" (1.0 -. (0.1 ** 3.0)) (Weighted.availability w ~p:0.9 "Read");
  check_float "write" (0.9 ** 3.0) (Weighted.availability w ~p:0.9 "Write")

let test_weighted_heavy_site () =
  (* One site holds 3 of 5 votes: a 3-vote quorum is just that site. *)
  let w = Weighted.make ~weights:[| 3; 1; 1 |] [ ("Read", (3, 3)) ] in
  let live = Quorum.of_sites [ 0 ] in
  check_bool "heavy site alone suffices" true (Weighted.op_available w ~live "Read");
  let live' = Quorum.of_sites [ 1; 2 ] in
  check_bool "two light sites do not" false (Weighted.op_available w ~live:live' "Read")

let test_weighted_satisfies () =
  let constraints =
    [ { Op_constraint.dependent = "Read"; supplier = "Write"; labels = [ "Ok" ] } ]
  in
  let ok = Weighted.make ~weights:[| 1; 1; 1 |] [ ("Read", (2, 0)); ("Write", (0, 2)) ] in
  let bad = Weighted.make ~weights:[| 1; 1; 1 |] [ ("Read", (1, 0)); ("Write", (0, 2)) ] in
  check_bool "2+2>3" true (Weighted.satisfies ok constraints);
  check_bool "1+2=3" false (Weighted.satisfies bad constraints)

(* --- Binomial (used by availability) --- *)

let test_binomial () =
  let open Atomrep_stats in
  check_float "C(5,2)" 10.0 (Binomial.choose 5 2);
  check_float "pmf sums to 1" 1.0
    (List.fold_left (fun acc k -> acc +. Binomial.pmf ~n:6 ~p:0.3 k) 0.0
       [ 0; 1; 2; 3; 4; 5; 6 ]);
  check_float "at_least 0" 1.0 (Binomial.at_least ~n:4 ~p:0.5 0);
  check_float "at_least n" (0.5 ** 4.0) (Binomial.at_least ~n:4 ~p:0.5 4);
  check_float "complement" 1.0
    (Binomial.at_least ~n:7 ~p:0.4 3 +. Binomial.at_most ~n:7 ~p:0.4 2)

let suites =
  [
    ( "quorum",
      [
        Alcotest.test_case "bitset basics" `Quick test_quorum_basics;
        Alcotest.test_case "intersection" `Quick test_quorum_intersection;
        Alcotest.test_case "all_of_size" `Quick test_all_of_size;
        Alcotest.test_case "threshold intersection law" `Quick test_threshold_intersection_law;
        Alcotest.test_case "constraints from relation" `Quick test_constraints_from_relation;
        Alcotest.test_case "read/write constraints" `Quick test_read_write_constraints;
        Alcotest.test_case "satisfies" `Quick test_satisfies;
        Alcotest.test_case "hybrid admits more assignments" `Quick test_enumerate_counts_monotone;
        Alcotest.test_case "static-valid implies hybrid-valid" `Quick test_static_valid_implies_hybrid_valid;
        Alcotest.test_case "enumerate respects constraints" `Quick test_enumerate_respects_constraints;
        Alcotest.test_case "availability math" `Quick test_availability_math;
        Alcotest.test_case "availability monotone in p" `Quick test_availability_monotone_in_p;
        Alcotest.test_case "best for mix" `Quick test_best_for_mix;
        Alcotest.test_case "pareto frontier" `Quick test_pareto_nonempty_and_sound;
        Alcotest.test_case "weighted uniform = threshold" `Quick test_weighted_matches_threshold_when_uniform;
        Alcotest.test_case "weighted heavy site" `Quick test_weighted_heavy_site;
        Alcotest.test_case "weighted satisfies" `Quick test_weighted_satisfies;
        Alcotest.test_case "binomial" `Quick test_binomial;
      ] );
  ]
