open Atomrep_spec
open Atomrep_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let pair1 = (Queue_type.enq_inv "x", Queue_type.deq_ok "y")
let pair2 = (Queue_type.deq_inv, Queue_type.enq "x")
let pair3 = (Queue_type.deq_inv, Queue_type.deq_ok "x")

let test_set_operations () =
  let r = Relation.of_list [ pair1; pair2 ] in
  check_int "cardinal" 2 (Relation.cardinal r);
  check_bool "mem" true (Relation.mem pair1 r);
  check_bool "not mem" false (Relation.mem pair3 r);
  let r' = Relation.add pair3 r in
  check_int "added" 3 (Relation.cardinal r');
  let r'' = Relation.remove pair1 r' in
  check_bool "removed" false (Relation.mem pair1 r'');
  check_bool "subset" true (Relation.subset r r');
  check_bool "not subset" false (Relation.subset r' r);
  check_bool "union" true (Relation.equal r' (Relation.union r (Relation.of_list [ pair3 ])));
  check_int "inter" 2 (Relation.cardinal (Relation.inter r r'));
  check_int "diff" 1 (Relation.cardinal (Relation.diff r' r))

let test_add_idempotent () =
  let r = Relation.of_list [ pair1 ] in
  check_bool "idempotent" true (Relation.equal r (Relation.add pair1 r))

let test_dependencies_of () =
  let r = Relation.of_list [ pair2; pair3; pair1 ] in
  check_int "deq depends on two events" 2
    (List.length (Relation.dependencies_of r Queue_type.deq_inv))

let test_schematize_complete () =
  (* All distinct-item Enq ≽ Deq;Ok instances, plus same-item — together a
     complete schema over items {x,y}. *)
  let all_pairs =
    List.concat_map
      (fun i -> List.map (fun j -> (Queue_type.enq_inv i, Queue_type.deq_ok j)) [ "x"; "y" ])
      [ "x"; "y" ]
  in
  let r = Relation.of_list all_pairs in
  let universe = Serial_spec.event_universe Queue_type.spec ~max_len:3 in
  let invocations = Queue_type.spec.Serial_spec.invocations in
  let schemas, leftover = Relation.schematize ~universe ~invocations r in
  check_int "one complete schema" 1 (List.length schemas);
  check_int "no leftovers" 0 (List.length leftover)

let test_schematize_partial () =
  (* Distinct items only: the schema is incomplete, pairs print concretely. *)
  let r =
    Relation.of_list
      [
        (Queue_type.enq_inv "x", Queue_type.deq_ok "y");
        (Queue_type.enq_inv "y", Queue_type.deq_ok "x");
      ]
  in
  let universe = Serial_spec.event_universe Queue_type.spec ~max_len:3 in
  let invocations = Queue_type.spec.Serial_spec.invocations in
  let schemas, leftover = Relation.schematize ~universe ~invocations r in
  check_int "no complete schema" 0 (List.length schemas);
  check_int "two concrete pairs" 2 (List.length leftover)

let test_schematize_int_args_concrete () =
  (* Integer arguments are never folded: Shift(3) ≽ Shift(2);Ok() is its own
     schema. *)
  let r = Relation.of_list [ (Flag_set.shift_inv 3, Flag_set.shift_ok 2) ] in
  let universe = Serial_spec.event_universe Flag_set.spec ~max_len:3 in
  let invocations = Flag_set.spec.Serial_spec.invocations in
  let schemas, leftover = Relation.schematize ~universe ~invocations r in
  check_int "one schema (no item variables)" 1 (List.length schemas);
  check_int "no leftovers" 0 (List.length leftover);
  let rendered = Format.asprintf "%a" Relation.pp_schema (List.hd schemas) in
  Alcotest.(check string) "rendering" "Shift(3) >= Shift(2);Ok()" rendered

let test_pp_pair () =
  Alcotest.(check string)
    "pair rendering" "Enq(x) >= Deq();Ok(y)"
    (Format.asprintf "%a" Relation.pp_pair pair1)

let suites =
  [
    ( "relation",
      [
        Alcotest.test_case "set operations" `Quick test_set_operations;
        Alcotest.test_case "add is idempotent" `Quick test_add_idempotent;
        Alcotest.test_case "dependencies_of" `Quick test_dependencies_of;
        Alcotest.test_case "schematize complete" `Quick test_schematize_complete;
        Alcotest.test_case "schematize partial stays concrete" `Quick test_schematize_partial;
        Alcotest.test_case "int args stay concrete" `Quick test_schematize_int_args_concrete;
        Alcotest.test_case "pair rendering" `Quick test_pp_pair;
      ] );
  ]
