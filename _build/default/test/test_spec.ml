open Atomrep_history
open Atomrep_spec

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let legal spec events = Serial_spec.legal spec events

(* --- Queue --- *)

let test_queue_fifo () =
  check_bool "fifo legal" true
    (legal Queue_type.spec
       [ Queue_type.enq "x"; Queue_type.enq "y"; Queue_type.deq_ok "x"; Queue_type.deq_ok "y" ]);
  check_bool "lifo illegal" false
    (legal Queue_type.spec
       [ Queue_type.enq "x"; Queue_type.enq "y"; Queue_type.deq_ok "y" ])

let test_queue_empty () =
  check_bool "empty deq" true (legal Queue_type.spec [ Queue_type.deq_empty ]);
  check_bool "empty after drain" true
    (legal Queue_type.spec [ Queue_type.enq "x"; Queue_type.deq_ok "x"; Queue_type.deq_empty ]);
  check_bool "empty with item illegal" false
    (legal Queue_type.spec [ Queue_type.enq "x"; Queue_type.deq_empty ])

let test_queue_paper_history () =
  (* §3.1's example history reports Empty while y is still queued — the
     FIFO serial specification excludes it. *)
  check_bool "premature Empty is illegal" false
    (legal Queue_type.spec
       [ Queue_type.enq "x"; Queue_type.enq "y"; Queue_type.deq_ok "x"; Queue_type.deq_empty ]);
  check_bool "both dequeued then empty" true
    (legal Queue_type.spec
       [
         Queue_type.enq "x"; Queue_type.enq "y"; Queue_type.deq_ok "x";
         Queue_type.deq_ok "y"; Queue_type.deq_empty;
       ])

(* --- PROM --- *)

let test_prom_lifecycle () =
  check_bool "write then seal then read" true
    (legal Prom.spec [ Prom.write "x"; Prom.seal; Prom.read_ok "x" ]);
  check_bool "read before seal disabled" true (legal Prom.spec [ Prom.read_disabled ]);
  check_bool "read before seal cannot return" false
    (legal Prom.spec [ Prom.write "x"; Prom.read_ok "x" ])

let test_prom_write_after_seal () =
  check_bool "write after seal disabled" true
    (legal Prom.spec [ Prom.seal; Prom.write_disabled "x" ]);
  check_bool "write after seal cannot succeed" false
    (legal Prom.spec [ Prom.seal; Prom.write "x" ])

let test_prom_seal_idempotent () =
  check_bool "double seal" true
    (legal Prom.spec [ Prom.write "x"; Prom.seal; Prom.seal; Prom.read_ok "x" ])

let test_prom_last_write_wins () =
  check_bool "last write" true
    (legal Prom.spec [ Prom.write "x"; Prom.write "y"; Prom.seal; Prom.read_ok "y" ]);
  check_bool "overwritten value unreadable" false
    (legal Prom.spec [ Prom.write "x"; Prom.write "y"; Prom.seal; Prom.read_ok "x" ])

let test_prom_default_readable () =
  check_bool "default value" true (legal Prom.spec [ Prom.seal; Prom.read_ok "d" ])

(* --- FlagSet --- *)

let test_flagset_open_enables_shift () =
  check_bool "shift disabled before open" true
    (legal Flag_set.spec [ Flag_set.shift_disabled 1 ]);
  check_bool "shift after open" true
    (legal Flag_set.spec [ Flag_set.open_ok; Flag_set.shift_ok 1 ]);
  check_bool "open twice disabled" true
    (legal Flag_set.spec [ Flag_set.open_ok; Flag_set.open_disabled ])

let test_flagset_close_returns_flag4 () =
  check_bool "close false initially" true (legal Flag_set.spec [ Flag_set.close false ]);
  check_bool "full chain reaches true" true
    (legal Flag_set.spec
       [
         Flag_set.open_ok; Flag_set.shift_ok 1; Flag_set.shift_ok 2; Flag_set.shift_ok 3;
         Flag_set.close true;
       ]);
  check_bool "chain without shift1 stays false" true
    (legal Flag_set.spec
       [
         Flag_set.open_ok; Flag_set.shift_ok 2; Flag_set.shift_ok 3; Flag_set.close false;
       ]);
  check_bool "chain without shift1 cannot reach true" false
    (legal Flag_set.spec
       [ Flag_set.open_ok; Flag_set.shift_ok 2; Flag_set.shift_ok 3; Flag_set.close true ])

let test_flagset_close_disables_shift () =
  check_bool "shift after close disabled" true
    (legal Flag_set.spec [ Flag_set.open_ok; Flag_set.close false; Flag_set.shift_disabled 2 ]);
  check_bool "close before open leaves shifts disabled only by open" true
    (legal Flag_set.spec [ Flag_set.close false; Flag_set.open_ok; Flag_set.shift_ok 1 ])

(* --- DoubleBuffer --- *)

let test_doublebuffer () =
  check_bool "consume default" true (legal Double_buffer.spec [ Double_buffer.consume "d" ]);
  check_bool "produce transfer consume" true
    (legal Double_buffer.spec
       [ Double_buffer.produce "x"; Double_buffer.transfer; Double_buffer.consume "x" ]);
  check_bool "consume without transfer sees default" false
    (legal Double_buffer.spec [ Double_buffer.produce "x"; Double_buffer.consume "x" ]);
  check_bool "transfer overwrites consumer" true
    (legal Double_buffer.spec
       [
         Double_buffer.produce "x"; Double_buffer.transfer; Double_buffer.produce "y";
         Double_buffer.transfer; Double_buffer.consume "y";
       ])

(* --- Register / Counter / Bank / WSet / Directory / Semiqueue / Stack / Log --- *)

let test_register () =
  check_bool "read default" true (legal Register.spec [ Register.read "d" ]);
  check_bool "read last write" true
    (legal Register.spec [ Register.write "x"; Register.write "y"; Register.read "y" ]);
  check_bool "stale read illegal" false
    (legal Register.spec [ Register.write "x"; Register.write "y"; Register.read "x" ])

let test_counter () =
  check_bool "inc inc dec read 1" true
    (legal Counter.spec [ Counter.inc; Counter.inc; Counter.dec; Counter.read 1 ]);
  check_bool "read 0 initially" true (legal Counter.spec [ Counter.read 0 ]);
  check_bool "negative allowed" true (legal Counter.spec [ Counter.dec; Counter.read (-1) ]);
  check_bool "wrong read" false (legal Counter.spec [ Counter.inc; Counter.read 2 ])

let test_bank_account () =
  check_bool "overdraft refused" true
    (legal Bank_account.spec [ Bank_account.withdraw_overdraft 1 ]);
  check_bool "withdraw up to balance" true
    (legal Bank_account.spec
       [ Bank_account.deposit 2; Bank_account.withdraw_ok 2; Bank_account.balance 0 ]);
  check_bool "cannot overdraw" false
    (legal Bank_account.spec [ Bank_account.deposit 1; Bank_account.withdraw_ok 2 ])

let test_wset () =
  check_bool "member false initially" true (legal Wset.spec [ Wset.member "x" false ]);
  check_bool "insert then member" true
    (legal Wset.spec [ Wset.insert "x"; Wset.member "x" true ]);
  check_bool "insert idempotent" true
    (legal Wset.spec [ Wset.insert "x"; Wset.insert "x"; Wset.member "x" true ]);
  check_bool "other item unaffected" true
    (legal Wset.spec [ Wset.insert "x"; Wset.member "y" false ])

let test_directory () =
  check_bool "lookup missing" true (legal Directory.spec [ Directory.lookup_missing "k" ]);
  check_bool "insert lookup" true
    (legal Directory.spec [ Directory.insert_ok "k" "x"; Directory.lookup_ok "k" "x" ]);
  check_bool "double insert refused" true
    (legal Directory.spec [ Directory.insert_ok "k" "x"; Directory.insert_exists "k" "y" ]);
  check_bool "update changes binding" true
    (legal Directory.spec
       [ Directory.insert_ok "k" "x"; Directory.update_ok "k" "y"; Directory.lookup_ok "k" "y" ]);
  check_bool "delete removes binding" true
    (legal Directory.spec
       [ Directory.insert_ok "k" "x"; Directory.delete_ok "k"; Directory.lookup_missing "k" ]);
  check_bool "update missing refused" true
    (legal Directory.spec [ Directory.update_missing "k" "x" ])

let test_semiqueue_nondeterminism () =
  (* Any enqueued item may come out. *)
  check_bool "x out of {x,y}" true
    (legal Semiqueue.spec [ Semiqueue.enq "x"; Semiqueue.enq "y"; Semiqueue.deq_ok "x" ]);
  check_bool "y out of {x,y}" true
    (legal Semiqueue.spec [ Semiqueue.enq "x"; Semiqueue.enq "y"; Semiqueue.deq_ok "y" ]);
  check_bool "cannot deq absent item" false
    (legal Semiqueue.spec [ Semiqueue.enq "x"; Semiqueue.deq_ok "y" ]);
  check_bool "empty" true (legal Semiqueue.spec [ Semiqueue.deq_empty ])

let test_stack_lifo () =
  check_bool "lifo" true
    (legal Stack_type.spec
       [ Stack_type.push "x"; Stack_type.push "y"; Stack_type.pop_ok "y"; Stack_type.pop_ok "x" ]);
  check_bool "fifo illegal" false
    (legal Stack_type.spec [ Stack_type.push "x"; Stack_type.push "y"; Stack_type.pop_ok "x" ])

let test_append_log () =
  check_bool "size counts appends" true
    (legal Append_log.spec [ Append_log.append "x"; Append_log.append "y"; Append_log.size 2 ]);
  check_bool "wrong size" false (legal Append_log.spec [ Append_log.append "x"; Append_log.size 0 ])

(* --- Serial_spec machinery --- *)

let test_enumerate_prefix_closed () =
  let histories = List.map fst (Serial_spec.enumerate Queue_type.spec ~max_len:3) in
  let is_legal h = legal Queue_type.spec h in
  List.iter
    (fun h ->
      check_bool "enumerated history legal" true (is_legal h);
      match List.rev h with
      | [] -> ()
      | _ :: rev_prefix -> check_bool "prefix legal" true (is_legal (List.rev rev_prefix)))
    histories

let test_enumerate_counts () =
  (* From the empty queue over {x,y}: level 1 has Enq x, Enq y, Deq;Empty. *)
  let level1 =
    List.filter (fun (h, _) -> List.length h = 1)
      (Serial_spec.enumerate Queue_type.spec ~max_len:1)
  in
  check_int "three one-event histories" 3 (List.length level1)

let test_event_universe () =
  let u = Serial_spec.event_universe Queue_type.spec ~max_len:3 in
  check_int "queue universe" 5 (List.length u);
  check_bool "contains Deq();Ok(y)" true (List.exists (Event.equal (Queue_type.deq_ok "y")) u)

let test_state_equiv_queue () =
  let s1 = Serial_spec.run Queue_type.spec [ Queue_type.enq "x" ] |> Option.get in
  let s2 = Serial_spec.run Queue_type.spec [ Queue_type.enq "y" ] |> Option.get in
  let s3 =
    Serial_spec.run Queue_type.spec [ Queue_type.enq "x"; Queue_type.deq_ok "x"; Queue_type.enq "x" ]
    |> Option.get
  in
  check_bool "different contents distinguishable" false
    (Serial_spec.state_equiv Queue_type.spec ~depth:3 s1 s2);
  check_bool "same contents equivalent" true
    (Serial_spec.state_equiv Queue_type.spec ~depth:3 s1 s3)

let test_state_equiv_flagset_hidden_flags () =
  (* After Close, shifts are disabled; states differing only in flags 2..3
     are observationally equivalent (flag 4 readable via Close). *)
  let run events = Serial_spec.run Flag_set.spec events |> Option.get in
  let s1 = run [ Flag_set.open_ok; Flag_set.close false ] in
  let s2 = run [ Flag_set.open_ok; Flag_set.shift_ok 1; Flag_set.close false ] in
  check_bool "dead flags invisible" true
    (Serial_spec.state_equiv Flag_set.spec ~depth:4 s1 s2)

let test_equivalent_histories () =
  check_bool "enq orders differ" false
    (Serial_spec.equivalent Queue_type.spec ~depth:4
       [ Queue_type.enq "x"; Queue_type.enq "y" ]
       [ Queue_type.enq "y"; Queue_type.enq "x" ]);
  check_bool "inc/dec orders agree" true
    (Serial_spec.equivalent Counter.spec ~depth:4 [ Counter.inc; Counter.dec ]
       [ Counter.dec; Counter.inc ])

let test_registry () =
  check_int "fourteen types" 14 (List.length Type_registry.all);
  check_bool "find queue" true (Option.is_some (Type_registry.find "queue"));
  check_bool "find QUEUE case-insensitive" true (Option.is_some (Type_registry.find "QUEUE"));
  check_bool "unknown type" true (Option.is_none (Type_registry.find "btree"))

let suites =
  [
    ( "serial specifications",
      [
        Alcotest.test_case "queue FIFO" `Quick test_queue_fifo;
        Alcotest.test_case "queue empty" `Quick test_queue_empty;
        Alcotest.test_case "queue drain" `Quick test_queue_paper_history;
        Alcotest.test_case "prom lifecycle" `Quick test_prom_lifecycle;
        Alcotest.test_case "prom write after seal" `Quick test_prom_write_after_seal;
        Alcotest.test_case "prom seal idempotent" `Quick test_prom_seal_idempotent;
        Alcotest.test_case "prom last write wins" `Quick test_prom_last_write_wins;
        Alcotest.test_case "prom default readable" `Quick test_prom_default_readable;
        Alcotest.test_case "flagset open/shift" `Quick test_flagset_open_enables_shift;
        Alcotest.test_case "flagset close returns flag4" `Quick test_flagset_close_returns_flag4;
        Alcotest.test_case "flagset close disables shift" `Quick test_flagset_close_disables_shift;
        Alcotest.test_case "doublebuffer" `Quick test_doublebuffer;
        Alcotest.test_case "register" `Quick test_register;
        Alcotest.test_case "counter" `Quick test_counter;
        Alcotest.test_case "bank account" `Quick test_bank_account;
        Alcotest.test_case "wset" `Quick test_wset;
        Alcotest.test_case "directory" `Quick test_directory;
        Alcotest.test_case "semiqueue nondeterminism" `Quick test_semiqueue_nondeterminism;
        Alcotest.test_case "stack LIFO" `Quick test_stack_lifo;
        Alcotest.test_case "append log" `Quick test_append_log;
        Alcotest.test_case "enumerate is prefix-closed" `Quick test_enumerate_prefix_closed;
        Alcotest.test_case "enumerate counts" `Quick test_enumerate_counts;
        Alcotest.test_case "event universe" `Quick test_event_universe;
        Alcotest.test_case "state equivalence (queue)" `Quick test_state_equiv_queue;
        Alcotest.test_case "state equivalence (flagset)" `Quick test_state_equiv_flagset_hidden_flags;
        Alcotest.test_case "history equivalence" `Quick test_equivalent_histories;
        Alcotest.test_case "type registry" `Quick test_registry;
      ] );
  ]
