open Atomrep_spec
open Atomrep_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Theorem 11 / §3: the minimal static dependency relation for Queue is
   exactly the paper's four schemas. *)
let test_queue_matches_paper () =
  let computed = Static_dep.minimal Queue_type.spec ~max_len:5 in
  check_bool "equals paper relation" true
    (Relation.equal computed Paper.queue_static_relation)

let test_queue_no_enq_enq () =
  let computed = Static_dep.minimal Queue_type.spec ~max_len:5 in
  check_bool "Enq does not depend on Enq under static" false
    (Relation.mem (Queue_type.enq_inv "x", Queue_type.enq "y") computed)

(* §4: PROM's minimal static relation = hybrid relation + the two extra
   schemas. *)
let test_prom_matches_paper () =
  let computed = Static_dep.minimal Prom.spec ~max_len:4 in
  let expected =
    List.fold_left
      (fun acc p -> Relation.add p acc)
      Paper.prom_hybrid_relation Paper.prom_static_extras
  in
  check_bool "equals hybrid + extras" true (Relation.equal computed expected)

let test_prom_extras_present () =
  let computed = Static_dep.minimal Prom.spec ~max_len:4 in
  check_bool "Read >= Write(x);Ok" true
    (Relation.mem (Prom.read_inv, Prom.write "x") computed);
  check_bool "Write(x) >= Read();Ok(y)" true
    (Relation.mem (Prom.write_inv "x", Prom.read_ok "y") computed);
  (* Same-item writes do not invalidate reads. *)
  check_bool "Write(x) >= Read();Ok(x) absent" false
    (Relation.mem (Prom.write_inv "x", Prom.read_ok "x") computed)

(* Register: the read/write data type yields the classical table. *)
let test_register_relation () =
  let computed = Static_dep.minimal Register.spec ~max_len:4 in
  check_bool "Read >= Write" true
    (Relation.mem (Register.read_inv, Register.write "x") computed);
  check_bool "Write >= Read(other)" true
    (Relation.mem (Register.write_inv "x", Register.read "y") computed);
  check_bool "blind writes independent" false
    (Relation.mem (Register.write_inv "x", Register.write "y") computed)

(* Counter: commuting increments impose no mutual constraints. *)
let test_counter_relation () =
  let computed = Static_dep.minimal Counter.spec ~max_len:4 in
  check_bool "Inc independent of Inc" false
    (Relation.mem (Counter.inc_inv, Counter.inc) computed);
  check_bool "Inc independent of Dec" false
    (Relation.mem (Counter.inc_inv, Counter.dec) computed);
  check_bool "Read depends on Inc" true
    (Relation.mem (Counter.read_inv, Counter.inc) computed);
  check_bool "Inc constrains later Reads" true
    (Relation.mem (Counter.inc_inv, Counter.read 0) computed)

(* WSet: idempotent inserts are independent even of themselves. *)
let test_wset_relation () =
  let computed = Static_dep.minimal Wset.spec ~max_len:4 in
  check_bool "Insert x independent of Insert x" false
    (Relation.mem (Wset.insert_inv "x", Wset.insert "x") computed);
  check_bool "Member depends on Insert of same item" true
    (Relation.mem (Wset.member_inv "x", Wset.insert "x") computed);
  check_bool "Member independent of other item's Insert" false
    (Relation.mem (Wset.member_inv "y", Wset.insert "x") computed)

(* Monotonicity in the bound: growing the bound can only add pairs. *)
let test_monotone_in_bound () =
  let r3 = Static_dep.minimal Queue_type.spec ~max_len:3 in
  let r5 = Static_dep.minimal Queue_type.spec ~max_len:5 in
  check_bool "monotone" true (Relation.subset r3 r5)

(* Saturation: the paper types saturate by length 4-5. *)
let test_saturation_queue () =
  let r4 = Static_dep.minimal Queue_type.spec ~max_len:4 in
  let r6 = Static_dep.minimal Queue_type.spec ~max_len:6 in
  check_bool "saturated at 4" true (Relation.equal r4 r6)

let test_witness_exists_for_pair () =
  match
    Static_dep.witness Queue_type.spec ~max_len:4 Queue_type.deq_inv (Queue_type.enq "x")
  with
  | None -> Alcotest.fail "expected a witness for Deq >= Enq(x)"
  | Some (h1, ev, h2, h3) ->
    check_bool "witness invocation is Deq" true
      (Atomrep_history.Event.Invocation.equal ev.Atomrep_history.Event.inv Queue_type.deq_inv);
    check_bool "witness within bound" true
      (List.length h1 + List.length h2 + List.length h3 <= 4);
    (* The base history h1·h2·h3 must itself be legal. *)
    check_bool "base history legal" true
      (Serial_spec.legal Queue_type.spec (h1 @ h2 @ h3))

let test_witness_absent_for_non_pair () =
  check_bool "no witness for Enq >= Enq" true
    (Option.is_none
       (Static_dep.witness Queue_type.spec ~max_len:4 (Queue_type.enq_inv "x")
          (Queue_type.enq "y")))

(* Directory: cross-key independence. *)
let test_directory_cross_key () =
  let spec = Directory.spec_with ~keys:[ "k"; "l" ] ~values:[ "x" ] in
  let computed = Static_dep.minimal spec ~max_len:3 in
  check_bool "same-key lookup/insert related" true
    (Relation.mem (Directory.lookup_inv "k", Directory.insert_ok "k" "x") computed);
  check_bool "cross-key lookup/insert unrelated" false
    (Relation.mem (Directory.lookup_inv "k", Directory.insert_ok "l" "x") computed)

let suites =
  [
    ( "static dependency (Theorem 6)",
      [
        Alcotest.test_case "queue equals paper" `Quick test_queue_matches_paper;
        Alcotest.test_case "queue lacks Enq-Enq" `Quick test_queue_no_enq_enq;
        Alcotest.test_case "prom equals paper" `Quick test_prom_matches_paper;
        Alcotest.test_case "prom extras" `Quick test_prom_extras_present;
        Alcotest.test_case "register table" `Quick test_register_relation;
        Alcotest.test_case "counter commutativity" `Quick test_counter_relation;
        Alcotest.test_case "wset idempotence" `Quick test_wset_relation;
        Alcotest.test_case "monotone in bound" `Quick test_monotone_in_bound;
        Alcotest.test_case "saturates (queue)" `Quick test_saturation_queue;
        Alcotest.test_case "witness exists" `Quick test_witness_exists_for_pair;
        Alcotest.test_case "witness absent" `Quick test_witness_absent_for_non_pair;
        Alcotest.test_case "directory cross-key independence" `Quick test_directory_cross_key;
      ] );
  ]
