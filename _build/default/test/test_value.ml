open Atomrep_history

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let test_equal_reflexive () =
  let values =
    [
      Value.unit;
      Value.bool true;
      Value.int 42;
      Value.str "x";
      Value.list [ Value.int 1; Value.str "a" ];
      Value.pair (Value.int 1) (Value.bool false);
    ]
  in
  List.iter (fun v -> check_bool "v = v" true (Value.equal v v)) values

let test_compare_distinct_constructors () =
  (* Unit < Bool < Int < Str < List < Pair by construction. *)
  let ordered =
    [
      Value.unit;
      Value.bool false;
      Value.int 0;
      Value.str "";
      Value.list [];
      Value.pair Value.unit Value.unit;
    ]
  in
  let rec pairs = function
    | [] | [ _ ] -> ()
    | a :: (b :: _ as rest) ->
      check_bool "a < b" true (Value.compare a b < 0);
      check_bool "b > a" true (Value.compare b a > 0);
      pairs rest
  in
  pairs ordered

let test_compare_ints () =
  check_bool "1 < 2" true (Value.compare (Value.int 1) (Value.int 2) < 0);
  check_bool "2 = 2" true (Value.compare (Value.int 2) (Value.int 2) = 0)

let test_compare_lists_prefix () =
  let shorter = Value.list [ Value.int 1 ] in
  let longer = Value.list [ Value.int 1; Value.int 2 ] in
  check_bool "prefix is smaller" true (Value.compare shorter longer < 0)

let test_compare_lists_lexicographic () =
  let a = Value.list [ Value.int 1; Value.int 9 ] in
  let b = Value.list [ Value.int 2; Value.int 0 ] in
  check_bool "lexicographic" true (Value.compare a b < 0)

let test_pair_ordering () =
  let a = Value.pair (Value.int 1) (Value.int 9) in
  let b = Value.pair (Value.int 1) (Value.int 10) in
  check_bool "second component breaks ties" true (Value.compare a b < 0)

let test_to_string () =
  check_string "unit" "()" (Value.to_string Value.unit);
  check_string "int" "5" (Value.to_string (Value.int 5));
  check_string "str" "x" (Value.to_string (Value.str "x"));
  check_string "list" "[1; 2]" (Value.to_string (Value.list [ Value.int 1; Value.int 2 ]));
  check_string "pair" "(1, x)" (Value.to_string (Value.pair (Value.int 1) (Value.str "x")))

let test_getters () =
  check_bool "get_bool" true (Value.get_bool (Value.bool true));
  check_int "get_int" 7 (Value.get_int (Value.int 7));
  check_int "get_list length" 2
    (List.length (Value.get_list (Value.list [ Value.unit; Value.unit ])))

let test_getters_raise () =
  Alcotest.check_raises "get_int of str" (Invalid_argument "Value.get_int: x") (fun () ->
      ignore (Value.get_int (Value.str "x")));
  Alcotest.check_raises "get_bool of int" (Invalid_argument "Value.get_bool: 1")
    (fun () -> ignore (Value.get_bool (Value.int 1)))

let suites =
  [
    ( "value",
      [
        Alcotest.test_case "equal is reflexive" `Quick test_equal_reflexive;
        Alcotest.test_case "constructor ordering" `Quick test_compare_distinct_constructors;
        Alcotest.test_case "int ordering" `Quick test_compare_ints;
        Alcotest.test_case "list prefix ordering" `Quick test_compare_lists_prefix;
        Alcotest.test_case "list lexicographic ordering" `Quick test_compare_lists_lexicographic;
        Alcotest.test_case "pair ordering" `Quick test_pair_ordering;
        Alcotest.test_case "printing" `Quick test_to_string;
        Alcotest.test_case "getters" `Quick test_getters;
        Alcotest.test_case "getters raise on mismatch" `Quick test_getters_raise;
      ] );
  ]
