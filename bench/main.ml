(* Benchmark harness.

   Usage:
     dune exec bench/main.exe              — run every experiment (E1..E10)
                                             and the Bechamel micro-benchmarks
     dune exec bench/main.exe -- e3 e5     — run selected experiments only
     dune exec bench/main.exe -- micro     — micro-benchmarks only
     dune exec bench/main.exe -- chaos     — timed chaos campaign sweep
     dune exec bench/main.exe -- reconfig  — reconfiguration campaign + on/off
                                             committed-throughput comparison
     dune exec bench/main.exe -- json      — machine-readable BENCH_3.json
                                             (per-scheme throughput, abort
                                             breakdown, latency percentiles,
                                             tracing on/off wall-clock)
     dune exec bench/main.exe -- storage   — machine-readable BENCH_4.json
                                             (per-durability-mode throughput
                                             under crash+amnesia, recovery
                                             replay/cost percentiles, and the
                                             checkpoint-compaction ablation)
     dune exec bench/main.exe -- termination — machine-readable BENCH_5.json
                                             (per-termination-mode throughput,
                                             stranded tentative entries, and
                                             blocked-latency percentiles under
                                             the coordinator-killer nemesis)
     dune exec bench/main.exe -- takeover  — machine-readable BENCH_6.json
                                             (cooperative vs takeover mode under
                                             the coordinator-killer nemesis:
                                             adopted commits, lease/fence
                                             counters, and a monitor-gated
                                             takeover_storm campaign)
     dune exec bench/main.exe -- perf      — machine-readable BENCH_8.json
                                             (per-scheme committed/s, the
                                             profiling / tracing / sampled
                                             tracing overhead ratios, the
                                             zero-monitor-loss fidelity
                                             check, profile and time-series
                                             snapshots)
     dune exec bench/main.exe -- explore   — machine-readable BENCH_7.json
                                             (monitored seed-sweep explorer:
                                             healthy hardened sweep, 1-domain
                                             vs N-domain wall-clock, the
                                             ungated-rejoin sweep's shrunk
                                             reproducer, fixture replays)
     dune exec bench/main.exe -- load      — machine-readable BENCH_9.json
                                             (open-loop offered-load-vs-goodput
                                             curves, admission on vs off, the
                                             goodput-at-the-knee headline)
     dune exec bench/main.exe -- gray      — machine-readable BENCH_10.json
                                             (gray-failure mitigation: p50/p99
                                             commit latency and goodput under
                                             one and three fail-slow sites,
                                             hedging x demotion ablation grid,
                                             the p99-speedup headline)

   Each experiment regenerates one of the paper's figures or worked
   examples (see DESIGN.md's experiment index and EXPERIMENTS.md for the
   paper-vs-measured record). The micro section times the analysis kernels
   with Bechamel, one Test.make per experiment family. *)

open Atomrep_spec
open Atomrep_core

let run_experiments ids =
  match ids with
  | [] -> List.iter (fun (_, _, run) -> run ()) Atomrep_experiments.Experiments.all
  | ids ->
    List.iter
      (fun id ->
        if not (Atomrep_experiments.Experiments.run_by_id id) then
          Printf.eprintf "unknown experiment %S; known: %s\n" id
            (String.concat ", "
               (List.map (fun (i, _, _) -> i) Atomrep_experiments.Experiments.all)))
      ids

(* --- Bechamel micro-benchmarks: one Test.make per experiment family --- *)

let micro_tests () =
  let open Bechamel in
  let legality =
    (* E1/E4 kernel: serial-history legality checking. *)
    let history =
      [
        Queue_type.enq "x"; Queue_type.enq "y"; Queue_type.deq_ok "x";
        Queue_type.enq "x"; Queue_type.deq_ok "y"; Queue_type.deq_ok "x";
        Queue_type.deq_empty;
      ]
    in
    Test.make ~name:"legality: 7-event queue history"
      (Staged.stage (fun () -> ignore (Serial_spec.legal Queue_type.spec history)))
  in
  let atomicity_check =
    let h = Paper.theorem5_history in
    Test.make ~name:"atomicity: hybrid check, Thm5 history"
      (Staged.stage (fun () ->
           ignore (Atomrep_atomicity.Atomicity.is_hybrid_atomic Prom.spec h)))
  in
  let static_minimal =
    Test.make ~name:"Theorem 6: minimal static relation (queue, len 4)"
      (Staged.stage (fun () -> ignore (Static_dep.minimal Queue_type.spec ~max_len:4)))
  in
  let dynamic_minimal =
    Test.make ~name:"Theorem 10: minimal dynamic relation (queue, len 4)"
      (Staged.stage (fun () -> ignore (Dynamic_dep.minimal Queue_type.spec ~max_len:4)))
  in
  let hybrid_checker =
    Test.make ~name:"Definition 2: hybrid checker build (PROM, e3 a2)"
      (Staged.stage (fun () ->
           ignore (Hybrid_dep.make_checker Prom.spec ~max_events:3 ~max_actions:2)))
  in
  let hybrid_verify =
    let checker = Hybrid_dep.make_checker Prom.spec ~max_events:4 ~max_actions:3 in
    Test.make ~name:"Definition 2: verify one relation (PROM, e4 a3)"
      (Staged.stage (fun () ->
           ignore (Hybrid_dep.is_hybrid_dependency checker Paper.prom_hybrid_relation)))
  in
  let availability =
    let open Atomrep_quorum in
    let constraints = Op_constraint.of_relation Paper.prom_hybrid_relation in
    Test.make ~name:"E2/E3 kernel: enumerate assignments (PROM, n=4)"
      (Staged.stage (fun () ->
           ignore
             (Assignment.enumerate ~n_sites:4 ~ops:[ "Read"; "Seal"; "Write" ]
                constraints)))
  in
  let simulator =
    Test.make ~name:"E8/E9 kernel: 20-txn simulation run"
      (Staged.stage (fun () ->
           ignore
             (Atomrep_replica.Runtime.run
                { Atomrep_replica.Runtime.default_config with n_txns = 20 })))
  in
  let log_merge =
    let open Atomrep_replica in
    let open Atomrep_clock in
    let mk offset =
      List.fold_left
        (fun log i ->
          Log.add log
            (Log.Entry
               {
                 Log.ets = { Lamport.Timestamp.counter = offset + i; site = 0 };
                 action = Atomrep_history.Action.of_int (i mod 5);
                 begin_ts = { Lamport.Timestamp.counter = offset + i; site = 0 };
                 seq = i;
                 event = Queue_type.enq "x";
               }))
        Log.empty
        (List.init 50 Fun.id)
    in
    let l1 = mk 0 and l2 = mk 25 in
    Test.make ~name:"replica kernel: 50-entry log merge"
      (Staged.stage (fun () -> ignore (Log.merge l1 l2)))
  in
  [
    legality; atomicity_check; static_minimal; dynamic_minimal; hybrid_checker;
    hybrid_verify; availability; simulator; log_merge;
  ]

let run_micro () =
  let open Bechamel in
  print_newline ();
  print_endline "Bechamel micro-benchmarks";
  print_endline "=========================";
  let benchmark test =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
    Benchmark.all cfg instances test
  in
  let analyze raw =
    let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
    Analyze.all ols Toolkit.Instance.monotonic_clock raw
  in
  List.iter
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-55s %14.1f ns/run\n%!" name est
          | Some _ | None -> Printf.printf "%-55s (no estimate)\n%!" name)
        results)
    (micro_tests ())

(* Chaos campaign entry: a wall-clock-timed sweep over every scheme and
   fault profile — the throughput number to watch when optimizing the
   simulator or the atomicity checkers. *)
let run_chaos () =
  let module Campaign = Atomrep_chaos.Campaign in
  print_newline ();
  print_endline "Chaos campaign (3 schemes x all profiles x 5 seeds)";
  print_endline "===================================================";
  let t0 = Unix.gettimeofday () in
  let report =
    Campaign.run_campaign
      ~schemes:
        Atomrep_replica.Replicated.[ Static; Hybrid; Locking ]
      ~profiles:Campaign.builtin_profiles ~seeds:5 ()
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  Format.printf "%a" Campaign.pp_report report;
  Printf.printf "campaign wall time: %.2f s (%.1f runs/s)\n" elapsed
    (float_of_int report.Campaign.total_runs /. elapsed)

(* Reconfiguration entry: (1) a >= 400-run campaign with the staggered-kill
   and crash-storm nemeses under the reconfiguration base, gating on zero
   violations; (2) a committed-throughput comparison with the coordinator
   on vs. off while a majority-breaking subset of the original five sites
   is permanently killed — the availability payoff of Theorems 10-12. *)
let run_reconfig () =
  let module Campaign = Atomrep_chaos.Campaign in
  let module Runtime = Atomrep_replica.Runtime in
  print_newline ();
  print_endline "Reconfiguration campaign (3 schemes x {crashes,kills} x 67 seeds)";
  print_endline "==================================================================";
  let profiles =
    List.filter
      (fun p -> List.mem p.Campaign.profile_name [ "crashes"; "kills" ])
      Campaign.builtin_profiles
  in
  let t0 = Unix.gettimeofday () in
  let report =
    Campaign.run_campaign ~base:Campaign.reconfig_base
      ~schemes:Atomrep_replica.Replicated.[ Static; Hybrid; Locking ]
      ~profiles ~seeds:67 ()
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  Format.printf "%a" Campaign.pp_report report;
  Printf.printf "campaign wall time: %.2f s (%.1f runs/s)\n" elapsed
    (float_of_int report.Campaign.total_runs /. elapsed);
  print_newline ();
  print_endline "Committed throughput under majority-breaking site loss (hybrid)";
  print_endline "---------------------------------------------------------------";
  let kills =
    Atomrep_chaos.Nemesis.Staggered_kill
      { start = 3000.0; gap = 4000.0; victims = [ 4; 3; 2 ] }
  in
  let base_cfg reconfig =
    {
      Campaign.reconfig_base with
      Runtime.scheme = Atomrep_replica.Replicated.Hybrid;
      n_txns = 200;
      arrival_mean = 100.0;
      horizon = 25_000.0;
      install_faults = (fun net -> Atomrep_chaos.Nemesis.install kills net);
      reconfig = (if reconfig then Some Runtime.default_reconfig else None);
    }
  in
  let totals reconfig =
    List.fold_left
      (fun (c, e) seed ->
        let outcome = Runtime.run { (base_cfg reconfig) with Runtime.seed } in
        let m = outcome.Runtime.metrics in
        (c + m.Runtime.committed, max e m.Runtime.final_epoch))
      (0, 0)
      [ 0; 1; 2; 3; 4 ]
  in
  let off, _ = totals false in
  let on, epochs = totals true in
  Printf.printf
    "  kills at t=3000/7000/11000 of horizon 25000 (majority of 5 dead by \
     t=11000), 200 txns x 5 seeds\n";
  Printf.printf "  reconfiguration off: %d committed\n" off;
  Printf.printf "  reconfiguration on:  %d committed (deepest epoch %d)\n" on epochs;
  if on > off then print_endline "  => reconfiguration strictly improves committed ops"
  else print_endline "  => WARNING: no improvement measured"

(* Machine-readable benchmark record: one fixed-seed run of the default
   3-site replicated queue per scheme (committed ops, abort breakdown,
   transaction-latency percentiles) plus the tracing on/off wall-clock
   comparison. Written to BENCH_<n_sites>.json; the schema is documented in
   EXPERIMENTS.md. *)
let run_json () =
  let module Runtime = Atomrep_replica.Runtime in
  let module Replicated = Atomrep_replica.Replicated in
  let module Json = Atomrep_obs.Json in
  let module Summary = Atomrep_stats.Summary in
  let seed = 42 and n_txns = 200 in
  let n_sites = Runtime.default_config.Runtime.n_sites in
  (* Per-scheme conflict relations: the locking scheme's conflict tables
     come from its dynamic dependency relation (Theorem 10), the timestamp
     schemes from the static one (Theorem 6). Giving every scheme the
     static relation — the old behavior — made the hybrid and locking rows
     byte-identical, because the drivers only differ in their conflict
     tables on this fault-free workload. *)
  let relation_for scheme =
    match scheme with
    | Replicated.Locking -> Dynamic_dep.minimal Queue_type.spec ~max_len:4
    | Replicated.Hybrid | Replicated.Static ->
      Static_dep.minimal Queue_type.spec ~max_len:4
  in
  let cfg scheme trace =
    let objects =
      List.map
        (fun o -> { o with Runtime.obj_relation = relation_for scheme })
        Runtime.default_config.Runtime.objects
    in
    { Runtime.default_config with Runtime.seed; n_txns; scheme; trace; objects }
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let scheme_entry scheme =
    let outcome, wall = time (fun () -> Runtime.run (cfg scheme None)) in
    let m = outcome.Runtime.metrics in
    let lat = m.Runtime.txn_latency in
    Json.Obj
      [
        ("scheme", Json.Str (Replicated.scheme_name scheme));
        ("wall_s", Json.Num wall);
        ( "committed_per_s",
          Json.Num
            (if wall > 0.0 then float_of_int m.Runtime.committed /. wall else 0.0) );
        ("committed", Json.int m.Runtime.committed);
        ("aborted", Json.int m.Runtime.aborted);
        ( "aborts",
          Json.Obj
            [
              ("unavailable", Json.int m.Runtime.unavailable_aborts);
              ("rejected", Json.int m.Runtime.rejected_aborts);
              ("conflict", Json.int m.Runtime.conflict_aborts);
            ] );
        ("ops_done", Json.int m.Runtime.ops_done);
        ("blocked_waits", Json.int m.Runtime.blocked_waits);
        ( "txn_latency",
          Json.Obj
            [
              ("count", Json.int (Summary.count lat));
              ("mean", Json.Num (Summary.mean lat));
              ("p50", Json.Num (Summary.percentile lat 0.5));
              ("p95", Json.Num (Summary.percentile lat 0.95));
              ("p99", Json.Num (Summary.percentile lat 0.99));
              ("max", Json.Num (Summary.max_value lat));
            ] );
        ("msgs_sent", Json.int m.Runtime.msgs_sent);
        ("sim_duration", Json.Num m.Runtime.duration);
      ]
  in
  let hybrid = Replicated.Hybrid in
  let _, off_s = time (fun () -> Runtime.run (cfg hybrid None)) in
  let tr = Atomrep_obs.Trace.create ~n_sites () in
  let _, on_s = time (fun () -> Runtime.run (cfg hybrid (Some tr))) in
  let doc =
    Json.Obj
      [
        ("bench", Json.Str "replicated-queue");
        ("n_sites", Json.int n_sites);
        ("seed", Json.int seed);
        ("n_txns", Json.int n_txns);
        ( "schemes",
          Json.List (List.map scheme_entry Replicated.[ Static; Hybrid; Locking ]) );
        ( "tracing_overhead",
          Json.Obj
            [
              ("off_s", Json.Num off_s);
              ("on_s", Json.Num on_s);
              ("ratio", Json.Num (if off_s > 0.0 then on_s /. off_s else 0.0));
              ("trace_events", Json.int (Atomrep_obs.Trace.length tr));
            ] );
      ]
  in
  let path = Printf.sprintf "BENCH_%d.json" n_sites in
  Atomrep_obs.Export.write_file path (Json.to_string doc);
  Printf.printf "wrote %s (tracing overhead: %.3fs off, %.3fs on, %d events)\n" path
    off_s on_s (Atomrep_obs.Trace.length tr)

(* Storage benchmark record: the durability-mode cost/benefit sheet.
   (1) per-mode (none / wal / wal-group-commit) committed throughput under
   an amnesia-heavy fixed-seed crash workload, with WAL flush/checkpoint
   counters and recovery replay-length and modeled-recovery-time
   percentiles aggregated over the seeds; (2) a checkpoint-compaction
   on/off ablation showing how compaction bounds replay length. Written to
   BENCH_4.json; the schema is documented in EXPERIMENTS.md. *)
let run_storage () =
  let module Runtime = Atomrep_replica.Runtime in
  let module Repository = Atomrep_replica.Repository in
  let module Json = Atomrep_obs.Json in
  let module Summary = Atomrep_stats.Summary in
  let n_txns = 120 and seeds = [ 0; 1; 2; 3; 4 ] in
  let cfg ~seed durability =
    {
      Runtime.default_config with
      Runtime.seed;
      n_txns;
      scheme = Atomrep_replica.Replicated.Hybrid;
      horizon = 40_000.0;
      install_faults =
        (fun net ->
          Atomrep_sim.Fault.crash_amnesia_recover_all net ~mtbf:600.0 ~mttr:120.0);
      durability;
    }
  in
  let summary_json s =
    Json.Obj
      [
        ("count", Json.int (Summary.count s));
        ("mean", Json.Num (Summary.mean s));
        ("p50", Json.Num (Summary.percentile s 0.5));
        ("p95", Json.Num (Summary.percentile s 0.95));
        ("max", Json.Num (Summary.max_value s));
      ]
  in
  (* Run one durability mode over every seed and aggregate: counters are
     summed, the per-run recovery summaries are pooled observation-wise. *)
  let measure durability =
    let committed = ref 0 and aborted = ref 0 in
    let flushes = ref 0 and flushed = ref 0 and ckpts = ref 0 in
    let recoveries = ref 0 and corrupt = ref 0 in
    let replay = Summary.create () and cost = Summary.create () in
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun seed ->
        let m = (Runtime.run (cfg ~seed durability)).Runtime.metrics in
        committed := !committed + m.Runtime.committed;
        aborted := !aborted + m.Runtime.aborted;
        flushes := !flushes + m.Runtime.wal_flushes;
        flushed := !flushed + m.Runtime.wal_flushed_records;
        ckpts := !ckpts + m.Runtime.wal_checkpoints;
        recoveries := !recoveries + m.Runtime.recoveries;
        corrupt := !corrupt + m.Runtime.recoveries_corrupt;
        List.iter (Summary.add replay) (Summary.observations m.Runtime.recovery_replay);
        List.iter (Summary.add cost) (Summary.observations m.Runtime.recovery_cost))
      seeds;
    let wall = Unix.gettimeofday () -. t0 in
    ( !committed,
      Json.Obj
        [
          ("committed", Json.int !committed);
          ("aborted", Json.int !aborted);
          ("wall_s", Json.Num wall);
          ( "committed_per_s",
            Json.Num (if wall > 0.0 then float_of_int !committed /. wall else 0.0) );
          ("wal_flushes", Json.int !flushes);
          ("wal_flushed_records", Json.int !flushed);
          ("wal_checkpoints", Json.int !ckpts);
          ("recoveries", Json.int !recoveries);
          ("recoveries_corrupt", Json.int !corrupt);
          ("recovery_replay", summary_json replay);
          ("recovery_cost_ms", summary_json cost);
        ] )
  in
  print_newline ();
  print_endline "Storage benchmark (amnesia-heavy workload, 5 seeds per mode)";
  print_endline "============================================================";
  let mode_entry (name, durability) =
    let committed, entry = measure durability in
    Printf.printf "  %-16s committed=%d\n%!" name committed;
    (name, entry)
  in
  let modes =
    [
      ("none", Repository.Volatile);
      ("wal", Repository.durable ~segment_records:16 ~checkpoint_every:48 ());
      ( "wal-group-commit",
        Repository.durable ~group_commit:true ~segment_records:16
          ~checkpoint_every:48 () );
    ]
  in
  let mode_entries = List.map mode_entry modes in
  (* Compaction ablation: same WAL, checkpointing effectively disabled vs
     the aggressive period above — the delta is the replay length (and
     modeled recovery time) that checkpoint compaction buys. *)
  let ablation =
    List.map
      (fun (name, checkpoint_every) ->
        let _, entry =
          measure
            (Repository.durable ~segment_records:16 ~checkpoint_every ())
        in
        Printf.printf "  compaction %-4s (checkpoint_every=%d)\n%!" name
          checkpoint_every;
        (name, entry))
      [ ("on", 48); ("off", 1_000_000) ]
  in
  let doc =
    Json.Obj
      [
        ("bench", Json.Str "durability-modes");
        ("n_sites", Json.int Runtime.default_config.Runtime.n_sites);
        ("seeds", Json.List (List.map Json.int seeds));
        ("n_txns", Json.int n_txns);
        ("workload", Json.Str "hybrid, crash+amnesia mtbf=600 mttr=120");
        ("modes", Json.Obj (List.map (fun (n, e) -> (n, e)) mode_entries));
        ("compaction_ablation", Json.Obj ablation);
      ]
  in
  Atomrep_obs.Export.write_file "BENCH_4.json" (Json.to_string doc);
  print_endline "wrote BENCH_4.json"

(* Termination benchmark record: what crash-safe termination buys (and
   costs) under the coordinator-killer nemesis — commit-window ambushes of
   coordinator home sites. Per termination mode (none / presumed-abort-only
   / cooperative, the last with deadlock detection) over fixed seeds:
   committed throughput, the abort breakdown including presumed and
   cooperative aborts, stranded tentative entries left at the horizon (the
   headline: nonzero under `none', zero under `cooperative'), decision-log
   and redrive counters, blocked-operation latency percentiles, and the
   oracle verdict for every run. Written to BENCH_5.json; the schema is
   documented in EXPERIMENTS.md. *)
let run_termination () =
  let module Runtime = Atomrep_replica.Runtime in
  let module Campaign = Atomrep_chaos.Campaign in
  let module Json = Atomrep_obs.Json in
  let module Summary = Atomrep_stats.Summary in
  let n_txns = 120 and seeds = [ 0; 1; 2; 3; 4 ] in
  let profile =
    match Campaign.find_profile "coordinator_killer" with
    | Some p -> p
    | None -> failwith "coordinator_killer profile missing"
  in
  let cfg ~seed ~termination ~deadlock =
    {
      Runtime.default_config with
      Runtime.seed;
      n_txns;
      scheme = Atomrep_replica.Replicated.Hybrid;
      horizon = 40_000.0;
      install_faults =
        (fun net -> Atomrep_chaos.Nemesis.install profile.Campaign.nemesis net);
      termination;
      deadlock;
    }
  in
  let summary_json s =
    Json.Obj
      [
        ("count", Json.int (Summary.count s));
        ("mean", Json.Num (Summary.mean s));
        ("p50", Json.Num (Summary.percentile s 0.5));
        ("p95", Json.Num (Summary.percentile s 0.95));
        ("p99", Json.Num (Summary.percentile s 0.99));
        ("max", Json.Num (Summary.max_value s));
      ]
  in
  let measure ~termination ~deadlock =
    let committed = ref 0 and aborted = ref 0 in
    let stranded = ref 0 and violations = ref 0 in
    let coop_c = ref 0 and coop_a = ref 0 and presumed = ref 0 in
    let deadlocks = ref 0 and redrives = ref 0 and orphans = ref 0 in
    let decisions = ref 0 in
    let blocked = Summary.create () in
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun seed ->
        let config = cfg ~seed ~termination ~deadlock in
        let outcome = Runtime.run config in
        let m = outcome.Runtime.metrics in
        committed := !committed + m.Runtime.committed;
        aborted := !aborted + m.Runtime.aborted;
        stranded := !stranded + m.Runtime.stranded_entries;
        coop_c := !coop_c + m.Runtime.coop_commits;
        coop_a := !coop_a + m.Runtime.coop_aborts;
        presumed := !presumed + m.Runtime.presumed_aborts;
        deadlocks := !deadlocks + m.Runtime.deadlock_aborts;
        redrives := !redrives + m.Runtime.redrives;
        orphans := !orphans + m.Runtime.orphans_reaped;
        decisions := !decisions + m.Runtime.decision_log_writes;
        List.iter (Summary.add blocked)
          (Summary.observations m.Runtime.blocked_latency);
        let failures =
          Runtime.check_atomicity config outcome
          @ Runtime.check_common_order config outcome
        in
        violations := !violations + List.length failures)
      seeds;
    let wall = Unix.gettimeofday () -. t0 in
    ( (!committed, !stranded, !violations),
      Json.Obj
        [
          ("committed", Json.int !committed);
          ("aborted", Json.int !aborted);
          ("stranded_entries", Json.int !stranded);
          ("coop_commits", Json.int !coop_c);
          ("coop_aborts", Json.int !coop_a);
          ("presumed_aborts", Json.int !presumed);
          ("deadlock_aborts", Json.int !deadlocks);
          ("redrives", Json.int !redrives);
          ("orphans_reaped", Json.int !orphans);
          ("decision_log_writes", Json.int !decisions);
          ("blocked_latency_ms", summary_json blocked);
          ("oracle_violations", Json.int !violations);
          ("wall_s", Json.Num wall);
          ( "committed_per_s",
            Json.Num (if wall > 0.0 then float_of_int !committed /. wall else 0.0) );
        ] )
  in
  print_newline ();
  print_endline "Termination benchmark (coordinator-killer ambush, 5 seeds per mode)";
  print_endline "===================================================================";
  let modes =
    [
      ("none", Atomrep_txn.Termination.Disabled, Runtime.No_deadlock);
      ( "presumed-abort-only",
        Atomrep_txn.Termination.Presumed_abort_only,
        Runtime.No_deadlock );
      ("cooperative", Atomrep_txn.Termination.Cooperative, Runtime.Detect);
    ]
  in
  let mode_entries =
    List.map
      (fun (name, termination, deadlock) ->
        let (committed, stranded, violations), entry =
          measure ~termination ~deadlock
        in
        Printf.printf "  %-20s committed=%d stranded=%d violations=%d\n%!" name
          committed stranded violations;
        (name, entry))
      modes
  in
  let doc =
    Json.Obj
      [
        ("bench", Json.Str "crash-safe-termination");
        ("n_sites", Json.int Runtime.default_config.Runtime.n_sites);
        ("seeds", Json.List (List.map Json.int seeds));
        ("n_txns", Json.int n_txns);
        ( "workload",
          Json.Str
            "hybrid, coordinator_killer profile (commit-window ambush p=0.25 \
             mttr=400 + 2% link flake)" );
        ("modes", Json.Obj mode_entries);
      ]
  in
  Atomrep_obs.Export.write_file "BENCH_5.json" (Json.to_string doc);
  print_endline "wrote BENCH_5.json"

(* Takeover benchmark record: what epoch-fenced coordinator takeover buys
   on top of cooperative termination under the coordinator-killer nemesis —
   certifiable in-doubt transactions that cooperative termination could
   only preabort (or leave to the dead coordinator's own recovery) are
   adopted and committed by a surviving lease holder. Per mode (cooperative
   / takeover) over fixed seeds: committed throughput, adopted commits,
   lease/fence/contention counters, the rebroadcast-dedup counter, stranded
   entries (must stay zero), blocked-latency percentiles, and both the
   oracle and the no-divergence-monitor verdicts. A monitor-gated
   takeover_storm campaign (all three schemes) closes the record. Written
   to BENCH_6.json; the schema is documented in EXPERIMENTS.md. *)
let run_takeover () =
  let module Runtime = Atomrep_replica.Runtime in
  let module Campaign = Atomrep_chaos.Campaign in
  let module Monitor = Atomrep_obs.Monitor in
  let module Json = Atomrep_obs.Json in
  let module Summary = Atomrep_stats.Summary in
  let n_txns = 120 and seeds = [ 0; 1; 2; 3; 4 ] in
  let profile =
    match Campaign.find_profile "coordinator_killer" with
    | Some p -> p
    | None -> failwith "coordinator_killer profile missing"
  in
  let cfg ~seed ~takeover ~trace =
    {
      Runtime.default_config with
      Runtime.seed;
      n_txns;
      scheme = Atomrep_replica.Replicated.Hybrid;
      horizon = 40_000.0;
      install_faults =
        (fun net -> Atomrep_chaos.Nemesis.install profile.Campaign.nemesis net);
      termination = Atomrep_txn.Termination.Cooperative;
      deadlock = Runtime.Detect;
      takeover;
      trace;
    }
  in
  let summary_json s =
    Json.Obj
      [
        ("count", Json.int (Summary.count s));
        ("mean", Json.Num (Summary.mean s));
        ("p50", Json.Num (Summary.percentile s 0.5));
        ("p95", Json.Num (Summary.percentile s 0.95));
        ("p99", Json.Num (Summary.percentile s 0.99));
        ("max", Json.Num (Summary.max_value s));
      ]
  in
  let measure ~takeover =
    let committed = ref 0 and aborted = ref 0 and stranded = ref 0 in
    let coop_c = ref 0 and coop_a = ref 0 and redrives = ref 0 in
    let leases = ref 0 and adoptions = ref 0 and fenced = ref 0 in
    let contended = ref 0 and suppressed = ref 0 and stranded_live = ref 0 in
    let violations = ref 0 and divergences = ref 0 in
    let blocked = Summary.create () in
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun seed ->
        (* A fresh per-run bus: the monitor needs every driver's verdict
           and txn names repeat across seeds. *)
        let tr = Atomrep_obs.Trace.create ~n_sites:3 () in
        let config = cfg ~seed ~takeover ~trace:(Some tr) in
        let outcome = Runtime.run config in
        let m = outcome.Runtime.metrics in
        committed := !committed + m.Runtime.committed;
        aborted := !aborted + m.Runtime.aborted;
        stranded := !stranded + m.Runtime.stranded_entries;
        coop_c := !coop_c + m.Runtime.coop_commits;
        coop_a := !coop_a + m.Runtime.coop_aborts;
        redrives := !redrives + m.Runtime.redrives;
        leases := !leases + m.Runtime.takeover_leases;
        adoptions := !adoptions + m.Runtime.takeover_adoptions;
        fenced := !fenced + m.Runtime.takeover_fenced;
        contended := !contended + m.Runtime.takeover_contended;
        suppressed := !suppressed + m.Runtime.rebroadcasts_suppressed;
        stranded_live := !stranded_live + m.Runtime.stranded_live;
        List.iter (Summary.add blocked)
          (Summary.observations m.Runtime.blocked_latency);
        let failures =
          Runtime.check_atomicity config outcome
          @ Runtime.check_common_order config outcome
        in
        violations := !violations + List.length failures;
        divergences := !divergences + List.length (Monitor.no_divergence tr))
      seeds;
    let wall = Unix.gettimeofday () -. t0 in
    ( (!committed, !adoptions, !stranded, !violations + !divergences),
      Json.Obj
        [
          ("committed", Json.int !committed);
          ("aborted", Json.int !aborted);
          ("stranded_entries", Json.int !stranded);
          ("coop_commits", Json.int !coop_c);
          ("coop_aborts", Json.int !coop_a);
          ("redrives", Json.int !redrives);
          ("takeover_leases", Json.int !leases);
          ("takeover_adoptions", Json.int !adoptions);
          ("takeover_fenced", Json.int !fenced);
          ("takeover_contended", Json.int !contended);
          ("rebroadcasts_suppressed", Json.int !suppressed);
          ("stranded_live", Json.int !stranded_live);
          ("blocked_latency_ms", summary_json blocked);
          ("oracle_violations", Json.int !violations);
          ("monitor_violations", Json.int !divergences);
          ("wall_s", Json.Num wall);
          ( "committed_per_s",
            Json.Num (if wall > 0.0 then float_of_int !committed /. wall else 0.0) );
        ] )
  in
  print_newline ();
  print_endline "Takeover benchmark (coordinator-killer ambush, 5 seeds per mode)";
  print_endline "================================================================";
  let mode_entries =
    List.map
      (fun (name, takeover) ->
        let (committed, adoptions, stranded, bad), entry = measure ~takeover in
        Printf.printf "  %-12s committed=%d adoptions=%d stranded=%d violations=%d\n%!"
          name committed adoptions stranded bad;
        (name, entry))
      [ ("cooperative", false); ("takeover", true) ]
  in
  (* Monitor-gated takeover-storm campaign: every driver of the same
     transaction dies or returns at the worst moment, across all three
     schemes; the record is the violation count (gate: zero). *)
  let storm =
    match Campaign.find_profile "takeover_storm" with
    | Some p -> p
    | None -> failwith "takeover_storm profile missing"
  in
  let storm_monitors =
    match
      Atomrep_chaos.Monitors.of_names "commit_atomicity,common_order,no_divergence"
    with
    | Ok ms -> ms
    | Error e -> failwith e
  in
  let t0 = Unix.gettimeofday () in
  let report =
    Campaign.run_campaign ~base:Campaign.takeover_base ~n_txns:40
      ~monitors:storm_monitors
      ~schemes:Atomrep_replica.Replicated.[ Static; Hybrid; Locking ]
      ~profiles:[ storm ] ~seeds:10 ()
  in
  let storm_wall = Unix.gettimeofday () -. t0 in
  Printf.printf "  takeover_storm campaign: %d runs, %d violation(s)\n%!"
    report.Campaign.total_runs
    (List.length report.Campaign.violations);
  let doc =
    Json.Obj
      [
        ("bench", Json.Str "coordinator-takeover");
        ("n_sites", Json.int Runtime.default_config.Runtime.n_sites);
        ("seeds", Json.List (List.map Json.int seeds));
        ("n_txns", Json.int n_txns);
        ( "workload",
          Json.Str
            "hybrid, coordinator_killer profile (commit-window ambush p=0.25 \
             mttr=400 + 2% link flake), cooperative termination + deadlock \
             detection in both modes" );
        ("modes", Json.Obj mode_entries);
        ( "storm_campaign",
          Json.Obj
            [
              ("profile", Json.Str "takeover_storm");
              ( "schemes",
                Json.List
                  (List.map (fun s -> Json.Str s) [ "static"; "hybrid"; "locking" ]) );
              ("seeds", Json.int 10);
              ("n_txns", Json.int 40);
              ("monitor", Json.Bool true);
              ("total_runs", Json.int report.Campaign.total_runs);
              ("violations", Json.int (List.length report.Campaign.violations));
              ("wall_s", Json.Num storm_wall);
            ] );
      ]
  in
  Atomrep_obs.Export.write_file "BENCH_6.json" (Json.to_string doc);
  print_endline "wrote BENCH_6.json"

(* E17: the monitored seed-sweep explorer. Part one sweeps a hardened
   configuration (cooperative termination, deadlock detection, takeover)
   across two schemes x two adversarial profiles x 64 seeds — 256 runs,
   every one judged by the full monitor catalogue, expected clean. The
   same sweep runs once on a single domain and once on the recommended
   domain count to record the parallel speedup (bounded by the machine:
   on a single-core container the honest ratio is ~1). Part two flips
   [ungated_rejoin] on and sweeps the storm profile so the explorer has a
   real bug to find: the record keeps the violation count and the first
   shrunk reproducer. Fixture replays close the record. Written to
   BENCH_7.json; the schema is documented in EXPERIMENTS.md. *)
let run_explore () =
  let module Runtime = Atomrep_replica.Runtime in
  let module Campaign = Atomrep_chaos.Campaign in
  let module Monitors = Atomrep_chaos.Monitors in
  let module Explore = Atomrep_chaos.Explore in
  let module Json = Atomrep_obs.Json in
  let profile name =
    match Campaign.find_profile name with
    | Some p -> p
    | None -> failwith (name ^ " profile missing")
  in
  let hardened =
    {
      Campaign.default_base with
      Runtime.termination = Atomrep_txn.Termination.Cooperative;
      deadlock = Runtime.Detect;
      takeover = true;
    }
  in
  let healthy_schemes = [ Atomrep_replica.Replicated.Static; Hybrid ] in
  let healthy_profiles = [ profile "storm"; profile "coordinator_killer" ] in
  let seeds = 64 and n_txns = 40 in
  Printf.printf "explore: healthy hardened sweep (%d seeds/cell)...\n%!" seeds;
  let healthy ~domains =
    Explore.sweep ~domains ~n_txns ~base:hardened ~schemes:healthy_schemes
      ~profiles:healthy_profiles ~seeds ~intensities:[ 1.0 ] ()
  in
  let seq = healthy ~domains:1 in
  let rec_domains = max 1 (Domain.recommended_domain_count ()) in
  let par = if rec_domains = 1 then seq else healthy ~domains:rec_domains in
  Printf.printf
    "  %d runs: %d violation(s); wall 1 domain %.2fs, %d domain(s) %.2fs \
     (speedup %.2fx)\n%!"
    seq.Explore.x_tasks
    (List.length seq.Explore.x_violations)
    seq.Explore.x_wall_s rec_domains par.Explore.x_wall_s
    (seq.Explore.x_wall_s /. par.Explore.x_wall_s);
  Printf.printf "explore: ungated-rejoin sweep...\n%!";
  let ungated_base = { Campaign.default_base with Runtime.ungated_rejoin = true } in
  let ungated =
    Explore.sweep ~domains:rec_domains ~n_txns:60 ~max_shrinks:1
      ~base:ungated_base
      ~schemes:[ Atomrep_replica.Replicated.Static ]
      ~profiles:[ profile "storm" ]
      ~seeds:64 ~intensities:[ 2.0 ] ()
  in
  Printf.printf "  %d runs: %d violation(s), %d shrunk, wall %.2fs\n%!"
    ungated.Explore.x_tasks
    (List.length ungated.Explore.x_violations)
    ungated.Explore.x_shrunk ungated.Explore.x_wall_s;
  let replays = List.map Explore.replay Explore.fixtures in
  List.iter
    (fun (r : Explore.replay_result) ->
      Printf.printf "  fixture %s: %s\n%!" r.Explore.rr_fixture.Explore.f_name
        (if r.Explore.rr_ok then "ok" else "REGRESSION"))
    replays;
  let violation_json (v : Campaign.violation) =
    Json.Obj
      [
        ("scheme", Json.Str (Atomrep_replica.Replicated.scheme_name v.Campaign.v_scheme));
        ("profile", Json.Str v.Campaign.v_profile.Campaign.profile_name);
        ("seed", Json.int v.Campaign.v_seed);
        ("txns", Json.int v.Campaign.v_n_txns);
        ("intensity", Json.Num v.Campaign.v_intensity);
        ("repro", Json.Str (Campaign.reproducer_line v));
        ( "failures",
          Json.List
            (List.map
               (fun (m, why) ->
                 Json.Obj [ ("monitor", Json.Str m); ("message", Json.Str why) ])
               v.Campaign.v_failures) );
      ]
  in
  let sweep_json (r : Explore.report) =
    Json.Obj
      [
        ("runs", Json.int r.Explore.x_tasks);
        ("committed", Json.int r.Explore.x_committed);
        ("aborted", Json.int r.Explore.x_aborted);
        ("violations", Json.int (List.length r.Explore.x_violations));
        ("shrunk", Json.int r.Explore.x_shrunk);
        ("domains", Json.int r.Explore.x_domains);
        ("wall_s", Json.Num r.Explore.x_wall_s);
      ]
  in
  let doc =
    Json.Obj
      [
        ( "explore",
          Json.Obj
            [
              ( "monitors",
                Json.List
                  (List.map
                     (fun (e : Monitors.entry) -> Json.Str e.Monitors.e_name)
                     Monitors.registry) );
              ( "healthy",
                Json.Obj
                  [
                    ( "schemes",
                      Json.List (List.map (fun s -> Json.Str s) [ "static"; "hybrid" ]) );
                    ( "profiles",
                      Json.List
                        (List.map
                           (fun s -> Json.Str s)
                           [ "storm"; "coordinator_killer" ]) );
                    ("seeds", Json.int seeds);
                    ("n_txns", Json.int n_txns);
                    ("sweep", sweep_json seq);
                  ] );
              ( "parallel",
                Json.Obj
                  [
                    ("cores", Json.int rec_domains);
                    ("wall_1_domain_s", Json.Num seq.Explore.x_wall_s);
                    ("domains", Json.int par.Explore.x_domains);
                    ("wall_n_domains_s", Json.Num par.Explore.x_wall_s);
                    ( "speedup",
                      Json.Num (seq.Explore.x_wall_s /. par.Explore.x_wall_s) );
                  ] );
              ( "ungated_rejoin",
                Json.Obj
                  [
                    ("seeds", Json.int 64);
                    ("n_txns", Json.int 60);
                    ("intensity", Json.Num 2.0);
                    ("sweep", sweep_json ungated);
                    ( "first_shrunk",
                      match ungated.Explore.x_violations with
                      | v :: _ -> violation_json v
                      | [] -> Json.Null );
                  ] );
              ( "fixtures",
                Json.List
                  (List.map
                     (fun (r : Explore.replay_result) ->
                       Json.Obj
                         [
                           ("name", Json.Str r.Explore.rr_fixture.Explore.f_name);
                           ( "expect_violation",
                             Json.Bool r.Explore.rr_fixture.Explore.f_expect_violation
                           );
                           ("ok", Json.Bool r.Explore.rr_ok);
                           ( "failures",
                             Json.List
                               (List.map
                                  (fun (m, why) ->
                                    Json.Obj
                                      [
                                        ("monitor", Json.Str m);
                                        ("message", Json.Str why);
                                      ])
                                  r.Explore.rr_failures) );
                         ])
                     replays) );
            ] );
      ]
  in
  Atomrep_obs.Export.write_file "BENCH_7.json" (Json.to_string doc);
  print_endline "wrote BENCH_7.json"

(* Performance-observability benchmark record: what the profiling hooks,
   the sim-time time-series and per-kind trace sampling cost and buy.
   (1) per-scheme committed/s with no observability attached — the
   headline the `atomrep bench-diff` gate tracks under kind "perf";
   (2) observability overhead: wall clock for bare / profiled /
   traced-full / traced-sampled runs of the same fixed-seed hybrid
   workload, with the sampled tracing ratio expected below the
   full-fidelity one (BENCH_3's ~1.11); (3) the zero-loss check: with
   sampling forced to keep every kind the monitor catalogue subscribes
   to, the per-kind monitor-event counts and the monitor verdicts must
   be identical sampled or not; (4) hot-phase profile and time-series
   snapshots. Written to BENCH_8.json; the schema is documented in
   EXPERIMENTS.md. *)
let run_perf () =
  let module Runtime = Atomrep_replica.Runtime in
  let module Replicated = Atomrep_replica.Replicated in
  let module Monitors = Atomrep_chaos.Monitors in
  let module Trace = Atomrep_obs.Trace in
  let module Profile = Atomrep_obs.Profile in
  let module Timeseries = Atomrep_obs.Timeseries in
  let module Json = Atomrep_obs.Json in
  let seed = 42 and n_txns = 200 and reps = 5 and sample_every = 8 in
  let n_sites = Runtime.default_config.Runtime.n_sites in
  let cfg ?trace ?(profile = Profile.null) ?(timeseries = Timeseries.null)
      scheme =
    {
      Runtime.default_config with
      Runtime.seed;
      n_txns;
      scheme;
      trace;
      profile;
      timeseries;
    }
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  print_newline ();
  print_endline "Performance-observability benchmark (fixed seed, 5 reps)";
  print_endline "========================================================";
  (* (1) Per-scheme baseline throughput, no observability attached. *)
  let scheme_rows =
    List.map
      (fun scheme ->
        let committed = ref 0 in
        let _, wall =
          time (fun () ->
              for _ = 1 to reps do
                let m = (Runtime.run (cfg scheme)).Runtime.metrics in
                committed := !committed + m.Runtime.committed
              done)
        in
        let per_s =
          if wall > 0.0 then float_of_int !committed /. wall else 0.0
        in
        Printf.printf "  %-8s committed=%d (%.0f/s)\n%!"
          (Replicated.scheme_name scheme)
          !committed per_s;
        ( Replicated.scheme_name scheme,
          Json.Obj
            [
              ("committed", Json.int !committed);
              ("wall_s", Json.Num wall);
              ("committed_per_s", Json.Num per_s);
            ] ))
      Replicated.[ Static; Hybrid; Locking ]
  in
  (* (2) Observability overhead on the hybrid workload. *)
  let monitors = Monitors.registry in
  let forced = Monitors.forced monitors in
  (* Interleaved timing: one run of each configuration per round, so
     clock drift, GC state and cache warmth spread evenly across the four
     accumulators instead of biasing whichever ran last. *)
  let bare_s = ref 0.0 and profiled_s = ref 0.0 in
  let full_s = ref 0.0 and sampled_s = ref 0.0 in
  let profile = Profile.create () in
  Profile.set_clock profile Unix.gettimeofday;
  let traced ~sample () =
    let tr = Trace.create ~n_sites () in
    if sample > 1 then Trace.set_sampling tr ~every:sample ~forced ();
    let outcome = Runtime.run (cfg ~trace:tr Replicated.Hybrid) in
    (tr, outcome)
  in
  let tally acc f =
    let r, dt = time f in
    acc := !acc +. dt;
    r
  in
  let last = ref None in
  for _ = 1 to reps do
    ignore (tally bare_s (fun () -> Runtime.run (cfg Replicated.Hybrid)));
    ignore (tally profiled_s (fun () -> Runtime.run (cfg ~profile Replicated.Hybrid)));
    let full = tally full_s (traced ~sample:1) in
    let sampled = tally sampled_s (traced ~sample:sample_every) in
    last := Some (full, sampled)
  done;
  let (full_tr, full_outcome), (sampled_tr, sampled_outcome) =
    match !last with Some r -> r | None -> assert false
  in
  let bare_s = !bare_s and profiled_s = !profiled_s in
  let full_s = !full_s and sampled_s = !sampled_s in
  let ratio x = if bare_s > 0.0 then x /. bare_s else 0.0 in
  Printf.printf
    "  overhead: bare %.3fs, profiled %.3fs (x%.3f), traced %.3fs (x%.3f), \
     sampled 1/%d %.3fs (x%.3f)\n%!"
    bare_s profiled_s (ratio profiled_s) full_s (ratio full_s) sample_every
    sampled_s (ratio sampled_s);
  if ratio sampled_s >= ratio full_s then
    print_endline "  WARNING: sampling did not reduce the tracing overhead";
  (* (3) Zero monitor-visible loss: per-kind counts over the monitored
     labels, and the verdicts, from the last full vs last sampled run
     (same seed, same workload). *)
  let monitor_labels = Monitors.observed_labels monitors in
  let counts tr =
    List.map
      (fun label ->
        ( label,
          List.length
            (List.filter
               (fun (e : Trace.event) ->
                 String.equal (Trace.kind_label e.Trace.kind) label)
               (Trace.events tr)) ))
      monitor_labels
  in
  let full_counts = counts full_tr and sampled_counts = counts sampled_tr in
  let counts_equal = full_counts = sampled_counts in
  let verdict outcome tr =
    Atomrep_obs.Spec_monitor.failures
      (Monitors.run monitors
         { Monitors.cfg = cfg ~trace:tr Replicated.Hybrid; outcome }
         tr)
  in
  let full_failures = verdict full_outcome full_tr in
  let sampled_failures = verdict sampled_outcome sampled_tr in
  let verdicts_equal = full_failures = sampled_failures in
  Printf.printf
    "  fidelity: %d monitored kinds, counts %s, verdicts %s (%d trace events \
     kept of %d emitted)\n%!"
    (List.length monitor_labels)
    (if counts_equal then "identical" else "DIFFER")
    (if verdicts_equal then "identical" else "DIFFER")
    (Trace.length sampled_tr)
    (Trace.length sampled_tr + Trace.sampled_out sampled_tr);
  (* (4) Snapshots: the hot-phase table and a time-series run. *)
  let ts = Timeseries.create ~width:500.0 () in
  let _ = Runtime.run (cfg ~timeseries:ts Replicated.Hybrid) in
  let phase_json (p : Profile.phase) =
    Json.Obj
      [
        ("subsystem", Json.Str p.Profile.p_subsystem);
        ("phase", Json.Str p.Profile.p_phase);
        ("count", Json.int p.Profile.p_count);
        ("wall_s", Json.Num p.Profile.p_wall);
        ("minor_words", Json.Num p.Profile.p_minor_words);
      ]
  in
  let doc =
    Json.Obj
      [
        ("bench", Json.Str "perf");
        ("n_sites", Json.int n_sites);
        ("seed", Json.int seed);
        ("n_txns", Json.int n_txns);
        ("reps", Json.int reps);
        ("schemes", Json.Obj scheme_rows);
        ( "overhead",
          Json.Obj
            [
              ("bare_s", Json.Num bare_s);
              ("profiled_s", Json.Num profiled_s);
              ("traced_full_s", Json.Num full_s);
              ("traced_sampled_s", Json.Num sampled_s);
              ("profile_ratio", Json.Num (ratio profiled_s));
              ("tracing_full_ratio", Json.Num (ratio full_s));
              ("tracing_sampled_ratio", Json.Num (ratio sampled_s));
              ("sample_every", Json.int sample_every);
              ("full_events", Json.int (Trace.length full_tr));
              ("sampled_kept", Json.int (Trace.length sampled_tr));
              ("sampled_out", Json.int (Trace.sampled_out sampled_tr));
            ] );
        ( "monitor_fidelity",
          Json.Obj
            [
              ( "labels",
                Json.List (List.map (fun l -> Json.Str l) monitor_labels) );
              ( "full_counts",
                Json.Obj
                  (List.map (fun (l, n) -> (l, Json.int n)) full_counts) );
              ( "sampled_counts",
                Json.Obj
                  (List.map (fun (l, n) -> (l, Json.int n)) sampled_counts) );
              ("counts_equal", Json.Bool counts_equal);
              ("verdicts_equal", Json.Bool verdicts_equal);
              ("full_violations", Json.int (List.length full_failures));
              ("sampled_violations", Json.int (List.length sampled_failures));
            ] );
        ("profile_top", Json.List (List.map phase_json (Profile.top profile ~n:5)));
        ( "timeseries",
          Json.Obj
            [
              ("width", Json.Num (Timeseries.width ts));
              ("windows", Json.int (List.length (Timeseries.windows ts)));
              ("dropped", Json.int (Timeseries.dropped ts));
              ( "series",
                Json.List
                  (List.map (fun s -> Json.Str s) (Timeseries.series_names ts))
              );
            ] );
      ]
  in
  Atomrep_obs.Export.write_file "BENCH_8.json" (Json.to_string doc);
  print_endline "wrote BENCH_8.json"

(* Overload bench: offered-load-vs-goodput curves per scheme, admission
   on vs off, on identical open-loop arrival plans. Goodput counts only
   timely commits (arrival-to-commit sojourn within the admission
   deadline): an open-loop client has abandoned a late response, so a
   late commit is wasted work. Every point is monitor-gated (the full
   catalogue, shed-safety included). The headline the `atomrep
   bench-diff` gate tracks under kind "load" is the goodput at the knee:
   the admission-on goodput at the highest offered load — the plateau a
   gracefully degrading system must hold while the ungated baseline
   collapses. Written to BENCH_9.json; schema in EXPERIMENTS.md. *)
let run_load () =
  let module Runtime = Atomrep_replica.Runtime in
  let module Replicated = Atomrep_replica.Replicated in
  let module Monitors = Atomrep_chaos.Monitors in
  let module Trace = Atomrep_obs.Trace in
  let module Json = Atomrep_obs.Json in
  let module Openloop = Atomrep_workload.Openloop in
  let module Summary = Atomrep_stats.Summary in
  let plan_seed = 97 and engine_seed = 42 in
  let base_rate = 0.010 (* txns per simulated ms: 10/s at mult 1 *) in
  let horizon = 12_000.0 and deadline = 1_000.0 in
  let mults = [ 0.5; 1.0; 2.0; 4.0; 8.0; 16.0 ] in
  let schemes = Replicated.[ Static; Hybrid; Locking ] in
  let monitors = Monitors.registry in
  print_newline ();
  print_endline "Overload benchmark: open-loop goodput, admission on vs off";
  print_endline "==========================================================";
  Printf.printf
    "  one hot queue, plan seed %d, %.0f/s base offered load, %.0f ms \
     deadline\n%!"
    plan_seed (base_rate *. 1000.0) deadline;
  let point scheme mult admission_on =
    (* The plan depends only on the multiplier: every scheme and both
       admission settings replay byte-identical arrivals and scripts. *)
    let plan =
      Openloop.plan ~profile:Openloop.Queue_fanout ~n_objects:1 ~n_sites:3
        ~n_sessions:6 ~seed:plan_seed ~rate:(base_rate *. mult) ~horizon ()
    in
    let trace = Trace.create ~n_sites:3 () in
    let base =
      {
        Runtime.default_config with
        Runtime.scheme;
        seed = engine_seed;
        horizon = horizon +. 28_000.0 (* drain: let the ungated pile finish *);
        timely_bound = deadline;
        trace = Some trace;
      }
    in
    let cfg =
      if admission_on then
        {
          (Openloop.apply plan base) with
          Runtime.admission =
            Some
              {
                Runtime.max_in_flight = 8;
                queue_limit = 16;
                deadline;
                adm_shed_policy = Runtime.Shed_reads_first;
                adm_breaker = Some Runtime.default_breaker;
              };
          retry_budget = 12;
        }
      else Openloop.apply plan base
    in
    let outcome = Runtime.run cfg in
    let m = outcome.Runtime.metrics in
    let violations =
      Atomrep_obs.Spec_monitor.failures
        (Monitors.run monitors { Monitors.cfg; outcome } trace)
    in
    let goodput =
      if m.Runtime.duration > 0.0 then
        float_of_int m.Runtime.timely_commits /. m.Runtime.duration *. 1000.0
      else 0.0
    in
    let offered = float_of_int (Openloop.n_txns plan) /. horizon *. 1000.0 in
    Printf.printf
      "  %-8s x%-4.1f adm=%-3s offered=%6.1f/s goodput=%6.2f/s committed=%d \
       timely=%d shed=%d retries=%d%s\n%!"
      (Replicated.scheme_name scheme)
      mult
      (if admission_on then "on" else "off")
      offered goodput m.Runtime.committed m.Runtime.timely_commits
      m.Runtime.shed m.Runtime.retries_spent
      (if violations = [] then ""
       else Printf.sprintf "  VIOLATIONS=%d" (List.length violations));
    let json =
      Json.Obj
        [
          ( "name",
            Json.Str
              (Printf.sprintf "%s/%s/x%g"
                 (Replicated.scheme_name scheme)
                 (if admission_on then "on" else "off")
                 mult) );
          ("mult", Json.Num mult);
          ("offered_per_s", Json.Num offered);
          ("arrivals", Json.int (Openloop.n_txns plan));
          ("committed", Json.int m.Runtime.committed);
          ("timely", Json.int m.Runtime.timely_commits);
          ("committed_per_s", Json.Num goodput);
          ("aborted", Json.int m.Runtime.aborted);
          ("shed", Json.int m.Runtime.shed);
          ("retries_spent", Json.int m.Runtime.retries_spent);
          ( "retries_budget_exhausted",
            Json.int m.Runtime.retries_budget_exhausted );
          ("breaker_trips", Json.int m.Runtime.breaker_trips);
          ( "sojourn_p50_ms",
            Json.Num (Summary.percentile m.Runtime.sojourn 0.5) );
          ( "sojourn_p99_ms",
            Json.Num (Summary.percentile m.Runtime.sojourn 0.99) );
          ("violations", Json.int (List.length violations));
        ]
    in
    (goodput, List.length violations, json)
  in
  let total_violations = ref 0 in
  let scheme_sections =
    List.map
      (fun scheme ->
        let rows_on = ref [] and rows_off = ref [] in
        let curve admission_on acc =
          List.map
            (fun mult ->
              let gp, viols, json = point scheme mult admission_on in
              total_violations := !total_violations + viols;
              acc := json :: !acc;
              (mult, gp))
            mults
        in
        let on_curve = curve true rows_on in
        let off_curve = curve false rows_off in
        let peak c = List.fold_left (fun a (_, g) -> Float.max a g) 0.0 c in
        let at_top c = snd (List.nth c (List.length c - 1)) in
        let on_peak = peak on_curve and off_peak = peak off_curve in
        let retention =
          if on_peak > 0.0 then at_top on_curve /. on_peak else 0.0
        in
        let collapse =
          if off_peak > 0.0 then at_top off_curve /. off_peak else 0.0
        in
        Printf.printf
          "  %-8s admission-on holds %.0f%% of its %.2f/s peak at x%g; \
           ungated falls to %.0f%% of %.2f/s\n%!"
          (Replicated.scheme_name scheme)
          (100.0 *. retention) on_peak
          (List.nth mults (List.length mults - 1))
          (100.0 *. collapse) off_peak;
        ( Replicated.scheme_name scheme,
          Json.Obj
            [
              ("admission_on", Json.List (List.rev !rows_on));
              ("admission_off", Json.List (List.rev !rows_off));
              ("on_peak_goodput", Json.Num on_peak);
              ("off_peak_goodput", Json.Num off_peak);
              ("on_retention_at_top", Json.Num retention);
              ("off_retention_at_top", Json.Num collapse);
            ] ))
      schemes
  in
  (* The knee headline: admission-on goodput at the top multiplier for
     the locking scheme — the scheme whose ungated baseline collapses
     hardest, so the number the admission machinery earns. *)
  let goodput_at_knee =
    match List.assoc_opt "locking" scheme_sections with
    | Some (Json.Obj fields) ->
      (match List.assoc_opt "on_peak_goodput" fields with
       | Some (Json.Num n) ->
         (match List.assoc_opt "on_retention_at_top" fields with
          | Some (Json.Num r) -> n *. r
          | _ -> n)
       | _ -> 0.0)
    | _ -> 0.0
  in
  Printf.printf "  goodput at knee (locking, admission on): %.2f/s, %d \
                 monitor violations\n%!"
    goodput_at_knee !total_violations;
  let doc =
    Json.Obj
      [
        ("bench", Json.Str "load");
        ("headline", Json.Num goodput_at_knee);
        ("plan_seed", Json.int plan_seed);
        ("engine_seed", Json.int engine_seed);
        ("base_rate_per_s", Json.Num (base_rate *. 1000.0));
        ("horizon_ms", Json.Num horizon);
        ("deadline_ms", Json.Num deadline);
        ("multipliers", Json.List (List.map (fun m -> Json.Num m) mults));
        ("monitor_violations", Json.int !total_violations);
        ("schemes", Json.Obj scheme_sections);
      ]
  in
  Atomrep_obs.Export.write_file "BENCH_9.json" (Json.to_string doc);
  print_endline "wrote BENCH_9.json"

(* Gray-failure bench: commit latency and goodput under persistent
   fail-slow sites, across the hedging x demotion ablation grid, at
   equal open-loop offered load (one fixed arrival plan per slow-site
   count — every arm replays byte-identical arrivals). A fail-slow site
   answers, slowly: binary up/down masking never fires, so the round's
   tail is the slow site's tail unless hedged re-issues and slow-site
   demotion steer around it. Every point is monitor-gated (the full
   catalogue, hedge_safety included). The headline the `atomrep
   bench-diff` gate tracks under kind "gray" is the p99 commit-latency
   speedup of hedge+demote over the unmitigated baseline for the hybrid
   scheme under one fail-slow site — the paper's general scheme, the
   issue's acceptance scenario. Written to BENCH_10.json; schema in
   EXPERIMENTS.md. *)
let run_gray () =
  let module Runtime = Atomrep_replica.Runtime in
  let module Replicated = Atomrep_replica.Replicated in
  let module Monitors = Atomrep_chaos.Monitors in
  let module Trace = Atomrep_obs.Trace in
  let module Json = Atomrep_obs.Json in
  let module Network = Atomrep_sim.Network in
  let module Openloop = Atomrep_workload.Openloop in
  let module Summary = Atomrep_stats.Summary in
  let plan_seed = 131 and engine_seed = 42 in
  let rate = 0.012 (* txns per simulated ms: 12/s offered *) in
  let horizon = 12_000.0 in
  let n_sites = 5 in
  let slow_factor = 8.0 and slow_onset = 1_000.0 in
  let slow_sets = [ ("one_slow", [ 2 ]); ("three_slow", [ 1; 2; 3 ]) ] in
  let arms =
    [
      ("baseline", None);
      ("hedge", Some { Runtime.default_gray with Runtime.demote = false });
      ("demote", Some { Runtime.default_gray with Runtime.hedge = false });
      ("hedge_demote", Some Runtime.default_gray);
    ]
  in
  let schemes = Replicated.[ Static; Hybrid; Locking ] in
  let monitors = Monitors.registry in
  print_newline ();
  print_endline "Gray-failure benchmark: fail-slow sites, hedging x demotion";
  print_endline "===========================================================";
  Printf.printf
    "  %d sites, plan seed %d, %.0f/s offered, slow factor %.0fx from %.0f \
     ms\n%!"
    n_sites plan_seed (rate *. 1000.0) slow_factor slow_onset;
  let total_violations = ref 0 in
  let point scheme arm_name gray slow_sites =
    (* One plan per slow-site count: the plan depends only on the load
       shape, so all four arms and all three schemes replay identical
       arrivals and scripts. *)
    let plan =
      Openloop.plan ~profile:Openloop.Queue_fanout ~n_objects:3 ~n_sites
        ~n_sessions:6 ~seed:plan_seed ~rate ~horizon ()
    in
    let trace = Trace.create ~n_sites () in
    let base =
      {
        Runtime.default_config with
        Runtime.scheme;
        seed = engine_seed;
        n_sites;
        horizon = horizon +. 8_000.0 (* drain: let late rounds settle *);
        trace = Some trace;
        gray;
        fail_slow =
          List.map
            (fun s -> (s, slow_onset, Network.Slow_constant slow_factor))
            slow_sites;
      }
    in
    let cfg = Openloop.apply plan base in
    let outcome = Runtime.run cfg in
    let m = outcome.Runtime.metrics in
    let violations =
      Atomrep_obs.Spec_monitor.failures
        (Monitors.run monitors { Monitors.cfg; outcome } trace)
    in
    total_violations := !total_violations + List.length violations;
    (* Goodput over the fixed offered window, not the run's duration: a
       gray arm's detector probes keep the engine busy to the horizon,
       and dividing by a longer idle tail would flatter the baseline. *)
    let goodput = float_of_int m.Runtime.committed /. horizon *. 1000.0 in
    let p50 = Summary.percentile m.Runtime.txn_latency 0.5 in
    let p99 = Summary.percentile m.Runtime.txn_latency 0.99 in
    Printf.printf
      "  %-8s %-12s slow=%d committed=%3d aborted=%3d p50=%7.1f ms p99=%8.1f \
       ms hedges=%d wins=%d demoted=%d%s\n%!"
      (Replicated.scheme_name scheme)
      arm_name
      (List.length slow_sites)
      m.Runtime.committed m.Runtime.aborted p50 p99 m.Runtime.hedges
      m.Runtime.hedge_wins m.Runtime.demoted_rounds
      (if violations = [] then ""
       else Printf.sprintf "  VIOLATIONS=%d" (List.length violations));
    let json =
      Json.Obj
        [
          ("arrivals", Json.int (Openloop.n_txns plan));
          ("committed", Json.int m.Runtime.committed);
          ("aborted", Json.int m.Runtime.aborted);
          ("committed_per_s", Json.Num goodput);
          ("latency_p50_ms", Json.Num p50);
          ("latency_p99_ms", Json.Num p99);
          ("hedges", Json.int m.Runtime.hedges);
          ("hedge_wins", Json.int m.Runtime.hedge_wins);
          ("hedge_late", Json.int m.Runtime.hedge_late);
          ("demoted_rounds", Json.int m.Runtime.demoted_rounds);
          ("slow_suspicions", Json.int m.Runtime.slow_suspicions);
          ("violations", Json.int (List.length violations));
        ]
    in
    (p99, json)
  in
  let headline = ref 0.0 in
  let grid_sections =
    List.map
      (fun (set_name, slow_sites) ->
        let scheme_objs =
          List.map
            (fun scheme ->
              let baseline_p99 = ref 0.0 in
              let arm_objs =
                List.map
                  (fun (arm_name, gray) ->
                    let p99, json = point scheme arm_name gray slow_sites in
                    if arm_name = "baseline" then baseline_p99 := p99;
                    if
                      arm_name = "hedge_demote" && set_name = "one_slow"
                      && scheme = Replicated.Hybrid && p99 > 0.0
                    then headline := !baseline_p99 /. p99;
                    (arm_name, json))
                  arms
              in
              (Replicated.scheme_name scheme, Json.Obj arm_objs))
            schemes
        in
        (set_name, Json.Obj scheme_objs))
      slow_sets
  in
  Printf.printf
    "  p99 speedup, hedge+demote vs baseline (hybrid, one slow site): \
     %.2fx, %d monitor violations\n%!"
    !headline !total_violations;
  let doc =
    Json.Obj
      [
        ("bench", Json.Str "gray");
        ("headline", Json.Num !headline);
        ("plan_seed", Json.int plan_seed);
        ("engine_seed", Json.int engine_seed);
        ("offered_per_s", Json.Num (rate *. 1000.0));
        ("horizon_ms", Json.Num horizon);
        ("n_sites", Json.int n_sites);
        ("slow_factor", Json.Num slow_factor);
        ("slow_onset_ms", Json.Num slow_onset);
        ("monitor_violations", Json.int !total_violations);
        ("grid", Json.Obj grid_sections);
      ]
  in
  Atomrep_obs.Export.write_file "BENCH_10.json" (Json.to_string doc);
  print_endline "wrote BENCH_10.json"

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let micro_only = args = [ "micro" ] in
  let chaos_only = args = [ "chaos" ] in
  let reconfig_only = args = [ "reconfig" ] in
  let json_only = args = [ "json" ] in
  let storage_only = args = [ "storage" ] in
  let termination_only = args = [ "termination" ] in
  let takeover_only = args = [ "takeover" ] in
  let explore_only = args = [ "explore" ] in
  let perf_only = args = [ "perf" ] in
  let load_only = args = [ "load" ] in
  let gray_only = args = [ "gray" ] in
  let micro = List.mem "micro" args || args = [] || List.mem "all" args in
  let chaos = List.mem "chaos" args in
  let reconfig = List.mem "reconfig" args in
  let json = List.mem "json" args in
  let storage = List.mem "storage" args in
  let termination = List.mem "termination" args in
  let takeover = List.mem "takeover" args in
  let explore = List.mem "explore" args in
  let perf = List.mem "perf" args in
  let load = List.mem "load" args in
  let gray = List.mem "gray" args in
  let ids =
    List.filter
      (fun a ->
        a <> "micro" && a <> "all" && a <> "chaos" && a <> "reconfig" && a <> "json"
        && a <> "storage" && a <> "termination" && a <> "takeover"
        && a <> "explore" && a <> "perf" && a <> "load" && a <> "gray")
      args
  in
  if
    (not micro_only) && (not chaos_only) && (not reconfig_only) && (not json_only)
    && (not storage_only) && (not termination_only) && (not takeover_only)
    && (not explore_only) && (not perf_only) && (not load_only)
    && not gray_only
  then run_experiments ids;
  if micro then run_micro ();
  if chaos then run_chaos ();
  if reconfig then run_reconfig ();
  if json then run_json ();
  if storage then run_storage ();
  if termination then run_termination ();
  if takeover then run_takeover ();
  if explore then run_explore ();
  if perf then run_perf ();
  if load then run_load ();
  if gray then run_gray ()
