(* atomrep — command-line interface to the analysis and the simulator.

   Subcommands:
     analyze     — dependency relations of a data type
     quorums     — enumerate valid quorum assignments and availabilities
     simulate    — run the replicated-object simulator
     chaos       — fault-injection campaign over seeds x schemes x profiles
     experiment  — run one of the paper-reproduction experiments
     types       — list the built-in data types *)

open Cmdliner
open Atomrep_spec
open Atomrep_core
open Atomrep_quorum
open Atomrep_stats
module Obs = Atomrep_obs

(* Shared observability flags: --trace/--trace-format for the event trace,
   --metrics-json for the run's metrics registry. *)
let trace_file_arg =
  let doc = "Write the run's event trace to $(docv)." in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let trace_format_arg =
  let doc =
    "Trace format: `jsonl' (one event per line) or `chrome' (trace_event \
     JSON, opens in Perfetto / chrome://tracing)."
  in
  Arg.(
    value
    & opt (enum [ ("jsonl", `Jsonl); ("chrome", `Chrome) ]) `Jsonl
    & info [ "trace-format" ] ~docv:"FMT" ~doc)

let metrics_json_arg =
  let doc = "Write the run's metrics registry as JSON to $(docv)." in
  Arg.(value & opt (some string) None & info [ "metrics-json" ] ~docv:"FILE" ~doc)

let write_trace path fmt trace =
  let contents =
    match fmt with
    | `Chrome -> Obs.Export.chrome_string trace
    | `Jsonl -> Obs.Export.jsonl trace
  in
  Obs.Export.write_file path contents;
  print_string (Obs.Export.flame trace)

let write_metrics path registry =
  Obs.Export.write_file path (Obs.Json.to_string (Obs.Metrics.to_json registry))

(* Shared performance-observability flags: --sample thins the trace bus
   (monitor-subscribed kinds stay full fidelity), --profile turns on the
   phase profiler, --timeseries samples sim-time windows to a JSON file. *)
let sample_arg =
  let doc =
    "Keep one in $(docv) trace events per kind (deterministic counter, no \
     RNG). Span and quiesce events, and any kind a selected monitor \
     subscribes to, are always kept, so monitor verdicts are identical \
     sampled or not. 1 = full fidelity."
  in
  Arg.(value & opt int 1 & info [ "sample" ] ~docv:"N" ~doc)

let profile_flag_arg =
  let doc =
    "Profile the run: print the hot-phase table (wall time + minor-heap \
     allocation per subsystem/phase) after the metrics."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

let timeseries_file_arg =
  let doc =
    "Sample committed/aborted/blocked rates, WAL flushes, messages, queue \
     depth and the stranded gauge into fixed-width sim-time windows and \
     write them as JSON to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "timeseries" ] ~docv:"FILE" ~doc)

let window_arg =
  let doc = "Time-series window width in simulated ms." in
  Arg.(value & opt float 500.0 & info [ "window" ] ~docv:"MS" ~doc)

(* A wall-clock profile: the obs library defaults to Sys.time because it
   cannot link Unix; the CLI can, so runs measure real elapsed time. *)
let fresh_profile () =
  let p = Obs.Profile.create () in
  Obs.Profile.set_clock p Unix.gettimeofday;
  p

let print_profile p =
  Format.printf "%a@?" (Obs.Profile.pp_table ?top:None) p

let write_timeseries path ts =
  Obs.Export.write_file path (Obs.Json.to_string (Obs.Timeseries.to_json ts));
  Printf.printf "wrote %s (%d windows)\n" path
    (List.length (Obs.Timeseries.windows ts))

(* Shared monitor selection: --monitor [SEL] traces the run(s) and gates
   them on the declarative spec monitors instead of the bare history
   oracles. A bare --monitor selects the whole catalogue. *)
let monitor_arg =
  Arg.(
    value
    & opt ~vopt:(Some "all") (some string) None
    & info [ "monitor" ] ~docv:"MONITORS"
        ~doc:
          (Printf.sprintf
             "Trace the run(s) and gate them on the selected declarative spec \
              monitors instead of the bare history oracles; violations make \
              the exit code nonzero. $(docv) is %s. Bare $(b,--monitor) \
              selects `all'."
             Atomrep_chaos.Monitors.selection_doc))

let parse_monitors = function
  | None -> Ok []
  | Some sel -> Atomrep_chaos.Monitors.of_names sel

(* Shared durability flag: which stable-storage model backs every
   repository. `wal' flushes on every append batch; `wal-group-commit'
   defers the flush barrier until a batch carries a commit/abort record. *)
let durability_arg =
  let doc =
    "Stable-storage model: `none' (volatile repositories, the default), \
     `wal' (per-site write-ahead log, flushed on every append batch), or \
     `wal-group-commit' (flush barriers only on batches carrying \
     commit/abort records)."
  in
  Arg.(
    value
    & opt
        (enum [ ("none", `None); ("wal", `Wal); ("wal-group-commit", `Wal_gc) ])
        `None
    & info [ "durability" ] ~docv:"MODE" ~doc)

let durability_of = function
  | `None -> Atomrep_replica.Repository.Volatile
  | `Wal -> Atomrep_replica.Repository.durable ()
  | `Wal_gc -> Atomrep_replica.Repository.durable ~group_commit:true ()

(* Shared crash-safe-termination flags (see Runtime.config). *)
let termination_arg =
  let doc =
    "Crash-safe transaction termination: `none' (coordinator crashes \
     strand in-doubt transactions, the historical behavior), \
     `presumed-abort-only' (durable commit point, recovery redrive, \
     presumed abort), or `cooperative' (plus participant-driven quorum \
     termination and the orphan reaper)."
  in
  Arg.(
    value
    & opt
        (enum
           [
             ("none", Atomrep_txn.Termination.Disabled);
             ("presumed-abort-only", Atomrep_txn.Termination.Presumed_abort_only);
             ("cooperative", Atomrep_txn.Termination.Cooperative);
           ])
        Atomrep_txn.Termination.Disabled
    & info [ "termination" ] ~docv:"MODE" ~doc)

let deadlock_arg =
  let doc =
    "Deadlock policy for blocked operations: `none' (backoff and retry \
     budgets only), `detect' (waits-for cycle detection, youngest victim), \
     or `wound-wait' (older waiters preempt younger blockers)."
  in
  Arg.(
    value
    & opt
        (enum
           [
             ("none", Atomrep_replica.Runtime.No_deadlock);
             ("detect", Atomrep_replica.Runtime.Detect);
             ("wound-wait", Atomrep_replica.Runtime.Wound_wait);
           ])
        Atomrep_replica.Runtime.No_deadlock
    & info [ "deadlock" ] ~docv:"POLICY" ~doc)

let takeover_arg =
  let doc =
    "Coordinator takeover: a participant that finds a dead coordinator's \
     in-doubt transaction wins an epoch-fenced takeover lease, adopts the \
     drive from the quorum's sticky votes, and force-writes the adopted \
     decision to its own durable decision log. Only meaningful with \
     --termination cooperative."
  in
  Arg.(value & flag & info [ "takeover" ] ~doc)

(* Shared retry-budget flag: caps retry amplification (conflict backoffs,
   commit-quorum re-probes, and commit re-drives all spend from one
   per-transaction pot). 0 keeps the historical unlimited behavior. *)
let retry_budget_arg =
  let doc =
    "Per-transaction retry budget shared by conflict backoffs, commit-quorum \
     re-probes and commit re-drives; exhaustion aborts the transaction \
     (or gives the commit drive up as in-doubt). 0 = unlimited."
  in
  Arg.(value & opt int 0 & info [ "retry-budget" ] ~docv:"N" ~doc)

let retry_budget_of n = if n <= 0 then max_int else n

(* Shared gray-failure flags: --fail-slow injects persistent fail-slow
   sites, --hedge / --demote turn the mitigation layer on (Runtime.gray). *)
let hedge_arg =
  let doc =
    "Hedge quorum rounds: fire each quorum gather the moment a satisfying \
     vote set has answered, and re-issue straggling calls to a spare \
     quorum member after an adaptive percentile delay (repositories are \
     idempotent, so first-reply-wins is safe)."
  in
  Arg.(value & flag & info [ "hedge" ] ~doc)

let demote_arg =
  let doc =
    "Demote slow-suspected sites: steer quorum vote-set selection away \
     from sites the latency detector grades fail-slow (never below the \
     quorum floor), and — when the reconfiguration coordinator runs — \
     plan persistent offenders out of the epoch."
  in
  Arg.(value & flag & info [ "demote" ] ~doc)

let gray_of ~hedge ~demote =
  if hedge || demote then
    Some { Atomrep_replica.Runtime.default_gray with hedge; demote }
  else None

let fail_slow_arg =
  let doc =
    "Comma-separated fail-slow injections, each SITE[:MODE[:FACTOR[:ONSET]]]: \
     from ONSET ms on (default 0), SITE answers with service times inflated \
     by FACTOR (default 8) under shape MODE — `constant', `heavy' (mild \
     base inflation with occasional large spikes), or `creep' (degradation \
     ramping up to FACTOR). The site stays up: a gray failure, not a crash."
  in
  Arg.(value & opt string "" & info [ "fail-slow" ] ~docv:"SPEC" ~doc)

let parse_fail_slow spec =
  let mode_of name factor =
    match name with
    | "constant" -> Ok (Atomrep_sim.Network.Slow_constant factor)
    | "heavy" ->
      Ok
        (Atomrep_sim.Network.Slow_heavy
           {
             factor = 1.0 +. ((factor -. 1.0) /. 4.0);
             p_tail = 0.2;
             tail_factor = 2.0 *. factor;
           })
    | "creep" ->
      Ok (Atomrep_sim.Network.Slow_creeping { rate = factor /. 1000.0; cap = factor })
    | other ->
      Error (Printf.sprintf "unknown fail-slow mode %S (constant|heavy|creep)" other)
  in
  let item s =
    let bad () =
      Error (Printf.sprintf "bad fail-slow spec %S (SITE[:MODE[:FACTOR[:ONSET]]])" s)
    in
    match String.split_on_char ':' s with
    | ([ _ ] | [ _; _ ] | [ _; _; _ ] | [ _; _; _; _ ]) as parts -> (
      let site = int_of_string_opt (List.nth parts 0) in
      let mode_name = if List.length parts > 1 then List.nth parts 1 else "constant" in
      let factor =
        if List.length parts > 2 then float_of_string_opt (List.nth parts 2)
        else Some 8.0
      in
      let onset =
        if List.length parts > 3 then float_of_string_opt (List.nth parts 3)
        else Some 0.0
      in
      match site, factor, onset with
      | Some site, Some factor, Some onset ->
        Result.map (fun mode -> (site, onset, mode)) (mode_of mode_name factor)
      | _ -> bad ())
    | _ -> bad ()
  in
  if String.equal (String.trim spec) "" then Ok []
  else
    List.fold_right
      (fun s acc ->
        match acc, item s with
        | Error e, _ -> Error e
        | _, Error e -> Error e
        | Ok rest, Ok it -> Ok (it :: rest))
      (String.split_on_char ',' spec)
      (Ok [])

let check_fail_slow_sites ~n_sites fs =
  match List.find_opt (fun (s, _, _) -> s < 0 || s >= n_sites) fs with
  | Some (s, _, _) ->
    Error
      (Printf.sprintf
         "fail-slow site %d out of range (cluster has %d sites: 0..%d)" s
         n_sites (n_sites - 1))
  | None -> Ok fs

let print_gray_metrics (m : Atomrep_replica.Runtime.metrics) =
  let open Atomrep_replica in
  Printf.printf
    "gray: hedges=%d wins=%d late-replies=%d demoted-rounds=%d slow-suspicions=%d\n"
    m.Runtime.hedges m.Runtime.hedge_wins m.Runtime.hedge_late
    m.Runtime.demoted_rounds m.Runtime.slow_suspicions

let print_takeover_metrics (m : Atomrep_replica.Runtime.metrics) =
  let open Atomrep_replica in
  Printf.printf
    "takeover: leases=%d adoptions=%d fenced=%d contended=%d \
     rebroadcasts-suppressed=%d stranded-live=%d\n"
    m.Runtime.takeover_leases m.Runtime.takeover_adoptions
    m.Runtime.takeover_fenced m.Runtime.takeover_contended
    m.Runtime.rebroadcasts_suppressed m.Runtime.stranded_live

let print_termination_metrics (m : Atomrep_replica.Runtime.metrics) =
  let open Atomrep_replica in
  Printf.printf
    "termination: coop-commits=%d coop-aborts=%d presumed=%d deadlock=%d \
     redrives=%d orphans-reaped=%d stranded=%d decision-writes=%d mean \
     blocked %.1f ms\n"
    m.Runtime.coop_commits m.Runtime.coop_aborts m.Runtime.presumed_aborts
    m.Runtime.deadlock_aborts m.Runtime.redrives m.Runtime.orphans_reaped
    m.Runtime.stranded_entries m.Runtime.decision_log_writes
    (Summary.mean m.Runtime.blocked_latency)

let print_wal_metrics (m : Atomrep_replica.Runtime.metrics) =
  let open Atomrep_replica in
  Printf.printf
    "wal: flushes=%d (records=%d, lost=%d, disk-full=%d) checkpoints=%d \
     torn=%d rotted=%d storage-faults=%d\n"
    m.Runtime.wal_flushes m.Runtime.wal_flushed_records m.Runtime.wal_lost_flushes
    m.Runtime.wal_full_rejections m.Runtime.wal_checkpoints m.Runtime.wal_torn_writes
    m.Runtime.wal_rotted m.Runtime.storage_faults;
  Printf.printf
    "recovery: %d replays (%d corrupt), mean replay %.1f records, mean cost \
     %.2f ms\n"
    m.Runtime.recoveries m.Runtime.recoveries_corrupt
    (Summary.mean m.Runtime.recovery_replay)
    (Summary.mean m.Runtime.recovery_cost)

let find_spec name =
  match Type_registry.find name with
  | Some spec -> Ok spec
  | None ->
    Error
      (Printf.sprintf "unknown type %S; available: %s" name
         (String.concat ", " Type_registry.names))

let type_arg =
  let doc = "Data type to analyze (see the `types' subcommand)." in
  Arg.(required & opt (some string) None & info [ "t"; "type" ] ~docv:"TYPE" ~doc)

let max_len_arg =
  let doc = "History-length bound for the exhaustive analyses." in
  Arg.(value & opt int 4 & info [ "max-len" ] ~docv:"N" ~doc)

(* --- analyze --- *)

let analyze_cmd =
  let run type_name max_len hybrid_search =
    match find_spec type_name with
    | Error e ->
      prerr_endline e;
      1
    | Ok spec ->
      let hybrid =
        if hybrid_search then
          Analysis.Search { max_events = max_len; max_actions = 3; universe = None }
        else Analysis.Skip
      in
      let analysis = Analysis.analyze ~max_len ~hybrid spec in
      Format.printf "%a@." Analysis.pp_report analysis;
      0
  in
  let hybrid_arg =
    let doc =
      "Also search for minimal hybrid dependency relations (bounded, can be \
       slow for large event universes)."
    in
    Arg.(value & flag & info [ "hybrid-search" ] ~doc)
  in
  let doc = "Compute a data type's dependency relations" in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(const run $ type_arg $ max_len_arg $ hybrid_arg)

(* --- quorums --- *)

let quorums_cmd =
  let run type_name max_len n_sites property p =
    match find_spec type_name with
    | Error e ->
      prerr_endline e;
      1
    | Ok spec ->
      let relation =
        match property with
        | "static" -> Ok (Static_dep.minimal spec ~max_len)
        | "dynamic" -> Ok (Dynamic_dep.minimal spec ~max_len)
        | other -> Error (Printf.sprintf "unknown property %S (static|dynamic)" other)
      in
      (match relation with
       | Error e ->
         prerr_endline e;
         1
       | Ok relation ->
         let constraints = Op_constraint.of_relation relation in
         List.iter (fun c -> Format.printf "%a@." Op_constraint.pp c) constraints;
         let ops =
           List.sort_uniq String.compare
             (List.map
                (fun (inv : Atomrep_history.Event.Invocation.t) -> inv.op)
                spec.Serial_spec.invocations)
         in
         let assignments = Assignment.enumerate ~n_sites ~ops constraints in
         Printf.printf "\n%d valid threshold assignments on %d sites\n"
           (List.length assignments) n_sites;
         let mix = List.map (fun op -> (op, 1.0)) ops in
         (match Assignment.best_for_mix ~p ~mix assignments with
          | None -> print_endline "no valid assignment"
          | Some best ->
            Format.printf "best for a uniform mix at p=%.2f: %a@." p Assignment.pp best;
            List.iter
              (fun op ->
                Printf.printf "  availability(%s) = %.4f\n" op
                  (Assignment.availability best ~p op))
              ops);
         0)
  in
  let sites_arg =
    Arg.(value & opt int 5 & info [ "n"; "sites" ] ~docv:"SITES" ~doc:"Replication degree.")
  in
  let property_arg =
    Arg.(
      value & opt string "static"
      & info [ "property" ] ~docv:"PROP" ~doc:"static or dynamic.")
  in
  let p_arg =
    Arg.(
      value & opt float 0.9
      & info [ "p" ] ~docv:"P" ~doc:"Per-site up probability for availability.")
  in
  let doc = "Enumerate valid quorum assignments for a data type" in
  Cmd.v (Cmd.info "quorums" ~doc)
    Term.(const run $ type_arg $ max_len_arg $ sites_arg $ property_arg $ p_arg)

(* --- simulate --- *)

let simulate_cmd =
  let run scheme_name n_txns n_sites seed mtbf reconfigure hedge demote fail_slow
      durability termination deadlock takeover retry_budget monitor trace_file
      trace_format metrics_json sample profile_on ts_file window =
    let scheme =
      match scheme_name with
      | "hybrid" -> Ok Atomrep_replica.Replicated.Hybrid
      | "static" -> Ok Atomrep_replica.Replicated.Static
      | "locking" -> Ok Atomrep_replica.Replicated.Locking
      | other -> Error (Printf.sprintf "unknown scheme %S (hybrid|static|locking)" other)
    in
    match
      ( scheme, parse_monitors monitor,
        Result.bind (parse_fail_slow fail_slow)
          (check_fail_slow_sites ~n_sites) )
    with
    | Error e, _, _ | _, Error e, _ | _, _, Error e ->
      prerr_endline e;
      1
    | Ok scheme, Ok monitors, Ok fail_slow ->
      let open Atomrep_replica in
      let install_faults net =
        if mtbf > 0.0 then Atomrep_sim.Fault.crash_recover_all net ~mtbf ~mttr:150.0
      in
      (* Monitors fold the trace, so selecting any forces a bus even when
         no --trace file was asked for. *)
      let trace =
        match trace_file, monitors with
        | Some _, _ | None, _ :: _ -> Some (Obs.Trace.create ~n_sites ())
        | None, [] -> None
      in
      (match trace with
       | Some tr when sample > 1 ->
         Obs.Trace.set_sampling tr ~every:sample
           ~forced:(Atomrep_chaos.Monitors.forced monitors) ()
       | _ -> ());
      let profile = if profile_on then fresh_profile () else Obs.Profile.null in
      let timeseries =
        match ts_file with
        | Some _ -> Obs.Timeseries.create ~width:window ()
        | None -> Obs.Timeseries.null
      in
      let cfg =
        {
          Runtime.default_config with
          profile;
          timeseries;
          scheme;
          n_txns;
          n_sites;
          seed;
          install_faults;
          trace;
          objects =
            [
              {
                Runtime.obj_name = "queue";
                obj_spec = Queue_type.spec;
                obj_relation = Static_dep.minimal Queue_type.spec ~max_len:4;
                obj_assignment = Runtime.default_queue_assignment ~n_sites;
                obj_members = None;
              };
            ];
          reconfig = (if reconfigure then Some Runtime.default_reconfig else None);
          gray = gray_of ~hedge ~demote;
          fail_slow;
          durability = durability_of durability;
          termination;
          deadlock;
          takeover;
          retry_budget = retry_budget_of retry_budget;
        }
      in
      let outcome = Runtime.run cfg in
      let m = outcome.Runtime.metrics in
      Printf.printf
        "scheme=%s txns=%d committed=%d aborted=%d (unavailable=%d rejected=%d \
         conflict=%d) blocked-waits=%d\n"
        (Replicated.scheme_name scheme)
        n_txns m.Runtime.committed m.Runtime.aborted m.Runtime.unavailable_aborts
        m.Runtime.rejected_aborts m.Runtime.conflict_aborts m.Runtime.blocked_waits;
      Printf.printf "mean txn latency: %.1f ms over %.1f ms simulated\n"
        (Summary.mean m.Runtime.txn_latency)
        m.Runtime.duration;
      Printf.printf
        "messages: sent=%d dropped=%d duplicated=%d dead-dest=%d rpc-timeouts=%d\n"
        m.Runtime.msgs_sent m.Runtime.msgs_dropped m.Runtime.msgs_duplicated
        m.Runtime.msgs_dead_dest m.Runtime.rpc_timeouts;
      if reconfigure then
        Printf.printf
          "reconfigurations: %d ok (%d refused, %d failed), final epoch %d, \
           detector transitions %d\n"
          m.Runtime.reconfigs m.Runtime.reconfigs_refused m.Runtime.reconfigs_failed
          m.Runtime.final_epoch m.Runtime.suspicion_transitions;
      if hedge || demote then print_gray_metrics m;
      if durability <> `None then print_wal_metrics m;
      if
        termination <> Atomrep_txn.Termination.Disabled
        || deadlock <> Runtime.No_deadlock
      then print_termination_metrics m;
      if takeover then print_takeover_metrics m;
      if retry_budget > 0 then
        Printf.printf "retries: spent=%d budget-exhausted=%d\n"
          m.Runtime.retries_spent m.Runtime.retries_budget_exhausted;
      (* The oracles gate the exit code so scripted runs can fail hard:
         the two history oracles by default, the selected spec monitors
         under --monitor. *)
      let failures =
        match monitors, trace with
        | [], _ | _, None ->
          Runtime.check_atomicity cfg outcome @ Runtime.check_common_order cfg outcome
        | entries, Some tr ->
          Obs.Spec_monitor.failures
            (Atomrep_chaos.Monitors.run entries
               { Atomrep_chaos.Monitors.cfg; outcome }
               tr)
      in
      (match failures with
       | [] ->
         if monitors = [] then print_endline "atomicity check: OK"
         else
           Printf.printf "monitors: OK (%s)\n"
             (String.concat ", "
                (List.map
                   (fun (e : Atomrep_chaos.Monitors.entry) ->
                     e.Atomrep_chaos.Monitors.e_name)
                   monitors))
       | fs -> List.iter (fun (o, f) -> Printf.printf "VIOLATION %s: %s\n" o f) fs);
      (match trace with
       | Some tr when sample > 1 ->
         Printf.printf "trace sampling: 1/%d, kept=%d sampled-out=%d\n"
           (Obs.Trace.sampling tr)
           (List.length (Obs.Trace.events tr))
           (Obs.Trace.sampled_out tr)
       | _ -> ());
      if profile_on then print_profile profile;
      (match ts_file with
       | Some path -> write_timeseries path timeseries
       | None -> ());
      (match trace_file, trace with
       | Some path, Some tr -> write_trace path trace_format tr
       | _ -> ());
      (match metrics_json with
       | Some path -> write_metrics path outcome.Runtime.registry
       | None -> ());
      if failures = [] then 0 else 1
  in
  let scheme_arg =
    Arg.(
      value & opt string "hybrid"
      & info [ "scheme" ] ~docv:"SCHEME" ~doc:"hybrid, static, or locking.")
  in
  let txns_arg =
    Arg.(value & opt int 100 & info [ "txns" ] ~docv:"N" ~doc:"Transactions to run.")
  in
  let sites_arg =
    Arg.(value & opt int 3 & info [ "n"; "sites" ] ~docv:"SITES" ~doc:"Replication degree.")
  in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.") in
  let mtbf_arg =
    Arg.(
      value & opt float 0.0
      & info [ "mtbf" ] ~docv:"MS" ~doc:"Mean time between site failures (0 = none).")
  in
  let reconfigure_arg =
    Arg.(
      value & flag
      & info [ "reconfigure" ]
          ~doc:
            "Enable the failure-detector-driven epoch reconfiguration \
             coordinator (hybrid/locking only; refused under static).")
  in
  let doc = "Run the replicated-queue simulator" in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(
      const run $ scheme_arg $ txns_arg $ sites_arg $ seed_arg $ mtbf_arg
      $ reconfigure_arg $ hedge_arg $ demote_arg $ fail_slow_arg
      $ durability_arg $ termination_arg $ deadlock_arg
      $ takeover_arg $ retry_budget_arg $ monitor_arg $ trace_file_arg
      $ trace_format_arg $ metrics_json_arg $ sample_arg $ profile_flag_arg
      $ timeseries_file_arg $ window_arg)

(* --- chaos --- *)

let parse_schemes names =
  let parse = function
    | "hybrid" -> Ok Atomrep_replica.Replicated.Hybrid
    | "static" -> Ok Atomrep_replica.Replicated.Static
    | "locking" -> Ok Atomrep_replica.Replicated.Locking
    | other -> Error (Printf.sprintf "unknown scheme %S (hybrid|static|locking)" other)
  in
  List.fold_right
    (fun name acc ->
      match acc, parse name with
      | Error e, _ -> Error e
      | _, Error e -> Error e
      | Ok rest, Ok s -> Ok (s :: rest))
    (String.split_on_char ',' names)
    (Ok [])

let parse_profiles names =
  let module Campaign = Atomrep_chaos.Campaign in
  if String.equal names "all" then Ok Campaign.builtin_profiles
  else
    List.fold_right
      (fun name acc ->
        match acc, Campaign.find_profile name with
        | Error e, _ -> Error e
        | _, None ->
          Error
            (Printf.sprintf "unknown profile %S; known: all, %s" name
               (String.concat ", " Campaign.profile_names))
        | Ok rest, Some p -> Ok (p :: rest))
      (String.split_on_char ',' names)
      (Ok [])

let chaos_cmd =
  let module Campaign = Atomrep_chaos.Campaign in
  let run schemes profiles seeds txns intensity repro seed reconfig overload gray
      hedge demote fail_slow durability termination deadlock takeover
      retry_budget monitor trace_file trace_format metrics_json postmortem_dir
      sample =
    (* Validate --fail-slow sites against the base the flags select, before
       any run starts — an out-of-range site would otherwise crash mid-sweep
       on the raw per-site slow array. *)
    let base_n_sites =
      (if overload then Campaign.overload_base
       else if gray then Campaign.gray_base
       else if reconfig then Campaign.reconfig_base
       else Campaign.default_base)
        .Atomrep_replica.Runtime.n_sites
    in
    match
      ( parse_schemes schemes,
        parse_profiles profiles,
        parse_monitors monitor,
        Result.bind (parse_fail_slow fail_slow)
          (check_fail_slow_sites ~n_sites:base_n_sites) )
    with
    | Error e, _, _, _ | _, Error e, _, _ | _, _, Error e, _ | _, _, _, Error e ->
      prerr_endline e;
      1
    | Ok schemes, Ok profiles, Ok monitors, Ok fail_slow ->
      let base =
        if overload then Campaign.overload_base
        else if gray then Campaign.gray_base
        else if reconfig then Campaign.reconfig_base
        else Campaign.default_base
      in
      let base =
        if retry_budget > 0 then
          { base with Atomrep_replica.Runtime.retry_budget }
        else base
      in
      (* --hedge/--demote overlay the mitigation policy on whatever base was
         picked; --fail-slow adds deterministic per-site slow injections on
         top of the profile's nemesis schedule. *)
      let base =
        match gray_of ~hedge ~demote with
        | Some g -> { base with Atomrep_replica.Runtime.gray = Some g }
        | None -> base
      in
      let base =
        match fail_slow with
        | [] -> base
        | fs -> { base with Atomrep_replica.Runtime.fail_slow = fs }
      in
      (* Chaos-tuned durability: small segments and an aggressive checkpoint
         period (storage_base's tuning) so campaign-length runs roll and
         compact segments — the storage profiles need something to bite. *)
      let base =
        match durability with
        | `None -> base
        | `Wal ->
          {
            base with
            Atomrep_replica.Runtime.durability =
              Atomrep_replica.Repository.durable ~segment_records:16
                ~checkpoint_every:48 ();
          }
        | `Wal_gc ->
          {
            base with
            Atomrep_replica.Runtime.durability =
              Campaign.storage_base.Atomrep_replica.Runtime.durability;
          }
      in
      let base =
        { base with Atomrep_replica.Runtime.termination; deadlock; takeover }
      in
      if repro then begin
        (* Replay one reproducer tuple per scheme/profile given; all the
           replays share one trace bus, so the exported file covers the
           whole invocation. *)
        let trace =
          match trace_file with
          | Some _ ->
            Some (Obs.Trace.create ~n_sites:base.Atomrep_replica.Runtime.n_sites ())
          | None -> None
        in
        let failed = ref false in
        let last_registry = ref None in
        List.iter
          (fun scheme ->
            List.iter
              (fun profile ->
                let outcome, failures =
                  Campaign.reproduce ~base ~monitors ~sample ?trace ~scheme
                    ~profile ~seed ~n_txns:txns ~intensity ()
                in
                last_registry := Some outcome.Atomrep_replica.Runtime.registry;
                Printf.printf "%s/%s seed=%d txns=%d intensity=%g: committed=%d\n"
                  (Atomrep_replica.Replicated.scheme_name scheme)
                  profile.Campaign.profile_name seed txns intensity
                  outcome.Atomrep_replica.Runtime.metrics
                    .Atomrep_replica.Runtime.committed;
                if durability <> `None then
                  print_wal_metrics outcome.Atomrep_replica.Runtime.metrics;
                if
                  termination <> Atomrep_txn.Termination.Disabled
                  || deadlock <> Atomrep_replica.Runtime.No_deadlock
                then
                  print_termination_metrics outcome.Atomrep_replica.Runtime.metrics;
                if takeover then
                  print_takeover_metrics outcome.Atomrep_replica.Runtime.metrics;
                match failures with
                | [] -> print_endline "atomicity check: OK"
                | fs ->
                  failed := true;
                  List.iter
                    (fun (o, f) -> Printf.printf "VIOLATION %s: %s\n" o f)
                    fs)
              profiles)
          schemes;
        (match trace_file, trace with
         | Some path, Some tr -> write_trace path trace_format tr
         | _ -> ());
        (match metrics_json, !last_registry with
         | Some path, Some registry -> write_metrics path registry
         | _ -> ());
        if !failed then 1 else 0
      end
      else begin
        let report =
          Campaign.run_campaign ~base ~n_txns:txns ~intensity ~monitors ~sample
            ?postmortem_dir ~schemes ~profiles ~seeds ()
        in
        Format.printf "%a" Campaign.pp_report report;
        if report.Campaign.violations = [] then 0 else 1
      end
  in
  let schemes_arg =
    Arg.(
      value
      & opt string "static,hybrid,locking"
      & info [ "schemes" ] ~docv:"SCHEMES" ~doc:"Comma-separated schemes to sweep.")
  in
  let profiles_arg =
    Arg.(
      value & opt string "all"
      & info [ "profiles" ] ~docv:"PROFILES"
          ~doc:"Comma-separated fault profiles, or `all'.")
  in
  let seeds_arg =
    Arg.(
      value & opt int 10
      & info [ "seeds" ] ~docv:"N" ~doc:"Sweep seeds 0..N-1 per scheme x profile.")
  in
  let txns_arg =
    Arg.(value & opt int 30 & info [ "txns" ] ~docv:"N" ~doc:"Transactions per run.")
  in
  let intensity_arg =
    Arg.(
      value & opt float 1.0
      & info [ "intensity" ] ~docv:"K" ~doc:"Fault intensity scale (1.0 = profile default).")
  in
  let repro_arg =
    Arg.(
      value & flag
      & info [ "repro" ]
          ~doc:"Replay a single reproducer tuple (use --seed) instead of sweeping.")
  in
  let seed_arg =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc:"Seed for --repro.")
  in
  let reconfig_arg =
    Arg.(
      value & flag
      & info [ "reconfig" ]
          ~doc:
            "Campaign against the reconfiguration base: five sites, the \
             epoch coordinator enabled (pairs well with --profiles kills).")
  in
  let overload_arg =
    Arg.(
      value & flag
      & info [ "overload" ]
          ~doc:
            "Campaign against the overload base: a precomputed flash-crowd \
             open-loop arrival plan over admission control, shed-by-class, \
             a finite retry budget and the per-site circuit breaker (pairs \
             with --profiles overload_storm and the shed_safety monitor). \
             --txns caps how many planned arrivals are dispatched.")
  in
  let gray_arg =
    Arg.(
      value & flag
      & info [ "gray" ]
          ~doc:
            "Campaign against the gray base: the gray-failure mitigation \
             layer on — hedged early-quorum rounds, latency scoring, \
             slow-site demotion (pairs with --profiles gray_storm and the \
             hedge_safety monitor).")
  in
  let postmortem_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "postmortem-dir" ] ~docv:"DIR"
          ~doc:
            "Replay each shrunk violation under tracing and write a causal \
             postmortem plus the full trace into $(docv).")
  in
  let doc = "Run a fault-injection campaign and check atomicity after every run" in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(
      const run $ schemes_arg $ profiles_arg $ seeds_arg $ txns_arg $ intensity_arg
      $ repro_arg $ seed_arg $ reconfig_arg $ overload_arg $ gray_arg
      $ hedge_arg $ demote_arg $ fail_slow_arg $ durability_arg
      $ termination_arg $ deadlock_arg $ takeover_arg $ retry_budget_arg
      $ monitor_arg $ trace_file_arg $ trace_format_arg $ metrics_json_arg
      $ postmortem_dir_arg $ sample_arg)

(* --- load --- *)

let load_cmd =
  let module Openloop = Atomrep_workload.Openloop in
  let run scheme_name seed plan_seed rate mult curve load_profile n_objects
      zipf sessions n_sites horizon drain no_admission max_in_flight queue_limit
      deadline shed_policy no_breaker hedge demote fail_slow retry_budget
      termination deadlock monitor trace_file trace_format metrics_json sample
      ts_file window =
    let scheme =
      match scheme_name with
      | "hybrid" -> Ok Atomrep_replica.Replicated.Hybrid
      | "static" -> Ok Atomrep_replica.Replicated.Static
      | "locking" -> Ok Atomrep_replica.Replicated.Locking
      | other -> Error (Printf.sprintf "unknown scheme %S (hybrid|static|locking)" other)
    in
    let load_profile =
      match Openloop.profile_of_string load_profile with
      | Some p -> Ok p
      | None ->
        Error
          (Printf.sprintf
             "unknown load profile %S (read-mostly|write-heavy|queue-fanout)"
             load_profile)
    in
    let shed_policy =
      match Atomrep_replica.Runtime.shed_policy_of_string shed_policy with
      | Some p -> Ok p
      | None ->
        Error
          (Printf.sprintf "unknown shed policy %S (reject-newest|shed-reads-first)"
             shed_policy)
    in
    match
      scheme, load_profile, shed_policy, parse_monitors monitor,
      Result.bind (parse_fail_slow fail_slow) (check_fail_slow_sites ~n_sites)
    with
    | Error e, _, _, _, _
    | _, Error e, _, _, _
    | _, _, Error e, _, _
    | _, _, _, Error e, _
    | _, _, _, _, Error e ->
      prerr_endline e;
      1
    | Ok scheme, Ok load_profile, Ok shed_policy, Ok monitors, Ok fail_slow ->
      let open Atomrep_replica in
      let curve =
        match curve with
        | `Constant -> Openloop.Constant
        | `Ramp -> Openloop.Ramp 4.0
        | `Diurnal -> Openloop.Diurnal { trough = 0.3; period = horizon /. 2.0 }
        | `Flash_crowd ->
          Openloop.Flash_crowd
            { at = horizon /. 4.0; duration = horizon /. 8.0; mult = 6.0 }
      in
      let plan_seed = if plan_seed < 0 then seed else plan_seed in
      let plan =
        Openloop.plan ~curve ~profile:load_profile ~n_objects ~zipf_theta:zipf
          ~n_sites ~n_sessions:sessions ~seed:plan_seed
          ~rate:(rate *. mult /. 1000.0) ~horizon ()
      in
      let admission =
        if no_admission then None
        else
          Some
            {
              Runtime.max_in_flight;
              queue_limit;
              deadline = (if deadline <= 0.0 then Float.infinity else deadline);
              adm_shed_policy = shed_policy;
              adm_breaker =
                (if no_breaker then None else Some Runtime.default_breaker);
            }
      in
      let trace =
        match trace_file, monitors with
        | Some _, _ | None, _ :: _ -> Some (Obs.Trace.create ~n_sites ())
        | None, [] -> None
      in
      (match trace with
       | Some tr when sample > 1 ->
         Obs.Trace.set_sampling tr ~every:sample
           ~forced:(Atomrep_chaos.Monitors.forced monitors) ()
       | _ -> ());
      let timeseries =
        match ts_file with
        | Some _ -> Obs.Timeseries.create ~width:window ()
        | None -> Obs.Timeseries.null
      in
      let cfg =
        Openloop.apply plan
          {
            Runtime.default_config with
            scheme;
            seed;
            n_sites;
            horizon = horizon +. drain;
            termination;
            deadlock;
            admission;
            gray = gray_of ~hedge ~demote;
            fail_slow;
            retry_budget = retry_budget_of retry_budget;
            trace;
            timeseries;
          }
      in
      let outcome = Runtime.run cfg in
      let m = outcome.Runtime.metrics in
      let offered = Openloop.n_txns plan in
      Printf.printf
        "plan: %d arrivals over %.0f ms (curve=%s profile=%s objects=%d \
         zipf=%.2f sessions=%d seed=%d)\n"
        offered horizon (Openloop.curve_name curve)
        (Openloop.profile_name load_profile)
        n_objects zipf sessions plan_seed;
      Printf.printf
        "scheme=%s admission=%s offered=%.1f/s committed=%d aborted=%d \
         (shed=%d unavailable=%d conflict=%d)\n"
        (Replicated.scheme_name scheme)
        (if no_admission then "off" else "on")
        (float_of_int offered /. horizon *. 1000.0)
        m.Runtime.committed m.Runtime.aborted m.Runtime.shed
        m.Runtime.unavailable_aborts m.Runtime.conflict_aborts;
      Printf.printf "goodput=%.2f/s over %.1f ms simulated\n"
        (if m.Runtime.duration > 0.0 then
           float_of_int m.Runtime.committed /. m.Runtime.duration *. 1000.0
         else 0.0)
        m.Runtime.duration;
      Printf.printf "retries: spent=%d budget-exhausted=%d breaker-trips=%d\n"
        m.Runtime.retries_spent m.Runtime.retries_budget_exhausted
        m.Runtime.breaker_trips;
      if hedge || demote then print_gray_metrics m;
      if Summary.count m.Runtime.txn_latency > 0 then
        Printf.printf "commit latency: p50=%.1f ms p99=%.1f ms\n"
          (Summary.percentile m.Runtime.txn_latency 0.50)
          (Summary.percentile m.Runtime.txn_latency 0.99);
      if Summary.count m.Runtime.sojourn > 0 then
        Printf.printf "sojourn: mean=%.1f ms p99=%.1f ms max=%.1f ms\n"
          (Summary.mean m.Runtime.sojourn)
          (Summary.percentile m.Runtime.sojourn 0.99)
          (Summary.max_value m.Runtime.sojourn);
      let failures =
        match monitors, trace with
        | [], _ | _, None ->
          Runtime.check_atomicity cfg outcome @ Runtime.check_common_order cfg outcome
        | entries, Some tr ->
          Obs.Spec_monitor.failures
            (Atomrep_chaos.Monitors.run entries
               { Atomrep_chaos.Monitors.cfg; outcome }
               tr)
      in
      (match failures with
       | [] ->
         if monitors = [] then print_endline "atomicity check: OK"
         else
           Printf.printf "monitors: OK (%s)\n"
             (String.concat ", "
                (List.map
                   (fun (e : Atomrep_chaos.Monitors.entry) ->
                     e.Atomrep_chaos.Monitors.e_name)
                   monitors))
       | fs -> List.iter (fun (o, f) -> Printf.printf "VIOLATION %s: %s\n" o f) fs);
      (match ts_file with
       | Some path -> write_timeseries path timeseries
       | None -> ());
      (match trace_file, trace with
       | Some path, Some tr -> write_trace path trace_format tr
       | _ -> ());
      (match metrics_json with
       | Some path -> write_metrics path outcome.Runtime.registry
       | None -> ());
      if failures = [] then 0 else 1
  in
  let scheme_arg =
    Arg.(
      value & opt string "hybrid"
      & info [ "scheme" ] ~docv:"SCHEME" ~doc:"hybrid, static, or locking.")
  in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Engine RNG seed.") in
  let plan_seed_arg =
    Arg.(
      value & opt int (-1)
      & info [ "plan-seed" ] ~docv:"SEED"
          ~doc:
            "Seed for the arrival plan's private stream (default: --seed). \
             Fixing it while sweeping --seed replays one offered load \
             against many engine schedules.")
  in
  let rate_arg =
    Arg.(
      value & opt float 10.0
      & info [ "rate" ] ~docv:"TPS" ~doc:"Base offered load, transactions per second.")
  in
  let mult_arg =
    Arg.(
      value & opt float 1.0
      & info [ "mult" ] ~docv:"K"
          ~doc:"Offered-load multiplier on --rate (the knob load sweeps turn).")
  in
  let curve_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("constant", `Constant); ("ramp", `Ramp); ("diurnal", `Diurnal);
               ("flash-crowd", `Flash_crowd);
             ])
          `Constant
      & info [ "curve" ] ~docv:"CURVE"
          ~doc:
            "Rate shape: `constant', `ramp' (to 4x at the horizon), `diurnal' \
             (sinusoid to 0.3x, two periods), or `flash-crowd' (6x burst in \
             the second quarter).")
  in
  let load_profile_arg =
    Arg.(
      value & opt string "queue-fanout"
      & info [ "load-profile" ] ~docv:"PROFILE"
          ~doc:
            "Workload shape: `read-mostly' (90% counter reads), `write-heavy' \
             (90% counter writes), or `queue-fanout' (enq/deq fanned over the \
             objects).")
  in
  let objects_arg =
    Arg.(
      value & opt int 3
      & info [ "objects" ] ~docv:"N" ~doc:"Replicated objects the plan fans over.")
  in
  let zipf_arg =
    Arg.(
      value & opt float 0.9
      & info [ "zipf" ] ~docv:"THETA"
          ~doc:"Zipf skew of object popularity (0 = uniform).")
  in
  let sessions_arg =
    Arg.(
      value & opt int 6
      & info [ "sessions" ] ~docv:"N"
          ~doc:"Client sessions (each pinned to home site session mod sites).")
  in
  let sites_arg =
    Arg.(value & opt int 3 & info [ "n"; "sites" ] ~docv:"SITES" ~doc:"Replication degree.")
  in
  let horizon_arg =
    Arg.(
      value & opt float 12_000.0
      & info [ "horizon" ] ~docv:"MS" ~doc:"Arrival-plan horizon in simulated ms.")
  in
  let drain_arg =
    Arg.(
      value & opt float 8_000.0
      & info [ "drain" ] ~docv:"MS"
          ~doc:"Extra simulated time after the last planned arrival.")
  in
  let no_admission_arg =
    Arg.(
      value & flag
      & info [ "no-admission" ]
          ~doc:
            "Disable admission control: every arrival starts immediately (the \
             collapse-prone baseline load sweeps compare against).")
  in
  let max_in_flight_arg =
    Arg.(
      value & opt int 8
      & info [ "max-in-flight" ] ~docv:"N" ~doc:"Bounded in-flight window.")
  in
  let queue_limit_arg =
    Arg.(
      value & opt int 16
      & info [ "queue-limit" ] ~docv:"N" ~doc:"Bounded admission queue; overflow sheds.")
  in
  let deadline_arg =
    Arg.(
      value & opt float 0.0
      & info [ "deadline" ] ~docv:"MS"
          ~doc:
            "Sojourn deadline: shed transactions still queued (or entering a \
             conflict retry) this long after arrival. 0 = none.")
  in
  let shed_policy_arg =
    Arg.(
      value & opt string "reject-newest"
      & info [ "shed-policy" ] ~docv:"POLICY"
          ~doc:"`reject-newest' or `shed-reads-first' (reads sacrificed before writes).")
  in
  let no_breaker_arg =
    Arg.(
      value & flag
      & info [ "no-breaker" ] ~doc:"Disable the per-site circuit breaker.")
  in
  let doc = "Run an open-loop load sweep point against the simulator" in
  Cmd.v (Cmd.info "load" ~doc)
    Term.(
      const run $ scheme_arg $ seed_arg $ plan_seed_arg $ rate_arg $ mult_arg
      $ curve_arg $ load_profile_arg $ objects_arg $ zipf_arg $ sessions_arg
      $ sites_arg $ horizon_arg $ drain_arg $ no_admission_arg
      $ max_in_flight_arg $ queue_limit_arg $ deadline_arg $ shed_policy_arg
      $ no_breaker_arg $ hedge_arg $ demote_arg $ fail_slow_arg
      $ retry_budget_arg $ termination_arg $ deadlock_arg
      $ monitor_arg $ trace_file_arg $ trace_format_arg $ metrics_json_arg
      $ sample_arg $ timeseries_file_arg $ window_arg)

(* --- perf --- *)

let perf_cmd =
  let run scheme_name n_txns n_sites seed sample window ts_file profile_json =
    let scheme =
      match scheme_name with
      | "hybrid" -> Ok Atomrep_replica.Replicated.Hybrid
      | "static" -> Ok Atomrep_replica.Replicated.Static
      | "locking" -> Ok Atomrep_replica.Replicated.Locking
      | other -> Error (Printf.sprintf "unknown scheme %S (hybrid|static|locking)" other)
    in
    match scheme with
    | Error e ->
      prerr_endline e;
      1
    | Ok scheme ->
      let open Atomrep_replica in
      let module Monitors = Atomrep_chaos.Monitors in
      (* Full observability stack on: trace bus (sampled if asked, with the
         whole monitor catalogue's kinds forced), phase profiler on a real
         wall clock, and the sim-time time-series — so the hot-phase table
         includes engine dispatch, trace publish, and monitor stepping. *)
      let monitors = Monitors.registry in
      let trace = Obs.Trace.create ~n_sites () in
      if sample > 1 then
        Obs.Trace.set_sampling trace ~every:sample
          ~forced:(Monitors.forced monitors) ();
      let profile = fresh_profile () in
      let timeseries = Obs.Timeseries.create ~width:window () in
      let cfg =
        {
          Runtime.default_config with
          scheme;
          n_txns;
          n_sites;
          seed;
          trace = Some trace;
          profile;
          timeseries;
          objects =
            [
              {
                Runtime.obj_name = "queue";
                obj_spec = Queue_type.spec;
                obj_relation = Static_dep.minimal Queue_type.spec ~max_len:4;
                obj_assignment = Runtime.default_queue_assignment ~n_sites;
                obj_members = None;
              };
            ];
        }
      in
      let wall0 = Unix.gettimeofday () in
      let outcome = Runtime.run cfg in
      let failures =
        (* Monitors fold the trace after the run; install the profile again
           so monitor/step shows up in the hot-phase table. *)
        Obs.Profile.with_current profile (fun () ->
            Obs.Spec_monitor.failures
              (Monitors.run monitors { Monitors.cfg; outcome } trace))
      in
      let wall = Unix.gettimeofday () -. wall0 in
      let m = outcome.Runtime.metrics in
      Printf.printf
        "scheme=%s txns=%d committed=%d aborted=%d ops=%d over %.1f ms \
         simulated (%.3f s wall)\n"
        (Replicated.scheme_name scheme)
        n_txns m.Runtime.committed m.Runtime.aborted m.Runtime.ops_done
        m.Runtime.duration wall;
      Printf.printf "trace: %d events kept, %d sampled out (1/%d per kind)\n"
        (List.length (Obs.Trace.events trace))
        (Obs.Trace.sampled_out trace)
        (Obs.Trace.sampling trace);
      print_profile profile;
      write_timeseries ts_file timeseries;
      (match profile_json with
       | Some path ->
         Obs.Export.write_file path (Obs.Json.to_string (Obs.Profile.to_json profile));
         Printf.printf "wrote %s\n" path
       | None -> ());
      (match failures with
       | [] -> Printf.printf "monitors: OK (%d entries)\n" (List.length monitors)
       | fs -> List.iter (fun (o, f) -> Printf.printf "VIOLATION %s: %s\n" o f) fs);
      if failures = [] then 0 else 1
  in
  let scheme_arg =
    Arg.(
      value & opt string "hybrid"
      & info [ "scheme" ] ~docv:"SCHEME" ~doc:"hybrid, static, or locking.")
  in
  let txns_arg =
    Arg.(value & opt int 200 & info [ "txns" ] ~docv:"N" ~doc:"Transactions to run.")
  in
  let sites_arg =
    Arg.(value & opt int 3 & info [ "n"; "sites" ] ~docv:"SITES" ~doc:"Replication degree.")
  in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.") in
  let ts_arg =
    Arg.(
      value & opt string "timeseries.json"
      & info [ "timeseries" ] ~docv:"FILE"
          ~doc:"Write the sim-time time-series as JSON to $(docv).")
  in
  let profile_json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile-json" ] ~docv:"FILE"
          ~doc:"Also write the hot-phase profile as JSON to $(docv).")
  in
  let doc =
    "Profile a monitored run: hot-phase table, trace-sampling stats, and a \
     sim-time time-series"
  in
  Cmd.v (Cmd.info "perf" ~doc)
    Term.(
      const run $ scheme_arg $ txns_arg $ sites_arg $ seed_arg $ sample_arg
      $ window_arg $ ts_arg $ profile_json_arg)

(* --- bench-diff --- *)

let bench_diff_cmd =
  let run dir threshold =
    let entries = Obs.Bench_diff.scan ~dir in
    if entries = [] then begin
      Printf.printf "no BENCH_<n>.json files under %s\n" dir;
      0
    end
    else begin
      Format.printf "%a@." Obs.Bench_diff.pp_trajectory entries;
      match Obs.Bench_diff.gate entries ~threshold with
      | None -> 0
      | Some v ->
        Format.printf "%a@." Obs.Bench_diff.pp_verdict v;
        if v.Obs.Bench_diff.v_regressed then 1 else 0
    end
  in
  let dir_arg =
    Arg.(
      value & pos 0 string "."
      & info [] ~docv:"DIR" ~doc:"Directory holding the BENCH_<n>.json history.")
  in
  let threshold_arg =
    Arg.(
      value & opt float 0.2
      & info [ "threshold" ] ~docv:"FRAC"
          ~doc:
            "Fail (exit 1) when the newest entry's best committed/s falls \
             more than $(docv) below the most recent earlier entry of the \
             same bench kind.")
  in
  let doc = "Gate the committed BENCH_*.json trajectory against regressions" in
  Cmd.v (Cmd.info "bench-diff" ~doc) Term.(const run $ dir_arg $ threshold_arg)

(* --- explore --- *)

let explore_cmd =
  let module Campaign = Atomrep_chaos.Campaign in
  let module Monitors = Atomrep_chaos.Monitors in
  let module Explore = Atomrep_chaos.Explore in
  let module Json = Obs.Json in
  let parse_intensities s =
    List.fold_right
      (fun tok acc ->
        match acc with
        | Error e -> Error e
        | Ok rest -> (
          match float_of_string_opt (String.trim tok) with
          | Some f when f > 0.0 -> Ok (f :: rest)
          | _ -> Error (Printf.sprintf "bad intensity %S" tok)))
      (String.split_on_char ',' s)
      (Ok [])
  in
  (* Explore is the monitored sweep: no --monitor means the whole
     catalogue, unlike chaos where it means the bare history oracles. *)
  let parse_explore_monitors = function
    | None -> Ok Monitors.registry
    | Some sel -> Monitors.of_names sel
  in
  let parse_fixtures = function
    | "all" -> Ok Explore.fixtures
    | sel ->
      List.fold_right
        (fun name acc ->
          match acc, Explore.find_fixture name with
          | Error e, _ -> Error e
          | _, None ->
            Error
              (Printf.sprintf "unknown fixture %S; known: all, %s" name
                 (String.concat ", " Explore.fixture_names))
          | Ok rest, Some f -> Ok (f :: rest))
        (String.split_on_char ',' sel)
        (Ok [])
  in
  let failures_json fs =
    Json.List
      (List.map
         (fun (m, why) -> Json.Obj [ ("monitor", Json.Str m); ("message", Json.Str why) ])
         fs)
  in
  let violation_json (v : Campaign.violation) =
    Json.Obj
      [
        ("scheme", Json.Str (Atomrep_replica.Replicated.scheme_name v.Campaign.v_scheme));
        ("profile", Json.Str v.Campaign.v_profile.Campaign.profile_name);
        ("seed", Json.int v.Campaign.v_seed);
        ("txns", Json.int v.Campaign.v_n_txns);
        ("intensity", Json.Num v.Campaign.v_intensity);
        ("repro", Json.Str (Campaign.reproducer_line v));
        ("failures", failures_json v.Campaign.v_failures);
        ( "postmortem",
          match v.Campaign.v_postmortem with
          | Some p -> Json.Str p
          | None -> Json.Null );
      ]
  in
  let run_replay fixtures monitors =
    let results = List.map (Explore.replay ~monitors) fixtures in
    List.iter
      (fun (r : Explore.replay_result) ->
        let f = r.Explore.rr_fixture in
        Printf.printf "fixture %-22s %s\n" f.Explore.f_name
          (if r.Explore.rr_ok then
             if f.Explore.f_expect_violation then
               Printf.sprintf "OK (violation still reproduces: %d failure(s))"
                 (List.length r.Explore.rr_failures)
             else "OK (clean, expectations hold)"
           else "REGRESSION");
        if not r.Explore.rr_ok then begin
          if f.Explore.f_expect_violation && r.Explore.rr_failures = [] then
            Printf.printf "  expected a violation, run was clean\n";
          List.iter
            (fun (m, why) -> Printf.printf "  unexpected %s: %s\n" m why)
            (if f.Explore.f_expect_violation then [] else r.Explore.rr_failures);
          List.iter
            (fun (what, why) -> Printf.printf "  check %s: %s\n" what why)
            r.Explore.rr_checks
        end)
      results;
    if List.for_all (fun r -> r.Explore.rr_ok) results then 0 else 1
  in
  let run schemes profiles seeds txns intensities domains monitor durability
      termination deadlock takeover ungated replay report_file postmortem_dir
      max_shrinks =
    match parse_explore_monitors monitor with
    | Error e ->
      prerr_endline e;
      1
    | Ok monitors -> (
      match replay with
      | Some sel -> (
        match parse_fixtures sel with
        | Error e ->
          prerr_endline e;
          1
        | Ok fixtures -> run_replay fixtures monitors)
      | None -> (
        match
          (parse_schemes schemes, parse_profiles profiles, parse_intensities intensities)
        with
        | Error e, _, _ | _, Error e, _ | _, _, Error e ->
          prerr_endline e;
          1
        | Ok schemes, Ok profiles, Ok intensities ->
          let base =
            match durability with
            | `None -> Campaign.default_base
            | `Wal ->
              {
                Campaign.default_base with
                Atomrep_replica.Runtime.durability =
                  Atomrep_replica.Repository.durable ~segment_records:16
                    ~checkpoint_every:48 ();
              }
            | `Wal_gc ->
              {
                Campaign.default_base with
                Atomrep_replica.Runtime.durability =
                  Campaign.storage_base.Atomrep_replica.Runtime.durability;
              }
          in
          let base =
            {
              base with
              Atomrep_replica.Runtime.termination;
              deadlock;
              takeover;
              ungated_rejoin = ungated;
            }
          in
          let domains = if domains <= 0 then None else Some domains in
          let report =
            Explore.sweep ?domains ~n_txns:txns ~monitors ~max_shrinks
              ?postmortem_dir ~base ~schemes ~profiles ~seeds ~intensities ()
          in
          Printf.printf
            "explore: %d runs on %d domain(s) in %.1fs — committed=%d aborted=%d, \
             %d violation(s)%s\n"
            report.Explore.x_tasks report.Explore.x_domains report.Explore.x_wall_s
            report.Explore.x_committed report.Explore.x_aborted
            (List.length report.Explore.x_violations)
            (if
               report.Explore.x_shrunk > 0
               && report.Explore.x_shrunk < List.length report.Explore.x_violations
             then Printf.sprintf " (%d shrunk)" report.Explore.x_shrunk
             else "");
          List.iter
            (fun v -> Format.printf "%a@." Campaign.pp_violation v)
            report.Explore.x_violations;
          (match report_file with
           | None -> ()
           | Some path ->
             let doc =
               Json.Obj
                 [
                   ( "explore",
                     Json.Obj
                       [
                         ( "monitors",
                           Json.List
                             (List.map
                                (fun (e : Monitors.entry) -> Json.Str e.Monitors.e_name)
                                monitors) );
                         ("seeds", Json.int seeds);
                         ("txns", Json.int txns);
                         ( "intensities",
                           Json.List (List.map (fun i -> Json.Num i) intensities) );
                         ("domains", Json.int report.Explore.x_domains);
                         ("tasks", Json.int report.Explore.x_tasks);
                         ("committed", Json.int report.Explore.x_committed);
                         ("aborted", Json.int report.Explore.x_aborted);
                         ("wall_s", Json.Num report.Explore.x_wall_s);
                         ("shrunk", Json.int report.Explore.x_shrunk);
                         ( "violations",
                           Json.List (List.map violation_json report.Explore.x_violations)
                         );
                       ] );
                 ]
             in
             Obs.Export.write_file path (Json.to_string doc);
             Printf.printf "wrote %s\n" path);
          if report.Explore.x_violations = [] then 0 else 1))
  in
  let schemes_arg =
    Arg.(
      value
      & opt string "static,hybrid,locking"
      & info [ "schemes" ] ~docv:"SCHEMES" ~doc:"Comma-separated schemes to sweep.")
  in
  let profiles_arg =
    Arg.(
      value & opt string "all"
      & info [ "profiles" ] ~docv:"PROFILES"
          ~doc:"Comma-separated fault profiles, or `all'.")
  in
  let seeds_arg =
    Arg.(
      value & opt int 64
      & info [ "seeds" ] ~docv:"N" ~doc:"Sweep seeds 0..N-1 per cell.")
  in
  let txns_arg =
    Arg.(value & opt int 30 & info [ "txns" ] ~docv:"N" ~doc:"Transactions per run.")
  in
  let intensities_arg =
    Arg.(
      value & opt string "1.0"
      & info [ "intensities" ] ~docv:"LIST"
          ~doc:"Comma-separated fault intensity scales, one sweep stratum each.")
  in
  let domains_arg =
    Arg.(
      value & opt int 0
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Worker domains for the parallel sweep (0 = the runtime's \
             recommended count; 1 = sequential). The report is identical \
             for any value.")
  in
  let ungated_arg =
    Arg.(
      value & flag
      & info [ "ungated-rejoin" ]
          ~doc:
            "Negative testing: let amnesiac sites rejoin without a resync \
             quorum (the pre-fix double-dequeue behavior) so the sweep has \
             a real violation to find and shrink.")
  in
  let replay_arg =
    Arg.(
      value
      & opt ~vopt:(Some "all") (some string) None
      & info [ "replay" ] ~docv:"FIXTURES"
          ~doc:
            (Printf.sprintf
               "Replay the named regression fixtures instead of sweeping \
                (comma-separated, or `all'; bare $(b,--replay) means all). \
                Known fixtures: %s."
               (String.concat ", " Explore.fixture_names)))
  in
  let report_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE" ~doc:"Write the sweep report as JSON to $(docv).")
  in
  let postmortem_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "postmortem-dir" ] ~docv:"DIR"
          ~doc:
            "Replay each shrunk violation under tracing and write a causal \
             postmortem plus the full trace into $(docv).")
  in
  let max_shrinks_arg =
    Arg.(
      value & opt int 4
      & info [ "max-shrinks" ] ~docv:"N"
          ~doc:
            "Bisection-shrink at most $(docv) violations (earliest tasks \
             first); the rest are reported at their original tuples.")
  in
  let doc =
    "Parallel monitored seed sweeps (and regression-fixture replays) with \
     shrinking"
  in
  Cmd.v (Cmd.info "explore" ~doc)
    Term.(
      const run $ schemes_arg $ profiles_arg $ seeds_arg $ txns_arg
      $ intensities_arg $ domains_arg $ monitor_arg $ durability_arg
      $ termination_arg $ deadlock_arg $ takeover_arg $ ungated_arg $ replay_arg
      $ report_arg $ postmortem_dir_arg $ max_shrinks_arg)

(* --- experiment --- *)

let experiment_cmd =
  let run id =
    if String.equal id "all" then begin
      List.iter (fun (_, _, r) -> r ()) Atomrep_experiments.Experiments.all;
      0
    end
    else if Atomrep_experiments.Experiments.run_by_id id then 0
    else begin
      Printf.eprintf "unknown experiment %S; known: all, %s\n" id
        (String.concat ", "
           (List.map (fun (i, _, _) -> i) Atomrep_experiments.Experiments.all));
      1
    end
  in
  let id_arg =
    let doc = "Experiment id (e1..e10, or `all')." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc)
  in
  let doc = "Reproduce one of the paper's figures or examples" in
  Cmd.v (Cmd.info "experiment" ~doc) Term.(const run $ id_arg)

(* --- compare --- *)

let compare_cmd =
  let run type_name max_len n_sites samples =
    match find_spec type_name with
    | Error e ->
      prerr_endline e;
      1
    | Ok spec ->
      let module C = Atomrep_experiments.Compare in
      let concurrency = C.concurrency ~samples spec in
      Format.printf "concurrency (Figure 1-1), %d random histories:@." samples;
      Format.printf "  static  vs hybrid : %a@." C.pp_verdict concurrency.C.static_vs_hybrid;
      Format.printf "  hybrid  vs dynamic: %a@." C.pp_verdict concurrency.C.hybrid_vs_dynamic;
      Format.printf "  static  vs dynamic: %a@." C.pp_verdict concurrency.C.static_vs_dynamic;
      (match concurrency.C.witness_hybrid_not_static with
       | Some h ->
         Format.printf "@.witness (hybrid but not static atomic):@.%s@."
           (Atomrep_history.Behavioral.to_string h)
       | None -> ());
      let hybrid_relations = [ Static_dep.minimal spec ~max_len ] in
      let availability = C.availability ~max_len ~hybrid_relations ~n_sites spec in
      Format.printf
        "@.availability (Figure 1-2), threshold assignments on %d sites:@." n_sites;
      Format.printf "  static %d, hybrid >=%d, dynamic %d@." availability.C.static_count
        availability.C.hybrid_count availability.C.dynamic_count;
      Format.printf "  static vs hybrid : %a@." C.pp_verdict availability.C.static_vs_hybrid;
      Format.printf "  hybrid vs dynamic: %a@." C.pp_verdict availability.C.hybrid_vs_dynamic;
      print_endline
        "\n(hybrid counted against the static relation — a sound hybrid\n\
         relation by Theorem 4; run `analyze --hybrid-search' for minimal\n\
         hybrid relations)";
      0
  in
  let sites_arg =
    Arg.(value & opt int 3 & info [ "n"; "sites" ] ~docv:"SITES" ~doc:"Replication degree.")
  in
  let samples_arg =
    Arg.(value & opt int 1000 & info [ "samples" ] ~docv:"N" ~doc:"Random histories to classify.")
  in
  let doc = "Compare the three atomicity properties on one data type" in
  Cmd.v (Cmd.info "compare" ~doc)
    Term.(const run $ type_arg $ max_len_arg $ sites_arg $ samples_arg)

(* --- witness --- *)

let witness_cmd =
  let run type_name max_len dependent supplier =
    match find_spec type_name with
    | Error e ->
      prerr_endline e;
      1
    | Ok spec ->
      let universe = Serial_spec.event_universe spec ~max_len in
      let invs =
        List.filter
          (fun (inv : Atomrep_history.Event.Invocation.t) -> String.equal inv.op dependent)
          spec.Serial_spec.invocations
      in
      let events =
        List.filter
          (fun (e : Atomrep_history.Event.t) -> String.equal e.inv.op supplier)
          universe
      in
      if invs = [] || events = [] then begin
        Printf.eprintf "no such operations (%s, %s) for %s\n" dependent supplier type_name;
        1
      end
      else begin
        let found = ref false in
        List.iter
          (fun inv ->
            List.iter
              (fun e ->
                match Static_dep.witness spec ~max_len inv e with
                | Some (h1, ev, h2, h3) ->
                  found := true;
                  let pp_events ppf l =
                    Format.pp_print_list
                      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
                      Atomrep_history.Event.pp ppf l
                  in
                  Format.printf
                    "%a >= %a  via Theorem 6:@.  h1 = [%a]@.  insert %a / %a@.  h2 = \
                     [%a]@.  h3 = [%a]@.@."
                    Atomrep_history.Event.Invocation.pp inv Atomrep_history.Event.pp e
                    pp_events h1 Atomrep_history.Event.pp ev Atomrep_history.Event.pp e
                    pp_events h2 pp_events h3
                | None -> ())
              events)
          invs;
        if not !found then
          Printf.printf
            "no static dependency between %s and %s within %d-event histories\n"
            dependent supplier max_len;
        0
      end
  in
  let dependent_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DEPENDENT" ~doc:"Invoking operation.")
  in
  let supplier_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"SUPPLIER" ~doc:"Supplying operation.")
  in
  let doc = "Show a Theorem-6 witness for a static dependency pair" in
  Cmd.v (Cmd.info "witness" ~doc)
    Term.(const run $ type_arg $ max_len_arg $ dependent_arg $ supplier_arg)

(* --- types --- *)

let types_cmd =
  let run () =
    List.iter
      (fun (name, spec) ->
        Printf.printf "%-14s %d operations: %s\n" name
          (List.length
             (List.sort_uniq String.compare
                (List.map
                   (fun (inv : Atomrep_history.Event.Invocation.t) -> inv.op)
                   spec.Serial_spec.invocations)))
          (String.concat ", "
             (List.sort_uniq String.compare
                (List.map
                   (fun (inv : Atomrep_history.Event.Invocation.t) -> inv.op)
                   spec.Serial_spec.invocations))))
      Type_registry.all;
    0
  in
  let doc = "List the built-in data types" in
  Cmd.v (Cmd.info "types" ~doc) Term.(const run $ const ())

let () =
  let doc = "atomicity mechanisms and replicated-data availability (Herlihy 1985)" in
  let info = Cmd.info "atomrep" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            analyze_cmd; quorums_cmd; simulate_cmd; chaos_cmd; load_cmd; perf_cmd;
            bench_diff_cmd; explore_cmd; experiment_cmd; compare_cmd;
            witness_cmd; types_cmd;
          ]))
