(* A replicated bank: two accounts, three sites, all three concurrency
   control schemes, with crash faults.

     dune exec examples/bank_simulation.exe

   Transactions deposit, withdraw and audit across two replicated
   accounts. Every run's per-object histories are checked against the
   scheme's local atomicity property, and balances are audited at the end
   by replaying the committed serialization. *)

open Atomrep_history
open Atomrep_spec
open Atomrep_core
open Atomrep_quorum
open Atomrep_replica

let scheme_relation scheme spec =
  match scheme with
  | Replicated.Locking -> Dynamic_dep.minimal spec ~max_len:3
  | Replicated.Static | Replicated.Hybrid -> Static_dep.minimal spec ~max_len:3

let balance_of scheme spec history =
  let h = Behavioral.strip_aborted history in
  let committed = Behavioral.committed h in
  (* The audit replays committed actions in the scheme's serialization
     order: Begin-timestamp order for static, commit order otherwise. *)
  let order =
    match scheme with
    | Replicated.Static ->
      List.filter (fun a -> List.exists (Action.equal a) committed) (Behavioral.begin_order h)
    | Replicated.Hybrid | Replicated.Locking -> committed
  in
  match Serial_spec.run spec (Behavioral.serialize h order) with
  | Some (Value.Int n) -> Some n
  | Some _ | None -> None

let () =
  let n_sites = 3 in
  let majority op_list =
    Assignment.make ~n_sites
      (List.map (fun op -> (op, { Assignment.initial = 2; final = 2 })) op_list)
  in
  let account name =
    {
      Runtime.obj_name = name;
      obj_spec = Bank_account.spec;
      obj_relation = Static_dep.minimal Bank_account.spec ~max_len:3;
      obj_assignment = majority [ "Deposit"; "Withdraw"; "Balance" ];
      obj_members = None;
    }
  in
  List.iter
    (fun scheme ->
      let objects =
        List.map
          (fun oc -> { oc with Runtime.obj_relation = scheme_relation scheme Bank_account.spec })
          [ account "checking"; account "savings" ]
      in
      let cfg =
        {
          Runtime.default_config with
          seed = 2024;
          n_sites;
          scheme;
          n_txns = 60;
          arrival_mean = 80.0;
          objects;
          script = Atomrep_workload.Mixes.bank_mix ~targets:[ "checking"; "savings" ] ();
          install_faults =
            (fun net -> Atomrep_sim.Fault.crash_recover net ~site:2 ~mtbf:500.0 ~mttr:100.0);
        }
      in
      let outcome = Runtime.run cfg in
      let m = outcome.Runtime.metrics in
      Printf.printf "--- %s ---\n" (Replicated.scheme_name scheme);
      Printf.printf
        "committed %d / aborted %d (unavailable %d, conflict %d, rejected %d)\n"
        m.Runtime.committed m.Runtime.aborted m.Runtime.unavailable_aborts
        m.Runtime.conflict_aborts m.Runtime.rejected_aborts;
      List.iter
        (fun (name, history) ->
          match balance_of scheme Bank_account.spec history with
          | Some n -> Printf.printf "final %s balance: %d\n" name n
          | None -> Printf.printf "final %s balance: (unreplayable!)\n" name)
        outcome.Runtime.histories;
      (match Runtime.check_atomicity cfg outcome with
       | [] -> print_endline "atomicity: OK"
       | failures ->
         List.iter (fun (o, f) -> Printf.printf "ATOMICITY FAIL %s: %s\n" o f) failures);
      print_newline ())
    [ Replicated.Hybrid; Replicated.Static; Replicated.Locking ]
