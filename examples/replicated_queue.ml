(* Figure 3-1: a queue replicated among three repositories.

     dune exec examples/replicated_queue.exe

   Reproduces the paper's running scenario on the simulator: front-ends
   merge initial-quorum logs into views, append timestamped entries, and
   write final quorums; the resulting per-object behavioral history is
   checked against hybrid atomicity. *)

open Atomrep_history
open Atomrep_spec
open Atomrep_core
open Atomrep_quorum
open Atomrep_stats
open Atomrep_replica

let () =
  let n_sites = 3 in
  let relation = Static_dep.minimal Queue_type.spec ~max_len:4 in
  (* Majority quorums for both operations: 2 + 2 > 3 covers every
     dependency pair. *)
  let assignment =
    Assignment.make ~n_sites
      [
        ("Enq", { Assignment.initial = 2; final = 2 });
        ("Deq", { Assignment.initial = 2; final = 2 });
      ]
  in
  let cfg =
    {
      Runtime.default_config with
      seed = 1985;
      n_sites;
      scheme = Replicated.Hybrid;
      n_txns = 30;
      arrival_mean = 40.0;
      objects =
        [
          {
            Runtime.obj_name = "queue";
            obj_spec = Queue_type.spec;
            obj_relation = relation;
            obj_assignment = assignment;
            obj_members = None;
          };
        ];
      script =
        (fun rng i ->
          (* Producers enqueue, consumers dequeue, roughly alternating. *)
          if i mod 2 = 0 then
            [ { Runtime.target = "queue";
                invocation = Queue_type.enq_inv (Rng.pick_list rng [ "x"; "y" ]) } ]
          else [ { Runtime.target = "queue"; invocation = Queue_type.deq_inv } ]);
    }
  in
  let outcome = Runtime.run cfg in
  let m = outcome.Runtime.metrics in
  Printf.printf
    "30 producer/consumer transactions on a queue replicated at %d sites\n\n" n_sites;
  Printf.printf "committed: %d   aborted: %d   blocked-then-retried: %d\n\n"
    m.Runtime.committed m.Runtime.aborted m.Runtime.blocked_waits;
  (match outcome.Runtime.histories with
   | [ (_, history) ] ->
     print_endline "the queue's behavioral history (model order):";
     print_endline (Behavioral.to_string history);
     Printf.printf "\nhybrid atomic: %b\n"
       (Atomrep_atomicity.Atomicity.is_hybrid_atomic Queue_type.spec history)
   | _ -> ());
  match Runtime.check_common_order cfg outcome with
  | [] -> print_endline "system-wide serialization order: consistent"
  | failures ->
    List.iter (fun (o, f) -> Printf.printf "ORDER FAILURE %s: %s\n" o f) failures
