open Atomrep_history
open Atomrep_spec

type property = Static | Hybrid | Dynamic

let property_name = function
  | Static -> "static"
  | Hybrid -> "hybrid"
  | Dynamic -> "dynamic"

let all_properties = [ Static; Hybrid; Dynamic ]

(* Exploring hypothetical completions is exponential (factorial, for the
   permuting properties) in the active — undecided — actions. Histories
   from crash-heavy runs can end with dozens of permanently stranded
   actives (a coordinator that died mid-commit leaves its transaction
   active forever unless a termination protocol resolves it), so past
   this bound the checker stops enumerating every subset and verifies
   the completions that add at most two actives instead: still every
   committed-only serialization, plus every one- and two-active
   extension. *)
let max_exhaustive_actives = 6

let completion_subsets actives =
  if List.length actives <= max_exhaustive_actives then
    Behavioral.subsets actives
  else
    let singletons = List.map (fun a -> [ a ]) actives in
    let rec pairs = function
      | [] -> []
      | a :: rest -> List.map (fun b -> [ a; b ]) rest @ pairs rest
    in
    ([] :: singletons) @ pairs actives

let static_orders h =
  let committed = Behavioral.committed h in
  let actives = Behavioral.active h in
  let begins = Behavioral.begin_order h in
  let in_order chosen =
    List.filter
      (fun a ->
        List.exists (Action.equal a) committed || List.exists (Action.equal a) chosen)
      begins
  in
  List.map in_order (completion_subsets actives)

let hybrid_orders h =
  let committed = Behavioral.committed h in
  let actives = Behavioral.active h in
  List.concat_map
    (fun chosen ->
      List.map (fun perm -> committed @ perm) (Behavioral.permutations chosen))
    (completion_subsets actives)

let dynamic_orders h =
  let committed = Behavioral.committed h in
  let actives = Behavioral.active h in
  let pairs = Behavioral.precedes_pairs h in
  List.concat_map
    (fun chosen -> Behavioral.linear_extensions pairs (committed @ chosen))
    (completion_subsets actives)

type failure = {
  order : Action.t list;
  serial : Event.t list;
  reason : string;
}

let pp_failure ppf { order; serial; reason } =
  Format.fprintf ppf "%s: order [%a], serialization [%a]" reason
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       Action.pp)
    order
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       Event.pp)
    serial

let find_illegal spec h orders =
  let illegal order =
    let serial = Behavioral.serialize h order in
    if Serial_spec.legal spec serial then None
    else Some { order; serial; reason = "illegal serialization" }
  in
  List.find_map illegal orders

let check spec property h =
  let h = Behavioral.strip_aborted h in
  match property with
  | Static ->
    (match find_illegal spec h (static_orders h) with
     | Some f -> Error f
     | None -> Ok ())
  | Hybrid ->
    (match find_illegal spec h (hybrid_orders h) with
     | Some f -> Error f
     | None -> Ok ())
  | Dynamic ->
    let orders = dynamic_orders h in
    (match find_illegal spec h orders with
     | Some f -> Error f
     | None ->
       (* All serializations over the same action set must be equivalent.
          Group orders by their action set, compare each group's
          serializations to the first. *)
       let depth = List.length (Behavioral.all_events h) + 2 in
       let module SM = Map.Make (String) in
       let key order = String.concat "," (List.sort compare (List.map Action.to_string order)) in
       let groups =
         List.fold_left
           (fun m order ->
             let k = key order in
             SM.update k (function None -> Some [ order ] | Some l -> Some (order :: l)) m)
           SM.empty orders
       in
       let check_group _ group acc =
         match acc, group with
         | Error _, _ -> acc
         | Ok (), [] -> acc
         | Ok (), reference :: rest ->
           let ref_serial = Behavioral.serialize h reference in
           let differs order =
             let serial = Behavioral.serialize h order in
             if Serial_spec.equivalent spec ~depth ref_serial serial then None
             else Some { order; serial; reason = "inequivalent serializations" }
           in
           (match List.find_map differs rest with
            | Some f -> Error f
            | None -> Ok ())
       in
       SM.fold check_group groups (Ok ()))

let satisfies spec property h = Result.is_ok (check spec property h)
let is_static_atomic spec h = satisfies spec Static h
let is_hybrid_atomic spec h = satisfies spec Hybrid h
let is_dynamic_atomic spec h = satisfies spec Dynamic h
