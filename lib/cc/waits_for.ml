open Atomrep_history

(* One out-edge per waiter: a transaction executes its operations
   sequentially, so it waits for at most one blocker at a time. *)
type t = { edges : (Action.t, Action.t) Hashtbl.t }

let create () = { edges = Hashtbl.create 16 }
let wait t ~waiter ~on = Hashtbl.replace t.edges waiter on
let clear t waiter = Hashtbl.remove t.edges waiter
let blocker t waiter = Hashtbl.find_opt t.edges waiter
let size t = Hashtbl.length t.edges

let cycle_from t ~alive start =
  (* Walk the out-edge chain from [start]; with one out-edge per node the
     reachable subgraph is a rho shape, so revisiting [start] is the only
     way a cycle through it closes. Dead nodes (resolved transactions
     whose edges are about to be cleared) break the chain. *)
  let rec walk seen node =
    match Hashtbl.find_opt t.edges node with
    | None -> None
    | Some next ->
      if not (alive next) then None
      else if Action.equal next start then Some (List.rev seen)
      else if List.exists (Action.equal next) seen then None
      else walk (next :: seen) next
  in
  if alive start then walk [ start ] start else None
