(** Waits-for graph for deadlock detection under the locking scheme.

    Each blocked operation adds one edge waiter -> blocker (a transaction
    runs its operations sequentially, so it has at most one out-edge);
    the edge is cleared when the operation completes or the waiter
    resolves. With out-degree <= 1 the graph is a union of rho-shaped
    chains, so cycle detection from a node is a single walk. *)

open Atomrep_history

type t

val create : unit -> t

val wait : t -> waiter:Action.t -> on:Action.t -> unit
(** Record (replacing any previous edge) that [waiter] is blocked on
    [on]. *)

val clear : t -> Action.t -> unit
(** Drop the waiter's out-edge (operation done, backed off, or the
    transaction resolved). *)

val blocker : t -> Action.t -> Action.t option
val size : t -> int

val cycle_from :
  t -> alive:(Action.t -> bool) -> Action.t -> Action.t list option
(** The cycle through [start], as the node list starting at [start], if
    following out-edges from [start] returns to it. Nodes for which
    [alive] is false (already-resolved transactions whose edges are
    stale) break the chain. *)
