open Atomrep_replica
module Trace = Atomrep_obs.Trace
module Export = Atomrep_obs.Export
module Postmortem = Atomrep_obs.Postmortem
module Spec_monitor = Atomrep_obs.Spec_monitor

type profile = { profile_name : string; nemesis : Nemesis.t }

let builtin_profiles =
  [
    {
      profile_name = "crashes";
      nemesis = Nemesis.Crash_storm { mtbf = 400.0; mttr = 120.0; amnesia = false };
    };
    {
      profile_name = "amnesia";
      nemesis = Nemesis.Crash_storm { mtbf = 500.0; mttr = 120.0; amnesia = true };
    };
    {
      profile_name = "partitions";
      nemesis = Nemesis.Rolling_partition { every = 300.0; duration = 120.0 };
    };
    {
      profile_name = "flaky";
      nemesis =
        Nemesis.Flaky_links { drop = 0.05; dup = 0.10; spike = 0.05; one_way = true };
    };
    { profile_name = "skew"; nemesis = Nemesis.Skew { every = 150.0; max_skew = 5 } };
    {
      profile_name = "flapping";
      nemesis = Nemesis.Flapping { every = 250.0; down_for = 40.0 };
    };
    {
      (* Progressive permanent site loss: victims die newest-site-first so
         the monitor (site 0) survives. Unlike the cycling storms, nobody
         comes back — without reconfiguration, availability only decays. *)
      profile_name = "kills";
      nemesis =
        Nemesis.Staggered_kill { start = 600.0; gap = 1200.0; victims = [ 4; 3; 2 ] };
    };
    {
      (* Crash-with-amnesia plus the whole storage fault surface: torn
         tail writes land exactly at the crashes, bit rot corrupts durable
         records between them, flush barriers lie, disks fill. Only bites
         under a [Durable] runtime (e.g. [storage_base]); on volatile
         repositories the storage faults are no-ops and this reduces to
         the amnesia profile. *)
      profile_name = "storage_storm";
      nemesis =
        Nemesis.Compose
          [
            Nemesis.Crash_storm { mtbf = 600.0; mttr = 120.0; amnesia = true };
            Nemesis.Storage_faults
              {
                torn_every = 500.0;
                rot_every = 700.0;
                lost_every = 900.0;
                full_every = 1500.0;
                full_for = 200.0;
              };
          ];
    };
    {
      (* Ambush coordinators inside the commit window (plus a light link
         flake so commit broadcasts and vote rounds also lose messages):
         the in-doubt scenario crash-safe termination exists for. Under a
         [Disabled]-termination base this strands tentative entries; with
         termination enabled ([termination_base]) the oracles must still
         hold and the stranded-entry gauge must drain. *)
      profile_name = "coordinator_killer";
      nemesis =
        Nemesis.Compose
          [
            Nemesis.Coordinator_killer { p_kill = 0.25; delay = 4.0; mttr = 400.0 };
            Nemesis.Flaky_links { drop = 0.02; dup = 0.02; spike = 0.02; one_way = false };
          ];
    };
    {
      (* Every driver of the same transaction dies or returns at the worst
         moment: coordinators are ambushed in the commit window and healed
         back quickly (so the original returns into its fenced re-drive
         while an adoption is in flight), takers-over are ambushed at
         their lease bids (so the next contender must out-bid a corpse),
         rolling partitions split the contenders, and a light link flake
         loses grant and vote messages. Pair with {!takeover_base}: the
         takeover protocol must convert the strandings into adopted
         commits while the no-divergence monitor holds. *)
      profile_name = "takeover_storm";
      nemesis =
        Nemesis.Compose
          [
            Nemesis.Coordinator_killer { p_kill = 0.3; delay = 4.0; mttr = 250.0 };
            Nemesis.Takeover_killer { p_kill = 0.35; delay = 6.0; mttr = 300.0 };
            Nemesis.Rolling_partition { every = 700.0; duration = 90.0 };
            Nemesis.Flaky_links { drop = 0.02; dup = 0.02; spike = 0.02; one_way = false };
          ];
    };
    {
      (* Overload meets faults: meant to run over {!overload_base}, whose
         open-loop plan carries a flash crowd — the nemesis adds rolling
         partitions (so quorum RPCs time out and retries amplify exactly
         while the crowd peaks) and a light link flake. Survivable with
         admission control, shedding, and a finite retry budget; without
         them the goodput collapses while offered load keeps arriving. *)
      profile_name = "overload_storm";
      nemesis =
        Nemesis.Compose
          [
            Nemesis.Rolling_partition { every = 700.0; duration = 100.0 };
            Nemesis.Flaky_links { drop = 0.02; dup = 0.02; spike = 0.02; one_way = false };
          ];
    };
    {
      profile_name = "storm";
      nemesis =
        Nemesis.Compose
          [
            Nemesis.Crash_storm { mtbf = 800.0; mttr = 100.0; amnesia = true };
            Nemesis.Rolling_partition { every = 500.0; duration = 100.0 };
            Nemesis.Flaky_links { drop = 0.02; dup = 0.05; spike = 0.02; one_way = false };
            Nemesis.Skew { every = 300.0; max_skew = 3 };
          ];
    };
    {
      (* Gray failures: random sites repeatedly turn fail-slow — up,
         answering, just dragging every quorum round to their pace — while
         a light link flake keeps timeouts honest. Meant to be survived
         over {!gray_base}: hedged early-quorum rounds and slow-site
         demotion keep latency bounded, and the [hedge_safety] monitor
         must hold (no double-apply from duplicate hedged deliveries,
         verdicts identical hedged or not). *)
      profile_name = "gray_storm";
      nemesis =
        Nemesis.Compose
          [
            Nemesis.Fail_slow { every = 600.0; duration = 450.0; factor = 8.0 };
            Nemesis.Flaky_links
              { drop = 0.01; dup = 0.02; spike = 0.02; one_way = false };
          ];
    };
  ]

let find_profile name =
  List.find_opt (fun p -> String.equal p.profile_name name) builtin_profiles

let profile_names = List.map (fun p -> p.profile_name) builtin_profiles

type violation = {
  v_scheme : Replicated.scheme;
  v_profile : profile;
  v_seed : int;
  v_n_txns : int;
  v_intensity : float;
  v_failures : (string * string) list;
  v_postmortem : string option;
}

type cell = {
  c_scheme : Replicated.scheme;
  c_profile : string;
  c_runs : int;
  c_committed : int;
  c_aborted : int;
  c_violations : int;
}

type report = {
  cells : cell list;
  violations : violation list; (* shrunk *)
  total_runs : int;
}

let default_base = { Runtime.default_config with horizon = 40_000.0 }

(* Small segments and an aggressive checkpoint period so that chaos-length
   runs actually roll segments and compact; group commit so torn writes
   and lost flushes have a mixed (tentative + status) buffer to bite. *)
let storage_base =
  {
    default_base with
    Runtime.durability =
      Repository.durable ~group_commit:true ~segment_records:16
        ~checkpoint_every:48 ();
  }

(* Crash-safe termination on: the base the coordinator_killer profile is
   meant to be survived with. Cooperative termination resolves in-doubt
   transactions whose coordinator is down, the reaper sweeps orphans, and
   deadlock detection keeps the locking scheme's blocked operations from
   degenerating into retry-budget aborts under the extra contention. *)
let termination_base =
  {
    default_base with
    Runtime.termination = Atomrep_txn.Termination.Cooperative;
    deadlock = Runtime.Detect;
  }

(* Coordinator takeover on top of the termination base: the base the
   takeover_storm profile is meant to be survived with. *)
let takeover_base = { termination_base with Runtime.takeover = true }

(* Open-loop overload: a flash-crowd arrival plan (precomputed, so every
   scheme and seed replays the identical offered load) over admission
   control with shed-by-class, a sojourn deadline, a finite per-txn retry
   budget and the per-site circuit breaker — the full graceful-degradation
   surface the overload_storm profile stresses. Termination/deadlock are
   left at the caller's defaults so the CLI flags compose as usual. *)
let overload_plan =
  Atomrep_workload.Openloop.plan
    ~curve:
      (Atomrep_workload.Openloop.Flash_crowd
         { at = 3_000.0; duration = 2_000.0; mult = 10.0 })
    ~profile:Atomrep_workload.Openloop.Queue_fanout ~n_objects:3 ~n_sites:3
    ~n_sessions:6 ~seed:97 ~rate:0.004 ~horizon:12_000.0 ()

let overload_base =
  Atomrep_workload.Openloop.apply overload_plan
    {
      default_base with
      Runtime.horizon = 30_000.0;
      admission =
        Some
          {
            Runtime.max_in_flight = 6;
            queue_limit = 12;
            deadline = 2_500.0;
            adm_shed_policy = Runtime.Shed_reads_first;
            adm_breaker = Some Runtime.default_breaker;
          };
      retry_budget = 12;
    }

(* Gray-failure mitigation on: the base the gray_storm profile is meant to
   be survived with — hedged early-quorum rounds, latency scoring, and
   slow-site demotion, over the default 3-site cluster. *)
let gray_base = { default_base with Runtime.gray = Some Runtime.default_gray }

let reconfig_base =
  let n_sites = 5 in
  {
    Runtime.default_config with
    n_sites;
    horizon = 8_000.0;
    arrival_mean = 120.0;
    objects =
      [
        {
          Runtime.obj_name = "queue";
          obj_spec = Atomrep_spec.Queue_type.spec;
          obj_relation =
            Atomrep_core.Static_dep.minimal Atomrep_spec.Queue_type.spec
              ~max_len:4;
          obj_assignment = Runtime.default_queue_assignment ~n_sites;
          obj_members = None;
        };
      ];
    reconfig = Some Runtime.default_reconfig;
  }

let configure ~base ~scheme ~seed ~n_txns ~intensity ?trace profile =
  {
    base with
    Runtime.scheme;
    seed;
    n_txns;
    install_faults =
      (fun net -> Nemesis.install (Nemesis.scale intensity profile.nemesis) net);
    trace = (match trace with Some _ -> trace | None -> base.Runtime.trace);
  }

(* With a [monitors] selection, the run is traced (a fresh per-run bus
   unless the caller attached one — per-run buses keep txn names from
   colliding across runs) and the selected {!Monitors} entries ARE the
   oracles: each spec is instantiated fresh for this run (so no verdict
   bleeds between runs or shrink candidates), folded over the trace, and
   quiesced. Without a selection the two legacy history oracles gate the
   run untraced, exactly the original behavior. Tracing does not perturb
   the run (metrics and histories are bit-identical either way), so
   monitor-gated reproducers still replay. *)
let check_run ?(monitors = []) ?(sample = 1) cfg =
  let cfg =
    if monitors <> [] && cfg.Runtime.trace = None then
      {
        cfg with
        Runtime.trace = Some (Trace.create ~n_sites:cfg.Runtime.n_sites ());
      }
    else cfg
  in
  (* Optional trace-bus thinning: every kind a selected monitor observes is
     forced to full fidelity, so sampling can never change a verdict. *)
  (match cfg.Runtime.trace with
   | Some tr when sample > 1 ->
     Trace.set_sampling tr ~every:sample ~forced:(Monitors.forced monitors) ()
   | _ -> ());
  let outcome = Runtime.run cfg in
  match (monitors, cfg.Runtime.trace) with
  | [], _ | _, None ->
    ( outcome,
      Runtime.check_atomicity cfg outcome
      @ Runtime.check_common_order cfg outcome )
  | entries, Some tr ->
    ( outcome,
      Spec_monitor.failures
        (Monitors.run entries { Monitors.cfg; outcome } tr) )

(* Shrink a violation into the smallest reproducer the bisection finds:
   first the transaction count (binary search down from the failing count,
   keeping the invariant that the upper bound still fails), then the fault
   intensity by repeated halving. Neither dimension is monotone, so the
   result is a local minimum — which is all a reproducer needs. *)
let shrink ?monitors ~base v =
  let fails n_txns intensity =
    let cfg =
      configure ~base ~scheme:v.v_scheme ~seed:v.v_seed ~n_txns ~intensity
        v.v_profile
    in
    snd (check_run ?monitors cfg) <> []
  in
  let rec bisect_txns lo hi =
    (* invariant: [hi] fails *)
    if hi - lo <= 1 then hi
    else begin
      let mid = (lo + hi) / 2 in
      if fails mid v.v_intensity then bisect_txns lo mid else bisect_txns mid hi
    end
  in
  let n_txns = bisect_txns 0 v.v_n_txns in
  let rec soften intensity =
    let candidate = intensity /. 2.0 in
    if candidate >= 0.05 && fails n_txns candidate then soften candidate
    else intensity
  in
  let intensity = soften v.v_intensity in
  let cfg =
    configure ~base ~scheme:v.v_scheme ~seed:v.v_seed ~n_txns ~intensity v.v_profile
  in
  {
    v with
    v_n_txns = n_txns;
    v_intensity = intensity;
    v_failures = snd (check_run ?monitors cfg);
  }

let reproducer_line v =
  Printf.sprintf
    "atomrep chaos --repro --schemes %s --profiles %s --seed %d --txns %d \
     --intensity %g"
    (Replicated.scheme_name v.v_scheme)
    v.v_profile.profile_name v.v_seed v.v_n_txns v.v_intensity

(* Replay a (shrunk) violation with tracing on and slice the trace to the
   causal cone of the violating actions. Determinism makes the traced
   replay produce the same failure the untraced run did. *)
let trace_violation ?monitors ?(base = default_base) v =
  let trace = Trace.create ~n_sites:base.Runtime.n_sites () in
  let cfg =
    configure ~base ~scheme:v.v_scheme ~seed:v.v_seed ~n_txns:v.v_n_txns
      ~intensity:v.v_intensity ~trace v.v_profile
  in
  let _, failures = check_run ?monitors cfg in
  let header =
    [
      ("scheme", Replicated.scheme_name v.v_scheme);
      ("profile", v.v_profile.profile_name);
      ("seed", string_of_int v.v_seed);
      ("txns", string_of_int v.v_n_txns);
      ("intensity", Printf.sprintf "%g" v.v_intensity);
      ("repro", reproducer_line v);
    ]
  in
  (trace, Postmortem.build trace ~header ~failures)

let violation_slug v =
  Printf.sprintf "%s-%s-seed%d"
    (Replicated.scheme_name v.v_scheme)
    v.v_profile.profile_name v.v_seed

let write_postmortem ?monitors ~base ~dir v =
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  let trace, pm = trace_violation ?monitors ~base v in
  let slug = violation_slug v in
  let pm_path = Filename.concat dir ("postmortem-" ^ slug ^ ".txt") in
  Export.write_file pm_path (Postmortem.render pm);
  Export.write_file
    (Filename.concat dir ("trace-" ^ slug ^ ".jsonl"))
    (Export.jsonl trace);
  { v with v_postmortem = Some pm_path }

let run_campaign ?(base = default_base) ?(n_txns = 30) ?(intensity = 1.0)
    ?monitors ?sample ?postmortem_dir ~schemes ~profiles ~seeds () =
  let cells = ref [] in
  let violations = ref [] in
  let total = ref 0 in
  List.iter
    (fun scheme ->
      List.iter
        (fun profile ->
          let committed = ref 0 and aborted = ref 0 and bad = ref 0 in
          for seed = 0 to seeds - 1 do
            incr total;
            let cfg = configure ~base ~scheme ~seed ~n_txns ~intensity profile in
            let outcome, failures = check_run ?monitors ?sample cfg in
            committed := !committed + outcome.Runtime.metrics.Runtime.committed;
            aborted := !aborted + outcome.Runtime.metrics.Runtime.aborted;
            if failures <> [] then begin
              incr bad;
              let v =
                {
                  v_scheme = scheme;
                  v_profile = profile;
                  v_seed = seed;
                  v_n_txns = n_txns;
                  v_intensity = intensity;
                  v_failures = failures;
                  v_postmortem = None;
                }
              in
              let v = shrink ?monitors ~base v in
              let v =
                match postmortem_dir with
                | Some dir -> write_postmortem ?monitors ~base ~dir v
                | None -> v
              in
              violations := v :: !violations
            end
          done;
          cells :=
            {
              c_scheme = scheme;
              c_profile = profile.profile_name;
              c_runs = seeds;
              c_committed = !committed;
              c_aborted = !aborted;
              c_violations = !bad;
            }
            :: !cells)
        profiles)
    schemes;
  { cells = List.rev !cells; violations = List.rev !violations; total_runs = !total }

let reproduce ?(base = default_base) ?monitors ?sample ?trace ~scheme ~profile
    ~seed ~n_txns ~intensity () =
  let cfg = configure ~base ~scheme ~seed ~n_txns ~intensity ?trace profile in
  check_run ?monitors ?sample cfg

let pp_violation ppf v =
  Format.fprintf ppf "@[<v 2>VIOLATION %s/%s seed=%d txns=%d intensity=%g@,repro: %s"
    (Replicated.scheme_name v.v_scheme)
    v.v_profile.profile_name v.v_seed v.v_n_txns v.v_intensity (reproducer_line v);
  (match v.v_postmortem with
   | Some path -> Format.fprintf ppf "@,postmortem: %s" path
   | None -> ());
  List.iter (fun (obj, why) -> Format.fprintf ppf "@,%s: %s" obj why) v.v_failures;
  Format.fprintf ppf "@]"

let pp_report ppf r =
  Format.fprintf ppf "%-9s %-12s %6s %10s %8s %10s@." "scheme" "profile" "runs"
    "committed" "aborted" "violations";
  List.iter
    (fun c ->
      Format.fprintf ppf "%-9s %-12s %6d %10d %8d %10d@."
        (Replicated.scheme_name c.c_scheme)
        c.c_profile c.c_runs c.c_committed c.c_aborted c.c_violations)
    r.cells;
  Format.fprintf ppf "%d runs, %d violation(s)@." r.total_runs
    (List.length r.violations);
  List.iter (fun v -> Format.fprintf ppf "%a@." pp_violation v) r.violations
