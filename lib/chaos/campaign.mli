(** Chaos campaigns: sweep seeds x schemes x fault profiles, machine-check
    the local-atomicity oracles after every run, and turn any violation
    into a deterministic, shrunk reproducer.

    Every run is a fresh {!Atomrep_replica.Runtime.run} whose
    [install_faults] installs a {!Nemesis} schedule; afterwards
    {!Atomrep_replica.Runtime.check_atomicity} (the scheme's local
    atomicity property) and {!Atomrep_replica.Runtime.check_common_order}
    (one system-wide serialization order) judge the histories. Determinism
    of the simulator makes a (scheme, profile, seed, n_txns, intensity)
    tuple a self-contained reproducer, and bisection shrinks it before it
    is reported. *)

open Atomrep_replica

type profile = { profile_name : string; nemesis : Nemesis.t }

val builtin_profiles : profile list
(** crashes, amnesia, partitions, flaky, skew, flapping, kills (staggered
    permanent site loss), storage_storm (amnesia plus torn writes, bit
    rot, lost flushes, and disk pressure against durable WALs — pair with
    {!storage_base}), coordinator_killer (commit-window ambushes plus
    light link flake — pair with {!termination_base} to prove the
    termination protocol survives what strands a [Disabled] run),
    takeover_storm (commit-window ambushes with fast coordinator heal,
    takeover-bid ambushes, rolling partitions, and link flake — pair with
    {!takeover_base} and a [monitors] selection to prove epoch-fenced
    adoption never diverges), overload_storm (rolling partitions and link
    flake timed to land inside {!overload_base}'s flash crowd — pair with
    {!overload_base} and the shed_safety/session_monotonic monitors),
    gray_storm (recurring fail-slow episodes plus light link flake — pair
    with {!gray_base} and the hedge_safety monitor to prove hedged
    early-quorum rounds never double-apply), and the composed storm. *)

val find_profile : string -> profile option
val profile_names : string list

type violation = {
  v_scheme : Replicated.scheme;
  v_profile : profile;
  v_seed : int;
  v_n_txns : int;
  v_intensity : float;
  v_failures : (string * string) list; (** (object, failure description) *)
  v_postmortem : string option;
      (** path of the written causal postmortem, when the campaign ran with
          [postmortem_dir] *)
}

type cell = {
  c_scheme : Replicated.scheme;
  c_profile : string;
  c_runs : int;
  c_committed : int; (** summed over the cell's runs *)
  c_aborted : int;
  c_violations : int;
}

type report = {
  cells : cell list;
  violations : violation list; (** already shrunk *)
  total_runs : int;
}

val default_base : Runtime.config
(** The campaign's base configuration: the default replicated queue with a
    horizon sized for chaos runs. Override [base] to campaign against a
    different object set (e.g. a deliberately weakened relation). *)

val storage_base : Runtime.config
(** {!default_base} with WAL-backed (group-commit) repositories, small
    segments and an aggressive checkpoint period — the base the
    storage-fault profiles need to bite (on {!default_base}'s volatile
    repositories they are no-ops). *)

val termination_base : Runtime.config
(** {!default_base} with [Cooperative] termination and deadlock detection
    enabled — the base under which the [coordinator_killer] profile must
    leave zero stranded tentative entries and zero oracle violations. *)

val takeover_base : Runtime.config
(** {!termination_base} with coordinator takeover on — the base under
    which the [takeover_storm] profile must convert strandings into
    adopted commits with zero no-divergence monitor violations. *)

val overload_plan : Atomrep_workload.Openloop.t
(** The flash-crowd open-loop plan {!overload_base} runs: Zipf-skewed
    queue fanout over three objects at a 0.004/ms base rate with a 10x
    burst — precomputed from its own seed, so every scheme and seed
    replays the identical offered load. *)

val overload_base : Runtime.config
(** {!default_base} under {!overload_plan} with the graceful-degradation
    surface on: bounded in-flight window with a shed-by-class admission
    queue and sojourn deadline, a finite per-transaction retry budget,
    and the per-site circuit breaker. The base the [overload_storm]
    profile (rolling partitions through the flash crowd) is meant to be
    survived with — zero shed-safety or atomicity violations while
    goodput degrades gracefully. Termination and deadlock stay at the
    defaults so CLI flags compose. *)

val gray_base : Runtime.config
(** {!default_base} with the gray-failure mitigation layer on
    ({!Atomrep_replica.Runtime.default_gray}: hedged early-quorum rounds,
    latency scoring, slow-site demotion) — the base the [gray_storm]
    profile is meant to be survived with: bounded latency and zero
    [hedge_safety] violations. *)

val reconfig_base : Runtime.config
(** A base sized for reconfiguration campaigns: five sites, a majority
    queue, a stretched arrival process so the kills profile's staggered
    site loss lands mid-workload, and the failure-detector-driven
    coordinator enabled ({!Atomrep_replica.Runtime.default_reconfig}).
    Pair with the [kills] profile to exercise epoch handoffs under
    progressive permanent site loss. *)

val configure :
  base:Runtime.config ->
  scheme:Replicated.scheme ->
  seed:int ->
  n_txns:int ->
  intensity:float ->
  ?trace:Atomrep_obs.Trace.t ->
  profile ->
  Runtime.config
(** The exact configuration a campaign run uses — exposed so tests can
    replay a single cell. [trace] attaches a bus to the run (defaults to
    whatever [base] carries). *)

val check_run :
  ?monitors:Monitors.entry list ->
  ?sample:int ->
  Runtime.config ->
  Runtime.outcome * (string * string) list
(** Run once and judge it. With no [monitors] selection (the default)
    the two legacy history oracles gate the run untraced, exactly the
    pre-monitor behavior. With a selection, the run is traced (a fresh
    per-run bus unless the configuration already carries one) and the
    selected {!Monitors} entries {e are} the oracles: each spec is
    instantiated fresh for this run — no verdict bleeds between runs or
    shrink candidates — folded over the trace, and quiesced; failures
    come back in {!Atomrep_obs.Spec_monitor.failures} shape. Tracing
    does not perturb the run, so monitor-gated reproducer tuples still
    replay deterministically. *)

val shrink :
  ?monitors:Monitors.entry list -> base:Runtime.config -> violation -> violation
(** Bisect the transaction count down and then halve the fault intensity
    while the violation persists; returns the smallest reproducer found
    (a local minimum — neither dimension is monotone). *)

val trace_violation :
  ?monitors:Monitors.entry list ->
  ?base:Runtime.config ->
  violation ->
  Atomrep_obs.Trace.t * Atomrep_obs.Postmortem.t
(** Replay a (shrunk) violation with tracing on — determinism reproduces
    the same failure — and slice the trace to the causal cone of the
    violating actions. *)

val write_postmortem :
  ?monitors:Monitors.entry list ->
  base:Runtime.config ->
  dir:string ->
  violation ->
  violation
(** {!trace_violation}, rendered to [dir/postmortem-<slug>.txt] with the
    full trace beside it as [dir/trace-<slug>.jsonl]; returns the violation
    with [v_postmortem] set. Creates [dir] if needed. *)

val run_campaign :
  ?base:Runtime.config ->
  ?n_txns:int ->
  ?intensity:float ->
  ?monitors:Monitors.entry list ->
  ?sample:int ->
  ?postmortem_dir:string ->
  schemes:Replicated.scheme list ->
  profiles:profile list ->
  seeds:int ->
  unit ->
  report
(** Sweep seeds [0 .. seeds-1] for every scheme x profile pair. With
    [postmortem_dir], every shrunk violation is replayed under tracing and
    a causal postmortem plus the full trace are written there. *)

val reproduce :
  ?base:Runtime.config ->
  ?monitors:Monitors.entry list ->
  ?sample:int ->
  ?trace:Atomrep_obs.Trace.t ->
  scheme:Replicated.scheme ->
  profile:profile ->
  seed:int ->
  n_txns:int ->
  intensity:float ->
  unit ->
  Runtime.outcome * (string * string) list
(** Replay one reproducer tuple, optionally under tracing. *)

val reproducer_line : violation -> string
(** A self-contained [atomrep chaos --repro ...] command line. *)

val pp_violation : Format.formatter -> violation -> unit
val pp_report : Format.formatter -> report -> unit
