open Atomrep_replica

type task = {
  t_scheme : Replicated.scheme;
  t_profile : Campaign.profile;
  t_seed : int;
  t_intensity : float;
}

type report = {
  x_tasks : int;
  x_committed : int;
  x_aborted : int;
  x_violations : Campaign.violation list;
  x_shrunk : int;
  x_domains : int;
  x_wall_s : float;
}

(* One sweep run: everything it touches (engine, network, RNG, trace bus,
   metrics registry, monitor instances) is allocated inside the call, so
   any number of these can run on concurrent domains without sharing. *)
let run_task ~base ~n_txns ~monitors t =
  let cfg =
    Campaign.configure ~base ~scheme:t.t_scheme ~seed:t.t_seed ~n_txns
      ~intensity:t.t_intensity t.t_profile
  in
  let outcome, failures = Campaign.check_run ~monitors cfg in
  ( outcome.Runtime.metrics.Runtime.committed,
    outcome.Runtime.metrics.Runtime.aborted,
    failures )

let sweep ?domains ?(n_txns = 30) ?(monitors = Monitors.registry)
    ?(max_shrinks = 4) ?postmortem_dir ~base ~schemes ~profiles ~seeds
    ~intensities () =
  let tasks =
    List.concat_map
      (fun t_scheme ->
        List.concat_map
          (fun t_profile ->
            List.concat_map
              (fun t_intensity ->
                List.init seeds (fun t_seed ->
                    { t_scheme; t_profile; t_seed; t_intensity }))
              intensities)
          profiles)
      schemes
  in
  let n_tasks = List.length tasks in
  let domains =
    let d =
      match domains with
      | Some d -> d
      | None -> Domain.recommended_domain_count ()
    in
    max 1 (min d (max 1 n_tasks))
  in
  let t0 = Unix.gettimeofday () in
  let indexed = List.mapi (fun i t -> (i, t)) tasks in
  let results =
    if domains = 1 then
      List.map (fun (i, t) -> (i, t, run_task ~base ~n_txns ~monitors t)) indexed
    else begin
      (* Round-robin dealing spreads every (scheme, profile, intensity)
         stratum across workers, so no domain ends up with all the
         expensive cells. Results come back tagged with the task index
         and are re-merged in task order: the report is identical for
         any domain count. *)
      let buckets = Array.make domains [] in
      List.iter
        (fun (i, t) -> buckets.(i mod domains) <- (i, t) :: buckets.(i mod domains))
        indexed;
      let workers =
        Array.map
          (fun bucket ->
            let bucket = List.rev bucket in
            Domain.spawn (fun () ->
                List.map
                  (fun (i, t) -> (i, t, run_task ~base ~n_txns ~monitors t))
                  bucket))
          buckets
      in
      Array.to_list workers |> List.concat_map Domain.join
      |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
    end
  in
  let wall = Unix.gettimeofday () -. t0 in
  let committed = ref 0 and aborted = ref 0 in
  let raw =
    List.filter_map
      (fun (_, t, (c, a, failures)) ->
        committed := !committed + c;
        aborted := !aborted + a;
        if failures = [] then None
        else
          Some
            {
              Campaign.v_scheme = t.t_scheme;
              v_profile = t.t_profile;
              v_seed = t.t_seed;
              v_n_txns = n_txns;
              v_intensity = t.t_intensity;
              v_failures = failures;
              v_postmortem = None;
            })
      results
  in
  (* Shrinking replays many candidate runs, so it stays in the main
     domain (deterministic order) and is capped: the first [max_shrinks]
     violations get minimized reproducers and postmortems, the rest are
     reported at their original tuples. *)
  let shrunk = ref 0 in
  let violations =
    List.map
      (fun v ->
        if !shrunk >= max_shrinks then v
        else begin
          incr shrunk;
          let v = Campaign.shrink ~monitors ~base v in
          match postmortem_dir with
          | Some dir -> Campaign.write_postmortem ~monitors ~base ~dir v
          | None -> v
        end)
      raw
  in
  {
    x_tasks = n_tasks;
    x_committed = !committed;
    x_aborted = !aborted;
    x_violations = violations;
    x_shrunk = !shrunk;
    x_domains = domains;
    x_wall_s = wall;
  }

(* --- regression fixtures --------------------------------------------- *)

type fixture = {
  f_name : string;
  f_doc : string;
  f_base : Runtime.config;
  f_scheme : Replicated.scheme;
  f_profile : Campaign.profile;
  f_seed : int;
  f_n_txns : int;
  f_intensity : float;
  f_expect_violation : bool;
  f_check : Runtime.outcome -> (string * string) list;
}

let profile_exn name =
  match Campaign.find_profile name with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "builtin profile %s missing" name)

let fixtures =
  [
    {
      f_name = "ungated_rejoin";
      f_doc =
        "PR 1 double-dequeue: with resync gating and commit piggyback \
         disabled, a storm run loses a tentative append to \
         crash-with-amnesia and a stale rejoined view double-serves an \
         element — the monitors must still catch it";
      f_base = { Campaign.default_base with Runtime.ungated_rejoin = true };
      f_scheme = Replicated.Static;
      f_profile = profile_exn "storm";
      f_seed = 41;
      f_n_txns = 60;
      f_intensity = 2.0;
      f_expect_violation = true;
      f_check = (fun _ -> []);
    };
    {
      f_name = "takeover_adopt_fence";
      f_doc =
        "coordinator-killer tuple where a healed original coordinator \
         returns mid-takeover: adoptions and lease fences must both \
         happen, with every monitor quiet";
      f_base = Campaign.takeover_base;
      f_scheme = Replicated.Hybrid;
      f_profile = profile_exn "coordinator_killer";
      f_seed = 3;
      f_n_txns = 120;
      f_intensity = 1.0;
      f_expect_violation = false;
      f_check =
        (fun outcome ->
          let m = outcome.Runtime.metrics in
          (if m.Runtime.takeover_adoptions > 0 then []
           else [ ("takeover_adoptions", "expected at least one adopted commit") ])
          @
          if m.Runtime.takeover_fenced > 0 then []
          else [ ("takeover_fenced", "expected at least one fenced stale driver") ]);
    };
  ]

let find_fixture name =
  List.find_opt (fun f -> String.equal f.f_name name) fixtures

let fixture_names = List.map (fun f -> f.f_name) fixtures

type replay_result = {
  rr_fixture : fixture;
  rr_failures : (string * string) list;
  rr_checks : (string * string) list;
  rr_ok : bool;
}

let replay ?(monitors = Monitors.registry) f =
  let outcome, failures =
    Campaign.reproduce ~base:f.f_base ~monitors ~scheme:f.f_scheme
      ~profile:f.f_profile ~seed:f.f_seed ~n_txns:f.f_n_txns
      ~intensity:f.f_intensity ()
  in
  let checks = f.f_check outcome in
  {
    rr_fixture = f;
    rr_failures = failures;
    rr_checks = checks;
    rr_ok = (failures <> []) = f.f_expect_violation && checks = [];
  }
