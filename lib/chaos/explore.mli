(** The seed-sweep explorer: monitored campaigns fanned out over OCaml 5
    domains, plus the named regression fixtures it replays.

    A sweep is seeds x intensities for every scheme x profile pair, every
    run judged by a {!Monitors} selection (default: the whole catalogue).
    Runs are distributed round-robin over [domains] worker domains — each
    run owns all of its state (engine, network, trace bus, RNG, metrics
    registry), so runs parallelize without sharing — and results are
    merged back in task order, making the report independent of the
    domain count. Every violation is then shrunk {e in the main domain},
    in task order, with fresh monitor state per shrink candidate: the
    same sweep always yields the same shrunk reproducers.

    Fixtures pin empirically-found violations (and hardened-path clean
    runs) as named tuples the explorer can {!replay}: regression armor
    that the bug a campaign once caught still reproduces, and that the
    fix still holds. *)

open Atomrep_replica

type task = {
  t_scheme : Replicated.scheme;
  t_profile : Campaign.profile;
  t_seed : int;
  t_intensity : float;
}

type report = {
  x_tasks : int;  (** runs executed *)
  x_committed : int;
  x_aborted : int;
  x_violations : Campaign.violation list;
      (** in task order; the first [max_shrinks] are shrunk *)
  x_shrunk : int;  (** how many of [x_violations] were shrunk *)
  x_domains : int;
  x_wall_s : float;
}

val sweep :
  ?domains:int ->
  ?n_txns:int ->
  ?monitors:Monitors.entry list ->
  ?max_shrinks:int ->
  ?postmortem_dir:string ->
  base:Runtime.config ->
  schemes:Replicated.scheme list ->
  profiles:Campaign.profile list ->
  seeds:int ->
  intensities:float list ->
  unit ->
  report
(** Sweep seeds [0 .. seeds-1] x [intensities] for every scheme x profile
    pair on [domains] domains (default
    [Domain.recommended_domain_count ()], capped by the task count;
    [1] runs everything in the calling domain). [monitors] defaults to
    the full catalogue. At most [max_shrinks] violations (default 4,
    earliest tasks first) are bisection-shrunk and, with
    [postmortem_dir], replayed under tracing into causal postmortems;
    the rest are reported at their original tuples. *)

(** {1 Regression fixtures} *)

type fixture = {
  f_name : string;
  f_doc : string;
  f_base : Runtime.config;
  f_scheme : Replicated.scheme;
  f_profile : Campaign.profile;
  f_seed : int;
  f_n_txns : int;
  f_intensity : float;
  f_expect_violation : bool;
      (** [true]: the tuple must still violate (the bug must still
          reproduce); [false]: it must run clean *)
  f_check : Runtime.outcome -> (string * string) list;
      (** extra expectations on the outcome (e.g. adoptions happened);
          nonempty means the fixture failed even if the monitors agree *)
}

val fixtures : fixture list
(** The pinned reproducers:

    - [ungated_rejoin]: the PR 1 double-dequeue — with resync gating and
      commit piggyback disabled, a storm run loses a tentative append to
      crash-with-amnesia and a stale rejoined view double-serves an
      element. Must still violate.
    - [takeover_adopt_fence]: the coordinator-killer tuple whose dead
      coordinators force takeover adoptions and whose healed originals
      get lease-fenced. Must run clean, with at least one adoption and
      one fencing. *)

val find_fixture : string -> fixture option
val fixture_names : string list

type replay_result = {
  rr_fixture : fixture;
  rr_failures : (string * string) list;  (** what the monitors reported *)
  rr_checks : (string * string) list;  (** failed [f_check] expectations *)
  rr_ok : bool;
      (** verdict matches [f_expect_violation] and every check passed *)
}

val replay : ?monitors:Monitors.entry list -> fixture -> replay_result
(** Replay the fixture's tuple under the monitor selection (default: the
    whole catalogue) and judge it against its expectations. *)
