open Atomrep_replica
module Trace = Atomrep_obs.Trace
module SM = Atomrep_obs.Spec_monitor
module Monitor = Atomrep_obs.Monitor
module Assignment = Atomrep_quorum.Assignment
module Op_constraint = Atomrep_quorum.Op_constraint
module Termination = Atomrep_txn.Termination

type ctx = { cfg : Runtime.config; outcome : Runtime.outcome }
type kind = Safety | Liveness

type entry = {
  e_name : string;
  e_doc : string;
  e_kind : kind;
  e_observes : string list;
  e_spec : ctx -> SM.t;
}

(* Liveness grace: the whole retry budget (capped backoff x attempts), a
   few RPC round trips, and two reaper sweeps. An obligation opened closer
   to the horizon than this never had a fair chance to resolve. *)
let grace cfg =
  let retries = float_of_int (cfg.Runtime.max_retries + 1) *. cfg.Runtime.retry_delay_cap in
  let rpc = 4.0 *. cfg.Runtime.rpc_timeout in
  let reaper = 2.0 *. cfg.Runtime.reaper_every in
  Float.max 500.0 (retries +. rpc +. reaper)

(* The end-of-run fairness signal, folded by every liveness monitor: the
   runtime's final [Quiesce] event says whether the network ended healed
   and fully live — only then did every open obligation get its chance. *)
type fairness = { mutable fair : bool; mutable horizon_t : float }

let fold_quiesce f (e : Trace.event) =
  match e.Trace.kind with
  | Trace.Quiesce { up; n_sites; partitioned } ->
    f.fair <- up = n_sites && not partitioned;
    f.horizon_t <- e.Trace.time
  | _ -> ()

(* --- commit_atomicity / common_order -------------------------------- *)
(* The history-based oracles judge reconstructed behavioral histories,
   not individual events, so their declarative form is pure at_quiesce:
   no events observed, the whole check is the quiesce obligation. *)

let outcome_spec ~name check ctx =
  SM.make ~name
    ~on:(fun _ -> false)
    ~init:(fun () -> ())
    ~step:(fun () _ -> SM.Continue ())
    ~at_quiesce:(fun () ->
      List.map
        (fun (obj, why) -> Printf.sprintf "%s: %s" obj why)
        (check ctx.cfg ctx.outcome))
    ()

(* --- quorum_intersection -------------------------------------------- *)

(* Static leg: every object's threshold assignment must satisfy the
   intersection constraints its dependency relation induces. *)
let quorum_static ctx =
  SM.make ~name:"quorum_assignment"
    ~on:(fun _ -> false)
    ~init:(fun () -> ())
    ~step:(fun () _ -> SM.Continue ())
    ~at_quiesce:(fun () ->
      List.filter_map
        (fun (o : Runtime.object_config) ->
          let constraints = Op_constraint.of_relation o.Runtime.obj_relation in
          if Assignment.satisfies o.Runtime.obj_assignment constraints then None
          else
            Some
              (Printf.sprintf
                 "object %s: assignment violates a dependency intersection \
                  constraint (some initial(dependent) + final(supplier) <= n)"
                 o.Runtime.obj_name))
        ctx.cfg.Runtime.objects)
    ()

type attempt = { a_ok : bool; a_got : int; a_need : int; a_phase : string }

(* Operational leg: per-transaction machine remembering each operation's
   latest quorum-assembly outcome; committing while any operation's last
   attempt fell short means the protocol committed without the
   intersection the scheme's correctness argument assumes. *)
let quorum_operational () =
  SM.keyed ~name:"quorum_intersection"
    ~on:(SM.observes [ "quorum_read"; "quorum_append"; "txn_commit"; "txn_abort" ])
    ~key:(fun e ->
      match e.Trace.kind with
      | Trace.Quorum_read { txn; _ }
      | Trace.Quorum_append { txn; _ }
      | Trace.Txn_commit { txn }
      | Trace.Txn_abort { txn; _ } ->
        Some txn
      | _ -> None)
    ~init:(fun _ -> Hashtbl.create 8)
    ~step:(fun ops e ->
      match e.Trace.kind with
      | Trace.Quorum_read { op; got; need; _ } ->
        Hashtbl.replace ops op
          { a_ok = got >= need; a_got = got; a_need = need; a_phase = "initial" };
        SM.Continue ops
      | Trace.Quorum_append { op; got; need; _ } ->
        Hashtbl.replace ops op
          { a_ok = got >= need; a_got = got; a_need = need; a_phase = "final" };
        SM.Continue ops
      | Trace.Txn_abort _ -> SM.Accept
      | Trace.Txn_commit _ ->
        let short =
          Hashtbl.fold
            (fun op a acc -> if a.a_ok then acc else (op, a) :: acc)
            ops []
          |> List.sort compare
        in
        if short = [] then SM.Accept
        else
          SM.Violate
            ( ops,
              String.concat "; "
                (List.map
                   (fun (op, a) ->
                     Printf.sprintf
                       "committed though %s's last %s quorum got %d of %d" op
                       a.a_phase a.a_got a.a_need)
                   short) )
      | _ -> SM.Continue ops)
    ()

let quorum_intersection ctx =
  SM.all ~name:"quorum_intersection"
    [ quorum_static ctx; quorum_operational () ]

(* --- commit_durability ---------------------------------------------- *)

module IntSet = Set.Make (Int)

type durab = {
  (* (txn, op) -> distinct repository sites holding the tentative entry *)
  stored : (string * string, IntSet.t) Hashtbl.t;
  (* (txn, op) -> write-quorum size of the latest final-quorum append *)
  need : (string * string, int) Hashtbl.t;
  (* txn -> ops with a final-quorum obligation, first-seen order *)
  ops_of : (string, string list) Hashtbl.t;
}

(* "Nothing is reported committed before a write quorum stored it": the
   eMonitor_CommitDurability shape — per-entry stored-site sets, checked
   at the commit event. Repositories emit [Repo_append] when they log the
   tentative entry, so stored-site counts are ground truth (ack counts at
   the front-end can only under-report them). With ungated rejoin on
   volatile repositories a crash-with-amnesia erases the site's log for
   good, so the site leaves every stored set; gated rejoin resyncs the
   store from a quorum before the site serves again, and durable
   repositories keep what their WAL replays — both keep their credit. *)
let commit_durability ctx =
  SM.make ~name:"commit_durability"
    ~on:
      (SM.observes
         [ "repo_append"; "quorum_append"; "txn_commit"; "txn_abort"; "crash" ])
    ~init:(fun () ->
      { stored = Hashtbl.create 64; need = Hashtbl.create 64; ops_of = Hashtbl.create 32 })
    ~step:(fun st e ->
      let gc txn =
        (match Hashtbl.find_opt st.ops_of txn with
         | None -> ()
         | Some ops ->
           List.iter
             (fun op ->
               Hashtbl.remove st.stored (txn, op);
               Hashtbl.remove st.need (txn, op))
             ops);
        Hashtbl.remove st.ops_of txn
      in
      match e.Trace.kind with
      | Trace.Repo_append { txn; op; tentative = true } ->
        let k = (txn, op) in
        let s = Option.value ~default:IntSet.empty (Hashtbl.find_opt st.stored k) in
        Hashtbl.replace st.stored k (IntSet.add e.Trace.site s);
        SM.Continue st
      | Trace.Repo_append { tentative = false; _ } -> SM.Continue st
      | Trace.Quorum_append { txn; op; need; _ } ->
        Hashtbl.replace st.need (txn, op) need;
        let ops = Option.value ~default:[] (Hashtbl.find_opt st.ops_of txn) in
        if not (List.mem op ops) then Hashtbl.replace st.ops_of txn (ops @ [ op ]);
        SM.Continue st
      | Trace.Crash { site; amnesia = true }
        when ctx.cfg.Runtime.durability = Repository.Volatile
             && ctx.cfg.Runtime.ungated_rejoin ->
        (* Amnesia wipes a volatile repository, and with rejoin gating
           disabled nothing ever restores it: whatever the site stored is
           gone for good. Under gated rejoin the resync protocol rebuilds
           the store from a quorum before the site serves again, so the
           copy still counts toward durability. *)
        Hashtbl.iter
          (fun k s ->
            if IntSet.mem site s then Hashtbl.replace st.stored k (IntSet.remove site s))
          (Hashtbl.copy st.stored);
        SM.Continue st
      | Trace.Crash _ -> SM.Continue st
      | Trace.Txn_abort { txn; _ } ->
        gc txn;
        SM.Continue st
      | Trace.Txn_commit { txn } ->
        let short =
          List.filter_map
            (fun op ->
              let need = Option.value ~default:0 (Hashtbl.find_opt st.need (txn, op)) in
              let have =
                IntSet.cardinal
                  (Option.value ~default:IntSet.empty
                     (Hashtbl.find_opt st.stored (txn, op)))
              in
              if have >= need then None else Some (op, have, need))
            (Option.value ~default:[] (Hashtbl.find_opt st.ops_of txn))
        in
        gc txn;
        if short = [] then SM.Continue st
        else
          SM.Violate
            ( st,
              Printf.sprintf "%s reported committed before a write quorum stored it: %s"
                txn
                (String.concat "; "
                   (List.map
                      (fun (op, have, need) ->
                        Printf.sprintf "%s stored at %d site(s), write quorum %d" op
                          have need)
                      short)) )
      | _ -> SM.Continue st)
    ()

(* --- no_divergence --------------------------------------------------- *)

let no_divergence _ctx = Monitor.spec ()

(* --- stranded_entries ------------------------------------------------ *)

let stranded_entries ctx =
  SM.make ~name:"stranded_entries"
    ~on:(SM.observes [ "quiesce" ])
    ~init:(fun () -> { fair = false; horizon_t = 0.0 })
    ~step:(fun f e ->
      fold_quiesce f e;
      SM.Continue f)
    ~at_quiesce:(fun f ->
      let m = ctx.outcome.Runtime.metrics in
      if not (Termination.cooperative ctx.cfg.Runtime.termination && f.fair) then []
      else
        (if m.Runtime.stranded_entries > 0 then
           [
             Printf.sprintf
               "%d tentative entr%s still stranded at the horizon despite \
                cooperative termination and a healed, fully-live network"
               m.Runtime.stranded_entries
               (if m.Runtime.stranded_entries = 1 then "y" else "ies");
           ]
         else [])
        @
        if m.Runtime.stranded_live <> 0 then
          [
            Printf.sprintf
              "stranded-transaction gauge ended at %d (must drain to 0 under \
               cooperative termination)"
              m.Runtime.stranded_live;
          ]
        else [])
    ()

(* --- blocked_liveness ------------------------------------------------ *)

type blocked = {
  b_waiting : (string, int * float * string) Hashtbl.t;
      (* txn -> (event id, time, blocker) of the latest unresolved wait *)
  b_terminal : (string, unit) Hashtbl.t;
      (* txns that already reached a commit/abort verdict: a later
         lock_wait is a zombie retry attempt the front-end abandons
         without another event, not a new obligation *)
  b_fair : fairness;
}

let blocked_liveness ctx =
  let grace = grace ctx.cfg in
  SM.make ~name:"blocked_liveness"
    ~on:
      (SM.observes
         [ "lock_wait"; "lock_grant"; "txn_commit"; "txn_abort"; "deadlock"; "quiesce" ])
    ~init:(fun () ->
      {
        b_waiting = Hashtbl.create 32;
        b_terminal = Hashtbl.create 32;
        b_fair = { fair = false; horizon_t = 0.0 };
      })
    ~step:(fun st e ->
      (match e.Trace.kind with
       | Trace.Lock_wait { txn; blocker } ->
         if not (Hashtbl.mem st.b_terminal txn) then
           Hashtbl.replace st.b_waiting txn (e.Trace.id, e.Trace.time, blocker)
       | Trace.Lock_grant { txn; _ } -> Hashtbl.remove st.b_waiting txn
       | Trace.Txn_commit { txn } | Trace.Txn_abort { txn; _ } ->
         Hashtbl.replace st.b_terminal txn ();
         Hashtbl.remove st.b_waiting txn
       | Trace.Deadlock { victim; _ } -> Hashtbl.remove st.b_waiting victim
       | k -> fold_quiesce st.b_fair { e with Trace.kind = k });
      SM.Continue st)
    ~at_quiesce:(fun st ->
      if not st.b_fair.fair then []
      else
        Hashtbl.fold
          (fun txn (_, t, blocker) acc ->
            if st.b_fair.horizon_t -. t >= grace then
              Printf.sprintf
                "%s blocked on %s at t=%.0f and never resolved in the %.0fms \
                 before quiesce on a healed, fully-live network"
                txn blocker t
                (st.b_fair.horizon_t -. t)
              :: acc
            else acc)
          st.b_waiting []
        |> List.sort compare)
    ()

(* --- indoubt_liveness ------------------------------------------------ *)

type indoubt = {
  i_pending : (string, int * float) Hashtbl.t;
      (* txn -> (event id, time) of its durable commit point *)
  i_done : (string, unit) Hashtbl.t;
      (* txns that already reached a verdict: a commit point re-logged by
         a redrive or adoption does not reopen the obligation *)
  i_fair : fairness;
}

let indoubt_liveness ctx =
  let grace = grace ctx.cfg in
  SM.make ~name:"indoubt_liveness"
    ~on:
      (SM.observes
         [
           "commit_point"; "txn_decide"; "txn_commit"; "txn_abort"; "txn_redrive";
           "coop_term"; "quiesce";
         ])
    ~init:(fun () ->
      {
        i_pending = Hashtbl.create 32;
        i_done = Hashtbl.create 32;
        i_fair = { fair = false; horizon_t = 0.0 };
      })
    ~step:(fun st e ->
      (match e.Trace.kind with
       | Trace.Commit_point { txn } ->
         if not (Hashtbl.mem st.i_pending txn || Hashtbl.mem st.i_done txn) then
           Hashtbl.replace st.i_pending txn (e.Trace.id, e.Trace.time)
       | Trace.Txn_decide { txn; _ }
       | Trace.Txn_commit { txn }
       | Trace.Txn_abort { txn; _ }
       | Trace.Txn_redrive { txn; _ }
       | Trace.Coop_term { txn; _ } ->
         Hashtbl.replace st.i_done txn ();
         Hashtbl.remove st.i_pending txn
       | k -> fold_quiesce st.i_fair { e with Trace.kind = k });
      SM.Continue st)
    ~at_quiesce:(fun st ->
      if not (Termination.enabled ctx.cfg.Runtime.termination && st.i_fair.fair) then
        []
      else
        Hashtbl.fold
          (fun txn (_, t) acc ->
            if st.i_fair.horizon_t -. t >= grace then
              Printf.sprintf
                "%s logged a durable commit point at t=%.0f but reached no \
                 verdict in the %.0fms before quiesce despite enabled \
                 termination and a healed, fully-live network"
                txn t
                (st.i_fair.horizon_t -. t)
              :: acc
            else acc)
          st.i_pending []
        |> List.sort compare)
    ()

(* --- shed_safety ------------------------------------------------------ *)

type shed_st = {
  sh_shed : (string, float) Hashtbl.t; (* txn -> shed time *)
  (* txn -> repository sites holding an unresolved tentative entry *)
  sh_pending : (string, IntSet.t) Hashtbl.t;
  (* txn -> sites whose repository already resolved it (sticky: a stale
     tentative re-delivery after the resolution does not reopen the
     obligation — the repository drops it as a duplicate anyway) *)
  sh_resolved : (string, IntSet.t) Hashtbl.t;
  sh_fair : fairness;
}

(* "A shed transaction is cleanly aborted everywhere": it must never be
   reported committed, and once the network heals, no repository may
   still hold one of its tentative entries. [Repo_resolve] fires exactly
   when a repository first installs the transaction's terminal record
   (whatever the delivery path: the abort broadcast, gossip, or a
   status-poll offer), so resolution is tracked at the store, not at the
   front-end. *)
let shed_safety ctx =
  let grace = grace ctx.cfg in
  SM.make ~name:"shed_safety"
    ~on:
      (SM.observes
         [
           "crash"; "repo_append"; "repo_resolve"; "shed"; "txn_abort";
           "txn_commit"; "quiesce";
         ])
    ~init:(fun () ->
      {
        sh_shed = Hashtbl.create 16;
        sh_pending = Hashtbl.create 32;
        sh_resolved = Hashtbl.create 32;
        sh_fair = { fair = false; horizon_t = 0.0 };
      })
    ~step:(fun st e ->
      match e.Trace.kind with
      | Trace.Shed { txn; _ } ->
        Hashtbl.replace st.sh_shed txn e.Trace.time;
        SM.Continue st
      | Trace.Repo_append { txn; tentative = true; _ } ->
        let resolved =
          Option.value ~default:IntSet.empty (Hashtbl.find_opt st.sh_resolved txn)
        in
        if not (IntSet.mem e.Trace.site resolved) then begin
          let s =
            Option.value ~default:IntSet.empty (Hashtbl.find_opt st.sh_pending txn)
          in
          Hashtbl.replace st.sh_pending txn (IntSet.add e.Trace.site s)
        end;
        SM.Continue st
      | Trace.Repo_append { tentative = false; _ } -> SM.Continue st
      | Trace.Repo_resolve { txn; _ } ->
        let r =
          Option.value ~default:IntSet.empty (Hashtbl.find_opt st.sh_resolved txn)
        in
        Hashtbl.replace st.sh_resolved txn (IntSet.add e.Trace.site r);
        (match Hashtbl.find_opt st.sh_pending txn with
         | Some s -> Hashtbl.replace st.sh_pending txn (IntSet.remove e.Trace.site s)
         | None -> ());
        SM.Continue st
      | Trace.Crash { site; amnesia = true } ->
        (* Amnesia wipes a volatile repository's log (and a durable one
           replays only what its WAL kept): the site's unresolved entries
           are not evidence any more. Anything resurrected or re-delivered
           later re-enters via a fresh [Repo_append]. *)
        Hashtbl.iter
          (fun txn s ->
            if IntSet.mem site s then
              Hashtbl.replace st.sh_pending txn (IntSet.remove site s))
          (Hashtbl.copy st.sh_pending);
        SM.Continue st
      | Trace.Crash _ -> SM.Continue st
      | Trace.Txn_commit { txn } ->
        if Hashtbl.mem st.sh_shed txn then
          SM.Violate (st, Printf.sprintf "shed transaction %s reported committed" txn)
        else begin
          Hashtbl.remove st.sh_pending txn;
          Hashtbl.remove st.sh_resolved txn;
          SM.Continue st
        end
      | Trace.Txn_abort { txn; _ } ->
        (* A shed transaction's entries must still resolve at every
           repository, so only non-shed aborts are GC'd. *)
        if not (Hashtbl.mem st.sh_shed txn) then begin
          Hashtbl.remove st.sh_pending txn;
          Hashtbl.remove st.sh_resolved txn
        end;
        SM.Continue st
      | k ->
        fold_quiesce st.sh_fair { e with Trace.kind = k };
        SM.Continue st)
    ~at_quiesce:(fun st ->
      if not st.sh_fair.fair then []
      else
        Hashtbl.fold
          (fun txn t0 acc ->
            let pending =
              Option.value ~default:IntSet.empty (Hashtbl.find_opt st.sh_pending txn)
            in
            if
              (not (IntSet.is_empty pending))
              && st.sh_fair.horizon_t -. t0 >= grace
            then
              Printf.sprintf
                "shed transaction %s still holds tentative entries at site(s) \
                 %s on a healed, fully-live network"
                txn
                (String.concat ", "
                   (List.map string_of_int (IntSet.elements pending)))
              :: acc
            else acc)
          st.sh_shed []
        |> List.sort compare)
    ()

(* --- hedge_safety ----------------------------------------------------- *)

(* Hedged quorum rounds re-issue RPCs to spare members and take the first
   satisfying vote set; repositories are idempotent (sticky intentions,
   set-semantics logs, deduplicating vote acceptance), so duplicate or
   late deliveries must never change what anything decides. The
   trace-observable statement: each transaction's verdict is assigned once
   and never flips — the front-end emits exactly one terminal event, and
   every repository that resolves the transaction ([Repo_resolve] fires
   when a store first installs a terminal record, whatever the delivery
   path) resolves it with that same polarity. A duplicate front-end
   verdict is a double-apply; any polarity disagreement — front-end vs
   front-end, store vs store, or store vs front-end — means a hedged or
   straggler delivery re-drove a decision. Holds vacuously (and is
   checked!) with hedging off, which is exactly the point: the monitor
   cannot tell hedged runs from unhedged ones. *)
let hedge_safety _ctx =
  SM.keyed ~name:"hedge_safety"
    ~on:(SM.observes [ "txn_commit"; "txn_abort"; "repo_resolve" ])
    ~key:(fun e ->
      match e.Trace.kind with
      | Trace.Txn_commit { txn }
      | Trace.Txn_abort { txn; _ }
      | Trace.Repo_resolve { txn; _ } ->
        Some txn
      | _ -> None)
    ~init:(fun _ -> (None, None))
    ~step:(fun ((fe, store) as s) e ->
      let agree verdict = function
        | Some v when v <> verdict -> false
        | _ -> true
      in
      let txn_of () =
        match e.Trace.kind with
        | Trace.Txn_commit { txn }
        | Trace.Txn_abort { txn; _ }
        | Trace.Repo_resolve { txn; _ } ->
          txn
        | _ -> "?"
      in
      let verdict_name v = if v then "commit" else "abort" in
      match e.Trace.kind with
      | Trace.Txn_commit _ | Trace.Txn_abort _ ->
        let v = match e.Trace.kind with Trace.Txn_commit _ -> true | _ -> false in
        (match fe with
         | Some prev when prev = v ->
           SM.Violate
             ( s,
               Printf.sprintf "%s reported %s twice (duplicate terminal verdict)"
                 (txn_of ()) (verdict_name v) )
         | Some prev ->
           SM.Violate
             ( s,
               Printf.sprintf "%s verdict flipped from %s to %s" (txn_of ())
                 (verdict_name prev) (verdict_name v) )
         | None ->
           if agree v store then SM.Continue (Some v, store)
           else
             SM.Violate
               ( s,
                 Printf.sprintf
                   "%s reported %s after a repository resolved it as %s"
                   (txn_of ()) (verdict_name v)
                   (verdict_name (not v)) ))
      | Trace.Repo_resolve { committed; _ } ->
        if agree committed store && agree committed fe then
          SM.Continue (fe, Some committed)
        else
          SM.Violate
            ( s,
              Printf.sprintf
                "site %d resolved %s as %s against an earlier %s verdict"
                e.Trace.site (txn_of ())
                (verdict_name committed)
                (verdict_name (not committed)) )
      | _ -> SM.Continue s)
    ()

(* --- session_monotonic ------------------------------------------------ *)

(* Open-loop plans pin each client session to one home site, so a
   session's commit timestamps all come from that site's Lamport clock —
   which only moves forward (ticks, witnesses and skew all advance it).
   [Session_commit] is emitted at timestamp assignment, so trace order is
   clock-assignment order even when a partition delays one transaction's
   vote drive past a later-stamped sibling's verdict. Observing a session
   commit whose counter is not strictly above the session's previous one
   therefore means a clock ran backwards or a session leaked across
   sites. Closed-loop runs carry no sessions and emit no [Session_commit]
   events, so the monitor is vacuous there. *)
let session_monotonic _ctx =
  SM.keyed ~name:"session_monotonic"
    ~on:(SM.observes [ "session_commit" ])
    ~key:(fun e ->
      match e.Trace.kind with
      | Trace.Session_commit { session; _ } -> Some (string_of_int session)
      | _ -> None)
    ~init:(fun _ -> (min_int, "-"))
    ~step:(fun ((last, last_txn) as s) e ->
      match e.Trace.kind with
      | Trace.Session_commit { txn; counter; _ } ->
        if counter > last then SM.Continue (counter, txn)
        else
          SM.Violate
            ( s,
              Printf.sprintf
                "commit timestamp went backwards: %s committed at counter %d \
                 after %s at counter %d"
                txn counter last_txn last )
      | _ -> SM.Continue s)
    ()

(* --- registry --------------------------------------------------------- *)

let registry =
  [
    {
      e_name = "commit_atomicity";
      e_doc = "every object's history satisfies the scheme's local atomicity property";
      e_kind = Safety;
      e_observes = [];
      e_spec = outcome_spec ~name:"commit_atomicity" Runtime.check_atomicity;
    };
    {
      e_name = "common_order";
      e_doc = "committed transactions serialize in one system-wide order";
      e_kind = Safety;
      e_observes = [];
      e_spec = outcome_spec ~name:"common_order" Runtime.check_common_order;
    };
    {
      e_name = "no_divergence";
      e_doc = "no two drivers ever render opposite verdicts for a transaction";
      e_kind = Safety;
      e_observes = [ "txn_decide" ];
      e_spec = no_divergence;
    };
    {
      e_name = "quorum_intersection";
      e_doc =
        "assignments satisfy dependency intersection; no commit after a short quorum";
      e_kind = Safety;
      e_observes = [ "quorum_read"; "quorum_append"; "txn_commit"; "txn_abort" ];
      e_spec = quorum_intersection;
    };
    {
      e_name = "commit_durability";
      e_doc = "nothing is reported committed before a write quorum stored it";
      e_kind = Safety;
      e_observes = [ "repo_append"; "quorum_append"; "txn_commit"; "txn_abort"; "crash" ];
      e_spec = commit_durability;
    };
    {
      e_name = "shed_safety";
      e_doc = "every shed transaction is cleanly aborted everywhere";
      e_kind = Safety;
      e_observes =
        [
          "crash"; "repo_append"; "repo_resolve"; "shed"; "txn_abort";
          "txn_commit"; "quiesce";
        ];
      e_spec = shed_safety;
    };
    {
      e_name = "hedge_safety";
      e_doc =
        "verdicts are assigned once and never flip under hedged or duplicate \
         deliveries";
      e_kind = Safety;
      e_observes = [ "txn_commit"; "txn_abort"; "repo_resolve" ];
      e_spec = hedge_safety;
    };
    {
      e_name = "session_monotonic";
      e_doc = "per-session commit timestamps are strictly increasing";
      e_kind = Safety;
      e_observes = [ "session_commit" ];
      e_spec = session_monotonic;
    };
    {
      e_name = "stranded_entries";
      e_doc = "cooperative termination drains every stranded tentative entry";
      e_kind = Liveness;
      e_observes = [ "quiesce" ];
      e_spec = stranded_entries;
    };
    {
      e_name = "blocked_liveness";
      e_doc = "every blocked operation resolves once partitions heal";
      e_kind = Liveness;
      e_observes = [ "lock_wait"; "lock_grant"; "txn_commit"; "txn_abort"; "deadlock"; "quiesce" ];
      e_spec = blocked_liveness;
    };
    {
      e_name = "indoubt_liveness";
      e_doc = "every durable commit point reaches a verdict after recovery";
      e_kind = Liveness;
      e_observes = [ "commit_point"; "txn_decide"; "txn_commit"; "txn_abort"; "txn_redrive"; "coop_term"; "quiesce" ];
      e_spec = indoubt_liveness;
    };
  ]

let names = List.map (fun e -> e.e_name) registry
let find name = List.find_opt (fun e -> String.equal e.e_name name) registry

let of_names spec =
  match String.trim spec with
  | "all" -> Ok registry
  | "safety" -> Ok (List.filter (fun e -> e.e_kind = Safety) registry)
  | "liveness" -> Ok (List.filter (fun e -> e.e_kind = Liveness) registry)
  | spec ->
    let parts =
      String.split_on_char ',' spec |> List.map String.trim
      |> List.filter (fun s -> s <> "")
    in
    if parts = [] then Error "empty monitor selection"
    else
      let rec resolve acc = function
        | [] -> Ok (List.rev acc)
        | p :: rest -> (
          match find p with
          | Some e -> resolve (e :: acc) rest
          | None ->
            Error
              (Printf.sprintf "unknown monitor %S (expected all, safety, liveness, %s)"
                 p
                 (String.concat ", " names)))
      in
      resolve [] parts

let selection_doc =
  Printf.sprintf "all, safety, liveness, or a comma-separated subset of: %s"
    (String.concat ", " names)

let conjoin entries ctx =
  SM.all ~name:"monitors" (List.map (fun e -> e.e_spec ctx) entries)

let run entries ctx trace = SM.run (conjoin entries ctx) trace

let observed_labels entries =
  List.concat_map (fun e -> e.e_observes) entries
  |> List.sort_uniq String.compare

let forced entries =
  let labels = observed_labels entries in
  fun kind -> List.mem (Trace.kind_label kind) labels
