(** The monitor catalogue: every oracle the chaos campaigns can gate on,
    expressed as declarative {!Atomrep_obs.Spec_monitor} machines.

    Each entry names a property, says whether it is a safety property
    (violated by a specific event) or a liveness property (an obligation
    judged at quiesce, gated on the run's end-of-run fairness signal —
    the final {!Atomrep_obs.Trace.Quiesce} event), and builds its spec
    from a {!ctx}: the run's configuration and outcome. Trace-level
    monitors ignore the context; the history-based oracles
    ({!Atomrep_replica.Runtime.check_atomicity},
    {!Atomrep_replica.Runtime.check_common_order}) and the metric-gauge
    checks close over it, which is what reduces the legacy imperative
    checkers to thin [at_quiesce] shells of declarative machines.

    The catalogue:

    - [commit_atomicity] — every object's behavioral history satisfies
      the scheme's local atomicity property (safety, at quiesce).
    - [common_order] — committed transactions serialize in one
      system-wide order at every object (safety, at quiesce).
    - [no_divergence] — no two drivers ever render opposite verdicts for
      the same transaction (safety, per-txn keyed machine).
    - [quorum_intersection] — the static assignment satisfies every
      dependency constraint, and no transaction commits after an
      operation whose latest quorum attempt fell short (safety).
    - [commit_durability] — nothing is reported committed before a write
      quorum of repositories stored each of its final-quorum entries
      (safety, the eMonitor-CommitDurability shape: per-entry stored-site
      sets checked at the commit event).
    - [shed_safety] — a transaction shed by admission control is never
      reported committed, and once the network heals no repository still
      holds one of its tentative entries (safety; the residual-entry leg
      is fairness- and grace-gated like a liveness obligation).
    - [session_monotonic] — commit timestamps within one client session
      are strictly increasing (safety, per-session keyed machine; only
      open-loop plans emit session commits).
    - [stranded_entries] — under [Cooperative] termination with fairness,
      the stranded-entry count and the live stranded-transaction gauge
      both drain to zero (liveness).
    - [blocked_liveness] — every operation that blocked resolves (grant,
      commit, abort, or deadlock sentence) once partitions heal and all
      sites are back up (liveness, grace-windowed).
    - [indoubt_liveness] — every durable commit point reaches a verdict
      (decide, redrive, or cooperative termination) under an enabled
      termination protocol with fairness (liveness, grace-windowed). *)

open Atomrep_replica

type ctx = {
  cfg : Runtime.config;
  outcome : Runtime.outcome;
}
(** What a monitor may close over, available once the run finished. *)

type kind = Safety | Liveness

type entry = {
  e_name : string;
  e_doc : string;  (** one-line property statement *)
  e_kind : kind;
  e_observes : string list;
      (** the {!Atomrep_obs.Trace.kind_label}s the entry's spec subscribes
          to — static (a spec is only buildable from a post-run {!ctx}),
          so trace-bus sampling can compute its forced-kind set {e before}
          the run. A unit test pins each list to the built spec's actual
          [on] predicate ({!Atomrep_obs.Spec_monitor.observes_kind}). *)
  e_spec : ctx -> Atomrep_obs.Spec_monitor.t;
}

val registry : entry list
(** Every monitor, catalogue order. *)

val names : string list
val find : string -> entry option

val of_names : string -> (entry list, string) result
(** Parse a [--monitor] selection: ["all"] (the whole catalogue),
    ["safety"] / ["liveness"] (one kind), or a comma-separated list of
    entry names. [Error msg] names the first unknown monitor. *)

val selection_doc : string
(** Help text enumerating the valid selections (for CLI man pages). *)

val conjoin : entry list -> ctx -> Atomrep_obs.Spec_monitor.t
(** The selected entries as one conjunction (name ["monitors"]), each
    child short-circuiting independently. *)

val run :
  entry list -> ctx -> Atomrep_obs.Trace.t -> Atomrep_obs.Spec_monitor.violation list
(** Instantiate the conjunction fresh — no verdict bleed between runs or
    shrink candidates — fold the trace, quiesce. *)

val observed_labels : entry list -> string list
(** Union of the entries' [e_observes] lists, sorted, deduplicated. *)

val forced : entry list -> Atomrep_obs.Trace.kind -> bool
(** The forced-kind predicate for {!Atomrep_obs.Trace.set_sampling}: any
    kind some selected monitor subscribes to must stay full fidelity —
    sampling only thins kinds nothing consumes, so monitor verdicts are
    identical sampled or not. *)

val grace : Runtime.config -> float
(** The liveness grace window (simulated ms): an obligation still open at
    quiesce is only a violation if it had been open at least this long
    before the horizon — enough for the configured retry backoff, RPC
    timeouts, and a reaper sweep to have had their chance. *)
