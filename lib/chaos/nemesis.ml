open Atomrep_sim

type t =
  | Crash_storm of { mtbf : float; mttr : float; amnesia : bool }
  | Rolling_partition of { every : float; duration : float }
  | Flaky_links of { drop : float; dup : float; spike : float; one_way : bool }
  | Skew of { every : float; max_skew : int }
  | Flapping of { every : float; down_for : float }
  | Staggered_kill of { start : float; gap : float; victims : int list }
  | Storage_faults of {
      torn_every : float;
      rot_every : float;
      lost_every : float;
      full_every : float;
      full_for : float;
    }
  | Coordinator_killer of { p_kill : float; delay : float; mttr : float }
  | Takeover_killer of { p_kill : float; delay : float; mttr : float }
  | Fail_slow of { every : float; duration : float; factor : float }
  | Compose of t list

let spike_factor = 20.0

let rec scale k = function
  | Crash_storm c ->
    Crash_storm { c with mtbf = c.mtbf /. k; mttr = c.mttr *. k }
  | Rolling_partition r ->
    Rolling_partition { every = r.every /. k; duration = r.duration *. k }
  | Flaky_links f ->
    Flaky_links { f with drop = f.drop *. k; dup = f.dup *. k; spike = f.spike *. k }
  | Skew s ->
    Skew { s with max_skew = int_of_float (Float.round (float_of_int s.max_skew *. k)) }
  | Flapping f -> Flapping { every = f.every /. k; down_for = f.down_for *. k }
  | Staggered_kill s ->
    (* Intensity here is how early and how densely the kills land; the
       victim list itself is part of the scenario, not the intensity. *)
    Staggered_kill { s with start = s.start /. k; gap = s.gap /. k }
  | Storage_faults s ->
    Storage_faults
      {
        torn_every = s.torn_every /. k;
        rot_every = s.rot_every /. k;
        lost_every = s.lost_every /. k;
        full_every = s.full_every /. k;
        full_for = s.full_for *. k;
      }
  | Coordinator_killer c ->
    (* The ambush delay is the scenario (how deep into the commit window
       the shot lands); intensity turns up how often it fires and how
       long the corpse stays down. *)
    Coordinator_killer
      { c with p_kill = Float.min 1.0 (c.p_kill *. k); mttr = c.mttr *. k }
  | Takeover_killer c ->
    (* Same semantics as the coordinator killer, aimed at takers. *)
    Takeover_killer
      { c with p_kill = Float.min 1.0 (c.p_kill *. k); mttr = c.mttr *. k }
  | Fail_slow f ->
    (* Intensity means more frequent, longer, deeper slow episodes. *)
    Fail_slow
      { every = f.every /. k; duration = f.duration *. k; factor = f.factor *. k }
  | Compose l -> Compose (List.map (scale k) l)

let rec install t net =
  match t with
  | Crash_storm { mtbf; mttr; amnesia } ->
    if amnesia then Fault.crash_amnesia_recover_all net ~mtbf ~mttr
    else Fault.crash_recover_all net ~mtbf ~mttr
  | Rolling_partition { every; duration } -> Fault.rolling_partition net ~every ~duration
  | Flaky_links { drop; dup; spike; one_way } ->
    Network.set_drop_probability net drop;
    Network.set_duplication net dup;
    Network.set_delay_spike net ~probability:spike ~factor:spike_factor;
    if one_way then Fault.rotating_one_way net ~every:200.0 ~duration:80.0
  | Skew { every; max_skew } ->
    for site = 0 to Network.n_sites net - 1 do
      Fault.clock_skew net ~site ~every ~max_skew
    done
  | Flapping { every; down_for } ->
    (* Stagger the sites' cycles: simultaneous flapping of every site only
       measures unavailability; staggered flapping races recovery against
       quorum probes. *)
    let n = Network.n_sites net in
    for site = 0 to n - 1 do
      Fault.flap net ~site
        ~start:(every *. (1.0 +. (float_of_int site /. float_of_int n)))
        ~every ~down_for
    done
  | Staggered_kill { start; gap; victims } ->
    Fault.staggered_kill net ~start ~gap ~victims
  | Storage_faults { torn_every; rot_every; lost_every; full_every; full_for } ->
    (* A non-positive period disables that fault class. *)
    if torn_every > 0.0 then Fault.torn_writes net ~every:torn_every;
    if rot_every > 0.0 then Fault.bit_rot net ~every:rot_every;
    if lost_every > 0.0 then Fault.lost_flushes net ~every:lost_every;
    if full_every > 0.0 then
      Fault.disk_pressure net ~every:full_every ~duration:full_for
  | Coordinator_killer { p_kill; delay; mttr } ->
    Fault.coordinator_killer net ~p_kill ~delay ~mttr
  | Takeover_killer { p_kill; delay; mttr } ->
    Fault.takeover_killer net ~p_kill ~delay ~mttr
  | Fail_slow { every; duration; factor } ->
    Fault.fail_slow net ~every ~duration ~factor
  | Compose l -> List.iter (fun nem -> install nem net) l

let rec pp ppf = function
  | Crash_storm { mtbf; mttr; amnesia } ->
    Format.fprintf ppf "crash-storm(mtbf=%g,mttr=%g%s)" mtbf mttr
      (if amnesia then ",amnesia" else "")
  | Rolling_partition { every; duration } ->
    Format.fprintf ppf "rolling-partition(every=%g,for=%g)" every duration
  | Flaky_links { drop; dup; spike; one_way } ->
    Format.fprintf ppf "flaky-links(drop=%g,dup=%g,spike=%g%s)" drop dup spike
      (if one_way then ",one-way" else "")
  | Skew { every; max_skew } ->
    Format.fprintf ppf "skew(every=%g,max=%d)" every max_skew
  | Flapping { every; down_for } ->
    Format.fprintf ppf "flapping(every=%g,down=%g)" every down_for
  | Staggered_kill { start; gap; victims } ->
    Format.fprintf ppf "staggered-kill(start=%g,gap=%g,victims=[%s])" start gap
      (String.concat ";" (List.map string_of_int victims))
  | Storage_faults { torn_every; rot_every; lost_every; full_every; full_for } ->
    Format.fprintf ppf "storage(torn=%g,rot=%g,lost=%g,full=%g/%g)" torn_every
      rot_every lost_every full_every full_for
  | Coordinator_killer { p_kill; delay; mttr } ->
    Format.fprintf ppf "coordinator-killer(p=%g,delay=%g,mttr=%g)" p_kill delay
      mttr
  | Takeover_killer { p_kill; delay; mttr } ->
    Format.fprintf ppf "takeover-killer(p=%g,delay=%g,mttr=%g)" p_kill delay mttr
  | Fail_slow { every; duration; factor } ->
    Format.fprintf ppf "fail-slow(every=%g,for=%g,x%g)" every duration factor
  | Compose l ->
    Format.fprintf ppf "compose[%a]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ") pp)
      l

let to_string t = Format.asprintf "%a" pp t
