(** Composable nemesis DSL: declarative fault schedules for chaos
    campaigns.

    A nemesis is a pure description of a fault schedule; {!install} turns
    it into event-queue processes on a simulated network (it is designed to
    be passed as a {!Atomrep_replica.Runtime.config}'s [install_faults]).
    Because every schedule draws from the simulation engine's seeded RNG,
    a (seed, nemesis, workload) triple replays deterministically — the
    foundation for the campaign's self-contained reproducers. *)

type t =
  | Crash_storm of { mtbf : float; mttr : float; amnesia : bool }
      (** every site crash/recovers independently (exponential mtbf/mttr);
          with [amnesia], crashes lose volatile state and recoveries run
          the rejoin-resync protocol *)
  | Rolling_partition of { every : float; duration : float }
      (** periodically isolate one site, rotating the victim *)
  | Flaky_links of { drop : float; dup : float; spike : float; one_way : bool }
      (** message loss / duplication / latency-spike (reordering)
          probabilities; with [one_way], rotating asymmetric link outages *)
  | Skew of { every : float; max_skew : int }
      (** bounded clock skew injected into every site's Lamport clock *)
  | Flapping of { every : float; down_for : float }
      (** rapid staggered up/down cycling of every site *)
  | Staggered_kill of { start : float; gap : float; victims : int list }
      (** permanently crash each victim in turn, the first at [start] and
          each next one [gap] later — the progressive-site-loss scenario
          online reconfiguration exists for. [scale] compresses the
          schedule (earlier, denser kills); the victim list is part of the
          scenario and is not scaled. *)
  | Storage_faults of {
      torn_every : float;
      rot_every : float;
      lost_every : float;
      full_every : float;
      full_for : float;
    }
      (** storage faults against per-site WALs (requires a [Durable]
          runtime — see {!Atomrep_replica.Repository.durability}; they are
          no-ops on volatile repositories): at exponentially distributed
          intervals a random site gets a torn tail write armed, a durable
          record bit-rotted, a flush barrier silently lost, or its disk
          filled for [full_for] time units. Non-positive periods disable
          that fault class. [scale] makes faults denser and disk pressure
          longer. *)
  | Coordinator_killer of { p_kill : float; delay : float; mttr : float }
      (** ambush coordinators in their commit window: whenever a
          transaction enters phase 2 at its home site, crash that site
          with probability [p_kill] after an exponential delay of mean
          [delay] (recovering after mean [mttr]) — a targeted strike on
          the in-doubt window that the crash-safe termination protocol
          (decision log, cooperative termination, orphan reaper) must
          survive without stranding tentative entries. [scale] raises the
          kill probability (capped at 1) and the repair time; the delay
          is part of the scenario. *)
  | Takeover_killer of { p_kill : float; delay : float; mttr : float }
      (** ambush takers-over: whenever a site announces a takeover bid
          ({!Atomrep_sim.Network.note_takeover}), crash that site with
          probability [p_kill] after an exponential delay of mean [delay]
          (recovering after mean [mttr]) — mid-lease-round or
          mid-adopted-drive, so the next contender must out-bid the dead
          taker's lease. [scale] behaves like the coordinator killer's. *)
  | Fail_slow of { every : float; duration : float; factor : float }
      (** gray failures ({!Atomrep_sim.Fault.fail_slow}): at exponentially
          distributed intervals (mean [every]) a random site turns
          fail-slow for [duration] — up and answering, with service times
          inflated by a drawn degradation shape peaking at [factor]
          (constant, heavy-tailed, or creeping). [scale] makes episodes
          more frequent, longer, and deeper. *)
  | Compose of t list  (** install all of them *)

val scale : float -> t -> t
(** [scale k t] adjusts the fault intensity: [k = 1.0] is [t] itself,
    smaller [k] makes every fault rarer, shorter, or less probable.
    Used by the campaign shrinker to find the gentlest still-failing
    schedule. *)

val install : t -> Atomrep_sim.Network.t -> unit

val pp : Format.formatter -> t -> unit
val to_string : t -> string
