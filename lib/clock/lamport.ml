module Timestamp = struct
  type t = { counter : int; site : int }

  let compare a b =
    let c = Int.compare a.counter b.counter in
    if c <> 0 then c else Int.compare a.site b.site

  let equal a b = compare a b = 0
  let pp ppf { counter; site } = Format.fprintf ppf "%d.%d" counter site
  let zero = { counter = 0; site = 0 }
end

type t = { site : int; mutable counter : int }

let create ~site = { site; counter = 0 }
let site t = t.site

let tick t =
  t.counter <- t.counter + 1;
  { Timestamp.counter = t.counter; site = t.site }

let witness t (ts : Timestamp.t) =
  if ts.counter > t.counter then t.counter <- ts.counter

let skew t amount = if amount > 0 then t.counter <- t.counter + amount

let peek t = { Timestamp.counter = t.counter; site = t.site }
