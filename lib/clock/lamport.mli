(** Lamport logical clocks (Lamport [18]; paper §3.2, §4).

    Timestamps are pairs (counter, site) totally ordered lexicographically.
    The replication method timestamps log entries with Lamport time, and
    hybrid atomicity serializes committed actions by the Lamport timestamps
    of their Commit events; well-formed use guarantees the timestamp order
    extends the precedes order. *)

module Timestamp : sig
  type t = { counter : int; site : int }

  val compare : t -> t -> int
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
  val zero : t
end

type t
(** One site's clock. *)

val create : site:int -> t
val site : t -> int

val tick : t -> Timestamp.t
(** Advance the local counter and return a fresh timestamp. *)

val witness : t -> Timestamp.t -> unit
(** Merge a timestamp observed in a received message: the local counter
    becomes at least the observed counter. Subsequent {!tick}s then exceed
    every witnessed timestamp. *)

val skew : t -> int -> unit
(** Advance the local counter by the given (non-negative) amount without
    producing a timestamp — fault injection for bounded clock skew: the
    site's subsequent timestamps run ahead of real message order, which the
    timestamp-based schemes must tolerate (correctness never depends on
    clock synchrony, only liveness and fairness do). *)

val peek : t -> Timestamp.t
(** Current time without advancing. *)
