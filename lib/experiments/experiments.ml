open Atomrep_history
open Atomrep_spec
open Atomrep_atomicity
open Atomrep_core
open Atomrep_quorum
open Atomrep_stats
open Atomrep_replica

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let print_relation spec ~max_len name rel =
  let universe = Serial_spec.event_universe spec ~max_len in
  Format.printf "%s (%d pairs):@.%a@.@." name (Relation.cardinal rel)
    (Relation.pp_schematic ~universe ~invocations:spec.Serial_spec.invocations)
    rel

(* ------------------------------------------------------------------ *)
(* E1 — Figure 1-1: concurrency comparison                              *)
(* ------------------------------------------------------------------ *)

let e1_concurrency () =
  section "E1 (Figure 1-1): concurrency permitted by each local atomicity property";
  print_endline
    "Random well-formed histories classified by the three properties.\n\
     Expected shape: Dynamic-accepted is a strict subset of Hybrid-accepted;\n\
     Static is incomparable with both (nonzero counts in every difference\n\
     column except dynamic-only).\n";
  let table =
    Table.create ~title:"acceptance counts (2000 random histories per type)"
      ~columns:
        [ "type"; "static"; "hybrid"; "dynamic"; "hyb-not-sta"; "sta-not-hyb";
          "hyb-not-dyn"; "dyn-not-hyb" ]
  in
  let specs =
    [ Queue_type.spec; Prom.spec; Counter.spec; Register.spec; Double_buffer.spec ]
  in
  List.iter
    (fun spec ->
      let rng = Rng.create 1985 in
      let sta = ref 0 and hyb = ref 0 and dyn = ref 0 in
      let hyb_not_sta = ref 0 and sta_not_hyb = ref 0 in
      let hyb_not_dyn = ref 0 and dyn_not_hyb = ref 0 in
      for _ = 1 to 2000 do
        let h =
          Atomrep_workload.Histories.random rng spec ~max_actions:3 ~max_events:4
        in
        let s = Atomicity.is_static_atomic spec h in
        let y = Atomicity.is_hybrid_atomic spec h in
        let d = Atomicity.is_dynamic_atomic spec h in
        if s then incr sta;
        if y then incr hyb;
        if d then incr dyn;
        if y && not s then incr hyb_not_sta;
        if s && not y then incr sta_not_hyb;
        if y && not d then incr hyb_not_dyn;
        if d && not y then incr dyn_not_hyb
      done;
      Table.add_row table
        [
          spec.Serial_spec.name;
          Table.cell_int !sta;
          Table.cell_int !hyb;
          Table.cell_int !dyn;
          Table.cell_int !hyb_not_sta;
          Table.cell_int !sta_not_hyb;
          Table.cell_int !hyb_not_dyn;
          Table.cell_int !dyn_not_hyb;
        ])
    specs;
  Table.print table;
  print_endline
    "dyn-not-hyb = 0 everywhere confirms: strong dynamic atomicity is a\n\
     special case of hybrid atomicity (paper, section 5)."

(* ------------------------------------------------------------------ *)
(* E2 — Figure 1-2: availability comparison                             *)
(* ------------------------------------------------------------------ *)

let ops_of spec =
  List.sort_uniq String.compare
    (List.map (fun (inv : Event.Invocation.t) -> inv.op) spec.Serial_spec.invocations)

let hybrid_minimals_for = function
  | "Queue" ->
    Some
      (lazy
        (let checker =
           Hybrid_dep.make_checker Queue_type.spec ~max_events:4 ~max_actions:3
         in
         Hybrid_dep.minimal_hybrids checker
           ~base:(Static_dep.minimal Queue_type.spec ~max_len:4)))
  | "PROM" ->
    Some
      (lazy
        (let checker = Hybrid_dep.make_checker Prom.spec ~max_events:4 ~max_actions:3 in
         Hybrid_dep.minimal_hybrids checker
           ~base:(Static_dep.minimal Prom.spec ~max_len:4)))
  | "Register" ->
    Some
      (lazy
        (let checker =
           Hybrid_dep.make_checker Register.spec ~max_events:4 ~max_actions:3
         in
         Hybrid_dep.minimal_hybrids checker
           ~base:(Static_dep.minimal Register.spec ~max_len:4)))
  | "DoubleBuffer" ->
    Some
      (lazy
        (let checker =
           Hybrid_dep.make_checker Double_buffer.spec ~max_events:4 ~max_actions:3
         in
         Hybrid_dep.minimal_hybrids checker
           ~base:(Static_dep.minimal Double_buffer.spec ~max_len:4)))
  | _ -> None

let e2_availability () =
  section "E2 (Figure 1-2): quorum assignments admitted by each property";
  print_endline
    "Valid threshold assignments on n identical sites. An assignment is\n\
     hybrid-valid when its intersection relation contains SOME minimal\n\
     hybrid dependency relation (found by bounded search), static-valid\n\
     when it contains the unique minimal static relation (Theorem 6),\n\
     dynamic-valid via Theorem 10.\n";
  let table =
    Table.create ~title:"valid assignment counts"
      ~columns:
        [ "type"; "n"; "static"; "hybrid"; "dynamic"; "sta<=hyb";
          "hyb/dyn incomparable" ]
  in
  List.iter
    (fun spec ->
      let name = spec.Serial_spec.name in
      let ops = ops_of spec in
      let static_rel = Static_dep.minimal spec ~max_len:4 in
      let dynamic_rel = Dynamic_dep.minimal spec ~max_len:4 in
      let hybrids =
        match hybrid_minimals_for name with
        | Some l -> Lazy.force l
        | None -> []
      in
      let static_cs = Op_constraint.of_relation static_rel in
      let dynamic_cs = Op_constraint.of_relation dynamic_rel in
      let hybrid_css = List.map Op_constraint.of_relation hybrids in
      List.iter
        (fun n ->
          let all_unconstrained = Assignment.enumerate ~n_sites:n ~ops [] in
          let static_valid =
            List.filter (fun a -> Assignment.satisfies a static_cs) all_unconstrained
          in
          let hybrid_valid =
            List.filter
              (fun a -> List.exists (Assignment.satisfies a) hybrid_css)
              all_unconstrained
          in
          let dynamic_valid =
            List.filter (fun a -> Assignment.satisfies a dynamic_cs) all_unconstrained
          in
          let subset xs ys = List.for_all (fun x -> List.mem x ys) xs in
          let sta_le_hyb = subset static_valid hybrid_valid in
          let incomparable =
            (not (subset hybrid_valid dynamic_valid))
            && not (subset dynamic_valid hybrid_valid)
          in
          Table.add_row table
            [
              name;
              Table.cell_int n;
              Table.cell_int (List.length static_valid);
              Table.cell_int (List.length hybrid_valid);
              Table.cell_int (List.length dynamic_valid);
              string_of_bool sta_le_hyb;
              string_of_bool incomparable;
            ])
        [ 3; 4 ])
    [ Queue_type.spec; Prom.spec; Register.spec; Double_buffer.spec ];
  Table.print table;
  print_endline
    "Reading: hybrid >= static everywhere with sta<=hyb=true (Theorem 4 and\n\
     Theorem 5: maximizing concurrency under hybrid atomicity permits a\n\
     wider range of availability trade-offs than static). DoubleBuffer\n\
     shows hybrid and dynamic incomparable (Theorem 12): its dynamic\n\
     relation constrains Produce against Produce, which hybrid does not,\n\
     while hybrid constrains Consume against Produce, which dynamic does\n\
     not. Queue-like types project to comparable op-level constraints even\n\
     though the event-level relations are incomparable (Theorem 11)."

(* ------------------------------------------------------------------ *)
(* E3 — PROM quorum example                                             *)
(* ------------------------------------------------------------------ *)

let e3_prom () =
  section "E3 (section 4): PROM replicated among n identical sites";
  let n = 5 in
  let mk quorums =
    Assignment.make ~n_sites:n
      (List.map
         (fun (op, (i, f)) -> (op, { Assignment.initial = i; final = f }))
         quorums)
  in
  let hybrid_assignment = mk (Paper.prom_hybrid_quorums ~n) in
  let static_assignment = mk (Paper.prom_static_quorums ~n) in
  let static_cs =
    Op_constraint.of_relation (Static_dep.minimal Prom.spec ~max_len:4)
  in
  let hybrid_cs = Op_constraint.of_relation Paper.prom_hybrid_relation in
  Printf.printf
    "paper hybrid assignment  (Read 1, Seal %d, Write 1): hybrid-valid=%b static-valid=%b\n"
    n
    (Assignment.satisfies hybrid_assignment hybrid_cs)
    (Assignment.satisfies hybrid_assignment static_cs);
  Printf.printf
    "paper static assignment  (Read 1, Seal %d, Write %d): static-valid=%b\n\n" n n
    (Assignment.satisfies static_assignment static_cs);
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "operation availability, n=%d (hybrid: Write quorum 1 site; static: %d sites)"
           n n)
      ~columns:[ "p(site up)"; "Read hyb"; "Read sta"; "Write hyb"; "Write sta"; "Seal (both)" ]
  in
  List.iter
    (fun p ->
      Table.add_row table
        [
          Printf.sprintf "%.2f" p;
          Table.cell_float (Assignment.availability hybrid_assignment ~p "Read");
          Table.cell_float (Assignment.availability static_assignment ~p "Read");
          Table.cell_float (Assignment.availability hybrid_assignment ~p "Write");
          Table.cell_float (Assignment.availability static_assignment ~p "Write");
          Table.cell_float (Assignment.availability hybrid_assignment ~p "Seal");
        ])
    [ 0.50; 0.70; 0.80; 0.90; 0.95; 0.99 ];
  Table.print table;
  print_endline
    "Shape check (paper): static atomicity significantly reduces Write\n\
     availability — Write under hybrid needs 1 site, under static all n."

(* ------------------------------------------------------------------ *)
(* E4 — Theorems 4/5/6 on PROM                                          *)
(* ------------------------------------------------------------------ *)

let e4_static_vs_hybrid () =
  section "E4 (Theorems 4, 5, 6): static vs hybrid dependency on PROM";
  let static_rel = Static_dep.minimal Prom.spec ~max_len:4 in
  print_relation Prom.spec ~max_len:4 "minimal static dependency relation (Theorem 6)"
    static_rel;
  print_relation Prom.spec ~max_len:4 "paper hybrid dependency relation"
    Paper.prom_hybrid_relation;
  let checker = Hybrid_dep.make_checker Prom.spec ~max_events:4 ~max_actions:3 in
  Printf.printf "hybrid relation verifies as hybrid dependency relation: %b\n"
    (Hybrid_dep.is_hybrid_dependency checker Paper.prom_hybrid_relation);
  Printf.printf
    "hybrid relation contains the minimal static relation (static-valid): %b\n"
    (Relation.subset static_rel Paper.prom_hybrid_relation);
  Printf.printf "static relation verifies as hybrid dependency relation (Thm 4): %b\n\n"
    (Hybrid_dep.is_hybrid_dependency checker static_rel);
  (* Theorem 5's witness. *)
  let h = Paper.theorem5_history in
  let extended =
    h @ [ Behavioral.Exec (Paper.theorem5_appended, Action.of_string "B") ]
  in
  Printf.printf "Theorem 5 witness history H:\n%s\n\n" (Behavioral.to_string h);
  Printf.printf "H static atomic: %b\n" (Atomicity.is_static_atomic Prom.spec h);
  Printf.printf "H + [Write(y);Ok() B] static atomic: %b  (the static violation)\n"
    (Atomicity.is_static_atomic Prom.spec extended);
  Printf.printf "H + [Write(y);Ok() B] hybrid atomic: %b  (hybrid front-ends never emit it)\n"
    (Atomicity.is_hybrid_atomic Prom.spec extended)

(* ------------------------------------------------------------------ *)
(* E5 — FlagSet                                                         *)
(* ------------------------------------------------------------------ *)

let e5_flagset () =
  section "E5 (section 4): FlagSet has two distinct minimal hybrid relations";
  let checker =
    Hybrid_dep.make_checker Flag_set.spec ~universe:Paper.flagset_core_universe
      ~max_events:5 ~max_actions:3
  in
  let report name rel =
    match Hybrid_dep.verify checker rel with
    | Ok () -> Printf.printf "%-34s VERIFIED\n" name
    | Error ce ->
      Format.printf "%-34s rejected: %a@." name Hybrid_dep.pp_counterexample ce
  in
  report "base relation (paper: must fail)" Paper.flagset_base_relation;
  report "base + Shift(3)>=Shift(1)" Paper.flagset_alternative_31;
  report "base + Shift(2)>=Shift(1)" Paper.flagset_alternative_21;
  print_newline ();
  let minimal rel added =
    Hybrid_dep.is_hybrid_dependency checker rel
    && not (Hybrid_dep.is_hybrid_dependency checker (Relation.remove added rel))
  in
  Printf.printf "alternative 1 minimal over its added pair: %b\n"
    (minimal Paper.flagset_alternative_31 (Flag_set.shift_inv 3, Flag_set.shift_ok 1));
  Printf.printf "alternative 2 minimal over its added pair: %b\n"
    (minimal Paper.flagset_alternative_21 (Flag_set.shift_inv 2, Flag_set.shift_ok 1));
  Printf.printf "alternatives distinct: %b\n"
    (not (Relation.equal Paper.flagset_alternative_31 Paper.flagset_alternative_21));
  print_endline
    "\nConsequence: quorum assignments may let Shift(1) reach Shift(3) views\n\
     either directly or indirectly through Shift(2) — two incomparable\n\
     availability trade-offs for the same type."

(* ------------------------------------------------------------------ *)
(* E6 — Queue (Theorem 11)                                              *)
(* ------------------------------------------------------------------ *)

let cheapest_assignments ~n_sites ~ops constraints ~mix ~p =
  let assignments = Assignment.enumerate ~n_sites ~ops constraints in
  Assignment.best_for_mix ~p ~mix assignments

let e6_queue () =
  section "E6 (Theorem 11): Queue under static vs dynamic atomicity";
  let static_rel = Static_dep.minimal Queue_type.spec ~max_len:5 in
  let dynamic_rel = Dynamic_dep.minimal Queue_type.spec ~max_len:5 in
  print_relation Queue_type.spec ~max_len:5 "minimal static dependency relation"
    static_rel;
  print_relation Queue_type.spec ~max_len:5 "minimal dynamic dependency relation"
    dynamic_rel;
  Printf.printf "static is a dynamic dependency relation: %b (Theorem 11: no)\n"
    (Relation.subset dynamic_rel static_rel);
  Printf.printf "dynamic is a static dependency relation: %b (incomparable: no)\n\n"
    (Relation.subset static_rel dynamic_rel);
  let n = 5 in
  let mix = [ ("Enq", 1.0); ("Deq", 1.0) ] in
  let table =
    Table.create ~title:"cheapest balanced assignments, n=5, p=0.9"
      ~columns:[ "property"; "Enq (i,f)"; "Deq (i,f)"; "workload availability" ]
  in
  List.iter
    (fun (name, rel) ->
      let constraints = Op_constraint.of_relation rel in
      match
        cheapest_assignments ~n_sites:n ~ops:[ "Enq"; "Deq" ] constraints ~mix ~p:0.9
      with
      | None -> Table.add_row table [ name; "-"; "-"; "-" ]
      | Some a ->
        let s op =
          let z = Assignment.sizes_of a op in
          Printf.sprintf "(%d,%d)" z.Assignment.initial z.Assignment.final
        in
        Table.add_row table
          [
            name; s "Enq"; s "Deq";
            Table.cell_float (Assignment.workload_availability a ~p:0.9 ~mix);
          ])
    [ ("static", static_rel); ("dynamic", dynamic_rel) ];
  Table.print table

(* ------------------------------------------------------------------ *)
(* E7 — DoubleBuffer (Theorem 12)                                       *)
(* ------------------------------------------------------------------ *)

let e7_doublebuffer () =
  section "E7 (Theorem 12): DoubleBuffer's dynamic relation is not hybrid";
  let dynamic_rel = Dynamic_dep.minimal Double_buffer.spec ~max_len:4 in
  print_relation Double_buffer.spec ~max_len:4 "minimal dynamic dependency relation"
    dynamic_rel;
  Printf.printf "computed relation equals the paper's: %b\n\n"
    (Relation.equal dynamic_rel Paper.doublebuffer_dynamic_relation);
  let checker =
    Hybrid_dep.make_checker Double_buffer.spec ~max_events:4 ~max_actions:3
  in
  (match Hybrid_dep.verify checker dynamic_rel with
   | Ok () -> print_endline "UNEXPECTED: dynamic relation verified as hybrid"
   | Error ce ->
     Format.printf "dynamic relation rejected as hybrid, counterexample:@.  %a@.@."
       Hybrid_dep.pp_counterexample ce);
  let static_rel = Static_dep.minimal Double_buffer.spec ~max_len:4 in
  Printf.printf "static relation verifies as hybrid (Thm 4): %b\n"
    (Hybrid_dep.is_hybrid_dependency checker static_rel);
  (* The paper's own witness history through the atomicity checkers. *)
  let extended =
    Behavioral.Begin (Action.of_string "D")
    :: (Paper.theorem12_history
       @ [ Behavioral.Exec (Paper.theorem12_appended, Action.of_string "D") ])
  in
  Printf.printf "paper witness H hybrid atomic: %b; H+[Consume();Ok(x) D]: %b\n"
    (Atomicity.is_hybrid_atomic Double_buffer.spec Paper.theorem12_history)
    (Atomicity.is_hybrid_atomic Double_buffer.spec extended)

(* ------------------------------------------------------------------ *)
(* E8 — replicated-object simulation under faults                        *)
(* ------------------------------------------------------------------ *)

let scheme_relation scheme spec =
  match scheme with
  | Replicated.Locking -> Dynamic_dep.minimal spec ~max_len:4
  | Replicated.Static | Replicated.Hybrid -> Static_dep.minimal spec ~max_len:4

let e8_simulation () =
  section "E8 (section 3.2): replicated queue on the simulator, under faults";
  let table =
    Table.create ~title:"crash/recover faults: 120 transactions, 3 sites, majority quorums"
      ~columns:
        [ "scheme"; "mtbf"; "committed"; "aborted"; "unavailable"; "conflict";
          "mean latency" ]
  in
  List.iter
    (fun scheme ->
      List.iter
        (fun mtbf ->
          let faults net =
            if mtbf > 0.0 then
              Atomrep_sim.Fault.crash_recover_all net ~mtbf ~mttr:150.0
          in
          let cfg =
            {
              Runtime.default_config with
              scheme;
              n_txns = 120;
              seed = 1985;
              install_faults = faults;
              objects =
                [
                  {
                    Runtime.obj_name = "queue";
                    obj_spec = Queue_type.spec;
                    obj_relation = scheme_relation scheme Queue_type.spec;
                    obj_assignment = Runtime.default_queue_assignment ~n_sites:3;
            obj_members = None;
                  };
                ];
            }
          in
          let outcome = Runtime.run cfg in
          let m = outcome.Runtime.metrics in
          let atomic = Runtime.check_atomicity cfg outcome = [] in
          Table.add_row table
            [
              Replicated.scheme_name scheme ^ (if atomic then "" else " (VIOLATION!)");
              (if mtbf > 0.0 then Printf.sprintf "%.0f" mtbf else "none");
              Table.cell_int m.Runtime.committed;
              Table.cell_int m.Runtime.aborted;
              Table.cell_int m.Runtime.unavailable_aborts;
              Table.cell_int m.Runtime.conflict_aborts;
              Printf.sprintf "%.1f" (Summary.mean m.Runtime.txn_latency);
            ])
        [ 0.0; 800.0; 400.0; 200.0 ])
    [ Replicated.Hybrid; Replicated.Static; Replicated.Locking ];
  Table.print table;
  (* Partition comparison: §2's claim about available copies. *)
  let ac =
    Available_copies.run ~seed:3 ~n_sites:4 ~txns_per_side:2 ~partition_at:100.0
      ~heal_at:200.0 ()
  in
  let qc_committed, qc_aborted, qc_serializable =
    Available_copies.quorum_reference ~seed:3 ~n_sites:4 ~txns_per_side:2
      ~partition_at:100.0 ~heal_at:200.0 ()
  in
  let table2 =
    Table.create ~title:"partition (two halves) — available copies vs quorum consensus"
      ~columns:[ "method"; "committed"; "aborted"; "serializable" ]
  in
  Table.add_row table2
    [
      "available copies";
      Table.cell_int ac.Available_copies.committed;
      "0";
      string_of_bool ac.Available_copies.serializable;
    ];
  Table.add_row table2
    [
      "quorum consensus (hybrid)";
      Table.cell_int qc_committed;
      Table.cell_int qc_aborted;
      string_of_bool qc_serializable;
    ];
  Table.print table2;
  print_endline
    "Shape check: available copies commits on both sides of the partition\n\
     and loses serializability; quorum consensus sacrifices the minority\n\
     side's transactions and stays serializable (paper, section 2)."

(* ------------------------------------------------------------------ *)
(* E9 — concurrency under contention                                    *)
(* ------------------------------------------------------------------ *)

let e9_concurrency_sim () =
  section "E9: scheme concurrency under contention (simulator)";
  let run scheme spec relation assignment script label table =
    let cfg =
      {
        Runtime.default_config with
        scheme;
        n_txns = 100;
        seed = 77;
        arrival_mean = 6.0;
        (* high contention: arrivals faster than one txn's round trips *)
        objects =
          [
            {
              Runtime.obj_name = "obj";
              obj_spec = spec;
              obj_relation = relation;
              obj_assignment = assignment;
            obj_members = None;
            };
          ];
        script;
      }
    in
    let outcome = Runtime.run cfg in
    let m = outcome.Runtime.metrics in
    let atomic = Runtime.check_atomicity cfg outcome = [] in
    Table.add_row table
      [
        label;
        Replicated.scheme_name scheme ^ (if atomic then "" else " (VIOLATION!)");
        Table.cell_int m.Runtime.committed;
        Table.cell_int m.Runtime.conflict_aborts;
        Table.cell_int m.Runtime.rejected_aborts;
        Table.cell_int m.Runtime.blocked_waits;
        Printf.sprintf "%.1f" (Summary.mean m.Runtime.txn_latency);
      ]
  in
  let table =
    Table.create ~title:"100 transactions, 3 sites, high contention"
      ~columns:
        [ "workload"; "scheme"; "committed"; "conflict ab."; "rejected ab.";
          "blocked waits"; "mean latency" ]
  in
  let majority op_list =
    Assignment.make ~n_sites:3
      (List.map (fun op -> (op, { Assignment.initial = 2; final = 2 })) op_list)
  in
  (* PROM write-heavy workload: hybrid's Write/Write freedom shows. *)
  let prom_script =
    Atomrep_workload.Mixes.prom_mix ~seal_every:1000 ~target:"obj" ()
  in
  List.iter
    (fun scheme ->
      run scheme Prom.spec
        (scheme_relation scheme Prom.spec)
        (majority [ "Read"; "Seal"; "Write" ])
        prom_script "PROM writes" table)
    [ Replicated.Hybrid; Replicated.Static; Replicated.Locking ];
  (* Counter workload: commuting increments — all lock-free under
     type-specific analysis. *)
  let counter_script = Atomrep_workload.Mixes.counter_mix ~read_ratio:0.2 ~target:"obj" () in
  List.iter
    (fun scheme ->
      run scheme Counter.spec
        (scheme_relation scheme Counter.spec)
        (majority [ "Inc"; "Dec"; "Read" ])
        counter_script "Counter inc/dec" table)
    [ Replicated.Hybrid; Replicated.Static; Replicated.Locking ];
  (* Queue workload: every pair of operations conflicts somewhere. *)
  let queue_script = Atomrep_workload.Mixes.queue_mix ~enq_ratio:0.6 ~target:"obj" () in
  List.iter
    (fun scheme ->
      run scheme Queue_type.spec
        (scheme_relation scheme Queue_type.spec)
        (majority [ "Enq"; "Deq" ])
        queue_script "Queue enq/deq" table)
    [ Replicated.Hybrid; Replicated.Static; Replicated.Locking ];
  Table.print table;
  print_endline
    "Shape check (paper, sections 1 and 6): hybrid atomicity permits more\n\
     concurrency than strong dynamic atomicity — on PROM writes and on the\n\
     enqueue-heavy queue, locking's commutativity conflicts (Write/Write,\n\
     Enq/Enq) collapse throughput while hybrid sails through. On the\n\
     commuting counter all three are conflict-free. Static is incomparable\n\
     with hybrid: it avoids some blocking but pays timestamp-order\n\
     rejections (visible in the counter row)."

(* ------------------------------------------------------------------ *)
(* E10 — type-specific vs read/write classification                     *)
(* ------------------------------------------------------------------ *)

let read_write_classification spec =
  (* An operation is a Read iff no reachable invocation of it changes the
     state (bounded exploration); otherwise Update (read-modify-write) —
     the conservative classical classification. *)
  let histories = Serial_spec.enumerate spec ~max_len:3 in
  let changes op =
    List.exists
      (fun (_, state) ->
        List.exists
          (fun (inv : Event.Invocation.t) ->
            String.equal inv.op op
            && List.exists
                 (fun (_, state') -> not (Value.equal state state'))
                 (Serial_spec.responses spec state inv))
          spec.Serial_spec.invocations)
      histories
  in
  List.map (fun op -> (op, if changes op then `Update else `Read)) (ops_of spec)

let e10_read_write_ablation () =
  section "E10: type-specific constraints vs read/write classification";
  print_endline
    "The same types analyzed (a) with the paper's type-specific minimal\n\
     static relation and (b) with the classical read/write classification\n\
     (every operation must see every state-modifying operation).\n";
  let table =
    Table.create ~title:"n=4, p=0.9, uniform operation mix"
      ~columns:
        [ "type"; "assignments (typed)"; "assignments (r/w)"; "best avail (typed)";
          "best avail (r/w)" ]
  in
  List.iter
    (fun spec ->
      let ops = ops_of spec in
      let mix = List.map (fun op -> (op, 1.0)) ops in
      let typed_cs =
        Op_constraint.of_relation (Static_dep.minimal spec ~max_len:4)
      in
      let rw_cs = Op_constraint.read_write ~ops:(read_write_classification spec) in
      let typed = Assignment.enumerate ~n_sites:4 ~ops typed_cs in
      let rw = Assignment.enumerate ~n_sites:4 ~ops rw_cs in
      let best l =
        match Assignment.best_for_mix ~p:0.9 ~mix l with
        | None -> 0.0
        | Some a -> Assignment.workload_availability a ~p:0.9 ~mix
      in
      Table.add_row table
        [
          spec.Serial_spec.name;
          Table.cell_int (List.length typed);
          Table.cell_int (List.length rw);
          Table.cell_float (best typed);
          Table.cell_float (best rw);
        ])
    [ Counter.spec; Wset.spec; Queue_type.spec; Prom.spec; Register.spec ];
  Table.print table;
  print_endline
    "Shape check: the assignment counts are not directly comparable (the\n\
     two analyses constrain different quorum pairs), but the best\n\
     achievable availability under type-specific constraints is at least\n\
     that of the read/write classification, strictly better where the\n\
     type's structure helps (Counter's commuting increments, Queue's\n\
     Enq/Enq freedom); the Register is the degenerate case where the\n\
     classifications coincide (paper, section 2)."

(* ------------------------------------------------------------------ *)
(* E11 — weighted voting on heterogeneous sites                         *)
(* ------------------------------------------------------------------ *)

let e11_weighted_voting () =
  section "E11 (extension, Gifford): weighted voting on unreliable sites";
  print_endline
    "Five sites; site 0 is reliable (p=0.99), the rest flaky (p=0.70).\n\
     Register under its type-specific static constraints. Weighted voting\n\
     (weights 3,1,1,1,1) can concentrate quorums on the reliable site.\n";
  let constraints =
    Op_constraint.of_relation (Static_dep.minimal Register.spec ~max_len:4)
  in
  let ops = [ "Read"; "Write" ] in
  let p_up = [| 0.99; 0.7; 0.7; 0.7; 0.7 |] in
  let mix = [ ("Read", 1.0); ("Write", 1.0) ] in
  (* Uniform thresholds = weighted voting with unit weights. *)
  let uniform_all = Weighted.enumerate ~weights:(Array.make 5 1) ~ops constraints in
  let weighted_all = Weighted.enumerate ~weights:[| 3; 1; 1; 1; 1 |] ~ops constraints in
  let table =
    Table.create ~title:"best assignment per vote structure (p0=0.99, others 0.70)"
      ~columns:[ "votes"; "Read (vi,vf)"; "Write (vi,vf)"; "avail Read"; "avail Write"; "mix avail" ]
  in
  let report label all =
    match Weighted.best_for_mix ~p_up ~mix all with
    | None -> Table.add_row table [ label; "-"; "-"; "-"; "-"; "-" ]
    | Some best ->
      let show op =
        let vi, vf = List.assoc op best.Weighted.ops in
        Printf.sprintf "(%d,%d)" vi vf
      in
      let avail op = Weighted.availability_hetero best ~p_up op in
      let mix_avail =
        0.5 *. avail "Read" +. 0.5 *. avail "Write"
      in
      Table.add_row table
        [
          label; show "Read"; show "Write";
          Table.cell_float (avail "Read");
          Table.cell_float (avail "Write");
          Table.cell_float mix_avail;
        ]
  in
  report "1,1,1,1,1 (uniform)" uniform_all;
  report "3,1,1,1,1 (weighted)" weighted_all;
  Table.print table;
  print_endline
    "Shape check: weighting the reliable site raises availability over the\n\
     best uniform threshold assignment — the refinement the paper's\n\
     section 2 credits to Gifford, expressed in the same constraint\n\
     language as the type-specific analysis."

(* ------------------------------------------------------------------ *)
(* E12 — availability under partitions                                  *)
(* ------------------------------------------------------------------ *)

let e12_partition_availability () =
  section "E12 (extension, section 3 fault model): PROM availability under partitions";
  let n = 5 in
  let mk quorums =
    Assignment.make ~n_sites:n
      (List.map (fun (op, (i, f)) -> (op, { Assignment.initial = i; final = f })) quorums)
  in
  let hybrid_assignment = mk (Paper.prom_hybrid_quorums ~n) in
  let static_assignment = mk (Paper.prom_static_quorums ~n) in
  let table =
    Table.create
      ~title:
        "Monte-Carlo availability (100k trials), p(site up)=0.95, client at site 0"
      ~columns:
        [ "p(partition {0,1}|{2,3,4})"; "Write hyb"; "Write sta"; "Read hyb";
          "Seal (both)" ]
  in
  List.iter
    (fun p_part ->
      let model =
        {
          Montecarlo.p_up = Array.make n 0.95;
          partition_probability = p_part;
          groups = [ [ 0; 1 ]; [ 2; 3; 4 ] ];
        }
      in
      let rng = Rng.create 7 in
      let est a op =
        Montecarlo.estimate rng ~trials:100_000 model ~client_site:0 a ~op
      in
      Table.add_row table
        [
          Printf.sprintf "%.2f" p_part;
          Table.cell_float (est hybrid_assignment "Write");
          Table.cell_float (est static_assignment "Write");
          Table.cell_float (est hybrid_assignment "Read");
          Table.cell_float (est hybrid_assignment "Seal");
        ])
    [ 0.0; 0.2; 0.5; 0.9 ];
  Table.print table;
  print_endline
    "Shape check: hybrid's one-site Write quorum is indifferent to\n\
     partitions (the client's own side always suffices), while static's\n\
     all-sites Write quorum fails whenever the network splits — quorum\n\
     consensus degrades gracefully but asymmetrically across operations,\n\
     and Seal pays the price under both properties."

(* ------------------------------------------------------------------ *)
(* E13 — anti-entropy ablation                                          *)
(* ------------------------------------------------------------------ *)

let e13_anti_entropy () =
  section "E13 (extension): status gossip (anti-entropy) under faults";
  print_endline
    "Quorum intersection makes gossip unnecessary for safety; it shortens\n\
     the window in which commit/abort records are missing at some sites\n\
     (lost broadcasts, recovered repositories), which shows up as blocked\n\
     waits and conflict aborts. Hybrid scheme, crash/recover faults.\n";
  let table =
    Table.create ~title:"120 transactions, 3 sites, mtbf=300 mttr=150"
      ~columns:
        [ "gossip period"; "committed"; "aborted"; "conflict ab."; "blocked waits";
          "mean latency" ]
  in
  List.iter
    (fun anti_entropy_every ->
      let cfg =
        {
          Runtime.default_config with
          scheme = Replicated.Hybrid;
          n_txns = 120;
          seed = 4242;
          anti_entropy_every;
          install_faults =
            (fun net -> Atomrep_sim.Fault.crash_recover_all net ~mtbf:300.0 ~mttr:150.0);
        }
      in
      let outcome = Runtime.run cfg in
      let m = outcome.Runtime.metrics in
      let atomic = Runtime.check_atomicity cfg outcome = [] in
      Table.add_row table
        [
          (match anti_entropy_every with
           | None -> "none"
           | Some t -> Printf.sprintf "%.0f" t)
          ^ (if atomic then "" else " (VIOLATION!)");
          Table.cell_int m.Runtime.committed;
          Table.cell_int m.Runtime.aborted;
          Table.cell_int m.Runtime.conflict_aborts;
          Table.cell_int m.Runtime.blocked_waits;
          Printf.sprintf "%.1f" (Summary.mean m.Runtime.txn_latency);
        ])
    [ None; Some 100.0; Some 25.0 ];
  Table.print table;
  print_endline
    "Shape check: gossip never changes the atomicity verdict (safety is\n\
     the quorums' job) and tends to reduce blocking by resolving stale\n\
     tentative entries sooner."

(* ------------------------------------------------------------------ *)

let all =
  [
    ("e1", "Figure 1-1: concurrency comparison", e1_concurrency);
    ("e2", "Figure 1-2: availability comparison", e2_availability);
    ("e3", "PROM quorum example (section 4)", e3_prom);
    ("e4", "Theorems 4/5/6 on PROM", e4_static_vs_hybrid);
    ("e5", "FlagSet minimal hybrid relations (section 4)", e5_flagset);
    ("e6", "Queue, Theorem 11", e6_queue);
    ("e7", "DoubleBuffer, Theorem 12", e7_doublebuffer);
    ("e8", "replication under faults (section 3.2, section 2)", e8_simulation);
    ("e9", "scheme concurrency under contention", e9_concurrency_sim);
    ("e10", "type-specific vs read/write ablation", e10_read_write_ablation);
    ("e11", "weighted voting on heterogeneous sites", e11_weighted_voting);
    ("e12", "availability under partitions (Monte Carlo)", e12_partition_availability);
    ("e13", "anti-entropy ablation", e13_anti_entropy);
  ]

let run_by_id id =
  match List.find_opt (fun (i, _, _) -> String.equal i id) all with
  | Some (_, _, run) ->
    run ();
    true
  | None -> false
