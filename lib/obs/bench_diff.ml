type row = {
  r_label : string;
  r_committed : float;
  r_wall_s : float option;
  r_per_s : float option;
}

type entry = {
  b_file : string;
  b_index : int;
  b_kind : string;
  b_headline : float option;
  b_rows : row list;
}

let num = function Json.Num n -> Some n | _ -> None

(* Harvest every object node carrying a numeric "committed" field, wherever
   it sits in the file — the BENCH schemas differ per PR (schemes arrays,
   modes maps, explore sweeps) but all report committed counts, and most
   report wall_s / committed_per_s beside them. *)
let rows_of_json json =
  let acc = ref [] in
  let label_of_element path j idx =
    let tag =
      List.find_map
        (fun f ->
          match Json.member f j with Some (Json.Str s) -> Some s | _ -> None)
        [ "scheme"; "mode"; "name"; "profile" ]
    in
    let seg = match tag with Some s -> s | None -> string_of_int idx in
    if path = "" then seg else path ^ "." ^ seg
  in
  let rec walk path j =
    match j with
    | Json.Obj fields ->
      (match Option.bind (Json.member "committed" j) num with
       | Some committed ->
         let wall = Option.bind (Json.member "wall_s" j) num in
         let per_s =
           match Option.bind (Json.member "committed_per_s" j) num with
           | Some p -> Some p
           | None ->
             (match wall with
              | Some w when w > 0.0 -> Some (committed /. w)
              | _ -> None)
         in
         acc :=
           { r_label = path; r_committed = committed; r_wall_s = wall;
             r_per_s = per_s }
           :: !acc
       | None -> ());
      List.iter
        (fun (k, v) ->
          walk (if path = "" then k else path ^ "." ^ k) v)
        fields
    | Json.List items ->
      List.iteri (fun i item -> walk (label_of_element path item i) item) items
    | _ -> ()
  in
  walk "" json;
  List.rev !acc

let index_of_file file =
  let base = Filename.basename file in
  let stem = Filename.remove_extension base in
  let prefix = "BENCH_" in
  let plen = String.length prefix in
  if
    String.length stem > plen
    && String.uppercase_ascii (String.sub stem 0 plen) = prefix
  then int_of_string_opt (String.sub stem plen (String.length stem - plen))
  else None

let of_json ~file json =
  let kind =
    match Json.member "bench" json with
    | Some (Json.Str s) -> s
    | _ -> Filename.remove_extension (Filename.basename file)
  in
  {
    b_file = Filename.basename file;
    b_index = Option.value ~default:(-1) (index_of_file file);
    b_kind = kind;
    b_headline = Option.bind (Json.member "headline" json) num;
    b_rows = rows_of_json json;
  }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let scan ~dir =
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           index_of_file f <> None && Filename.check_suffix f ".json")
    |> List.sort compare
  in
  List.filter_map
    (fun f ->
      let path = Filename.concat dir f in
      match Json.parse (read_file path) with
      | Ok json -> Some (of_json ~file:f json)
      | Error _ -> None)
    files
  |> List.sort (fun a b -> compare a.b_index b.b_index)

(* One comparable figure per entry: the best committed/s any row reports.
   Cross-PR BENCH files measure different workloads, so the gate only ever
   compares entries of the same kind — the headline is the within-kind
   yardstick. *)
let headline e =
  match e.b_headline with
  | Some h -> Some h
  | None ->
    List.fold_left
      (fun acc r ->
        match (acc, r.r_per_s) with
        | None, p -> p
        | Some a, Some p -> Some (Float.max a p)
        | Some _, None -> acc)
      None e.b_rows

type verdict = {
  v_newest : entry;
  v_baseline : entry option;
  v_ratio : float option; (* newest headline / baseline headline *)
  v_regressed : bool;
}

let gate entries ~threshold =
  match List.rev entries with
  | [] -> None
  | newest :: older_rev ->
    let baseline =
      List.find_opt
        (fun e -> e.b_kind = newest.b_kind && e.b_index < newest.b_index)
        older_rev
    in
    let ratio =
      match (baseline, headline newest) with
      | Some b, Some hn ->
        (match headline b with
         | Some hb when hb > 0.0 -> Some (hn /. hb)
         | _ -> None)
      | _ -> None
    in
    let regressed =
      match ratio with Some r -> r < 1.0 -. threshold | None -> false
    in
    Some
      { v_newest = newest; v_baseline = baseline; v_ratio = ratio;
        v_regressed = regressed }

let pp_trajectory ppf entries =
  Format.fprintf ppf "%-14s %-22s %-34s %10s %10s %12s@." "FILE" "KIND" "ROW"
    "COMMITTED" "WALL(s)" "COMMITTED/s";
  List.iter
    (fun e ->
      match e.b_rows with
      | [] ->
        Format.fprintf ppf "%-14s %-22s %-34s %10s %10s %12s@." e.b_file
          e.b_kind "-" "-" "-" "-"
      | rows ->
        List.iter
          (fun r ->
            let fo = function
              | Some v -> Printf.sprintf "%.6g" v
              | None -> "-"
            in
            Format.fprintf ppf "%-14s %-22s %-34s %10.6g %10s %12s@." e.b_file
              e.b_kind
              (if r.r_label = "" then "." else r.r_label)
              r.r_committed (fo r.r_wall_s) (fo r.r_per_s))
          rows)
    entries

let pp_verdict ppf v =
  match v.v_baseline with
  | None ->
    Format.fprintf ppf
      "bench-diff: %s (kind %S) has no earlier entry of its kind — nothing \
       to gate@."
      v.v_newest.b_file v.v_newest.b_kind
  | Some b ->
    let ratio = match v.v_ratio with Some r -> r | None -> Float.nan in
    Format.fprintf ppf
      "bench-diff: %s vs %s (kind %S): headline committed/s ratio %.3f — %s@."
      v.v_newest.b_file b.b_file v.v_newest.b_kind ratio
      (if v.v_regressed then "REGRESSED" else "ok")
