(** Cross-PR BENCH regression gate.

    Parses the committed [BENCH_*.json] history (one file per PR, schemas
    varying per experiment) into a committed / wall-clock / committed-per-s
    trajectory, and judges the newest entry against the most recent earlier
    entry {e of the same kind} (the file's ["bench"] field). Different
    kinds measure different workloads, so cross-kind comparison would gate
    on noise; a kind's first entry establishes its baseline and later
    entries must not fall more than the threshold below it. *)

type row = {
  r_label : string;  (** dotted JSON path, e.g. ["schemes.hybrid"] *)
  r_committed : float;
  r_wall_s : float option;
  r_per_s : float option;
      (** ["committed_per_s"] if present, else committed/wall_s *)
}

type entry = {
  b_file : string;
  b_index : int;  (** the N of BENCH_N.json; -1 if unparsable *)
  b_kind : string;  (** the ["bench"] field, else the filename stem *)
  b_headline : float option;
      (** a top-level numeric ["headline"] field, when the schema declares
          its own comparable figure (the "load" kind stores its
          goodput-at-knee here) *)
  b_rows : row list;
}

val of_json : file:string -> Json.t -> entry
(** Harvest every object node carrying a numeric ["committed"] field. *)

val scan : dir:string -> entry list
(** Parse every [BENCH_<n>.json] in [dir], sorted by index. Unparsable
    files are skipped. *)

val headline : entry -> float option
(** The entry's comparable figure: the stored ["headline"] when the
    schema declares one (kind "load": admission-on goodput at the knee),
    else its best committed/s over all rows. *)

type verdict = {
  v_newest : entry;
  v_baseline : entry option;
      (** most recent earlier entry of the newest entry's kind *)
  v_ratio : float option;
  v_regressed : bool;  (** ratio fell below [1 - threshold] *)
}

val gate : entry list -> threshold:float -> verdict option
(** [None] only when [entries] is empty. Without a same-kind baseline (or
    without comparable headlines) the verdict passes. *)

val pp_trajectory : Format.formatter -> entry list -> unit
val pp_verdict : Format.formatter -> verdict -> unit
