open Atomrep_stats

let args_json (kind : Trace.kind) =
  let fields =
    match kind with
    | Trace.Rpc_send { src; dst } | Trace.Rpc_recv { src; dst } ->
      [ ("src", Json.int src); ("dst", Json.int dst) ]
    | Trace.Rpc_timeout { src; dst; timeout; elapsed } ->
      [ ("src", Json.int src); ("dst", Json.int dst);
        ("timeout", Json.Num timeout); ("elapsed", Json.Num elapsed) ]
    | Trace.Rpc_drop { src; dst; reason; elapsed } ->
      [ ("src", Json.int src); ("dst", Json.int dst); ("reason", Json.Str reason);
        ("elapsed", Json.Num elapsed) ]
    | Trace.Rpc_hedge { src; dst; delay } ->
      [ ("src", Json.int src); ("dst", Json.int dst); ("delay", Json.Num delay) ]
    | Trace.Rpc_outcome { src; dst; ok; elapsed } ->
      [ ("src", Json.int src); ("dst", Json.int dst); ("ok", Json.Bool ok);
        ("elapsed", Json.Num elapsed) ]
    | Trace.Slow_inject { site; mode } ->
      [ ("site", Json.int site); ("mode", Json.Str mode) ]
    | Trace.Detector_slow { site; slow; score } ->
      [ ("site", Json.int site); ("slow", Json.Bool slow);
        ("score", Json.Num score) ]
    | Trace.Quorum_read { txn; op; got; need }
    | Trace.Quorum_append { txn; op; got; need } ->
      [ ("txn", Json.Str txn); ("op", Json.Str op); ("got", Json.int got);
        ("need", Json.int need) ]
    | Trace.Repo_append { txn; op; tentative } ->
      [ ("txn", Json.Str txn); ("op", Json.Str op); ("tentative", Json.Bool tentative) ]
    | Trace.Txn_begin { txn } | Trace.Txn_commit { txn } -> [ ("txn", Json.Str txn) ]
    | Trace.Txn_abort { txn; reason } ->
      [ ("txn", Json.Str txn); ("reason", Json.Str reason) ]
    | Trace.Lock_wait { txn; blocker } ->
      [ ("txn", Json.Str txn); ("blocker", Json.Str blocker) ]
    | Trace.Lock_grant { txn; op } -> [ ("txn", Json.Str txn); ("op", Json.Str op) ]
    | Trace.Epoch_seal { epoch } | Trace.Epoch_transfer { epoch } ->
      [ ("epoch", Json.int epoch) ]
    | Trace.Epoch_fence { epoch; stale } ->
      [ ("epoch", Json.int epoch); ("stale", Json.int stale) ]
    | Trace.Crash { site; amnesia } ->
      [ ("site", Json.int site); ("amnesia", Json.Bool amnesia) ]
    | Trace.Recover { site; resynced } ->
      [ ("site", Json.int site); ("resynced", Json.Bool resynced) ]
    | Trace.Partition { n_groups } -> [ ("n_groups", Json.int n_groups) ]
    | Trace.Heal -> []
    | Trace.Detector_suspect { site } | Trace.Detector_trust { site } ->
      [ ("site", Json.int site) ]
    | Trace.Wal_flush { site; records } ->
      [ ("site", Json.int site); ("records", Json.int records) ]
    | Trace.Wal_checkpoint { site; kept; dropped_segments } ->
      [ ("site", Json.int site); ("kept", Json.int kept);
        ("dropped_segments", Json.int dropped_segments) ]
    | Trace.Wal_full { site } -> [ ("site", Json.int site) ]
    | Trace.Wal_replay { site; replayed; truncated; corrupt } ->
      [ ("site", Json.int site); ("replayed", Json.int replayed);
        ("truncated", Json.int truncated); ("corrupt", Json.Bool corrupt) ]
    | Trace.Store_fault { site; fault } ->
      [ ("site", Json.int site); ("fault", Json.Str fault) ]
    | Trace.Commit_point { txn } -> [ ("txn", Json.Str txn) ]
    | Trace.Txn_redrive { txn; outcome } ->
      [ ("txn", Json.Str txn); ("outcome", Json.Str outcome) ]
    | Trace.Coop_term { txn; outcome } ->
      [ ("txn", Json.Str txn); ("outcome", Json.Str outcome) ]
    | Trace.Orphan_gc { site; resolved } ->
      [ ("site", Json.int site); ("resolved", Json.int resolved) ]
    | Trace.Txn_decide { txn; site; committed } ->
      [ ("txn", Json.Str txn); ("site", Json.int site);
        ("committed", Json.Bool committed) ]
    | Trace.Takeover_acquire { txn; site; term } ->
      [ ("txn", Json.Str txn); ("site", Json.int site); ("term", Json.int term) ]
    | Trace.Takeover_fence { txn; site; term; granted } ->
      [ ("txn", Json.Str txn); ("site", Json.int site); ("term", Json.int term);
        ("granted", Json.int granted) ]
    | Trace.Quiesce { up; n_sites; partitioned } ->
      [ ("up", Json.int up); ("n_sites", Json.int n_sites);
        ("partitioned", Json.Bool partitioned) ]
    | Trace.Deadlock { victim; cycle } ->
      [ ("victim", Json.Str victim);
        ("cycle", Json.List (List.map (fun t -> Json.Str t) cycle)) ]
    | Trace.Span_begin { span; parent; label } ->
      [ ("span", Json.int span);
        ("parent", match parent with Some p -> Json.int p | None -> Json.Null);
        ("label", Json.Str label) ]
    | Trace.Span_end { span; outcome } ->
      [ ("span", Json.int span); ("outcome", Json.Str outcome) ]
    | Trace.Shed { txn; reason } ->
      [ ("txn", Json.Str txn); ("reason", Json.Str reason) ]
    | Trace.Repo_resolve { txn; committed } ->
      [ ("txn", Json.Str txn); ("committed", Json.Bool committed) ]
    | Trace.Session_commit { session; txn; counter; site } ->
      [ ("session", Json.int session); ("txn", Json.Str txn);
        ("counter", Json.int counter); ("site", Json.int site) ]
    | Trace.Breaker { site; state } ->
      [ ("site", Json.int site); ("state", Json.Str state) ]
  in
  Json.Obj fields

let event_json (e : Trace.event) =
  Json.Obj
    [
      ("id", Json.int e.Trace.id);
      ("t", Json.Num e.Trace.time);
      ("site", Json.int e.Trace.site);
      ("lamport", Json.int e.Trace.lamport);
      ("prev", (match e.Trace.prev with Some p -> Json.int p | None -> Json.Null));
      ("cause", (match e.Trace.cause with Some c -> Json.int c | None -> Json.Null));
      ("kind", Json.Str (Trace.kind_label e.Trace.kind));
      ("args", args_json e.Trace.kind);
    ]

let jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Json.to_string (event_json e));
      Buffer.add_char buf '\n')
    (Trace.events t);
  Buffer.contents buf

(* tid 0 is the system lane (site -1); site s maps to tid s + 1. *)
let tid site = site + 1

let us time = time *. 1000.0

let is_span_event (e : Trace.event) =
  match e.Trace.kind with
  | Trace.Span_begin _ | Trace.Span_end _ -> true
  | _ -> false

let lanes t =
  List.sort_uniq compare (List.map (fun (e : Trace.event) -> e.Trace.site) (Trace.events t))

let chrome t =
  let meta =
    List.map
      (fun site ->
        Json.Obj
          [
            ("name", Json.Str "thread_name");
            ("ph", Json.Str "M");
            ("pid", Json.int 0);
            ("tid", Json.int (tid site));
            ( "args",
              Json.Obj
                [ ("name",
                   Json.Str (if site < 0 then "system" else Printf.sprintf "site %d" site))
                ] );
          ])
      (lanes t)
  in
  let spans =
    List.map
      (fun (s : Trace.span) ->
        let args =
          Json.Obj
            [
              ("span", Json.int s.Trace.span_id);
              ( "parent",
                match s.Trace.span_parent with
                | Some p -> Json.int p
                | None -> Json.Null );
              ( "outcome",
                match s.Trace.span_outcome with
                | Some o -> Json.Str o
                | None -> Json.Null );
            ]
        in
        match s.Trace.t_end with
        | Some t_end ->
          Json.Obj
            [
              ("name", Json.Str s.Trace.label);
              ("ph", Json.Str "X");
              ("ts", Json.Num (us s.Trace.t_begin));
              ("dur", Json.Num (us (t_end -. s.Trace.t_begin)));
              ("pid", Json.int 0);
              ("tid", Json.int (tid s.Trace.span_site));
              ("args", args);
            ]
        | None ->
          Json.Obj
            [
              ("name", Json.Str s.Trace.label);
              ("ph", Json.Str "B");
              ("ts", Json.Num (us s.Trace.t_begin));
              ("pid", Json.int 0);
              ("tid", Json.int (tid s.Trace.span_site));
              ("args", args);
            ])
      (Trace.spans t)
  in
  let instants =
    List.filter_map
      (fun (e : Trace.event) ->
        if is_span_event e then None
        else
          Some
            (Json.Obj
               [
                 ("name", Json.Str (Trace.kind_label e.Trace.kind));
                 ("ph", Json.Str "i");
                 ("ts", Json.Num (us e.Trace.time));
                 ("pid", Json.int 0);
                 ("tid", Json.int (tid e.Trace.site));
                 ("s", Json.Str "t");
                 ("args", args_json e.Trace.kind);
               ]))
      (Trace.events t)
  in
  Json.Obj
    [
      ("traceEvents", Json.List (meta @ spans @ instants));
      ("displayTimeUnit", Json.Str "ms");
    ]

let chrome_string t = Json.to_string (chrome t)

let expected_chrome_events t =
  let n_lanes = List.length (lanes t) in
  let n_spans = List.length (Trace.spans t) in
  let n_instants =
    List.length (List.filter (fun e -> not (is_span_event e)) (Trace.events t))
  in
  n_lanes + n_spans + n_instants

let flame t =
  let buf = Buffer.create 1024 in
  let rows =
    List.map
      (fun (label, s) ->
        (label, Summary.count s, Summary.total s, Summary.mean s,
         Summary.percentile s 0.95))
      (Trace.span_durations t)
    |> List.sort (fun (_, _, t1, _, _) (_, _, t2, _, _) -> Float.compare t2 t1)
  in
  Buffer.add_string buf
    (Printf.sprintf "%-28s %8s %12s %10s %10s\n" "span" "count" "total-ms" "mean-ms"
       "p95-ms");
  List.iter
    (fun (label, count, total, mean, p95) ->
      Buffer.add_string buf
        (Printf.sprintf "%-28s %8d %12.1f %10.2f %10.2f\n" label count total mean p95))
    rows;
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)
