(** Trace exporters: JSONL, Chrome [trace_event], and a text flame summary.

    The Chrome export opens in Perfetto / chrome://tracing: each site is a
    "thread" (tid = site + 1; tid 0 is the system lane), closed spans
    become complete ("X") duration events, open spans become "B" events,
    and every other trace event becomes a thread-scoped instant. Simulated
    milliseconds map to the format's microsecond [ts] field. *)

val event_json : Trace.event -> Json.t
(** One event as [{id,t,site,lamport,prev,cause,kind,args}]. *)

val jsonl : Trace.t -> string
(** One {!event_json} object per line, in emission order. *)

val chrome : Trace.t -> Json.t
(** The full [{"traceEvents": [...]}] document. *)

val chrome_string : Trace.t -> string

val expected_chrome_events : Trace.t -> int
(** How many entries {!chrome}'s [traceEvents] array must contain for this
    trace — the round-trip check the tests pin. *)

val flame : Trace.t -> string
(** Per-span-label duration table (count, total, mean, p95), widest total
    first — a quick "where did the time go" answer. *)

val write_file : string -> string -> unit
(** [write_file path contents] — plain overwrite helper shared by the CLI
    and the campaign. *)
