type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let int i = Num (float_of_int i)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else if Float.is_nan f || Float.abs f = infinity then "0"
  else Printf.sprintf "%.6g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (number f)
  | Str s -> escape buf s
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        write buf v)
      l;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

let to_channel oc v = output_string oc (to_string v)

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail "bad literal"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some '"' -> Buffer.add_char buf '"'; advance ()
         | Some '\\' -> Buffer.add_char buf '\\'; advance ()
         | Some '/' -> Buffer.add_char buf '/'; advance ()
         | Some 'n' -> Buffer.add_char buf '\n'; advance ()
         | Some 'r' -> Buffer.add_char buf '\r'; advance ()
         | Some 't' -> Buffer.add_char buf '\t'; advance ()
         | Some 'b' -> Buffer.add_char buf '\b'; advance ()
         | Some 'f' -> Buffer.add_char buf '\012'; advance ()
         | Some 'u' ->
           advance ();
           if !pos + 4 > n then fail "bad \\u escape";
           let hex = String.sub s !pos 4 in
           pos := !pos + 4;
           (match int_of_string_opt ("0x" ^ hex) with
            | None -> fail "bad \\u escape"
            | Some code ->
              (* Escaped control characters only ever come from our own
                 printer, which stays in ASCII; clamp others to '?'. *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else Buffer.add_char buf '?')
         | _ -> fail "bad escape");
        loop ()
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when num_char c -> true | _ -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
