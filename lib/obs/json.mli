(** Minimal JSON values: emission for the exporters, parsing for the tests.

    Deliberately tiny — the repo takes no dependency on a JSON library. The
    parser accepts standard JSON (objects, arrays, strings with the common
    escapes, numbers, booleans, null); the printer emits exactly what the
    parser accepts, so exported traces round-trip. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val int : int -> t
(** Integers render without a fractional part. *)

val to_string : t -> string
val to_channel : out_channel -> t -> unit

val parse : string -> (t, string) result
(** Parse one JSON value (surrounding whitespace allowed, trailing garbage
    rejected). *)

val member : string -> t -> t option
(** Object field lookup; [None] on absent fields and non-objects. *)
