open Atomrep_stats

type counter = { mutable c : int }
type gauge = { mutable g : float }
type histogram = Summary.t

type cell =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type key = string * (string * string) list

type t = {
  cells : (key, cell) Hashtbl.t;
  mutable order : key list; (* reversed registration order *)
}

let create () = { cells = Hashtbl.create 64; order = [] }

let key name labels : key =
  (name, List.sort (fun (a, _) (b, _) -> String.compare a b) labels)

let find_or_add t k mk =
  match Hashtbl.find_opt t.cells k with
  | Some cell -> cell
  | None ->
    let cell = mk () in
    Hashtbl.add t.cells k cell;
    t.order <- k :: t.order;
    cell

let counter t ?(labels = []) name =
  match find_or_add t (key name labels) (fun () -> Counter { c = 0 }) with
  | Counter c -> c
  | _ -> invalid_arg ("Metrics.counter: " ^ name ^ " is registered as another kind")

let incr c = c.c <- c.c + 1
let add c n = c.c <- c.c + n
let read c = c.c

let gauge t ?(labels = []) name =
  match find_or_add t (key name labels) (fun () -> Gauge { g = 0.0 }) with
  | Gauge g -> g
  | _ -> invalid_arg ("Metrics.gauge: " ^ name ^ " is registered as another kind")

let set g v = g.g <- v

let histogram t ?(labels = []) name =
  match find_or_add t (key name labels) (fun () -> Histogram (Summary.create ())) with
  | Histogram h -> h
  | _ -> invalid_arg ("Metrics.histogram: " ^ name ^ " is registered as another kind")

let observe h v = Summary.add h v

let counter_value t ?(labels = []) name =
  match Hashtbl.find_opt t.cells (key name labels) with
  | Some (Counter c) -> c.c
  | _ -> 0

let counter_sum t name =
  Hashtbl.fold
    (fun (n, _) cell acc ->
      match cell with
      | Counter c when String.equal n name -> acc + c.c
      | _ -> acc)
    t.cells 0

let gauge_value t ?(labels = []) name =
  match Hashtbl.find_opt t.cells (key name labels) with
  | Some (Gauge g) -> g.g
  | _ -> 0.0

let histogram_summary t ?(labels = []) name =
  match Hashtbl.find_opt t.cells (key name labels) with
  | Some (Histogram h) -> h
  | _ -> Summary.create ()

let labels_json labels = Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels)

let to_json t =
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  List.iter
    (fun ((name, labels) as k) ->
      match Hashtbl.find t.cells k with
      | Counter c ->
        counters :=
          Json.Obj
            [ ("name", Json.Str name); ("labels", labels_json labels);
              ("value", Json.int c.c) ]
          :: !counters
      | Gauge g ->
        gauges :=
          Json.Obj
            [ ("name", Json.Str name); ("labels", labels_json labels);
              ("value", Json.Num g.g) ]
          :: !gauges
      | Histogram h ->
        histograms :=
          Json.Obj
            [
              ("name", Json.Str name);
              ("labels", labels_json labels);
              ("count", Json.int (Summary.count h));
              ("mean", Json.Num (Summary.mean h));
              ("min", Json.Num (Summary.min_value h));
              ("max", Json.Num (Summary.max_value h));
              ("p50", Json.Num (Summary.percentile h 0.5));
              ("p95", Json.Num (Summary.percentile h 0.95));
              ("p99", Json.Num (Summary.percentile h 0.99));
            ]
          :: !histograms
      | exception Not_found -> ())
    (List.rev t.order);
  Json.Obj
    [
      ("counters", Json.List (List.rev !counters));
      ("gauges", Json.List (List.rev !gauges));
      ("histograms", Json.List (List.rev !histograms));
    ]

let pp ppf t =
  List.iter
    (fun ((name, labels) as k) ->
      let pp_labels ppf = function
        | [] -> ()
        | labels ->
          Format.fprintf ppf "{%s}"
            (String.concat ","
               (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) labels))
      in
      match Hashtbl.find_opt t.cells k with
      | Some (Counter c) ->
        Format.fprintf ppf "%s%a %d@." name pp_labels labels c.c
      | Some (Gauge g) ->
        Format.fprintf ppf "%s%a %g@." name pp_labels labels g.g
      | Some (Histogram h) ->
        Format.fprintf ppf "%s%a count=%d mean=%.2f p95=%.2f@." name pp_labels
          labels (Summary.count h) (Summary.mean h) (Summary.percentile h 0.95)
      | None -> ())
    (List.rev t.order)
