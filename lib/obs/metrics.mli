(** Metrics registry: counters, gauges and histograms with labels.

    A metric is identified by its name plus a label set (order-insensitive).
    [counter]/[gauge]/[histogram] are get-or-create: asking twice for the
    same identity returns the same instance, so instrumented code anywhere
    in the stack can share a metric without threading handles around.
    Adding a new counter is one call at the point of instrumentation — the
    registry replaces hand-maintained record-of-ints plumbing.

    Histograms are {!Atomrep_stats.Summary} accumulators, so percentile
    reads use the same nearest-rank machinery the rest of the repo does. *)

type t
type counter
type gauge
type histogram

val create : unit -> t

val counter : t -> ?labels:(string * string) list -> string -> counter
val incr : counter -> unit
val add : counter -> int -> unit

val read : counter -> int
(** Current value via the handle — no registry lookup, so periodic
    samplers (e.g. {!Timeseries}) can poll hot counters cheaply. *)

val gauge : t -> ?labels:(string * string) list -> string -> gauge
val set : gauge -> float -> unit

val histogram : t -> ?labels:(string * string) list -> string -> histogram
val observe : histogram -> float -> unit

val counter_value : t -> ?labels:(string * string) list -> string -> int
(** 0 when the identity was never registered. *)

val counter_sum : t -> string -> int
(** Sum over every label set registered under the name. *)

val gauge_value : t -> ?labels:(string * string) list -> string -> float

val histogram_summary :
  t -> ?labels:(string * string) list -> string -> Atomrep_stats.Summary.t
(** The live accumulator (empty if never registered). *)

val to_json : t -> Json.t
(** {v {"counters":[{name,labels,value}...],
       "gauges":[...],
       "histograms":[{name,labels,count,mean,min,max,p50,p95,p99}...]} v}
    in registration order. *)

val pp : Format.formatter -> t -> unit
