type verdict = {
  d_txn : string;
  d_commits : int;
  d_aborts : int;
  d_sites : int list; (* deciding sites, first-decision order *)
}

let decisions ?(from_id = 0) trace =
  let tbl = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun (e : Trace.event) ->
      if e.Trace.id >= from_id then
        match e.Trace.kind with
        | Trace.Txn_decide { txn; site; committed } ->
          let v =
            match Hashtbl.find_opt tbl txn with
            | Some v -> v
            | None ->
              order := txn :: !order;
              { d_txn = txn; d_commits = 0; d_aborts = 0; d_sites = [] }
          in
          let v =
            if committed then { v with d_commits = v.d_commits + 1 }
            else { v with d_aborts = v.d_aborts + 1 }
          in
          let v =
            if List.mem site v.d_sites then v
            else { v with d_sites = v.d_sites @ [ site ] }
          in
          Hashtbl.replace tbl txn v
        | _ -> ())
    (Trace.events trace);
  List.rev_map (fun txn -> Hashtbl.find tbl txn) !order

let no_divergence ?from_id trace =
  List.filter_map
    (fun v ->
      if v.d_commits > 0 && v.d_aborts > 0 then
        Some
          ( v.d_txn,
            Printf.sprintf
              "divergent decisions: %d commit verdict(s) and %d abort \
               verdict(s) across driver sites [%s]"
              v.d_commits v.d_aborts
              (String.concat ";" (List.map string_of_int v.d_sites)) )
      else None)
    (decisions ?from_id trace)
