type verdict = {
  d_txn : string;
  d_commits : int;
  d_aborts : int;
  d_sites : int list; (* deciding sites, first-decision order *)
}

let decisions ?(from_id = 0) trace =
  let tbl = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun (e : Trace.event) ->
      if e.Trace.id >= from_id then
        match e.Trace.kind with
        | Trace.Txn_decide { txn; site; committed } ->
          let v =
            match Hashtbl.find_opt tbl txn with
            | Some v -> v
            | None ->
              order := txn :: !order;
              { d_txn = txn; d_commits = 0; d_aborts = 0; d_sites = [] }
          in
          let v =
            if committed then { v with d_commits = v.d_commits + 1 }
            else { v with d_aborts = v.d_aborts + 1 }
          in
          let v =
            if List.mem site v.d_sites then v
            else { v with d_sites = v.d_sites @ [ site ] }
          in
          Hashtbl.replace tbl txn v
        | _ -> ())
    (Trace.events trace);
  List.rev_map (fun txn -> Hashtbl.find tbl txn) !order

(* The declarative form: one state machine per transaction folding its
   Txn_decide events; the first opposite verdict is the counterexample
   (flagged once — later contradictions of an already-divergent
   transaction add nothing). *)
type div_state = {
  s_commits : int;
  s_aborts : int;
  s_sites : int list;
  s_flagged : bool;
}

let spec () =
  Spec_monitor.keyed ~name:"no_divergence"
    ~on:(Spec_monitor.observes [ "txn_decide" ])
    ~key:(fun e ->
      match e.Trace.kind with
      | Trace.Txn_decide { txn; _ } -> Some txn
      | _ -> None)
    ~init:(fun _ -> { s_commits = 0; s_aborts = 0; s_sites = []; s_flagged = false })
    ~step:(fun s e ->
      match e.Trace.kind with
      | Trace.Txn_decide { site; committed; _ } ->
        let s =
          if committed then { s with s_commits = s.s_commits + 1 }
          else { s with s_aborts = s.s_aborts + 1 }
        in
        let s =
          if List.mem site s.s_sites then s
          else { s with s_sites = s.s_sites @ [ site ] }
        in
        if s.s_commits > 0 && s.s_aborts > 0 && not s.s_flagged then
          Spec_monitor.Violate
            ( { s with s_flagged = true },
              Printf.sprintf
                "divergent decisions: %d commit verdict(s) and %d abort \
                 verdict(s) across driver sites [%s]"
                s.s_commits s.s_aborts
                (String.concat ";" (List.map string_of_int s.s_sites)) )
        else Spec_monitor.Continue s
      | _ -> Spec_monitor.Continue s)
    ()

(* Thin wrapper: run the declarative spec, reshape to the legacy
   [(txn, explanation)] pairs. The instance name is "no_divergence(<txn>)". *)
let txn_of_instance monitor =
  let prefix = "no_divergence(" in
  let lp = String.length prefix in
  if
    String.length monitor > lp + 1
    && String.sub monitor 0 lp = prefix
    && monitor.[String.length monitor - 1] = ')'
  then String.sub monitor lp (String.length monitor - lp - 1)
  else monitor

let no_divergence ?(from_id = 0) trace =
  let inst = Spec_monitor.instantiate (spec ()) in
  List.iter
    (fun (e : Trace.event) -> if e.Trace.id >= from_id then Spec_monitor.observe inst e)
    (Trace.events trace);
  List.map
    (fun (v : Spec_monitor.violation) ->
      (txn_of_instance v.Spec_monitor.v_monitor, v.Spec_monitor.v_message))
    (Spec_monitor.quiesce inst)
