(** No-divergence monitor over the trace bus.

    Every driver that renders a commit/abort verdict for a transaction —
    the original coordinator, a recovered coordinator re-driving its
    decision log, a cooperative participant, or a takeover lease holder —
    emits a {!Trace.Txn_decide} event at the verdict, {e before} the
    idempotent finalize guard. The monitor folds those events per
    transaction and flags any transaction for which two drivers ever
    decided differently: the one thing the takeover protocol (sticky
    votes + intersecting thresholds + lease fencing) must make
    impossible, no matter how many contenders raced.

    Re-deciding the {e same} outcome is expected and legal (redrive and
    adoption are idempotent); only mixed verdicts are violations. *)

type verdict = {
  d_txn : string;
  d_commits : int;  (** commit verdicts rendered *)
  d_aborts : int;  (** abort verdicts rendered *)
  d_sites : int list;  (** deciding sites, first-decision order *)
}

val decisions : ?from_id:int -> Trace.t -> verdict list
(** Per-transaction decision tallies, in first-decision order. [from_id]
    restricts the scan to events with id at or above it — use it to scope
    the monitor to one run when several runs share a bus. *)

val spec : unit -> Spec_monitor.t
(** The declarative form: a {!Spec_monitor.keyed} machine (one instance
    per transaction over [Txn_decide] events) that violates at the first
    opposite verdict. The monitor catalogue
    ({!Atomrep_chaos.Monitors}) registers this spec; {!no_divergence}
    below is now a thin wrapper running it. *)

val no_divergence : ?from_id:int -> Trace.t -> (string * string) list
(** [(txn, explanation)] for every transaction with mixed verdicts; empty
    when no two drivers ever diverged. Shaped like the runtime's oracle
    failures so campaign gating can concatenate them. Thin wrapper over
    {!spec}. *)
