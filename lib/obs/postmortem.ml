let causal_cone trace ~targets =
  let n = Trace.length trace in
  if n = 0 then []
  else begin
    let marked = Array.make n false in
    let stack = ref [] in
    List.iter
      (fun id ->
        if id >= 0 && id < n && not marked.(id) then begin
          marked.(id) <- true;
          stack := id :: !stack
        end)
      targets;
    let visit id =
      if id >= 0 && id < n && not marked.(id) then begin
        marked.(id) <- true;
        stack := id :: !stack
      end
    in
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | id :: rest ->
        stack := rest;
        let e = Trace.get trace id in
        (match e.Trace.prev with Some p -> visit p | None -> ());
        (match e.Trace.cause with Some c -> visit c | None -> ())
    done;
    let out = ref [] in
    for id = n - 1 downto 0 do
      if marked.(id) then out := Trace.get trace id :: !out
    done;
    !out
  end

let mentions actions (kind : Trace.kind) =
  let hit a = List.exists (String.equal a) actions in
  match kind with
  | Trace.Txn_begin { txn } | Trace.Txn_commit { txn } | Trace.Txn_abort { txn; _ }
  | Trace.Lock_grant { txn; _ } | Trace.Repo_append { txn; _ } ->
    hit txn
  | Trace.Lock_wait { txn; blocker } -> hit txn || hit blocker
  | _ -> false

let events_of_actions trace ~actions =
  List.filter_map
    (fun (e : Trace.event) ->
      if mentions actions e.Trace.kind then Some e.Trace.id else None)
    (Trace.events trace)

(* Transaction names are "T<index>" (see Runtime.run_txn); scanning the
   failure text for those tokens is what ties a pretty-printed oracle
   verdict back to trace events without a structured-failure channel. *)
let actions_of_failure text =
  let n = String.length text in
  let is_digit c = c >= '0' && c <= '9' in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    if
      text.[!i] = 'T'
      && (!i = 0 || not (is_digit text.[!i - 1]))
      && (!i = 0
          || not
               ((text.[!i - 1] >= 'A' && text.[!i - 1] <= 'Z')
               || (text.[!i - 1] >= 'a' && text.[!i - 1] <= 'z')))
      && !i + 1 < n
      && is_digit text.[!i + 1]
    then begin
      let j = ref (!i + 1) in
      while !j < n && is_digit text.[!j] do
        incr j
      done;
      let tok = String.sub text !i (!j - !i) in
      if not (List.exists (String.equal tok) !out) then out := tok :: !out;
      i := !j
    end
    else incr i
  done;
  List.rev !out

type t = {
  header : (string * string) list;
  targets : int list;
  slice : Trace.event list;
  trace_length : int;
}

let build trace ~header ~failures =
  (* Scan both sides of each failure: history oracles put the object in
     the subject and name transactions in the description, while keyed
     spec monitors carry the transaction in the instance name itself
     ("no_divergence(T3)"). *)
  let actions =
    List.concat_map
      (fun (obj, why) -> actions_of_failure obj @ actions_of_failure why)
      failures
    |> List.sort_uniq String.compare
  in
  let targets = events_of_actions trace ~actions in
  let slice =
    match targets with
    | [] -> Trace.events trace
    | targets -> causal_cone trace ~targets
  in
  let header =
    header
    @ [ ("violating-actions", String.concat " " actions) ]
    @ List.map (fun (obj, why) -> ("failure:" ^ obj, why)) failures
  in
  { header; targets; slice; trace_length = Trace.length trace }

let render t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "CAUSAL POSTMORTEM\n=================\n";
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%-20s %s\n" k v))
    t.header;
  Buffer.add_string buf
    (Printf.sprintf "%-20s %d of %d events in the causal cone of %d targets\n\n"
       "slice" (List.length t.slice) t.trace_length (List.length t.targets));
  List.iter
    (fun e -> Buffer.add_string buf (Format.asprintf "%a\n" Trace.pp_event e))
    t.slice;
  Buffer.contents buf

let contains t pred = List.exists (fun (e : Trace.event) -> pred e.Trace.kind) t.slice
