(** Causal postmortems: slice a trace to the Lamport-order past cone of the
    violating operations.

    The happens-before relation is the transitive closure of the two edge
    families the trace records — per-site program order ([prev]) and
    cross-site causation ([cause], message send → delivery). The past cone
    of a set of target events is everything that happens-before any of
    them, computed by a reverse reachability walk; since a quorum access
    delivers at every repository it touches, the cone of a violating
    operation automatically pulls in the repository-side history it read —
    crashes, rejoins, and the appends whose loss produced the violation. *)

val causal_cone : Trace.t -> targets:int list -> Trace.event list
(** The past cone of the target ids (targets included), in emission order.
    Negative / out-of-range ids are ignored. *)

val events_of_actions : Trace.t -> actions:string list -> int list
(** Ids of events naming any of the given transactions (Txn_*, Lock_*,
    Repo_append) — the usual targets of a slice. *)

val actions_of_failure : string -> string list
(** Transaction names ([T<digits>] tokens) mentioned by an atomicity-oracle
    failure description, deduplicated, in order of first mention. *)

type t = {
  header : (string * string) list; (** key/value context lines *)
  targets : int list;
  slice : Trace.event list;
  trace_length : int;
}

val build : Trace.t -> header:(string * string) list -> failures:(string * string) list -> t
(** Slice the trace to the causal cone of every action mentioned in the
    (object, failure) pairs. If no action can be extracted, the slice
    falls back to the whole trace (better a fat postmortem than none). *)

val render : t -> string
(** Human-readable postmortem: header, cone statistics, then the slice one
    event per line. *)

val contains : t -> (Trace.kind -> bool) -> bool
(** Does any event in the slice satisfy the predicate? *)
