type phase = {
  p_subsystem : string;
  p_phase : string;
  p_count : int;
  p_wall : float;
  p_minor_words : float;
}

type cell = {
  c_subsystem : string;
  c_phase : string;
  mutable c_count : int;
  mutable c_wall : float;
  mutable c_minor : float;
}

type t = {
  on : bool;
  mutable clock : unit -> float;
  cells : (string * string, cell) Hashtbl.t;
  mutable order : (string * string) list; (* reversed registration order *)
}

let create ?(enabled = true) () =
  { on = enabled; clock = Sys.time; cells = Hashtbl.create 32; order = [] }

let null = create ~enabled:false ()
let enabled t = t.on
let set_clock t f = t.clock <- f

let cell t subsystem phase =
  let k = (subsystem, phase) in
  match Hashtbl.find_opt t.cells k with
  | Some c -> c
  | None ->
    let c =
      { c_subsystem = subsystem; c_phase = phase; c_count = 0; c_wall = 0.0;
        c_minor = 0.0 }
    in
    Hashtbl.add t.cells k c;
    t.order <- k :: t.order;
    c

(* Gc.minor_words is a noalloc primitive (allocated-words-so-far), far
   cheaper than Gc.quick_stat; the delta is the same minor-words figure. *)
let finish t c w0 a0 =
  let w1 = t.clock () in
  let a1 = Gc.minor_words () in
  c.c_count <- c.c_count + 1;
  c.c_wall <- c.c_wall +. (w1 -. w0);
  c.c_minor <- c.c_minor +. (a1 -. a0)

let time t ~subsystem phase f =
  if not t.on then f ()
  else begin
    let c = cell t subsystem phase in
    let w0 = t.clock () in
    let a0 = Gc.minor_words () in
    match f () with
    | v ->
      finish t c w0 a0;
      v
    | exception e ->
      finish t c w0 a0;
      raise e
  end

(* Ambient profile, domain-local: instrumentation deep in the stack (the
   engine's dispatch loop, the trace bus's publish path, a WAL flush)
   records against whatever profile the current run installed, with no
   handle threading. Each domain starts with the disabled profile, so
   parallel explorer domains never share (or race on) one table. *)
let dls : t Domain.DLS.key = Domain.DLS.new_key (fun () -> null)
let current () = Domain.DLS.get dls
let set_current p = Domain.DLS.set dls p

let with_current p f =
  let prev = current () in
  set_current p;
  match f () with
  | v ->
    set_current prev;
    v
  | exception e ->
    set_current prev;
    raise e

let record ~subsystem phase f =
  let p = current () in
  if p.on then time p ~subsystem phase f else f ()

let phases t =
  let all =
    List.rev_map
      (fun k ->
        let c = Hashtbl.find t.cells k in
        {
          p_subsystem = c.c_subsystem;
          p_phase = c.c_phase;
          p_count = c.c_count;
          p_wall = c.c_wall;
          p_minor_words = c.c_minor;
        })
      t.order
  in
  List.sort
    (fun a b ->
      match compare b.p_wall a.p_wall with
      | 0 -> compare (a.p_subsystem, a.p_phase) (b.p_subsystem, b.p_phase)
      | c -> c)
    all

let top t ~n =
  let rec take n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  take n (phases t)

let total_wall t =
  Hashtbl.fold (fun _ c acc -> acc +. c.c_wall) t.cells 0.0

let pp_table ?(top = 10) ppf t =
  let rows = ref (phases t) in
  let shown = ref 0 in
  let total = total_wall t in
  Format.fprintf ppf "%-28s %10s %12s %7s %12s@." "PHASE" "CALLS" "WALL(s)" "WALL%"
    "MINOR(kw)";
  while !shown < top && !rows <> [] do
    (match !rows with
     | [] -> ()
     | p :: rest ->
       rows := rest;
       incr shown;
       let pct = if total > 0.0 then 100.0 *. p.p_wall /. total else 0.0 in
       Format.fprintf ppf "%-28s %10d %12.6f %6.1f%% %12.1f@."
         (p.p_subsystem ^ "/" ^ p.p_phase)
         p.p_count p.p_wall pct
         (p.p_minor_words /. 1000.0))
  done;
  if !rows <> [] then
    Format.fprintf ppf "(… %d more phases)@." (List.length !rows)

let to_json t =
  Json.Obj
    [
      ( "phases",
        Json.List
          (List.map
             (fun p ->
               Json.Obj
                 [
                   ("subsystem", Json.Str p.p_subsystem);
                   ("phase", Json.Str p.p_phase);
                   ("count", Json.int p.p_count);
                   ("wall_s", Json.Num p.p_wall);
                   ("minor_words", Json.Num p.p_minor_words);
                 ])
             (phases t)) );
    ]
