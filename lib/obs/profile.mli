(** Scoped phase timers with allocation accounting.

    A profile is a table of phases keyed by [subsystem x phase name]; each
    {!time} call accumulates the wrapped thunk's wall time and its
    minor-heap allocation ([Gc.minor_words] delta) into the
    phase's cell. Phases are inclusive: a network send timed inside an
    engine dispatch counts toward both.

    The disabled profile ({!null}, or [create ~enabled:false]) runs the
    thunk directly — no clock read, no GC stat, no table touch — so
    instrumented code costs one branch when profiling is off. Profiling
    never draws from any simulation RNG and never touches simulated state,
    so enabling it cannot perturb a deterministic run.

    Measurements include a small fixed profiler self-cost per enter/exit
    (two clock reads and two [Gc.minor_words] reads); hot phases dominate
    it by construction, which is all a top-N table needs.

    {b Ambient installation.} Deep layers (the engine loop, the trace bus,
    WAL flushes) record against the {e current} profile — a domain-local
    slot installed by whoever owns the run ({!with_current}, used by
    [Runtime.run]) — so instrumentation needs no handle plumbing. Each
    domain starts with {!null}: parallel explorer domains never share a
    table. *)

type t

val create : ?enabled:bool -> unit -> t
val null : t
(** The shared disabled profile: every [time] runs its thunk directly. *)

val enabled : t -> bool

val set_clock : t -> (unit -> float) -> unit
(** Wall-clock source; defaults to [Sys.time] (processor time) because this
    library cannot link Unix — callers that can should inject
    [Unix.gettimeofday]. *)

val time : t -> subsystem:string -> string -> (unit -> 'a) -> 'a
(** [time t ~subsystem phase f] runs [f] and accumulates its wall time,
    allocation and a call count into the phase's cell. Exceptions
    propagate; the partial measurement is still recorded. *)

(** {1 Ambient (domain-local) profile} *)

val current : unit -> t
val set_current : t -> unit

val with_current : t -> (unit -> 'a) -> 'a
(** Install a profile for the extent of the callback, restoring the
    previous one after (also on exceptions). *)

val record : subsystem:string -> string -> (unit -> 'a) -> 'a
(** {!time} against {!current}; one branch when the current profile is
    disabled. *)

(** {1 Reporting} *)

type phase = {
  p_subsystem : string;
  p_phase : string;
  p_count : int;
  p_wall : float;
  p_minor_words : float;
}

val phases : t -> phase list
(** All phases, hottest (most wall time) first. *)

val top : t -> n:int -> phase list
val total_wall : t -> float

val pp_table : ?top:int -> Format.formatter -> t -> unit
(** The hot-phase table: subsystem/phase, call count, wall seconds, share
    of total profiled wall time, and minor-heap kilowords. [top] defaults
    to 10. *)

val to_json : t -> Json.t
(** [{"phases":[{subsystem,phase,count,wall_s,minor_words}...]}], hottest
    first. *)
