type t = {
  alpha : float;
  window : int;
  ewma : float array; (* negative = no samples yet *)
  rings : float array array; (* last [window] samples per site *)
  fill : int array; (* samples currently held in the ring *)
  next : int array; (* ring write cursor *)
  seen : int array; (* lifetime sample count *)
}

let create ~n_sites ?(alpha = 0.2) ?(window = 64) () =
  if n_sites < 0 then invalid_arg "Sitelat.create: negative n_sites";
  if alpha <= 0.0 || alpha > 1.0 then invalid_arg "Sitelat.create: alpha not in (0,1]";
  if window < 1 then invalid_arg "Sitelat.create: window < 1";
  {
    alpha;
    window;
    ewma = Array.make n_sites (-1.0);
    rings = Array.init n_sites (fun _ -> Array.make window 0.0);
    fill = Array.make n_sites 0;
    next = Array.make n_sites 0;
    seen = Array.make n_sites 0;
  }

let n_sites t = Array.length t.ewma

let observe t ~site sample =
  if site >= 0 && site < n_sites t then begin
    t.ewma.(site) <-
      (if t.ewma.(site) < 0.0 then sample
       else (t.alpha *. sample) +. ((1.0 -. t.alpha) *. t.ewma.(site)));
    let ring = t.rings.(site) in
    ring.(t.next.(site)) <- sample;
    t.next.(site) <- (t.next.(site) + 1) mod t.window;
    if t.fill.(site) < t.window then t.fill.(site) <- t.fill.(site) + 1;
    t.seen.(site) <- t.seen.(site) + 1
  end

let samples t ~site = if site >= 0 && site < n_sites t then t.seen.(site) else 0
let ewma t ~site =
  if site >= 0 && site < n_sites t && t.ewma.(site) >= 0.0 then t.ewma.(site)
  else 0.0

(* Nearest-rank percentile over a freshly-sorted copy of the samples; these
   books hold at most [window] floats per site, so the sort is cheap and only
   runs on scoring ticks, never per observation. *)
let rank_of sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

let percentile t ~site ~q =
  if site < 0 || site >= n_sites t || t.fill.(site) = 0 then 0.0
  else begin
    let window = Array.sub t.rings.(site) 0 t.fill.(site) in
    Array.sort compare window;
    rank_of window q
  end

let pooled_percentile ?(exclude = fun _ -> false) t ~q =
  let pool = ref [] in
  for site = 0 to n_sites t - 1 do
    if not (exclude site) then
      for i = 0 to t.fill.(site) - 1 do
        pool := t.rings.(site).(i) :: !pool
      done
  done;
  let pool = Array.of_list !pool in
  Array.sort compare pool;
  rank_of pool q

(* Median across sites of a per-site statistic, skipping sample-less sites:
   the cluster-normal baseline the detector scores each site against. *)
let median_over t stat =
  let vals = ref [] in
  for site = 0 to n_sites t - 1 do
    if t.fill.(site) > 0 then vals := stat site :: !vals
  done;
  let vals = Array.of_list !vals in
  Array.sort compare vals;
  rank_of vals 0.5

let median_ewma t = median_over t (fun site -> ewma t ~site)
let median_percentile t ~q = median_over t (fun site -> percentile t ~site ~q)
