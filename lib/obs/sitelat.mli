(** Per-site latency books for gray-failure detection.

    One book holds, per site, an EWMA of observed RPC latencies plus a ring
    of the most recent [window] samples for windowed percentiles. The
    latency-aware failure detector ({!Atomrep_sim.Detector}) feeds these
    from [note_rpc_result] samples and scores each site's EWMA and p99
    against the cluster median to raise graded slow-suspicion — a fail-slow
    site inflates its own book while the median stays anchored by the
    healthy majority.

    Pure bookkeeping: no RNG, no clock. Observing through a book never
    perturbs simulation determinism. *)

type t

val create : n_sites:int -> ?alpha:float -> ?window:int -> unit -> t
(** [alpha] is the EWMA smoothing factor in (0,1] (default 0.2: a sample
    moves the average 20% of the way); [window] the per-site ring capacity
    (default 64). *)

val n_sites : t -> int

val observe : t -> site:int -> float -> unit
(** Record one latency sample for the site. Out-of-range sites are
    ignored (the detector may observe probe traffic to retired members). *)

val samples : t -> site:int -> int
(** Lifetime sample count for the site (not capped by the window). *)

val ewma : t -> site:int -> float
(** Smoothed latency; [0.] before the first sample. *)

val percentile : t -> site:int -> q:float -> float
(** Nearest-rank percentile over the site's current window; [0.] when
    empty. *)

val pooled_percentile : ?exclude:(int -> bool) -> t -> q:float -> float
(** Percentile over all sites' windows pooled together, skipping sites the
    [exclude] predicate claims — the adaptive hedging delay reads this with
    slow-suspected sites excluded so a gray site cannot drag the hedge
    trigger up with it. *)

val median_ewma : t -> float
(** Median across sites (with samples) of the per-site EWMA. *)

val median_percentile : t -> q:float -> float
(** Median across sites (with samples) of the per-site [q]-percentile. *)
