type violation = {
  v_monitor : string;
  v_message : string;
  v_event : int option;
}

type 's step = Continue of 's | Accept | Violate of 's * string

(* A spec is a recipe for fresh run state: [fresh ()] builds the mutable
   machine, so instantiating twice never shares state — the no-bleed
   guarantee the shrinker's candidate runs rely on. *)
type machine = {
  m_observe : Trace.event -> violation list;
  m_quiesce : unit -> violation list;
  m_live : unit -> int;
}

type t = {
  spec_name : string;
  spec_on : Trace.kind -> bool; (* static: which kinds the spec observes *)
  fresh : unit -> machine;
}

let name t = t.spec_name
let observes_kind t kind = t.spec_on kind

let observes labels =
  fun kind -> List.mem (Trace.kind_label kind) labels

let make ~name ?(on = fun _ -> true) ~init ~step ?(at_quiesce = fun _ -> [])
    () =
  let fresh () =
    (* [None] = accepted (discharged, nothing to quiesce). *)
    let state = ref (Some (init ())) in
    let m_observe (e : Trace.event) =
      match !state with
      | None -> []
      | Some s ->
        if not (on e.Trace.kind) then []
        else begin
          match step s e with
          | Continue s' ->
            state := Some s';
            []
          | Accept ->
            state := None;
            []
          | Violate (s', msg) ->
            state := Some s';
            [ { v_monitor = name; v_message = msg; v_event = Some e.Trace.id } ]
        end
    in
    let m_quiesce () =
      match !state with
      | None -> []
      | Some s ->
        List.map
          (fun msg -> { v_monitor = name; v_message = msg; v_event = None })
          (at_quiesce s)
    in
    let m_live () = match !state with Some _ -> 1 | None -> 0 in
    { m_observe; m_quiesce; m_live }
  in
  { spec_name = name; spec_on = on; fresh }

let keyed ~name ?(on = fun _ -> true) ~key ~init ~step
    ?(at_quiesce = fun _ _ -> []) () =
  let fresh () =
    let states = Hashtbl.create 32 in
    (* Insertion order, for deterministic quiesce reports. *)
    let order = ref [] in
    let m_observe (e : Trace.event) =
      if not (on e.Trace.kind) then []
      else
        match key e with
        | None -> []
        | Some k ->
          let s =
            match Hashtbl.find_opt states k with
            | Some s -> s
            | None ->
              let s = init k in
              Hashtbl.replace states k s;
              order := k :: !order;
              s
          in
          (match step s e with
           | Continue s' ->
             Hashtbl.replace states k s';
             []
           | Accept ->
             Hashtbl.remove states k;
             []
           | Violate (s', msg) ->
             Hashtbl.replace states k s';
             [
               {
                 v_monitor = Printf.sprintf "%s(%s)" name k;
                 v_message = msg;
                 v_event = Some e.Trace.id;
               };
             ])
    in
    let m_quiesce () =
      List.concat_map
        (fun k ->
          match Hashtbl.find_opt states k with
          | None -> []
          | Some s ->
            List.map
              (fun msg ->
                {
                  v_monitor = Printf.sprintf "%s(%s)" name k;
                  v_message = msg;
                  v_event = None;
                })
              (at_quiesce k s))
        (List.rev !order)
    in
    let m_live () = Hashtbl.length states in
    { m_observe; m_quiesce; m_live }
  in
  { spec_name = name; spec_on = on; fresh }

let all ~name children =
  let fresh () =
    (* Conjunction with per-child short-circuit: once a child yields its
       counterexample it is dropped from stepping and quiescing — each
       child contributes at most its first verdict while the rest keep
       observing independently. *)
    let live =
      ref (List.map (fun c -> (c.fresh (), ref false)) children)
    in
    let m_observe e =
      List.concat_map
        (fun (m, failed) ->
          if !failed then []
          else begin
            let vs = m.m_observe e in
            if vs <> [] then failed := true;
            vs
          end)
        !live
    in
    let m_quiesce () =
      List.concat_map
        (fun (m, failed) -> if !failed then [] else m.m_quiesce ())
        !live
    in
    let m_live () =
      List.fold_left
        (fun acc (m, failed) -> if !failed then acc else acc + m.m_live ())
        0 !live
    in
    { m_observe; m_quiesce; m_live }
  in
  {
    spec_name = name;
    spec_on = (fun k -> List.exists (fun c -> c.spec_on k) children);
    fresh;
  }

type instance = {
  machine : machine;
  mutable seen : violation list; (* reverse detection order *)
  mutable quiesced : violation list option;
}

let instantiate t = { machine = t.fresh (); seen = []; quiesced = None }

let observe inst e =
  match inst.quiesced with
  | Some _ -> ()
  | None ->
    List.iter (fun v -> inst.seen <- v :: inst.seen) (inst.machine.m_observe e)

let violations inst = List.rev inst.seen
let live_instances inst = inst.machine.m_live ()

let quiesce inst =
  match inst.quiesced with
  | Some vs -> vs
  | None ->
    let vs = List.rev inst.seen @ inst.machine.m_quiesce () in
    inst.quiesced <- Some vs;
    vs

let run t trace =
  let inst = instantiate t in
  Profile.record ~subsystem:"monitor" "step" (fun () ->
      List.iter (observe inst) (Trace.events trace));
  quiesce inst

let failures vs =
  List.map
    (fun v ->
      let msg =
        match v.v_event with
        | Some id -> Printf.sprintf "%s (event #%d)" v.v_message id
        | None -> Printf.sprintf "%s (at quiesce)" v.v_message
      in
      (v.v_monitor, msg))
    vs

let witness trace v =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "MONITOR VIOLATION %s: %s\n" v.v_monitor v.v_message);
  (match v.v_event with
   | None -> Buffer.add_string buf "(liveness verdict at quiesce: no anchor event)\n"
   | Some id when id < 0 || id >= Trace.length trace ->
     Buffer.add_string buf (Printf.sprintf "(event #%d outside the trace)\n" id)
   | Some id ->
     Buffer.add_string buf
       (Format.asprintf "violating event: %a\n" Trace.pp_event (Trace.get trace id));
     let cone = Postmortem.causal_cone trace ~targets:[ id ] in
     Buffer.add_string buf
       (Printf.sprintf "causal cone: %d of %d events\n" (List.length cone)
          (Trace.length trace));
     List.iter
       (fun e -> Buffer.add_string buf (Format.asprintf "  %a\n" Trace.pp_event e))
       cone);
  Buffer.contents buf
