(** Declarative safety/liveness monitors over the {!Trace} bus.

    A monitor is a small state machine observing a subset of trace kinds —
    the P-language "spec machine" idea (HistMSO, Schewe et al.): consistency
    properties stated as declarative machines over event histories instead
    of imperative assertions buried in the runtime. Each spec declares

    - which event kinds it observes ([on], an event-kind predicate —
      {!observes} builds one from the stable kind labels);
    - a [step] function folding observed events into its state, which can
      also {e accept} (the obligation is discharged, the state is GC'd) or
      {e violate} (a counterexample, anchored at the violating event);
    - an optional [at_quiesce] check that judges whatever state remains
      when the trace ends — where liveness obligations ("every blocked op
      eventually resolves") become violations.

    Combinators lift specs: {!keyed} instantiates one state machine per
    key (per transaction, per site) with GC on accept, and {!all} conjoins
    monitors, short-circuiting any child that has already produced its
    counterexample.

    Monitors are pure over the trace: instantiating one allocates fresh
    state, so every run — including every shrink candidate during
    reproducer minimization — gets an unbled verdict. *)

type violation = {
  v_monitor : string;  (** monitor (or keyed-instance) name, e.g. ["no_divergence(T3)"] *)
  v_message : string;
  v_event : int option;  (** id of the violating event; [None] for quiesce-time verdicts *)
}

type 's step =
  | Continue of 's  (** keep folding *)
  | Accept  (** obligation discharged: stop stepping this instance and GC it *)
  | Violate of 's * string
      (** record a counterexample anchored at the current event; the
          instance keeps folding with the given state so later independent
          violations still surface *)

type t
(** A monitor specification. Pure: building one performs no allocation of
    run state; every {!instantiate} (or {!run}) starts fresh. *)

val name : t -> string

val observes_kind : t -> Trace.kind -> bool
(** Whether the spec's [on] predicate claims the kind — for a conjunction,
    whether any child's does. This is the static subscription surface the
    trace-bus sampler must keep at full fidelity ({!Trace.set_sampling}):
    sampling may only thin kinds no active monitor observes. *)

val observes : string list -> Trace.kind -> bool
(** [observes labels] is an [on] predicate matching events whose
    {!Trace.kind_label} is listed — the DSL's [on : kind list] clause. *)

val make :
  name:string ->
  ?on:(Trace.kind -> bool) ->
  init:(unit -> 's) ->
  step:('s -> Trace.event -> 's step) ->
  ?at_quiesce:('s -> string list) ->
  unit ->
  t
(** A single-instance spec. Events failing [on] (default: observe
    everything) are not stepped. [at_quiesce] (default: accept) returns the
    messages of every obligation still standing when the trace ends. *)

val keyed :
  name:string ->
  ?on:(Trace.kind -> bool) ->
  key:(Trace.event -> string option) ->
  init:(string -> 's) ->
  step:('s -> Trace.event -> 's step) ->
  ?at_quiesce:(string -> 's -> string list) ->
  unit ->
  t
(** One state machine per key — per transaction, per site. [key] names the
    instance an observed event belongs to ([None]: the event belongs to no
    instance and is skipped); the first event of a fresh key allocates its
    state via [init]. A step returning [Accept] finalizes the instance:
    its state is GC'd and later events under the same key allocate a new
    instance. Violations are reported as ["name(key)"]. *)

val all : name:string -> t list -> t
(** Conjunction: every child must hold. A child that has produced a
    violation is short-circuited — no longer stepped, and its
    [at_quiesce] is skipped — so each child contributes at most its first
    counterexample while the others keep observing. *)

(** {1 Running} *)

type instance
(** Fresh run state for one spec (created by {!instantiate}); feed it
    events with {!observe}, then close it with {!quiesce}. *)

val instantiate : t -> instance
val observe : instance -> Trace.event -> unit

val violations : instance -> violation list
(** Violations recorded so far, in detection order (without quiesce-time
    checks). *)

val live_instances : instance -> int
(** Number of live state machines: 1 (or 0 after accept) for a {!make}
    spec, the live-key count for a {!keyed} spec, the children's sum for a
    conjunction. Exposed so tests can pin keyed-instance GC. *)

val quiesce : instance -> violation list
(** End of trace: run every remaining state's [at_quiesce] and return all
    violations (stepped ones first, in detection order). Idempotent. *)

val run : t -> Trace.t -> violation list
(** [instantiate], fold the whole trace, [quiesce]. *)

val failures : violation list -> (string * string) list
(** Campaign-oracle shape: [(monitor, message)] with the violating event id
    woven into the message, concatenable with the runtime's oracle
    failures. *)

val witness : Trace.t -> violation -> string
(** Formatted counterexample: the verdict line, the violating event, and
    its causal cone (via {!Postmortem.causal_cone}) one event per line.
    Quiesce-time violations (no anchor event) render the verdict line
    only. *)
