type agg = Last | Sum | Max

type series = { s_id : int; s_name : string; s_agg : agg }

type window = {
  w_index : int;
  w_start : float;
  w_until : float;
  w_complete : bool;
  w_values : float option array;
}

type t = {
  on : bool;
  width : float;
  capacity : int;
  mutable series : series list; (* reversed registration order *)
  mutable n_series : int;
  mutable started : bool; (* an observation happened: registration closed *)
  mutable cur : float option array;
  mutable cur_index : int; (* -1: no window open *)
  closed : window Queue.t;
  mutable dropped : int;
  mutable finished : bool;
}

let create ?(enabled = true) ?(capacity = 4096) ~width () =
  if width <= 0.0 then invalid_arg "Timeseries.create: width must be positive";
  if capacity < 1 then invalid_arg "Timeseries.create: capacity must be >= 1";
  {
    on = enabled;
    width;
    capacity;
    series = [];
    n_series = 0;
    started = false;
    cur = [||];
    cur_index = -1;
    closed = Queue.create ();
    dropped = 0;
    finished = false;
  }

let null = create ~enabled:false ~width:1.0 ()
let enabled t = t.on
let width t = t.width
let dropped t = t.dropped

let series t ?(agg = Last) name =
  if t.on && t.started then
    invalid_arg "Timeseries.series: registration after the first observation";
  let s = { s_id = t.n_series; s_name = name; s_agg = agg } in
  t.series <- s :: t.series;
  t.n_series <- t.n_series + 1;
  s

let series_names t = List.rev_map (fun s -> s.s_name) t.series

(* Half-open windows [k*width, (k+1)*width): an observation exactly on a
   boundary belongs to the later window. *)
let index_of t now = int_of_float (Float.floor (now /. t.width))

let push_closed t w =
  Queue.push w t.closed;
  if Queue.length t.closed > t.capacity then begin
    ignore (Queue.pop t.closed);
    t.dropped <- t.dropped + 1
  end

let close_current t ~complete =
  if t.cur_index >= 0 then begin
    push_closed t
      {
        w_index = t.cur_index;
        w_start = float_of_int t.cur_index *. t.width;
        w_until = float_of_int (t.cur_index + 1) *. t.width;
        w_complete = complete;
        w_values = t.cur;
      };
    t.cur_index <- -1;
    t.cur <- [||]
  end

let open_window t idx =
  t.cur_index <- idx;
  t.cur <- Array.make t.n_series None

(* Advance to the window holding [idx], closing the current window and
   materializing empty windows for any gap — a quiet stretch of the run is
   a row of empty windows, not a hole in the series. *)
let advance t idx =
  if t.cur_index < 0 then open_window t idx
  else if idx > t.cur_index then begin
    let from = t.cur_index + 1 in
    close_current t ~complete:true;
    for gap = from to idx - 1 do
      open_window t gap;
      close_current t ~complete:true
    done;
    open_window t idx
  end

let observe t s ~now v =
  if t.on && not t.finished then begin
    t.started <- true;
    (* Sim time is monotone; clamp a same-window straggler to the open
       window rather than failing. *)
    let idx = max (index_of t now) t.cur_index in
    advance t idx;
    let cell = t.cur.(s.s_id) in
    t.cur.(s.s_id) <-
      (match (cell, s.s_agg) with
       | None, _ | Some _, Last -> Some v
       | Some old, Sum -> Some (old +. v)
       | Some old, Max -> Some (Float.max old v))
  end

let finish t ~now =
  if t.on && not t.finished then begin
    t.finished <- true;
    if t.cur_index >= 0 then begin
      let complete = now >= float_of_int (t.cur_index + 1) *. t.width in
      close_current t ~complete
    end
  end

let windows t = List.of_seq (Queue.to_seq t.closed)

let value w s = w.w_values.(s.s_id)

let to_json t =
  let names = series_names t in
  Json.Obj
    [
      ("width", Json.Num t.width);
      ("dropped_windows", Json.int t.dropped);
      ("series", Json.List (List.map (fun n -> Json.Str n) names));
      ( "windows",
        Json.List
          (List.map
             (fun w ->
               Json.Obj
                 [
                   ("index", Json.int w.w_index);
                   ("start", Json.Num w.w_start);
                   ("until", Json.Num w.w_until);
                   ("complete", Json.Bool w.w_complete);
                   ( "values",
                     Json.Obj
                       (List.mapi
                          (fun i n ->
                            ( n,
                              match w.w_values.(i) with
                              | Some v -> Json.Num v
                              | None -> Json.Null ))
                          names) );
                 ])
             (windows t)) );
    ]

let to_csv t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "window_start";
  List.iter
    (fun n ->
      Buffer.add_char buf ',';
      Buffer.add_string buf n)
    (series_names t);
  Buffer.add_char buf '\n';
  List.iter
    (fun w ->
      Buffer.add_string buf (Printf.sprintf "%g" w.w_start);
      Array.iter
        (fun cell ->
          Buffer.add_char buf ',';
          match cell with
          | Some v -> Buffer.add_string buf (Printf.sprintf "%g" v)
          | None -> ())
        w.w_values;
      Buffer.add_char buf '\n')
    (windows t);
  Buffer.contents buf
