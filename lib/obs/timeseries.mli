(** Sim-time time-series: registered series sampled into fixed-width
    windows with ring-buffer storage.

    A series is registered once (before the first observation) with an
    in-window aggregation: [Last] for gauges (queue depth, live blocked
    count), [Sum] for deltas of cumulative counters (committed, WAL
    flushes — window sum / width is the rate), [Max] for high-water marks.

    Windows are half-open [[k*width, (k+1)*width)]: an observation exactly
    on a boundary belongs to the {e later} window. Closing a window when
    time skips ahead materializes empty windows for the gap, so a quiet
    stretch shows as empty rows, not holes. {!finish} flushes the open
    window; it is marked incomplete when the run ended before the window's
    nominal end — consumers can drop or annotate the partial tail.

    Storage is a ring of at most [capacity] closed windows; overflow drops
    the oldest and counts it in {!dropped}.

    The disabled series ({!null}, or [create ~enabled:false]) ignores every
    observation, so instrumented code costs one branch when off. Sampling
    draws nothing from any simulation RNG. *)

type t

type agg =
  | Last  (** gauge: keep the window's last observation *)
  | Sum  (** counter delta: add observations within the window *)
  | Max  (** high-water mark within the window *)

type series

val create : ?enabled:bool -> ?capacity:int -> width:float -> unit -> t
(** [width] is the window width in simulated time (must be positive);
    [capacity] (default 4096) bounds the ring of closed windows. *)

val null : t
val enabled : t -> bool
val width : t -> float

val series : t -> ?agg:agg -> string -> series
(** Register a series (default [Last]). Raises [Invalid_argument] after the
    first observation — the window layout is fixed once sampling starts. *)

val observe : t -> series -> now:float -> float -> unit
(** Record a value at simulated time [now]. No-op when disabled or after
    {!finish}. *)

val finish : t -> now:float -> unit
(** End of run: flush the open window ([w_complete = false] if [now] is
    before its nominal end). Idempotent; later observations are ignored. *)

type window = {
  w_index : int;  (** [k]: the window covers [k*width, (k+1)*width) *)
  w_start : float;
  w_until : float;  (** nominal end, even for a partial final window *)
  w_complete : bool;
  w_values : float option array;  (** per-series; [None]: no observation *)
}

val windows : t -> window list
(** Closed windows, oldest first (at most [capacity]). *)

val value : window -> series -> float option
val series_names : t -> string list
val dropped : t -> int
(** Windows discarded to ring overflow. *)

val to_json : t -> Json.t
(** [{"width","dropped_windows","series":[names],
    "windows":[{index,start,until,complete,values:{name: num|null}}...]}] *)

val to_csv : t -> string
(** Header [window_start,<series>...]; one row per window; empty cell for a
    series with no observation in that window. *)
