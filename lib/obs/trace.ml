type kind =
  | Rpc_send of { src : int; dst : int }
  | Rpc_recv of { src : int; dst : int }
  | Rpc_drop of { src : int; dst : int; reason : string; elapsed : float }
  | Rpc_timeout of { src : int; dst : int; timeout : float; elapsed : float }
  | Quorum_read of { txn : string; op : string; got : int; need : int }
  | Quorum_append of { txn : string; op : string; got : int; need : int }
  | Repo_append of { txn : string; op : string; tentative : bool }
  | Txn_begin of { txn : string }
  | Txn_commit of { txn : string }
  | Txn_abort of { txn : string; reason : string }
  | Lock_wait of { txn : string; blocker : string }
  | Lock_grant of { txn : string; op : string }
  | Epoch_seal of { epoch : int }
  | Epoch_transfer of { epoch : int }
  | Epoch_fence of { epoch : int; stale : int }
  | Crash of { site : int; amnesia : bool }
  | Recover of { site : int; resynced : bool }
  | Partition of { n_groups : int }
  | Heal
  | Detector_suspect of { site : int }
  | Detector_trust of { site : int }
  | Wal_flush of { site : int; records : int }
  | Wal_checkpoint of { site : int; kept : int; dropped_segments : int }
  | Wal_full of { site : int }
  | Wal_replay of { site : int; replayed : int; truncated : int; corrupt : bool }
  | Store_fault of { site : int; fault : string }
  | Commit_point of { txn : string }
  | Txn_redrive of { txn : string; outcome : string }
  | Coop_term of { txn : string; outcome : string }
  | Orphan_gc of { site : int; resolved : int }
  | Deadlock of { victim : string; cycle : string list }
  | Txn_decide of { txn : string; site : int; committed : bool }
  | Takeover_acquire of { txn : string; site : int; term : int }
  | Takeover_fence of { txn : string; site : int; term : int; granted : int }
  | Quiesce of { up : int; n_sites : int; partitioned : bool }
  | Span_begin of { span : int; parent : int option; label : string }
  | Span_end of { span : int; outcome : string }
  | Shed of { txn : string; reason : string }
  | Repo_resolve of { txn : string; committed : bool }
  | Session_commit of { session : int; txn : string; counter : int; site : int }
  | Breaker of { site : int; state : string }
  | Rpc_hedge of { src : int; dst : int; delay : float }
  | Rpc_outcome of { src : int; dst : int; ok : bool; elapsed : float }
  | Slow_inject of { site : int; mode : string }
  | Detector_slow of { site : int; slow : bool; score : float }

type event = {
  id : int;
  time : float;
  site : int;
  lamport : int;
  prev : int option;
  cause : int option;
  kind : kind;
}

let dummy_event =
  { id = -1; time = 0.0; site = -1; lamport = 0; prev = None; cause = None; kind = Heal }

type t = {
  on : bool;
  mutable data : event array; (* growable; [size] slots in use *)
  mutable size : int;
  mutable now : unit -> float;
  (* Per-site Lamport counter and last event id; index [site + 1] so the
     system lane (-1) shares the machinery. *)
  counters : int array;
  last : int array;
  mutable next_span : int;
  (* Per-kind sampling: keep 1 in [sample_every] events of each kind
     (deterministic per-kind counters, no RNG), except kinds the
     [sample_forced] predicate claims — those stay full fidelity. The
     counters and the forced-decision cache are dense arrays indexed by
     {!kind_tag}, so the sampled-out path costs two array reads — no
     hashing, no allocation — and thinning the bus actually saves the
     wall time the dropped events would have cost. *)
  mutable sample_every : int;
  mutable sample_forced : kind -> bool;
  sample_counts : int array;
  sample_forced_cache : int array; (* -1 unknown, 0 thinned, 1 forced *)
  mutable sampled_out : int;
}

(* Dense tag per kind constructor, for the sampling arrays. *)
let n_kind_tags = 45

let kind_tag = function
  | Rpc_send _ -> 0
  | Rpc_recv _ -> 1
  | Rpc_drop _ -> 2
  | Rpc_timeout _ -> 3
  | Quorum_read _ -> 4
  | Quorum_append _ -> 5
  | Repo_append _ -> 6
  | Txn_begin _ -> 7
  | Txn_commit _ -> 8
  | Txn_abort _ -> 9
  | Lock_wait _ -> 10
  | Lock_grant _ -> 11
  | Epoch_seal _ -> 12
  | Epoch_transfer _ -> 13
  | Epoch_fence _ -> 14
  | Crash _ -> 15
  | Recover _ -> 16
  | Partition _ -> 17
  | Heal -> 18
  | Detector_suspect _ -> 19
  | Detector_trust _ -> 20
  | Wal_flush _ -> 21
  | Wal_checkpoint _ -> 22
  | Wal_full _ -> 23
  | Wal_replay _ -> 24
  | Store_fault _ -> 25
  | Commit_point _ -> 26
  | Txn_redrive _ -> 27
  | Coop_term _ -> 28
  | Orphan_gc _ -> 29
  | Deadlock _ -> 30
  | Txn_decide _ -> 31
  | Takeover_acquire _ -> 32
  | Takeover_fence _ -> 33
  | Quiesce _ -> 34
  | Span_begin _ -> 35
  | Span_end _ -> 36
  | Shed _ -> 37
  | Repo_resolve _ -> 38
  | Session_commit _ -> 39
  | Breaker _ -> 40
  | Rpc_hedge _ -> 41
  | Rpc_outcome _ -> 42
  | Slow_inject _ -> 43
  | Detector_slow _ -> 44

let create ?(enabled = true) ~n_sites () =
  {
    on = enabled;
    data = Array.make 1024 dummy_event;
    size = 0;
    now = (fun () -> 0.0);
    counters = Array.make (n_sites + 1) 0;
    last = Array.make (n_sites + 1) (-1);
    next_span = 0;
    sample_every = 1;
    sample_forced = (fun _ -> false);
    sample_counts = Array.make n_kind_tags 0;
    sample_forced_cache = Array.make n_kind_tags (-1);
    sampled_out = 0;
  }

let null = create ~enabled:false ~n_sites:0 ()
let enabled t = t.on
let set_clock t f = t.now <- f
let length t = t.size

let get t id =
  if id < 0 || id >= t.size then invalid_arg "Trace.get: bad event id";
  t.data.(id)

let push t e =
  if t.size = Array.length t.data then begin
    let bigger = Array.make (2 * t.size) dummy_event in
    Array.blit t.data 0 bigger 0 t.size;
    t.data <- bigger
  end;
  t.data.(t.size) <- e;
  t.size <- t.size + 1

let kind_label = function
  | Rpc_send _ -> "rpc_send"
  | Rpc_recv _ -> "rpc_recv"
  | Rpc_drop _ -> "rpc_drop"
  | Rpc_timeout _ -> "rpc_timeout"
  | Quorum_read _ -> "quorum_read"
  | Quorum_append _ -> "quorum_append"
  | Repo_append _ -> "repo_append"
  | Txn_begin _ -> "txn_begin"
  | Txn_commit _ -> "txn_commit"
  | Txn_abort _ -> "txn_abort"
  | Lock_wait _ -> "lock_wait"
  | Lock_grant _ -> "lock_grant"
  | Epoch_seal _ -> "epoch_seal"
  | Epoch_transfer _ -> "epoch_transfer"
  | Epoch_fence _ -> "epoch_fence"
  | Crash _ -> "crash"
  | Recover _ -> "recover"
  | Partition _ -> "partition"
  | Heal -> "heal"
  | Detector_suspect _ -> "detector_suspect"
  | Detector_trust _ -> "detector_trust"
  | Wal_flush _ -> "wal_flush"
  | Wal_checkpoint _ -> "wal_checkpoint"
  | Wal_full _ -> "wal_full"
  | Wal_replay _ -> "wal_replay"
  | Store_fault _ -> "store_fault"
  | Commit_point _ -> "commit_point"
  | Txn_redrive _ -> "txn_redrive"
  | Coop_term _ -> "coop_term"
  | Orphan_gc _ -> "orphan_gc"
  | Deadlock _ -> "deadlock"
  | Txn_decide _ -> "txn_decide"
  | Takeover_acquire _ -> "takeover_acquire"
  | Takeover_fence _ -> "takeover_fence"
  | Quiesce _ -> "quiesce"
  | Span_begin _ -> "span_begin"
  | Span_end _ -> "span_end"
  | Shed _ -> "shed"
  | Repo_resolve _ -> "repo_resolve"
  | Session_commit _ -> "session_commit"
  | Breaker _ -> "breaker"
  | Rpc_hedge _ -> "rpc_hedge"
  | Rpc_outcome _ -> "rpc_outcome"
  | Slow_inject _ -> "slow_inject"
  | Detector_slow _ -> "detector_slow"

let set_sampling t ~every ?(forced = fun _ -> false) () =
  t.sample_every <- max 1 every;
  t.sample_forced <- forced;
  Array.fill t.sample_counts 0 n_kind_tags 0;
  Array.fill t.sample_forced_cache 0 n_kind_tags (-1)

let sampling t = t.sample_every
let sampled_out t = t.sampled_out

(* Structural kinds are never thinned: dropping a span half corrupts the
   span tree, and the final Quiesce is the fairness signal every liveness
   monitor folds. Everything else keeps 1 in [sample_every] per kind, on a
   deterministic per-kind counter — no RNG, so a sampled run draws exactly
   what the full-fidelity run draws. *)
let keep t kind =
  t.sample_every <= 1
  || (match kind with
      | Span_begin _ | Span_end _ | Quiesce _ -> true
      | _ ->
        (* The forced predicate is pure per kind constructor, so its
           verdict is cached per tag: steady state is two array reads. *)
        let tag = kind_tag kind in
        let forced =
          match t.sample_forced_cache.(tag) with
          | -1 ->
            let f = if t.sample_forced kind then 1 else 0 in
            t.sample_forced_cache.(tag) <- f;
            f = 1
          | f -> f = 1
        in
        forced
        ||
        let n = t.sample_counts.(tag) in
        t.sample_counts.(tag) <- n + 1;
        n mod t.sample_every = 0)

let emit_kept t ~site ~cause kind =
  let lane = site + 1 in
  let cause = match cause with Some c when c >= 0 -> Some c | _ -> None in
  let witnessed =
    match cause with Some c -> (get t c).lamport | None -> t.counters.(lane)
  in
  let lamport = max t.counters.(lane) witnessed + 1 in
  t.counters.(lane) <- lamport;
  let prev = if t.last.(lane) >= 0 then Some t.last.(lane) else None in
  let id = t.size in
  t.last.(lane) <- id;
  push t { id; time = t.now (); site; lamport; prev; cause; kind };
  id

let emit t ~site ?cause kind =
  if not t.on then -1
  else if not (keep t kind) then begin
    t.sampled_out <- t.sampled_out + 1;
    -1
  end
  else begin
    let p = Profile.current () in
    if Profile.enabled p then
      Profile.time p ~subsystem:"trace" "publish" (fun () ->
          emit_kept t ~site ~cause kind)
    else emit_kept t ~site ~cause kind
  end

let events t = Array.to_list (Array.sub t.data 0 t.size)

let span_begin t ~site ?parent label =
  if not t.on then -1
  else begin
    let span = t.next_span in
    t.next_span <- span + 1;
    let parent = match parent with Some p when p >= 0 -> Some p | _ -> None in
    ignore (emit t ~site (Span_begin { span; parent; label }));
    span
  end

let span_end t ~site ~span ~outcome =
  if t.on && span >= 0 then ignore (emit t ~site (Span_end { span; outcome }))

type span = {
  span_id : int;
  label : string;
  span_parent : int option;
  span_site : int;
  t_begin : float;
  t_end : float option;
  span_outcome : string option;
}

let spans t =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  for i = 0 to t.size - 1 do
    let e = t.data.(i) in
    match e.kind with
    | Span_begin { span; parent; label } ->
      Hashtbl.replace tbl span
        {
          span_id = span;
          label;
          span_parent = parent;
          span_site = e.site;
          t_begin = e.time;
          t_end = None;
          span_outcome = None;
        };
      order := span :: !order
    | Span_end { span; outcome } ->
      (match Hashtbl.find_opt tbl span with
       | Some s ->
         Hashtbl.replace tbl span
           { s with t_end = Some e.time; span_outcome = Some outcome }
       | None -> ())
    | _ -> ()
  done;
  List.rev_map (fun id -> Hashtbl.find tbl id) !order

let span_durations t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun s ->
      match s.t_end with
      | None -> ()
      | Some te ->
        let summary =
          match Hashtbl.find_opt tbl s.label with
          | Some sum -> sum
          | None ->
            let sum = Atomrep_stats.Summary.create () in
            Hashtbl.add tbl s.label sum;
            sum
        in
        Atomrep_stats.Summary.add summary (te -. s.t_begin))
    (spans t);
  Hashtbl.fold (fun label sum acc -> (label, sum) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp_kind ppf = function
  | Rpc_send { src; dst } -> Format.fprintf ppf "rpc_send %d->%d" src dst
  | Rpc_recv { src; dst } -> Format.fprintf ppf "rpc_recv %d->%d" src dst
  | Rpc_drop { src; dst; reason; elapsed } ->
    Format.fprintf ppf "rpc_drop %d->%d (%s, %.1f elapsed)" src dst reason elapsed
  | Rpc_timeout { src; dst; timeout; elapsed } ->
    Format.fprintf ppf "rpc_timeout %d->%d (%.1f configured, %.1f elapsed)" src
      dst timeout elapsed
  | Quorum_read { txn; op; got; need } ->
    Format.fprintf ppf "quorum_read %s.%s %d/%d" txn op got need
  | Quorum_append { txn; op; got; need } ->
    Format.fprintf ppf "quorum_append %s.%s %d/%d" txn op got need
  | Repo_append { txn; op; tentative } ->
    Format.fprintf ppf "repo_append %s.%s%s" txn op
      (if tentative then " (tentative)" else "")
  | Txn_begin { txn } -> Format.fprintf ppf "txn_begin %s" txn
  | Txn_commit { txn } -> Format.fprintf ppf "txn_commit %s" txn
  | Txn_abort { txn; reason } -> Format.fprintf ppf "txn_abort %s (%s)" txn reason
  | Lock_wait { txn; blocker } ->
    Format.fprintf ppf "lock_wait %s on %s" txn blocker
  | Lock_grant { txn; op } -> Format.fprintf ppf "lock_grant %s.%s" txn op
  | Epoch_seal { epoch } -> Format.fprintf ppf "epoch_seal ->%d" epoch
  | Epoch_transfer { epoch } -> Format.fprintf ppf "epoch_transfer ->%d" epoch
  | Epoch_fence { epoch; stale } ->
    Format.fprintf ppf "epoch_fence %d fences %d" epoch stale
  | Crash { site; amnesia } ->
    Format.fprintf ppf "crash site %d%s" site (if amnesia then " (amnesia)" else "")
  | Recover { site; resynced } ->
    Format.fprintf ppf "recover site %d%s" site (if resynced then " (resynced)" else "")
  | Partition { n_groups } -> Format.fprintf ppf "partition into %d groups" n_groups
  | Heal -> Format.pp_print_string ppf "heal"
  | Detector_suspect { site } -> Format.fprintf ppf "detector_suspect site %d" site
  | Detector_trust { site } -> Format.fprintf ppf "detector_trust site %d" site
  | Wal_flush { site; records } ->
    Format.fprintf ppf "wal_flush site %d (%d records)" site records
  | Wal_checkpoint { site; kept; dropped_segments } ->
    Format.fprintf ppf "wal_checkpoint site %d (kept %d, dropped %d segments)" site
      kept dropped_segments
  | Wal_full { site } -> Format.fprintf ppf "wal_full site %d" site
  | Wal_replay { site; replayed; truncated; corrupt } ->
    Format.fprintf ppf "wal_replay site %d (%d replayed, %d truncated%s)" site
      replayed truncated (if corrupt then ", CORRUPT" else "")
  | Store_fault { site; fault } -> Format.fprintf ppf "store_fault site %d (%s)" site fault
  | Commit_point { txn } -> Format.fprintf ppf "commit_point %s" txn
  | Txn_redrive { txn; outcome } ->
    Format.fprintf ppf "txn_redrive %s -> %s" txn outcome
  | Coop_term { txn; outcome } ->
    Format.fprintf ppf "coop_term %s -> %s" txn outcome
  | Orphan_gc { site; resolved } ->
    Format.fprintf ppf "orphan_gc site %d (%d resolved)" site resolved
  | Deadlock { victim; cycle } ->
    Format.fprintf ppf "deadlock victim %s (cycle %s)" victim
      (String.concat "->" cycle)
  | Txn_decide { txn; site; committed } ->
    Format.fprintf ppf "txn_decide %s -> %s (driver at site %d)" txn
      (if committed then "commit" else "abort")
      site
  | Takeover_acquire { txn; site; term } ->
    Format.fprintf ppf "takeover_acquire %s term %d (site %d)" txn term site
  | Takeover_fence { txn; site; term; granted } ->
    Format.fprintf ppf "takeover_fence %s: term %d fenced by %d (site %d)" txn
      term granted site
  | Quiesce { up; n_sites; partitioned } ->
    Format.fprintf ppf "quiesce %d/%d sites up%s" up n_sites
      (if partitioned then ", partitioned" else "")
  | Span_begin { span; parent; label } ->
    Format.fprintf ppf "span_begin #%d %s%s" span label
      (match parent with Some p -> Printf.sprintf " (in #%d)" p | None -> "")
  | Span_end { span; outcome } -> Format.fprintf ppf "span_end #%d %s" span outcome
  | Shed { txn; reason } -> Format.fprintf ppf "shed %s (%s)" txn reason
  | Repo_resolve { txn; committed } ->
    Format.fprintf ppf "repo_resolve %s -> %s" txn
      (if committed then "commit" else "abort")
  | Session_commit { session; txn; counter; site } ->
    Format.fprintf ppf "session_commit s%d %s @(%d,%d)" session txn counter site
  | Breaker { site; state } -> Format.fprintf ppf "breaker site %d -> %s" site state
  | Rpc_hedge { src; dst; delay } ->
    Format.fprintf ppf "rpc_hedge %d->%d (after %.1f)" src dst delay
  | Rpc_outcome { src; dst; ok; elapsed } ->
    Format.fprintf ppf "rpc_outcome %d->%d %s (%.1f elapsed)" src dst
      (if ok then "ok" else "fail")
      elapsed
  | Slow_inject { site; mode } ->
    Format.fprintf ppf "slow_inject site %d (%s)" site mode
  | Detector_slow { site; slow; score } ->
    Format.fprintf ppf "detector_%s site %d (score %.2f)"
      (if slow then "suspect_slow" else "trust_fast")
      site score

let pp_event ppf e =
  Format.fprintf ppf "[%8.1f] site=%-2d L=%-5d #%-5d %a" e.time e.site e.lamport
    e.id pp_kind e.kind
