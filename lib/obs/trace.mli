(** Causally-ordered trace of protocol events.

    The replication stack emits typed events into a bus; each event is
    stamped with simulated time, the emitting site, and a per-site Lamport
    counter. Two happens-before edges are recorded explicitly: per-site
    program order ([prev], the previous event emitted at the same site) and
    cross-site causation ([cause], supplied by the emitter — e.g. a message
    delivery names its send). Together they make the trace a Lamport-style
    event history over which {!Postmortem} computes causal cones.

    A disabled bus ({!null}, or [create ~enabled:false]) records nothing and
    draws nothing from any RNG, so instrumented code behaves identically —
    bit-for-bit — with tracing on or off; only the trace itself differs. *)

type kind =
  | Rpc_send of { src : int; dst : int }
  | Rpc_recv of { src : int; dst : int }
  | Rpc_drop of { src : int; dst : int; reason : string; elapsed : float }
      (** lost in flight ([link]), delivered to a down site ([dead_dest]),
          or refused by the circuit breaker ([breaker]); [elapsed] is the
          sim-time the message spent in flight before being dropped (0 for
          send-time refusals) *)
  | Rpc_timeout of { src : int; dst : int; timeout : float; elapsed : float }
      (** the caller gave up waiting: [timeout] is the configured budget,
          [elapsed] the sim-time actually waited — postmortems attribute
          tail latency to specific sites from these *)
  | Quorum_read of { txn : string; op : string; got : int; need : int }
      (** initial-quorum assembly outcome at the front-end *)
  | Quorum_append of { txn : string; op : string; got : int; need : int }
      (** final-quorum append outcome at the front-end *)
  | Repo_append of { txn : string; op : string; tentative : bool }
      (** one repository logged an entry (site = the repository) *)
  | Txn_begin of { txn : string }
  | Txn_commit of { txn : string }
  | Txn_abort of { txn : string; reason : string }
  | Lock_wait of { txn : string; blocker : string }
      (** blocked on a conflicting uncommitted action's tentative entry *)
  | Lock_grant of { txn : string; op : string }
      (** the scheme rule admitted the operation (no conflict in the view) *)
  | Epoch_seal of { epoch : int }
  | Epoch_transfer of { epoch : int }
  | Epoch_fence of { epoch : int; stale : int }
      (** an operation pinned to [stale] was refused by epoch [epoch] *)
  | Crash of { site : int; amnesia : bool }
  | Recover of { site : int; resynced : bool }
  | Partition of { n_groups : int }
  | Heal
  | Detector_suspect of { site : int }
  | Detector_trust of { site : int }
  | Wal_flush of { site : int; records : int }
      (** a flush barrier persisted this many buffered records *)
  | Wal_checkpoint of { site : int; kept : int; dropped_segments : int }
      (** checkpoint compaction: [kept] snapshot payloads replace
          [dropped_segments] segments *)
  | Wal_full of { site : int }
      (** a flush or checkpoint was refused: disk full *)
  | Wal_replay of { site : int; replayed : int; truncated : int; corrupt : bool }
      (** recovery replayed the durable prefix; [corrupt] means an invalid
          record was found before the tail (bit rot detected) and the
          suffix was discarded pending resync *)
  | Store_fault of { site : int; fault : string }
      (** a storage fault was injected at the site's WAL *)
  | Commit_point of { txn : string }
      (** the coordinator durably logged its commit intent — the decision
          survives a crash from here on *)
  | Txn_redrive of { txn : string; outcome : string }
      (** a recovered coordinator re-drove an in-doubt transaction *)
  | Coop_term of { txn : string; outcome : string }
      (** a participant ran cooperative termination for a stuck blocker:
          outcome is adopted-commit / adopted-abort / coop-commit /
          presumed-abort / inconclusive *)
  | Orphan_gc of { site : int; resolved : int }
      (** the orphan reaper swept the repositories from [site] *)
  | Deadlock of { victim : string; cycle : string list }
      (** the waits-for cycle detector sentenced a victim *)
  | Txn_decide of { txn : string; site : int; committed : bool }
      (** a driver (coordinator, recovered coordinator, or takeover
          holder) rendered a commit/abort verdict for the transaction.
          Emitted at the verdict, before any idempotent finalize guard —
          so every contending driver's decision lands on the bus and the
          no-divergence monitor ({!Atomrep_obs.Monitor}) can check that no
          two drivers ever decided differently *)
  | Takeover_acquire of { txn : string; site : int; term : int }
      (** the site won a takeover lease at [term] and adopts the drive *)
  | Takeover_fence of { txn : string; site : int; term : int; granted : int }
      (** a driver at stale [term] was refused by a repository holding a
          lease at [granted] and halted its drive *)
  | Quiesce of { up : int; n_sites : int; partitioned : bool }
      (** the runtime's end-of-run fairness signal: network state at the
          horizon ([up] live sites out of [n_sites], partition in force or
          not). Liveness monitors ({!Atomrep_chaos.Monitors}) treat a trace
          whose final [Quiesce] shows a healed, fully-live network as one
          where fairness held — every blocked obligation had its chance to
          resolve — and only then flag unresolved obligations *)
  | Span_begin of { span : int; parent : int option; label : string }
  | Span_end of { span : int; outcome : string }
  | Shed of { txn : string; reason : string }
      (** admission control shed the transaction (queue overflow, deadline
          expiry, or class eviction) — it must still abort cleanly
          everywhere; the shed-safety monitor checks exactly that *)
  | Repo_resolve of { txn : string; committed : bool }
      (** one repository (site = the repository) newly installed a terminal
          record for the transaction — its tentative entries there are
          resolved from here on, whatever the delivery path (commit/abort
          broadcast, anti-entropy gossip, or a vote offer) *)
  | Session_commit of { session : int; txn : string; counter : int; site : int }
      (** an open-loop transaction's Lamport commit timestamp, keyed by
          its session stream and emitted at timestamp assignment (the
          commit point), so trace order is clock-assignment order even
          when partitions delay the vote drive — the per-session
          monotonicity monitor checks counters strictly increase per
          session *)
  | Breaker of { site : int; state : string }
      (** the per-site circuit breaker transitioned to
          closed / open / half-open *)
  | Rpc_hedge of { src : int; dst : int; delay : float }
      (** a lagging quorum round re-issued its request to spare member
          [dst] after waiting [delay] (the adaptive hedging percentile) *)
  | Rpc_outcome of { src : int; dst : int; ok : bool; elapsed : float }
      (** per-destination multicast outcome, emitted for every reply —
          including stragglers that arrive after the gather already fired *)
  | Slow_inject of { site : int; mode : string }
      (** the fail-slow fault channel changed at the site: [mode] names the
          inflation law (constant / heavy / creeping) or ["healed"] *)
  | Detector_slow of { site : int; slow : bool; score : float }
      (** the latency-aware detector raised ([slow = true]) or cleared a
          graded slow-suspicion verdict; [score] is the site's latency
          score relative to the cluster median at the transition *)

type event = {
  id : int; (** global emission index *)
  time : float; (** simulated time *)
  site : int; (** emitting site; [-1] for system-level events *)
  lamport : int; (** per-site Lamport stamp (strictly increasing per site) *)
  prev : int option; (** previous event at the same site (program order) *)
  cause : int option; (** cross-site happens-before predecessor *)
  kind : kind;
}

type t

val create : ?enabled:bool -> n_sites:int -> unit -> t
(** A collecting bus for sites [0 .. n_sites-1] plus the system lane [-1]. *)

val null : t
(** The shared disabled bus: every emit is a no-op. *)

val enabled : t -> bool

val set_clock : t -> (unit -> float) -> unit
(** Source of simulated time for event stamps (set by whoever attaches the
    bus to a simulation, e.g. {!Atomrep_sim.Network.set_trace}). Defaults
    to a constant 0. *)

val emit : t -> site:int -> ?cause:int -> kind -> int
(** Record an event and return its id, or [-1] when the bus is disabled or
    the event was sampled out. A negative [cause] (from a disabled or
    sampled-out emit) is treated as absent. *)

(** {1 Per-kind sampling}

    [set_sampling ~every] thins the bus to 1 in [every] events per kind, on
    deterministic per-kind-label counters — no RNG is drawn, so a sampled
    run behaves bit-for-bit like a full-fidelity run; only the recorded
    trace thins. Kinds matched by [forced] are exempt and stay full
    fidelity: pass the union of every active monitor's observed kinds
    ({!Atomrep_chaos.Monitors.forced}) so monitors never miss an event.
    Span and Quiesce events are always kept (span-tree integrity, and the
    fairness signal liveness monitors fold). A sampled-out emit returns
    [-1], which the causal machinery already treats as "no event". *)

val set_sampling : t -> every:int -> ?forced:(kind -> bool) -> unit -> unit
(** [every <= 1] restores full fidelity. Resets the per-kind counters.
    [forced] must depend only on the kind's constructor (e.g. via
    {!kind_label}), not its payload: its verdict is cached per
    constructor so the sampled-out path stays allocation-free. *)

val sampling : t -> int
(** The current 1-in-N period (1 = full fidelity). *)

val sampled_out : t -> int
(** Events dropped by sampling since creation. *)

val events : t -> event list
(** All events in emission order. *)

val length : t -> int
val get : t -> int -> event
(** [get t id] — O(1); raises [Invalid_argument] on an out-of-range id. *)

val span_begin : t -> site:int -> ?parent:int -> string -> int
(** Open a span (a [Span_begin] event) and return its span id, [-1] when
    disabled. [parent] is the enclosing span's id. *)

val span_end : t -> site:int -> span:int -> outcome:string -> unit
(** Close a span. No-op when disabled or when [span] is negative. *)

type span = {
  span_id : int;
  label : string;
  span_parent : int option;
  span_site : int;
  t_begin : float;
  t_end : float option; (** [None]: still open at the horizon *)
  span_outcome : string option;
}

val spans : t -> span list
(** Reconstructed span tree, in open order. *)

val span_durations : t -> (string * Atomrep_stats.Summary.t) list
(** Per-label duration histograms over the closed spans, label-sorted. *)

val kind_label : kind -> string
(** Short stable name of the constructor ("rpc_send", "txn_commit", ...). *)

val pp_event : Format.formatter -> event -> unit
