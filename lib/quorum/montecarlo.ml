open Atomrep_stats

type fault_model = {
  p_up : float array;
  partition_probability : float;
  groups : int list list;
}

let uniform ~n ~p =
  { p_up = Array.make n p; partition_probability = 0.0; groups = [] }

let sample_reachable rng model ~client_site =
  let n = Array.length model.p_up in
  let up = Array.init n (fun i -> Rng.bernoulli rng model.p_up.(i)) in
  if not up.(client_site) then None
  else begin
    let group_of = Array.make n 0 in
    if Rng.bernoulli rng model.partition_probability then begin
      Array.fill group_of 0 n (-1);
      List.iteri
        (fun g sites -> List.iter (fun s -> if s < n then group_of.(s) <- g) sites)
        model.groups;
      (* Each unlisted site is its own singleton group (isolated), matching
         Network.partition — lumping them into one shared group would let
         them reach each other through the partition. *)
      let next = ref (List.length model.groups) in
      Array.iteri
        (fun s g ->
          if g = -1 then begin
            group_of.(s) <- !next;
            incr next
          end)
        group_of
    end;
    let mine = group_of.(client_site) in
    let reachable =
      List.filter (fun s -> up.(s) && group_of.(s) = mine) (List.init n Fun.id)
    in
    Some reachable
  end

let estimate rng ~trials model ~client_site assignment ~op =
  let sizes = Assignment.sizes_of assignment op in
  let need = max sizes.Assignment.initial sizes.Assignment.final in
  let ok = ref 0 in
  for _ = 1 to trials do
    match sample_reachable rng model ~client_site with
    | Some reachable when List.length reachable >= need -> incr ok
    | Some _ | None -> ()
  done;
  float_of_int !ok /. float_of_int trials

let estimate_weighted rng ~trials model ~client_site weighted ~op =
  let ok = ref 0 in
  for _ = 1 to trials do
    match sample_reachable rng model ~client_site with
    | Some reachable ->
      let live = Quorum.of_sites reachable in
      if Weighted.op_available weighted ~live op then incr ok
    | None -> ()
  done;
  float_of_int !ok /. float_of_int trials
