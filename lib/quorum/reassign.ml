let plan ~live ~ops ~constraints ?(p = 0.9) ?(mix = []) () =
  let members = List.sort_uniq compare live in
  let n = List.length members in
  if n = 0 then None
  else begin
    let mix = if mix = [] then List.map (fun op -> (op, 1.0)) ops else mix in
    let candidates = Assignment.enumerate ~n_sites:n ~ops constraints in
    match Assignment.best_for_mix ~p ~mix candidates with
    | None -> None
    | Some assignment -> Some (members, assignment)
  end
