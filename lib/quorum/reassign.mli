(** Availability-maximizing quorum reassignment policy.

    Given a failure detector's view of the live sites, pick the member set
    and threshold assignment a new epoch should use: all live sites become
    members, and among the assignments over them that satisfy the type's
    intersection constraints (via {!Assignment.enumerate}), the one
    maximizing {!Assignment.workload_availability} wins. This is the
    paper's availability argument for hybrid/dynamic atomicity (Theorems
    10–12) made operational: as sites die, quorums migrate to the survivors
    instead of shrinking toward unavailability. *)

val plan :
  live:int list ->
  ops:string list ->
  constraints:Op_constraint.t list ->
  ?p:float ->
  ?mix:(string * float) list ->
  unit ->
  (int list * Assignment.t) option
(** Propose [(members, assignment)] for a new epoch. [live] is the
    detector's current view (deduplicated and sorted here); [p] (default
    0.9) is the assumed per-site up-probability used to score candidates;
    [mix] weights operations in the score and defaults to uniform over
    [ops]. Returns [None] when no satisfying assignment over the live sites
    exists — with an empty live view, or constraints no quorum sizes over
    so few sites can satisfy — in which case the coordinator must keep the
    old epoch rather than reconfigure into unavailability. *)
