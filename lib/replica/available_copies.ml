open Atomrep_history
open Atomrep_spec
open Atomrep_core
open Atomrep_quorum
open Atomrep_sim
open Atomrep_stats

type outcome = {
  history : Behavioral.t;
  committed : int;
  serializable : bool;
}

let register_spec = Register.spec

let serializable_any_order history =
  let h = Behavioral.strip_aborted history in
  let committed = Behavioral.committed h in
  let orders = Behavioral.permutations committed in
  List.exists
    (fun order -> Serial_spec.legal register_spec (Behavioral.serialize h order))
    orders

(* One read-modify-write transaction against the available copies: read
   from any reachable copy, write to all reachable copies. No intersection
   discipline — exactly the method's behaviour. *)
let rmw_txn net copies history index ~home ~value =
  let action = Action.of_string (Printf.sprintf "T%d" index) in
  let reachable =
    List.filter (fun s -> Network.reachable net home s)
      (List.init (Network.n_sites net) Fun.id)
  in
  match reachable with
  | [] -> () (* no available copy: the client gives up *)
  | first :: _ ->
    history := Behavioral.Begin action :: !history;
    let seen = copies.(first) in
    history :=
      Behavioral.Exec (Register.read seen, action) :: !history;
    List.iter (fun s -> copies.(s) <- value) reachable;
    history :=
      Behavioral.Exec (Register.write value, action) :: !history;
    history := Behavioral.Commit action :: !history

let run ~seed ~n_sites ~txns_per_side ~partition_at ~heal_at () =
  let engine = Engine.create ~seed in
  let net = Network.create engine ~n_sites ~latency_mean:1.0 () in
  let copies = Array.make n_sites "d" in
  let history = ref [] in
  let half = n_sites / 2 in
  let left = List.init half Fun.id in
  let right = List.init (n_sites - half) (fun i -> half + i) in
  Engine.schedule_at engine ~time:partition_at (fun () ->
      Network.partition net [ left; right ]);
  Engine.schedule_at engine ~time:heal_at (fun () -> Network.heal net);
  let index = ref 0 in
  let submit ~time ~home =
    let i = !index in
    incr index;
    Engine.schedule_at engine ~time (fun () ->
        rmw_txn net copies history i ~home ~value:(Printf.sprintf "v%d" i))
  in
  (* Before the partition: one warm-up transaction. *)
  submit ~time:(partition_at /. 2.0) ~home:0;
  (* During the partition: transactions on both sides. *)
  for j = 0 to txns_per_side - 1 do
    let t = partition_at +. 10.0 +. (10.0 *. float_of_int j) in
    submit ~time:t ~home:(List.nth left 0);
    submit ~time:(t +. 1.0) ~home:(List.nth right 0)
  done;
  (* After healing: one reader on each side's copies. *)
  submit ~time:(heal_at +. 10.0) ~home:0;
  Engine.run engine;
  let history = List.rev !history in
  {
    history;
    committed = List.length (Behavioral.committed history);
    serializable = serializable_any_order history;
  }

let quorum_reference ~seed ~n_sites ~txns_per_side ~partition_at ~heal_at () =
  let majority = (n_sites / 2) + 1 in
  let relation = Static_dep.minimal register_spec ~max_len:4 in
  let assignment =
    Assignment.make ~n_sites
      [
        ("Read", { Assignment.initial = majority; final = majority });
        ("Write", { Assignment.initial = majority; final = majority });
      ]
  in
  let total = 2 + (2 * txns_per_side) in
  let values = [ "x"; "y" ] in
  let cfg =
    {
      Runtime.default_config with
      seed;
      n_sites;
      scheme = Replicated.Hybrid;
      objects =
        [
          {
            Runtime.obj_name = "file";
            obj_spec = register_spec;
            obj_relation = relation;
            obj_assignment = assignment;
            obj_members = None;
          };
        ];
      n_txns = total;
      arrival_mean = (heal_at +. 100.0) /. float_of_int total;
      script =
        (fun rng _ ->
          [
            { Runtime.target = "file"; invocation = Register.read_inv };
            {
              Runtime.target = "file";
              invocation = Register.write_inv (Rng.pick_list rng values);
            };
          ]);
      install_faults =
        (fun net ->
          let half = n_sites / 2 in
          let left = List.init half Fun.id in
          let right = List.init (n_sites - half) (fun i -> half + i) in
          let engine = Network.engine net in
          Engine.schedule_at engine ~time:partition_at (fun () ->
              Network.partition net [ left; right ]);
          Engine.schedule_at engine ~time:heal_at (fun () -> Network.heal net));
    }
  in
  let outcome = Runtime.run cfg in
  let failures = Runtime.check_common_order cfg outcome in
  ( outcome.Runtime.metrics.Runtime.committed,
    outcome.Runtime.metrics.Runtime.aborted,
    failures = [] )
