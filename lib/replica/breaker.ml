(* Per-site circuit breaker over RPC outcomes. Pure state machine: the
   runtime feeds it Rpc outcomes (via Network.on_rpc_result) and consults
   it from the network router; it draws no randomness and schedules no
   events, so a breaker that never opens leaves a run bit-identical. *)

type state = Closed | Open | Half_open

let state_label = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type site_state = {
  ring : bool array; (* recent outcomes, true = failure *)
  mutable idx : int;
  mutable filled : int;
  mutable failures : int; (* failures currently in the ring *)
  mutable st : state;
  mutable open_until : float;
  mutable probe_successes : int;
}

type t = {
  window : int;
  threshold : float;
  cooldown : float;
  probes : int;
  sites : site_state array;
  mutable on_transition : site:int -> state:state -> unit;
}

let create ?(window = 8) ?(threshold = 0.5) ?(cooldown = 400.0) ?(probes = 2)
    ~n_sites () =
  let window = max 1 window in
  {
    window;
    threshold;
    cooldown;
    probes = max 1 probes;
    sites =
      Array.init n_sites (fun _ ->
          {
            ring = Array.make window false;
            idx = 0;
            filled = 0;
            failures = 0;
            st = Closed;
            open_until = 0.0;
            probe_successes = 0;
          });
    on_transition = (fun ~site:_ ~state:_ -> ());
  }

let set_transition_hook t f = t.on_transition <- f
let state t ~site = t.sites.(site).st

let reset_ring s =
  Array.fill s.ring 0 (Array.length s.ring) false;
  s.idx <- 0;
  s.filled <- 0;
  s.failures <- 0

let transition t ~site s st =
  if s.st <> st then begin
    s.st <- st;
    t.on_transition ~site ~state:st
  end

let push s ~failed =
  if s.filled = Array.length s.ring then begin
    if s.ring.(s.idx) then s.failures <- s.failures - 1
  end
  else s.filled <- s.filled + 1;
  s.ring.(s.idx) <- failed;
  if failed then s.failures <- s.failures + 1;
  s.idx <- (s.idx + 1) mod Array.length s.ring

let record t ~site ~now ~ok =
  let s = t.sites.(site) in
  match s.st with
  | Closed ->
    push s ~failed:(not ok);
    if
      s.filled >= t.window
      && float_of_int s.failures >= t.threshold *. float_of_int t.window
    then begin
      s.open_until <- now +. t.cooldown;
      reset_ring s;
      s.probe_successes <- 0;
      transition t ~site s Open
    end
  | Open ->
    (* Stragglers from calls issued before the trip: ignored — the window
       restarts from the half-open probes. *)
    ()
  | Half_open ->
    if ok then begin
      s.probe_successes <- s.probe_successes + 1;
      if s.probe_successes >= t.probes then begin
        reset_ring s;
        transition t ~site s Closed
      end
    end
    else begin
      s.open_until <- now +. t.cooldown;
      s.probe_successes <- 0;
      transition t ~site s Open
    end

let allow t ~site ~now =
  let s = t.sites.(site) in
  match s.st with
  | Closed -> true
  | Half_open -> true
  | Open ->
    if now >= s.open_until then begin
      s.probe_successes <- 0;
      transition t ~site s Half_open;
      true
    end
    else false
