(** Per-site circuit breaker over RPC outcomes.

    Quorum traffic to a site that keeps timing out burns the full RPC
    timeout per call — and {!Atomrep_sim.Rpc.multicast} waits for every
    destination, so one dead site stretches every gather to the timeout.
    The breaker watches per-destination outcomes (fed from
    {!Atomrep_sim.Network.on_rpc_result}) and, installed as the network
    router, answers calls to a tripped site immediately instead.

    Classic three-state machine, per destination site:
    - [Closed]: traffic flows; a sliding window of the last [window]
      outcomes is kept, and when it is full with a failure fraction at or
      above [threshold] the breaker trips to [Open].
    - [Open]: traffic is refused (the router answers [None] at once).
      After [cooldown] of simulated time the first {!allow} probe moves to
      [Half_open].
    - [Half_open]: traffic flows again tentatively; [probes] consecutive
      successes close the breaker, any failure re-opens it for another
      cooldown.

    The machine is pure bookkeeping: no RNG, no scheduled events. Refused
    calls must NOT be fed back via {!record} (the network takes care of
    this — router refusals bypass the rpc-result listeners), otherwise an
    open breaker would count its own refusals as failures and never
    recover. *)

type state = Closed | Open | Half_open

val state_label : state -> string
(** ["closed"], ["open"], ["half-open"] — the labels the
    {!Atomrep_obs.Trace.Breaker} events carry. *)

type t

val create :
  ?window:int ->
  ?threshold:float ->
  ?cooldown:float ->
  ?probes:int ->
  n_sites:int ->
  unit ->
  t
(** Defaults: window 8, threshold 0.5, cooldown 400 ms, 2 probes. *)

val set_transition_hook : t -> (site:int -> state:state -> unit) -> unit
(** Observe state transitions (trace emission, metrics). Default: ignore. *)

val record : t -> site:int -> now:float -> ok:bool -> unit
(** Feed one RPC outcome for the destination [site]. Outcomes arriving
    while the breaker is [Open] (stragglers from calls issued before the
    trip) are ignored. *)

val allow : t -> site:int -> now:float -> bool
(** May traffic be routed to [site] now? An [Open] breaker past its
    cooldown transitions to [Half_open] and allows the probe. *)

val state : t -> site:int -> state
