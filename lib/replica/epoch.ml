open Atomrep_quorum

type t = { number : int; members : int list; assignment : Assignment.t }

let make ~number ~members ~assignment =
  let members = List.sort_uniq compare members in
  if List.length members <> assignment.Assignment.n_sites then
    invalid_arg "Epoch.make: assignment sized for a different member count";
  { number; members; assignment }

let bootstrap ~n_sites ?members assignment =
  let members =
    Option.value members ~default:(List.init n_sites Fun.id)
  in
  make ~number:0 ~members ~assignment

let number t = t.number
let members t = t.members
let assignment t = t.assignment

let intersects ~constraints ~prev ~next =
  let u = List.length (List.sort_uniq compare (prev.members @ next.members)) in
  let sizes epoch op =
    try Some (Assignment.sizes_of epoch.assignment op) with _ -> None
  in
  List.for_all
    (fun (c : Op_constraint.t) ->
      match
        ( sizes next c.dependent,
          sizes prev c.supplier,
          sizes prev c.dependent,
          sizes next c.supplier )
      with
      | Some ni, Some pf, Some pi, Some nf ->
        ni.Assignment.initial + pf.Assignment.final > u
        && pi.Assignment.initial + nf.Assignment.final > u
      | _ -> false)
    constraints

let pp ppf t =
  Format.fprintf ppf "epoch %d over {%s}: %a" t.number
    (String.concat "," (List.map string_of_int t.members))
    Assignment.pp t.assignment
