(** Epochs: numbered (member set, quorum assignment) configurations.

    The paper's availability theorems for hybrid and dynamic atomicity
    (Theorems 10–12) rest on quorums being reassignable as timestamps
    advance. An epoch makes one configuration first-class: a monotonically
    increasing number, the sites that hold the object's repositories in
    that configuration, and a threshold assignment sized for exactly that
    member set. Quorum traffic is stamped with its epoch number and
    repositories refuse anything older than the newest epoch they have
    joined, so a reconfiguration cleanly fences the configuration it
    replaces. *)

open Atomrep_quorum

type t

val make : number:int -> members:int list -> assignment:Assignment.t -> t
(** [members] is deduplicated and sorted; raises [Invalid_argument] if the
    assignment's [n_sites] differs from the member count — quorum sizes
    are meaningful only relative to the set they range over. *)

val bootstrap : n_sites:int -> ?members:int list -> Assignment.t -> t
(** Epoch 0. [members] defaults to all [n_sites] sites. *)

val number : t -> int
val members : t -> int list
val assignment : t -> Assignment.t

val intersects :
  constraints:Op_constraint.t list -> prev:t -> next:t -> bool
(** The direct cross-epoch handoff invariant: for every constraint pair
    [(dependent, supplier)], any [next]-epoch initial quorum of the
    dependent intersects any [prev]-epoch final quorum of the supplier,
    and symmetrically any [prev]-epoch initial quorum intersects any
    [next]-epoch final quorum. Quorums are subsets of different member
    sets, so the threshold law generalizes from [i + f > n] to
    [i + f > |members(prev) ∪ members(next)|] — the worst-case spread
    places both quorums as far apart as the union allows. The forward
    direction lets post-switch readers see pre-switch state; the backward
    direction lets operations still in flight across the boundary meet the
    new epoch's writes. When this fails, the handoff must instead drain
    the old epoch through the state-transfer barrier. *)

val pp : Format.formatter -> t -> unit
