open Atomrep_sim

type t = {
  net : Network.t;
  weights : int array;
  read_votes : int;
  write_votes : int;
  versions : (int * int) array; (* (version, tie-break site) per representative *)
  values : string array;
  timeout : float;
}

let create ~net ~weights ~read_votes ~write_votes ~initial =
  let total = Array.fold_left ( + ) 0 weights in
  if read_votes + write_votes <= total then
    invalid_arg "Gifford.create: r + w must exceed the vote total";
  if 2 * write_votes <= total then
    invalid_arg "Gifford.create: 2w must exceed the vote total";
  let n = Array.length weights in
  {
    net;
    weights;
    read_votes;
    write_votes;
    versions = Array.make n (0, 0);
    values = Array.make n initial;
    timeout = 50.0;
  }

let all_sites t = List.init (Array.length t.weights) Fun.id

let votes_of t replies = List.fold_left (fun acc (site, _) -> acc + t.weights.(site)) 0 replies

let newest replies =
  List.fold_left
    (fun best (_, (version, payload)) ->
      match best with
      | None -> Some (version, payload)
      | Some (bv, _) -> if compare version bv > 0 then Some (version, payload) else best)
    None replies

(* Early-quorum gathers: every reply carries its site's votes, so the
   moment the answered set reaches the threshold it IS a valid quorum —
   quorum intersection (r + w > total, 2w > total) holds for any
   threshold-weight subset, not just the full membership, so firing early
   returns the same answers a full gather would. Handlers still run at
   every representative on delivery; only the decision stops waiting. *)
let enough_votes t threshold replies = votes_of t replies >= threshold

let read t ~from ~k =
  Rpc.multicast ~enough:(enough_votes t t.read_votes) t.net ~src:from
    ~dsts:(all_sites t) ~timeout:t.timeout
    ~handler:(fun site -> (t.versions.(site), t.values.(site)))
    ~gather:(fun replies ->
      if votes_of t replies < t.read_votes then k None
      else
        match newest replies with
        | Some (_, value) -> k (Some value)
        | None -> k None)

let write t ~from value ~k =
  (* Phase 1: collect version numbers from a write quorum. *)
  Rpc.multicast ~enough:(enough_votes t t.write_votes) t.net ~src:from
    ~dsts:(all_sites t) ~timeout:t.timeout
    ~handler:(fun site -> t.versions.(site))
    ~gather:(fun replies ->
      if votes_of t replies < t.write_votes then k false
      else begin
        let (high, _) =
          List.fold_left
            (fun acc (_, v) -> if compare v acc > 0 then v else acc)
            (0, 0) replies
        in
        let version = (high + 1, from) in
        (* Phase 2: install at a write quorum. *)
        Rpc.multicast ~enough:(enough_votes t t.write_votes) t.net ~src:from
          ~dsts:(all_sites t) ~timeout:t.timeout
          ~handler:(fun site ->
            if compare version t.versions.(site) > 0 then begin
              t.versions.(site) <- version;
              t.values.(site) <- value
            end)
          ~gather:(fun acks -> k (votes_of t acks >= t.write_votes))
      end)

let current t ~site = (fst t.versions.(site), t.values.(site))
