open Atomrep_history
open Atomrep_clock

type entry = {
  ets : Lamport.Timestamp.t;
  action : Action.t;
  begin_ts : Lamport.Timestamp.t;
  seq : int;
  event : Event.t;
}

type record =
  | Entry of entry
  | Commit_record of Action.t * Lamport.Timestamp.t
  | Abort_record of Action.t
  | Precommit of Action.t * Lamport.Timestamp.t
  | Preabort of Action.t

module Record_ord = struct
  type t = record

  let rank = function
    | Entry _ -> 0
    | Commit_record _ -> 1
    | Abort_record _ -> 2
    | Precommit _ -> 3
    | Preabort _ -> 4

  let compare a b =
    match a, b with
    | Entry e1, Entry e2 ->
      let c = Lamport.Timestamp.compare e1.ets e2.ets in
      if c <> 0 then c
      else begin
        let c = Action.compare e1.action e2.action in
        if c <> 0 then c else Int.compare e1.seq e2.seq
      end
    | Commit_record (a1, t1), Commit_record (a2, t2)
    | Precommit (a1, t1), Precommit (a2, t2) ->
      let c = Action.compare a1 a2 in
      if c <> 0 then c else Lamport.Timestamp.compare t1 t2
    | Abort_record a1, Abort_record a2 | Preabort a1, Preabort a2 ->
      Action.compare a1 a2
    | x, y -> Int.compare (rank x) (rank y)
end

module S = Set.Make (Record_ord)

type t = S.t

let empty = S.empty
let add t r = S.add r t
let merge = S.union
let equal = S.equal
let records t = S.elements t

let entries t =
  S.elements t
  |> List.filter_map (function
       | Entry e -> Some e
       | Commit_record _ | Abort_record _ | Precommit _ | Preabort _ -> None)
  |> List.sort (fun e1 e2 -> Lamport.Timestamp.compare e1.ets e2.ets)

let commit_ts t action =
  S.fold
    (fun r acc ->
      match r with
      | Commit_record (a, ts) when Action.equal a action -> Some ts
      | Entry _ | Commit_record _ | Abort_record _ | Precommit _ | Preabort _ ->
        acc)
    t None

let is_aborted t action =
  S.exists
    (function
      | Abort_record a -> Action.equal a action
      | Entry _ | Commit_record _ | Precommit _ | Preabort _ -> false)
    t

let precommit_ts t action =
  S.fold
    (fun r acc ->
      match r with
      | Precommit (a, ts) when Action.equal a action -> Some ts
      | Entry _ | Commit_record _ | Abort_record _ | Precommit _ | Preabort _ ->
        acc)
    t None

let has_preabort t action =
  S.exists
    (function
      | Preabort a -> Action.equal a action
      | Entry _ | Commit_record _ | Abort_record _ | Precommit _ -> false)
    t

let size = S.cardinal

let gc t =
  S.filter
    (function
      | Entry e -> not (is_aborted t e.action)
      | Commit_record _ | Abort_record _ | Precommit _ | Preabort _ -> true)
    t

let is_committed t action = Option.is_some (commit_ts t action)

let stable t =
  (* Termination votes (Precommit/Preabort) are part of the stable
     projection: the quorum-intersection counting argument behind
     cooperative termination requires that a repository never forgets a
     vote, even across a crash with amnesia. *)
  S.filter
    (function
      | Entry e -> is_committed t e.action
      | Commit_record _ | Abort_record _ | Precommit _ | Preabort _ -> true)
    t

let pp ppf t =
  let pp_record ppf = function
    | Entry e ->
      Format.fprintf ppf "[%a %a %a #%d]" Lamport.Timestamp.pp e.ets Event.pp e.event
        Action.pp e.action e.seq
    | Commit_record (a, ts) ->
      Format.fprintf ppf "[commit %a@%a]" Action.pp a Lamport.Timestamp.pp ts
    | Abort_record a -> Format.fprintf ppf "[abort %a]" Action.pp a
    | Precommit (a, ts) ->
      Format.fprintf ppf "[precommit %a@%a]" Action.pp a Lamport.Timestamp.pp ts
    | Preabort a -> Format.fprintf ppf "[preabort %a]" Action.pp a
  in
  Format.pp_print_list ~pp_sep:Format.pp_print_space pp_record ppf (records t)
