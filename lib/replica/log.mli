(** Replicated object logs (paper, §3.2, Figure 3-1).

    A replicated object's state is represented as a log: a sequence of
    entries, each consisting of a timestamp, an event, and an action
    identifier. Log entries are partially replicated among repositories;
    front-ends reconstruct views by merging the logs of an initial quorum.

    Besides operation entries, logs carry status records (commit with its
    commit timestamp, abort) so that a view can classify entries. Merging
    is a set union keyed on identity; it is commutative, associative and
    idempotent, which the property tests check. *)

open Atomrep_history
open Atomrep_clock

type entry = {
  ets : Lamport.Timestamp.t; (** unique entry timestamp *)
  action : Action.t;
  begin_ts : Lamport.Timestamp.t; (** Begin timestamp of the action *)
  seq : int; (** operation index within the action *)
  event : Event.t;
}

type record =
  | Entry of entry
  | Commit_record of Action.t * Lamport.Timestamp.t
  | Abort_record of Action.t
  | Precommit of Action.t * Lamport.Timestamp.t
      (** Uncertified, sticky termination vote for commit at the given
          commit timestamp. Invisible to views (entries stay tentative);
          a repository holding one refuses to accept a [Preabort] for
          the same action. *)
  | Preabort of Action.t
      (** Uncertified, sticky termination vote for abort; a repository
          holding one refuses a [Precommit] for the same action. *)

type t

val empty : t
val add : t -> record -> t
val merge : t -> t -> t
val equal : t -> t -> bool
val records : t -> record list
val entries : t -> entry list
(** Operation entries sorted by entry timestamp. *)

val commit_ts : t -> Action.t -> Lamport.Timestamp.t option
val is_aborted : t -> Action.t -> bool

val precommit_ts : t -> Action.t -> Lamport.Timestamp.t option
(** The commit timestamp carried by a [Precommit] vote for the action,
    if this log holds one. *)

val has_preabort : t -> Action.t -> bool
val size : t -> int
val pp : Format.formatter -> t -> unit

val gc : t -> t
(** Garbage-collect aborted actions: drop their operation entries while
    keeping the abort records as tombstones — merging with a stale replica
    that still holds such an entry must not resurrect it as tentative. *)

val is_committed : t -> Action.t -> bool

val stable : t -> t
(** The stable-storage projection: entries of committed actions plus all
    commit and abort records and all termination votes (votes must
    survive crashes or the quorum-counting argument for cooperative
    termination breaks). Tentative (undecided) entries are the volatile
    part a crash-with-amnesia loses. *)
