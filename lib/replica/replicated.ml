open Atomrep_history
open Atomrep_spec
open Atomrep_clock
open Atomrep_quorum
open Atomrep_sim
open Atomrep_cc
open Atomrep_txn
module Trace = Atomrep_obs.Trace
module Wal = Atomrep_store.Wal

type scheme = Hybrid | Static | Locking

let scheme_name = function
  | Hybrid -> "hybrid"
  | Static -> "static"
  | Locking -> "locking"

let property_of_scheme = function
  | Hybrid -> Atomrep_atomicity.Atomicity.Hybrid
  | Static -> Atomrep_atomicity.Atomicity.Static
  | Locking -> Atomrep_atomicity.Atomicity.Dynamic

type op_result =
  | Done of Event.Response.t
  | Blocked_on of Action.t
  | Unavailable of string
  | Rejected of string

(* Gray-failure mitigation hooks, installed by the runtime when hedging or
   slow-site demotion is on. [g_route] picks each quorum round's primary
   destinations (a floor-respecting subset of the epoch members, steering
   away from slow-suspected sites) and the hedging policy whose spares are
   the members routed out; [g_early] turns on early-quorum gathers;
   [g_on_late] counts straggler replies for the dedup metrics. *)
type gray = {
  g_route : op:string -> floor:int -> members:int list -> int list * Rpc.hedge option;
  g_early : bool;
  g_on_late : (dst:int -> ok:bool -> unit) option;
}

type t = {
  name : string;
  spec : Serial_spec.t;
  scheme : scheme;
  table : Conflict_table.t;
  constraints : Op_constraint.t list;
  mutable current : Epoch.t; (* the configuration quorum traffic targets *)
  net : Network.t;
  repos : Repository.t array;
  own : (Action.t, Log.entry list) Hashtbl.t; (* per-action entry cache *)
  mutable observer : Behavioral.entry list; (* reversed *)
  rpc_timeout : float;
  mutable commit_piggyback : bool;
  mutable gray : gray option;
  recoveries : Repository.recovery list ref; (* reversed *)
}

let create ~name ~spec ~scheme ~relation ~assignment ~net ?members
    ?(durability = Repository.Volatile) ?(rpc_timeout = 50.0) () =
  let repos =
    Array.init (Network.n_sites net) (fun site ->
        Repository.create ~durability ~site ())
  in
  let recoveries = ref [] in
  (* Crash-with-amnesia loses a repository's volatile state; the rejoin
     protocol restores what reachable peers still hold before the site
     serves again (state transfer is modeled as instantaneous at
     recovery). *)
  Network.on_amnesia net (fun site -> Repository.amnesia repos.(site));
  Network.on_rejoin net (fun site ->
      (* A durable repository first replays its WAL: the flushed prefix
         (truncated at the first torn or corrupt record) comes back from
         local storage, and only the lost suffix needs the peers. The
         resync quorum gating this rejoin is what makes a detected-corrupt
         or truncated log safe to serve again. *)
      (match Repository.recover repos.(site) with
       | Some r ->
         recoveries := r :: !recoveries;
         let trc = Network.trace net in
         if Trace.enabled trc then
           ignore
             (Trace.emit trc ~site
                (Trace.Wal_replay
                   {
                     site;
                     replayed = r.Repository.r_replayed;
                     truncated = r.Repository.r_truncated;
                     corrupt = r.Repository.r_corrupt;
                   }))
       | None -> ());
      for peer = 0 to Network.n_sites net - 1 do
        if peer <> site && Network.reachable net site peer then
          Repository.ingest repos.(site) (Repository.read repos.(peer))
      done);
  (* Storage faults travel through the network (like amnesia) and land on
     the per-site WAL; volatile repositories have nothing to corrupt. *)
  Network.on_storage_fault net (fun site fault ->
      match Repository.store repos.(site) with
      | Some wal -> Wal.inject wal fault
      | None -> ());
  Array.iter
    (fun repo ->
      let site = Repository.site repo in
      Repository.set_storage_hook repo (fun sn ->
          let trc = Network.trace net in
          if Trace.enabled trc then
            ignore
              (Trace.emit trc ~site
                 (match sn with
                  | Repository.Flushed n -> Trace.Wal_flush { site; records = n }
                  | Repository.Flush_rejected -> Trace.Wal_full { site }
                  | Repository.Checkpointed { kept; dropped_segments } ->
                    Trace.Wal_checkpoint { site; kept; dropped_segments })));
      (* A newly installed commit/abort record resolves every tentative
         entry the repository holds for that action — the shed-safety
         monitor folds these to check shed transactions are cleanly
         aborted everywhere. *)
      Repository.set_resolve_hook repo (fun action ~committed ->
          let trc = Network.trace net in
          if Trace.enabled trc then
            ignore
              (Trace.emit trc ~site
                 (Trace.Repo_resolve { txn = Action.to_string action; committed }))))
    repos;
  (* The conflict table is where the schemes genuinely differ (paper, §5):
     hybrid and static lock on the dependency relation — Enq need not
     conflict with Enq because timestamp order resolves them — while a
     locking scheme serializes in commit order and so must conflict every
     non-commuting pair (the dynamic dependency relation, Theorem 10).
     Locking on the weaker dependency table admits concurrent Enqs whose
     commit order can contradict the timestamp order later Deqs answer
     from, which is exactly a dynamic-atomicity violation. *)
  let table =
    match scheme with
    | Hybrid | Static -> Conflict_table.of_relation relation
    | Locking ->
      Conflict_table.of_relation
        (Atomrep_core.Dynamic_dep.minimal spec ~max_len:4)
  in
  {
    name;
    spec;
    scheme;
    table;
    constraints = Op_constraint.of_relation relation;
    current = Epoch.bootstrap ~n_sites:(Network.n_sites net) ?members assignment;
    net;
    repos;
    own = Hashtbl.create 64;
    observer = [];
    rpc_timeout;
    commit_piggyback = true;
    gray = None;
    recoveries;
  }

let set_commit_piggyback t v = t.commit_piggyback <- v
let set_gray t g = t.gray <- g

let name t = t.name
let current_epoch t = t.current
let assignment t = Epoch.assignment t.current
let constraints t = t.constraints
let ops t = List.map fst (assignment t).Assignment.ops
let rpc_timeout t = t.rpc_timeout
let history t = List.rev t.observer
let observe t entry = t.observer <- entry :: t.observer

let max_final t =
  List.fold_left
    (fun acc (_, s) -> max acc s.Assignment.final)
    0 (assignment t).Assignment.ops

let own_entries t action =
  Option.value (Hashtbl.find_opt t.own action) ~default:[]

let run_state spec events =
  List.fold_left
    (fun state ev ->
      match state with
      | None -> None
      | Some s -> Serial_spec.apply_event spec s ev)
    (Some spec.Serial_spec.initial) events

(* Strip the caller's own entries out of a view: the front-end's per-action
   cache is authoritative for them (an initial quorum need not intersect
   the action's own final quorums). *)
let without_action (view : View.t) action =
  {
    View.committed =
      List.filter (fun (_, e) -> not (Action.equal e.Log.action action)) view.committed;
    tentative =
      List.filter (fun e -> not (Action.equal e.Log.action action)) view.tentative;
  }

let decide t ~(txn : Txn.t) (view : View.t) inv =
  let action = txn.action in
  let view = without_action view action in
  let own = own_entries t action in
  let own_events =
    List.sort (fun e1 e2 -> Int.compare e1.Log.seq e2.Log.seq) own
    |> List.map (fun e -> e.Log.event)
  in
  match t.scheme with
  | Hybrid | Locking ->
    (* Both lock-style schemes: block on related tentative entries, then
       choose a response against committed (commit-timestamp order) plus
       own events. They differ only in the conflict table installed. *)
    (match
       View.tentative_conflicting view ~me:action (fun e ->
           Conflict_table.related t.table inv e.Log.event)
     with
     | Some e -> Error (Blocked_on e.Log.action)
     | None ->
       (match run_state t.spec (View.committed_events view @ own_events) with
        | None -> Error (Rejected "view reconstruction failed")
        | Some state ->
          (match Serial_spec.responses t.spec state inv with
           | [] -> Error (Rejected "no legal response")
           | (res, _) :: _ -> Ok res)))
  | Static ->
    let my_bts = txn.begin_ts in
    (* Block on related tentative entries of earlier-timestamped actions. *)
    (match
       View.tentative_conflicting view ~me:action (fun e ->
           Lamport.Timestamp.compare e.Log.begin_ts my_bts < 0
           && Conflict_table.related t.table inv e.Log.event)
     with
     | Some e -> Error (Blocked_on e.Log.action)
     | None ->
       (* Response from committed entries strictly before my timestamp,
          plus my own events. *)
       let prefix_view =
         {
           View.committed =
             List.filter
               (fun (_, e) -> Lamport.Timestamp.compare e.Log.begin_ts my_bts < 0)
               view.View.committed;
           tentative = [];
         }
       in
       let prefix =
         View.static_timeline prefix_view ~insert:None ~include_tentative:false
         @ own_events
       in
       (match run_state t.spec prefix with
        | None -> Error (Rejected "inconsistent timeline")
        | Some state ->
          let candidates = Serial_spec.responses t.spec state inv in
          let seq = List.length own in
          (* Validate candidates against the full timeline (committed and
             tentative, own events included at my position). *)
          let own_keyed =
            List.map (fun e -> ((e.Log.begin_ts, e.Log.seq), e.Log.event)) own
          in
          let viable =
            List.find_opt
              (fun (res, _) ->
                let others =
                  List.map
                    (fun (e : Log.entry) -> ((e.begin_ts, e.seq), e.event))
                    (List.map snd view.View.committed @ view.View.tentative)
                in
                let timeline =
                  others @ own_keyed @ [ ((my_bts, seq), Event.make inv res) ]
                  |> List.sort (fun ((b1, s1), _) ((b2, s2), _) ->
                         let c = Lamport.Timestamp.compare b1 b2 in
                         if c <> 0 then c else Int.compare s1 s2)
                  |> List.map snd
                in
                Option.is_some (run_state t.spec timeline))
              candidates
          in
          (match viable with
           | None -> Error (Rejected "timestamp order violation")
           | Some (res, _) -> Ok res)))

type read_reply = Busy of Action.t | Logs of Log.t | Stale_epoch of int

let note t ~site ?cause kind =
  let trc = Network.trace t.net in
  if Trace.enabled trc then ignore (Trace.emit trc ~site ?cause kind)

let execute t ~txn ~clock ?(span = -1) inv ~k =
  (* Pin the configuration for the whole operation: a reconfiguration that
     lands mid-flight must not split one quorum access across two epochs.
     Stale-stamped traffic is refused by advanced repositories, so a pinned
     operation that straddles a switch fails cleanly and retries under the
     new epoch. *)
  let epoch = Epoch.number t.current in
  let members = Epoch.members t.current in
  let sizes = Assignment.sizes_of (Epoch.assignment t.current) inv.Event.Invocation.op in
  (* The quorum-choice floor: a round's primary destinations must keep at
     least max(initial, final) members so both phases can still assemble
     their quorums from primaries alone — demotion narrows the vote set, it
     never shrinks a quorum. *)
  let floor = max sizes.Assignment.initial sizes.Assignment.final in
  let dsts, hedge, early, on_late =
    match t.gray with
    | None -> (members, None, false, None)
    | Some g ->
      let dsts, hedge = g.g_route ~op:inv.Event.Invocation.op ~floor ~members in
      (dsts, hedge, g.g_early, g.g_on_late)
  in
  let src = txn.Txn.home_site in
  let action = txn.Txn.action in
  let seq = List.length (own_entries t action) in
  let trc = Network.trace t.net in
  let opname = inv.Event.Invocation.op in
  let txname = Action.to_string action in
  let ospan =
    if Trace.enabled trc then
      Trace.span_begin trc ~site:src ~parent:span ("op:" ^ opname)
    else -1
  in
  let k result =
    Trace.span_end trc ~site:src ~span:ospan
      ~outcome:
        (match result with
         | Done _ -> "done"
         | Blocked_on _ -> "blocked"
         | Unavailable _ -> "unavailable"
         | Rejected _ -> "rejected");
    k result
  in
  (* Back-off path: withdraw this operation's intentions so concurrent
     conflicting operations are not deadlocked by a blocked or failed
     attempt. Releases go to every member, not just the round's primaries:
     a hedged request may have planted an intention at a spare.

     A release must chase its intend, never race it: an early-quorum
     gather runs while laggards' view requests are still in flight, and
     simulated links reorder, so a release broadcast at gather time could
     land before the intend it withdraws — the intend would then install
     a lock nobody ever clears, wedging every later related operation.
     Sites whose view call has settled (replied or timed out) are released
     immediately; a site still in flight is owed its release and gets it
     the moment its call settles. Without early-quorum the gather only
     runs once every call has settled, so this is exactly the historical
     immediate broadcast. *)
  let view_in_flight = Array.make (Array.length t.repos) 0 in
  let release_owed = Array.make (Array.length t.repos) false in
  let release_site site =
    Network.send t.net ~src ~dst:site (fun () ->
        Repository.release t.repos.(site) action seq)
  in
  let view_issued ~dst = view_in_flight.(dst) <- view_in_flight.(dst) + 1 in
  let view_settled ~dst =
    (* A hedged site settles once per issued call — counter, not flag. *)
    view_in_flight.(dst) <- view_in_flight.(dst) - 1;
    if view_in_flight.(dst) = 0 && release_owed.(dst) then begin
      release_owed.(dst) <- false;
      release_site dst
    end
  in
  let release_and_return result =
    List.iter
      (fun site ->
        if view_in_flight.(site) > 0 then release_owed.(site) <- true
        else release_site site)
      members;
    k result
  in
  (* Early-quorum satisfaction for the view phase: fire the moment [floor]
     repositories granted (any two related operations' grant sets of that
     size meet at a repository whose sticky intention refuses the later
     arrival, so mutual exclusion is what it was under all-or-timeout), or
     the moment any repository answered Busy or Stale — both verdicts
     already doom the round, and aborting it early is conservative. *)
  let enough_view replies =
    let rec go grants = function
      | [] -> grants >= floor
      | (_, (Busy _ | Stale_epoch _)) :: _ -> true
      | (_, Logs _) :: rest -> go (grants + 1) rest
    in
    go 0 replies
  in
  let enough_view = if early then Some enough_view else None in
  let with_view k_view =
    if sizes.Assignment.initial = 0 then k_view Log.empty
    else
      Rpc.multicast ?enough:enough_view ?hedge ?on_late ~on_issue:view_issued
        ~on_settle:view_settled t.net ~src ~dsts ~timeout:t.rpc_timeout
        ~handler:(fun site ->
          let repo = t.repos.(site) in
          if epoch < Repository.epoch repo then Stale_epoch (Repository.epoch repo)
          else begin
            Repository.advance_epoch repo epoch;
            Lamport.witness clock (Repository.high_ts repo);
            (* The read doubles as lock acquisition: a foreign unresolved
               intention on a related operation refuses this read; quorum
               intersection makes any two related operations meet at some
               repository. *)
            let conflicting =
              List.find_opt
                (fun (i : Repository.intention) ->
                  (not (Action.equal i.i_action action))
                  && Conflict_table.related_ops t.table inv.Event.Invocation.op i.i_op)
                (Repository.intentions repo)
            in
            match conflicting with
            | Some i -> Busy i.i_action
            | None ->
              Repository.intend repo
                {
                  Repository.i_action = action;
                  i_op = inv.Event.Invocation.op;
                  i_bts = txn.Txn.begin_ts;
                  i_seq = seq;
                };
              Logs (Repository.read repo)
          end)
        ~gather:(fun replies ->
          let stale =
            List.find_map
              (fun (_, r) -> match r with Stale_epoch e -> Some e | _ -> None)
              replies
          in
          match stale with
          | Some e ->
            note t ~site:src (Trace.Epoch_fence { epoch = e; stale = epoch });
            release_and_return
              (Unavailable
                 (Printf.sprintf "stale epoch: %d superseded by %d" epoch e))
          | None ->
            (match
               List.find_map
                 (fun (_, r) -> match r with Busy b -> Some b | _ -> None)
                 replies
             with
             | Some blocker ->
               note t ~site:src
                 (Trace.Lock_wait
                    { txn = txname; blocker = Action.to_string blocker });
               release_and_return (Blocked_on blocker)
             | None ->
               let logs =
                 List.filter_map
                   (fun (_, r) -> match r with Logs l -> Some l | _ -> None)
                   replies
               in
               note t ~site:src
                 (Trace.Quorum_read
                    {
                      txn = txname;
                      op = opname;
                      got = List.length logs;
                      need = sizes.Assignment.initial;
                    });
               if List.length logs < sizes.Assignment.initial then
                 release_and_return
                   (Unavailable
                      (Printf.sprintf "initial quorum: %d of %d sites for %s"
                         (List.length logs) sizes.Assignment.initial
                         inv.Event.Invocation.op))
               else begin
                 let view = List.fold_left Log.merge Log.empty logs in
                 k_view view
               end))
  in
  with_view (fun log ->
      (* Merge log knowledge into the front-end clock so the new entry's
         timestamp exceeds everything in the view. *)
      List.iter
        (function
          | Log.Entry e -> Lamport.witness clock e.Log.ets
          | Log.Commit_record (_, ts) | Log.Precommit (_, ts) ->
            Lamport.witness clock ts
          | Log.Abort_record _ | Log.Preabort _ -> ())
        (Log.records log);
      let view = View.classify log in
      match decide t ~txn view inv with
      | Error result -> release_and_return result
      | Ok res ->
        note t ~site:src (Trace.Lock_grant { txn = txname; op = opname });
        let own = own_entries t action in
        let entry =
          {
            Log.ets = Lamport.tick clock;
            action;
            begin_ts = txn.Txn.begin_ts;
            seq;
            event = Event.make inv res;
          }
        in
        if sizes.Assignment.final = 0 then begin
          (* Nothing depends on this event: record locally only. *)
          Hashtbl.replace t.own action (own @ [ entry ]);
          observe t (Behavioral.Exec (entry.Log.event, action));
          release_and_return (Done res)
        end
        else begin
          (* Early-quorum satisfaction for the append phase: a final
             quorum of acks is all the round needs. *)
          let enough_append replies =
            List.length (List.filter snd replies) >= sizes.Assignment.final
          in
          let enough_append = if early then Some enough_append else None in
          Rpc.multicast ?enough:enough_append ?hedge ?on_late t.net ~src ~dsts
            ~timeout:t.rpc_timeout
            ~handler:(fun site ->
              let repo = t.repos.(site) in
              if epoch < Repository.epoch repo then false
              else begin
                Repository.advance_epoch repo epoch;
                (* Entry arrival converts this operation's intention into a
                   logged tentative entry at the repository. *)
                Repository.append repo [ Log.Entry entry ];
                note t ~site
                  (Trace.Repo_append
                     { txn = txname; op = opname; tentative = true });
                true
              end)
            ~gather:(fun replies ->
              let acks = List.filter snd replies in
              note t ~site:src
                (Trace.Quorum_append
                   {
                     txn = txname;
                     op = opname;
                     got = List.length acks;
                     need = sizes.Assignment.final;
                   });
              if List.length acks < sizes.Assignment.final then
                release_and_return
                  (Unavailable
                     (Printf.sprintf "final quorum: %d of %d sites for %s"
                        (List.length acks) sizes.Assignment.final
                        inv.Event.Invocation.op))
              else begin
                Hashtbl.replace t.own action (own @ [ entry ]);
                observe t (Behavioral.Exec (entry.Log.event, action));
                k (Done res)
              end)
        end)

let broadcast_status t record ~reachable_from =
  (* A commit record carries the action's own entries with it: commit is
     the moment entries become stable, so re-pushing them repairs any
     repository whose tentative copy was lost to a crash-with-amnesia
     (appends are idempotent — duplicates are harmless). *)
  let records =
    match record with
    | Log.Commit_record (action, _) when t.commit_piggyback ->
      List.map (fun e -> Log.Entry e) (own_entries t action) @ [ record ]
    | Log.Commit_record _ | Log.Entry _ | Log.Abort_record _ | Log.Precommit _
    | Log.Preabort _ ->
      [ record ]
  in
  (* Status records bypass the epoch check: a commit or abort resolves
     entries wherever they sit, and refusing one at a sealed repository
     would strand tentative entries there forever. *)
  List.iter
    (fun site ->
      Network.send t.net ~src:reachable_from ~dst:site (fun () ->
          Repository.append t.repos.(site) records;
          if Trace.enabled (Network.trace t.net) then
            List.iter
              (function
                | Log.Entry e ->
                  note t ~site
                    (Trace.Repo_append
                       {
                         txn = Action.to_string e.Log.action;
                         op = e.Log.event.Event.inv.Event.Invocation.op;
                         tentative = false;
                       })
                | Log.Commit_record _ | Log.Abort_record _ | Log.Precommit _
                | Log.Preabort _ ->
                  ())
              records))
    (Epoch.members t.current)

let prepared_sites t ~from ~timeout ~k =
  Rpc.multicast t.net ~src:from ~dsts:(Epoch.members t.current) ~timeout
    ~handler:(fun site -> ignore site)
    ~gather:(fun acks -> k (List.map fst acks))

(* Cooperative-termination quorum rounds. Votes and status polls bypass
   the epoch fence for the same reason broadcast_status does: they exist
   to resolve stuck state, and refusing them at a sealed repository would
   strand it. Safety rests on the sticky-vote rule at each repository
   plus the vote/veto thresholds intersecting, not on epoch pinning. *)

let quorum_n t = List.length (Epoch.members t.current)

(* Commit certification threshold f: a final quorum's worth of Precommit
   votes. Abort needs the co-quorum n - f + 1, so any commit vote set and
   any abort vote set share a repository, whose sticky first vote decides
   which side can possibly reach its threshold. *)
let vote_need t = max 1 (max_final t)
let veto_need t = quorum_n t - vote_need t + 1

let place_vote ?term t record ~from ~k =
  Rpc.multicast t.net ~src:from ~dsts:(Epoch.members t.current)
    ~timeout:t.rpc_timeout
    ~handler:(fun site -> Repository.offer ?term t.repos.(site) record)
    ~gather:(fun replies -> k (List.map snd replies))

(* Takeover lease sizing: the lease set must intersect every possible
   commit vote set (size [vote_need]) AND every abort vote set (size
   [veto_need]), so a stale driver meets the fence inside any quorum it
   could otherwise assemble. That takes n - vote_need + 1 = veto_need
   grants for the former and n - veto_need + 1 = vote_need for the
   latter — the max of the two thresholds. *)
let lease_need t = max (vote_need t) (veto_need t)

let takeover_acquire t action ~term ~holder ~from ~k =
  Rpc.multicast t.net ~src:from ~dsts:(Epoch.members t.current)
    ~timeout:t.rpc_timeout
    ~handler:(fun site -> Repository.grant_takeover t.repos.(site) action ~term ~holder)
    ~gather:(fun replies ->
      let granted, highest =
        List.fold_left
          (fun (g, h) (_, r) ->
            match r with
            | Takeover.Granted -> (g + 1, max h term)
            | Takeover.Fenced grant -> (g, max h grant.Takeover.g_term))
          (0, 0) replies
      in
      k ~granted ~highest)

let poll_status t action ~from ~k =
  Rpc.multicast t.net ~src:from ~dsts:(Epoch.members t.current)
    ~timeout:t.rpc_timeout
    ~handler:(fun site -> Repository.status_of t.repos.(site) action)
    ~gather:(fun replies -> k (List.map snd replies))

let repository_log t ~site = Repository.read t.repos.(site)
let repository t ~site = t.repos.(site)
let recoveries t = List.rev !(t.recoveries)

(* Summed WAL counters over the object's repositories; [None] when the
   object runs volatile. *)
let wal_totals t =
  let acc =
    {
      Wal.flushes = 0;
      flushed_records = 0;
      lost_flushes = 0;
      full_rejections = 0;
      torn_writes = 0;
      rotted = 0;
      checkpoints = 0;
    }
  in
  let any = ref false in
  Array.iter
    (fun repo ->
      match Repository.store repo with
      | None -> ()
      | Some wal ->
        any := true;
        let s = Wal.stats wal in
        acc.Wal.flushes <- acc.Wal.flushes + s.Wal.flushes;
        acc.Wal.flushed_records <- acc.Wal.flushed_records + s.Wal.flushed_records;
        acc.Wal.lost_flushes <- acc.Wal.lost_flushes + s.Wal.lost_flushes;
        acc.Wal.full_rejections <- acc.Wal.full_rejections + s.Wal.full_rejections;
        acc.Wal.torn_writes <- acc.Wal.torn_writes + s.Wal.torn_writes;
        acc.Wal.rotted <- acc.Wal.rotted + s.Wal.rotted;
        acc.Wal.checkpoints <- acc.Wal.checkpoints + s.Wal.checkpoints)
    t.repos;
  if !any then Some acc else None

(* The gossip process draws from its own stream so that enabling or
   disabling it never perturbs the workload's random choices — ablation
   runs stay comparable at equal seeds. *)
let start_anti_entropy t ~rng ~every =
  let engine = Network.engine t.net in
  let rec cycle () =
    Engine.schedule engine ~delay:every (fun () ->
        (* Gossip pairs are drawn from the current epoch's members: sealed
           ex-members no longer serve quorums, so spreading their logs is
           the barrier's job (once, at handoff), not gossip's. *)
        let sites = Array.of_list (Epoch.members t.current) in
        let n = Array.length sites in
        if n >= 2 then begin
          let ai = Atomrep_stats.Rng.int rng n in
          let bi = (ai + 1 + Atomrep_stats.Rng.int rng (n - 1)) mod n in
          let a = sites.(ai) and b = sites.(bi) in
          if Network.reachable t.net a b then begin
            let log_a = Repository.read t.repos.(a) in
            let log_b = Repository.read t.repos.(b) in
            Network.send t.net ~src:a ~dst:b (fun () ->
                Repository.ingest t.repos.(b) log_a);
            Network.send t.net ~src:b ~dst:a (fun () ->
                Repository.ingest t.repos.(a) log_b)
          end
        end;
        cycle ())
  in
  cycle ()

(* ------------------------------------------------------------------ *)
(* Online reconfiguration (paper, §4–5: hybrid and dynamic atomicity   *)
(* permit reassignment as timestamps advance; static does not).        *)

type reconfig_result =
  | Reconfigured of int
  | Refused of string
  | Failed of string

(* Acks needed to seal the old epoch: a set of n - f + 1 old members
   intersects every f-sized final quorum, so for each entry that reached a
   final quorum, at least one sealing site both holds it and was still up
   to ack — its log (read in the same handler that advances the epoch)
   carries the entry into the merge. Ops with f = 0 persist nothing. *)
let seal_need epoch =
  let n = List.length (Epoch.members epoch) in
  List.fold_left
    (fun acc (_, s) ->
      if s.Assignment.final > 0 then max acc (n - s.Assignment.final + 1)
      else acc)
    0 (Epoch.assignment epoch).Assignment.ops

(* Acks needed to install the merged state in the new epoch: a set of
   n - i + 1 new members intersects every i-sized initial quorum, so every
   future read meets at least one site that ingested the transferred log.
   Ops with i = 0 never read. *)
let transfer_need epoch =
  let n = List.length (Epoch.members epoch) in
  List.fold_left
    (fun acc (_, s) ->
      if s.Assignment.initial > 0 then max acc (n - s.Assignment.initial + 1)
      else acc)
    0 (Epoch.assignment epoch).Assignment.ops

let reconfigure t ~members ~assignment ?(allow_barrier = true)
    ?(unsafe_no_barrier = false) ~from k =
  match t.scheme with
  | Static ->
    (* Theorem 12's flip side: static atomicity orders actions by Begin
       timestamp, so an action must be able to read state written by
       later-started but earlier-committing actions — sound only if the
       quorums it will meet are known when the type is defined. *)
    k
      (Refused
         "static atomicity fixes quorum assignments when the type is \
          defined; reassignment requires hybrid or dynamic atomicity \
          (paper, §4-5)")
  | Hybrid | Locking ->
    let members = List.sort_uniq compare members in
    let n_net = Network.n_sites t.net in
    if members = [] || List.exists (fun s -> s < 0 || s >= n_net) members then
      k (Refused "invalid member set")
    else if assignment.Assignment.n_sites <> List.length members then
      k (Refused "assignment sized for a different member count")
    else if not (Assignment.satisfies assignment t.constraints) then
      k (Refused "assignment violates the type's intersection constraints")
    else begin
      let prev = t.current in
      let next =
        Epoch.make ~number:(Epoch.number prev + 1) ~members ~assignment
      in
      let number = Epoch.number next in
      if unsafe_no_barrier then begin
        (* Deliberately broken handoff for negative testing: no invariant
           check, no seal, no state transfer. If the member sets drift
           apart, committed state is left behind at ex-members and the
           atomicity oracles catch the divergence. *)
        t.current <- next;
        k (Reconfigured number)
      end
      else if Epoch.intersects ~constraints:t.constraints ~prev ~next then begin
        (* Direct handoff: cross-epoch intersection already guarantees new
           initial quorums meet old final quorums, so no drain is needed.
           Epoch advances are fire-and-forget — they only fence stale
           traffic faster; safety does not depend on their delivery. *)
        List.iter
          (fun site ->
            Network.send t.net ~src:from ~dst:site (fun () ->
                Repository.advance_epoch t.repos.(site) number))
          (List.sort_uniq compare (Epoch.members prev @ Epoch.members next));
        t.current <- next;
        note t ~site:from (Trace.Epoch_transfer { epoch = number });
        k (Reconfigured number)
      end
      else if not allow_barrier then
        k
          (Failed
             "epochs do not intersect and the state-transfer barrier is \
              disabled")
      else begin
        (* State-transfer barrier: seal the old epoch (advancing each old
           member fences its future old-epoch appends in the same handler
           that snapshots its log), merge the sealed logs, install the
           merge at enough new members, then switch. Either quorum failing
           aborts the handoff — the system stays in the old epoch, albeit
           with some members already sealed; the coordinator retries with
           the same epoch number, which sealed repositories accept. *)
        let sn = seal_need prev in
        note t ~site:from (Trace.Epoch_seal { epoch = number });
        let seal k_logs =
          if sn = 0 then k_logs []
          else
            Rpc.multicast t.net ~src:from ~dsts:(Epoch.members prev)
              ~timeout:t.rpc_timeout
              ~handler:(fun site ->
                let repo = t.repos.(site) in
                Repository.advance_epoch repo number;
                Repository.read repo)
              ~gather:(fun replies ->
                if List.length replies < sn then
                  k
                    (Failed
                       (Printf.sprintf "seal quorum: %d of %d old-epoch sites"
                          (List.length replies) sn))
                else k_logs (List.map snd replies))
        in
        seal (fun logs ->
            let merged = List.fold_left Log.merge Log.empty logs in
            let tn = transfer_need next in
            let transfer k_done =
              if tn = 0 then k_done ()
              else
                Rpc.multicast t.net ~src:from ~dsts:(Epoch.members next)
                  ~timeout:t.rpc_timeout
                  ~handler:(fun site ->
                    let repo = t.repos.(site) in
                    Repository.advance_epoch repo number;
                    Repository.ingest repo merged)
                  ~gather:(fun acks ->
                    if List.length acks < tn then
                      k
                        (Failed
                           (Printf.sprintf
                              "transfer quorum: %d of %d new-epoch sites"
                              (List.length acks) tn))
                    else k_done ())
            in
            transfer (fun () ->
                t.current <- next;
                note t ~site:from (Trace.Epoch_transfer { epoch = number });
                k (Reconfigured number)))
      end
    end
