open Atomrep_history
open Atomrep_spec
open Atomrep_clock
open Atomrep_quorum
open Atomrep_sim
open Atomrep_cc
open Atomrep_txn

type scheme = Hybrid | Static | Locking

let scheme_name = function
  | Hybrid -> "hybrid"
  | Static -> "static"
  | Locking -> "locking"

let property_of_scheme = function
  | Hybrid -> Atomrep_atomicity.Atomicity.Hybrid
  | Static -> Atomrep_atomicity.Atomicity.Static
  | Locking -> Atomrep_atomicity.Atomicity.Dynamic

type op_result =
  | Done of Event.Response.t
  | Blocked_on of Action.t
  | Unavailable of string
  | Rejected of string

type t = {
  name : string;
  spec : Serial_spec.t;
  scheme : scheme;
  table : Conflict_table.t;
  assignment : Assignment.t;
  net : Network.t;
  repos : Repository.t array;
  own : (Action.t, Log.entry list) Hashtbl.t; (* per-action entry cache *)
  mutable observer : Behavioral.entry list; (* reversed *)
  rpc_timeout : float;
}

let create ~name ~spec ~scheme ~relation ~assignment ~net ?(rpc_timeout = 50.0) () =
  let repos =
    Array.init (Network.n_sites net) (fun site -> Repository.create ~site)
  in
  (* Crash-with-amnesia loses a repository's volatile state; the rejoin
     protocol restores what reachable peers still hold before the site
     serves again (state transfer is modeled as instantaneous at
     recovery). *)
  Network.on_amnesia net (fun site -> Repository.amnesia repos.(site));
  Network.on_rejoin net (fun site ->
      for peer = 0 to Network.n_sites net - 1 do
        if peer <> site && Network.reachable net site peer then
          Repository.ingest repos.(site) (Repository.read repos.(peer))
      done);
  {
    name;
    spec;
    scheme;
    table = Conflict_table.of_relation relation;
    assignment;
    net;
    repos;
    own = Hashtbl.create 64;
    observer = [];
    rpc_timeout;
  }

let name t = t.name
let assignment t = t.assignment
let rpc_timeout t = t.rpc_timeout
let history t = List.rev t.observer
let observe t entry = t.observer <- entry :: t.observer

let max_final t =
  List.fold_left
    (fun acc (_, s) -> max acc s.Assignment.final)
    0 t.assignment.Assignment.ops

let own_entries t action =
  Option.value (Hashtbl.find_opt t.own action) ~default:[]

let run_state spec events =
  List.fold_left
    (fun state ev ->
      match state with
      | None -> None
      | Some s -> Serial_spec.apply_event spec s ev)
    (Some spec.Serial_spec.initial) events

(* Strip the caller's own entries out of a view: the front-end's per-action
   cache is authoritative for them (an initial quorum need not intersect
   the action's own final quorums). *)
let without_action (view : View.t) action =
  {
    View.committed =
      List.filter (fun (_, e) -> not (Action.equal e.Log.action action)) view.committed;
    tentative =
      List.filter (fun e -> not (Action.equal e.Log.action action)) view.tentative;
  }

let decide t ~(txn : Txn.t) (view : View.t) inv =
  let action = txn.action in
  let view = without_action view action in
  let own = own_entries t action in
  let own_events =
    List.sort (fun e1 e2 -> Int.compare e1.Log.seq e2.Log.seq) own
    |> List.map (fun e -> e.Log.event)
  in
  match t.scheme with
  | Hybrid | Locking ->
    (* Both lock-style schemes: block on related tentative entries, then
       choose a response against committed (commit-timestamp order) plus
       own events. They differ only in the conflict table installed. *)
    (match
       View.tentative_conflicting view ~me:action (fun e ->
           Conflict_table.related t.table inv e.Log.event)
     with
     | Some e -> Error (Blocked_on e.Log.action)
     | None ->
       (match run_state t.spec (View.committed_events view @ own_events) with
        | None -> Error (Rejected "view reconstruction failed")
        | Some state ->
          (match Serial_spec.responses t.spec state inv with
           | [] -> Error (Rejected "no legal response")
           | (res, _) :: _ -> Ok res)))
  | Static ->
    let my_bts = txn.begin_ts in
    (* Block on related tentative entries of earlier-timestamped actions. *)
    (match
       View.tentative_conflicting view ~me:action (fun e ->
           Lamport.Timestamp.compare e.Log.begin_ts my_bts < 0
           && Conflict_table.related t.table inv e.Log.event)
     with
     | Some e -> Error (Blocked_on e.Log.action)
     | None ->
       (* Response from committed entries strictly before my timestamp,
          plus my own events. *)
       let prefix_view =
         {
           View.committed =
             List.filter
               (fun (_, e) -> Lamport.Timestamp.compare e.Log.begin_ts my_bts < 0)
               view.View.committed;
           tentative = [];
         }
       in
       let prefix =
         View.static_timeline prefix_view ~insert:None ~include_tentative:false
         @ own_events
       in
       (match run_state t.spec prefix with
        | None -> Error (Rejected "inconsistent timeline")
        | Some state ->
          let candidates = Serial_spec.responses t.spec state inv in
          let seq = List.length own in
          (* Validate candidates against the full timeline (committed and
             tentative, own events included at my position). *)
          let own_keyed =
            List.map (fun e -> ((e.Log.begin_ts, e.Log.seq), e.Log.event)) own
          in
          let viable =
            List.find_opt
              (fun (res, _) ->
                let others =
                  List.map
                    (fun (e : Log.entry) -> ((e.begin_ts, e.seq), e.event))
                    (List.map snd view.View.committed @ view.View.tentative)
                in
                let timeline =
                  others @ own_keyed @ [ ((my_bts, seq), Event.make inv res) ]
                  |> List.sort (fun ((b1, s1), _) ((b2, s2), _) ->
                         let c = Lamport.Timestamp.compare b1 b2 in
                         if c <> 0 then c else Int.compare s1 s2)
                  |> List.map snd
                in
                Option.is_some (run_state t.spec timeline))
              candidates
          in
          (match viable with
           | None -> Error (Rejected "timestamp order violation")
           | Some (res, _) -> Ok res)))

let all_sites t = List.init (Network.n_sites t.net) Fun.id

type read_reply = Busy of Action.t | Logs of Log.t

let execute t ~txn ~clock inv ~k =
  let sizes = Assignment.sizes_of t.assignment inv.Event.Invocation.op in
  let src = txn.Txn.home_site in
  let action = txn.Txn.action in
  let seq = List.length (own_entries t action) in
  (* Back-off path: withdraw this operation's intentions so concurrent
     conflicting operations are not deadlocked by a blocked or failed
     attempt. *)
  let release_and_return result =
    List.iter
      (fun site ->
        Network.send t.net ~src ~dst:site (fun () ->
            Repository.release t.repos.(site) action seq))
      (all_sites t);
    k result
  in
  let with_view k_view =
    if sizes.Assignment.initial = 0 then k_view Log.empty
    else
      Rpc.multicast t.net ~src ~dsts:(all_sites t) ~timeout:t.rpc_timeout
        ~handler:(fun site ->
          let repo = t.repos.(site) in
          Lamport.witness clock (Repository.high_ts repo);
          (* The read doubles as lock acquisition: a foreign unresolved
             intention on a related operation refuses this read; quorum
             intersection makes any two related operations meet at some
             repository. *)
          let conflicting =
            List.find_opt
              (fun (i : Repository.intention) ->
                (not (Action.equal i.i_action action))
                && Conflict_table.related_ops t.table inv.Event.Invocation.op i.i_op)
              (Repository.intentions repo)
          in
          match conflicting with
          | Some i -> Busy i.i_action
          | None ->
            Repository.intend repo
              {
                Repository.i_action = action;
                i_op = inv.Event.Invocation.op;
                i_bts = txn.Txn.begin_ts;
                i_seq = seq;
              };
            Logs (Repository.read repo))
        ~gather:(fun replies ->
          match
            List.find_map
              (fun (_, r) -> match r with Busy b -> Some b | Logs _ -> None)
              replies
          with
          | Some blocker -> release_and_return (Blocked_on blocker)
          | None ->
            let logs =
              List.filter_map
                (fun (_, r) -> match r with Logs l -> Some l | Busy _ -> None)
                replies
            in
            if List.length logs < sizes.Assignment.initial then
              release_and_return
                (Unavailable
                   (Printf.sprintf "initial quorum: %d of %d sites for %s"
                      (List.length logs) sizes.Assignment.initial
                      inv.Event.Invocation.op))
            else begin
              let view = List.fold_left Log.merge Log.empty logs in
              k_view view
            end)
  in
  with_view (fun log ->
      (* Merge log knowledge into the front-end clock so the new entry's
         timestamp exceeds everything in the view. *)
      List.iter
        (function
          | Log.Entry e -> Lamport.witness clock e.Log.ets
          | Log.Commit_record (_, ts) -> Lamport.witness clock ts
          | Log.Abort_record _ -> ())
        (Log.records log);
      let view = View.classify log in
      match decide t ~txn view inv with
      | Error result -> release_and_return result
      | Ok res ->
        let own = own_entries t action in
        let entry =
          {
            Log.ets = Lamport.tick clock;
            action;
            begin_ts = txn.Txn.begin_ts;
            seq;
            event = Event.make inv res;
          }
        in
        if sizes.Assignment.final = 0 then begin
          (* Nothing depends on this event: record locally only. *)
          Hashtbl.replace t.own action (own @ [ entry ]);
          observe t (Behavioral.Exec (entry.Log.event, action));
          release_and_return (Done res)
        end
        else
          Rpc.multicast t.net ~src ~dsts:(all_sites t) ~timeout:t.rpc_timeout
            ~handler:(fun site ->
              (* Entry arrival converts this operation's intention into a
                 logged tentative entry at the repository. *)
              Repository.append t.repos.(site) [ Log.Entry entry ])
            ~gather:(fun acks ->
              if List.length acks < sizes.Assignment.final then
                release_and_return
                  (Unavailable
                     (Printf.sprintf "final quorum: %d of %d sites for %s"
                        (List.length acks) sizes.Assignment.final
                        inv.Event.Invocation.op))
              else begin
                Hashtbl.replace t.own action (own @ [ entry ]);
                observe t (Behavioral.Exec (entry.Log.event, action));
                k (Done res)
              end))

let broadcast_status t record ~reachable_from =
  (* A commit record carries the action's own entries with it: commit is
     the moment entries become stable, so re-pushing them repairs any
     repository whose tentative copy was lost to a crash-with-amnesia
     (appends are idempotent — duplicates are harmless). *)
  let records =
    match record with
    | Log.Commit_record (action, _) ->
      List.map (fun e -> Log.Entry e) (own_entries t action) @ [ record ]
    | Log.Entry _ | Log.Abort_record _ -> [ record ]
  in
  List.iter
    (fun site ->
      Network.send t.net ~src:reachable_from ~dst:site (fun () ->
          Repository.append t.repos.(site) records))
    (all_sites t)

let prepared_sites t ~from ~timeout ~k =
  Rpc.multicast t.net ~src:from ~dsts:(all_sites t) ~timeout
    ~handler:(fun site -> ignore site)
    ~gather:(fun acks -> k (List.map fst acks))

let repository_log t ~site = Repository.read t.repos.(site)

(* The gossip process draws from its own stream so that enabling or
   disabling it never perturbs the workload's random choices — ablation
   runs stay comparable at equal seeds. *)
let start_anti_entropy t ~rng ~every =
  let engine = Network.engine t.net in
  let n = Network.n_sites t.net in
  let rec cycle () =
    Engine.schedule engine ~delay:every (fun () ->
        if n >= 2 then begin
          let a = Atomrep_stats.Rng.int rng n in
          let b = (a + 1 + Atomrep_stats.Rng.int rng (n - 1)) mod n in
          if Network.reachable t.net a b then begin
            let log_a = Repository.read t.repos.(a) in
            let log_b = Repository.read t.repos.(b) in
            Network.send t.net ~src:a ~dst:b (fun () ->
                Repository.ingest t.repos.(b) log_a);
            Network.send t.net ~src:b ~dst:a (fun () ->
                Repository.ingest t.repos.(a) log_b)
          end
        end;
        cycle ())
  in
  cycle ()
