(** Quorum-consensus replicated typed objects (paper, §3.2).

    A client executes an operation by sending the invocation to a
    front-end. The front-end merges the logs from an initial quorum for the
    invocation to construct a view; if the view shows no synchronization
    conflict, it chooses a response legal for the view, appends a
    timestamped entry, and sends the update to a final quorum of
    repositories.

    The synchronization-conflict rule is the concurrency-control scheme:

    - [Hybrid]: committed entries are serialized by commit timestamp;
      tentative entries of other actions whose operations are related to
      the invocation under the object's dependency relation block it.
    - [Locking]: the same structure with non-commutativity conflicts
      (type-specific two-phase locking; strong dynamic atomicity).
    - [Static]: entries are serialized by Begin timestamp; responses are
      computed at the invoking action's position and rejected if the
      insertion invalidates later-timestamped entries (multiversion
      timestamp ordering; static atomicity).

    Front-ends are co-located with client sites (the paper places one at
    each client's site: object availability is dominated by repository
    availability). Each executed operation writes its tentative entry to a
    final quorum before responding, which is what makes conflicts visible
    to later initial quorums. *)

open Atomrep_history
open Atomrep_spec
open Atomrep_core
open Atomrep_clock
open Atomrep_quorum
open Atomrep_sim
open Atomrep_txn

type scheme = Hybrid | Static | Locking

val scheme_name : scheme -> string

val property_of_scheme : scheme -> Atomrep_atomicity.Atomicity.property
(** The local atomicity property each scheme guarantees. *)

type op_result =
  | Done of Event.Response.t
  | Blocked_on of Action.t (** conflicting uncommitted action *)
  | Unavailable of string (** no initial or final quorum reachable *)
  | Rejected of string (** scheme validation failed: abort the action *)

type t

val create :
  name:string ->
  spec:Serial_spec.t ->
  scheme:scheme ->
  relation:Relation.t ->
  assignment:Assignment.t ->
  net:Network.t ->
  ?members:int list ->
  ?durability:Repository.durability ->
  ?rpc_timeout:float ->
  unit ->
  t
(** [rpc_timeout] bounds every quorum RPC issued on the object's behalf
    (default 50). [members] (default: all sites) are epoch 0's repository
    sites; [assignment] must be sized for exactly that member count.
    [durability] (default [Volatile]) selects the repositories' stable
    storage model — see {!Repository.durability}. Creation also registers
    the object's repositories with the network's crash-with-amnesia,
    rejoin-resync, and storage-fault hooks; durable repositories replay
    their WAL ({!Repository.recover}) before the peer resync runs. *)

val name : t -> string

val current_epoch : t -> Epoch.t
(** The configuration new operations target. Operations pin the epoch at
    their start; a reconfiguration landing mid-operation makes the pinned
    epoch stale, the repositories refuse its traffic, and the operation
    fails over to a retry under the new epoch. *)

val constraints : t -> Op_constraint.t list
(** The intersection constraints projected from the object's dependency
    relation — what any epoch's assignment must satisfy. *)

val ops : t -> string list
(** Operation names of the object's type (from the current assignment). *)

val assignment : t -> Assignment.t
(** The current epoch's assignment. *)

val rpc_timeout : t -> float
(** The configured per-RPC timeout, shared by reads, writes, and the commit
    protocol's prepare probes. *)

val execute :
  t ->
  txn:Txn.t ->
  clock:Lamport.t ->
  ?span:int ->
  Event.Invocation.t ->
  k:(op_result -> unit) ->
  unit
(** Run the §3.2 front-end protocol from the transaction's home site:
    gather an initial quorum (with RPC timeouts), classify the view, apply
    the scheme rule, and on success write the entry to a final quorum.
    [k] receives the outcome; [Done] responses have already reached their
    final quorum. [span] (a trace span id from the network's attached bus,
    negative = none) becomes the parent of the per-operation span. *)

val broadcast_status : t -> Log.record -> reachable_from:int -> unit
(** Push a commit/abort record to every repository reachable from the given
    site — commit-protocol phase 2 and abort/status propagation. Commit
    records carry the action's own entries with them (idempotent re-push
    that repairs repositories whose tentative copies were lost to
    crash-with-amnesia) unless {!set_commit_piggyback} turned that off. *)

val set_commit_piggyback : t -> bool -> unit
(** Negative testing only: [false] stops commit records from re-pushing
    their action's entries — half of the pre-fix amnesia behavior the
    postmortem tests replay (the other half is ungated rejoin). Default
    [true]. *)

type gray = {
  g_route : op:string -> floor:int -> members:int list -> int list * Rpc.hedge option;
      (** pick a quorum round's primary destinations from [members] — the
          returned list must keep at least [floor] sites (the round's
          max(initial, final)) or routing falls back to the full
          membership — plus the hedging policy whose spares are the
          members routed out *)
  g_early : bool;  (** fire gathers on a satisfying early vote set *)
  g_on_late : (dst:int -> ok:bool -> unit) option;
      (** observe straggler replies arriving after their gather fired *)
}
(** Gray-failure mitigation hooks (see {!set_gray}). *)

val set_gray : t -> gray option -> unit
(** Install (or clear) the gray-failure mitigation hooks. With [None] (the
    default) every quorum round targets all epoch members and gathers
    all-or-timeout, bit-identical to the historical runtime. Safety under
    the hooks is quorum-choice freedom, not protocol change: primaries
    always number at least the round's quorum floor, intentions planted at
    hedged spares are withdrawn by the release path (which always targets
    the full membership) or resolved by terminal records, and repository
    handlers are idempotent under first-reply-wins hedging. *)

val prepared_sites : t -> from:int -> timeout:float -> k:(int list -> unit) -> unit
(** Which repository sites answer a prepare probe from [from] —
    commit-protocol phase 1 uses this to check final-quorum reachability. *)

val history : t -> Behavioral.t
(** The object's global behavioral history as recorded by an omniscient
    observer (operation executions in response order, plus Begin / Commit /
    Abort entries supplied by the runtime). *)

val observe : t -> Behavioral.entry -> unit
(** Used by the runtime to record Begin/Commit/Abort entries. *)

val max_final : t -> int
(** Largest final-quorum size over the object's operations — the number of
    acknowledgements the commit protocol requires. *)

val quorum_n : t -> int
(** Member count of the current epoch. *)

val vote_need : t -> int
(** Precommit votes required to certify a commit decision for this object:
    a final quorum's worth ([max 1 (max_final t)]). *)

val veto_need : t -> int
(** Preabort votes required to certify an abort decision:
    [quorum_n - vote_need + 1]. Any commit vote set and any abort vote set
    then intersect at some repository, whose sticky first vote makes at
    most one side able to reach its threshold — the quorum-intersection
    argument of Theorems 4/10 applied to termination. *)

val place_vote :
  ?term:int ->
  t ->
  Log.record ->
  from:int ->
  k:(Repository.status_evidence list -> unit) ->
  unit
(** Offer a record (normally a termination vote) to every current member
    and gather each reachable repository's resulting evidence for the
    record's action ({!Repository.offer}). Votes bypass the epoch fence,
    like {!broadcast_status}: they resolve stuck state, and safety rests
    on vote stickiness plus threshold intersection, not epoch pinning.
    [term], when given, stamps the votes with the driver's takeover term:
    repositories holding a newer lease grant answer [E_fenced] instead of
    recording the vote, halting a stale driver (a returning original
    coordinator drives at the implicit term [0]). *)

val lease_need : t -> int
(** Takeover lease grants required before adopting this object's in-doubt
    transactions: [max vote_need veto_need], so the lease set intersects
    every possible commit vote set AND every abort vote set — a fenced
    driver can assemble neither threshold past the fence. *)

val takeover_acquire :
  t ->
  Atomrep_history.Action.t ->
  term:int ->
  holder:int ->
  from:int ->
  k:(granted:int -> highest:int -> unit) ->
  unit
(** One takeover lease round: propose [term] for [holder] at every current
    member ({!Repository.grant_takeover}) and gather [granted] (how many
    repositories granted it) and [highest] (the highest term any reachable
    repository has granted — what an out-bid contender must exceed on its
    next attempt). The lease is held iff [granted >= lease_need]. *)

val poll_status :
  t ->
  Atomrep_history.Action.t ->
  from:int ->
  k:(Repository.status_evidence list -> unit) ->
  unit
(** Read-only status poll: each reachable repository's strongest evidence
    about the action ({!Repository.status_of}). *)

val start_anti_entropy : t -> rng:Atomrep_stats.Rng.t -> every:float -> unit
(** Start a background gossip process: at the given period, a random pair
    of mutually reachable repositories exchanges logs (both directions)
    and garbage-collects aborted entries. Quorum intersection makes this
    unnecessary for safety; it shortens the window in which commit/abort
    records are missing at some sites (e.g. after recovery or lost
    broadcasts), reducing conflict blocking. *)

val repository_log : t -> site:int -> Log.t
(** Direct (test-only) access to one repository's log. *)

val repository : t -> site:int -> Repository.t
(** Direct (test-only) access to one repository — checkpoint forcing and
    WAL fault injection in the storage tests. *)

val recoveries : t -> Repository.recovery list
(** Every WAL recovery the object's repositories performed (rejoin order).
    Empty when running volatile. *)

val wal_totals : t -> Atomrep_store.Wal.stats option
(** WAL counters summed over the object's repositories; [None] when the
    object runs volatile. *)

type reconfig_result =
  | Reconfigured of int (** new epoch number now in force *)
  | Refused of string
      (** never permitted: static scheme, or an invalid/unsatisfying plan *)
  | Failed of string
      (** this attempt could not complete (quorum unreachable); the old
          epoch stays in force and the coordinator may retry *)

val reconfigure :
  t ->
  members:int list ->
  assignment:Assignment.t ->
  ?allow_barrier:bool ->
  ?unsafe_no_barrier:bool ->
  from:int ->
  (reconfig_result -> unit) ->
  unit
(** [reconfigure t ~members ~assignment ~from k] hands the object off to a
    new epoch with the given member set and
    assignment, coordinated from site [from].

    Refused outright under [Static] — the paper's restriction that static
    atomicity fixes quorums when the type is defined, while hybrid and
    dynamic atomicity may reassign them as timestamps advance (§4–5,
    Theorems 10–12). Under [Hybrid]/[Locking], the plan is validated
    ([assignment] sized for [members] and satisfying the type's
    constraints), then one of two safe handoffs runs:

    - if {!Epoch.intersects} holds, the switch is immediate — new initial
      quorums already meet old final quorums;
    - otherwise (requires [allow_barrier], default true) a state-transfer
      barrier drains the old epoch: every old member that acks the seal
      atomically joins the new epoch (fencing its future old-epoch
      appends) and returns its log; [n_old - f + 1] acks guarantee the
      merged log holds every entry any old final quorum accepted; the
      merge is installed at [n_new - i + 1] new members so every future
      initial quorum meets it.

    [unsafe_no_barrier] skips both the invariant and the barrier — a
    deliberately broken handoff kept for negative testing, so chaos
    campaigns can demonstrate the oracles catching the resulting
    atomicity violations. *)
