open Atomrep_history
open Atomrep_clock

type intention = {
  i_action : Action.t;
  i_op : string;
  i_bts : Lamport.Timestamp.t;
  i_seq : int;
}

type t = {
  site : int;
  mutable log : Log.t;
  mutable high : Lamport.Timestamp.t;
  mutable locks : intention list;
  mutable epoch : int;
}

let create ~site =
  {
    site;
    log = Log.empty;
    high = Lamport.Timestamp.zero;
    locks = [];
    epoch = 0;
  }

let site t = t.site
let read t = t.log

let witness t ts = if Lamport.Timestamp.compare ts t.high > 0 then t.high <- ts

let drop_intention t action seq =
  t.locks <-
    List.filter
      (fun i -> not (Action.equal i.i_action action && i.i_seq = seq))
      t.locks

let drop_action t action =
  t.locks <- List.filter (fun i -> not (Action.equal i.i_action action)) t.locks

let append t records =
  List.iter
    (fun r ->
      (match r with
       | Log.Entry e ->
         witness t e.Log.ets;
         drop_intention t e.Log.action e.Log.seq
       | Log.Commit_record (a, ts) ->
         witness t ts;
         drop_action t a
       | Log.Abort_record a -> drop_action t a);
      t.log <- Log.add t.log r)
    records

let high_ts t = t.high

let gc t = t.log <- Log.gc t.log

let ingest t peer_log =
  append t (Log.records peer_log);
  gc t

let amnesia t =
  (* Epoch membership is stable state: forgetting it would let a recovered
     site accept quorum traffic from a configuration it already left. *)
  t.locks <- [];
  t.log <- Log.stable t.log

let epoch t = t.epoch
let advance_epoch t e = if e > t.epoch then t.epoch <- e

let intentions t = t.locks

let intend t i =
  drop_intention t i.i_action i.i_seq;
  t.locks <- i :: t.locks

let release t action seq = drop_intention t action seq
