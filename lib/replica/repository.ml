open Atomrep_history
open Atomrep_clock
module Wal = Atomrep_store.Wal
module Takeover = Atomrep_txn.Takeover

type intention = {
  i_action : Action.t;
  i_op : string;
  i_bts : Lamport.Timestamp.t;
  i_seq : int;
}

type payload =
  | P_record of Log.record
  | P_epoch of int
  | P_high of Lamport.Timestamp.t

type durability =
  | Volatile
  | Durable of { group_commit : bool; segment_records : int; checkpoint_every : int }

let durable ?(group_commit = false) ?(segment_records = 32) ?(checkpoint_every = 64)
    () =
  Durable { group_commit; segment_records; checkpoint_every }

type storage_note =
  | Flushed of int
  | Flush_rejected
  | Checkpointed of { kept : int; dropped_segments : int }

type t = {
  site : int;
  mutable log : Log.t;
  mutable high : Lamport.Timestamp.t;
  mutable locks : intention list;
  mutable epoch : int;
  store : payload Wal.t option;
  group_commit : bool;
  checkpoint_every : int;
  mutable on_storage : storage_note -> unit;
  mutable on_resolve : Action.t -> committed:bool -> unit;
  takeover : Takeover.t;
}

type recovery = {
  r_site : int;
  r_replayed : int;
  r_truncated : int;
  r_corrupt : bool;
  r_segments : int;
  r_cost_ms : float;
}

let create ?(durability = Volatile) ~site () =
  let store, group_commit, checkpoint_every =
    match durability with
    | Volatile -> (None, false, max_int)
    | Durable { group_commit; segment_records; checkpoint_every } ->
      (Some (Wal.create ~segment_records ()), group_commit, checkpoint_every)
  in
  {
    site;
    log = Log.empty;
    high = Lamport.Timestamp.zero;
    locks = [];
    epoch = 0;
    store;
    group_commit;
    checkpoint_every;
    on_storage = (fun _ -> ());
    on_resolve = (fun _ ~committed:_ -> ());
    takeover = Takeover.create ();
  }

let site t = t.site
let read t = t.log
let store t = t.store
let set_storage_hook t f = t.on_storage <- f
let set_resolve_hook t f = t.on_resolve <- f

let ts_max a b = if Lamport.Timestamp.compare a b >= 0 then a else b

(* The largest timestamp the log itself witnesses — what a recovering site
   can honestly claim to have seen. *)
let high_of_log log =
  List.fold_left
    (fun acc r ->
      match r with
      | Log.Entry e -> ts_max acc e.Log.ets
      | Log.Commit_record (_, ts) | Log.Precommit (_, ts) -> ts_max acc ts
      | Log.Abort_record _ | Log.Preabort _ -> acc)
    Lamport.Timestamp.zero (Log.records log)

let witness t ts = if Lamport.Timestamp.compare ts t.high > 0 then t.high <- ts

let drop_intention t action seq =
  t.locks <-
    List.filter
      (fun i -> not (Action.equal i.i_action action && i.i_seq = seq))
      t.locks

let drop_action t action =
  t.locks <- List.filter (fun i -> not (Action.equal i.i_action action)) t.locks

(* The checkpoint snapshot is the gc'd log — aborted entries dropped but
   their abort tombstones kept, so compaction can never resurrect a dead
   entry at a stale peer — plus the epoch register and the high watermark
   (gc may drop the entry that carried the maximum timestamp, and a
   compacted recovery must witness no less than an uncompacted one). *)
let snapshot_payloads t =
  List.map (fun r -> P_record r) (Log.records (Log.gc t.log))
  @ [ P_epoch t.epoch; P_high t.high ]

let checkpoint t =
  match t.store with
  | None -> ()
  | Some wal ->
    let snapshot = snapshot_payloads t in
    (match Wal.checkpoint wal snapshot with
     | Ok dropped ->
       t.on_storage
         (Checkpointed { kept = List.length snapshot; dropped_segments = dropped })
     | Error `Disk_full -> t.on_storage Flush_rejected)

(* A full disk does not stop the repository: it keeps serving from memory
   with durable state lagging — anything a later crash loses is restored by
   the quorum-gated resync, exactly like amnesia. *)
let flush_now t wal =
  match Atomrep_obs.Profile.record ~subsystem:"wal" "flush" (fun () -> Wal.flush wal) with
  | Ok 0 -> ()
  | Ok n ->
    t.on_storage (Flushed n);
    if Wal.records_since_checkpoint wal >= t.checkpoint_every then checkpoint t
  | Error `Disk_full -> t.on_storage Flush_rejected

(* First decision wins: a repository's termination vote is sticky. Once it
   holds a Preabort (or a certified abort) for an action it refuses the
   Precommit, and vice versa — this per-site mutual exclusion is what makes
   the vote-quorum counting argument sound. Certified records are always
   accepted. Duplicate Precommits must agree on the commit timestamp. *)
let accepts t r =
  match r with
  | Log.Precommit (a, ts) -> (
    match Log.precommit_ts t.log a with
    | Some ts' -> Lamport.Timestamp.compare ts ts' = 0
    | None -> not (Log.has_preabort t.log a || Log.is_aborted t.log a))
  | Log.Preabort a ->
    not (Option.is_some (Log.precommit_ts t.log a) || Log.is_committed t.log a)
  | Log.Entry _ | Log.Commit_record _ | Log.Abort_record _ -> true

let append t records =
  (* Resolutions newly installed by this append, fired after the whole
     batch lands so the hook observes the post-append log. Every delivery
     path funnels through here — status broadcasts, anti-entropy gossip
     ({!ingest}), and termination vote offers — so one hook suffices to
     witness "this repository resolved that transaction". *)
  let resolved = ref [] in
  let accepted =
    List.filter
      (fun r ->
        let ok = accepts t r in
        if ok then begin
          (match r with
           | Log.Entry e ->
             witness t e.Log.ets;
             drop_intention t e.Log.action e.Log.seq
           | Log.Commit_record (a, ts) ->
             witness t ts;
             if not (Log.is_committed t.log a) then
               resolved := (a, true) :: !resolved;
             drop_action t a
           | Log.Abort_record a ->
             if not (Log.is_aborted t.log a) then
               resolved := (a, false) :: !resolved;
             drop_action t a
           | Log.Precommit (_, ts) -> witness t ts
           | Log.Preabort _ -> ());
          t.log <- Log.add t.log r
        end;
        ok)
      records
  in
  List.iter (fun (a, committed) -> t.on_resolve a ~committed) (List.rev !resolved);
  match t.store with
  | None -> ()
  | Some wal ->
    List.iter (fun r -> Wal.append wal (P_record r)) accepted;
    (* Group commit defers the barrier until a batch carries a decision:
       tentative entries ride in the buffer and are fsynced together with
       the commit/abort that resolves them. Termination votes count as
       decisions — a vote that is not durable could be forgotten and
       re-cast the other way, breaking the sticky-vote invariant. *)
    let has_status =
      List.exists
        (function
          | Log.Commit_record _ | Log.Abort_record _ | Log.Precommit _
          | Log.Preabort _ ->
            true
          | Log.Entry _ -> false)
        accepted
    in
    if (not t.group_commit) || has_status then flush_now t wal

let high_ts t = t.high

let gc t = t.log <- Log.gc t.log

let ingest t peer_log =
  append t (Log.records peer_log);
  gc t

let amnesia t =
  (* Epoch membership is stable state: forgetting it would let a recovered
     site accept quorum traffic from a configuration it already left.
     Takeover grants by contrast are deliberately volatile: forgetting a
     lease only widens who may drive — never what can be decided, which
     rests on the sticky votes below. *)
  t.locks <- [];
  Takeover.forget t.takeover;
  match t.store with
  | None ->
    t.log <- Log.stable t.log;
    (* The high watermark is volatile — it dies with the crash. Recompute
       it from what stable storage holds: keeping the in-memory value
       would over-witness timestamps the site never durably saw. *)
    t.high <- high_of_log t.log
  | Some wal ->
    (* With a WAL, *everything* in memory is volatile; the durable prefix
       comes back via {!recover} at rejoin. *)
    Wal.crash wal;
    t.log <- Log.empty;
    t.high <- Lamport.Timestamp.zero

let recover t =
  match t.store with
  | None -> None
  | Some wal ->
    let r = Wal.recover wal in
    let log, high, epoch =
      List.fold_left
        (fun (log, high, epoch) p ->
          match p with
          | P_record rc -> (Log.add log rc, high, epoch)
          | P_epoch e -> (log, high, max epoch e)
          | P_high ts -> (log, ts_max high ts, epoch))
        (Log.empty, Lamport.Timestamp.zero, t.epoch)
        (r.Wal.snapshot @ r.Wal.tail)
    in
    t.log <- log;
    t.high <- ts_max high (high_of_log log);
    t.epoch <- epoch;
    t.locks <- [];
    Takeover.forget t.takeover;
    Some
      {
        r_site = t.site;
        r_replayed = r.Wal.replayed;
        r_truncated = r.Wal.truncated;
        r_corrupt = r.Wal.corrupt;
        r_segments = r.Wal.segments_scanned;
        r_cost_ms = Wal.recovery_cost_ms r;
      }

let epoch t = t.epoch

let advance_epoch t e =
  if e > t.epoch then begin
    t.epoch <- e;
    match t.store with
    | None -> ()
    | Some wal ->
      (* Epoch fencing must be durable regardless of group commit: a site
         that durably left an epoch may never un-leave it by crashing. *)
      Wal.append wal (P_epoch e);
      flush_now t wal
  end

let intentions t = t.locks

let intend t i =
  drop_intention t i.i_action i.i_seq;
  t.locks <- i :: t.locks

let release t action seq = drop_intention t action seq

type status_evidence =
  | E_committed of Lamport.Timestamp.t
  | E_aborted
  | E_precommit of Lamport.Timestamp.t
  | E_preabort
  | E_none
  | E_fenced of int

let status_of t action =
  match Log.commit_ts t.log action with
  | Some ts -> E_committed ts
  | None ->
    if Log.is_aborted t.log action then E_aborted
    else (
      match Log.precommit_ts t.log action with
      | Some ts -> E_precommit ts
      | None -> if Log.has_preabort t.log action then E_preabort else E_none)

let offer ?term t record =
  let action =
    match record with
    | Log.Entry e -> e.Log.action
    | Log.Commit_record (a, _)
    | Log.Abort_record a
    | Log.Precommit (a, _)
    | Log.Preabort a ->
      a
  in
  (* The takeover fence guards only the vote records, and only when the
     driver identifies itself with a term. Certified commit/abort records
     are ALWAYS accepted — refusing one could strand resolved state, and
     agreement never rested on the fence (it rests on vote stickiness):
     the fence exists so a stale driver halts instead of racing the
     current lease holder through a whole vote round. *)
  let fenced =
    match (record, term) with
    | (Log.Precommit _ | Log.Preabort _), Some tm ->
      Takeover.fences t.takeover action ~term:tm
    | _, _ -> None
  in
  match fenced with
  | Some granted -> E_fenced granted
  | None ->
    append t [ record ];
    status_of t action

let takeover_term t action = Takeover.term_of t.takeover action

let grant_takeover t action ~term ~holder =
  Takeover.grant t.takeover action ~term ~holder
