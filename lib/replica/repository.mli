(** Repositories: long-term storage for a replicated object's log at one
    site (paper, §3.2).

    Repositories survive crashes — the log is stable storage; a crashed
    site simply stops answering until it recovers. Message-level behavior
    (latency, loss, partitions) is the network's concern. *)

open Atomrep_history
open Atomrep_clock

type t

type intention = {
  i_action : Action.t;
  i_op : string;
  i_bts : Lamport.Timestamp.t;
  i_seq : int;
}
(** A lock registered by a front-end's initial-quorum read on behalf of an
    operation about to execute. Quorum intersection guarantees that two
    conflicting operations meet at some repository, where the later one is
    refused — this closes the read/write race between concurrent
    front-ends. An intention is cleared by the arrival of its own entry, by
    its action's commit or abort record, or by an explicit release when the
    front-end backs off. *)

val create : site:int -> t
val site : t -> int
val read : t -> Log.t
val append : t -> Log.record list -> unit

val ingest : t -> Log.t -> unit
(** Merge a peer repository's log (anti-entropy): every incoming record is
    appended (clearing any intention it resolves) and aborted actions'
    entries are garbage-collected. *)

val gc : t -> unit
(** Garbage-collect aborted entries ({!Log.gc}). *)

val amnesia : t -> unit
(** Crash-with-amnesia: drop the volatile state — the lock table and every
    tentative (undecided) log entry — keeping the stable projection
    ({!Log.stable}): committed entries and commit/abort records. Models a
    repository whose log forces to stable storage only at commit. *)

val intentions : t -> intention list
(** Unresolved intentions held at this repository. *)

val intend : t -> intention -> unit
(** Register (or refresh) an intention, keyed by (action, seq). *)

val release : t -> Action.t -> int -> unit
(** Drop one intention (back-off path). *)

val epoch : t -> int
(** The newest epoch this repository has joined (0 at creation). Stored on
    stable storage: it survives crash-with-amnesia, because a site that
    forgot it had left an epoch would accept that epoch's stale quorum
    traffic after recovery. *)

val advance_epoch : t -> int -> unit
(** Monotone: join the given epoch if it is newer, ignore otherwise.
    Front-ends stamp quorum reads and appends with their epoch number;
    {!Atomrep_replica.Replicated} refuses any stamped below {!epoch} and
    advances the repository on anything newer (epochs are learned from
    traffic as well as from the reconfiguration coordinator's seal and
    state-transfer messages). *)

val witness : t -> Lamport.Timestamp.t -> unit
(** Repositories participate in Lamport-clock gossip: they remember the
    largest entry timestamp seen, which front-ends merge back. *)

val high_ts : t -> Lamport.Timestamp.t
