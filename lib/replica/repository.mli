(** Repositories: long-term storage for a replicated object's log at one
    site (paper, §3.2).

    Repositories survive crashes — the log is stable storage; a crashed
    site simply stops answering until it recovers. Message-level behavior
    (latency, loss, partitions) is the network's concern.

    Stable storage comes in two fidelities. [Volatile] is the original
    model: crash-with-amnesia keeps the {!Atomrep_history.Log.stable}
    projection by fiat. [Durable] backs the repository with a simulated
    write-ahead log ({!Atomrep_store.Wal}): every appended record is
    buffered and made durable by flush barriers, a crash loses the
    unflushed suffix, and {!recover} replays the checksummed durable
    prefix — so what survives a crash is exactly what was flushed, not
    what a projection says should have survived. Intentions (the lock
    table) are volatile by design in both modes. *)

open Atomrep_history
open Atomrep_clock

type t

type payload =
  | P_record of Log.record
  | P_epoch of int
  | P_high of Lamport.Timestamp.t
      (** What a durable repository writes to its WAL: log records as they
          are appended, epoch joins (always flushed — fencing must hold
          across crashes), and, inside checkpoint snapshots only, the high
          watermark (garbage collection may have dropped the entry carrying
          the maximum timestamp). *)

type durability =
  | Volatile
      (** the original model: no WAL; crash-with-amnesia keeps
          [Log.stable] by fiat *)
  | Durable of { group_commit : bool; segment_records : int; checkpoint_every : int }
      (** WAL-backed. [group_commit] defers the flush barrier until a
          batch carries a commit/abort record (tentative entries ride
          along); otherwise every append batch flushes. [segment_records]
          is the WAL segment roll threshold; after a flush leaves
          [checkpoint_every] or more records beyond the newest checkpoint,
          the repository checkpoints (compacting every segment into one
          snapshot record). *)

val durable :
  ?group_commit:bool ->
  ?segment_records:int ->
  ?checkpoint_every:int ->
  unit ->
  durability
(** [Durable] with defaults: per-append flush, 32-record segments,
    checkpoint every 64 records. *)

type storage_note =
  | Flushed of int  (** a flush barrier persisted this many records *)
  | Flush_rejected  (** flush or checkpoint refused: disk full *)
  | Checkpointed of { kept : int; dropped_segments : int }
      (** compaction ran: [kept] snapshot payloads replaced
          [dropped_segments] segments *)

val set_storage_hook : t -> (storage_note -> unit) -> unit
(** Observe storage activity (trace emission) without this module
    depending on the observability layer. Default: ignore. *)

val set_resolve_hook : t -> (Action.t -> committed:bool -> unit) -> unit
(** Observe resolutions: called once per action the first time this
    repository installs a certified commit ([committed:true]) or abort
    ([committed:false]) record for it, whatever path delivered the record
    ({!append} via a status broadcast, {!ingest} gossip, or a vote
    {!offer}). Re-deliveries of an already-known decision do not fire.
    The shed-safety monitor rides this hook: a shed transaction's
    tentative entries are cleanly resolved exactly when every repository
    holding one fires an abort resolution. Default: ignore. *)

type recovery = {
  r_site : int;
  r_replayed : int;  (** payloads replayed from the durable prefix *)
  r_truncated : int;  (** invalid records physically dropped *)
  r_corrupt : bool;
      (** an invalid record sat before the tail: detected corruption, not
          an expected torn tail write *)
  r_segments : int;  (** segments scanned *)
  r_cost_ms : float;  (** modeled recovery time (deterministic) *)
}

type intention = {
  i_action : Action.t;
  i_op : string;
  i_bts : Lamport.Timestamp.t;
  i_seq : int;
}
(** A lock registered by a front-end's initial-quorum read on behalf of an
    operation about to execute. Quorum intersection guarantees that two
    conflicting operations meet at some repository, where the later one is
    refused — this closes the read/write race between concurrent
    front-ends. An intention is cleared by the arrival of its own entry, by
    its action's commit or abort record, or by an explicit release when the
    front-end backs off. *)

val create : ?durability:durability -> site:int -> unit -> t
(** Default durability: [Volatile]. *)

val site : t -> int
val read : t -> Log.t

val store : t -> payload Atomrep_store.Wal.t option
(** The backing WAL of a [Durable] repository ([None] when volatile) —
    exposed for fault injection and the storage tests. *)

val append : t -> Log.record list -> unit
(** Apply the records to the in-memory log (witnessing timestamps and
    clearing resolved intentions). A durable repository also appends them
    to its WAL buffer and, unless group commit defers it, issues a flush
    barrier; a full disk leaves the records volatile (they are restored by
    resync if lost — see {!durability}).

    Termination votes are sticky (first decision wins): a [Precommit] is
    silently refused when the log already holds a [Preabort] or abort
    record for the action (or a [Precommit] at a different timestamp),
    and a [Preabort] is refused when a [Precommit] or commit record is
    present. Certified commit/abort records are always accepted. Refusal
    applies on every path that appends — including {!ingest} gossip — so
    anti-entropy can propagate votes but never flip one. Votes count as
    status records for group commit: an accepted vote forces the flush
    barrier, because a vote that is not durable could be forgotten and
    re-cast the other way. *)

type status_evidence =
  | E_committed of Lamport.Timestamp.t
  | E_aborted
  | E_precommit of Lamport.Timestamp.t
  | E_preabort
  | E_none
  | E_fenced of int
      (** What one repository knows about an action's fate, strongest
          first: a certified decision, a sticky termination vote, or
          nothing. [E_fenced granted] is not evidence about the action at
          all but a refusal to talk: the offering driver's takeover term
          is stale ([granted] is the current lease term) and it must stop
          driving. *)

val status_of : t -> Atomrep_history.Action.t -> status_evidence
(** Read this repository's strongest evidence about the action. Never
    [E_fenced] — reads are not fenced, only vote offers are. *)

val offer : ?term:int -> t -> Log.record -> status_evidence
(** Append one record (with the sticky-vote rule applied) and return the
    repository's resulting evidence for that record's action — the reply
    a termination vote round counts. A refused vote leaves the prior
    evidence in place, so the caller learns what blocked it.

    When [term] is given and the record is a vote ([Precommit] /
    [Preabort]), the takeover fence applies first: a term strictly below
    the current lease grant ({!takeover_term}) is refused without
    touching the log and answered with [E_fenced granted]. Certified
    commit/abort records and entries are never fenced — refusing one
    could strand resolved state, and agreement rests on vote stickiness,
    not on the fence. Without [term] the offer is unfenced (the legacy
    PR-5 paths). *)

val takeover_term : t -> Action.t -> int
(** The action's current takeover lease term at this repository; [0] when
    no lease was ever granted (the original coordinator's implicit term). *)

val grant_takeover :
  t -> Action.t -> term:int -> holder:int -> Atomrep_txn.Takeover.result
(** Propose a takeover lease at this repository: granted iff the term is
    strictly above the current grant (first writer wins a term; re-asking
    for one's own grant is an idempotent ack). Grants are volatile —
    crash or amnesia forgets them, which can only widen who may drive. *)

val ingest : t -> Log.t -> unit
(** Merge a peer repository's log (anti-entropy): every incoming record is
    appended (clearing any intention it resolves) and aborted actions'
    entries are garbage-collected. *)

val gc : t -> unit
(** Garbage-collect aborted entries ({!Log.gc}). *)

val amnesia : t -> unit
(** Crash-with-amnesia. [Volatile]: drop the lock table and every
    tentative (undecided) entry, keep the stable projection ({!Log.stable})
    and recompute the high watermark from it (the in-memory watermark is
    volatile — keeping it would over-witness timestamps the site never
    durably saw). [Durable]: the entire in-memory state is volatile; the
    WAL records the crash (losing its unflushed buffer, persisting a torn
    record if one was armed) and the durable prefix returns via
    {!recover}. The epoch register survives in both modes (see {!epoch}). *)

val recover : t -> recovery option
(** Crash recovery for a [Durable] repository: scan the WAL, verify
    checksums, truncate at the first invalid record, and rebuild the log,
    high watermark, and epoch from the newest checkpoint snapshot plus the
    record tail. The lock table starts empty. Returns [None] when
    volatile (rejoin-resync alone restores state). Detected corruption
    ([r_corrupt]) means the durable suffix was discarded — the caller must
    hold the site to the quorum-gated resync path so peers restore what
    the log lost, rather than serving bad records. *)

val checkpoint : t -> unit
(** Force checkpoint compaction now (normally automatic after flushes per
    [checkpoint_every]): every WAL segment is replaced by one snapshot of
    the gc'd log — abort tombstones kept, so compaction can never
    resurrect a dead entry — plus the epoch and high watermark. No-op when
    volatile; on a full disk the attempt is noted and dropped. *)

val high_of_log : Log.t -> Lamport.Timestamp.t
(** The largest entry/commit timestamp the log witnesses — what recovery
    may honestly claim as the high watermark. *)

val intentions : t -> intention list
(** Unresolved intentions held at this repository. *)

val intend : t -> intention -> unit
(** Register (or refresh) an intention, keyed by (action, seq). *)

val release : t -> Action.t -> int -> unit
(** Drop one intention (back-off path). *)

val epoch : t -> int
(** The newest epoch this repository has joined (0 at creation). Stored on
    stable storage: it survives crash-with-amnesia, because a site that
    forgot it had left an epoch would accept that epoch's stale quorum
    traffic after recovery. *)

val advance_epoch : t -> int -> unit
(** Monotone: join the given epoch if it is newer, ignore otherwise.
    Front-ends stamp quorum reads and appends with their epoch number;
    {!Atomrep_replica.Replicated} refuses any stamped below {!epoch} and
    advances the repository on anything newer (epochs are learned from
    traffic as well as from the reconfiguration coordinator's seal and
    state-transfer messages). *)

val witness : t -> Lamport.Timestamp.t -> unit
(** Repositories participate in Lamport-clock gossip: they remember the
    largest entry timestamp seen, which front-ends merge back. *)

val high_ts : t -> Lamport.Timestamp.t
