open Atomrep_history
open Atomrep_spec
open Atomrep_core
open Atomrep_quorum
open Atomrep_clock
open Atomrep_sim
open Atomrep_stats
open Atomrep_txn
module Trace = Atomrep_obs.Trace
module Metrics = Atomrep_obs.Metrics
module Profile = Atomrep_obs.Profile
module Timeseries = Atomrep_obs.Timeseries
module Waits_for = Atomrep_cc.Waits_for

type object_config = {
  obj_name : string;
  obj_spec : Serial_spec.t;
  obj_relation : Relation.t;
  obj_assignment : Assignment.t;
  obj_members : int list option;
}

type op_request = { target : string; invocation : Event.Invocation.t }

type reconfig = {
  probe_every : float;
  probe_timeout : float;
  suspect_after : int;
  check_every : float;
  cooldown : float;
  assume_p : float;
  mix : (string * float) list;
  monitor : int;
  allow_barrier : bool;
  unsafe_no_barrier : bool;
  plan_override :
    (live:int list -> n_sites:int -> (int list * Assignment.t) option) option;
}

let default_reconfig =
  {
    probe_every = 40.0;
    probe_timeout = 25.0;
    suspect_after = 3;
    check_every = 60.0;
    cooldown = 150.0;
    assume_p = 0.9;
    mix = [];
    monitor = 0;
    allow_barrier = true;
    unsafe_no_barrier = false;
    plan_override = None;
  }

type deadlock_mode = No_deadlock | Detect | Wound_wait

let deadlock_mode_name = function
  | No_deadlock -> "none"
  | Detect -> "detect"
  | Wound_wait -> "wound-wait"

let deadlock_mode_of_string = function
  | "none" -> Some No_deadlock
  | "detect" -> Some Detect
  | "wound-wait" -> Some Wound_wait
  | _ -> None

type shed_policy = Reject_newest | Shed_reads_first

let shed_policy_name = function
  | Reject_newest -> "reject-newest"
  | Shed_reads_first -> "shed-reads-first"

let shed_policy_of_string = function
  | "reject-newest" -> Some Reject_newest
  | "shed-reads-first" -> Some Shed_reads_first
  | _ -> None

type breaker_cfg = {
  br_window : int;
  br_threshold : float;
  br_cooldown : float;
  br_probes : int;
}

let default_breaker =
  { br_window = 8; br_threshold = 0.5; br_cooldown = 400.0; br_probes = 2 }

type admission = {
  max_in_flight : int;
  queue_limit : int;
  deadline : float;
  adm_shed_policy : shed_policy;
  adm_breaker : breaker_cfg option;
}

let default_admission =
  {
    max_in_flight = 8;
    queue_limit = 16;
    deadline = Float.infinity;
    adm_shed_policy = Reject_newest;
    adm_breaker = None;
  }

type load = {
  arrivals : float array;
  home_of : int -> int;
  session_of : int -> int;
  class_of : int -> [ `Read | `Write ];
}

(* Gray-failure mitigation policy (DESIGN §3j). [hedge] turns on
   early-quorum gathers plus hedged re-issues: each quorum round fires its
   gather as soon as a satisfying vote set answered, and once the round
   lags an adaptive percentile delay re-issues the call — first to
   primaries still lacking a reply, then to members routed out of the
   round. [demote] steers rounds away from slow-suspected sites entirely
   (never below the round's quorum floor) and, once a suspicion has
   persisted [demote_grace], lets the reconfiguration coordinator treat
   the site as unusable and reassign quorums off it. *)
type gray = {
  hedge : bool;
  demote : bool;
  hedge_percentile : float;
      (* hedge delay = this percentile of recent non-slow RPC latencies *)
  hedge_delay_floor : float; (* never hedge sooner than this *)
  hedge_max : int; (* spare re-issues per round *)
  slow : Detector.slow_config; (* latency-scoring knobs *)
  demote_grace : float;
      (* slow-suspicion age before reconfiguration treats the site as
         down for planning purposes *)
}

type config = {
  seed : int;
  n_sites : int;
  latency_mean : float;
  drop_probability : float;
  scheme : Replicated.scheme;
  objects : object_config list;
  n_txns : int;
  arrival_mean : float;
  script : Rng.t -> int -> op_request list;
  max_retries : int;
  retry_delay : float;
  retry_delay_cap : float;
  rpc_timeout : float;
  commit_quorum_retries : int;
  install_faults : Network.t -> unit;
  horizon : float;
  anti_entropy_every : float option;
  reconfig : reconfig option;
  trace : Trace.t option;
  ungated_rejoin : bool;
  durability : Repository.durability;
  termination : Termination.mode;
  deadlock : deadlock_mode;
  reaper_every : float;
  takeover : bool;
      (* Coordinator takeover (requires [Cooperative] termination): a
         participant that finds a dead coordinator's in-doubt transaction
         wins an epoch-style takeover lease before adopting the drive,
         and every vote it places is term-stamped so stale drivers are
         fenced (see DESIGN §3f). *)
  admission : admission option;
      (* Admission control and graceful shedding (DESIGN §3i): a bounded
         in-flight window, a FIFO admission queue with deadline-aware
         dequeue, queue-overflow shed policies, and an optional per-site
         circuit breaker over RPC outcomes. [None] (the default) is the
         legacy unbounded path — every arrival starts immediately. *)
  retry_budget : int;
      (* Total retries (conflict backoffs + commit-quorum re-probes +
         commit-drive re-drives) one transaction may spend before it gives
         up — the metastable-collapse cap: capped jittered backoff bounds
         the rate, this bounds the amplification. [max_int] (the default)
         is unbounded, the historical behavior bit-for-bit. *)
  load : load option;
      (* Open-loop arrival schedule ({!Atomrep_workload.Openloop}): when
         present, transaction [i] arrives at [arrivals.(i)] (at most
         [n_txns] of them) at home site [home_of i], replacing the
         closed-loop exponential inter-arrival draws and the uniform home
         draw; [session_of]/[class_of] feed the per-session monotonicity
         monitor and the shed-by-class policy. *)
  timely_bound : float;
      (* A commit only counts toward [timely_commits] when the
         transaction's arrival-to-commit sojourn is within this bound —
         the goodput load sweeps compare (a late commit is wasted work to
         an open-loop client). [infinity] (the default) counts every
         commit. Accounting only; never changes scheduling. *)
  gray : gray option;
      (* Gray-failure mitigation (hedging, early-quorum gathers, slow-site
         demotion). [None] (the default) is the historical runtime,
         bit-for-bit: no latency scoring, every round targets all members
         and gathers all-or-timeout. *)
  fail_slow : (int * float * Network.slow_mode) list;
      (* Scripted fail-slow injections: (site, onset sim-time, mode).
         Each entry arms {!Network.set_fail_slow} at its onset and leaves
         the site degraded for the rest of the run — the persistent
         gray-failure fault, distinct from transient latency spikes. *)
  profile : Profile.t;
      (* Installed as the ambient profile for the run's extent, so the
         engine dispatch loop, network sends, trace publishes, quorum
         gathers and WAL flushes record phase timings against it.
         [Profile.null] (the default) costs one branch per site. *)
  timeseries : Timeseries.t;
      (* When enabled, a periodic engine event samples committed/aborted/
         blocked deltas, queue depth and WAL flushes into sim-time windows.
         The sampler draws no RNG and re-arms only while other work is
         pending, so it never changes what the workload does or when the
         run ends. *)
}

let default_queue_assignment ~n_sites =
  let majority = (n_sites / 2) + 1 in
  Assignment.make ~n_sites
    [
      ("Enq", { Assignment.initial = majority; final = majority });
      ("Deq", { Assignment.initial = majority; final = majority });
    ]

let default_gray =
  {
    hedge = true;
    demote = true;
    hedge_percentile = 0.95;
    hedge_delay_floor = 2.0;
    hedge_max = 2;
    slow = Detector.default_slow_config;
    demote_grace = 500.0;
  }

let default_config =
  {
    seed = 42;
    n_sites = 3;
    latency_mean = 2.0;
    drop_probability = 0.0;
    scheme = Replicated.Hybrid;
    objects =
      [
        {
          obj_name = "queue";
          obj_spec = Queue_type.spec;
          obj_relation = Static_dep.minimal Queue_type.spec ~max_len:4;
          obj_assignment = default_queue_assignment ~n_sites:3;
          obj_members = None;
        };
      ];
    n_txns = 20;
    arrival_mean = 30.0;
    script =
      (fun rng _ ->
        let op =
          if Rng.bool rng then { target = "queue"; invocation = Queue_type.enq_inv "x" }
          else { target = "queue"; invocation = Queue_type.deq_inv }
        in
        [ op ]);
    max_retries = 8;
    retry_delay = 25.0;
    retry_delay_cap = 400.0;
    rpc_timeout = 50.0;
    commit_quorum_retries = 2;
    install_faults = (fun _ -> ());
    horizon = 1_000_000.0;
    anti_entropy_every = None;
    reconfig = None;
    trace = None;
    ungated_rejoin = false;
    durability = Repository.Volatile;
    termination = Termination.Disabled;
    deadlock = No_deadlock;
    reaper_every = 250.0;
    takeover = false;
    admission = None;
    retry_budget = max_int;
    load = None;
    timely_bound = infinity;
    gray = None;
    fail_slow = [];
    profile = Profile.null;
    timeseries = Timeseries.null;
  }

type metrics = {
  committed : int;
  aborted : int;
  unavailable_aborts : int;
  rejected_aborts : int;
  conflict_aborts : int;
  blocked_waits : int;
  ops_done : int;
  txn_latency : Summary.t;
  duration : float;
  msgs_sent : int;
  msgs_dropped : int;
  msgs_duplicated : int;
  msgs_dead_dest : int;
  rpc_timeouts : int;
  reconfigs : int;
  reconfigs_refused : int;
  reconfigs_failed : int;
  reconfig_latency : Summary.t;
  suspicion_transitions : int;
  final_epoch : int;
  recoveries : int;
  recoveries_corrupt : int;
  recovery_replay : Summary.t;
  recovery_cost : Summary.t;
  wal_flushes : int;
  wal_flushed_records : int;
  wal_lost_flushes : int;
  wal_full_rejections : int;
  wal_torn_writes : int;
  wal_rotted : int;
  wal_checkpoints : int;
  storage_faults : int;
  coop_commits : int;
  coop_aborts : int;
  presumed_aborts : int;
  deadlock_aborts : int;
  redrives : int;
  orphans_reaped : int;
  stranded_entries : int;
  decision_log_writes : int;
  blocked_latency : Summary.t;
  takeover_leases : int;
  takeover_adoptions : int;
  takeover_fenced : int;
  takeover_contended : int;
  rebroadcasts_suppressed : int;
  stranded_live : int;
  shed : int;
  timely_commits : int;
  retries_spent : int;
  retries_budget_exhausted : int;
  sojourn : Summary.t;
  breaker_trips : int;
  hedges : int;
  hedge_wins : int;
  hedge_late : int;
  demoted_rounds : int;
  slow_suspicions : int;
}

type outcome = {
  metrics : metrics;
  histories : (string * Behavioral.t) list;
  registry : Metrics.t;
}

(* Registry handles for the hot counters: looked up once at run start so
   the per-transaction path never hashes a label set. *)
type counters = {
  c_committed : Metrics.counter;
  c_aborted : Metrics.counter;
  c_unavailable : Metrics.counter;
  c_rejected : Metrics.counter;
  c_conflict : Metrics.counter;
  c_blocked : Metrics.counter;
  c_ops : Metrics.counter;
  c_latency : Metrics.histogram;
  c_deadlock : Metrics.counter;
  c_presumed : Metrics.counter;
  c_coop_commit : Metrics.counter;
  c_coop_abort : Metrics.counter;
  c_redrive : Metrics.counter;
  c_orphans : Metrics.counter;
  c_blocked_latency : Metrics.histogram;
  c_takeover_lease : Metrics.counter;
  c_takeover_adopt : Metrics.counter;
  c_takeover_fenced : Metrics.counter;
  c_takeover_contended : Metrics.counter;
  c_rebroadcast_suppressed : Metrics.counter;
  g_stranded_live : Metrics.gauge;
  c_shed : Metrics.counter;
  c_timely : Metrics.counter;
  c_retries_spent : Metrics.counter;
  c_retry_exhausted : Metrics.counter;
  c_sojourn : Metrics.histogram;
  c_breaker_trips : Metrics.counter;
}

(* Live admission state: the bounded in-flight window and the FIFO queue
   (arrival order, head oldest — small by construction, [queue_limit]
   entries at most, so list append is fine). *)
type pending_txn = {
  p_index : int;
  p_arrival : float;
  p_class : [ `Read | `Write ];
}

type admission_state = {
  acfg : admission;
  mutable adm_in_flight : int;
  mutable adm_queue : pending_txn list;
}

type run_state = {
  engine : Engine.t;
  net : Network.t;
  clocks : Lamport.t array;
  objects : (string * Replicated.t) list;
  txns : (Action.t, Txn.t) Hashtbl.t;
  counters : counters;
  registry : Metrics.t;
  cfg : config;
  term : Termination.t option; (* decision logs, modes <> Disabled *)
  waits : Waits_for.t;
  (* Actions with a cooperative-termination round in flight — dedups
     concurrent participants piling onto the same stuck blocker. *)
  in_termination : (Action.t, unit) Hashtbl.t;
  (* (blocker, polling site) pairs whose status was already re-broadcast
     from try_resolve: later polls from the same site suppress the
     duplicate push and count it instead (the reaper still repairs any
     repository the one broadcast missed). *)
  rebroadcasted : (Action.t, int list) Hashtbl.t;
  (* Highest takeover term seen per action — the next bid must exceed it. *)
  takeover_terms : (Action.t, int) Hashtbl.t;
  (* Transactions currently counted in the live stranded gauge; the guard
     that makes adoption and orphan GC unable to double-decrement. *)
  counted_stranded : (Action.t, unit) Hashtbl.t;
  mutable n_stranded_live : int;
  admission_st : admission_state option;
}

let find_object st name =
  match List.assoc_opt name st.objects with
  | Some o -> o
  | None -> invalid_arg ("Runtime: unknown object " ^ name)

(* Capped exponential backoff with jitter: attempt 0 waits around the base
   delay, each further attempt doubles it up to the cap, and the uniform
   jitter in [0.5, 1.5) keeps two mutually-refused operations from
   retrying in lock-step. The cap clamps the jittered delay, not just the
   exponential part, so no delay ever exceeds [retry_delay_cap]. *)
let backoff_delay cfg rng ~attempt =
  let exp = cfg.retry_delay *. (2.0 ** float_of_int attempt) in
  Float.min (exp *. (0.5 +. Rng.float rng 1.0)) cfg.retry_delay_cap

let note st ~site kind =
  let trc = Network.trace st.net in
  if Trace.enabled trc then ignore (Trace.emit trc ~site kind)

(* A driver rendered a commit/abort verdict for [action] at [site].
   Emitted at the verdict — before the idempotent finalize guard — so
   every contending driver's decision reaches the trace bus and the
   no-divergence monitor can check that no two ever disagreed. *)
let decide_note st ~site action ~committed =
  note st ~site (Trace.Txn_decide { txn = Action.to_string action; site; committed })

(* Live stranded-transaction gauge. One increment the first time a
   transaction is observed stranded (driver died / coordinator found
   dead), one decrement when an external driver finalizes it — the
   [counted_stranded] guard is what keeps adoption and a later orphan-GC
   sweep of the same transaction from double-decrementing. *)
let set_stranded_gauge st =
  Metrics.set st.counters.g_stranded_live (float_of_int st.n_stranded_live)

let mark_stranded st btxn =
  match btxn.Txn.status with
  | Txn.Committed _ | Txn.Aborted _ -> ()
  | Txn.Running | Txn.Committing ->
    let action = btxn.Txn.action in
    if not (Hashtbl.mem st.counted_stranded action) then begin
      Hashtbl.replace st.counted_stranded action ();
      st.n_stranded_live <- st.n_stranded_live + 1;
      set_stranded_gauge st
    end

let unmark_stranded st action =
  if Hashtbl.mem st.counted_stranded action then begin
    Hashtbl.remove st.counted_stranded action;
    st.n_stranded_live <- st.n_stranded_live - 1;
    set_stranded_gauge st
  end

(* Re-push a terminal transaction's status records to every repository of
   every object it touched (from [from]): lingering tentative entries at
   any reachable repository resolve, not just the object the caller was
   blocked on. *)
let rebroadcast_status st btxn ~from =
  let action = btxn.Txn.action in
  List.iter
    (fun name ->
      let obj = find_object st name in
      match btxn.Txn.status with
      | Txn.Committed ts ->
        Replicated.broadcast_status obj
          (Log.Commit_record (action, ts))
          ~reachable_from:from
      | Txn.Aborted _ ->
        Replicated.broadcast_status obj (Log.Abort_record action)
          ~reachable_from:from
      | Txn.Running | Txn.Committing -> ())
    btxn.Txn.touched

(* Finalize a transaction from outside its (dead or stuck) driver: the
   single Running/Committing -> terminal transition owns the counters, the
   observer entries, and the status broadcast, so a stranded driver that
   never wakes and a cooperative participant can never both claim it. *)
let ext_finalize st btxn ~from outcome =
  let action = btxn.Txn.action in
  (match btxn.Txn.status with
   | Txn.Committed _ | Txn.Aborted _ -> ()
   | Txn.Running | Txn.Committing ->
     Waits_for.clear st.waits action;
     unmark_stranded st action;
     (match outcome with
      | `Commit cts ->
        btxn.Txn.status <- Txn.Committed cts;
        Metrics.incr st.counters.c_committed;
        note st ~site:from (Trace.Txn_commit { txn = Action.to_string action });
        List.iter
          (fun name ->
            Replicated.observe (find_object st name) (Behavioral.Commit action))
          btxn.Txn.touched
      | `Abort (kind, why) ->
        btxn.Txn.status <- Txn.Aborted why;
        Metrics.incr st.counters.c_aborted;
        (match kind with
         | `Presumed -> Metrics.incr st.counters.c_presumed
         | `Coop -> Metrics.incr st.counters.c_coop_abort);
        note st ~site:from
          (Trace.Txn_abort { txn = Action.to_string action; reason = why });
        List.iter
          (fun name ->
            Replicated.observe (find_object st name) (Behavioral.Abort action))
          btxn.Txn.touched));
  rebroadcast_status st btxn ~from

let count_yes_commit cts evs =
  List.length
    (List.filter
       (function
         | Repository.E_committed _ -> true
         | Repository.E_precommit ts -> Lamport.Timestamp.compare ts cts = 0
         | Repository.E_aborted | Repository.E_preabort | Repository.E_none
         | Repository.E_fenced _ ->
           false)
       evs)

let count_yes_abort evs =
  List.length
    (List.filter
       (function
         | Repository.E_aborted | Repository.E_preabort -> true
         | Repository.E_committed _ | Repository.E_precommit _
         | Repository.E_none | Repository.E_fenced _ ->
           false)
       evs)

let fenced_by evs =
  List.find_map
    (function Repository.E_fenced granted -> Some granted | _ -> None)
    evs

let certified_abort evs =
  List.exists (function Repository.E_aborted -> true | _ -> false) evs

let certified_commit evs =
  List.find_map
    (function Repository.E_committed ts -> Some ts | _ -> None)
    evs

(* Drive Precommit vote rounds for [btxn] at timestamp [cts] across every
   object it touched, from site [from]. Commit certifies only when EVERY
   object yields a full vote quorum (>= vote_need) — counting evidence on
   one object alone could commit object A while object B certifies abort.
   [k] gets `Committed, `Aborted (certified abort evidence surfaced),
   `Fenced (some repository holds a newer takeover lease than [term] —
   the current lease holder owns the drive now; stop), or `Inconclusive
   (some quorum unreachable; the decision stays open). [term] stamps the
   votes with the driver's takeover term; omitted (legacy paths with
   takeover off) the votes are unfenced. *)
let drive_commit_votes ?term st btxn cts ~from ~k =
  let action = btxn.Txn.action in
  let rec round = function
    | [] ->
      decide_note st ~site:from action ~committed:true;
      ext_finalize st btxn ~from (`Commit cts);
      k `Committed
    | name :: more ->
      let obj = find_object st name in
      Replicated.place_vote ?term obj (Log.Precommit (action, cts)) ~from
        ~k:(fun evs ->
          match fenced_by evs with
          | Some granted ->
            Metrics.incr st.counters.c_takeover_fenced;
            note st ~site:from
              (Trace.Takeover_fence
                 {
                   txn = Action.to_string action;
                   site = from;
                   term = Option.value term ~default:0;
                   granted;
                 });
            k `Fenced
          | None ->
            if certified_abort evs then begin
              decide_note st ~site:from action ~committed:false;
              ext_finalize st btxn ~from (`Abort (`Coop, "termination abort"));
              k `Aborted
            end
            else if count_yes_commit cts evs >= Replicated.vote_need obj then
              round more
            else k `Inconclusive)
  in
  round btxn.Txn.touched

(* Participant-driven cooperative termination for a stuck blocker.
   Poll the blocked object's repositories; adopt any certified decision;
   otherwise (Cooperative mode) either complete a commit the evidence
   shows was underway, or run a Preabort round: n - f + 1 sticky abort
   votes on ONE object guarantee no commit quorum of f can ever assemble
   there (the vote sets intersect), so installing the abort record is
   safe — presumed abort with a quorum proof.

   With [takeover] on, the active branch first wins a takeover lease at
   the blocked object's repositories (a monotone term granted by
   [lease_need] members — enough to intersect every commit AND abort
   vote set), stamps its votes with the term so stale drivers fence, and
   force-writes an adopted commit to its own durable decision log before
   driving, so a crash of the taker leaves the adoption re-drivable. *)
let cooperative_terminate st btxn target ~from =
  let action = btxn.Txn.action in
  if not (Hashtbl.mem st.in_termination action) then begin
    Hashtbl.replace st.in_termination action ();
    mark_stranded st btxn;
    let obj = find_object st target in
    let finish outcome =
      Hashtbl.remove st.in_termination action;
      note st ~site:from
        (Trace.Coop_term { txn = Action.to_string action; outcome })
    in
    (* Under takeover a terminator is a real contender that can die
       between its rounds: re-check liveness before starting the next
       phase, so a dead taker's round ends (releasing the in-flight
       dedup for the next contender) instead of continuing as a ghost.
       Replies already in flight still land — messages sent are sent.
       Without takeover, keep the PR-5 behavior exactly. *)
    let alive k =
      if st.cfg.takeover && not (Network.site_up st.net from) then
        finish "taker-died"
      else k ()
    in
    let adopt_certified evs k =
      match certified_commit evs with
      | Some cts ->
        decide_note st ~site:from action ~committed:true;
        ext_finalize st btxn ~from (`Commit cts);
        finish "adopted-commit"
      | None ->
        if certified_abort evs then begin
          decide_note st ~site:from action ~committed:false;
          ext_finalize st btxn ~from (`Abort (`Coop, "termination abort"));
          finish "adopted-abort"
        end
        else k ()
    in
    let preabort_round ?term () =
      Replicated.place_vote ?term obj (Log.Preabort action) ~from
        ~k:(fun evs ->
          match fenced_by evs with
          | Some granted ->
            Metrics.incr st.counters.c_takeover_fenced;
            note st ~site:from
              (Trace.Takeover_fence
                 {
                   txn = Action.to_string action;
                   site = from;
                   term = Option.value term ~default:0;
                   granted;
                 });
            finish "fenced"
          | None ->
            adopt_certified evs (fun () ->
                if count_yes_abort evs >= Replicated.veto_need obj then begin
                  decide_note st ~site:from action ~committed:false;
                  ext_finalize st btxn ~from (`Abort (`Coop, "presumed abort"));
                  finish "presumed-abort"
                end
                else finish "inconclusive"))
    in
    let drive_adopted ?term cts =
      drive_commit_votes ?term st btxn cts ~from ~k:(function
        | `Committed ->
          Metrics.incr st.counters.c_coop_commit;
          (match term with
           | Some _ ->
             Metrics.incr st.counters.c_takeover_adopt;
             (* The adoption is decided and certified: make the outcome
                durable at the taker too, closing its intent. *)
             (match st.term with
              | Some t ->
                Termination.log_outcome t ~site:from ~action ~committed:true
              | None -> ());
             finish "takeover-commit"
           | None -> finish "coop-commit")
        | `Aborted ->
          (match (term, st.term) with
           | Some _, Some t ->
             Termination.log_outcome t ~site:from ~action ~committed:false
           | _ -> ());
          finish "adopted-abort"
        | `Fenced -> finish "fenced"
        | `Inconclusive -> finish "inconclusive")
    in
    Replicated.poll_status obj action ~from ~k:(fun evs ->
        adopt_certified evs (fun () ->
            match st.cfg.termination with
            | Termination.Disabled | Termination.Presumed_abort_only ->
              (* Passive: without certified evidence the participant keeps
                 waiting for the coordinator (textbook presumed-abort
                 blocking). *)
              finish "inconclusive"
            | Termination.Cooperative ->
              let precommit =
                List.find_map
                  (function Repository.E_precommit ts -> Some ts | _ -> None)
                  evs
              in
              if not st.cfg.takeover then (
                match precommit with
                | Some cts ->
                  (* The coordinator reached its commit point: act as a
                     substitute coordinator and complete the commit. *)
                  drive_adopted cts
                | None -> preabort_round ())
              else
                alive (fun () ->
                    (* Bid for the takeover lease before driving either
                       side. The bid announces itself to the fault layer
                       (the takeover killer ambushes here). *)
                    Network.note_takeover st.net ~site:from;
                    let propose =
                      1
                      + Option.value ~default:0
                          (Hashtbl.find_opt st.takeover_terms action)
                    in
                    Replicated.takeover_acquire obj action ~term:propose
                      ~holder:from ~from ~k:(fun ~granted ~highest ->
                        Hashtbl.replace st.takeover_terms action
                          (max highest propose);
                        alive (fun () ->
                            if granted < Replicated.lease_need obj then begin
                              Metrics.incr st.counters.c_takeover_contended;
                              finish "lease-refused"
                            end
                            else begin
                              Metrics.incr st.counters.c_takeover_lease;
                              note st ~site:from
                                (Trace.Takeover_acquire
                                   {
                                     txn = Action.to_string action;
                                     site = from;
                                     term = propose;
                                   });
                              match precommit with
                              | Some cts ->
                                (* Force-write the adopted decision to the
                                   taker's own durable decision log first:
                                   if the taker crashes mid-drive, its
                                   recovery re-drives the adoption like
                                   any in-doubt intent of its own. *)
                                let logged =
                                  match st.term with
                                  | Some t ->
                                    Termination.log_intent t ~site:from
                                      ~action ~touched:btxn.Txn.touched ~cts
                                  | None -> false
                                in
                                if logged then
                                  drive_adopted ~term:propose cts
                                else finish "adoption-log-full"
                              | None -> preabort_round ~term:propose ()
                            end)))))
  end

(* A blocked operation consults the blocking transaction's coordinator when
   reachable; a finished transaction's status records are re-broadcast so
   lingering tentative entries resolve on every reachable repository of
   every touched object. When the coordinator is unreachable, the
   termination protocol (if enabled) takes over instead of the historical
   silent give-up. *)
let try_resolve st ~home blocker target =
  match Hashtbl.find_opt st.txns blocker with
  | None -> ()
  | Some btxn ->
    let coord = btxn.Txn.home_site in
    if Network.reachable st.net home coord then begin
      match btxn.Txn.status with
      | Txn.Committed _ | Txn.Aborted _ ->
        (* Idempotence guard: one status re-broadcast per (blocker,
           polling site). A blocked operation's retry loop polls here on
           every backoff; without the guard each poll re-pushed the same
           records to every repository. Suppressed duplicates are counted;
           a repository the one broadcast missed (crashed, partitioned) is
           repaired by the orphan reaper, whose re-pushes stay
           unconditional. *)
        let sites =
          Option.value ~default:[] (Hashtbl.find_opt st.rebroadcasted blocker)
        in
        if List.mem home sites then
          Metrics.incr st.counters.c_rebroadcast_suppressed
        else begin
          Hashtbl.replace st.rebroadcasted blocker (home :: sites);
          rebroadcast_status st btxn ~from:coord
        end
      | Txn.Running | Txn.Committing -> ()
    end
    else (
      match st.cfg.termination with
      | Termination.Disabled -> ()
      | Termination.Presumed_abort_only | Termination.Cooperative ->
        cooperative_terminate st btxn target ~from:home)

(* The shed site for a transaction that never started: its home under an
   open-loop plan (where homes are preassigned), the system lane otherwise
   (the uniform home draw has not happened yet). *)
let shed_site st index =
  match st.cfg.load with
  | Some l -> l.home_of index mod st.cfg.n_sites
  | None -> -1

(* Shed a transaction that was never admitted (queue overflow, class
   eviction, or deadline expiry while queued): it touched nothing, so the
   Shed trace event plus the counters are the whole story — the
   shed-safety monitor sees no tentative entries to worry about. *)
let shed_pending st p ~reason =
  Metrics.incr st.counters.c_aborted;
  Metrics.incr st.counters.c_shed;
  Metrics.observe st.counters.c_sojourn (Engine.now st.engine -. p.p_arrival);
  note st ~site:(shed_site st p.p_index)
    (Trace.Shed { txn = Printf.sprintf "T%d" p.p_index; reason })

(* Evict the newest queued read (shed-by-class: reads are sacrificed
   before writes). Returns the victim and the queue without it. *)
let evict_newest_read queue =
  let rec go acc = function
    | [] -> None
    | p :: older when p.p_class = `Read -> Some (p, List.rev_append older acc)
    | p :: older -> go (p :: acc) older
  in
  go [] (List.rev queue)

let rec exec_txn st index ~arrival ~admitted ~release =
  let cfg = st.cfg in
  let rng = Engine.rng st.engine in
  let trc = Network.trace st.net in
      let home =
        match cfg.load with
        | Some l -> l.home_of index mod cfg.n_sites
        | None -> Rng.int rng cfg.n_sites
      in
      let session =
        match cfg.load with Some l -> l.session_of index | None -> -1
      in
      let action = Action.of_string (Printf.sprintf "T%d" index) in
      let txname = Action.to_string action in
      if not (Network.site_up st.net home) then begin
        (* The client's site is down: the transaction cannot start. *)
        Metrics.incr st.counters.c_aborted;
        Metrics.incr st.counters.c_unavailable;
        release ()
      end
      else begin
        let clock = st.clocks.(home) in
        let txn = Txn.create ~action ~begin_ts:(Lamport.tick clock) ~home_site:home in
        Hashtbl.replace st.txns action txn;
        let script = cfg.script rng index in
        let started = Engine.now st.engine in
        if Trace.enabled trc then
          ignore (Trace.emit trc ~site:home (Trace.Txn_begin { txn = txname }));
        let tspan = Trace.span_begin trc ~site:home "txn" in
        let commit_span = ref (-1) in
        (* Every continuation the driver schedules (RPC callback, backoff
           timer) re-enters through this guard: a transaction someone else
           finalized stops silently, and a driver whose home site has
           crashed dies with it — the transaction is stranded until the
           termination protocol (or nothing, under [Disabled]) picks it
           up. The guard draws nothing, so fault-free runs are
           bit-identical to the unguarded driver. *)
        let step f =
          match txn.Txn.status with
          | Txn.Committed _ | Txn.Aborted _ -> ()
          | Txn.Running | Txn.Committing ->
            if txn.Txn.stranded then ()
            else if not (Network.site_up st.net home) then begin
              txn.Txn.stranded <- true;
              mark_stranded st txn;
              (* The driver is dead; its admission slot frees so offered
                 load keeps flowing while termination picks the orphan up. *)
              release ()
            end
            else f ()
        in
        let close_spans outcome =
          Trace.span_end trc ~site:home ~span:!commit_span ~outcome;
          Trace.span_end trc ~site:home ~span:tspan ~outcome
        in
        let finish_abort kind why =
          match txn.Txn.status with
          | Txn.Committed _ | Txn.Aborted _ -> ()
          | Txn.Running | Txn.Committing ->
            Waits_for.clear st.waits action;
            decide_note st ~site:home action ~committed:false;
            unmark_stranded st action;
            txn.Txn.status <- Txn.Aborted why;
            Metrics.incr st.counters.c_aborted;
            (match kind with
             | `Unavailable -> Metrics.incr st.counters.c_unavailable
             | `Rejected -> Metrics.incr st.counters.c_rejected
             | `Conflict -> Metrics.incr st.counters.c_conflict
             | `Deadlock -> Metrics.incr st.counters.c_deadlock
             | `Shed ->
               (* A mid-flight shed is an ordinary clean abort plus the
                  Shed marker the shed-safety monitor keys on: the abort
                  broadcast below must resolve its tentative entries at
                  every reachable repository. *)
               Metrics.incr st.counters.c_shed;
               note st ~site:home (Trace.Shed { txn = txname; reason = why }));
            if Trace.enabled trc then
              ignore
                (Trace.emit trc ~site:home
                   (Trace.Txn_abort { txn = txname; reason = why }));
            close_spans "aborted";
            List.iter
              (fun name ->
                let obj = find_object st name in
                Replicated.observe obj (Behavioral.Abort action);
                Replicated.broadcast_status obj (Log.Abort_record action)
                  ~reachable_from:home)
              txn.Txn.touched;
            release ()
        in
        let note_session_commit cts =
          if session >= 0 then
            note st ~site:home
              (Trace.Session_commit
                 {
                   session;
                   txn = txname;
                   counter = cts.Lamport.Timestamp.counter;
                   site = cts.Lamport.Timestamp.site;
                 })
        in
        let finish_commit () =
          Waits_for.clear st.waits action;
          if Engine.now st.engine -. arrival <= cfg.timely_bound then
            Metrics.incr st.counters.c_timely;
          if Trace.enabled trc then
            ignore (Trace.emit trc ~site:home (Trace.Txn_commit { txn = txname }));
          close_spans "committed";
          release ()
        in
        (* Per-transaction retry budget: conflict backoffs, commit-quorum
           re-probes and commit-drive re-drives all spend from the same
           pot, so a partitioned run cannot amplify retries unboundedly.
           [max_int] never exhausts and keeps the legacy draw sequence. *)
        let budget = ref cfg.retry_budget in
        let spend_retry () =
          if !budget <= 0 then false
          else begin
            budget := !budget - 1;
            Metrics.incr st.counters.c_retries_spent;
            true
          end
        in
        let budget_exhausted () =
          Metrics.incr st.counters.c_retry_exhausted
        in
        let past_deadline () =
          match st.admission_st with
          | None -> false
          | Some a -> Engine.now st.engine -. admitted > a.acfg.deadline
        in
        (* Deadlock handling at the moment an operation reports a blocker.
           [Detect]: record the waits-for edge and look for a cycle; the
           youngest participant (largest begin timestamp) is sentenced —
           its edge is removed so the cycle is broken even before it
           aborts. [Wound_wait]: an older waiter wounds a younger Running
           blocker outright (no graph, no cycles possible). Victims other
           than the current transaction abort at their next attempt
           entry. *)
        let on_blocked blocker =
          match cfg.deadlock with
          | No_deadlock -> ()
          | Detect -> (
            Waits_for.wait st.waits ~waiter:action ~on:blocker;
            let alive a =
              match Hashtbl.find_opt st.txns a with
              | Some t -> (
                match t.Txn.status with
                | Txn.Running | Txn.Committing -> t.Txn.doomed = None
                | Txn.Committed _ | Txn.Aborted _ -> false)
              | None -> false
            in
            match Waits_for.cycle_from st.waits ~alive action with
            | None -> ()
            | Some cycle ->
              let begin_ts a =
                match Hashtbl.find_opt st.txns a with
                | Some t -> t.Txn.begin_ts
                | None -> Lamport.Timestamp.zero
              in
              let victim =
                List.fold_left
                  (fun v a ->
                    if Lamport.Timestamp.compare (begin_ts a) (begin_ts v) > 0
                    then a
                    else v)
                  (List.hd cycle) (List.tl cycle)
              in
              (match Hashtbl.find_opt st.txns victim with
               | None -> ()
               | Some vt ->
                 vt.Txn.doomed <- Some "deadlock victim";
                 Waits_for.clear st.waits victim;
                 if Trace.enabled trc then
                   ignore
                     (Trace.emit trc ~site:home
                        (Trace.Deadlock
                           {
                             victim = Action.to_string victim;
                             cycle = List.map Action.to_string cycle;
                           }))))
          | Wound_wait -> (
            match Hashtbl.find_opt st.txns blocker with
            | None -> ()
            | Some bt -> (
              match bt.Txn.status with
              | Txn.Running
                when bt.Txn.doomed = None
                     && Lamport.Timestamp.compare txn.Txn.begin_ts
                          bt.Txn.begin_ts
                        < 0 ->
                bt.Txn.doomed <- Some "wounded";
                if Trace.enabled trc then
                  ignore
                    (Trace.emit trc ~site:home
                       (Trace.Deadlock
                          {
                            victim = Action.to_string blocker;
                            cycle =
                              [
                                Action.to_string action;
                                Action.to_string blocker;
                              ];
                          }))
              | _ -> ()))
        in
        let rec do_ops remaining =
          match remaining with
          | [] -> do_commit ()
          | { target; invocation } :: rest ->
            let obj = find_object st target in
            if not (List.mem target txn.Txn.touched) then begin
              Txn.touch txn target;
              Replicated.observe obj (Behavioral.Begin action)
            end;
            (* Wall-clock the op's blocked period: set at the first refusal,
               closed when the attempt chain terminates (driver-owned, like
               the transaction latency histogram). *)
            attempt obj (ref None) remaining rest invocation cfg.max_retries
        and attempt obj blocked_at remaining rest invocation retries =
          let unblocked () =
            match !blocked_at with
            | None -> ()
            | Some t0 ->
              blocked_at := None;
              Metrics.observe st.counters.c_blocked_latency
                (Engine.now st.engine -. t0)
          in
          match txn.Txn.doomed with
          | Some why when cfg.deadlock <> No_deadlock ->
            unblocked ();
            finish_abort `Deadlock why
          | _ ->
            Replicated.execute obj ~txn ~clock ~span:tspan invocation
              ~k:(fun result ->
                step (fun () ->
                    match result with
                    | Replicated.Done _ ->
                      unblocked ();
                      Waits_for.clear st.waits action;
                      Metrics.incr st.counters.c_ops;
                      do_ops rest
                    | Replicated.Blocked_on blocker ->
                      Metrics.incr st.counters.c_blocked;
                      if !blocked_at = None then
                        blocked_at := Some (Engine.now st.engine);
                      on_blocked blocker;
                      (match txn.Txn.doomed with
                       | Some why when cfg.deadlock <> No_deadlock ->
                         (* Sentenced as the cycle's victim just now: abort
                            immediately instead of waiting out a backoff. *)
                         unblocked ();
                         finish_abort `Deadlock why
                       | _ ->
                         try_resolve st ~home blocker (Replicated.name obj);
                         if past_deadline () then begin
                           (* Deadline-aware shedding mid-transaction:
                              still pre-commit, so the clean abort path
                              applies — tentative entries resolve via the
                              abort broadcast. *)
                           unblocked ();
                           finish_abort `Shed "deadline exceeded"
                         end
                         else if retries > 0 then begin
                           if spend_retry () then begin
                             let delay =
                               backoff_delay cfg rng
                                 ~attempt:(cfg.max_retries - retries)
                             in
                             Engine.schedule st.engine ~delay (fun () ->
                                 step (fun () ->
                                     attempt obj blocked_at remaining rest
                                       invocation (retries - 1)))
                           end
                           else begin
                             budget_exhausted ();
                             unblocked ();
                             finish_abort `Conflict "retry budget exhausted"
                           end
                         end
                         else begin
                           unblocked ();
                           finish_abort `Conflict "conflict retries exhausted"
                         end)
                    | Replicated.Unavailable why ->
                      unblocked ();
                      finish_abort `Unavailable why
                    | Replicated.Rejected why ->
                      unblocked ();
                      finish_abort `Rejected why))
        and do_commit () =
          txn.Txn.status <- Txn.Committing;
          (* Tell interested fault schedules (the coordinator killer) that
             this site just entered its commit window. Costs nothing — not
             even a draw — when nobody listens. *)
          Network.note_commit_window st.net ~site:home;
          commit_span := Trace.span_begin trc ~site:home ~parent:tspan "commit";
          let legacy_finalize () =
            let cts = Lamport.tick clock in
            decide_note st ~site:home action ~committed:true;
            txn.Txn.status <- Txn.Committed cts;
            Metrics.incr st.counters.c_committed;
            Metrics.observe st.counters.c_latency (Engine.now st.engine -. started);
            note_session_commit cts;
            finish_commit ();
            List.iter
              (fun name ->
                let obj = find_object st name in
                Replicated.observe obj (Behavioral.Commit action);
                Replicated.broadcast_status obj
                  (Log.Commit_record (action, cts))
                  ~reachable_from:home)
              txn.Txn.touched
          in
          (* Phase 2, termination modes: make the decision durable (the
             commit point), then drive sticky Precommit votes to a full
             quorum per object. A crash after the commit point leaves the
             intent in the decision log for the recovered coordinator to
             re-drive; a crash before it leaves only presumable-abort
             state. *)
          let decide () =
            match st.term with
            | None -> legacy_finalize ()
            | Some term ->
              let cts = Lamport.tick clock in
              if
                not
                  (Termination.log_intent term ~site:home ~action
                     ~touched:txn.Txn.touched ~cts)
              then finish_abort `Unavailable "decision log: disk full"
              else begin
                if Trace.enabled trc then
                  ignore
                    (Trace.emit trc ~site:home
                       (Trace.Commit_point { txn = txname }));
                (* Session_commit is emitted here, at timestamp assignment,
                   not when the vote drive reports back: a partition can
                   delay one drive past a later-stamped sibling's verdict,
                   and the monitor judges the clock in trace order. *)
                note_session_commit cts;
                (* With takeover on, the coordinator identifies itself at
                   the implicit term 0 so a takeover lease holder fences
                   it; takeover off leaves the votes unfenced (PR-5). *)
                let my_term = if cfg.takeover then Some 0 else None in
                let rec drive tries_left =
                  drive_commit_votes ?term:my_term st txn cts ~from:home
                    ~k:(fun verdict ->
                      if not (Network.site_up st.net home) then begin
                        txn.Txn.stranded <- true;
                        mark_stranded st txn;
                        release ()
                      end
                      else
                        match verdict with
                        | `Committed ->
                          Metrics.observe st.counters.c_latency
                            (Engine.now st.engine -. started);
                          close_spans "committed";
                          Termination.log_outcome term ~site:home ~action
                            ~committed:true;
                          release ()
                        | `Aborted ->
                          close_spans "aborted";
                          Termination.log_outcome term ~site:home ~action
                            ~committed:false;
                          release ()
                        | `Fenced ->
                          (* A takeover lease holder owns the drive now:
                             stop. The intent stays in-doubt at this site
                             until the holder's broadcast (or this site's
                             next recovery) resolves it. *)
                          close_spans "fenced";
                          release ()
                        | `Inconclusive ->
                          let can_retry =
                            tries_left > 0
                            &&
                            (if spend_retry () then true
                             else begin
                               budget_exhausted ();
                               false
                             end)
                          in
                          if can_retry then begin
                            let delay =
                              backoff_delay cfg rng
                                ~attempt:
                                  (cfg.commit_quorum_retries - tries_left)
                            in
                            Engine.schedule st.engine ~delay (fun () ->
                                step (fun () -> drive (tries_left - 1)))
                          end
                          else begin
                            (* In doubt: the commit point is durable but
                               some vote quorum is unreachable. The
                               decision stays open for redrive at
                               recovery, cooperative termination, or the
                               reaper. *)
                            note st ~site:home
                              (Trace.Coop_term
                                 { txn = txname; outcome = "in-doubt" });
                            close_spans "in-doubt";
                            release ()
                          end)
                in
                drive cfg.commit_quorum_retries
              end
          in
          (* Phase 1: every touched object must show a reachable final
             quorum before the decision. *)
          let rec prepare = function
            | [] -> decide ()
            | name :: more ->
              let obj = find_object st name in
              (* Transient quorum loss (a flapping site, a healing
                 partition) need not doom the transaction: re-probe a
                 bounded number of times with backoff before aborting. *)
              let rec probe tries_left =
                Replicated.prepared_sites obj ~from:home
                  ~timeout:(Replicated.rpc_timeout obj) ~k:(fun sites ->
                    step (fun () ->
                        if List.length sites >= Replicated.max_final obj then
                          prepare more
                        else if tries_left > 0 then begin
                          if spend_retry () then begin
                            let delay =
                              backoff_delay cfg rng
                                ~attempt:(cfg.commit_quorum_retries - tries_left)
                            in
                            Engine.schedule st.engine ~delay (fun () ->
                                step (fun () -> probe (tries_left - 1)))
                          end
                          else begin
                            budget_exhausted ();
                            finish_abort `Unavailable
                              ("commit quorum (retry budget): " ^ name)
                          end
                        end
                        else
                          finish_abort `Unavailable ("commit quorum: " ^ name)))
              in
              probe cfg.commit_quorum_retries
          in
          if txn.Txn.touched = [] then begin
            (* Empty transaction: commits vacuously. *)
            let cts = Lamport.tick clock in
            decide_note st ~site:home action ~committed:true;
            txn.Txn.status <- Txn.Committed cts;
            Metrics.incr st.counters.c_committed;
            Metrics.observe st.counters.c_latency (Engine.now st.engine -. started);
            note_session_commit cts;
            finish_commit ()
          end
          else prepare txn.Txn.touched
        in
        do_ops script
      end

(* One admission slot's release, shared by every terminal path of the
   transaction it guards (commit, abort, strand, in-doubt give-up).
   Idempotent — several paths can race to it under kills. Frees the
   in-flight slot, observes the admission→verdict sojourn, and pumps the
   queue so the next waiter starts inside the same event. *)
and make_release st ~arrival =
  let released = ref false in
  fun () ->
    if not !released then begin
      released := true;
      Metrics.observe st.counters.c_sojourn (Engine.now st.engine -. arrival);
      match st.admission_st with
      | None -> ()
      | Some a ->
        a.adm_in_flight <- a.adm_in_flight - 1;
        admission_pump st
    end

(* Drain the admission queue into free slots. Waiters whose deadline
   elapsed while queued are shed here rather than admitted dead. *)
and admission_pump st =
  match st.admission_st with
  | None -> ()
  | Some a ->
    let rec pump () =
      if a.adm_in_flight < a.acfg.max_in_flight then begin
        match a.adm_queue with
        | [] -> ()
        | p :: rest ->
          a.adm_queue <- rest;
          if Engine.now st.engine -. p.p_arrival > a.acfg.deadline then begin
            shed_pending st p ~reason:"deadline";
            pump ()
          end
          else begin
            a.adm_in_flight <- a.adm_in_flight + 1;
            let release = make_release st ~arrival:p.p_arrival in
            exec_txn st p.p_index ~arrival:p.p_arrival ~admitted:(Engine.now st.engine) ~release
          end
      end
    in
    pump ()

(* Client arrival: under admission control the transaction first passes
   the gate — run now if a slot is free, wait in the bounded queue
   otherwise, or be shed per policy when the queue is full. Without
   admission ([cfg.admission = None]) this is a plain dispatch and the
   run is bit-identical to the ungated runtime. *)
and run_txn st index ~arrival =
  Engine.schedule_at st.engine ~time:arrival (fun () ->
      match st.admission_st with
      | None ->
        exec_txn st index ~arrival ~admitted:arrival ~release:(make_release st ~arrival)
      | Some a ->
        let p =
          {
            p_index = index;
            p_arrival = arrival;
            p_class =
              (match st.cfg.load with
               | Some l -> l.class_of index
               | None -> `Write);
          }
        in
        if a.adm_in_flight < a.acfg.max_in_flight && a.adm_queue = [] then begin
          a.adm_in_flight <- a.adm_in_flight + 1;
          let release = make_release st ~arrival in
          exec_txn st index ~arrival ~admitted:arrival ~release
        end
        else if List.length a.adm_queue < a.acfg.queue_limit then
          a.adm_queue <- a.adm_queue @ [ p ]
        else begin
          match a.acfg.adm_shed_policy with
          | Reject_newest -> shed_pending st p ~reason:"queue full"
          | Shed_reads_first -> (
            (* An arriving write may evict the newest queued read;
               arriving reads and writes with no read to evict are shed
               themselves. *)
            match p.p_class with
            | `Read -> shed_pending st p ~reason:"queue full"
            | `Write -> (
              match evict_newest_read a.adm_queue with
              | Some (victim, rest) ->
                shed_pending st victim ~reason:"shed-by-class";
                a.adm_queue <- rest @ [ p ]
              | None -> shed_pending st p ~reason:"queue full"))
        end)

(* Reconstruct the model-ordered history for one object (see interface):
   Begin entries first (Begin-timestamp order), then executions and aborts
   in observed order, then Commit entries in commit-timestamp order, except
   for locking where the observed order is the model order. *)
let model_history st scheme observed =
  match scheme with
  | Replicated.Locking -> observed
  | Replicated.Static | Replicated.Hybrid ->
    let begins =
      List.filter_map
        (function Behavioral.Begin a -> Some a | Behavioral.Exec _ | Behavioral.Commit _ | Behavioral.Abort _ -> None)
        observed
    in
    let begin_ts a =
      match Hashtbl.find_opt st.txns a with
      | Some txn -> txn.Txn.begin_ts
      | None -> Lamport.Timestamp.zero
    in
    let commit_ts a =
      match Hashtbl.find_opt st.txns a with
      | Some { Txn.status = Txn.Committed ts; _ } -> Some ts
      | Some _ | None -> None
    in
    let begins =
      List.sort (fun a b -> Lamport.Timestamp.compare (begin_ts a) (begin_ts b)) begins
    in
    let middles =
      List.filter
        (function
          | Behavioral.Exec _ | Behavioral.Abort _ -> true
          | Behavioral.Begin _ | Behavioral.Commit _ -> false)
        observed
    in
    let commits =
      List.filter_map
        (function
          | Behavioral.Commit a ->
            (match commit_ts a with Some ts -> Some (ts, a) | None -> Some (Lamport.Timestamp.zero, a))
          | Behavioral.Begin _ | Behavioral.Exec _ | Behavioral.Abort _ -> None)
        observed
      |> List.sort (fun (t1, _) (t2, _) -> Lamport.Timestamp.compare t1 t2)
      |> List.map (fun (_, a) -> Behavioral.Commit a)
    in
    List.map (fun a -> Behavioral.Begin a) begins @ middles @ commits

let run_inner cfg =
  let engine = Engine.create ~seed:cfg.seed in
  let net =
    Network.create engine ~n_sites:cfg.n_sites ~latency_mean:cfg.latency_mean
      ~drop_probability:cfg.drop_probability ()
  in
  let objects =
    List.map
      (fun oc ->
        ( oc.obj_name,
          Replicated.create ~name:oc.obj_name ~spec:oc.obj_spec ~scheme:cfg.scheme
            ~relation:oc.obj_relation ~assignment:oc.obj_assignment ~net
            ?members:oc.obj_members ~durability:cfg.durability
            ~rpc_timeout:cfg.rpc_timeout () ))
      cfg.objects
  in
  (match cfg.trace with Some tr -> Network.set_trace net tr | None -> ());
  let registry = Metrics.create () in
  let scheme_l = [ ("scheme", Replicated.scheme_name cfg.scheme) ] in
  let abort_l reason = ("reason", reason) :: scheme_l in
  let st =
    {
      engine;
      net;
      clocks = Array.init cfg.n_sites (fun site -> Lamport.create ~site);
      objects;
      txns = Hashtbl.create 256;
      counters =
        {
          c_committed = Metrics.counter registry ~labels:scheme_l "txn.committed";
          c_aborted = Metrics.counter registry ~labels:scheme_l "txn.aborted";
          c_unavailable =
            Metrics.counter registry ~labels:(abort_l "unavailable") "txn.aborts";
          c_rejected =
            Metrics.counter registry ~labels:(abort_l "rejected") "txn.aborts";
          c_conflict =
            Metrics.counter registry ~labels:(abort_l "conflict") "txn.aborts";
          c_blocked = Metrics.counter registry ~labels:scheme_l "op.blocked_waits";
          c_ops = Metrics.counter registry ~labels:scheme_l "op.done";
          c_latency =
            Metrics.histogram registry ~labels:scheme_l "txn.latency";
          c_deadlock =
            Metrics.counter registry ~labels:(abort_l "deadlock") "txn.aborts";
          c_presumed =
            Metrics.counter registry ~labels:(abort_l "presumed") "txn.aborts";
          c_coop_commit =
            Metrics.counter registry ~labels:scheme_l "term.coop_commits";
          c_coop_abort =
            Metrics.counter registry ~labels:scheme_l "term.coop_aborts";
          c_redrive = Metrics.counter registry ~labels:scheme_l "term.redrives";
          c_orphans =
            Metrics.counter registry ~labels:scheme_l "term.orphans_reaped";
          c_blocked_latency =
            Metrics.histogram registry ~labels:scheme_l "op.blocked_latency";
          c_takeover_lease =
            Metrics.counter registry ~labels:scheme_l "takeover.leases";
          c_takeover_adopt =
            Metrics.counter registry ~labels:scheme_l "takeover.adoptions";
          c_takeover_fenced =
            Metrics.counter registry ~labels:scheme_l "takeover.fenced";
          c_takeover_contended =
            Metrics.counter registry ~labels:scheme_l "takeover.contended";
          c_rebroadcast_suppressed =
            Metrics.counter registry ~labels:scheme_l
              "term.rebroadcasts_suppressed";
          g_stranded_live =
            Metrics.gauge registry ~labels:scheme_l "term.stranded_live";
          c_shed = Metrics.counter registry ~labels:scheme_l "admission.shed";
          c_timely =
            Metrics.counter registry ~labels:scheme_l "runtime.timely_commits";
          c_retries_spent =
            Metrics.counter registry ~labels:scheme_l "runtime.retries_spent";
          c_retry_exhausted =
            Metrics.counter registry ~labels:scheme_l
              "runtime.retries_budget_exhausted";
          c_sojourn =
            Metrics.histogram registry ~labels:scheme_l "admission.sojourn";
          c_breaker_trips =
            Metrics.counter registry ~labels:scheme_l "breaker.trips";
        };
      registry;
      cfg;
      term =
        (match cfg.termination with
         | Termination.Disabled -> None
         | Termination.Presumed_abort_only | Termination.Cooperative ->
           Some (Termination.create ~n_sites:cfg.n_sites ()));
      waits = Waits_for.create ();
      in_termination = Hashtbl.create 16;
      rebroadcasted = Hashtbl.create 16;
      takeover_terms = Hashtbl.create 16;
      counted_stranded = Hashtbl.create 16;
      n_stranded_live = 0;
      admission_st =
        (match cfg.admission with
         | None -> None
         | Some a -> Some { acfg = a; adm_in_flight = 0; adm_queue = [] });
    }
  in
  (* Circuit breaker: a pure state machine fed from the RPC outcome
     listeners and consulted from the network router. It only gates
     [Rpc.call] — status broadcasts and gossip still use [Network.send],
     so abort records reach a tripped site and shed-safety holds. *)
  (match cfg.admission with
   | Some { adm_breaker = Some bc; _ } ->
     let breaker =
       Breaker.create ~window:bc.br_window ~threshold:bc.br_threshold
         ~cooldown:bc.br_cooldown ~probes:bc.br_probes ~n_sites:cfg.n_sites ()
     in
     Breaker.set_transition_hook breaker (fun ~site ~state ->
         if state = Breaker.Open then Metrics.incr st.counters.c_breaker_trips;
         note st ~site
           (Trace.Breaker { site; state = Breaker.state_label state }));
     Network.on_rpc_result net (fun ~src:_ ~dst ~ok ~elapsed:_ ->
         Breaker.record breaker ~site:dst ~now:(Engine.now engine) ~ok);
     Network.set_router net
       (Some
          (fun ~src:_ ~dst ->
            Breaker.allow breaker ~site:dst ~now:(Engine.now engine)))
   | Some { adm_breaker = None; _ } | None -> ());
  (* Fault schedules inject clock skew through the network so they need no
     dependency on the clock layer; the runtime owns the clocks, so it
     supplies the handler. *)
  Network.set_skew_handler net (fun ~site ~amount ->
      Lamport.skew st.clocks.(site) amount);
  (* An amnesiac site may only rejoin once its resync set intersects every
     final quorum that might hold a tentative entry it lost: for final
     quorums of size f on n sites that takes n - f + 1 peers, maximized
     over every operation of every object. *)
  let resync_quorum =
    List.fold_left
      (fun acc oc ->
        List.fold_left
          (fun acc (_, s) ->
            if s.Assignment.final > 0 then
              max acc (cfg.n_sites - s.Assignment.final + 1)
            else acc)
          acc oc.obj_assignment.Assignment.ops)
      0 cfg.objects
  in
  (* [ungated_rejoin] reverts both halves of the amnesia fix (rejoin
     without a resync quorum, commits not re-pushing their entries) so the
     double-dequeue violation can be replayed under tracing for postmortem
     tests. *)
  Network.set_resync_quorum net (if cfg.ungated_rejoin then 0 else resync_quorum);
  if cfg.ungated_rejoin then
    List.iter (fun (_, obj) -> Replicated.set_commit_piggyback obj false) objects;
  (* Recovery redrive: a recovered coordinator replays its decision log and
     re-drives every in-doubt intent to a verdict; transactions homed at
     the site that never reached the commit point cannot have committed
     (the intent is durable-first), so they are presumed aborted. Sorted
     iteration keeps the broadcast order — and hence the draw order —
     independent of hash-table layout. *)
  (match st.term with
   | None -> ()
   | Some term ->
     Network.on_recover net (fun site ->
         let in_doubt = Termination.recover term ~site in
         List.iter
           (fun (action, _touched, cts) ->
             match Hashtbl.find_opt st.txns action with
             | None -> ()
             | Some btxn ->
               Metrics.incr st.counters.c_redrive;
               (match btxn.Txn.status with
                | Txn.Committed _ | Txn.Aborted _ ->
                  let committed =
                    match btxn.Txn.status with
                    | Txn.Committed _ -> true
                    | _ -> false
                  in
                  Termination.log_outcome term ~site ~action ~committed;
                  rebroadcast_status st btxn ~from:site;
                  note st ~site
                    (Trace.Txn_redrive
                       {
                         txn = Action.to_string action;
                         outcome = (if committed then "committed" else "aborted");
                       })
                | Txn.Running | Txn.Committing ->
                  (* A recovered driver — original coordinator or crashed
                     taker — redrives at the implicit term 0 (lease terms
                     are volatile): if a takeover lease holder is active
                     it fences this redrive and keeps sole ownership. *)
                  let my_term = if cfg.takeover then Some 0 else None in
                  drive_commit_votes ?term:my_term st btxn cts ~from:site
                    ~k:(fun verdict ->
                      let outcome =
                        match verdict with
                        | `Committed ->
                          Termination.log_outcome term ~site ~action
                            ~committed:true;
                          "committed"
                        | `Aborted ->
                          Termination.log_outcome term ~site ~action
                            ~committed:false;
                          "aborted"
                        | `Fenced -> "fenced"
                        | `Inconclusive -> "in-doubt"
                      in
                      note st ~site
                        (Trace.Txn_redrive
                           { txn = Action.to_string action; outcome }))))
           in_doubt;
         let no_intent a =
           not (List.exists (fun (a', _, _) -> Action.equal a a') in_doubt)
         in
         Hashtbl.fold
           (fun a btxn acc ->
             match btxn.Txn.status with
             | (Txn.Running | Txn.Committing)
               when btxn.Txn.home_site = site && no_intent a ->
               (a, btxn) :: acc
             | _ -> acc)
           st.txns []
         |> List.sort (fun (a, _) (b, _) -> Action.compare a b)
         |> List.iter (fun (_, btxn) ->
                btxn.Txn.stranded <- true;
                decide_note st ~site btxn.Txn.action ~committed:false;
                ext_finalize st btxn ~from:site
                  (`Abort (`Presumed, "presumed abort")))));
  (* Orphan reaper ([Cooperative] only): periodically sweep every
     repository for tentative entries. Entries of terminal transactions
     get their status records re-pushed; non-terminal transactions whose
     coordinator is gone (or which sit in the in-doubt commit window) get
     a cooperative-termination round. Draws nothing when there is nothing
     to do. *)
  (match cfg.termination with
   | Termination.Disabled | Termination.Presumed_abort_only -> ()
   | Termination.Cooperative ->
     let rec first_up site =
       if site >= cfg.n_sites then None
       else if Network.site_up net site then Some site
       else first_up (site + 1)
     in
     let rec reap () =
       Engine.schedule engine ~delay:cfg.reaper_every (fun () ->
           (match first_up 0 with
            | None -> ()
            | Some origin ->
              let seen = Hashtbl.create 16 in
              List.iter
                (fun (name, obj) ->
                  List.iter
                    (fun site ->
                      let view =
                        View.classify (Replicated.repository_log obj ~site)
                      in
                      List.iter
                        (fun (e : Log.entry) ->
                          if not (Hashtbl.mem seen e.Log.action) then
                            Hashtbl.replace seen e.Log.action name)
                        view.View.tentative)
                    (Epoch.members (Replicated.current_epoch obj)))
                st.objects;
              let resolved = ref 0 in
              Hashtbl.fold (fun a name acc -> (a, name) :: acc) seen []
              |> List.sort (fun (a, _) (b, _) -> Action.compare a b)
              |> List.iter (fun (a, target) ->
                     match Hashtbl.find_opt st.txns a with
                     | None -> ()
                     | Some btxn -> (
                       match btxn.Txn.status with
                       | Txn.Committed _ | Txn.Aborted _ ->
                         incr resolved;
                         Metrics.incr st.counters.c_orphans;
                         rebroadcast_status st btxn ~from:origin
                       | Txn.Committing ->
                         (* In the in-doubt commit window: resolve it. *)
                         cooperative_terminate st btxn target ~from:origin
                       | Txn.Running ->
                         if
                           btxn.Txn.stranded
                           || not
                                (Network.reachable net origin
                                   btxn.Txn.home_site)
                         then cooperative_terminate st btxn target ~from:origin));
              if !resolved > 0 then
                note st ~site:origin
                  (Trace.Orphan_gc { site = origin; resolved = !resolved }));
           reap ())
     in
     reap ());
  cfg.install_faults net;
  (* Split gossip streams unconditionally so the workload's draws are the
     same whether or not anti-entropy runs. *)
  List.iter
    (fun (_, obj) ->
      let gossip_rng = Rng.split (Engine.rng engine) in
      match cfg.anti_entropy_every with
      | Some every -> Replicated.start_anti_entropy obj ~rng:gossip_rng ~every
      | None -> ())
    objects;
  (* Reconfiguration coordinator: a failure detector feeds a periodic
     check; when a current member is suspected dead, the policy proposes a
     new (member set, assignment) over the live view and the handoff runs
     through Replicated.reconfigure. The detector draws from its own split
     stream for the same reason gossip does: toggling reconfiguration must
     not perturb the workload's draws. *)
  let rc_done = Metrics.counter registry ~labels:scheme_l "reconfig.done" in
  let rc_refused = Metrics.counter registry ~labels:scheme_l "reconfig.refused" in
  let rc_failed = Metrics.counter registry ~labels:scheme_l "reconfig.failed" in
  let rc_lat = Metrics.histogram registry ~labels:scheme_l "reconfig.latency" in
  let c_hedges = Metrics.counter registry ~labels:scheme_l "gray.hedges" in
  let c_hedge_wins = Metrics.counter registry ~labels:scheme_l "gray.hedge_wins" in
  let c_hedge_late = Metrics.counter registry ~labels:scheme_l "gray.hedge_late" in
  let c_demoted =
    Metrics.counter registry ~labels:scheme_l "gray.demoted_rounds"
  in
  (* Scripted fail-slow injections: persistent service-time inflation armed
     at each entry's onset. Empty by default, so the legacy event timeline
     is untouched. *)
  List.iter
    (fun (site, onset, mode) ->
      Engine.schedule_at engine ~time:onset (fun () ->
          Network.set_fail_slow net ~site mode))
    cfg.fail_slow;
  (* Failure detector, shared by the reconfiguration coordinator (binary
     suspicion) and the gray-failure layer (latency scoring). It draws from
     its own split stream for the same reason gossip does: toggling either
     consumer must not perturb the workload's draws — exactly one split is
     consumed here whether zero, one, or both are enabled. *)
  let detector = ref None in
  (match (cfg.reconfig, cfg.gray) with
   | None, None -> ignore (Rng.split (Engine.rng engine))
   | reconfig, gray ->
     let det_rng = Rng.split (Engine.rng engine) in
     let rc = Option.value reconfig ~default:default_reconfig in
     detector :=
       Some
         (Detector.start net ~rng:det_rng ~probe_every:rc.probe_every
            ~timeout:rc.probe_timeout ~suspect_after:rc.suspect_after
            ~monitor:rc.monitor
            ?slow:(Option.map (fun gc -> gc.slow) gray)
            ()));
  (* Gray-failure mitigation: install the routing/hedging hooks on every
     object. Routing drops slow-suspected members from a round's primaries
     (never below its quorum floor); members routed out are the hedge
     spares of last resort. *)
  (match (cfg.gray, !detector) with
   | Some gc, Some det ->
     (* Per-site latency histograms mirrored into the registry — the same
        samples the detector's books score. *)
     let site_lat =
       Array.init cfg.n_sites (fun site ->
           Metrics.histogram registry
             ~labels:(("site", string_of_int site) :: scheme_l)
             "rpc.site_latency")
     in
     Network.on_rpc_result net (fun ~src:_ ~dst ~ok:_ ~elapsed ->
         if dst >= 0 && dst < cfg.n_sites then
           Metrics.observe site_lat.(dst) elapsed);
     let h_delay () =
       match Detector.latency_percentile det ~q:gc.hedge_percentile with
       | Some p -> Float.max gc.hedge_delay_floor p
       | None ->
         (* No samples yet: a few mean network hops is the only prior. *)
         Float.max gc.hedge_delay_floor (4.0 *. cfg.latency_mean)
     in
     let route ~op:_ ~floor ~members =
       let dsts =
         if gc.demote then begin
           let fast =
             List.filter (fun s -> not (Detector.slow_suspected det s)) members
           in
           if List.length fast = List.length members then members
           else if List.length fast >= floor then begin
             Metrics.incr c_demoted;
             fast
           end
           else members (* too few fast sites: a slow quorum beats none *)
         end
         else members
       in
       (* Routing never narrows below the full fast set — standing
          redundancy beats a reserved spare. Hedged re-issues go first to
          primaries still lacking a reply (a fresh send re-rolls the
          straggling link); demoted members are the spares of last resort,
          least-suspect first. *)
       let spares =
         List.sort
           (fun a b ->
             compare
               (Detector.slow_score det a, a)
               (Detector.slow_score det b, b))
           (List.filter (fun s -> not (List.mem s dsts)) members)
       in
       let hedge =
         if gc.hedge then
           Some
             {
               Rpc.h_delay;
               h_spares = spares;
               h_max = gc.hedge_max;
               h_on_hedge = (fun ~dst:_ -> Metrics.incr c_hedges);
               h_on_win = (fun ~dst:_ -> Metrics.incr c_hedge_wins);
             }
         else None
       in
       (dsts, hedge)
     in
     List.iter
       (fun (_, obj) ->
         Replicated.set_gray obj
           (Some
              {
                Replicated.g_route = route;
                g_early = gc.hedge;
                g_on_late = Some (fun ~dst:_ ~ok:_ -> Metrics.incr c_hedge_late);
              }))
       objects
   | _ -> ());
  (match cfg.reconfig with
   | None -> ()
   | Some rc ->
     let det =
       match !detector with Some d -> d | None -> assert false
     in
     let in_flight = ref false in
     let last_done = ref (-.rc.cooldown) in
     let consider (_, obj) =
       if
         (not !in_flight)
         && Network.site_up net rc.monitor
         && Engine.now engine -. !last_done >= rc.cooldown
       then begin
         let live = Detector.live det in
         (* Demotion handoff: a site slow-suspected past the grace period
            is as good as down for planning purposes — exclude it from the
            live view so Reassign proposes quorums off it. Reconfigure
            itself still refuses the handoff under static atomicity
            (Theorems 10–12), so this only ever takes effect where the
            scheme permits reassignment. *)
         let live =
           match cfg.gray with
           | Some gc when gc.demote ->
             List.filter
               (fun s ->
                 match Detector.slow_since det s with
                 | Some t0 -> Engine.now engine -. t0 < gc.demote_grace
                 | None -> true)
               live
           | _ -> live
         in
         let members = Epoch.members (Replicated.current_epoch obj) in
         if List.exists (fun s -> not (List.mem s live)) members then begin
           let plan =
             match rc.plan_override with
             | Some f -> f ~live ~n_sites:cfg.n_sites
             | None ->
               Reassign.plan ~live ~ops:(Replicated.ops obj)
                 ~constraints:(Replicated.constraints obj) ~p:rc.assume_p
                 ~mix:rc.mix ()
           in
           match plan with
           | None -> () (* no satisfying assignment: keep the old epoch *)
           | Some (members', _) when members' = members -> ()
           | Some (members', assignment') ->
             in_flight := true;
             let t0 = Engine.now engine in
             Replicated.reconfigure obj ~members:members' ~assignment:assignment'
               ~allow_barrier:rc.allow_barrier
               ~unsafe_no_barrier:rc.unsafe_no_barrier ~from:rc.monitor
               (fun result ->
                 in_flight := false;
                 last_done := Engine.now engine;
                 match result with
                 | Replicated.Reconfigured _ ->
                   Metrics.incr rc_done;
                   Metrics.observe rc_lat (Engine.now engine -. t0)
                 | Replicated.Refused _ -> Metrics.incr rc_refused
                 | Replicated.Failed _ -> Metrics.incr rc_failed)
         end
       end
     in
     let rec check () =
       Engine.schedule engine ~delay:rc.check_every (fun () ->
           List.iter consider objects;
           check ())
     in
     check ());
  (* Time-series sampler: a recurring engine event polling the hot
     counters into sim-time windows. It draws no RNG and re-arms only
     while other work is pending, so committed counts and event order are
     bit-for-bit identical with the sampler on or off — extra heap entries
     shift absolute sequence numbers but never the relative order of the
     workload's own events. *)
  if Timeseries.enabled cfg.timeseries then begin
    let ts = cfg.timeseries in
    let s_committed = Timeseries.series ts ~agg:Timeseries.Sum "committed"
    and s_aborted = Timeseries.series ts ~agg:Timeseries.Sum "aborted"
    and s_blocked = Timeseries.series ts ~agg:Timeseries.Sum "blocked_waits"
    and s_wal = Timeseries.series ts ~agg:Timeseries.Sum "wal_flushes"
    and s_msgs = Timeseries.series ts ~agg:Timeseries.Sum "msgs_sent"
    and s_queue = Timeseries.series ts ~agg:Timeseries.Max "queue_depth"
    and s_stranded = Timeseries.series ts ~agg:Timeseries.Last "stranded_live"
    and s_shed = Timeseries.series ts ~agg:Timeseries.Sum "shed"
    and s_timely = Timeseries.series ts ~agg:Timeseries.Sum "timely_commits"
    and s_retries = Timeseries.series ts ~agg:Timeseries.Sum "retries_spent" in
    let last_committed = ref 0
    and last_aborted = ref 0
    and last_blocked = ref 0
    and last_wal = ref 0
    and last_msgs = ref 0
    and last_shed = ref 0
    and last_timely = ref 0
    and last_retries = ref 0 in
    let wal_flushes_now () =
      List.fold_left
        (fun acc (_, obj) ->
          match Replicated.wal_totals obj with
          | None -> acc
          | Some s -> acc + s.Atomrep_store.Wal.flushes)
        0 objects
    in
    let interval = Timeseries.width ts /. 2.0 in
    let rec tick () =
      Engine.schedule engine ~delay:interval (fun () ->
          let now = Engine.now engine in
          let delta s last v =
            Timeseries.observe ts s ~now (float_of_int (v - !last));
            last := v
          in
          delta s_committed last_committed (Metrics.read st.counters.c_committed);
          delta s_aborted last_aborted (Metrics.read st.counters.c_aborted);
          delta s_blocked last_blocked (Metrics.read st.counters.c_blocked);
          delta s_wal last_wal (wal_flushes_now ());
          delta s_msgs last_msgs (Network.stats net).Network.sent;
          delta s_shed last_shed (Metrics.read st.counters.c_shed);
          delta s_timely last_timely (Metrics.read st.counters.c_timely);
          delta s_retries last_retries (Metrics.read st.counters.c_retries_spent);
          Timeseries.observe ts s_queue ~now
            (float_of_int (Engine.pending engine));
          Timeseries.observe ts s_stranded ~now
            (float_of_int st.n_stranded_live);
          if Engine.pending engine > 0 then tick ())
    in
    tick ()
  end;
  (match cfg.load with
   | None ->
     (* Closed-form Poisson process: the legacy draw sequence. *)
     let rng = Engine.rng engine in
     let arrival = ref 0.0 in
     for i = 0 to cfg.n_txns - 1 do
       arrival := !arrival +. Rng.exponential rng cfg.arrival_mean;
       run_txn st i ~arrival:!arrival
     done
   | Some load ->
     (* Open-loop plan: arrivals are precomputed (independent of this
        engine's RNG), so offered load never adapts to system state. *)
     let n = min cfg.n_txns (Array.length load.arrivals) in
     for i = 0 to n - 1 do
       run_txn st i ~arrival:load.arrivals.(i)
     done);
  Engine.run ~until:cfg.horizon engine;
  Timeseries.finish cfg.timeseries ~now:(Engine.now engine);
  (match !detector with Some d -> Detector.stop d | None -> ());
  (* End-of-run fairness signal: the liveness monitors only indict an
     unresolved obligation when the final network state shows fairness held
     (everything healed, everybody up) — a stranded op behind a permanent
     kill is vacuous, not a violation. *)
  note st ~site:(-1)
    (Trace.Quiesce
       {
         up = List.length (Network.up_sites net);
         n_sites = cfg.n_sites;
         partitioned = Network.partitioned net;
       });
  let ns = Network.stats net in
  (* Mirror the network's counters and the run-level facts into the
     registry so one JSON export carries everything. *)
  let g name v = Metrics.set (Metrics.gauge registry name) v in
  g "net.sent" (float_of_int ns.Network.sent);
  g "net.dropped" (float_of_int ns.Network.dropped);
  g "net.duplicated" (float_of_int ns.Network.duplicated);
  g "net.dead_dest" (float_of_int ns.Network.dead_dest);
  g "net.rpc_timeouts" (float_of_int ns.Network.rpc_timeouts);
  g "sim.duration" (Engine.now engine);
  let suspicion_transitions =
    match !detector with Some d -> Detector.transitions d | None -> 0
  in
  g "detector.transitions" (float_of_int suspicion_transitions);
  let slow_suspicions =
    match !detector with Some d -> Detector.slow_transitions d | None -> 0
  in
  g "detector.slow_transitions" (float_of_int slow_suspicions);
  let final_epoch =
    List.fold_left
      (fun acc (_, obj) -> max acc (Epoch.number (Replicated.current_epoch obj)))
      0 objects
  in
  g "epoch.final" (float_of_int final_epoch);
  (* Durability: WAL counters summed over objects, plus one observation per
     recovery into the replay-length and modeled-cost histograms. *)
  let module Wal = Atomrep_store.Wal in
  let wal_flushes = ref 0
  and wal_flushed_records = ref 0
  and wal_lost_flushes = ref 0
  and wal_full_rejections = ref 0
  and wal_torn_writes = ref 0
  and wal_rotted = ref 0
  and wal_checkpoints = ref 0 in
  List.iter
    (fun (_, obj) ->
      match Replicated.wal_totals obj with
      | None -> ()
      | Some s ->
        wal_flushes := !wal_flushes + s.Wal.flushes;
        wal_flushed_records := !wal_flushed_records + s.Wal.flushed_records;
        wal_lost_flushes := !wal_lost_flushes + s.Wal.lost_flushes;
        wal_full_rejections := !wal_full_rejections + s.Wal.full_rejections;
        wal_torn_writes := !wal_torn_writes + s.Wal.torn_writes;
        wal_rotted := !wal_rotted + s.Wal.rotted;
        wal_checkpoints := !wal_checkpoints + s.Wal.checkpoints)
    objects;
  g "wal.flushes" (float_of_int !wal_flushes);
  g "wal.flushed_records" (float_of_int !wal_flushed_records);
  g "wal.lost_flushes" (float_of_int !wal_lost_flushes);
  g "wal.full_rejections" (float_of_int !wal_full_rejections);
  g "wal.torn_writes" (float_of_int !wal_torn_writes);
  g "wal.rotted" (float_of_int !wal_rotted);
  g "wal.checkpoints" (float_of_int !wal_checkpoints);
  g "storage.faults" (float_of_int ns.Network.storage_faults);
  (* Termination: how many tentative entries are still unresolved at the
     horizon (orphans the protocol failed — or was not allowed — to
     reap), and how many decision-log flushes the commit points cost. *)
  let stranded_entries =
    List.fold_left
      (fun acc (_, obj) ->
        List.fold_left
          (fun acc site ->
            acc
            + List.length
                (View.classify (Replicated.repository_log obj ~site))
                  .View.tentative)
          acc
          (Epoch.members (Replicated.current_epoch obj)))
      0 objects
  in
  g "term.stranded_entries" (float_of_int stranded_entries);
  let decision_log_writes =
    match st.term with Some t -> Termination.writes t | None -> 0
  in
  g "term.decision_log_writes" (float_of_int decision_log_writes);
  let all_recoveries =
    List.concat_map (fun (_, obj) -> Replicated.recoveries obj) objects
  in
  let recoveries_corrupt =
    List.length (List.filter (fun r -> r.Repository.r_corrupt) all_recoveries)
  in
  g "recovery.count" (float_of_int (List.length all_recoveries));
  g "recovery.corrupt" (float_of_int recoveries_corrupt);
  let replay_h = Metrics.histogram registry ~labels:scheme_l "recovery.replay" in
  let cost_h = Metrics.histogram registry ~labels:scheme_l "recovery.cost_ms" in
  List.iter
    (fun r ->
      Metrics.observe replay_h (float_of_int r.Repository.r_replayed);
      Metrics.observe cost_h r.Repository.r_cost_ms)
    all_recoveries;
  (* Per-span-kind latency breakdowns, from the trace's closed spans. *)
  (match cfg.trace with
   | Some tr ->
     List.iter
       (fun (label, s) ->
         let h = Metrics.histogram registry ~labels:scheme_l ("span." ^ label) in
         List.iter (Metrics.observe h) (Summary.observations s))
       (Trace.span_durations tr)
   | None -> ());
  let cv labels name = Metrics.counter_value registry ~labels name in
  let metrics =
    {
      committed = cv scheme_l "txn.committed";
      aborted = cv scheme_l "txn.aborted";
      unavailable_aborts = cv (abort_l "unavailable") "txn.aborts";
      rejected_aborts = cv (abort_l "rejected") "txn.aborts";
      conflict_aborts = cv (abort_l "conflict") "txn.aborts";
      blocked_waits = cv scheme_l "op.blocked_waits";
      ops_done = cv scheme_l "op.done";
      txn_latency = Metrics.histogram_summary registry ~labels:scheme_l "txn.latency";
      duration = Engine.now engine;
      msgs_sent = ns.Network.sent;
      msgs_dropped = ns.Network.dropped;
      msgs_duplicated = ns.Network.duplicated;
      msgs_dead_dest = ns.Network.dead_dest;
      rpc_timeouts = ns.Network.rpc_timeouts;
      reconfigs = cv scheme_l "reconfig.done";
      reconfigs_refused = cv scheme_l "reconfig.refused";
      reconfigs_failed = cv scheme_l "reconfig.failed";
      reconfig_latency =
        Metrics.histogram_summary registry ~labels:scheme_l "reconfig.latency";
      suspicion_transitions;
      final_epoch;
      recoveries = List.length all_recoveries;
      recoveries_corrupt;
      recovery_replay =
        Metrics.histogram_summary registry ~labels:scheme_l "recovery.replay";
      recovery_cost =
        Metrics.histogram_summary registry ~labels:scheme_l "recovery.cost_ms";
      wal_flushes = !wal_flushes;
      wal_flushed_records = !wal_flushed_records;
      wal_lost_flushes = !wal_lost_flushes;
      wal_full_rejections = !wal_full_rejections;
      wal_torn_writes = !wal_torn_writes;
      wal_rotted = !wal_rotted;
      wal_checkpoints = !wal_checkpoints;
      storage_faults = ns.Network.storage_faults;
      coop_commits = cv scheme_l "term.coop_commits";
      coop_aborts = cv scheme_l "term.coop_aborts";
      presumed_aborts = cv (abort_l "presumed") "txn.aborts";
      deadlock_aborts = cv (abort_l "deadlock") "txn.aborts";
      redrives = cv scheme_l "term.redrives";
      orphans_reaped = cv scheme_l "term.orphans_reaped";
      stranded_entries;
      decision_log_writes;
      blocked_latency =
        Metrics.histogram_summary registry ~labels:scheme_l "op.blocked_latency";
      takeover_leases = cv scheme_l "takeover.leases";
      takeover_adoptions = cv scheme_l "takeover.adoptions";
      takeover_fenced = cv scheme_l "takeover.fenced";
      takeover_contended = cv scheme_l "takeover.contended";
      rebroadcasts_suppressed = cv scheme_l "term.rebroadcasts_suppressed";
      stranded_live = st.n_stranded_live;
      shed = cv scheme_l "admission.shed";
      timely_commits = cv scheme_l "runtime.timely_commits";
      retries_spent = cv scheme_l "runtime.retries_spent";
      retries_budget_exhausted =
        cv scheme_l "runtime.retries_budget_exhausted";
      sojourn =
        Metrics.histogram_summary registry ~labels:scheme_l "admission.sojourn";
      breaker_trips = cv scheme_l "breaker.trips";
      hedges = cv scheme_l "gray.hedges";
      hedge_wins = cv scheme_l "gray.hedge_wins";
      hedge_late = cv scheme_l "gray.hedge_late";
      demoted_rounds = cv scheme_l "gray.demoted_rounds";
      slow_suspicions;
    }
  in
  let histories =
    List.map
      (fun (name, obj) -> (name, model_history st cfg.scheme (Replicated.history obj)))
      objects
  in
  { metrics; histories; registry }

(* Install the run's profile as the ambient one only when it is enabled:
   a disabled profile must not mask an outer ambient profile (e.g. a
   campaign profiling its runs from the CLI). *)
let run cfg =
  if Profile.enabled cfg.profile then
    Profile.with_current cfg.profile (fun () -> run_inner cfg)
  else run_inner cfg

let spec_of (cfg : config) name =
  let oc = List.find (fun oc -> String.equal oc.obj_name name) cfg.objects in
  oc.obj_spec

(* Exhaustive local-atomicity checking is exponential in the number of
   active (uncommitted) actions and, for the dynamic property, in the
   committed actions as well; histories from moderate runs end with few
   actives, and locking runs fall back to commit-order serializability
   (which two-phase locking guarantees and which implies a consistent
   global order) when the full dynamic check would blow up. *)
let check_atomicity (cfg : config) outcome =
  let module A = Atomrep_atomicity.Atomicity in
  List.filter_map
    (fun (name, history) ->
      let spec = spec_of cfg name in
      let committed = List.length (Behavioral.committed history) in
      let result =
        match cfg.scheme with
        | Replicated.Static -> A.check spec A.Static history
        | Replicated.Hybrid -> A.check spec A.Hybrid history
        | Replicated.Locking ->
          if committed <= 7 then A.check spec A.Dynamic history
          else begin
            (* Commit-order serializability for large locking histories. *)
            let h = Behavioral.strip_aborted history in
            let order = Behavioral.committed h in
            let serial = Behavioral.serialize h order in
            if Serial_spec.legal spec serial then Ok ()
            else
              Error
                {
                  A.order;
                  serial;
                  reason = "commit-order serialization illegal";
                }
          end
      in
      match result with
      | Ok () -> None
      | Error f -> Some (name, Format.asprintf "%a" A.pp_failure f))
    outcome.histories

let check_common_order (cfg : config) outcome =
  (* The system-wide serialization order is the Begin-timestamp order for
     static atomicity and the Commit order (commit timestamps; observed
     commit order for locking) otherwise. Both are total orders shared by
     every object, so the system is atomic iff each object's committed
     subhistory is legal when serialized in it. *)
  List.filter_map
    (fun (name, history) ->
      let spec = spec_of cfg name in
      let h = Behavioral.strip_aborted history in
      let committed = Behavioral.committed h in
      let order =
        match cfg.scheme with
        | Replicated.Hybrid | Replicated.Locking -> committed
        | Replicated.Static ->
          (* Begin-entry order in the reconstructed history is the
             Begin-timestamp order. *)
          List.filter
            (fun a -> List.exists (Action.equal a) committed)
            (Behavioral.begin_order h)
      in
      let serial = Behavioral.serialize h order in
      if Serial_spec.legal spec serial then None
      else Some (name, "committed subhistory illegal in system-wide order"))
    outcome.histories
