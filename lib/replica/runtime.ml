open Atomrep_history
open Atomrep_spec
open Atomrep_core
open Atomrep_quorum
open Atomrep_clock
open Atomrep_sim
open Atomrep_stats
open Atomrep_txn
module Trace = Atomrep_obs.Trace
module Metrics = Atomrep_obs.Metrics

type object_config = {
  obj_name : string;
  obj_spec : Serial_spec.t;
  obj_relation : Relation.t;
  obj_assignment : Assignment.t;
  obj_members : int list option;
}

type op_request = { target : string; invocation : Event.Invocation.t }

type reconfig = {
  probe_every : float;
  probe_timeout : float;
  suspect_after : int;
  check_every : float;
  cooldown : float;
  assume_p : float;
  mix : (string * float) list;
  monitor : int;
  allow_barrier : bool;
  unsafe_no_barrier : bool;
  plan_override :
    (live:int list -> n_sites:int -> (int list * Assignment.t) option) option;
}

let default_reconfig =
  {
    probe_every = 40.0;
    probe_timeout = 25.0;
    suspect_after = 3;
    check_every = 60.0;
    cooldown = 150.0;
    assume_p = 0.9;
    mix = [];
    monitor = 0;
    allow_barrier = true;
    unsafe_no_barrier = false;
    plan_override = None;
  }

type config = {
  seed : int;
  n_sites : int;
  latency_mean : float;
  drop_probability : float;
  scheme : Replicated.scheme;
  objects : object_config list;
  n_txns : int;
  arrival_mean : float;
  script : Rng.t -> int -> op_request list;
  max_retries : int;
  retry_delay : float;
  retry_delay_cap : float;
  rpc_timeout : float;
  commit_quorum_retries : int;
  install_faults : Network.t -> unit;
  horizon : float;
  anti_entropy_every : float option;
  reconfig : reconfig option;
  trace : Trace.t option;
  ungated_rejoin : bool;
  durability : Repository.durability;
}

let default_queue_assignment ~n_sites =
  let majority = (n_sites / 2) + 1 in
  Assignment.make ~n_sites
    [
      ("Enq", { Assignment.initial = majority; final = majority });
      ("Deq", { Assignment.initial = majority; final = majority });
    ]

let default_config =
  {
    seed = 42;
    n_sites = 3;
    latency_mean = 2.0;
    drop_probability = 0.0;
    scheme = Replicated.Hybrid;
    objects =
      [
        {
          obj_name = "queue";
          obj_spec = Queue_type.spec;
          obj_relation = Static_dep.minimal Queue_type.spec ~max_len:4;
          obj_assignment = default_queue_assignment ~n_sites:3;
          obj_members = None;
        };
      ];
    n_txns = 20;
    arrival_mean = 30.0;
    script =
      (fun rng _ ->
        let op =
          if Rng.bool rng then { target = "queue"; invocation = Queue_type.enq_inv "x" }
          else { target = "queue"; invocation = Queue_type.deq_inv }
        in
        [ op ]);
    max_retries = 8;
    retry_delay = 25.0;
    retry_delay_cap = 400.0;
    rpc_timeout = 50.0;
    commit_quorum_retries = 2;
    install_faults = (fun _ -> ());
    horizon = 1_000_000.0;
    anti_entropy_every = None;
    reconfig = None;
    trace = None;
    ungated_rejoin = false;
    durability = Repository.Volatile;
  }

type metrics = {
  committed : int;
  aborted : int;
  unavailable_aborts : int;
  rejected_aborts : int;
  conflict_aborts : int;
  blocked_waits : int;
  ops_done : int;
  txn_latency : Summary.t;
  duration : float;
  msgs_sent : int;
  msgs_dropped : int;
  msgs_duplicated : int;
  msgs_dead_dest : int;
  rpc_timeouts : int;
  reconfigs : int;
  reconfigs_refused : int;
  reconfigs_failed : int;
  reconfig_latency : Summary.t;
  suspicion_transitions : int;
  final_epoch : int;
  recoveries : int;
  recoveries_corrupt : int;
  recovery_replay : Summary.t;
  recovery_cost : Summary.t;
  wal_flushes : int;
  wal_flushed_records : int;
  wal_lost_flushes : int;
  wal_full_rejections : int;
  wal_torn_writes : int;
  wal_rotted : int;
  wal_checkpoints : int;
  storage_faults : int;
}

type outcome = {
  metrics : metrics;
  histories : (string * Behavioral.t) list;
  registry : Metrics.t;
}

(* Registry handles for the hot counters: looked up once at run start so
   the per-transaction path never hashes a label set. *)
type counters = {
  c_committed : Metrics.counter;
  c_aborted : Metrics.counter;
  c_unavailable : Metrics.counter;
  c_rejected : Metrics.counter;
  c_conflict : Metrics.counter;
  c_blocked : Metrics.counter;
  c_ops : Metrics.counter;
  c_latency : Metrics.histogram;
}

type run_state = {
  engine : Engine.t;
  net : Network.t;
  clocks : Lamport.t array;
  objects : (string * Replicated.t) list;
  txns : (Action.t, Txn.t) Hashtbl.t;
  counters : counters;
  registry : Metrics.t;
  cfg : config;
}

let find_object st name =
  match List.assoc_opt name st.objects with
  | Some o -> o
  | None -> invalid_arg ("Runtime: unknown object " ^ name)

(* Capped exponential backoff with jitter: attempt 0 waits around the base
   delay, each further attempt doubles it up to the cap, and the uniform
   jitter in [0.5, 1.5) keeps two mutually-refused operations from
   retrying in lock-step. *)
let backoff_delay cfg rng ~attempt =
  let exp = cfg.retry_delay *. (2.0 ** float_of_int attempt) in
  Float.min exp cfg.retry_delay_cap *. (0.5 +. Rng.float rng 1.0)

(* A blocked operation consults the blocking transaction's coordinator when
   reachable; a finished transaction's status records are re-broadcast so
   lingering tentative entries resolve (presumed-abort style recovery). *)
let try_resolve st ~home blocker target =
  match Hashtbl.find_opt st.txns blocker with
  | None -> ()
  | Some btxn ->
    let coord = btxn.Txn.home_site in
    if Network.reachable st.net home coord then begin
      let obj = find_object st target in
      match btxn.Txn.status with
      | Txn.Committed ts ->
        Replicated.broadcast_status obj
          (Log.Commit_record (blocker, ts))
          ~reachable_from:coord
      | Txn.Aborted _ ->
        Replicated.broadcast_status obj (Log.Abort_record blocker) ~reachable_from:coord
      | Txn.Running | Txn.Committing -> ()
    end

let run_txn st index ~arrival =
  let cfg = st.cfg in
  let rng = Engine.rng st.engine in
  let trc = Network.trace st.net in
  Engine.schedule_at st.engine ~time:arrival (fun () ->
      let home = Rng.int rng cfg.n_sites in
      let action = Action.of_string (Printf.sprintf "T%d" index) in
      let txname = Action.to_string action in
      if not (Network.site_up st.net home) then begin
        (* The client's site is down: the transaction cannot start. *)
        Metrics.incr st.counters.c_aborted;
        Metrics.incr st.counters.c_unavailable
      end
      else begin
        let clock = st.clocks.(home) in
        let txn = Txn.create ~action ~begin_ts:(Lamport.tick clock) ~home_site:home in
        Hashtbl.replace st.txns action txn;
        let script = cfg.script rng index in
        let started = Engine.now st.engine in
        if Trace.enabled trc then
          ignore (Trace.emit trc ~site:home (Trace.Txn_begin { txn = txname }));
        let tspan = Trace.span_begin trc ~site:home "txn" in
        let commit_span = ref (-1) in
        let finish_abort kind why =
          txn.Txn.status <- Txn.Aborted why;
          Metrics.incr st.counters.c_aborted;
          (match kind with
           | `Unavailable -> Metrics.incr st.counters.c_unavailable
           | `Rejected -> Metrics.incr st.counters.c_rejected
           | `Conflict -> Metrics.incr st.counters.c_conflict);
          if Trace.enabled trc then
            ignore
              (Trace.emit trc ~site:home
                 (Trace.Txn_abort { txn = txname; reason = why }));
          Trace.span_end trc ~site:home ~span:!commit_span ~outcome:"aborted";
          Trace.span_end trc ~site:home ~span:tspan ~outcome:"aborted";
          List.iter
            (fun name ->
              let obj = find_object st name in
              Replicated.observe obj (Behavioral.Abort action);
              Replicated.broadcast_status obj (Log.Abort_record action)
                ~reachable_from:home)
            txn.Txn.touched
        in
        let finish_commit () =
          if Trace.enabled trc then
            ignore (Trace.emit trc ~site:home (Trace.Txn_commit { txn = txname }));
          Trace.span_end trc ~site:home ~span:!commit_span ~outcome:"committed";
          Trace.span_end trc ~site:home ~span:tspan ~outcome:"committed"
        in
        let rec do_ops remaining =
          match remaining with
          | [] -> do_commit ()
          | { target; invocation } :: rest ->
            let obj = find_object st target in
            if not (List.mem target txn.Txn.touched) then begin
              Txn.touch txn target;
              Replicated.observe obj (Behavioral.Begin action)
            end;
            attempt obj remaining rest invocation cfg.max_retries
        and attempt obj remaining rest invocation retries =
          Replicated.execute obj ~txn ~clock ~span:tspan invocation ~k:(function
            | Replicated.Done _ ->
              Metrics.incr st.counters.c_ops;
              do_ops rest
            | Replicated.Blocked_on blocker ->
              Metrics.incr st.counters.c_blocked;
              try_resolve st ~home blocker (Replicated.name obj);
              if retries > 0 then begin
                let delay =
                  backoff_delay cfg rng ~attempt:(cfg.max_retries - retries)
                in
                Engine.schedule st.engine ~delay (fun () ->
                    attempt obj remaining rest invocation (retries - 1))
              end
              else finish_abort `Conflict "conflict retries exhausted"
            | Replicated.Unavailable why -> finish_abort `Unavailable why
            | Replicated.Rejected why -> finish_abort `Rejected why)
        and do_commit () =
          txn.Txn.status <- Txn.Committing;
          commit_span := Trace.span_begin trc ~site:home ~parent:tspan "commit";
          (* Phase 1: every touched object must show a reachable final
             quorum before the decision. *)
          let rec prepare = function
            | [] ->
              let cts = Lamport.tick clock in
              txn.Txn.status <- Txn.Committed cts;
              Metrics.incr st.counters.c_committed;
              Metrics.observe st.counters.c_latency (Engine.now st.engine -. started);
              finish_commit ();
              List.iter
                (fun name ->
                  let obj = find_object st name in
                  Replicated.observe obj (Behavioral.Commit action);
                  Replicated.broadcast_status obj
                    (Log.Commit_record (action, cts))
                    ~reachable_from:home)
                txn.Txn.touched
            | name :: more ->
              let obj = find_object st name in
              (* Transient quorum loss (a flapping site, a healing
                 partition) need not doom the transaction: re-probe a
                 bounded number of times with backoff before aborting. *)
              let rec probe tries_left =
                Replicated.prepared_sites obj ~from:home
                  ~timeout:(Replicated.rpc_timeout obj) ~k:(fun sites ->
                    if List.length sites >= Replicated.max_final obj then
                      prepare more
                    else if tries_left > 0 then begin
                      let delay =
                        backoff_delay cfg rng
                          ~attempt:(cfg.commit_quorum_retries - tries_left)
                      in
                      Engine.schedule st.engine ~delay (fun () ->
                          probe (tries_left - 1))
                    end
                    else finish_abort `Unavailable ("commit quorum: " ^ name))
              in
              probe cfg.commit_quorum_retries
          in
          if txn.Txn.touched = [] then begin
            (* Empty transaction: commits vacuously. *)
            let cts = Lamport.tick clock in
            txn.Txn.status <- Txn.Committed cts;
            Metrics.incr st.counters.c_committed;
            Metrics.observe st.counters.c_latency (Engine.now st.engine -. started);
            finish_commit ()
          end
          else prepare txn.Txn.touched
        in
        do_ops script
      end)

(* Reconstruct the model-ordered history for one object (see interface):
   Begin entries first (Begin-timestamp order), then executions and aborts
   in observed order, then Commit entries in commit-timestamp order, except
   for locking where the observed order is the model order. *)
let model_history st scheme observed =
  match scheme with
  | Replicated.Locking -> observed
  | Replicated.Static | Replicated.Hybrid ->
    let begins =
      List.filter_map
        (function Behavioral.Begin a -> Some a | Behavioral.Exec _ | Behavioral.Commit _ | Behavioral.Abort _ -> None)
        observed
    in
    let begin_ts a =
      match Hashtbl.find_opt st.txns a with
      | Some txn -> txn.Txn.begin_ts
      | None -> Lamport.Timestamp.zero
    in
    let commit_ts a =
      match Hashtbl.find_opt st.txns a with
      | Some { Txn.status = Txn.Committed ts; _ } -> Some ts
      | Some _ | None -> None
    in
    let begins =
      List.sort (fun a b -> Lamport.Timestamp.compare (begin_ts a) (begin_ts b)) begins
    in
    let middles =
      List.filter
        (function
          | Behavioral.Exec _ | Behavioral.Abort _ -> true
          | Behavioral.Begin _ | Behavioral.Commit _ -> false)
        observed
    in
    let commits =
      List.filter_map
        (function
          | Behavioral.Commit a ->
            (match commit_ts a with Some ts -> Some (ts, a) | None -> Some (Lamport.Timestamp.zero, a))
          | Behavioral.Begin _ | Behavioral.Exec _ | Behavioral.Abort _ -> None)
        observed
      |> List.sort (fun (t1, _) (t2, _) -> Lamport.Timestamp.compare t1 t2)
      |> List.map (fun (_, a) -> Behavioral.Commit a)
    in
    List.map (fun a -> Behavioral.Begin a) begins @ middles @ commits

let run cfg =
  let engine = Engine.create ~seed:cfg.seed in
  let net =
    Network.create engine ~n_sites:cfg.n_sites ~latency_mean:cfg.latency_mean
      ~drop_probability:cfg.drop_probability ()
  in
  let objects =
    List.map
      (fun oc ->
        ( oc.obj_name,
          Replicated.create ~name:oc.obj_name ~spec:oc.obj_spec ~scheme:cfg.scheme
            ~relation:oc.obj_relation ~assignment:oc.obj_assignment ~net
            ?members:oc.obj_members ~durability:cfg.durability
            ~rpc_timeout:cfg.rpc_timeout () ))
      cfg.objects
  in
  (match cfg.trace with Some tr -> Network.set_trace net tr | None -> ());
  let registry = Metrics.create () in
  let scheme_l = [ ("scheme", Replicated.scheme_name cfg.scheme) ] in
  let abort_l reason = ("reason", reason) :: scheme_l in
  let st =
    {
      engine;
      net;
      clocks = Array.init cfg.n_sites (fun site -> Lamport.create ~site);
      objects;
      txns = Hashtbl.create 256;
      counters =
        {
          c_committed = Metrics.counter registry ~labels:scheme_l "txn.committed";
          c_aborted = Metrics.counter registry ~labels:scheme_l "txn.aborted";
          c_unavailable =
            Metrics.counter registry ~labels:(abort_l "unavailable") "txn.aborts";
          c_rejected =
            Metrics.counter registry ~labels:(abort_l "rejected") "txn.aborts";
          c_conflict =
            Metrics.counter registry ~labels:(abort_l "conflict") "txn.aborts";
          c_blocked = Metrics.counter registry ~labels:scheme_l "op.blocked_waits";
          c_ops = Metrics.counter registry ~labels:scheme_l "op.done";
          c_latency =
            Metrics.histogram registry ~labels:scheme_l "txn.latency";
        };
      registry;
      cfg;
    }
  in
  (* Fault schedules inject clock skew through the network so they need no
     dependency on the clock layer; the runtime owns the clocks, so it
     supplies the handler. *)
  Network.set_skew_handler net (fun ~site ~amount ->
      Lamport.skew st.clocks.(site) amount);
  (* An amnesiac site may only rejoin once its resync set intersects every
     final quorum that might hold a tentative entry it lost: for final
     quorums of size f on n sites that takes n - f + 1 peers, maximized
     over every operation of every object. *)
  let resync_quorum =
    List.fold_left
      (fun acc oc ->
        List.fold_left
          (fun acc (_, s) ->
            if s.Assignment.final > 0 then
              max acc (cfg.n_sites - s.Assignment.final + 1)
            else acc)
          acc oc.obj_assignment.Assignment.ops)
      0 cfg.objects
  in
  (* [ungated_rejoin] reverts both halves of the amnesia fix (rejoin
     without a resync quorum, commits not re-pushing their entries) so the
     double-dequeue violation can be replayed under tracing for postmortem
     tests. *)
  Network.set_resync_quorum net (if cfg.ungated_rejoin then 0 else resync_quorum);
  if cfg.ungated_rejoin then
    List.iter (fun (_, obj) -> Replicated.set_commit_piggyback obj false) objects;
  cfg.install_faults net;
  (* Split gossip streams unconditionally so the workload's draws are the
     same whether or not anti-entropy runs. *)
  List.iter
    (fun (_, obj) ->
      let gossip_rng = Rng.split (Engine.rng engine) in
      match cfg.anti_entropy_every with
      | Some every -> Replicated.start_anti_entropy obj ~rng:gossip_rng ~every
      | None -> ())
    objects;
  (* Reconfiguration coordinator: a failure detector feeds a periodic
     check; when a current member is suspected dead, the policy proposes a
     new (member set, assignment) over the live view and the handoff runs
     through Replicated.reconfigure. The detector draws from its own split
     stream for the same reason gossip does: toggling reconfiguration must
     not perturb the workload's draws. *)
  let rc_done = Metrics.counter registry ~labels:scheme_l "reconfig.done" in
  let rc_refused = Metrics.counter registry ~labels:scheme_l "reconfig.refused" in
  let rc_failed = Metrics.counter registry ~labels:scheme_l "reconfig.failed" in
  let rc_lat = Metrics.histogram registry ~labels:scheme_l "reconfig.latency" in
  let detector = ref None in
  (match cfg.reconfig with
   | None -> ignore (Rng.split (Engine.rng engine))
   | Some rc ->
     let det_rng = Rng.split (Engine.rng engine) in
     let det =
       Detector.start net ~rng:det_rng ~probe_every:rc.probe_every
         ~timeout:rc.probe_timeout ~suspect_after:rc.suspect_after
         ~monitor:rc.monitor ()
     in
     detector := Some det;
     let in_flight = ref false in
     let last_done = ref (-.rc.cooldown) in
     let consider (_, obj) =
       if
         (not !in_flight)
         && Network.site_up net rc.monitor
         && Engine.now engine -. !last_done >= rc.cooldown
       then begin
         let live = Detector.live det in
         let members = Epoch.members (Replicated.current_epoch obj) in
         if List.exists (fun s -> not (List.mem s live)) members then begin
           let plan =
             match rc.plan_override with
             | Some f -> f ~live ~n_sites:cfg.n_sites
             | None ->
               Reassign.plan ~live ~ops:(Replicated.ops obj)
                 ~constraints:(Replicated.constraints obj) ~p:rc.assume_p
                 ~mix:rc.mix ()
           in
           match plan with
           | None -> () (* no satisfying assignment: keep the old epoch *)
           | Some (members', _) when members' = members -> ()
           | Some (members', assignment') ->
             in_flight := true;
             let t0 = Engine.now engine in
             Replicated.reconfigure obj ~members:members' ~assignment:assignment'
               ~allow_barrier:rc.allow_barrier
               ~unsafe_no_barrier:rc.unsafe_no_barrier ~from:rc.monitor
               (fun result ->
                 in_flight := false;
                 last_done := Engine.now engine;
                 match result with
                 | Replicated.Reconfigured _ ->
                   Metrics.incr rc_done;
                   Metrics.observe rc_lat (Engine.now engine -. t0)
                 | Replicated.Refused _ -> Metrics.incr rc_refused
                 | Replicated.Failed _ -> Metrics.incr rc_failed)
         end
       end
     in
     let rec check () =
       Engine.schedule engine ~delay:rc.check_every (fun () ->
           List.iter consider objects;
           check ())
     in
     check ());
  let rng = Engine.rng engine in
  let arrival = ref 0.0 in
  for i = 0 to cfg.n_txns - 1 do
    arrival := !arrival +. Rng.exponential rng cfg.arrival_mean;
    run_txn st i ~arrival:!arrival
  done;
  Engine.run ~until:cfg.horizon engine;
  (match !detector with Some d -> Detector.stop d | None -> ());
  let ns = Network.stats net in
  (* Mirror the network's counters and the run-level facts into the
     registry so one JSON export carries everything. *)
  let g name v = Metrics.set (Metrics.gauge registry name) v in
  g "net.sent" (float_of_int ns.Network.sent);
  g "net.dropped" (float_of_int ns.Network.dropped);
  g "net.duplicated" (float_of_int ns.Network.duplicated);
  g "net.dead_dest" (float_of_int ns.Network.dead_dest);
  g "net.rpc_timeouts" (float_of_int ns.Network.rpc_timeouts);
  g "sim.duration" (Engine.now engine);
  let suspicion_transitions =
    match !detector with Some d -> Detector.transitions d | None -> 0
  in
  g "detector.transitions" (float_of_int suspicion_transitions);
  let final_epoch =
    List.fold_left
      (fun acc (_, obj) -> max acc (Epoch.number (Replicated.current_epoch obj)))
      0 objects
  in
  g "epoch.final" (float_of_int final_epoch);
  (* Durability: WAL counters summed over objects, plus one observation per
     recovery into the replay-length and modeled-cost histograms. *)
  let module Wal = Atomrep_store.Wal in
  let wal_flushes = ref 0
  and wal_flushed_records = ref 0
  and wal_lost_flushes = ref 0
  and wal_full_rejections = ref 0
  and wal_torn_writes = ref 0
  and wal_rotted = ref 0
  and wal_checkpoints = ref 0 in
  List.iter
    (fun (_, obj) ->
      match Replicated.wal_totals obj with
      | None -> ()
      | Some s ->
        wal_flushes := !wal_flushes + s.Wal.flushes;
        wal_flushed_records := !wal_flushed_records + s.Wal.flushed_records;
        wal_lost_flushes := !wal_lost_flushes + s.Wal.lost_flushes;
        wal_full_rejections := !wal_full_rejections + s.Wal.full_rejections;
        wal_torn_writes := !wal_torn_writes + s.Wal.torn_writes;
        wal_rotted := !wal_rotted + s.Wal.rotted;
        wal_checkpoints := !wal_checkpoints + s.Wal.checkpoints)
    objects;
  g "wal.flushes" (float_of_int !wal_flushes);
  g "wal.flushed_records" (float_of_int !wal_flushed_records);
  g "wal.lost_flushes" (float_of_int !wal_lost_flushes);
  g "wal.full_rejections" (float_of_int !wal_full_rejections);
  g "wal.torn_writes" (float_of_int !wal_torn_writes);
  g "wal.rotted" (float_of_int !wal_rotted);
  g "wal.checkpoints" (float_of_int !wal_checkpoints);
  g "storage.faults" (float_of_int ns.Network.storage_faults);
  let all_recoveries =
    List.concat_map (fun (_, obj) -> Replicated.recoveries obj) objects
  in
  let recoveries_corrupt =
    List.length (List.filter (fun r -> r.Repository.r_corrupt) all_recoveries)
  in
  g "recovery.count" (float_of_int (List.length all_recoveries));
  g "recovery.corrupt" (float_of_int recoveries_corrupt);
  let replay_h = Metrics.histogram registry ~labels:scheme_l "recovery.replay" in
  let cost_h = Metrics.histogram registry ~labels:scheme_l "recovery.cost_ms" in
  List.iter
    (fun r ->
      Metrics.observe replay_h (float_of_int r.Repository.r_replayed);
      Metrics.observe cost_h r.Repository.r_cost_ms)
    all_recoveries;
  (* Per-span-kind latency breakdowns, from the trace's closed spans. *)
  (match cfg.trace with
   | Some tr ->
     List.iter
       (fun (label, s) ->
         let h = Metrics.histogram registry ~labels:scheme_l ("span." ^ label) in
         List.iter (Metrics.observe h) (Summary.observations s))
       (Trace.span_durations tr)
   | None -> ());
  let cv labels name = Metrics.counter_value registry ~labels name in
  let metrics =
    {
      committed = cv scheme_l "txn.committed";
      aborted = cv scheme_l "txn.aborted";
      unavailable_aborts = cv (abort_l "unavailable") "txn.aborts";
      rejected_aborts = cv (abort_l "rejected") "txn.aborts";
      conflict_aborts = cv (abort_l "conflict") "txn.aborts";
      blocked_waits = cv scheme_l "op.blocked_waits";
      ops_done = cv scheme_l "op.done";
      txn_latency = Metrics.histogram_summary registry ~labels:scheme_l "txn.latency";
      duration = Engine.now engine;
      msgs_sent = ns.Network.sent;
      msgs_dropped = ns.Network.dropped;
      msgs_duplicated = ns.Network.duplicated;
      msgs_dead_dest = ns.Network.dead_dest;
      rpc_timeouts = ns.Network.rpc_timeouts;
      reconfigs = cv scheme_l "reconfig.done";
      reconfigs_refused = cv scheme_l "reconfig.refused";
      reconfigs_failed = cv scheme_l "reconfig.failed";
      reconfig_latency =
        Metrics.histogram_summary registry ~labels:scheme_l "reconfig.latency";
      suspicion_transitions;
      final_epoch;
      recoveries = List.length all_recoveries;
      recoveries_corrupt;
      recovery_replay =
        Metrics.histogram_summary registry ~labels:scheme_l "recovery.replay";
      recovery_cost =
        Metrics.histogram_summary registry ~labels:scheme_l "recovery.cost_ms";
      wal_flushes = !wal_flushes;
      wal_flushed_records = !wal_flushed_records;
      wal_lost_flushes = !wal_lost_flushes;
      wal_full_rejections = !wal_full_rejections;
      wal_torn_writes = !wal_torn_writes;
      wal_rotted = !wal_rotted;
      wal_checkpoints = !wal_checkpoints;
      storage_faults = ns.Network.storage_faults;
    }
  in
  let histories =
    List.map
      (fun (name, obj) -> (name, model_history st cfg.scheme (Replicated.history obj)))
      objects
  in
  { metrics; histories; registry }

let spec_of (cfg : config) name =
  let oc = List.find (fun oc -> String.equal oc.obj_name name) cfg.objects in
  oc.obj_spec

(* Exhaustive local-atomicity checking is exponential in the number of
   active (uncommitted) actions and, for the dynamic property, in the
   committed actions as well; histories from moderate runs end with few
   actives, and locking runs fall back to commit-order serializability
   (which two-phase locking guarantees and which implies a consistent
   global order) when the full dynamic check would blow up. *)
let check_atomicity (cfg : config) outcome =
  let module A = Atomrep_atomicity.Atomicity in
  List.filter_map
    (fun (name, history) ->
      let spec = spec_of cfg name in
      let committed = List.length (Behavioral.committed history) in
      let result =
        match cfg.scheme with
        | Replicated.Static -> A.check spec A.Static history
        | Replicated.Hybrid -> A.check spec A.Hybrid history
        | Replicated.Locking ->
          if committed <= 7 then A.check spec A.Dynamic history
          else begin
            (* Commit-order serializability for large locking histories. *)
            let h = Behavioral.strip_aborted history in
            let order = Behavioral.committed h in
            let serial = Behavioral.serialize h order in
            if Serial_spec.legal spec serial then Ok ()
            else
              Error
                {
                  A.order;
                  serial;
                  reason = "commit-order serialization illegal";
                }
          end
      in
      match result with
      | Ok () -> None
      | Error f -> Some (name, Format.asprintf "%a" A.pp_failure f))
    outcome.histories

let check_common_order (cfg : config) outcome =
  (* The system-wide serialization order is the Begin-timestamp order for
     static atomicity and the Commit order (commit timestamps; observed
     commit order for locking) otherwise. Both are total orders shared by
     every object, so the system is atomic iff each object's committed
     subhistory is legal when serialized in it. *)
  List.filter_map
    (fun (name, history) ->
      let spec = spec_of cfg name in
      let h = Behavioral.strip_aborted history in
      let committed = Behavioral.committed h in
      let order =
        match cfg.scheme with
        | Replicated.Hybrid | Replicated.Locking -> committed
        | Replicated.Static ->
          (* Begin-entry order in the reconstructed history is the
             Begin-timestamp order. *)
          List.filter
            (fun a -> List.exists (Action.equal a) committed)
            (Behavioral.begin_order h)
      in
      let serial = Behavioral.serialize h order in
      if Serial_spec.legal spec serial then None
      else Some (name, "committed subhistory illegal in system-wide order"))
    outcome.histories
