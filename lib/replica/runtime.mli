(** Simulation runtime: drives transactions against replicated objects and
    verifies the generated histories.

    Each transaction runs at a home (front-end) site: Begin with a Lamport
    Begin timestamp, a script of operations executed sequentially through
    {!Replicated.execute} with bounded retries on conflicts, then a
    two-phase commit — phase 1 probes every touched object for a reachable
    final quorum, phase 2 assigns the Lamport commit timestamp and
    broadcasts commit records. Any unavailability, validation failure or
    retry exhaustion aborts the transaction (abort records are broadcast;
    blocked operations consult the coordinator when reachable to resolve
    lingering tentative entries).

    After a run, per-object behavioral histories are reconstructed in the
    form the formal model indexes them — Begin events ordered by Begin
    timestamp and Commit events by commit timestamp for the timestamp-based
    schemes, observed order for locking — and can be checked against the
    scheme's local atomicity property. *)

open Atomrep_history
open Atomrep_spec
open Atomrep_core
open Atomrep_quorum
open Atomrep_sim
open Atomrep_stats

type object_config = {
  obj_name : string;
  obj_spec : Serial_spec.t;
  obj_relation : Relation.t; (** dependency relation for conflict tables *)
  obj_assignment : Assignment.t;
  obj_members : int list option;
      (** epoch 0's repository sites (default all sites); the assignment
          must be sized for exactly this member count *)
}

type op_request = { target : string; invocation : Event.Invocation.t }

type reconfig = {
  probe_every : float; (** detector probe period (jittered) *)
  probe_timeout : float; (** per-probe RPC timeout *)
  suspect_after : int; (** consecutive misses before suspicion *)
  check_every : float; (** coordinator wake-up period *)
  cooldown : float; (** minimum time between reconfiguration attempts *)
  assume_p : float; (** per-site up-probability the policy scores with *)
  mix : (string * float) list; (** workload mix for the policy (default uniform) *)
  monitor : int; (** site hosting the detector and coordinator *)
  allow_barrier : bool; (** permit the state-transfer barrier handoff *)
  unsafe_no_barrier : bool;
      (** negative testing only: skip the invariant and the barrier *)
  plan_override :
    (live:int list -> n_sites:int -> (int list * Assignment.t) option) option;
      (** test hook replacing {!Atomrep_quorum.Reassign.plan} *)
}

val default_reconfig : reconfig
(** Probe every 40 with timeout 25, suspect after 3 misses, check every 60
    with cooldown 150, score at p = 0.9, monitor site 0, barrier allowed. *)

type deadlock_mode =
  | No_deadlock  (** blocked operations rely on backoff and retry budgets *)
  | Detect
      (** waits-for graph with cycle detection; the youngest cycle member
          (largest Begin timestamp) is aborted as the victim *)
  | Wound_wait
      (** an older waiter wounds a younger Running blocker outright —
          preemptive, cycle-free, no graph *)

val deadlock_mode_name : deadlock_mode -> string
val deadlock_mode_of_string : string -> deadlock_mode option

type shed_policy =
  | Reject_newest  (** queue full: shed the arriving transaction *)
  | Shed_reads_first
      (** queue full: an arriving write evicts the newest queued read
          (reads are sacrificed before writes); arriving reads, and writes
          finding no read to evict, are shed themselves *)

val shed_policy_name : shed_policy -> string
val shed_policy_of_string : string -> shed_policy option

type breaker_cfg = {
  br_window : int;  (** sliding window of recent RPC outcomes per site *)
  br_threshold : float;  (** failure fraction that trips the breaker *)
  br_cooldown : float;  (** open duration before the half-open probe *)
  br_probes : int;  (** consecutive successes that close it again *)
}

val default_breaker : breaker_cfg
(** Window 8, threshold 0.5, cooldown 400 ms, 2 probes. *)

type admission = {
  max_in_flight : int;  (** bounded in-flight window *)
  queue_limit : int;  (** bounded admission queue; overflow sheds *)
  deadline : float;
      (** sojourn deadline: a transaction still queued, or entering a
          conflict retry, this long after arrival is shed (pre-commit
          only — a transaction past its commit point is never shed) *)
  adm_shed_policy : shed_policy;
  adm_breaker : breaker_cfg option;
      (** per-site circuit breaker over RPC-timeout signals; [None]
          disables it *)
}

val default_admission : admission
(** 8 in flight, queue of 16, no deadline, [Reject_newest], no breaker. *)

type load = {
  arrivals : float array;
      (** precomputed arrival times (sim ms, nondecreasing) — open loop:
          offered load never adapts to system state. The run dispatches
          [min n_txns (Array.length arrivals)] transactions. *)
  home_of : int -> int;  (** home site per transaction index *)
  session_of : int -> int;
      (** session id per index (>= 0), for per-session monotonicity
          monitoring; sessions are emitted in Session_commit trace events *)
  class_of : int -> [ `Read | `Write ];
      (** shed class per index, consulted by [Shed_reads_first] *)
}

type gray = {
  hedge : bool;
      (** early-quorum gathers plus hedged re-issues: every quorum round
          fires its gather the moment a satisfying vote set answered, and
          once it lags the adaptive delay re-issues the call — first to
          primaries still lacking a reply (a fresh send re-rolls the
          straggling link), then to members routed out of the round —
          repositories are idempotent, so first-reply-wins is safe *)
  demote : bool;
      (** route quorum rounds away from slow-suspected sites (never below
          the round's quorum floor), and let the reconfiguration
          coordinator — when one is running — plan the site out of the
          epoch once its suspicion outlives [demote_grace] *)
  hedge_percentile : float;
      (** hedge delay = this percentile of recently observed RPC
          latencies, pooled across non-slow sites *)
  hedge_delay_floor : float;  (** never hedge sooner than this (sim ms) *)
  hedge_max : int;  (** spare re-issues per quorum round *)
  slow : Atomrep_sim.Detector.slow_config;
      (** latency-scoring knobs for {!Atomrep_sim.Detector} *)
  demote_grace : float;
      (** slow-suspicion age (sim ms) before reconfiguration treats the
          site as down for planning — static atomicity still refuses the
          handoff (Theorems 10–12) *)
}
(** Gray-failure mitigation policy (DESIGN §3j). *)

val default_gray : gray
(** Hedging and demotion both on: p95 adaptive delay with a 2 ms floor, 2
    spare re-issues per round, {!Atomrep_sim.Detector.default_slow_config}
    scoring, 500 ms demotion grace. *)

type config = {
  seed : int;
  n_sites : int;
  latency_mean : float;
  drop_probability : float;
  scheme : Replicated.scheme;
  objects : object_config list;
  n_txns : int;
  arrival_mean : float; (** mean transaction inter-arrival time *)
  script : Rng.t -> int -> op_request list; (** per-transaction operations *)
  max_retries : int;
  retry_delay : float; (** base delay for the capped exponential backoff *)
  retry_delay_cap : float; (** ceiling on the exponential backoff delay *)
  rpc_timeout : float;
      (** per-RPC timeout for quorum reads, writes, and commit probes *)
  commit_quorum_retries : int;
      (** extra prepare-phase probes (with backoff) before a missing commit
          quorum aborts the transaction *)
  install_faults : Network.t -> unit;
  horizon : float; (** simulated-time cutoff *)
  anti_entropy_every : float option;
      (** start per-object gossip ({!Replicated.start_anti_entropy}) at
          this period *)
  reconfig : reconfig option;
      (** enable the failure-detector-driven reconfiguration coordinator:
          when a current epoch member is suspected dead, propose the best
          satisfying assignment over the live view and hand off via
          {!Replicated.reconfigure}. [None] pins epoch 0 for the whole
          run (the pre-reconfiguration behavior). *)
  trace : Atomrep_obs.Trace.t option;
      (** attach a trace bus: the whole stack (network, RPC, detector,
          quorum protocol, transactions) emits causally linked events into
          it, and per-span-kind latency histograms land in the registry.
          [None] (the default) runs the zero-cost disabled path — metrics
          and histories are bit-identical either way. *)
  ungated_rejoin : bool;
      (** negative testing only: let amnesiac sites rejoin without a resync
          quorum (the pre-fix behavior whose double-dequeue violation the
          postmortem tests replay). *)
  durability : Repository.durability;
      (** stable-storage model for every repository (default [Volatile],
          the original behavior): [Durable] backs each site with a
          simulated WAL whose flush barriers, crash-truncation and
          checkpoint compaction the storage fault schedules target. *)
  termination : Atomrep_txn.Termination.mode;
      (** crash-safe termination (default [Disabled], the historical
          give-up): [Presumed_abort_only] adds the durable commit point,
          recovery redrive, and presumed abort for coordinators that died
          before it; [Cooperative] adds participant-driven quorum
          termination for unreachable coordinators and the orphan
          reaper. *)
  deadlock : deadlock_mode;
      (** deadlock policy for blocked operations (default [No_deadlock]) *)
  reaper_every : float;
      (** orphan-reaper sweep period ([Cooperative] only, default 250) *)
  takeover : bool;
      (** coordinator takeover (default [false]; requires [Cooperative]
          termination to matter): when cooperative termination finds a
          blocker whose coordinator is dead, the surviving site first wins
          an epoch-fenced takeover lease over the blocked object's
          repositories, stamps its votes with the lease term so stale
          drivers fence, and force-writes adopted decisions to its own
          durable decision log before driving them. *)
  admission : admission option;
      (** admission control and load shedding (default [None], the ungated
          runtime — bit-identical to the historical behavior): bound the
          in-flight window, queue the overflow, shed per policy, and
          optionally gate RPC traffic per destination with a circuit
          breaker *)
  retry_budget : int;
      (** per-transaction retry budget shared by conflict backoffs,
          commit-quorum re-probes and commit-drive re-drives (default
          [max_int], never exhausts — the budget caps retry amplification
          under overload without touching the legacy draw sequence) *)
  load : load option;
      (** open-loop arrival plan (default [None]: the closed-form Poisson
          process over [arrival_mean]); see {!Atomrep_workload.Openloop}
          for building plans with rate curves and skewed object
          popularity *)
  timely_bound : float;
      (** commits whose arrival-to-commit sojourn is within this bound
          count as [timely_commits] — the goodput open-loop load sweeps
          compare (default [infinity]: every commit is timely); pure
          accounting, never affects scheduling *)
  gray : gray option;
      (** gray-failure mitigation (default [None] — the historical
          runtime, bit-for-bit: no latency scoring, every quorum round
          targets all epoch members and gathers all-or-timeout) *)
  fail_slow : (int * float * Network.slow_mode) list;
      (** scripted fail-slow injections: [(site, onset, mode)] arms
          {!Network.set_fail_slow} at each onset — persistent service-time
          inflation, the gray-failure fault (default empty) *)
  profile : Atomrep_obs.Profile.t;
      (** phase profiling (default [Atomrep_obs.Profile.null], one branch
          per instrumentation site): when enabled, it is installed as the
          ambient profile for the run's extent, and the engine dispatch
          loop, network sends, trace publishes, quorum gathers and WAL
          flushes accumulate wall-time + allocation per phase into it.
          Profiling reads no simulation RNG and never perturbs a run. *)
  timeseries : Atomrep_obs.Timeseries.t;
      (** sim-time time-series (default [Atomrep_obs.Timeseries.null]):
          when enabled, a recurring engine event samples committed /
          aborted / blocked-wait deltas, WAL flushes, messages sent, event
          queue depth and the live stranded gauge into the series'
          fixed-width windows; the run calls [Timeseries.finish] at the
          horizon. The sampler draws no RNG and re-arms only while other
          work is pending, so committed work, histories and verdicts are
          bit-identical with it on or off; only [duration] can extend to
          the sampler's final (empty) tick, at most half a window past
          the last real event. *)
}

val default_config : config
(** A single replicated queue, three sites, no faults; override fields as
    needed. *)

val default_queue_assignment : n_sites:int -> Assignment.t
(** Majority initial and final quorums for Enq and Deq. *)

val backoff_delay : config -> Rng.t -> attempt:int -> float
(** The capped exponential backoff with jitter used for conflict retries
    and commit-quorum re-probes: always within
    [[0.5 *. retry_delay *. 2^attempt, retry_delay_cap]] (exposed so the
    bound can be property-tested). *)

type metrics = {
  committed : int;
  aborted : int;
  unavailable_aborts : int; (** aborts caused by missing quorums *)
  rejected_aborts : int; (** aborts caused by scheme validation *)
  conflict_aborts : int; (** aborts caused by retry exhaustion *)
  blocked_waits : int; (** operations that waited at least once *)
  ops_done : int;
  txn_latency : Summary.t;
  duration : float; (** simulated time consumed *)
  msgs_sent : int;
  msgs_dropped : int; (** lost to partitions, failed links, or loss *)
  msgs_duplicated : int;
  msgs_dead_dest : int; (** delivered while the destination was down *)
  rpc_timeouts : int;
  reconfigs : int; (** successful epoch handoffs *)
  reconfigs_refused : int; (** attempts refused (static scheme, bad plan) *)
  reconfigs_failed : int; (** attempts that lost a seal/transfer quorum *)
  reconfig_latency : Summary.t; (** wall-clock (simulated) per successful handoff *)
  suspicion_transitions : int; (** detector churn: raises plus clears *)
  final_epoch : int; (** largest epoch number in force at the horizon *)
  recoveries : int; (** WAL recoveries performed at rejoin *)
  recoveries_corrupt : int; (** recoveries that detected corruption *)
  recovery_replay : Summary.t; (** per-recovery replayed-record counts *)
  recovery_cost : Summary.t; (** per-recovery modeled time (ms) *)
  wal_flushes : int; (** successful flush barriers, summed over sites *)
  wal_flushed_records : int;
  wal_lost_flushes : int; (** flushes a fault silently dropped *)
  wal_full_rejections : int; (** flushes/checkpoints refused: disk full *)
  wal_torn_writes : int; (** torn records persisted at crashes *)
  wal_rotted : int; (** bit-rot corruptions applied *)
  wal_checkpoints : int;
  storage_faults : int; (** storage faults injected via the network *)
  coop_commits : int; (** commits completed by a substitute coordinator *)
  coop_aborts : int; (** aborts certified by termination vote rounds *)
  presumed_aborts : int; (** recovery aborts of intent-less transactions *)
  deadlock_aborts : int; (** victims of the deadlock policy *)
  redrives : int; (** in-doubt transactions re-driven at recovery *)
  orphans_reaped : int; (** terminal transactions the reaper re-broadcast *)
  stranded_entries : int;
      (** tentative entries still unresolved at the horizon, summed over
          every repository of every object *)
  decision_log_writes : int; (** successful decision-log flushes *)
  blocked_latency : Summary.t; (** per-operation time spent blocked *)
  takeover_leases : int; (** takeover leases won (lease_need grants) *)
  takeover_adoptions : int;
      (** in-doubt commits completed under a takeover lease (a subset of
          [coop_commits]) *)
  takeover_fenced : int; (** vote rounds rejected as stale by a newer lease *)
  takeover_contended : int; (** lease bids that failed to reach lease_need *)
  rebroadcasts_suppressed : int;
      (** duplicate terminal status re-broadcasts deduplicated per site *)
  stranded_live : int;
      (** live gauge of transactions currently observed stranded (blocked
          on a dead coordinator, not yet resolved) at the horizon — unlike
          [stranded_entries] this counts transactions, not entries, and is
          maintained incrementally (strand observed / resolution) *)
  shed : int;
      (** transactions shed by admission control (queue overflow, class
          eviction, deadline expiry) or mid-flight deadline sheds — every
          shed is also counted in [aborted] *)
  timely_commits : int;
      (** commits within [timely_bound] of arrival (equals [committed]
          at the default bound) *)
  retries_spent : int;
      (** retries consumed across all transactions (conflict backoffs,
          commit-quorum re-probes, commit-drive re-drives) *)
  retries_budget_exhausted : int;
      (** transactions that ran out of retry budget and aborted (or gave
          up the commit drive as in-doubt) *)
  sojourn : Summary.t;
      (** admission→verdict sojourn time per transaction, shed ones
          included (for those it is the arrival→shed wait) *)
  breaker_trips : int;  (** circuit-breaker transitions into [Open] *)
  hedges : int;  (** hedged re-issues fired after the adaptive delay *)
  hedge_wins : int;
      (** hedged (spare) replies that arrived before their round's gather
          fired — the re-issue did useful work *)
  hedge_late : int;
      (** straggler replies arriving after their gather had already fired
          — counted, never re-driving the gather *)
  demoted_rounds : int;
      (** quorum rounds routed away from at least one slow-suspected site *)
  slow_suspicions : int;
      (** slow-suspicion transitions (raises plus clears), the graded
          detector's churn — 0 without a [gray] config *)
}

type outcome = {
  metrics : metrics;
  histories : (string * Behavioral.t) list;
      (** per-object histories, model-ordered for the scheme *)
  registry : Atomrep_obs.Metrics.t;
      (** every counter/gauge/histogram the run recorded — [metrics] is a
          fixed-shape projection of this; exporters serialize the registry *)
}

val run : config -> outcome

val check_atomicity : config -> outcome -> (string * string) list
(** Check every object's history against the scheme's local atomicity
    property; returns (object, failure description) pairs — empty means
    every history satisfies the property. *)

val check_common_order : config -> outcome -> (string * string) list
(** Check that committed transactions are serializable in one system-wide
    order (commit-timestamp order for hybrid and locking, Begin-timestamp
    order for static) at every object — the paper's definition of an atomic
    multi-object system. *)
