open Atomrep_stats
module Sitelat = Atomrep_obs.Sitelat

type slow_config = {
  sc_alpha : float;
  sc_window : int;
  sc_factor : float;
  sc_after : int;
  sc_clear : int;
  sc_min_samples : int;
}

let default_slow_config =
  {
    sc_alpha = 0.2;
    sc_window = 64;
    sc_factor = 3.0;
    sc_after = 5;
    sc_clear = 5;
    sc_min_samples = 8;
  }

(* Latency-aware suspicion state, present only when a [slow_config] was
   supplied: per-site EWMA + windowed-p99 books scored against the cluster
   median, with streak hysteresis on raise and clear. *)
type slow_state = {
  cfg : slow_config;
  book : Sitelat.t;
  hi_streak : int array; (* consecutive samples scoring over the factor *)
  lo_streak : int array; (* consecutive samples scoring under it *)
  is_slow : bool array;
  since : float array; (* sim-time the current suspicion was raised *)
  mutable slow_transitions : int;
}

type t = {
  net : Network.t;
  rng : Rng.t;
  probe_every : float;
  timeout : float;
  suspect_after : int;
  monitor : int;
  misses : int array;
  susp : bool array;
  mutable transitions : int;
  mutable stopped : bool;
  slow : slow_state option;
}

let monitor t = t.monitor
let suspected t site = t.susp.(site)

let live t =
  List.filter
    (fun site -> not t.susp.(site))
    (List.init (Network.n_sites t.net) Fun.id)

let transitions t = t.transitions
let stop t = t.stopped <- true

let set_suspected t site v =
  if t.susp.(site) <> v then begin
    t.susp.(site) <- v;
    t.transitions <- t.transitions + 1;
    let tr = Network.trace t.net in
    if Atomrep_obs.Trace.enabled tr then
      ignore
        (Atomrep_obs.Trace.emit tr ~site:t.monitor
           (if v then Atomrep_obs.Trace.Detector_suspect { site }
            else Atomrep_obs.Trace.Detector_trust { site }))
  end

let slow_suspected t site =
  match t.slow with None -> false | Some s -> s.is_slow.(site)

let slow_since t site =
  match t.slow with
  | Some s when s.is_slow.(site) -> Some s.since.(site)
  | _ -> None

let slow_transitions t =
  match t.slow with None -> 0 | Some s -> s.slow_transitions

let fast_sites t =
  List.filter (fun site -> not (slow_suspected t site)) (live t)

(* A site's latency score: how many times worse than the cluster median it
   currently runs, on whichever of the two signals (smoothed mean, windowed
   p99) looks worse. The median is taken over every site with samples, so a
   minority of gray sites cannot drag the baseline up with them; a healthy
   cluster scores everyone near 1.0. *)
let score_of s ~site =
  if Sitelat.samples s.book ~site < s.cfg.sc_min_samples then 1.0
  else begin
    let med_ewma = Sitelat.median_ewma s.book in
    let med_p99 = Sitelat.median_percentile s.book ~q:0.99 in
    let ratio v m = if m > 0.0 then v /. m else 1.0 in
    Float.max
      (ratio (Sitelat.ewma s.book ~site) med_ewma)
      (ratio (Sitelat.percentile s.book ~site ~q:0.99) med_p99)
  end

let slow_score t site =
  match t.slow with None -> 1.0 | Some s -> score_of s ~site

let latency_percentile t ~q =
  match t.slow with
  | None -> None
  | Some s ->
    let p =
      Sitelat.pooled_percentile ~exclude:(fun site -> s.is_slow.(site)) s.book ~q
    in
    if p > 0.0 then Some p else None

let set_slow t s site v =
  if s.is_slow.(site) <> v then begin
    s.is_slow.(site) <- v;
    s.slow_transitions <- s.slow_transitions + 1;
    if v then s.since.(site) <- Engine.now (Network.engine t.net);
    let tr = Network.trace t.net in
    if Atomrep_obs.Trace.enabled tr then
      ignore
        (Atomrep_obs.Trace.emit tr ~site:t.monitor
           (Atomrep_obs.Trace.Detector_slow
              { site; slow = v; score = score_of s ~site }))
  end

(* One RPC-outcome sample for [dst]: fold it into the site's book and step
   the hysteresis streaks. Timeouts arrive as censored samples at the full
   configured budget — exactly the signal that separates fail-slow from
   healthy, and it inflates the score without any special-casing. *)
let on_sample t ~dst ~elapsed =
  match t.slow with
  | None -> ()
  | Some s ->
    if dst >= 0 && dst < Sitelat.n_sites s.book then begin
      Sitelat.observe s.book ~site:dst elapsed;
      let score = score_of s ~site:dst in
      if score >= s.cfg.sc_factor then begin
        s.hi_streak.(dst) <- s.hi_streak.(dst) + 1;
        s.lo_streak.(dst) <- 0;
        if s.hi_streak.(dst) >= s.cfg.sc_after then set_slow t s dst true
      end
      else begin
        s.lo_streak.(dst) <- s.lo_streak.(dst) + 1;
        s.hi_streak.(dst) <- 0;
        if s.lo_streak.(dst) >= s.cfg.sc_clear then set_slow t s dst false
      end
    end

let start net ~rng ?(probe_every = 40.0) ?(timeout = 25.0) ?(suspect_after = 3)
    ?(monitor = 0) ?slow () =
  let n = Network.n_sites net in
  let slow =
    Option.map
      (fun cfg ->
        {
          cfg;
          book = Sitelat.create ~n_sites:n ~alpha:cfg.sc_alpha ~window:cfg.sc_window ();
          hi_streak = Array.make n 0;
          lo_streak = Array.make n 0;
          is_slow = Array.make n false;
          since = Array.make n 0.0;
          slow_transitions = 0;
        })
      slow
  in
  let t =
    {
      net;
      rng;
      probe_every;
      timeout;
      suspect_after;
      monitor;
      misses = Array.make n 0;
      susp = Array.make n false;
      transitions = 0;
      stopped = false;
      slow;
    }
  in
  if t.slow <> None then
    (* Latency books feed off every RPC outcome on the network — workload
       and probe traffic alike — so suspicion tracks what quorum rounds
       actually experience, not just what probes see. *)
    Network.on_rpc_result net (fun ~src:_ ~dst ~ok:_ ~elapsed ->
        if not t.stopped then on_sample t ~dst ~elapsed);
  let engine = Network.engine net in
  let rec probe ~first site =
    (* A seeded per-site phase offset spreads the first probes across the
       whole period — with one fixed start phase, fifty monitors (or fifty
       probed sites) would fire in lock-step and the probe storm itself
       would perturb the latencies being measured. Steady-state probes keep
       uniform jitter in [0.75, 1.25) of the period so trains never
       re-synchronize. *)
    let delay =
      if first then Rng.float t.rng t.probe_every
      else t.probe_every *. (0.75 +. Rng.float t.rng 0.5)
    in
    Engine.schedule engine ~delay (fun () ->
        if not t.stopped then begin
          if Network.site_up t.net t.monitor then
            Rpc.call t.net ~src:t.monitor ~dst:site ~timeout:t.timeout
              ~handler:(fun () -> ())
              ~reply:(function
                | Some () ->
                  t.misses.(site) <- 0;
                  set_suspected t site false
                | None ->
                  (* A probe that dies while the monitor itself is down says
                     nothing about the target — don't count it. *)
                  if Network.site_up t.net t.monitor then begin
                    t.misses.(site) <- t.misses.(site) + 1;
                    if t.misses.(site) >= t.suspect_after then
                      set_suspected t site true
                  end);
          probe ~first:false site
        end)
  in
  for site = 0 to n - 1 do
    if site <> t.monitor then probe ~first:true site
  done;
  t
