open Atomrep_stats

type t = {
  net : Network.t;
  rng : Rng.t;
  probe_every : float;
  timeout : float;
  suspect_after : int;
  monitor : int;
  misses : int array;
  susp : bool array;
  mutable transitions : int;
  mutable stopped : bool;
}

let monitor t = t.monitor
let suspected t site = t.susp.(site)

let live t =
  List.filter
    (fun site -> not t.susp.(site))
    (List.init (Network.n_sites t.net) Fun.id)

let transitions t = t.transitions
let stop t = t.stopped <- true

let set_suspected t site v =
  if t.susp.(site) <> v then begin
    t.susp.(site) <- v;
    t.transitions <- t.transitions + 1;
    let tr = Network.trace t.net in
    if Atomrep_obs.Trace.enabled tr then
      ignore
        (Atomrep_obs.Trace.emit tr ~site:t.monitor
           (if v then Atomrep_obs.Trace.Detector_suspect { site }
            else Atomrep_obs.Trace.Detector_trust { site }))
  end

let start net ~rng ?(probe_every = 40.0) ?(timeout = 25.0) ?(suspect_after = 3)
    ?(monitor = 0) () =
  let n = Network.n_sites net in
  let t =
    {
      net;
      rng;
      probe_every;
      timeout;
      suspect_after;
      monitor;
      misses = Array.make n 0;
      susp = Array.make n false;
      transitions = 0;
      stopped = false;
    }
  in
  let engine = Network.engine net in
  let rec probe site =
    (* Uniform jitter in [0.75, 1.25) of the period keeps per-site probe
       trains from phase-locking with each other or with the workload. *)
    let delay = t.probe_every *. (0.75 +. Rng.float t.rng 0.5) in
    Engine.schedule engine ~delay (fun () ->
        if not t.stopped then begin
          if Network.site_up t.net t.monitor then
            Rpc.call t.net ~src:t.monitor ~dst:site ~timeout:t.timeout
              ~handler:(fun () -> ())
              ~reply:(function
                | Some () ->
                  t.misses.(site) <- 0;
                  set_suspected t site false
                | None ->
                  (* A probe that dies while the monitor itself is down says
                     nothing about the target — don't count it. *)
                  if Network.site_up t.net t.monitor then begin
                    t.misses.(site) <- t.misses.(site) + 1;
                    if t.misses.(site) >= t.suspect_after then
                      set_suspected t site true
                  end);
          probe site
        end)
  in
  for site = 0 to n - 1 do
    if site <> t.monitor then probe site
  done;
  t
