(** Heartbeat failure detector (eventually-perfect style, ◇P in spirit).

    A designated monitor site probes every other site over the simulated
    network with jittered periods; a site that misses [suspect_after]
    consecutive probe replies becomes suspected, and any successful reply
    clears the suspicion. Probes are ordinary {!Rpc} calls, so the detector
    inherits every failure mode the paper's model admits: a suspicion may
    mean a crash, a partition separating the site from the monitor, or
    merely a slow link — the detector cannot tell, which is exactly why
    reconfiguration driven by it must be safe under false suspicion.

    Determinism: probe jitter draws from the caller-supplied RNG (split it
    from the engine's stream, as {!Atomrep_replica.Runtime} does for
    gossip), and probe traffic rides the seeded simulation engine, so a
    (seed, config) pair replays the exact same suspicion timeline. *)

type t

val start :
  Network.t ->
  rng:Atomrep_stats.Rng.t ->
  ?probe_every:float ->
  ?timeout:float ->
  ?suspect_after:int ->
  ?monitor:int ->
  unit ->
  t
(** Begin probing every non-monitor site. [probe_every] (default 40) is the
    mean probe period, jittered uniformly in [0.75, 1.25) of itself so
    probes to different sites do not phase-lock; [timeout] (default 25)
    bounds each probe RPC; [suspect_after] (default 3) consecutive missed
    replies raise suspicion; [monitor] (default 0) is the probing site.
    While the monitor itself is down no probes are sent and timed-out
    probes are not counted as misses — a dead monitor must not poison its
    own view of the cluster. *)

val monitor : t -> int

val suspected : t -> int -> bool
(** Is the site currently suspected? The monitor never suspects itself. *)

val live : t -> int list
(** The monitor's current view: every site not currently suspected, in
    ascending order. This is a {e view}, not ground truth — a crashed site
    stays listed until its misses accumulate, and a slow site may be
    missing although up. *)

val transitions : t -> int
(** Number of suspicion-state changes so far (raises plus clears) — the
    detector's churn, surfaced in {!Atomrep_replica.Runtime.metrics}. *)

val stop : t -> unit
(** Cease probing: already-scheduled probe events become no-ops, so a
    bounded-horizon run drains cleanly. *)
