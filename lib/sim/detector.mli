(** Heartbeat failure detector (eventually-perfect style, ◇P in spirit),
    with optional latency-aware slow-suspicion.

    A designated monitor site probes every other site over the simulated
    network with jittered periods; a site that misses [suspect_after]
    consecutive probe replies becomes suspected, and any successful reply
    clears the suspicion. Probes are ordinary {!Rpc} calls, so the detector
    inherits every failure mode the paper's model admits: a suspicion may
    mean a crash, a partition separating the site from the monitor, or
    merely a slow link — the detector cannot tell, which is exactly why
    reconfiguration driven by it must be safe under false suspicion.

    Binary up/down suspicion is blind to {e gray} failures: a fail-slow
    site answers every probe just inside the timeout while dragging every
    quorum round to its pace. Supplying a {!slow_config} adds a graded
    [Suspect_slow] verdict alongside the binary one: per-site latency
    books (EWMA + windowed p99 over every [Network.note_rpc_result]
    sample, probes and workload alike) are scored against the cluster
    median, and a site whose score stays past the factor for a full streak
    is suspected slow — reversibly, since the same streak hysteresis
    clears it when its latencies rejoin the cluster.

    Determinism: probe jitter draws from the caller-supplied RNG (split it
    from the engine's stream, as {!Atomrep_replica.Runtime} does for
    gossip), and probe traffic rides the seeded simulation engine, so a
    (seed, config) pair replays the exact same suspicion timeline. Slow
    scoring draws nothing. *)

type t

type slow_config = {
  sc_alpha : float;  (** EWMA smoothing factor in (0,1] *)
  sc_window : int;  (** per-site latency window for the p99 *)
  sc_factor : float;
      (** suspicion threshold: score = max(ewma, p99) relative to the
          cluster median must reach this *)
  sc_after : int;  (** consecutive over-threshold samples to raise *)
  sc_clear : int;  (** consecutive under-threshold samples to clear *)
  sc_min_samples : int;  (** don't score a site on fewer samples *)
}

val default_slow_config : slow_config
(** alpha 0.2, window 64, factor 3.0, raise/clear streaks 5, min 8. *)

val start :
  Network.t ->
  rng:Atomrep_stats.Rng.t ->
  ?probe_every:float ->
  ?timeout:float ->
  ?suspect_after:int ->
  ?monitor:int ->
  ?slow:slow_config ->
  unit ->
  t
(** Begin probing every non-monitor site. [probe_every] (default 40) is the
    mean probe period; each site's first probe fires at a seeded phase
    offset uniform in [0, probe_every) and later probes jitter uniformly in
    [0.75, 1.25) of the period, so probe trains neither start nor drift
    into lock-step (at 50+ sites a synchronized train is a probe storm that
    perturbs the very latencies being measured). [timeout] (default 25)
    bounds each probe RPC; [suspect_after] (default 3) consecutive missed
    replies raise binary suspicion; [monitor] (default 0) is the probing
    site. While the monitor itself is down no probes are sent and timed-out
    probes are not counted as misses — a dead monitor must not poison its
    own view of the cluster. [slow] enables latency-aware slow-suspicion
    (disabled by default: absent, the detector behaves exactly as it did
    historically and registers no listeners). *)

val monitor : t -> int

val suspected : t -> int -> bool
(** Is the site currently suspected (binary up/down)? The monitor never
    suspects itself. *)

val live : t -> int list
(** The monitor's current view: every site not currently suspected, in
    ascending order. This is a {e view}, not ground truth — a crashed site
    stays listed until its misses accumulate, and a slow site may be
    missing although up. *)

val slow_suspected : t -> int -> bool
(** Is the site currently suspected {e slow}? Always [false] without a
    [slow] config. Independent of binary suspicion: a gray site is
    typically up (probes answer) yet slow. *)

val slow_since : t -> int -> float option
(** Sim-time the site's current slow-suspicion was raised, [None] when not
    suspected slow — demotion policies escalate to reconfiguration only
    after a suspicion has persisted. *)

val slow_score : t -> int -> float
(** The site's current latency score (1.0 = at the cluster median, or not
    enough samples / no slow config). *)

val fast_sites : t -> int list
(** {!live} minus the slow-suspected: the sites a quorum round should
    prefer. *)

val latency_percentile : t -> q:float -> float option
(** The [q]-percentile of recently observed RPC latencies pooled across
    non-slow sites — the adaptive hedging delay. [None] without a [slow]
    config or before any samples. *)

val transitions : t -> int
(** Number of binary suspicion-state changes so far (raises plus clears) —
    the detector's churn, surfaced in {!Atomrep_replica.Runtime.metrics}. *)

val slow_transitions : t -> int
(** Number of slow-suspicion changes so far (0 without a [slow] config). *)

val stop : t -> unit
(** Cease probing: already-scheduled probe events become no-ops and the
    latency books stop folding samples, so a bounded-horizon run drains
    cleanly. *)
