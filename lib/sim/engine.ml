type entry = { time : float; seq : int; thunk : unit -> unit }

module Heap = struct
  (* Binary min-heap on (time, seq). *)
  type t = { mutable data : entry array; mutable size : int }

  let dummy = { time = 0.0; seq = 0; thunk = ignore }
  let create () = { data = Array.make 256 dummy; size = 0 }

  let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

  let push h e =
    if h.size = Array.length h.data then begin
      let bigger = Array.make (2 * h.size) dummy in
      Array.blit h.data 0 bigger 0 h.size;
      h.data <- bigger
    end;
    h.data.(h.size) <- e;
    h.size <- h.size + 1;
    let i = ref (h.size - 1) in
    while !i > 0 && less h.data.(!i) h.data.((!i - 1) / 2) do
      let parent = (!i - 1) / 2 in
      let tmp = h.data.(parent) in
      h.data.(parent) <- h.data.(!i);
      h.data.(!i) <- tmp;
      i := parent
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.data.(0) in
      h.size <- h.size - 1;
      h.data.(0) <- h.data.(h.size);
      h.data.(h.size) <- dummy;
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && less h.data.(l) h.data.(!smallest) then smallest := l;
        if r < h.size && less h.data.(r) h.data.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = h.data.(!smallest) in
          h.data.(!smallest) <- h.data.(!i);
          h.data.(!i) <- tmp;
          i := !smallest
        end
      done;
      Some top
    end
end

type t = {
  heap : Heap.t;
  rng : Atomrep_stats.Rng.t;
  mutable clock : float;
  mutable next_seq : int;
}

let create ~seed =
  { heap = Heap.create (); rng = Atomrep_stats.Rng.create seed; clock = 0.0; next_seq = 0 }

let now t = t.clock
let rng t = t.rng

let schedule_at t ~time thunk =
  let time = if time < t.clock then t.clock else time in
  t.next_seq <- t.next_seq + 1;
  Heap.push t.heap { time; seq = t.next_seq; thunk }

let schedule t ~delay thunk =
  let delay = if delay < 0.0 then 0.0 else delay in
  schedule_at t ~time:(t.clock +. delay) thunk

let run ?until t =
  let continue = ref true in
  while !continue do
    match Heap.pop t.heap with
    | None -> continue := false
    | Some e ->
      (match until with
       | Some limit when e.time > limit ->
         (* Past the horizon: push back and stop. *)
         Heap.push t.heap e;
         continue := false
       | Some _ | None ->
         t.clock <- e.time;
         (* The dispatch phase wraps every simulated thunk, so the hot-phase
            table's engine/dispatch row is the whole event loop; nested
            phases (network send, trace publish, WAL flush) break it down. *)
         Atomrep_obs.Profile.record ~subsystem:"engine" "dispatch" e.thunk)
  done

let pending t = t.heap.Heap.size
