open Atomrep_stats

let crash_recover net ~site ~mtbf ~mttr =
  let engine = Network.engine net in
  let rng = Engine.rng engine in
  let rec up_phase () =
    Engine.schedule engine ~delay:(Rng.exponential rng mtbf) (fun () ->
        Network.crash net site;
        down_phase ())
  and down_phase () =
    Engine.schedule engine ~delay:(Rng.exponential rng mttr) (fun () ->
        Network.recover net site;
        up_phase ())
  in
  up_phase ()

let crash_recover_all net ~mtbf ~mttr =
  for site = 0 to Network.n_sites net - 1 do
    crash_recover net ~site ~mtbf ~mttr
  done

let crash_amnesia_recover net ~site ~mtbf ~mttr =
  let engine = Network.engine net in
  let rng = Engine.rng engine in
  let rec up_phase () =
    Engine.schedule engine ~delay:(Rng.exponential rng mtbf) (fun () ->
        Network.crash_with_amnesia net site;
        down_phase ())
  and down_phase () =
    Engine.schedule engine ~delay:(Rng.exponential rng mttr) (fun () ->
        (* Rejoin is quorum-gated: without enough reachable peers to resync
           from, the site stays down and tries again later. *)
        if Network.recover_resync net site then up_phase () else down_phase ())
  in
  up_phase ()

let crash_amnesia_recover_all net ~mtbf ~mttr =
  for site = 0 to Network.n_sites net - 1 do
    crash_amnesia_recover net ~site ~mtbf ~mttr
  done

let periodic_partition net ~groups ~every ~duration =
  let engine = Network.engine net in
  let rec cycle () =
    Engine.schedule engine ~delay:every (fun () ->
        Network.partition net groups;
        Engine.schedule engine ~delay:duration (fun () ->
            Network.heal net;
            cycle ()))
  in
  cycle ()

let rolling_partition net ~every ~duration =
  let engine = Network.engine net in
  let n = Network.n_sites net in
  let all = List.init n Fun.id in
  let rec cycle victim =
    Engine.schedule engine ~delay:every (fun () ->
        let rest = List.filter (fun s -> s <> victim) all in
        Network.partition net [ [ victim ]; rest ];
        Engine.schedule engine ~delay:duration (fun () ->
            Network.heal net;
            cycle ((victim + 1) mod n)))
  in
  if n > 1 then cycle 0

let flap net ~site ~start ~every ~down_for =
  let engine = Network.engine net in
  let rec up_phase delay =
    Engine.schedule engine ~delay (fun () ->
        Network.crash net site;
        Engine.schedule engine ~delay:down_for (fun () ->
            Network.recover net site;
            up_phase every))
  in
  up_phase start

let one_way_outage net ~src ~dst ~every ~duration =
  let engine = Network.engine net in
  let rec cycle () =
    Engine.schedule engine ~delay:every (fun () ->
        Network.fail_link net ~src ~dst;
        Engine.schedule engine ~delay:duration (fun () ->
            Network.heal_link net ~src ~dst;
            cycle ()))
  in
  cycle ()

let rotating_one_way net ~every ~duration =
  let engine = Network.engine net in
  let n = Network.n_sites net in
  let rec cycle k =
    Engine.schedule engine ~delay:every (fun () ->
        let src = k mod n and dst = (k + 1) mod n in
        Network.fail_link net ~src ~dst;
        Engine.schedule engine ~delay:duration (fun () ->
            Network.heal_link net ~src ~dst;
            cycle (k + 1)))
  in
  if n > 1 then cycle 0

let kill net ~site ~at =
  let engine = Network.engine net in
  Engine.schedule engine ~delay:at (fun () -> Network.crash net site)

let staggered_kill net ~start ~gap ~victims =
  let n = Network.n_sites net in
  List.iteri
    (fun k site ->
      if site >= 0 && site < n then
        kill net ~site ~at:(start +. (float_of_int k *. gap)))
    victims

(* Storage-fault schedules share one shape: at exponentially distributed
   intervals, pick a uniform victim site and deliver one fault through the
   network's storage listeners. All draws come from the engine RNG, so the
   schedules replay deterministically like every other fault process. *)
let storage_cycle net ~every pick =
  let engine = Network.engine net in
  let rng = Engine.rng engine in
  let rec cycle () =
    Engine.schedule engine ~delay:(Rng.exponential rng every) (fun () ->
        let site = Rng.int rng (Network.n_sites net) in
        Network.inject_storage_fault net ~site (pick rng);
        cycle ())
  in
  cycle ()

let torn_writes net ~every =
  storage_cycle net ~every (fun _ -> Atomrep_store.Wal.Torn_write)

let bit_rot net ~every =
  (* The victim index is reduced modulo the WAL's durable size at the
     store, so any draw addresses a valid record. *)
  storage_cycle net ~every (fun rng -> Atomrep_store.Wal.Bit_rot (Rng.int rng 1_000_000))

let lost_flushes net ~every =
  storage_cycle net ~every (fun _ -> Atomrep_store.Wal.Lost_flush)

let disk_pressure net ~every ~duration =
  let engine = Network.engine net in
  let rng = Engine.rng engine in
  let rec cycle () =
    Engine.schedule engine ~delay:(Rng.exponential rng every) (fun () ->
        let site = Rng.int rng (Network.n_sites net) in
        Network.inject_storage_fault net ~site Atomrep_store.Wal.Disk_full;
        Engine.schedule engine ~delay:duration (fun () ->
            Network.inject_storage_fault net ~site Atomrep_store.Wal.Disk_free);
        cycle ())
  in
  cycle ()

(* Gray failures: at exponentially distributed intervals, pick a uniform
   victim and make it fail-slow for a while — the site stays up and
   answers everything, just late. The degradation shape is drawn uniformly
   among the three modes, each parameterized off the same peak [factor]:
   constant inflation, a heavy-tailed mix whose tail hits twice the
   factor, or a creeping ramp that reaches the factor as the episode
   ends. *)
let fail_slow net ~every ~duration ~factor =
  let engine = Network.engine net in
  let rng = Engine.rng engine in
  let rec cycle () =
    Engine.schedule engine ~delay:(Rng.exponential rng every) (fun () ->
        let site = Rng.int rng (Network.n_sites net) in
        let mode =
          match Rng.int rng 3 with
          | 0 -> Network.Slow_constant factor
          | 1 ->
            Network.Slow_heavy
              {
                factor = 1.0 +. ((factor -. 1.0) /. 4.0);
                p_tail = 0.2;
                tail_factor = 2.0 *. factor;
              }
          | _ -> Network.Slow_creeping { rate = factor /. duration; cap = factor }
        in
        Network.set_fail_slow net ~site mode;
        Engine.schedule engine ~delay:duration (fun () ->
            Network.clear_fail_slow net ~site);
        cycle ())
  in
  cycle ()

let coordinator_killer net ~p_kill ~delay ~mttr =
  let engine = Network.engine net in
  let rng = Engine.rng engine in
  Network.on_commit_window net (fun site ->
      if Network.site_up net site && Rng.bernoulli rng p_kill then
        Engine.schedule engine ~delay:(Rng.exponential rng delay) (fun () ->
            if Network.site_up net site then begin
              Network.crash net site;
              Engine.schedule engine ~delay:(Rng.exponential rng mttr) (fun () ->
                  if not (Network.site_up net site) then Network.recover net site)
            end))

(* Ambush the taker-over, not the coordinator: whenever a site announces a
   takeover bid, maybe kill it a moment later — mid-lease-round or
   mid-adopted-drive — and heal it after a while. Composed with the
   coordinator killer (and a short coordinator mttr, so the original heals
   back into its re-drive while the takeover is in flight) this is the
   takeover-storm scenario: every driver of the same transaction dies or
   returns at the worst moment. *)
let takeover_killer net ~p_kill ~delay ~mttr =
  let engine = Network.engine net in
  let rng = Engine.rng engine in
  Network.on_takeover net (fun site ->
      if Network.site_up net site && Rng.bernoulli rng p_kill then
        Engine.schedule engine ~delay:(Rng.exponential rng delay) (fun () ->
            if Network.site_up net site then begin
              Network.crash net site;
              Engine.schedule engine ~delay:(Rng.exponential rng mttr) (fun () ->
                  if not (Network.site_up net site) then Network.recover net site)
            end))

let clock_skew net ~site ~every ~max_skew =
  let engine = Network.engine net in
  let rng = Engine.rng engine in
  let rec cycle () =
    Engine.schedule engine ~delay:every (fun () ->
        if max_skew > 0 then
          Network.inject_skew net ~site ~amount:(Rng.int rng (max_skew + 1));
        cycle ())
  in
  cycle ()
