(** Fault injection schedules for simulation experiments.

    Every schedule is a pure event-queue process: installing one schedules
    future network mutations on the simulation engine and returns. Two runs
    with the same engine seed and the same schedules replay identically —
    the property the chaos campaign's reproducers rely on. *)

val crash_recover :
  Network.t ->
  site:int ->
  mtbf:float ->
  mttr:float ->
  unit
(** Start a crash/recover process for one site: exponentially distributed
    time-between-failures with mean [mtbf], repair time with mean [mttr]. *)

val crash_recover_all : Network.t -> mtbf:float -> mttr:float -> unit

val crash_amnesia_recover :
  Network.t ->
  site:int ->
  mtbf:float ->
  mttr:float ->
  unit
(** Like {!crash_recover}, but crashes via {!Network.crash_with_amnesia}
    (volatile state is lost) and recovers via {!Network.recover_resync}
    (the rejoin protocol re-synchronizes stable state from reachable
    peers). *)

val crash_amnesia_recover_all : Network.t -> mtbf:float -> mttr:float -> unit

val periodic_partition :
  Network.t ->
  groups:int list list ->
  every:float ->
  duration:float ->
  unit
(** Periodically install the given partition for [duration] time units,
    healing in between; first partition after [every]. *)

val rolling_partition : Network.t -> every:float -> duration:float -> unit
(** Periodically isolate one site from all others for [duration] time
    units, rotating the victim site each round. *)

val flap :
  Network.t -> site:int -> start:float -> every:float -> down_for:float -> unit
(** Site flapping: from [start] on, crash the site every [every] time units
    and bring it back [down_for] later — rapid, deterministic up/down
    cycling that races recovery against in-flight quorum probes. *)

val one_way_outage :
  Network.t -> src:int -> dst:int -> every:float -> duration:float -> unit
(** Periodically fail the one-way link [src -> dst] for [duration]: the
    asymmetric failure mode where [dst] hears nothing while its replies
    still get through. *)

val rotating_one_way : Network.t -> every:float -> duration:float -> unit
(** Periodic one-way outages rotating over the ring of adjacent site
    pairs. *)

val kill : Network.t -> site:int -> at:float -> unit
(** Crash the site at the given simulated time and never recover it — a
    permanent assassination, unlike the cycling {!crash_recover}. This is
    the failure mode reconfiguration exists for: the dead site's quorum
    votes are gone for good and only reassignment restores availability. *)

val staggered_kill :
  Network.t -> start:float -> gap:float -> victims:int list -> unit
(** Permanently kill each victim in order, the first at [start] and each
    subsequent one [gap] later. Victims outside the site range are
    ignored. Staggering matters: it gives a reconfiguration coordinator a
    window to move quorums off each corpse before the next one drops,
    whereas killing a majority at once correctly leaves the safe handoff
    protocol unable to seal the old epoch. *)

val torn_writes : Network.t -> every:float -> unit
(** At exponentially distributed intervals (mean [every]), arm a torn
    tail write at a uniformly drawn site: its next crash persists a
    partial, checksum-invalid record (see {!Atomrep_store.Wal}). *)

val bit_rot : Network.t -> every:float -> unit
(** Periodically corrupt one durable WAL record at a random site; the
    store guarantees detection at the next recovery scan. *)

val lost_flushes : Network.t -> every:float -> unit
(** Periodically arm a lost flush at a random site: the next flush
    barrier reports success but persists nothing. *)

val disk_pressure : Network.t -> every:float -> duration:float -> unit
(** Periodically fill a random site's disk for [duration] time units:
    flushes and checkpoints fail until the pressure clears. *)

val fail_slow : Network.t -> every:float -> duration:float -> factor:float -> unit
(** Gray failures: at exponentially distributed intervals (mean [every]),
    make a uniformly drawn site fail-slow for [duration] time units — up,
    answering everything, just inflated. Each episode draws one of the
    three degradation shapes ({!Network.slow_mode}) parameterized off the
    same peak [factor]: constant inflation at [factor], a heavy-tailed mix
    whose tail hits [2 * factor], or a creeping ramp reaching [factor] as
    the episode ends. *)

val coordinator_killer :
  Network.t -> p_kill:float -> delay:float -> mttr:float -> unit
(** The termination protocol's targeted adversary: whenever a coordinator
    enters its commit window ({!Network.note_commit_window}), crash that
    exact site with probability [p_kill] after an exponential delay of
    mean [delay] — aimed squarely at the in-doubt window between the
    durable commit point and the commit broadcasts — and recover it after
    an exponential repair time of mean [mttr]. Crashes are plain (stable
    repository state survives, per the paper's model); what is lost is
    the coordinator's volatile continuation, which is exactly what
    termination has to compensate for. *)

val takeover_killer :
  Network.t -> p_kill:float -> delay:float -> mttr:float -> unit
(** The takeover protocol's targeted adversary: whenever a site announces
    a takeover bid ({!Network.note_takeover}), crash that exact site with
    probability [p_kill] after an exponential delay of mean [delay] —
    mid-lease-round or mid-adopted-drive — and recover it after an
    exponential repair of mean [mttr]. Composed with
    {!coordinator_killer} (short coordinator mttr, so the original heals
    back into its fenced re-drive while the takeover is in flight) this
    is the takeover-storm scenario. *)

val clock_skew : Network.t -> site:int -> every:float -> max_skew:int -> unit
(** Periodically advance the site's logical clock by a uniformly drawn
    amount in [\[0, max_skew\]] via {!Network.inject_skew} — bounded clock
    skew for the timestamp-based schemes. *)
